//! Stress and determinism: many extensions, many calls, interleaved
//! faults — and the whole simulation reproduces cycle-exactly.

use integration::asm;
use minikernel::{Kernel, USER_TEXT};
use palladium::segdb::SegDb;
use palladium::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp};

/// Runs a mixed workload and returns (final cycle counter, checksum of
/// all results, aborted calls).
fn mixed_workload(seed_calls: u32) -> (u64, u64, u64) {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();

    // Five extensions with different characters.
    let sources = [
        "f:\nmov eax, [esp+4]\nadd eax, 3\nret\n",
        "f:\nmov eax, [esp+4]\nimul eax, 7\nret\n",
        "f:\nmov ecx, [esp+4]\nmov eax, 0\nl:\ncmp ecx, 0\nje d\nadd eax, ecx\ndec ecx\njmp l\nd:\nret\n",
        // Faulty: pokes the app image.
        &format!("f:\nmov eax, 1\nmov [{USER_TEXT}], eax\nret\n"),
        // Slow but legal.
        "f:\nmov ecx, 200\ns:\ndec ecx\ncmp ecx, 0\njne s\nmov eax, [esp+4]\nret\n",
    ];
    let mut preps = Vec::new();
    for src in sources {
        let h = app
            .dlopen(&mut k, &asm(src), &DlopenOptions::new())
            .unwrap();
        preps.push(app.seg_dlsym(&mut k, h, "f").unwrap());
    }

    let mut checksum = 0u64;
    for i in 0..seed_calls {
        let which = (i % 5) as usize;
        match app.call_extension(&mut k, preps[which], i) {
            Ok(v) => checksum = checksum.wrapping_mul(31).wrapping_add(v as u64),
            Err(ExtCallError::Fault { .. }) => checksum = checksum.wrapping_add(0xF),
            Err(e) => panic!("unexpected failure at call {i}: {e}"),
        }
    }
    (k.m.cycles(), checksum, app.aborted_calls)
}

#[test]
fn four_hundred_mixed_calls_with_interleaved_faults() {
    let (_, checksum, aborted) = mixed_workload(400);
    // Every fifth call faults (the poking extension).
    assert_eq!(aborted, 80);
    assert_ne!(checksum, 0);
}

#[test]
fn whole_simulation_is_cycle_deterministic() {
    let a = mixed_workload(120);
    let b = mixed_workload(120);
    assert_eq!(a, b, "identical runs, identical cycles and results");
}

#[test]
fn trace_profile_cross_validates_table1_domain_split() {
    // Independent cross-check of Table 1: the per-domain cycle profile of
    // a traced protected call must match the phase decomposition. The
    // SPL 3 side executes exactly Transfer's call (3), the extension's
    // ret (3) and the gate lcall (72) = 78 cycles.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &asm("f:\nret\n"), &DlopenOptions::new())
        .unwrap();
    let f = app.seg_dlsym(&mut k, h, "f").unwrap();
    app.call_extension(&mut k, f, 0).unwrap();

    k.m.enable_trace(128);
    app.call_extension(&mut k, f, 0).unwrap();
    let trace = k.m.disable_trace().unwrap();
    let profile = SegDb::domain_profile(&trace);
    assert_eq!(profile[&3], 78, "SPL 3 = call + ret + gate lcall");
}
