//! The sharded-execution determinism suite.
//!
//! The `parex` pool's contract is that fanning shards across worker
//! threads changes wall-clock time and *nothing else*: same master
//! seeds, same reports, same verdicts, byte for byte. These tests pin
//! that contract across every sharded driver — the chaos campaign's
//! episode fan-out, the web server's request groups and the scaling
//! benchmark — plus the `Send` audit that makes the fan-out legal in
//! the first place.

use chaos::campaign::{self, CampaignConfig};
use webserver::{run_live_sharded, ExecModel, WebServer};

// ---- Send audit ------------------------------------------------------------

/// Compile-time proof that every per-shard world can move to a worker
/// thread. Shards *own* their state (no `Sync` needed); `Send` is the
/// load-bearing bound, and it holds because nothing in the simulator or
/// the runtime uses `Rc`, `RefCell`, raw pointers or thread-locals.
#[test]
fn shard_state_is_send() {
    fn assert_send<T: Send>() {}
    assert_send::<x86sim::machine::Machine>();
    assert_send::<minikernel::Kernel>();
    assert_send::<palladium::user_ext::ExtensibleApp>();
    assert_send::<palladium::KernelExtensions>();
    assert_send::<palladium::Supervisor>();
    assert_send::<palladium::Session>();
    assert_send::<WebServer>();
    assert_send::<chaos::CampaignReport>();
}

// ---- chaos campaign: jobs-count invariance ---------------------------------

fn campaign_cfg(seed: u64, jobs: usize) -> CampaignConfig {
    CampaignConfig {
        seed,
        steps: 150,
        episode_len: 25,
        probe_interval: 60,
        jobs,
        ..CampaignConfig::default()
    }
}

/// The acceptance criterion: `--jobs 8` produces a byte-identical
/// report to `--jobs 1` under the same seed — every event, every
/// outcome count, every violation string, every counter.
#[test]
fn campaign_is_byte_identical_across_job_counts() {
    for seed in [1u64, 0xDEAD_BEEF] {
        let serial = campaign::run(&campaign_cfg(seed, 1));
        for jobs in [2usize, 8] {
            let sharded = campaign::run(&campaign_cfg(seed, jobs));
            assert_eq!(serial.events, sharded.events, "seed {seed} jobs {jobs}");
            assert_eq!(serial.outcomes, sharded.outcomes, "seed {seed} jobs {jobs}");
            assert_eq!(
                serial.violations, sharded.violations,
                "seed {seed} jobs {jobs}"
            );
            assert_eq!(serial.steps_run, sharded.steps_run);
            assert_eq!(serial.probes_run, sharded.probes_run);
            assert_eq!(serial.host_panics, sharded.host_panics);
            assert_eq!(serial.quarantines, sharded.quarantines);
            assert_eq!(serial.kext_aborts, sharded.kext_aborts);
            assert_eq!(serial.uext_aborts, sharded.uext_aborts);
            assert_eq!(serial.restarts, sharded.restarts);
            assert_eq!(serial.pages_reclaimed, sharded.pages_reclaimed);
            assert_eq!(serial.guest_insns, sharded.guest_insns);
        }
    }
}

/// The campaign's human-readable audit summary — what the CI job
/// actually archives — is identical too, and the sharded run still
/// produces a clean audit.
#[test]
fn campaign_summary_and_verdict_survive_sharding() {
    let serial = campaign::run(&campaign_cfg(7, 1));
    let sharded = campaign::run(&campaign_cfg(7, 8));
    assert_eq!(campaign::summarize(&serial), campaign::summarize(&sharded));
    assert!(sharded.violations.is_empty(), "{:?}", sharded.violations);
    assert_eq!(sharded.host_panics, 0);
    assert!(sharded.events.len() > 100);
}

// ---- web server: request-group invariance ----------------------------------

#[test]
fn webserver_sharded_run_is_job_count_invariant() {
    let make = || {
        let mut s = WebServer::new()?;
        s.add_benchmark_files();
        Ok(s)
    };
    let mut baseline = None;
    for jobs in [1usize, 2, 8] {
        let (res, stats) = run_live_sharded(
            make,
            ExecModel::LibCgiProtected,
            "/file1024",
            60,
            0x5EED,
            6,
            parex::Pool::new(jobs),
        )
        .expect("sharded run");
        assert_eq!(stats.iter().map(|s| s.requests).sum::<u32>(), 60);
        let fingerprint = (
            res.rps.to_bits(),
            res.seconds.to_bits(),
            res.link_bound,
            stats.clone(),
        );
        match &baseline {
            None => baseline = Some(fingerprint),
            Some(b) => assert_eq!(*b, fingerprint, "jobs {jobs}"),
        }
    }
}

// ---- scaling benchmark: fixed decomposition --------------------------------

/// The BENCH scaling section's precondition: guest work per workload is
/// a function of the shard decomposition only, never of the worker
/// count driving it.
#[test]
fn scaling_bench_guest_work_is_worker_count_invariant() {
    let pts = bench::measure_scaling_with(4, 15, 50, 12, &[1, 8]);
    for workload in ["figure7", "chaos", "webserver"] {
        let insns: Vec<u64> = pts
            .iter()
            .filter(|p| p.workload == workload)
            .map(|p| p.guest_insns)
            .collect();
        assert_eq!(insns.len(), 2, "{workload}");
        assert_eq!(insns[0], insns[1], "{workload}");
        assert!(insns[0] > 0, "{workload}");
    }
}

// ---- the pool itself -------------------------------------------------------

/// Work-stealing stress: many more shards than workers, deliberately
/// unbalanced shard costs, results must come back complete and in
/// input order.
#[test]
fn pool_survives_unbalanced_fanouts() {
    let items: Vec<u32> = (0..500).collect();
    for jobs in [1usize, 3, 8] {
        let out = parex::Pool::new(jobs).run_ordered(items.clone(), |i, v| {
            // Skewed work: early shards spin longer, so late workers
            // must steal to finish.
            let spin = if v % 7 == 0 { 20_000 } else { 10 };
            let mut acc = v as u64;
            for k in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(k);
            }
            (i, v, acc & 1)
        });
        assert_eq!(out.len(), items.len());
        for (slot, (i, v, _)) in out.iter().enumerate() {
            assert_eq!(slot, *i, "input order preserved");
            assert_eq!(slot as u32, *v);
        }
    }
}

/// A panicking shard surfaces on the caller after the fan-out drains,
/// and it is the first panicking shard in *input* order regardless of
/// scheduling.
#[test]
fn pool_propagates_the_first_panic_in_input_order() {
    let r = std::panic::catch_unwind(|| {
        parex::Pool::new(4).run_ordered((0..64).collect::<Vec<u32>>(), |_, v| {
            if v == 9 || v == 41 {
                panic!("shard {v} failed");
            }
            v
        })
    });
    let msg = *r
        .expect_err("panic must propagate")
        .downcast::<String>()
        .expect("panic payload");
    assert_eq!(msg, "shard 9 failed");
}
