//! Figure 4 end to end: "a system call that requires the service of a
//! kernel extension takes the path 1-2-3-4-5-9-10", and with a kernel
//! service call from the extension, 1-2-3-4-5-6-7-8-9-10.
//!
//! A real user process (SPL 3) traps into the kernel with `int 0x82`; the
//! kernel checks its Extension Function Table by name (step 4), invokes
//! the extension at SPL 1 through the protected transfer (step 5), the
//! extension calls a core kernel service over `int 0x81` (steps 6-8),
//! returns (step 9), and the kernel resumes the user process with the
//! result (step 10).

use std::collections::BTreeMap;

use integration::asm;
use minikernel::{Budget, Kernel, Outcome};
use palladium::kernel_ext::KernelExtensions;
use x86sim::machine::IdtGate;

/// The demo vector user code uses to request extension service.
const EXT_VECTOR: u8 = 0x82;

#[test]
fn figure4_full_path_with_kernel_service() {
    let mut k = Kernel::boot();

    // Steps 4-5's substrate: a kernel extension that doubles its argument
    // and logs through the kernel-service gate (steps 6-8).
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 16).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "doubler",
        &asm("ext_double:\n\
             mov eax, 0              ; KSVC_LOG\n\
             mov ebx, tag\n\
             mov ecx, 2\n\
             int 0x81                ; kernel service (steps 6-7-8)\n\
             mov eax, [esp+4]\n\
             add eax, eax\n\
             ret\n\
             tag:\n\
             .asciz \"x!\"\n"),
        &["ext_double"],
    )
    .unwrap();

    // The user process: trap with the argument in ebx (step 1).
    k.m.idt[EXT_VECTOR as usize] = Some(IdtGate { dpl: 3 });
    let user = asm("_start:\n\
         mov ebx, 21\n\
         int 0x82                ; request the extension service\n\
         mov ebx, eax            ; result\n\
         mov eax, 1              ; SYS_EXIT\n\
         int 0x80\n");
    let tid = k.spawn(&user, &BTreeMap::new()).unwrap();
    k.switch_to(tid);

    // The host plays the System Call Table: service hook 0x82 by invoking
    // the named extension (step 4: check by name; step 5: dispatch).
    let outcome = loop {
        match k.run_current(Budget::Insns(10_000)) {
            Outcome::Hook(v) if v == EXT_VECTOR => {
                let arg = k.m.cpu.reg(asm86::isa::Reg::Ebx);
                let result = match kx.invoke(&mut k, seg, "ext_double", arg) {
                    Ok(r) => r,
                    Err(e) => panic!("extension failed: {e}"),
                };
                k.m.cpu.set_reg(asm86::isa::Reg::Eax, result);
                k.m.charge_iret_resume(); // step 10
            }
            other => break other,
        }
    };

    assert_eq!(outcome, Outcome::Exited(42), "21 doubled via the full path");
    assert_eq!(k.console_text(), "x!", "the kernel service ran (steps 6-8)");
    assert_eq!(kx.calls, 1);
}

#[test]
fn figure4_unknown_extension_takes_no_action() {
    // Step 4: "If the required extension service has not yet been
    // instantiated, no action is taken" — the syscall returns an error
    // instead of dispatching.
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();

    k.m.idt[EXT_VECTOR as usize] = Some(IdtGate { dpl: 3 });
    let user = asm("_start:\n\
         int 0x82\n\
         mov ebx, eax\n\
         mov eax, 1\n\
         int 0x80\n");
    let tid = k.spawn(&user, &BTreeMap::new()).unwrap();
    k.switch_to(tid);

    let outcome = loop {
        match k.run_current(Budget::Insns(10_000)) {
            Outcome::Hook(v) if v == EXT_VECTOR => {
                let r = kx.invoke(&mut k, seg, "nonexistent", 0);
                assert!(r.is_err());
                k.m.cpu.set_reg(asm86::isa::Reg::Eax, u32::MAX);
                k.m.charge_iret_resume();
            }
            other => break other,
        }
    };
    assert_eq!(outcome, Outcome::Exited(-1));
}

#[test]
fn figure4_faulty_extension_does_not_take_down_the_caller() {
    // A user process requests service from an extension that escapes its
    // segment: the kernel aborts the extension (the paper's ~1,020-cycle
    // path) and the user process continues with an error result.
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "bad",
        &asm("f:\nmov eax, [0x500000]\nret\n"),
        &["f"],
    )
    .unwrap();

    k.m.idt[EXT_VECTOR as usize] = Some(IdtGate { dpl: 3 });
    let user = asm("_start:\n\
         int 0x82\n\
         mov ebx, eax\n\
         mov eax, 1\n\
         int 0x80\n");
    let tid = k.spawn(&user, &BTreeMap::new()).unwrap();
    k.switch_to(tid);

    let outcome = loop {
        match k.run_current(Budget::Insns(10_000)) {
            Outcome::Hook(v) if v == EXT_VECTOR => {
                let r = kx.invoke(&mut k, seg, "f", 0);
                assert!(matches!(
                    r,
                    Err(palladium::kernel_ext::KextError::Aborted(_))
                ));
                k.m.cpu.set_reg(asm86::isa::Reg::Eax, u32::MAX);
                k.m.charge_iret_resume();
            }
            other => break other,
        }
    };
    assert_eq!(outcome, Outcome::Exited(-1), "user process survived");
    assert_eq!(kx.aborts, 1);
}
