//! Cross-crate end-to-end scenarios: both Palladium mechanisms living in
//! one kernel, the full applications, and the comparators.

use integration::asm;
use minikernel::Kernel;
use netfilter::{paper_conjunction, reference_packet, traffic, FilterBench};
use palladium::kernel_ext::KernelExtensions;
use palladium::user_ext::{DlopenOptions, ExtensibleApp};
use webserver::http::get_request;
use webserver::{run_live, ExecModel, WebServer};

#[test]
fn user_and_kernel_extensions_coexist() {
    // One kernel hosting an extensible application *and* kernel extension
    // segments, exchanging data via their respective shared areas.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let mut kx = KernelExtensions::new(&mut k).unwrap();

    // Kernel extension: checksum over its shared area.
    let seg = kx.create_segment(&mut k, 16).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "cksum",
        &asm("cksum:\n\
             mov ecx, [esp+4]\n\
             mov eax, 0\n\
             mov edx, shared_area\n\
             ck_loop:\n\
             cmp ecx, 0\n\
             je ck_done\n\
             mov esi, byte [edx]\n\
             add eax, esi\n\
             inc edx\n\
             dec ecx\n\
             jmp ck_loop\n\
             ck_done:\n\
             ret\n\
             shared_area:\n\
             .space 64\n\
             shared_area_end:\n"),
        &["cksum"],
    )
    .unwrap();

    // User extension: fills the app's shared area with a pattern.
    let h = app
        .dlopen(
            &mut k,
            &asm("fill:\n\
                 mov ecx, [esp+4]\n\
                 mov edx, 0\n\
                 f_loop:\n\
                 cmp edx, 16\n\
                 jae f_done\n\
                 mov byte [ecx], edx\n\
                 inc ecx\n\
                 inc edx\n\
                 jmp f_loop\n\
                 f_done:\n\
                 mov eax, edx\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let fill = app.seg_dlsym(&mut k, h, "fill").unwrap();
    let app_shared = app.alloc_shared(&mut k, 1).unwrap();
    assert_eq!(app.call_extension(&mut k, fill, app_shared).unwrap(), 16);

    // The kernel ferries the bytes from the app's shared area into the
    // kernel extension's shared area (what a syscall path would do).
    let bytes = k.m.host_read(app_shared, 16);
    let (kshared, _) = kx.shared_area_linear(seg).unwrap();
    assert!(k.m.host_write(kshared, &bytes));
    let sum = kx.invoke(&mut k, seg, "cksum", 16).unwrap();
    assert_eq!(sum, (0..16).sum::<u32>());
}

#[test]
fn webserver_serves_mixed_traffic_live() {
    let mut s = WebServer::new().unwrap();
    s.add_benchmark_files();
    s.add_file("/index.html", b"<h1>hi</h1>".to_vec());

    // A burst of mixed requests across models.
    for (i, model) in ExecModel::ALL.iter().cycle().take(30).enumerate() {
        let path = if i % 3 == 0 { "/index.html" } else { "/file28" };
        let resp = s.handle(&get_request(path), *model).unwrap();
        assert!(resp.starts_with(b"HTTP/1.0 200 OK"));
    }
    assert_eq!(s.served, 30);

    // Live throughput ordering is preserved under real execution.
    let stat = run_live(&mut s, ExecModel::StaticFile, "/file1024", 20, 3)
        .unwrap()
        .rps;
    let prot = run_live(&mut s, ExecModel::LibCgiProtected, "/file1024", 20, 3)
        .unwrap()
        .rps;
    let cgi = run_live(&mut s, ExecModel::Cgi, "/file1024", 20, 3)
        .unwrap()
        .rps;
    assert!(cgi < prot && prot <= stat);
}

#[test]
fn packet_filter_handles_traffic_and_agrees_everywhere() {
    let f = paper_conjunction(3);
    let mut b = FilterBench::new().unwrap();
    b.install_compiled(&f).unwrap();
    let mut accepted = 0;
    for pkt in traffic(99, 80, 0.4) {
        let want = f.eval(&pkt);
        let c = b.run_compiled(&pkt).unwrap();
        let i = b.run_bpf(&f, &pkt).unwrap();
        assert_eq!(c.accept, want);
        assert_eq!(i.accept, want);
        accepted += want as usize;
    }
    assert!(accepted > 10, "traffic mix exercised both outcomes");
}

#[test]
fn filter_reinstallation_supports_many_filters() {
    // Extension segments are cheap enough to load many filters into one
    // kernel (each install creates a fresh SPL 1 segment).
    let pkt = reference_packet(64);
    let mut b = FilterBench::new().unwrap();
    for n in (0..=4).chain((0..=4).rev()) {
        let f = paper_conjunction(n);
        b.install_compiled(&f).unwrap();
        let r = b.run_compiled(&pkt).unwrap();
        assert!(r.accept, "{n} terms accept the reference packet");
    }
}

#[test]
fn extension_state_persists_across_protected_calls() {
    // An extension with module-static state: each call increments a
    // counter in its own data — private, persistent, and invisible to
    // nothing (the app can read PPL 1 pages freely).
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &asm("bump:\n\
                 mov eax, [count]\n\
                 inc eax\n\
                 mov [count], eax\n\
                 ret\n\
                 count:\n\
                 .dd 0\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let bump = app.seg_dlsym(&mut k, h, "bump").unwrap();
    for want in 1..=5u32 {
        assert_eq!(app.call_extension(&mut k, bump, 0).unwrap(), want);
    }
    // The application (supervisor at SPL 2 / host) can inspect it.
    let count = app.dlsym(h, "count").unwrap();
    assert_eq!(k.m.host_read_u32(count), 5);
}

#[test]
fn multiple_extensions_are_mutually_isolated_by_default() {
    // Two user extensions: each gets its own pages. A cannot corrupt B's
    // state because... actually both are PPL 1, so A *can* touch B — the
    // paper: "Among extension modules, the protection is only for safety
    // but not for security" and inter-module protection needs separate
    // segments (kernel level) — at user level all extensions share the
    // PPL 1 domain. Verify the documented semantics.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let hb = app
        .dlopen(
            &mut k,
            &asm("get:\nmov eax, [val]\nret\nval:\n.dd 7\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let b_val = app.dlsym(hb, "val").unwrap();

    let ha = app
        .dlopen(
            &mut k,
            &asm("poke:\n\
                 mov ecx, [esp+4]\n\
                 mov eax, 99\n\
                 mov [ecx], eax\n\
                 ret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let poke = app.seg_dlsym(&mut k, ha, "poke").unwrap();
    // A pokes B's value — allowed (both PPL 1): safety, not security.
    assert!(app.call_extension(&mut k, poke, b_val).is_ok());
    let get = app.seg_dlsym(&mut k, hb, "get").unwrap();
    assert_eq!(app.call_extension(&mut k, get, 0).unwrap(), 99);
}

#[test]
fn rpc_model_vs_real_protected_call() {
    // Table 2's structural claim as an integration test: the simulated
    // protected call (real cycles) is orders of magnitude below the
    // modelled socket RPC.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(&mut k, &asm("f:\nret\n"), &DlopenOptions::new())
        .unwrap();
    let f = app.seg_dlsym(&mut k, h, "f").unwrap();
    app.call_extension(&mut k, f, 0).unwrap();
    let c0 = k.m.cycles();
    app.call_extension(&mut k, f, 0).unwrap();
    let call = k.m.cycles() - c0;

    let rpc = baselines::rpc::RpcCosts::default().round_trip_cycles(32);
    assert!(rpc > 100 * call, "rpc {rpc} vs call {call}");
}

#[test]
fn router_defers_while_a_user_task_computes() {
    // The full §4.3 motivation: packets arrive while the CPU runs a
    // user task; the router queues them for asynchronous filtering and
    // drains the backlog when the task yields the CPU.
    use netfilter::{Router, Verdict};

    let f = paper_conjunction(4);
    let mut r = Router::new(&f).unwrap();
    r.enable_protocol_stats().unwrap();

    // A compute-bound user task inside the router's kernel.
    let busy_loop = asm("_start:\n\
         mov ecx, 2000\n\
         spin:\n\
         dec ecx\n\
         cmp ecx, 0\n\
         jne spin\n\
         mov eax, 1\n\
         mov ebx, 0\n\
         int 0x80\n");
    let tid =
        r.k.spawn(&busy_loop, &std::collections::BTreeMap::new())
            .unwrap();
    r.k.switch_to(tid);

    let pkts = netfilter::traffic(77, 12, 1.0);
    let mut expected = Vec::new();
    // Interleave: run a quantum of the user task, then a packet arrives
    // while the CPU is busy (deferred).
    for pkt in &pkts {
        let out = r.k.run_current(minikernel::Budget::Insns(200));
        let busy = out == minikernel::Outcome::Budget;
        let v = r.receive(pkt, busy).unwrap();
        if busy {
            assert_eq!(v, None, "packet deferred while computing");
            expected.push(Verdict::Forward);
        }
    }
    assert!(r.backlog() > 0, "some packets queued behind the task");
    // Task done (or out of rounds): drain the backlog.
    while r.k.run_current(minikernel::Budget::Insns(500)) == minikernel::Outcome::Budget {}
    let verdicts = r.drain().unwrap();
    assert_eq!(verdicts, expected);
    assert_eq!(r.backlog(), 0);
    // Every packet (inline or deferred) was tallied as UDP.
    let counts = r.protocol_counts().unwrap();
    assert_eq!(counts, vec![(17, pkts.len() as u32)]);
}
