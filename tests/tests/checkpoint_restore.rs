//! Differential suite for durable world checkpoint/restore.
//!
//! The restore contract (DESIGN.md §11): a world restored from a
//! checkpoint image is cycle/stat/fault **byte-identical** going
//! forward to the world that was saved — on the figure7 packet-filter
//! workload, the campaign-style adversarial call mix and the fleet
//! rollout serving loop, with the predecode fast path on and off — and
//! a tampered image is *always* rejected with a typed error, for every
//! corruption class at every image layer. A crash-recovery drill must
//! walk corrupted lineage generations with bounded retries, fall back
//! to a cold boot when the lineage is exhausted, and report
//! byte-identically at every worker count.

use asm86::Assembler;
use fleet::drill::{self, DrillConfig, DrillOutcome};
use fleet::report::render_drill;
use fleet::Replica;
use minikernel::Kernel;
use netfilter::{extended_conjunction, reference_packet};
use palladium::kernel_ext::{ExtSegmentId, KernelExtensions};
use palladium::supervisor::RestartPolicy;
use palladium::{DlopenOptions, Session};
use seedrng::SeedRng;
use x86sim::image::{kind, Dec, Enc, ImageView};
use x86sim::machine::Machine;

// --- figure7 workload: kernel + kernel extensions ------------------------

/// Boots the figure7 world: a kernel with the 20-term compiled
/// conjunction filter loaded as a kernel extension.
fn figure7_world(predecode: bool) -> (Kernel, KernelExtensions, ExtSegmentId) {
    let mut k = Kernel::boot();
    k.m.set_predecode(predecode);
    let mut kx = KernelExtensions::new(&mut k).expect("kx");
    let seg = kx.create_segment(&mut k, 16).expect("segment");
    let obj = netfilter::compile::compile(&extended_conjunction(20));
    kx.insmod(&mut k, seg, "pktfilter", &obj, &["filter"])
        .expect("insmod");
    (k, kx, seg)
}

/// Drives `n` packets through the protected filter path and returns the
/// observable trajectory: per-packet verdicts plus (cycles, insns).
fn drive_figure7(
    k: &mut Kernel,
    kx: &mut KernelExtensions,
    seg: ExtSegmentId,
    n: u32,
) -> (Vec<u32>, u64, u64) {
    let (area, _) = kx.shared_area_linear(seg).expect("shared area");
    let pkt = reference_packet(96);
    let mut verdicts = Vec::new();
    for _ in 0..n {
        assert!(k.m.host_write(area, &pkt));
        let v = kx
            .invoke(k, seg, "filter", pkt.len() as u32)
            .expect("invoke");
        verdicts.push(v);
    }
    (verdicts, k.m.cycles(), k.m.insns())
}

/// Serializes (kernel, kernel extensions) into one buffer and back.
fn save_figure7(k: &Kernel, kx: &KernelExtensions) -> Vec<u8> {
    let mut e = Enc::new();
    e.blob(&k.save_image());
    kx.save_into(&mut e);
    e.into_vec()
}

fn restore_figure7(bytes: &[u8]) -> (Kernel, KernelExtensions) {
    let mut d = Dec::new(bytes, "figure7");
    let k = Kernel::restore_image(d.blob().unwrap()).expect("kernel restore");
    let kx = KernelExtensions::restore_from(&mut d).expect("kx restore");
    d.finish().expect("no trailing bytes");
    (k, kx)
}

/// Figure7 differential: restore mid-workload, continue both worlds,
/// and require identical verdicts, cycles, instructions and a
/// byte-identical re-checkpoint — with predecode on and off.
#[test]
fn figure7_restore_is_byte_identical_forward() {
    for predecode in [true, false] {
        let (mut k, mut kx, seg) = figure7_world(predecode);
        drive_figure7(&mut k, &mut kx, seg, 25);
        let img = save_figure7(&k, &kx);

        let (mut rk, mut rkx) = restore_figure7(&img);
        let live = drive_figure7(&mut k, &mut kx, seg, 40);
        let restored = drive_figure7(&mut rk, &mut rkx, seg, 40);
        assert_eq!(
            live, restored,
            "predecode={predecode}: trajectories diverged"
        );
        assert_eq!(
            save_figure7(&k, &kx),
            save_figure7(&rk, &rkx),
            "predecode={predecode}: re-checkpoints diverged"
        );
    }
}

// --- campaign-style workload: session + adversarial call mix -------------

/// Boots a session with a verified well-behaved extension and a wild
/// one that dereferences an unmapped kernel address.
fn campaign_world(predecode: bool) -> (Session, u32, u32) {
    let mut s = Session::new().expect("boot");
    s.set_predecode(predecode);
    let good = Assembler::assemble("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n").unwrap();
    let h = s
        .dlopen(&good, &DlopenOptions::new().verify(&["double"]))
        .expect("dlopen good");
    let double = s.dlsym(h, "double").expect("dlsym");
    let wild = Assembler::assemble("stray:\nmov eax, [0x00400000]\nret\n").unwrap();
    let hw = s.dlopen(&wild, &DlopenOptions::new()).expect("dlopen wild");
    let stray = s.dlsym(hw, "stray").expect("dlsym wild");
    (s, double, stray)
}

/// The adversarial mix: seeded interleaving of good calls and faulting
/// calls. Returns the trajectory — results, fault debug strings, call
/// counters, cycles.
fn drive_campaign(s: &mut Session, double: u32, stray: u32, seed: u64, n: u32) -> String {
    let mut r = SeedRng::new(seed);
    let mut log = String::new();
    for i in 0..n {
        if r.gen_range(0, 4) == 0 {
            let e = s.call(stray, i).expect_err("wild call must abort");
            log.push_str(&format!("{i}: fault {e:?}\n"));
        } else {
            let arg = r.gen_range(0, 1 << 15);
            let v = s.call(double, arg).expect("good call");
            assert_eq!(v, arg * 2);
            log.push_str(&format!("{i}: ok {v}\n"));
        }
    }
    let app = s.app();
    log.push_str(&format!(
        "cycles {} insns {} calls {} aborted {}\n",
        s.kernel().m.cycles(),
        s.kernel().m.insns(),
        app.calls,
        app.aborted_calls
    ));
    log
}

/// Satellite property test: at a *random* step of the seeded workload,
/// save → restore → continue equals the uninterrupted run byte-for-byte
/// (call results, fault log, counters, cycles — and the final image).
#[test]
fn random_step_save_restore_continue_equals_uninterrupted_run() {
    for (trial, predecode) in [(0u64, true), (1, false), (2, true), (3, false)] {
        let seed = 0x5AFE_0001 ^ trial;
        let cut = SeedRng::new(seed ^ 0xCC).gen_range(5, 70);

        // The uninterrupted run: one world, straight through.
        let (mut base, double, stray) = campaign_world(predecode);
        let full = drive_campaign(&mut base, double, stray, seed, 80);

        // The interrupted run: same world, checkpointed at `cut`,
        // restored, and continued with the *same* rng stream.
        let (mut s, d2, s2) = campaign_world(predecode);
        assert_eq!(
            (d2, s2),
            (double, stray),
            "world layout must be deterministic"
        );
        let mut r = SeedRng::new(seed);
        let mut log = String::new();
        for i in 0..cut {
            if r.gen_range(0, 4) == 0 {
                let e = s.call(stray, i).expect_err("wild call must abort");
                log.push_str(&format!("{i}: fault {e:?}\n"));
            } else {
                let arg = r.gen_range(0, 1 << 15);
                log.push_str(&format!("{i}: ok {}\n", s.call(double, arg).unwrap()));
            }
        }
        let img = s.checkpoint();
        drop(s); // the crash
        let mut s = Session::restore(&img).expect("restore");
        for i in cut..80 {
            if r.gen_range(0, 4) == 0 {
                let e = s.call(stray, i).expect_err("wild call must abort");
                log.push_str(&format!("{i}: fault {e:?}\n"));
            } else {
                let arg = r.gen_range(0, 1 << 15);
                log.push_str(&format!("{i}: ok {}\n", s.call(double, arg).unwrap()));
            }
        }
        let app = s.app();
        log.push_str(&format!(
            "cycles {} insns {} calls {} aborted {}\n",
            s.kernel().m.cycles(),
            s.kernel().m.insns(),
            app.calls,
            app.aborted_calls
        ));
        assert_eq!(
            full, log,
            "seed {seed:#x}, cut at {cut}: trajectories diverged"
        );
        assert_eq!(
            base.checkpoint(),
            s.checkpoint(),
            "seed {seed:#x}: final images diverged"
        );
    }
}

/// The fork interleaving: fork a warmed session, checkpoint the fork,
/// restore it, and require fork, restored-fork and parent-continuation
/// to stay mutually consistent — forks and restores compose.
#[test]
fn fork_then_checkpoint_then_restore_interleaving() {
    let (parent, double, stray) = campaign_world(true);

    let mut fork = parent.fork();
    let fork_log = drive_campaign(&mut fork, double, stray, 99, 30);
    let img = fork.checkpoint();

    // A second fork replays the same trajectory, then restores from the
    // first fork's checkpoint and must land in the identical state.
    let mut twin = parent.fork();
    let twin_log = drive_campaign(&mut twin, double, stray, 99, 30);
    assert_eq!(fork_log, twin_log);
    assert_eq!(
        twin.checkpoint(),
        img,
        "fork trajectories must re-serialize equal"
    );

    let restored = Session::restore(&img).expect("restore of a forked world");
    assert_eq!(restored.checkpoint(), img, "restore must round-trip");

    // All three continue in lockstep; the parent was never disturbed.
    let mut restored = restored;
    let a = drive_campaign(&mut fork, double, stray, 7, 20);
    let b = drive_campaign(&mut restored, double, stray, 7, 20);
    assert_eq!(a, b, "fork and restored fork diverged");
    let mut parent = parent;
    let p = drive_campaign(&mut parent, double, stray, 99, 30);
    assert_eq!(
        p, fork_log,
        "parent was disturbed by fork/checkpoint/restore"
    );
}

// --- rollout workload: fleet replica -------------------------------------

/// Rollout differential: a replica restored mid-stream re-serves the
/// identical request stream — stats, rounds and re-checkpoint all
/// byte-identical, predecode on and off.
#[test]
fn replica_restore_is_byte_identical_forward() {
    for predecode in [true, false] {
        let mut live = Replica::new(
            5,
            2,
            fleet::version_images("filter", 1),
            RestartPolicy::default(),
            20_000,
            predecode,
        )
        .expect("replica");
        for _ in 0..4 {
            live.serve_round(30);
        }
        let img = live.checkpoint();
        let mut restored = Replica::restore(&img).expect("restore");
        for _ in 0..5 {
            let a = live.serve_round(30);
            let b = restored.serve_round(30);
            assert_eq!(a, b, "predecode={predecode}: round stats diverged");
        }
        assert_eq!(live.stats, restored.stats);
        assert_eq!(
            live.checkpoint(),
            restored.checkpoint(),
            "predecode={predecode}: re-checkpoints diverged"
        );
    }
}

// --- corruption matrix: every class × every image layer ------------------

/// Every corruption class applied to every image layer must be rejected
/// with a typed error — never accepted, never a host panic.
#[test]
fn corruption_matrix_rejects_every_class_at_every_layer() {
    let (session, double, _) = campaign_world(true);
    let mut warm = session.fork();
    warm.call(double, 5).unwrap();

    let machine_img = warm.kernel().m.save_image();
    let kernel_img = warm.kernel().save_image();
    let session_img = warm.checkpoint();
    let replica_img = Replica::new(
        1,
        0,
        fleet::version_images("filter", 1),
        RestartPolicy::default(),
        20_000,
        true,
    )
    .expect("replica")
    .checkpoint();

    let layers: [(&str, u32, &[u8]); 4] = [
        ("machine", kind::MACHINE, &machine_img),
        ("kernel", kind::KERNEL, &kernel_img),
        ("session", kind::SESSION, &session_img),
        ("replica", kind::REPLICA, &replica_img),
    ];
    let mut r = SeedRng::new(0xC0_44A7);
    for (layer, k, img) in layers {
        assert!(
            ImageView::parse(img, k).is_ok(),
            "{layer}: pristine image must parse"
        );
        for class in chaos::ImageCorruption::ALL {
            for trial in 0..6 {
                let bad = chaos::corrupt::corrupt_image(img, class, &mut r);
                assert_ne!(bad, *img, "{layer}/{}: injector was a no-op", class.tag());
                let err = ImageView::parse(&bad, k).err().unwrap_or_else(|| {
                    panic!(
                        "{layer}/{} trial {trial}: corrupt image silently accepted",
                        class.tag()
                    )
                });
                // The error is typed and printable, not a panic.
                assert!(!format!("{err}").is_empty());
            }
        }
    }

    // And the layer restore entry points agree with the parser.
    let mut r = SeedRng::new(0xC0_44A8);
    let (_, bad) = chaos::corrupt::corrupted_image(&machine_img, &mut r);
    assert!(Machine::restore_image(&bad).is_err());
    let (_, bad) = chaos::corrupt::corrupted_image(&kernel_img, &mut r);
    assert!(Kernel::restore_image(&bad).is_err());
    let (_, bad) = chaos::corrupt::corrupted_image(&session_img, &mut r);
    assert!(Session::restore(&bad).is_err());
    let (_, bad) = chaos::corrupt::corrupted_image(&replica_img, &mut r);
    assert!(Replica::restore(&bad).is_err());
}

/// Images must also refuse to restore as the wrong layer: a kernel
/// image is not a session, whatever its CRCs say.
#[test]
fn kind_confusion_is_rejected() {
    let (session, _, _) = campaign_world(true);
    let kernel_img = session.kernel().save_image();
    assert!(ImageView::parse(&kernel_img, kind::SESSION).is_err());
    assert!(Session::restore(&kernel_img).is_err());
    let session_img = session.checkpoint();
    assert!(Kernel::restore_image(&session_img).is_err());
}

// --- crash-recovery drills -----------------------------------------------

fn drill_cfg(corrupt_latest: u32, max_walkback: u32) -> DrillConfig {
    DrillConfig {
        seed: 0xD411,
        replicas: 3,
        rounds: 14,
        requests_per_round: 20,
        checkpoint_every: 2,
        crash_round: 9,
        victim: 1,
        corrupt_latest,
        max_walkback,
        ..DrillConfig::default()
    }
}

/// The healthy-path drill: latest checkpoint intact, plain restore,
/// convergence, zero healthy-replica drops.
#[test]
fn drill_restores_from_latest_intact_checkpoint() {
    let r = drill::run(&drill_cfg(0, 3), &fleet::version_images("filter", 1));
    assert_eq!(r.outcome, DrillOutcome::Restored);
    assert_eq!(r.generations_walked, 0);
    assert!(r.recovered_generation.is_some());
    assert!(r.rounds_to_converge.is_some(), "victim never converged");
    assert_eq!(r.healthy_replica_drops, 0);
    assert_eq!(r.dropped, 0, "graceful degradation never drops");
    assert!(r.recovery_degraded > 0, "the crash must cost 503s");
    assert!(r.violations.is_empty(), "{:?}", r.violations);
    assert!(r.leak_failures.is_empty(), "{:?}", r.leak_failures);
}

/// The walk-back path: corrupted newest generations are rejected with
/// typed errors (visible in the event log) before an older one restores.
#[test]
fn drill_walks_back_past_corrupt_generations() {
    let r = drill::run(&drill_cfg(2, 4), &fleet::version_images("filter", 1));
    assert_eq!(r.outcome, DrillOutcome::RestoredAfterWalkback);
    assert_eq!(r.corrupted_generations, 2);
    assert_eq!(r.generations_walked, 2);
    assert!(r.events.iter().filter(|e| e.contains("rejected")).count() >= 2);
    assert!(r.rounds_to_converge.is_some());
    assert_eq!(r.healthy_replica_drops, 0);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

/// The exhaustion path: every generation within the walk-back budget is
/// corrupt, so the victim cold-boots — degraded recovery, never an
/// outage, and still zero healthy-replica drops.
#[test]
fn drill_cold_boots_when_walkback_budget_is_exhausted() {
    let r = drill::run(&drill_cfg(4, 2), &fleet::version_images("filter", 1));
    assert_eq!(r.outcome, DrillOutcome::ColdBooted);
    assert!(r.recovered_generation.is_none());
    assert_eq!(
        r.generations_walked, 2,
        "bounded retries must stop at the budget"
    );
    assert_eq!(r.healthy_replica_drops, 0);
    assert_eq!(r.dropped, 0);
    assert!(r.violations.is_empty(), "{:?}", r.violations);
}

/// The drill report — down to the rendered text — is byte-identical at
/// every worker count and boot mode.
#[test]
fn drill_report_is_identical_across_jobs_and_boot() {
    let base = drill_cfg(2, 4);
    let images = fleet::version_images("filter", 1);
    let serial = drill::run(&base, &images);
    for (jobs, fork_boot) in [(8usize, true), (4, false)] {
        let cfg = DrillConfig {
            jobs,
            fork_boot,
            ..base.clone()
        };
        let par = drill::run(&cfg, &images);
        assert_eq!(serial, par, "jobs={jobs} fork_boot={fork_boot}");
        assert_eq!(render_drill(&serial), render_drill(&par));
    }
}
