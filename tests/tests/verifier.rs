//! Load-time static verification, end to end: shipped extensions are
//! admitted unchanged, hostile ones are rejected with typed errors,
//! admission failures never burn supervision strikes, and the verified
//! fast path changes host-side work only — simulated results and cycle
//! charges are identical either way.

use asm86::Assembler;
use minikernel::Kernel;
use palladium::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use palladium::supervisor::{ModuleImage, RestartPolicy, SupervisedState, Supervisor};
use palladium::user_ext::{DlopenOptions, ExtensibleApp, PalError};
use palladium::VerifyError;
use seedrng::SeedRng;

fn obj(src: &str) -> asm86::Object {
    Assembler::assemble(src).expect("assembles")
}

fn verifying() -> SegmentConfig {
    SegmentConfig {
        verify: true,
        ..SegmentConfig::default()
    }
}

// --- kernel side -----------------------------------------------------------

/// The same module, loaded verified and unverified: identical return
/// values and identical simulated cycle charges. The attestation only
/// licenses skipping host-side work (per-call entry re-validation) and
/// enabling predecode eagerly — both invisible to the guest.
#[test]
fn verified_dispatch_is_cycle_identical_to_unverified() {
    let src = "dbl:\nmov eax, [esp+4]\nadd eax, eax\nret\n";

    let run = |config: SegmentConfig| {
        let mut k = Kernel::boot();
        let mut kx = KernelExtensions::new(&mut k).unwrap();
        let seg = kx.create_segment_with(&mut k, 8, config).unwrap();
        kx.insmod(&mut k, seg, "m", &obj(src), &["dbl"]).unwrap();
        let before = k.m.cycles();
        let v = kx.invoke(&mut k, seg, "dbl", 21).unwrap();
        (v, k.m.cycles() - before, kx.dispatch)
    };

    let (v1, cycles1, stats1) = run(verifying());
    let (v0, cycles0, stats0) = run(SegmentConfig::default());
    assert_eq!(v1, 42);
    assert_eq!(v0, 42);
    assert_eq!(
        cycles1, cycles0,
        "attestation must not change simulated cycle charges"
    );
    assert_eq!(stats1.verified, 1);
    assert_eq!(stats1.entry_checks, 0);
    assert_eq!(stats0.verified, 0);
    assert_eq!(stats0.entry_checks, 1);
    assert_eq!(stats0.entry_check_failures, 0);
}

/// A rejected module leaves the segment untouched: the typed error names
/// the violation, nothing was written, and a benign module still loads
/// into the same segment afterwards.
#[test]
fn rejected_module_leaves_segment_loadable() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment_with(&mut k, 8, verifying()).unwrap();

    let err = kx
        .insmod(
            &mut k,
            seg,
            "esc",
            &obj("esc:\nmov eax, [0x100000]\nret\n"),
            &["esc"],
        )
        .unwrap_err();
    match err {
        KextError::Verify(VerifyError::OutOfSegment { lo, .. }) => {
            assert_eq!(lo, 0x0010_0000);
        }
        other => panic!("expected an out-of-segment rejection, got {other:?}"),
    }

    kx.insmod(&mut k, seg, "ok", &obj("f:\nmov eax, 9\nret\n"), &["f"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "f", 0).unwrap(), 9);
}

/// The hostile classes the paper's protection model exists for, each
/// caught statically with its own typed error.
#[test]
fn hostile_kernel_modules_get_typed_rejections() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();

    type Classifier = fn(&VerifyError) -> bool;
    let cases: [(&str, &str, Classifier); 4] = [
        ("h:\nhlt\nret\n", "h", |e| {
            matches!(e, VerifyError::Privileged { .. })
        }),
        ("p:\nint 0x80\nret\n", "p", |e| {
            matches!(e, VerifyError::ForbiddenVector { vector: 0x80, .. })
        }),
        ("g:\nlcall 0x1b, 0\nret\n", "g", |e| {
            matches!(e, VerifyError::ForbiddenGate { .. })
        }),
        ("w:\nmov eax, 0x200000\nmov [eax], eax\nret\n", "w", |e| {
            matches!(e, VerifyError::OutOfSegment { .. })
        }),
    ];
    for (src, entry, matches_class) in cases {
        let seg = kx.create_segment_with(&mut k, 8, verifying()).unwrap();
        match kx.insmod(&mut k, seg, "m", &obj(src), &[entry]) {
            Err(KextError::Verify(e)) => {
                assert!(matches_class(&e), "{entry}: wrong class: {e:?}")
            }
            other => panic!("{entry}: expected verify rejection, got {other:?}"),
        }
    }
}

/// Every corruption class from the chaos generators is rejected at
/// admission or — if the damage happened to leave a clean program —
/// admitted and then contained like any extension. No third outcome.
#[test]
fn corrupted_modules_rejected_or_contained() {
    let mut r = SeedRng::new(0x5EED_1A40);
    let mut rejected = 0u32;
    let mut admitted = 0u32;
    for _ in 0..60 {
        let (_kind, cobj) = chaos::corrupt::corrupted_object(&mut r);
        let mut k = Kernel::boot();
        let mut kx = KernelExtensions::new(&mut k).unwrap();
        let seg = kx.create_segment_with(&mut k, 8, verifying()).unwrap();
        match kx.insmod(&mut k, seg, "m", &cobj, &["entry"]) {
            Err(KextError::Verify(_) | KextError::Link(_)) => rejected += 1,
            Err(other) => panic!("unexpected admission error: {other:?}"),
            Ok(()) => {
                admitted += 1;
                // Whatever survived verification must run contained:
                // a typed result, segment state still coherent.
                let _ = kx.invoke(&mut k, seg, "entry", 1);
            }
        }
    }
    assert_eq!(rejected + admitted, 60);
    assert!(rejected > admitted, "{rejected} rejected vs {admitted}");
}

// --- supervision -----------------------------------------------------------

/// A staged module image that fails verification at restart tombstones
/// the extension immediately — deterministic admission failures must not
/// loop through the backoff ladder burning restart strikes.
#[test]
fn verify_failure_at_restart_tombstones_without_burning_strikes() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let mut sup = Supervisor::new(RestartPolicy::immediate());

    // A runaway loop verifies clean (the verifier proves absence of
    // *violations*, not termination) but dies on the CPU-time limit.
    let runaway = ModuleImage::new("spin", obj("entry:\nspin:\njmp spin\n"), &["entry"]);
    let config = SegmentConfig {
        quarantine_threshold: 1,
        ..verifying()
    };
    let id = sup
        .install(&mut k, &mut kx, 8, config, vec![runaway])
        .unwrap();

    // Stage a hostile replacement for the next restart.
    sup.stage_images(
        id,
        vec![ModuleImage::new(
            "evil",
            obj("entry:\nint 0x80\nret\n"),
            &["entry"],
        )],
    );

    // Kill it: time-limit abort, one-strike quarantine, restart due.
    let err = sup.invoke(&mut k, &mut kx, id, "entry", 0).unwrap_err();
    assert!(matches!(
        err,
        palladium::supervisor::SupervisorError::Kext(KextError::TimeLimit)
    ));
    assert_eq!(sup.charged_restarts(id), 1);

    // The due restart loads the staged image, which fails verification:
    // immediate tombstone, no extra strikes, no further backoff.
    let state = sup.poll(&mut k, &mut kx, id);
    assert_eq!(state, SupervisedState::Tombstoned);
    assert_eq!(sup.tombstoned, 1);
    assert_eq!(
        sup.charged_restarts(id),
        1,
        "a deterministic admission failure must not burn restart strikes"
    );
}

// --- user side -------------------------------------------------------------

/// A `DlopenOptions::verify` load admits the quickstart extension, attaches an
/// attestation, and protected calls take the verified fast path while
/// returning exactly the same results.
#[test]
fn verified_user_extension_round_trip() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let fib = obj(
        "fib:\nmov ecx, [esp+4]\nmov eax, 0\nmov edx, 1\nfl:\ncmp ecx, 0\nje fd\n\
         mov ebx, eax\nadd ebx, edx\nmov eax, edx\nmov edx, ebx\ndec ecx\njmp fl\nfd:\nret\n",
    );
    let h = app
        .dlopen(&mut k, &fib, &DlopenOptions::new().verify(&["fib"]))
        .unwrap();
    let att = app.attestation(h).unwrap().expect("attestation recorded");
    assert_eq!(att.entries, 1);
    assert!(att.insns >= 12);

    let f = app.seg_dlsym(&mut k, h, "fib").unwrap();
    assert_eq!(app.call_extension(&mut k, f, 10).unwrap(), 55);
    assert_eq!(app.verified_calls, 1);
}

/// A hostile extension is rejected with `PalError::Verify` and unloaded;
/// the application keeps working and can load a benign one afterwards.
#[test]
fn hostile_user_extension_rejected_and_unloaded() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let evil = obj(&format!(
        "evil:\nmov eax, 0x41414141\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ));
    match app.dlopen(&mut k, &evil, &DlopenOptions::new().verify(&["evil"])) {
        Err(PalError::Verify(VerifyError::OutOfSegment { .. })) => {}
        other => panic!("expected out-of-segment rejection, got {other:?}"),
    }

    let h = app
        .dlopen(
            &mut k,
            &obj("id:\nmov eax, [esp+4]\nret\n"),
            &DlopenOptions::new().verify(&["id"]),
        )
        .unwrap();
    let f = app.seg_dlsym(&mut k, h, "id").unwrap();
    assert_eq!(app.call_extension(&mut k, f, 77).unwrap(), 77);
}

/// An unverified load of the same hostile extension still works and is
/// contained by hardware at run time — verification is an *admission*
/// policy layered over the protection model, not a replacement for it.
#[test]
fn unverified_load_of_hostile_extension_stays_contained() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let evil = obj(&format!(
        "evil:\nmov eax, 0x41414141\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ));
    let h = app.dlopen(&mut k, &evil, &DlopenOptions::new()).unwrap();
    let f = app.seg_dlsym(&mut k, h, "evil").unwrap();
    assert!(app.call_extension(&mut k, f, 0).is_err());
    assert_eq!(app.aborted_calls, 1);
}
