//! The paper's headline claims, asserted end to end against the
//! reproduction (the EXPERIMENTS.md index points here).

use bench::{measure_figure7, measure_micro, measure_table1, measure_table2, measure_table3};
use webserver::ExecModel;

#[test]
fn abstract_claim_protected_call_costs_142_cycles() {
    // "a protected procedure call and return costs 142 CPU cycles on a
    // Pentium 200MHz machine running Linux."
    let (inter, intra, _) = measure_table1().totals();
    assert_eq!(inter, 142);
    assert_eq!(intra, 10);
}

#[test]
fn table1_rows_match_exactly() {
    let t = measure_table1();
    let paper = [
        ("Setting up stack", 26u64, 2u64, 5u64),
        ("Calling function", 34, 3, 22),
        ("Returning to caller", 75, 3, 44),
        ("Restoring state", 7, 2, 5),
    ];
    for (row, (name, inter, intra, hw)) in t.rows.iter().zip(paper) {
        assert_eq!(row.name, name);
        assert_eq!(row.inter, inter, "{name} inter");
        assert_eq!(row.intra, intra, "{name} intra");
        // The hardware column is analytic; within a cycle of the paper's.
        assert!(
            (row.hardware - hw as f64).abs() <= 1.0,
            "{name} hardware {} vs {hw}",
            row.hardware
        );
    }
}

#[test]
fn section51_palladium_beats_l4_by_100_cycles_with_half_the_crossings() {
    use baselines::ipc;
    assert_eq!(ipc::l4().cycles - ipc::palladium().cycles, 100);
    assert_eq!(ipc::palladium().crossings, 2);
    assert_eq!(ipc::l4().crossings, 4);
}

#[test]
fn table2_constant_protection_delta_and_rpc_gap() {
    let rows = measure_table2();
    // "The performance difference between an unprotected procedure call
    // and a Palladium's protected remains largely constant, about 118
    // cycles" — ours is the full 142-cycle mechanism minus the shared
    // call overhead; assert it is constant across sizes and in the
    // 100-250 cycle band.
    let deltas: Vec<f64> = rows
        .iter()
        .map(|r| (r.palladium_us - r.unprotected_us) * 200.0)
        .collect();
    for d in &deltas {
        assert!((100.0..250.0).contains(d), "delta {d} cycles");
    }
    let spread = deltas
        .iter()
        .fold(0.0f64, |m, d| m.max((d - deltas[0]).abs()));
    assert!(spread < 2.0, "constant across sizes (spread {spread})");

    // "more than two orders of magnitude slower ... when the input size
    // is 32 bytes" and "about 14 times slower" at 256 bytes.
    assert!(rows[0].rpc_us / rows[0].palladium_us > 100.0);
    let ratio256 = rows[3].rpc_us / rows[3].palladium_us;
    assert!((8.0..40.0).contains(&ratio256), "got {ratio256}");
}

#[test]
fn table3_claims() {
    let (rows, _) = measure_table3();
    let idx = |m: ExecModel| ExecModel::ALL.iter().position(|x| *x == m).unwrap();
    for r in &rows {
        let prot = r.rps[idx(ExecModel::LibCgiProtected)];
        let unprot = r.rps[idx(ExecModel::LibCgiUnprotected)];
        let stat = r.rps[idx(ExecModel::StaticFile)];
        let fast = r.rps[idx(ExecModel::FastCgi)];
        // "unprotected LibCGI and protected LibCGI are within 3% and 5%
        // of the bound, respectively."
        assert!(unprot / stat > 0.95, "{}: unprotected near bound", r.size);
        assert!(prot / stat > 0.93, "{}: protected near bound", r.size);
        // "In all cases, protected LibCGI performs within 4% of
        // unprotected LibCGI."
        assert!((unprot - prot) / unprot < 0.04, "{}: 4% claim", r.size);
        // "protected LibCGI is at least twice as fast as FastCGI for
        // data size smaller than 10 KBytes."
        if r.size < 10 * 1024 {
            assert!(prot >= 2.0 * fast, "{}: 2x FastCGI claim", r.size);
        }
    }
}

#[test]
fn figure7_claims() {
    let pts = measure_figure7();
    // "Beyond a fixed invocation overhead, the performance overhead of
    // the kernel-extension-based packet filter increases with a very
    // small slope."
    let pd_slope = (pts[4].palladium_cycles - pts[0].palladium_cycles) as f64 / 4.0;
    assert!(pd_slope < 10.0, "compiled slope {pd_slope}");
    // "BPF's interpretation overhead increases significantly."
    let bpf_slope = (pts[4].bpf_cycles - pts[0].bpf_cycles) as f64 / 4.0;
    assert!(bpf_slope > 50.0, "interpreted slope {bpf_slope}");
    // "When the number of terms in the filter rule is 4, the
    // extension-based packet filter is more than twice as fast."
    assert!(pts[4].bpf_cycles >= 2 * pts[4].palladium_cycles);
}

#[test]
fn section5_micro_claims() {
    let m = measure_micro();
    assert_eq!(m.seg_load_cycles, 12, "12-cycle segment load");
    assert!(m.seg_load_documented <= 3.0, "manual says 2-3");
    assert_eq!(m.sigsegv_cycles, 3_325, "SIGSEGV delivery");
    assert_eq!(m.kext_abort_cycles, 1_020, "kernel-extension abort");
    // "dlopen and seg_dlopen take 400 usec and 420 usec" — the marking
    // cost is "completely overshadowed by the dynamic library open cost".
    assert!((m.dlopen_us - 400.0).abs() < 40.0);
    assert!((m.seg_dlopen_us - 420.0).abs() < 40.0);
    let marking_share = (m.seg_dlopen_us - m.dlopen_us) / m.seg_dlopen_us;
    assert!(
        marking_share < 0.10,
        "marking overshadowed: {marking_share}"
    );
}

#[test]
fn protection_overhead_is_independent_of_extension_work() {
    // §2.3: "Hardware-based protection mechanisms do not incur
    // per-instruction overhead... The cost of invoking an extension is
    // typically a one-time cost associated with each protection-domain
    // crossing." Measure (protected - unprotected) for extension bodies
    // of widely varying size: the delta must be a constant.
    use asm86::Assembler;
    use minikernel::Kernel;
    use palladium::user_ext::{DlopenOptions, ExtensibleApp};

    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let mut deltas = Vec::new();

    for body_len in [1usize, 16, 128, 512] {
        let mut src = String::from("work:\n");
        for i in 0..body_len {
            src.push_str(&format!("add eax, {i}\n"));
        }
        src.push_str("ret\n");
        let obj = Assembler::assemble(&src).unwrap();

        // Protected: as an extension.
        let h = app.dlopen(&mut k, &obj, &DlopenOptions::new()).unwrap();
        let prot = app.seg_dlsym(&mut k, h, "work").unwrap();
        // Unprotected: same code as application-resident.
        let unprot = app.install_app_code(&mut k, &obj).unwrap()["work"];

        let warm = |k: &mut Kernel, app: &mut ExtensibleApp, f: u32| {
            app.call_extension(k, f, 0).unwrap();
            let a = k.m.cycles();
            app.call_extension(k, f, 0).unwrap();
            k.m.cycles() - a
        };
        let p = warm(&mut k, &mut app, prot);
        let u = warm(&mut k, &mut app, unprot);
        deltas.push(p - u);
    }

    // All deltas equal: the crossing is a one-time cost.
    assert!(
        deltas.windows(2).all(|w| w[0] == w[1]),
        "constant crossing cost, got {deltas:?}"
    );
    // And it is the Figure 6 mechanism cost. (Table 1's 142 - 10 = 132
    // compares against an unprotected callee with a frame prologue and
    // caller cleanup; this harness uses a bare `ret` callee on both
    // sides, leaving those 3 cycles in the delta.)
    assert_eq!(deltas[0], 135, "the constant protection premium");
}

#[test]
fn sfi_overhead_scales_with_work_unlike_palladium() {
    // The other half of §2.3: software sandboxing taxes every memory
    // operation, so its overhead grows with the body.
    use asm86::isa::{Insn, Mem, Reg, Src};
    use baselines::sfi::{rewrite, Sandbox, SfiPolicy};
    use x86sim::cycles::measured_cost;

    let sb = Sandbox {
        base: 0x0010_0000,
        size: 0x1_0000,
    };
    let cost = |insns: &[Insn]| -> u64 { insns.iter().map(measured_cost).sum() };
    let mut overheads = Vec::new();
    for n in [4usize, 32, 256] {
        let mut body = Vec::new();
        for i in 0..n {
            body.push(Insn::Store(
                Mem::abs(0x0010_0000 + 4 * i as u32),
                Src::Reg(Reg::Eax),
            ));
        }
        let (safe, _) = rewrite(&body, &sb, SfiPolicy::WriteProtect).unwrap();
        overheads.push(cost(&safe) - cost(&body));
    }
    assert!(
        overheads.windows(2).all(|w| w[1] > w[0] * 4),
        "SFI tax grows with the body: {overheads:?}"
    );
}
