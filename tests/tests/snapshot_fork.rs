//! Differential suite for copy-on-write world snapshot/fork.
//!
//! The fork contract (DESIGN.md §10): a forked world is cycle/stat/
//! fault **byte-identical** to the cold-booted world it replaces, and a
//! fork's writes never bleed into its siblings or the template. These
//! tests prove both directions at every layer — raw `Machine`,
//! `Kernel`, `palladium::Session`, chaos campaigns, and the leak audit
//! after `dlclose` inside a fork.

use asm86::Assembler;
use chaos::campaign::{self, CampaignConfig};
use chaos::oracle;
use minikernel::Kernel;
use palladium::kernel_ext::KernelExtensions;
use palladium::user_ext::{DlopenOptions, ExtensibleApp};
use palladium::{DlopenOptions as SessionDlopenOptions, Session};
use x86sim::machine::Machine;

// --- machine layer -------------------------------------------------------

/// Runs the same little program on a machine and returns the observable
/// trajectory: (cycles, insns, eax).
fn run_counter_program(m: &mut Machine, iters: u32) -> (u64, u64, u32) {
    use asm86::isa::Reg;
    for _ in 0..iters {
        assert!(m.step().is_none(), "program must not exit");
    }
    (m.cycles(), m.insns(), m.cpu.reg(Reg::Eax))
}

fn counter_machine() -> Machine {
    use asm86::isa::SegReg;
    use x86sim::desc::{Descriptor, Selector};

    let src = "\
loop_top:
    add eax, 1
    mov [0x4000], eax
    jmp loop_top
";
    let obj = Assembler::assemble(src).unwrap();
    let image = obj
        .link(0x1000, &std::collections::BTreeMap::new())
        .unwrap();
    let mut m = Machine::new();
    let c = m.gdt.push(Descriptor::flat_code(0));
    let d = m.gdt.push(Descriptor::flat_data(0));
    m.mem.write_bytes(0x1000, &image);
    m.force_seg_from_table(SegReg::Cs, Selector::new(c, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(d, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(d, false, 0));
    m.cpu.set_reg(asm86::isa::Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;
    m
}

#[test]
fn forked_machine_is_byte_identical_to_its_template_trajectory() {
    // Warm a machine mid-loop, snapshot it, and run template vs fork
    // side by side: identical cycles, insns, registers, memory.
    let mut template = counter_machine();
    run_counter_program(&mut template, 50);
    let snap = template.snapshot();

    let mut a = snap.fork();
    let mut b = snap.fork();
    let ra = run_counter_program(&mut a, 200);
    let rb = run_counter_program(&mut b, 200);
    assert_eq!(ra, rb, "sibling forks share a trajectory");

    // The template continues independently and reaches the same state.
    let rt = run_counter_program(&mut template, 200);
    assert_eq!(rt, ra, "template trajectory == fork trajectory");
    assert_eq!(a.mem.read_u32(0x4000), b.mem.read_u32(0x4000));
}

#[test]
fn fork_writes_never_bleed_into_siblings_or_template() {
    let mut template = counter_machine();
    run_counter_program(&mut template, 10);
    let snap = template.snapshot();

    let mut a = snap.fork();
    let mut b = snap.fork();
    let before = snap.machine().mem.read_u32(0x4000);

    // Divergent writes in fork A: direct stores and guest execution.
    a.mem.write_u32(0x4000, 0xAAAA_0001);
    a.mem.write_bytes(0x7000, &[0xA5; 128]);
    run_counter_program(&mut a, 33);

    assert_eq!(snap.machine().mem.read_u32(0x4000), before, "template");
    assert_eq!(b.mem.read_u32(0x4000), before, "sibling");
    assert_eq!(b.mem.read_u8(0x7003), 0, "sibling never sees A's frames");

    // B still runs the undisturbed trajectory.
    let rb = run_counter_program(&mut b, 17);
    let mut cold = counter_machine();
    let rc = run_counter_program(&mut cold, 27);
    assert_eq!((rb.0, rb.1, rb.2), (rc.0, rc.1, rc.2));
}

#[test]
fn fork_is_cheap_shared_frames_materialize_lazily() {
    let mut template = counter_machine();
    run_counter_program(&mut template, 10);
    let resident = template.mem.resident_frames();
    assert!(resident >= 2);

    let snap = template.snapshot();
    let mut fork = snap.fork();
    assert_eq!(
        fork.mem.shared_frames(),
        resident,
        "a fresh fork shares every backed frame"
    );
    // One store materializes exactly the touched frame.
    fork.mem.write_u8(0x4000, 1);
    assert_eq!(fork.mem.shared_frames(), resident - 1);
}

// --- kernel + session layer ----------------------------------------------

#[test]
fn forked_session_matches_cold_booted_session_byte_for_byte() {
    let ext_src = "double:\nmov eax, [esp+4]\nadd eax, eax\nret\n";
    let ext = Assembler::assemble(ext_src).unwrap();

    // Cold world: boot, load, call.
    let mut cold = Session::new().expect("boot");
    let h_cold = cold
        .dlopen(&ext, &SessionDlopenOptions::new().verify(&["double"]))
        .expect("dlopen");
    let f_cold = cold.dlsym(h_cold, "double").expect("dlsym");
    cold.call(f_cold, 3).expect("warm");

    // Template world: identical sequence, then fork before measuring.
    let mut tmpl = Session::new().expect("boot");
    let h = tmpl
        .dlopen(&ext, &SessionDlopenOptions::new().verify(&["double"]))
        .expect("dlopen");
    let f = tmpl.dlsym(h, "double").expect("dlsym");
    tmpl.call(f, 3).expect("warm");
    let fork_point_cycles = tmpl.kernel().m.cycles();
    let mut fork = tmpl.fork();

    assert_eq!(
        fork.kernel().m.cycles(),
        cold.kernel().m.cycles(),
        "fork point matches cold boot cycle-exactly"
    );
    assert_eq!(fork.kernel().m.insns(), cold.kernel().m.insns());
    assert_eq!(fork.kernel().stats, cold.kernel().stats);
    assert!(
        fork.attestation(h).unwrap().is_some(),
        "attestation carried"
    );

    // Same calls from here on: byte-identical cycles, results, faults.
    for arg in [5u32, 21, 0x7FFF] {
        let (rf, rc) = (fork.call(f, arg).unwrap(), cold.call(f_cold, arg).unwrap());
        assert_eq!(rf, rc);
        assert_eq!(fork.kernel().m.cycles(), cold.kernel().m.cycles());
        assert_eq!(fork.kernel().m.insns(), cold.kernel().m.insns());
    }
    assert_eq!(fork.kernel().stats, cold.kernel().stats);

    // A faulting extension aborts identically in both worlds.
    let evil = Assembler::assemble(&format!(
        "f:\nmov eax, 1\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ))
    .unwrap();
    let eh_f = fork.dlopen(&evil, &SessionDlopenOptions::new()).unwrap();
    let eh_c = cold.dlopen(&evil, &SessionDlopenOptions::new()).unwrap();
    let ef = fork.dlsym(eh_f, "f").unwrap();
    let ec = cold.dlsym(eh_c, "f").unwrap();
    assert!(fork.call(ef, 0).is_err());
    assert!(cold.call(ec, 0).is_err());
    assert_eq!(fork.kernel().stats.faults, cold.kernel().stats.faults);
    assert_eq!(fork.kernel().m.cycles(), cold.kernel().m.cycles());

    // The template never moved while its fork worked.
    assert_eq!(tmpl.kernel().m.cycles(), fork_point_cycles);
}

#[test]
fn dlclose_in_a_fork_leaks_nothing_and_spares_the_template() {
    // Build a warmed template with kernel extensions installed, fork
    // it, load + call + dlclose an extension in the fork, and audit the
    // fork's ledgers. The template must stay byte-identical throughout.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("app");
    let kx = KernelExtensions::new(&mut k).expect("kx");
    let tmpl_cycles = k.m.cycles();
    let tmpl_resident = k.m.mem.resident_frames();

    let mut fk = k.clone();
    let mut fapp = app.clone();
    let fkx = kx.clone();

    let ext = Assembler::assemble("triple:\nmov eax, [esp+4]\nimul eax, 3\nret\n").unwrap();
    let h = fapp
        .dlopen(&mut fk, &ext, &DlopenOptions::new())
        .expect("dlopen in fork");
    let f = fapp.seg_dlsym(&mut fk, h, "triple").expect("dlsym");
    assert_eq!(fapp.call_extension(&mut fk, f, 7).unwrap(), 21);
    fapp.seg_dlclose(&mut fk, h).expect("dlclose");
    assert!(
        oracle::check_recovery(&fk, &fkx).is_empty(),
        "fork ledgers balance after dlclose"
    );

    // Template untouched: same cycles, same resident frames, and a call
    // loaded into *it* still behaves as a cold world would.
    assert_eq!(k.m.cycles(), tmpl_cycles);
    assert_eq!(k.m.mem.resident_frames(), tmpl_resident);
    let h2 = app
        .dlopen(&mut k, &ext, &DlopenOptions::new())
        .expect("dlopen in template");
    let f2 = app.seg_dlsym(&mut k, h2, "triple").expect("dlsym");
    assert_eq!(app.call_extension(&mut k, f2, 9).unwrap(), 27);
}

// --- chaos campaign layer ------------------------------------------------

/// Fork-boot vs cold-boot campaigns must produce byte-identical
/// reports: every event, outcome tag, counter and violation list.
#[test]
fn campaign_fork_boot_report_is_byte_identical_to_cold_boot() {
    let base = CampaignConfig {
        seed: 0xF0_4B07,
        steps: 300,
        probe_interval: 100,
        ..CampaignConfig::default()
    };
    let forked = campaign::run(&CampaignConfig {
        fork_boot: true,
        ..base.clone()
    });
    let cold = campaign::run(&CampaignConfig {
        fork_boot: false,
        ..base
    });
    assert_eq!(forked.events, cold.events);
    assert_eq!(forked.outcomes, cold.outcomes);
    assert_eq!(forked.violations, cold.violations);
    assert_eq!(forked.steps_run, cold.steps_run);
    assert_eq!(forked.guest_insns, cold.guest_insns);
    assert_eq!(forked.quarantines, cold.quarantines);
    assert_eq!(forked.kext_aborts, cold.kext_aborts);
    assert_eq!(forked.uext_aborts, cold.uext_aborts);
    assert_eq!(forked.restarts, cold.restarts);
    assert_eq!(forked.pages_reclaimed, cold.pages_reclaimed);
    assert_eq!(forked.host_panics, 0);
    assert_eq!(campaign::summarize(&forked), campaign::summarize(&cold));
}

// --- fleet layer ---------------------------------------------------------

/// Fork-boot vs cold-boot fleets must roll out byte-identically: same
/// event log, same per-replica summaries, same outcome.
#[test]
fn rollout_fork_boot_report_is_byte_identical_to_cold_boot() {
    use fleet::rollout::{self, RolloutConfig};

    let base = RolloutConfig {
        seed: 0xF0_4B07,
        replicas: 4,
        rounds: 12,
        requests_per_round: 10,
        ..RolloutConfig::default()
    };
    let old = fleet::working_version_images("flt", 100, 40);
    let new = fleet::working_version_images("flt", 101, 40);
    let forked = rollout::run(
        &RolloutConfig {
            fork_boot: true,
            ..base.clone()
        },
        &old,
        &new,
    );
    let cold = rollout::run(
        &RolloutConfig {
            fork_boot: false,
            ..base
        },
        &old,
        &new,
    );
    assert_eq!(forked, cold, "rollout reports byte-identical");
}

/// Fork-boot campaigns stay worker-count invariant (the parex contract
/// composes with the fork template shared across workers).
#[test]
fn fork_boot_campaign_is_jobs_invariant() {
    let cfg = |jobs| CampaignConfig {
        seed: 0x5AFE_F0CC,
        steps: 150,
        probe_interval: 0,
        jobs,
        fork_boot: true,
        ..CampaignConfig::default()
    };
    let one = campaign::run(&cfg(1));
    let eight = campaign::run(&cfg(8));
    assert_eq!(one.events, eight.events);
    assert_eq!(one.outcomes, eight.outcomes);
    assert_eq!(one.violations, eight.violations);
    assert_eq!(one.guest_insns, eight.guest_insns);
}
