//! Soundness properties of proof-directed check elision (DESIGN.md §7).
//!
//! The elision contract: an attestation's block proofs license the
//! simulator to hoist per-access segment-limit/PPL checks to one guard
//! at block entry — a *host-side* shortcut that must leave every guest
//! observable (return values, simulated cycles, instruction counts,
//! checkpoint images) byte-identical to fully-checked dispatch. These
//! tests pin the properties the unit suites can't see across crates:
//! verification is deterministic, elided and unelided worlds stay
//! byte-identical through invocations and checkpoint/restore, restore
//! reinstalls the (unserialised) proof tokens, and a pinned
//! differential fuzz campaign stays sound.

use chaos::fuzz::{self, FuzzConfig};
use chaos::gen;
use minikernel::Kernel;
use palladium::kernel_ext::{ExtSegmentId, KernelExtensions, SegmentConfig};
use palladium::{DlopenOptions, Session};
use seedrng::SeedRng;
use x86sim::image::{Dec, Enc};

fn verifying() -> SegmentConfig {
    SegmentConfig {
        verify: true,
        ..SegmentConfig::default()
    }
}

/// Boots a kernel world with one verified loopy module (bounded counted
/// loop over a module-local table — the shape that earns `ds_bounds`
/// block proofs).
fn loopy_world(seed: u64) -> (Kernel, KernelExtensions, ExtSegmentId) {
    let mut r = SeedRng::new(seed);
    let obj = gen::loopy_kernel_ext_object(&mut r);
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("kx");
    let seg = kx
        .create_segment_with(&mut k, 16, verifying())
        .expect("segment");
    kx.insmod(&mut k, seg, "loopy", &obj, &["entry"])
        .expect("loopy module admits");
    (k, kx, seg)
}

fn save_world(k: &Kernel, kx: &KernelExtensions) -> Vec<u8> {
    let mut e = Enc::new();
    e.blob(&k.save_image());
    kx.save_into(&mut e);
    e.into_vec()
}

fn restore_world(bytes: &[u8]) -> (Kernel, KernelExtensions) {
    let mut d = Dec::new(bytes, "world");
    let mut k = Kernel::restore_image(d.blob().unwrap()).expect("kernel restore");
    let kx = KernelExtensions::restore_from(&mut d).expect("kx restore");
    d.finish().expect("no trailing bytes");
    kx.reinstall_proof_tokens(&mut k);
    (k, kx)
}

/// Invokes `entry` `n` times and returns the observable trajectory.
fn drive(
    k: &mut Kernel,
    kx: &mut KernelExtensions,
    seg: ExtSegmentId,
    n: u32,
) -> (Vec<u32>, u64, u64) {
    let mut vals = Vec::new();
    for i in 0..n {
        vals.push(kx.invoke(k, seg, "entry", i).expect("invoke"));
    }
    (vals, k.m.cycles(), k.m.insns())
}

// --- determinism -----------------------------------------------------------

/// Verifying the same module in two fresh worlds yields bit-identical
/// attestations, including the per-block proof map — the proofs are a
/// pure function of (image, policy), never of world history.
#[test]
fn verification_emits_deterministic_proofs() {
    for seed in [1u64, 7, 1999] {
        let (_, kx_a, seg_a) = loopy_world(seed);
        let (_, kx_b, seg_b) = loopy_world(seed);
        let att_a = kx_a
            .segment(seg_a)
            .config
            .verified
            .clone()
            .expect("attested");
        let att_b = kx_b
            .segment(seg_b)
            .config
            .verified
            .clone()
            .expect("attested");
        assert_eq!(att_a, att_b, "seed {seed}: attestations diverged");
        assert!(
            att_a.proofs.bounded_blocks() > 0,
            "seed {seed}: counted loop earned no ds_bounds proof"
        );
    }
}

// --- byte-identical dispatch ----------------------------------------------

/// The same verified world driven with proof elision on and off:
/// identical return values, simulated cycles, instruction counts and
/// checkpoint images — while the elided twin demonstrably skips
/// per-access DS checks.
#[test]
fn proof_elided_dispatch_is_byte_identical() {
    let (k, kx, seg) = loopy_world(42);
    let mut elided = (k.clone(), kx.clone());
    let mut checked = (k, kx);
    checked.0.m.set_proof_elision(false);

    let a = drive(&mut elided.0, &mut elided.1, seg, 24);
    let b = drive(&mut checked.0, &mut checked.1, seg, 24);
    assert_eq!(a, b, "elision changed a guest observable");

    let stats = elided.0.m.proof_stats();
    assert!(stats.served > 0, "no instruction was served from a token");
    assert!(stats.ds_elided > 0, "no DS check was actually elided");
    assert_eq!(checked.0.m.proof_stats().served, 0);

    assert_eq!(
        save_world(&elided.0, &elided.1),
        save_world(&checked.0, &checked.1),
        "elision leaked into the checkpoint image"
    );
}

// --- checkpoint/restore ----------------------------------------------------

/// Proof tokens are derived state and deliberately absent from the
/// machine image; restore must reinstall them from the retained proof
/// maps, and the restored world must stay byte-identical to the
/// uninterrupted one while still eliding.
#[test]
fn restore_reinstalls_tokens_and_preserves_elided_dispatch() {
    let (mut k, mut kx, seg) = loopy_world(3);
    drive(&mut k, &mut kx, seg, 9);
    let installed = k.m.proof_token_count();
    assert!(installed > 0, "verified insmod installed no tokens");
    let img = save_world(&k, &kx);

    let (mut rk, mut rkx) = restore_world(&img);
    assert_eq!(
        rk.m.proof_token_count(),
        installed,
        "restore did not reinstall every proof token"
    );

    let live = drive(&mut k, &mut kx, seg, 30);
    let restored = drive(&mut rk, &mut rkx, seg, 30);
    assert_eq!(live, restored, "trajectories diverged after restore");
    assert!(
        rk.m.proof_stats().ds_elided > 0,
        "restored world fell back to per-access checks"
    );
    assert_eq!(
        save_world(&k, &kx),
        save_world(&rk, &rkx),
        "re-checkpoints diverged"
    );
}

/// Quarantine drops a segment's tokens; a checkpoint taken afterwards
/// must not resurrect them on restore.
#[test]
fn quarantined_segment_tokens_stay_dropped_across_restore() {
    let (mut k, mut kx, seg) = loopy_world(11);
    assert!(k.m.proof_token_count() > 0);
    kx.quarantine(&mut k, seg);
    assert_eq!(k.m.proof_token_count(), 0, "quarantine left tokens behind");

    let (rk, _) = restore_world(&save_world(&k, &kx));
    assert_eq!(
        rk.m.proof_token_count(),
        0,
        "restore resurrected tokens for a quarantined segment"
    );
}

// --- user side (Session) ---------------------------------------------------

/// A verified user extension with a counted loop: session restore
/// reinstalls its proof tokens automatically, and the restored session
/// computes byte-identically to the uninterrupted one.
#[test]
fn session_restore_preserves_user_proof_elision() {
    let mut r = SeedRng::new(23);
    let obj = gen::loopy_kernel_ext_object(&mut r);

    let mut s = Session::new().expect("session");
    let h = s
        .dlopen(&obj, &DlopenOptions::new().verify(&["entry"]))
        .expect("verified dlopen");
    let att = s.attestation(h).expect("handle").expect("attested");
    assert!(att.proofs.bounded_blocks() > 0);
    let entry = s.dlsym(h, "entry").expect("entry");
    let first = s.call(entry, 0).expect("call");
    let installed = s.kernel().m.proof_token_count();
    assert!(installed > 0, "verified dlopen installed no tokens");

    let img = s.checkpoint();
    let mut rs = Session::restore(&img).expect("restore");
    assert_eq!(
        rs.kernel().m.proof_token_count(),
        installed,
        "session restore did not reinstall user proof tokens"
    );

    let live: Vec<_> = (0..8)
        .map(|i| s.call(entry, i).expect("live call"))
        .collect();
    let restored: Vec<_> = (0..8)
        .map(|i| rs.call(entry, i).expect("restored call"))
        .collect();
    assert_eq!(live, restored);
    assert_eq!(live[0], first, "loop result drifted");
    assert_eq!(
        s.kernel().m.cycles(),
        rs.kernel().m.cycles(),
        "cycle charges diverged after session restore"
    );
    assert!(rs.kernel().m.proof_stats().ds_elided > 0);
}

// --- pinned differential campaign ------------------------------------------

/// A small pinned fuzz campaign (the CI job runs the big one): zero
/// unsoundness findings, and the elided path was actually exercised.
#[test]
fn pinned_differential_campaign_is_sound() {
    let report = fuzz::run(&FuzzConfig {
        modules: 32,
        ..FuzzConfig::default()
    });
    assert!(report.is_sound(), "findings: {:?}", report.findings);
    assert!(report.accepted > 0 && report.rejected > 0);
    assert!(report.blocks_served > 0, "elided path never exercised");
    assert!(report.ds_checks_elided > 0);
}
