//! Seeded property tests: the paper's protection guarantees hold for
//! *adversarial, randomly generated* extensions, not just the
//! hand-written ones. All randomness flows from [`seedrng::SeedRng`] so
//! every run (including failures) is reproducible from the literal seed.

use seedrng::SeedRng;

use asm86::isa::{AluOp, Insn, Mem, Reg, Src};
use asm86::obj::Object;
use minikernel::{Kernel, USER_TEXT};
use netfilter::{paper_conjunction, Filter, Term, Test as FTest, Width};
use palladium::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp};

fn arb_reg(r: &mut SeedRng) -> Reg {
    Reg::from_u8(r.gen_range(0, 8) as u8).unwrap()
}

/// Addresses an adversarial extension might aim at: the application
/// image, the kernel, the trampolines, its own region, wild values.
fn arb_target(r: &mut SeedRng) -> u32 {
    match r.gen_range(0, 7) {
        0 => USER_TEXT,
        1 => USER_TEXT + 0x400,
        2 => 0xD000_0000,
        3 => 0xC000_0000,
        4 => 0xBFFE_8000,
        5 => 0x4000_0000 + r.gen_range(0, 0x2_0000),
        _ => r.next_u32(),
    }
}

/// Random straight-line-ish extension code: moves, ALU, stack ops, loads
/// and stores at adversarial addresses, the occasional syscall attempt.
fn arb_ext_insn(r: &mut SeedRng) -> Insn {
    match r.gen_range(0, 16) {
        0 => Insn::Mov(arb_reg(r), Src::Imm(r.next_u32() as i32)),
        1 => Insn::Mov(arb_reg(r), Src::Reg(arb_reg(r))),
        2 => Insn::Load(arb_reg(r), Mem::abs(arb_target(r))),
        3 => Insn::Store(Mem::abs(arb_target(r)), Src::Reg(arb_reg(r))),
        4 => Insn::LoadB(arb_reg(r), Mem::abs(arb_target(r))),
        5 => Insn::StoreB(Mem::abs(arb_target(r)), arb_reg(r)),
        6 => Insn::Alu(AluOp::Add, arb_reg(r), Src::Imm(r.next_u32() as i32)),
        7 => Insn::Alu(AluOp::Xor, arb_reg(r), Src::Imm(r.next_u32() as i32)),
        8 => Insn::Push(Src::Reg(arb_reg(r))),
        9 => Insn::Pop(arb_reg(r)),
        10 => Insn::Int(0x80),
        11 => Insn::Int(0x81),
        12 => Insn::Hlt,
        13 => Insn::Iret,
        // Forged far transfers at interesting selectors.
        14 => Insn::Lcall(r.next_u32() as u16, 0),
        _ => Insn::Lret,
    }
}

fn ext_object(body: &[Insn]) -> Object {
    let mut code = body.to_vec();
    code.push(Insn::Ret);
    let mut b = asm86::CodeBuilder::new();
    b.label("entry").unwrap();
    for i in &code {
        b.emit(*i);
    }
    b.finish().unwrap()
}

/// THE core claim: no randomly generated extension can modify
/// application memory, and the application survives whatever the
/// extension does.
#[test]
fn seeded_random_extensions_are_contained() {
    let mut rng = SeedRng::new(0x5AFE_0001);
    for _ in 0..40 {
        let n = rng.gen_range(0, 24) as usize;
        let body: Vec<Insn> = (0..n).map(|_| arb_ext_insn(&mut rng)).collect();

        let mut k = Kernel::boot();
        k.extension_cycle_limit = 200_000;
        let mut app = ExtensibleApp::new(&mut k).unwrap();
        let h = app
            .dlopen(&mut k, &ext_object(&body), &DlopenOptions::new())
            .unwrap();
        let f = app.seg_dlsym(&mut k, h, "entry").unwrap();

        // Snapshot application-private memory (the image page).
        let before_text = k.m.host_read(USER_TEXT, 4096);

        let result = app.call_extension(&mut k, f, 0x1234_5678);

        // Whatever happened, the app's memory is intact.
        let after_text = k.m.host_read(USER_TEXT, 4096);
        assert_eq!(before_text, after_text, "application image untouched");

        // And the outcome is one of the defined, recoverable ones.
        match result {
            Ok(_) | Err(ExtCallError::Fault { .. }) | Err(ExtCallError::TimeLimit) => {}
            Err(other) => panic!("bad outcome: {other} for {body:?}"),
        }

        // The application still works: load and run a known-good
        // extension afterwards.
        let h2 = app
            .dlopen(
                &mut k,
                &ext_object(&[Insn::Mov(Reg::Eax, Src::Imm(77))]),
                &DlopenOptions::new(),
            )
            .unwrap();
        let ok = app.seg_dlsym(&mut k, h2, "entry").unwrap();
        assert_eq!(app.call_extension(&mut k, ok, 0).unwrap(), 77);
    }
}

/// Kernel extensions: random code can never write kernel memory
/// outside its segment.
#[test]
fn seeded_random_kernel_extensions_are_confined() {
    use palladium::kernel_ext::KernelExtensions;

    let mut rng = SeedRng::new(0x5AFE_0002);
    for _ in 0..40 {
        let n = rng.gen_range(0, 20) as usize;
        let body: Vec<Insn> = (0..n).map(|_| arb_ext_insn(&mut rng)).collect();

        let mut k = Kernel::boot();
        k.extension_cycle_limit = 200_000;
        let mut kx = KernelExtensions::new(&mut k).unwrap();
        let seg = kx.create_segment(&mut k, 8).unwrap();
        let obj = ext_object(&body);
        kx.insmod(&mut k, seg, "rnd", &obj, &["entry"]).unwrap();

        // Canary in kernel memory outside the segment.
        let canary = k.alloc_kernel_pages(1).unwrap();
        k.m.host_write_u32(canary, 0xC0FFEE);

        let _ = kx.invoke(&mut k, seg, "entry", 7);

        assert_eq!(k.m.host_read_u32(canary), 0xC0FFEE, "kernel memory intact");
    }
}

fn arb_term(r: &mut SeedRng) -> Term {
    let width = match r.gen_range(0, 3) {
        0 => Width::B1,
        1 => Width::B2,
        _ => Width::B4,
    };
    let test = match r.gen_range(0, 3) {
        0 => FTest::Eq(r.gen_range(0, 0x100)),
        1 => {
            let m = r.gen_range(0, 0x100);
            FTest::Masked(m, r.gen_range(0, 0x100) & m)
        }
        _ => FTest::Gt(r.gen_range(0, 0x100)),
    };
    Term {
        offset: r.gen_range(0, 56),
        width,
        test,
    }
}

/// Three-way agreement: the host expression evaluator, the BPF
/// translation (on the guest interpreter), and the compiled
/// extension all decide identically on random filters and packets.
#[test]
fn seeded_filter_evaluators_agree() {
    let mut rng = SeedRng::new(0x5AFE_0003);
    for _ in 0..12 {
        let n = rng.gen_range(0, 4) as usize;
        let f = Filter {
            terms: (0..n).map(|_| arb_term(&mut rng)).collect(),
        };
        let mut b = netfilter::FilterBench::new().unwrap();
        b.install_compiled(&f).unwrap();

        // Build a packet with random payload bytes over real headers.
        let mut pkt = netfilter::reference_packet(64);
        let plen = 30 + rng.gen_range(0, 50) as usize;
        let mut payload = vec![0u8; plen];
        rng.fill_bytes(&mut payload);
        for (dst, src) in pkt.iter_mut().zip(&payload) {
            *dst ^= *src & 0x0F; // perturb, keeping it a plausible packet
        }

        let want = f.eval(&pkt);
        let compiled = b.run_compiled(&pkt).unwrap();
        let interp = b.run_bpf(&f, &pkt).unwrap();
        assert_eq!(compiled.accept, want, "compiled agrees");
        assert_eq!(interp.accept, want, "interpreter agrees");
    }
}

#[test]
fn sealed_got_property_over_all_extensions() {
    // For every libc-importing extension, the GOT is read-only after
    // load: a direct check on the PTE, complementing the behavioural
    // test.
    use x86sim::paging::{get_pte, pte};
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();
    for i in 0..4 {
        let src = format!("f{i}:\ncall strlen\nret\n");
        let h = app
            .dlopen(&mut k, &integration::asm(&src), &DlopenOptions::new())
            .unwrap();
        let got = app.got_page(h).unwrap().expect("GOT");
        let cr3 = k.task(app.tid).cr3;
        let p = get_pte(&k.m.mem, cr3, got).unwrap();
        assert_eq!(p & pte::RW, 0, "GOT {i} sealed");
        assert_ne!(p & pte::US, 0, "GOT {i} readable by extensions");
    }
}

#[test]
fn figure7_shape_is_stable_across_packets() {
    // The Figure 7 relationship is not an artifact of one packet.
    for pkt in netfilter::traffic(5, 6, 1.0) {
        let f = paper_conjunction(4);
        let mut b = netfilter::FilterBench::new().unwrap();
        b.install_compiled(&f).unwrap();
        b.run_compiled(&pkt).unwrap();
        b.run_bpf(&f, &pkt).unwrap();
        let c = b.run_compiled(&pkt).unwrap();
        let i = b.run_bpf(&f, &pkt).unwrap();
        assert!(c.accept && i.accept);
        assert!(
            i.cycles >= 2 * c.cycles,
            "bpf {} vs pd {}",
            i.cycles,
            c.cycles
        );
    }
}
