//! Property-based safety tests: the paper's protection guarantees hold
//! for *adversarial, randomly generated* extensions, not just the
//! hand-written ones.

use proptest::prelude::*;

use asm86::isa::{AluOp, Insn, Mem, Reg, Src};
use asm86::obj::Object;
use minikernel::{Kernel, USER_TEXT};
use netfilter::{paper_conjunction, Filter, Term, Test as FTest, Width};
use palladium::user_ext::{DlOptions, ExtCallError, ExtensibleApp};

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..8).prop_map(|v| Reg::from_u8(v).unwrap())
}

/// Addresses an adversarial extension might aim at: the application
/// image, the kernel, the trampolines, its own region, wild values.
fn arb_target() -> impl Strategy<Value = u32> {
    prop_oneof![
        Just(USER_TEXT),
        Just(USER_TEXT + 0x400),
        Just(0xD000_0000u32),
        Just(0xC000_0000u32),
        Just(0xBFFE_8000u32),
        0x4000_0000u32..0x4002_0000,
        any::<u32>(),
    ]
}

/// Random straight-line-ish extension code: moves, ALU, stack ops, loads
/// and stores at adversarial addresses, the occasional syscall attempt.
fn arb_ext_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        (arb_reg(), any::<i32>()).prop_map(|(r, v)| Insn::Mov(r, Src::Imm(v))),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Mov(a, Src::Reg(b))),
        (arb_reg(), arb_target()).prop_map(|(r, t)| Insn::Load(r, Mem::abs(t))),
        (arb_target(), arb_reg()).prop_map(|(t, r)| Insn::Store(Mem::abs(t), Src::Reg(r))),
        (arb_reg(), arb_target()).prop_map(|(r, t)| Insn::LoadB(r, Mem::abs(t))),
        (arb_target(), arb_reg()).prop_map(|(t, r)| Insn::StoreB(Mem::abs(t), r)),
        (arb_reg(), any::<i32>()).prop_map(|(r, v)| Insn::Alu(AluOp::Add, r, Src::Imm(v))),
        (arb_reg(), any::<i32>()).prop_map(|(r, v)| Insn::Alu(AluOp::Xor, r, Src::Imm(v))),
        arb_reg().prop_map(|r| Insn::Push(Src::Reg(r))),
        arb_reg().prop_map(Insn::Pop),
        Just(Insn::Int(0x80)),
        Just(Insn::Int(0x81)),
        Just(Insn::Hlt),
        Just(Insn::Iret),
        // Forged far transfers at interesting selectors.
        (any::<u16>()).prop_map(|s| Insn::Lcall(s, 0)),
        Just(Insn::Lret),
    ]
}

fn ext_object(body: &[Insn]) -> Object {
    let mut code = body.to_vec();
    code.push(Insn::Ret);
    let mut b = asm86::CodeBuilder::new();
    b.label("entry").unwrap();
    for i in &code {
        b.emit(*i);
    }
    b.finish().unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// THE core claim: no randomly generated extension can modify
    /// application memory, and the application survives whatever the
    /// extension does.
    #[test]
    fn prop_random_extensions_are_contained(
        body in proptest::collection::vec(arb_ext_insn(), 0..24),
    ) {
        let mut k = Kernel::boot();
        k.extension_cycle_limit = 200_000;
        let mut app = ExtensibleApp::new(&mut k).unwrap();
        let h = app.seg_dlopen(&mut k, &ext_object(&body), DlOptions::default()).unwrap();
        let f = app.seg_dlsym(&mut k, h, "entry").unwrap();

        // Snapshot application-private memory (the image page).
        let before_text = k.m.host_read(USER_TEXT, 4096);

        let result = app.call_extension(&mut k, f, 0x1234_5678);

        // Whatever happened, the app's memory is intact.
        let after_text = k.m.host_read(USER_TEXT, 4096);
        prop_assert_eq!(before_text, after_text, "application image untouched");

        // And the outcome is one of the defined, recoverable ones.
        match result {
            Ok(_) | Err(ExtCallError::Fault { .. }) | Err(ExtCallError::TimeLimit) => {}
            Err(other) => return Err(TestCaseError::fail(format!("bad outcome: {other}"))),
        }

        // The application still works: load and run a known-good
        // extension afterwards.
        let h2 = app
            .seg_dlopen(
                &mut k,
                &ext_object(&[Insn::Mov(Reg::Eax, Src::Imm(77))]),
                DlOptions::default(),
            )
            .unwrap();
        let ok = app.seg_dlsym(&mut k, h2, "entry").unwrap();
        prop_assert_eq!(app.call_extension(&mut k, ok, 0).unwrap(), 77);
    }

    /// Kernel extensions: random code can never write kernel memory
    /// outside its segment.
    #[test]
    fn prop_random_kernel_extensions_are_confined(
        body in proptest::collection::vec(arb_ext_insn(), 0..20),
    ) {
        use palladium::kernel_ext::KernelExtensions;

        let mut k = Kernel::boot();
        k.extension_cycle_limit = 200_000;
        let mut kx = KernelExtensions::new(&mut k).unwrap();
        let seg = kx.create_segment(&mut k, 8).unwrap();
        let obj = ext_object(&body);
        kx.insmod(&mut k, seg, "rnd", &obj, &["entry"]).unwrap();

        // Canary in kernel memory outside the segment.
        let canary = k.alloc_kernel_pages(1).unwrap();
        k.m.host_write_u32(canary, 0xC0FFEE);

        let _ = kx.invoke(&mut k, seg, "entry", 7);

        prop_assert_eq!(k.m.host_read_u32(canary), 0xC0FFEE, "kernel memory intact");
    }
}

fn arb_term() -> impl Strategy<Value = Term> {
    let width = prop_oneof![Just(Width::B1), Just(Width::B2), Just(Width::B4)];
    let test = prop_oneof![
        (0u32..0x100).prop_map(FTest::Eq),
        (0u32..0x100, 0u32..0x100).prop_map(|(m, v)| FTest::Masked(m, v & m)),
        (0u32..0x100).prop_map(FTest::Gt),
    ];
    (0u32..56, width, test).prop_map(|(offset, width, test)| Term {
        offset,
        width,
        test,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Three-way agreement: the host expression evaluator, the BPF
    /// translation (on the guest interpreter), and the compiled
    /// extension all decide identically on random filters and packets.
    #[test]
    fn prop_filter_evaluators_agree(
        terms in proptest::collection::vec(arb_term(), 0..4),
        payload in proptest::collection::vec(any::<u8>(), 30..80),
    ) {
        let f = Filter { terms };
        let mut b = netfilter::FilterBench::new().unwrap();
        b.install_compiled(&f).unwrap();

        // Build a packet with random payload bytes over real headers.
        let mut pkt = netfilter::reference_packet(64);
        for (dst, src) in pkt.iter_mut().zip(&payload) {
            *dst ^= *src & 0x0F; // perturb, keeping it a plausible packet
        }

        let want = f.eval(&pkt);
        let compiled = b.run_compiled(&pkt).unwrap();
        let interp = b.run_bpf(&f, &pkt).unwrap();
        prop_assert_eq!(compiled.accept, want, "compiled agrees");
        prop_assert_eq!(interp.accept, want, "interpreter agrees");
    }
}

#[test]
fn sealed_got_property_over_all_extensions() {
    // For every libc-importing extension, the GOT is read-only after
    // load: a direct check on the PTE, complementing the behavioural
    // test.
    use x86sim::paging::{get_pte, pte};
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();
    for i in 0..4 {
        let src = format!("f{i}:\ncall strlen\nret\n");
        let h = app
            .seg_dlopen(&mut k, &integration::asm(&src), DlOptions::default())
            .unwrap();
        let got = app.got_page(h).unwrap().expect("GOT");
        let cr3 = k.task(app.tid).cr3;
        let p = get_pte(&k.m.mem, cr3, got).unwrap();
        assert_eq!(p & pte::RW, 0, "GOT {i} sealed");
        assert_ne!(p & pte::US, 0, "GOT {i} readable by extensions");
    }
}

#[test]
fn figure7_shape_is_stable_across_packets() {
    // The Figure 7 relationship is not an artifact of one packet.
    for pkt in netfilter::traffic(5, 6, 1.0) {
        let f = paper_conjunction(4);
        let mut b = netfilter::FilterBench::new().unwrap();
        b.install_compiled(&f).unwrap();
        b.run_compiled(&pkt).unwrap();
        b.run_bpf(&f, &pkt).unwrap();
        let c = b.run_compiled(&pkt).unwrap();
        let i = b.run_bpf(&f, &pkt).unwrap();
        assert!(c.accept && i.accept);
        assert!(
            i.cycles >= 2 * c.cycles,
            "bpf {} vs pd {}",
            i.cycles,
            c.cycles
        );
    }
}
