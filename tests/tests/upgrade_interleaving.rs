//! Staged-upgrade interleavings: `stage_images` racing the supervision
//! lifecycle (quarantine, tombstone, rollback).
//!
//! The acceptance contract for generation bookkeeping:
//!
//! * an upgrade staged while the extension sits quarantined in its
//!   backoff window is promoted by the next restart, and the promotion
//!   resets the charged strikes — they belonged to the replaced
//!   lineage, not the new one;
//! * a tombstone retires one image *lineage*, not the extension's
//!   identity: staging a different generation (the rollback to
//!   last-known-good) revives the slot with a clean record, while
//!   re-staging the retired lineage's exact content leaves it dead;
//! * a double rollback is idempotent — the second `stage_images` of
//!   identical content is a no-op and the second `rollover` sees the
//!   staged generation already running — and the whole dance leaves the
//!   kernel's resource footprint untouched.

use chaos::gen;
use minikernel::Kernel;
use palladium::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use palladium::supervisor::{
    ModuleImage, ResourceAudit, RestartPolicy, SupervisedState, Supervisor, SupervisorError,
};

/// Out-of-segment store: faults on every invocation.
fn faulty() -> Vec<ModuleImage> {
    vec![ModuleImage::new(
        "flt",
        gen::store_to_object(0x0020_0000),
        &["entry"],
    )]
}

/// Benign handler returning `v`.
fn benign(v: u32) -> Vec<ModuleImage> {
    vec![ModuleImage::new("flt", gen::benign_object(v), &["entry"])]
}

fn world() -> (Kernel, KernelExtensions) {
    let mut k = Kernel::boot();
    let kx = KernelExtensions::new(&mut k).unwrap();
    (k, kx)
}

const ONE_STRIKE: SegmentConfig = SegmentConfig {
    quarantine_threshold: 1,
    recycle_descriptors: false,
    verify: false,
    verified: None,
};

/// Staging a new version while the extension is quarantined in backoff:
/// the next restart installs the staged generation, and the promotion
/// starts the new lineage with zero charged strikes.
#[test]
fn upgrade_staged_while_quarantined_promotes_with_clean_strikes() {
    let (mut k, mut kx) = world();
    let mut sup = Supervisor::new(RestartPolicy::immediate());
    let id = sup
        .install(&mut k, &mut kx, 8, ONE_STRIKE, faulty())
        .unwrap();

    // Two kills: the faulty version accumulates charged strikes.
    for _ in 0..2 {
        assert!(matches!(
            sup.invoke(&mut k, &mut kx, id, "entry", 0),
            Err(SupervisorError::Kext(KextError::Aborted(_)))
        ));
    }
    assert_eq!(sup.charged_restarts(id), 2, "strikes charged for the kills");
    assert!(matches!(sup.state(id), SupervisedState::Backoff { .. }));

    // The fix ships while the extension is down.
    sup.stage_images(id, benign(7));
    assert_eq!(sup.staged_generation(id), 1);
    assert_eq!(sup.running_generation(id), 0, "old lineage still recorded");

    // The scheduled restart promotes the staged generation...
    assert_eq!(sup.poll(&mut k, &mut kx, id), SupervisedState::Running);
    assert_eq!(sup.running_generation(id), 1);
    // ...and the new lineage does not inherit the old version's strikes.
    assert_eq!(
        sup.charged_restarts(id),
        0,
        "promotion must reset strike decay for the replaced lineage"
    );
    assert_eq!(sup.invoke(&mut k, &mut kx, id, "entry", 0), Ok(7));
    kx.assert_no_leaks(&k).unwrap();
}

/// A tombstoned extension is revived by staging a *different* generation
/// (the rollback to last-known-good), while re-staging the retired
/// lineage's identical content leaves it tombstoned.
#[test]
fn rollback_to_tombstoned_version_revives_the_slot() {
    let (mut k, mut kx) = world();
    let mut sup = Supervisor::new(RestartPolicy {
        max_restarts: 1,
        ..RestartPolicy::immediate()
    });
    let id = sup
        .install(&mut k, &mut kx, 8, ONE_STRIKE, faulty())
        .unwrap();

    // Kill, restart, kill again: the budget (1) is exhausted.
    for _ in 0..2 {
        assert!(matches!(
            sup.invoke(&mut k, &mut kx, id, "entry", 0),
            Err(SupervisorError::Kext(KextError::Aborted(_)))
        ));
        sup.poll(&mut k, &mut kx, id);
    }
    assert_eq!(sup.state(id), SupervisedState::Tombstoned);
    assert_eq!(sup.tombstoned, 1);

    // Re-staging the retired lineage byte-for-byte is a no-op: the
    // tombstone holds.
    sup.stage_images(id, faulty());
    assert_eq!(sup.state(id), SupervisedState::Tombstoned);
    assert!(matches!(
        sup.invoke(&mut k, &mut kx, id, "entry", 0),
        Err(SupervisorError::Tombstoned { .. })
    ));

    // Rolling back to a different generation revives the slot with a
    // clean strike record.
    sup.stage_images(id, benign(3));
    assert!(matches!(sup.state(id), SupervisedState::Backoff { .. }));
    assert_eq!(sup.poll(&mut k, &mut kx, id), SupervisedState::Running);
    assert_eq!(sup.charged_restarts(id), 0);
    assert_eq!(sup.running_generation(id), sup.staged_generation(id));
    assert_eq!(sup.invoke(&mut k, &mut kx, id, "entry", 0), Ok(3));
    assert_eq!(sup.tombstoned, 1, "revival is not a second tombstone");
    kx.assert_no_leaks(&k).unwrap();
}

/// Rolling back twice is idempotent: the second `stage_images` of
/// identical content does not bump the generation, the second `rollover`
/// is a no-op, and the resource footprint ends where it started.
#[test]
fn double_rollback_is_idempotent() {
    let (mut k, mut kx) = world();
    let mut sup = Supervisor::new(RestartPolicy::immediate());
    let id = sup
        .install(&mut k, &mut kx, 8, ONE_STRIKE, benign(1))
        .unwrap();
    let baseline = ResourceAudit::capture(&k, &kx);

    // Upgrade to v2, then roll back to v1 — twice.
    sup.stage_images(id, benign(2));
    sup.rollover(&mut k, &mut kx, id).unwrap();
    assert_eq!(sup.invoke(&mut k, &mut kx, id, "entry", 0), Ok(2));

    sup.stage_images(id, benign(1));
    sup.rollover(&mut k, &mut kx, id).unwrap();
    let gen_after_first = sup.staged_generation(id);
    let rollovers_after_first = sup.rollovers;
    let pages_after_first = sup.pages_reclaimed;

    sup.stage_images(id, benign(1)); // identical content: no-op
    assert_eq!(
        sup.rollover(&mut k, &mut kx, id),
        Ok(SupervisedState::Running),
        "second rollback is a clean no-op"
    );
    assert_eq!(sup.staged_generation(id), gen_after_first);
    assert_eq!(sup.rollovers, rollovers_after_first);
    assert_eq!(
        sup.pages_reclaimed, pages_after_first,
        "an idempotent rollback must not churn the segment"
    );
    assert_eq!(sup.invoke(&mut k, &mut kx, id, "entry", 0), Ok(1));

    kx.assert_no_leaks(&k).unwrap();
    assert_eq!(
        ResourceAudit::capture(&k, &kx),
        baseline,
        "upgrade + double rollback changed the resource footprint"
    );
}

/// Rollovers are not faults: a full upgrade/rollback cycle charges no
/// restart strikes and imposes no backoff.
#[test]
fn rollover_charges_no_strikes() {
    let (mut k, mut kx) = world();
    let mut sup = Supervisor::new(RestartPolicy::immediate());
    let id = sup
        .install(&mut k, &mut kx, 8, ONE_STRIKE, benign(1))
        .unwrap();

    sup.stage_images(id, benign(2));
    assert_eq!(
        sup.rollover(&mut k, &mut kx, id),
        Ok(SupervisedState::Running)
    );
    sup.stage_images(id, benign(1));
    assert_eq!(
        sup.rollover(&mut k, &mut kx, id),
        Ok(SupervisedState::Running)
    );
    assert_eq!(sup.charged_restarts(id), 0);
    assert_eq!(sup.restarts, 0, "rollovers are not supervised restarts");
    assert_eq!(sup.rollovers, 2);
}

/// A staged generation that fails admission at rollover tombstones the
/// slot (the old segment is already gone) — and the rollback out of that
/// tombstone still works, because it stages a different generation.
#[test]
fn failed_rollover_tombstones_then_rollback_revives() {
    let (mut k, mut kx) = world();
    let mut sup = Supervisor::new(RestartPolicy::immediate());
    let verify_on = SegmentConfig {
        verify: true,
        ..ONE_STRIKE
    };
    let id = sup
        .install(&mut k, &mut kx, 8, verify_on, benign(1))
        .unwrap();

    // The faulty image's out-of-segment store fails load-time
    // verification, so the rollover rejects it and tombstones the slot.
    sup.stage_images(id, faulty());
    assert!(matches!(
        sup.rollover(&mut k, &mut kx, id),
        Err(KextError::Verify(_))
    ));
    assert_eq!(sup.state(id), SupervisedState::Tombstoned);
    kx.assert_no_leaks(&k).unwrap();

    // Rollback to the previous version: different generation → revival.
    sup.stage_images(id, benign(1));
    assert_eq!(sup.poll(&mut k, &mut kx, id), SupervisedState::Running);
    assert_eq!(sup.invoke(&mut k, &mut kx, id, "entry", 0), Ok(1));
    kx.assert_no_leaks(&k).unwrap();
}
