//! Adversarial containment audit (DESIGN.md §6).
//!
//! Drives the `chaos` campaign for ≥10,000 seeded steps against both
//! extension mechanisms and asserts the audit contract: zero containment
//! violations, zero host panics, and the quarantine machinery actually
//! firing. Also pins down the descriptor-revocation semantics of
//! `rmmod`/`destroy_segment`/quarantine: a revoked selector raises #NP
//! in the simulated hardware on the next far call, and pending
//! asynchronous requests surface as structured errors — never as a wild
//! far transfer through a stale Extension Function Table slot.

use asm86::isa::Insn;
use asm86::CodeBuilder;
use chaos::campaign::{self, CampaignConfig};
use chaos::gen;
use minikernel::Kernel;
use palladium::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use x86sim::fault::Vector;

// --- the big seeded audit ------------------------------------------------

/// The acceptance-criteria campaign: 10,000 adversarial steps from one
/// seed, with the §6 oracle checked after every step and the behavioural
/// probes run at intervals. Nothing may violate containment, nothing may
/// panic the host, and the campaign must demonstrate at least one
/// automatic quarantine.
#[test]
fn campaign_ten_thousand_steps_contained() {
    let cfg = CampaignConfig {
        seed: 0xA0D1_7001,
        steps: 10_000,
        ..CampaignConfig::default()
    };
    let report = campaign::run(&cfg);

    assert_eq!(report.steps_run, 10_000);
    assert_eq!(report.events.len() as u32, report.steps_run);
    assert_eq!(
        report.host_panics, 0,
        "host panicked during adversarial steps"
    );
    assert!(
        report.violations.is_empty(),
        "containment violations:\n{}",
        report.violations.join("\n")
    );
    assert!(
        report.quarantines >= 1,
        "campaign never triggered an automatic quarantine"
    );
    assert!(report.kext_aborts > 0 && report.uext_aborts > 0);
    assert!(report.probes_run > 0, "behavioural probes never ran");
}

/// Same seed ⇒ byte-identical event log: a failing step number from any
/// audit run can be replayed exactly.
#[test]
fn campaign_is_deterministic_per_seed() {
    let cfg = CampaignConfig {
        seed: 42,
        steps: 300,
        ..CampaignConfig::default()
    };
    let a = campaign::run(&cfg);
    let b = campaign::run(&cfg);
    assert_eq!(a.events, b.events);
    assert_eq!(a.outcomes, b.outcomes);
    assert_eq!(a.quarantines, b.quarantines);
    assert_eq!(a.host_panics, 0);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
}

// --- behavioural probes: direct and under fork-boot ----------------------

/// The scratch-world probes pass standalone, at the campaign's default
/// cycle limit and well below it — a runaway kernel extension is always
/// aborted near the limit and quarantined at threshold 1.
#[test]
fn probe_timer_abort_passes_across_cycle_limits() {
    for limit in [2_000, 10_000, CampaignConfig::default().cycle_limit] {
        chaos::oracle::probe_timer_abort(limit)
            .unwrap_or_else(|v| panic!("timer probe at limit {limit}: {v}"));
    }
}

/// The other two scratch-world probes, exercised directly rather than
/// through a campaign's probe interval.
#[test]
fn fork_exec_and_syscall_probes_pass_standalone() {
    chaos::oracle::probe_fork_exec().unwrap_or_else(|v| panic!("{v}"));
    chaos::oracle::probe_syscall_rejection().unwrap_or_else(|v| panic!("{v}"));
}

/// The behavioural probes run — and pass — when episodes boot by
/// forking the warmed template world, not only on cold boots, and the
/// probe cadence stays on global step numbers: a fork-boot campaign at
/// 4 workers reports byte-identically to a cold-boot serial one.
#[test]
fn scratch_world_probes_run_under_fork_boot() {
    let fork_cfg = CampaignConfig {
        seed: 0xF04B_B007,
        steps: 400,
        probe_interval: 100,
        fork_boot: true,
        jobs: 4,
        ..CampaignConfig::default()
    };
    let fork = campaign::run(&fork_cfg);
    assert_eq!(fork.probes_run, 4, "probe cadence drifted under fork boot");
    assert_eq!(fork.host_panics, 0);
    assert!(fork.violations.is_empty(), "{:?}", fork.violations);

    let cold = campaign::run(&CampaignConfig {
        fork_boot: false,
        jobs: 1,
        ..fork_cfg
    });
    assert_eq!(fork.events, cold.events);
    assert_eq!(campaign::summarize(&fork), campaign::summarize(&cold));
}

// --- descriptor revocation: #NP on the next far call ---------------------

/// An extension object whose `entry` far-calls through `sel`.
fn lcall_object(sel: u16) -> asm86::Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    b.emit(Insn::Lcall(sel, 0));
    b.emit(Insn::Ret);
    b.finish().unwrap()
}

/// `destroy_segment` marks the SPL 1 descriptors not-present, so a far
/// call through the stale selector — from another extension that cached
/// it — raises #NP in the simulated hardware rather than landing in
/// freed segment memory.
#[test]
fn destroyed_segment_selector_raises_np_on_far_call() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();

    let victim = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, victim, "v", &gen::benign_object(7), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, victim, "entry", 0), Ok(7));
    let stale_code = kx.segment(victim).code_sel;
    let stale_data = kx.segment(victim).data_sel;
    assert_eq!(k.m.gdt_entry_present(stale_code.index()), Some(true));

    kx.destroy_segment(&mut k, victim);
    assert_eq!(k.m.gdt_entry_present(stale_code.index()), Some(false));
    assert_eq!(k.m.gdt_entry_present(stale_data.index()), Some(false));
    // The software path fails fast with a structured error.
    assert_eq!(
        kx.invoke(&mut k, victim, "entry", 0),
        Err(KextError::SegmentDead)
    );

    // A second extension that squirrelled away the victim's selector:
    // its far call must be stopped by the not-present bit.
    let attacker = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        attacker,
        "a",
        &lcall_object(stale_code.0),
        &["entry"],
    )
    .unwrap();
    match kx.invoke(&mut k, attacker, "entry", 0) {
        Err(KextError::Aborted(fault)) => {
            assert_eq!(
                fault.vector,
                Vector::NotPresent,
                "expected #NP, got {fault}"
            );
            assert_eq!(fault.cause.tag(), "not-present");
        }
        other => panic!("far call through revoked selector: {other:?}"),
    }
}

/// Quarantine (the automatic path) revokes descriptors the same way, and
/// tombstones the Extension Function Table.
#[test]
fn quarantined_segment_selector_raises_np_on_far_call() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let one_strike = SegmentConfig {
        quarantine_threshold: 1,
        ..SegmentConfig::default()
    };

    let victim = kx
        .create_segment_with(&mut k, 8, one_strike.clone())
        .unwrap();
    // Stores 2 MB past the base: far outside the 8-page limit.
    kx.insmod(
        &mut k,
        victim,
        "v",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    let stale_code = kx.segment(victim).code_sel;

    assert!(matches!(
        kx.invoke(&mut k, victim, "entry", 0),
        Err(KextError::Aborted(_))
    ));
    let seg = kx.segment(victim);
    assert!(seg.quarantined);
    assert!(seg.tombstones.contains_key("entry"));
    assert!(seg.functions.is_empty());
    assert_eq!(k.m.gdt_entry_present(stale_code.index()), Some(false));
    assert_eq!(kx.quarantines, 1);

    let attacker = kx.create_segment_with(&mut k, 8, one_strike).unwrap();
    kx.insmod(
        &mut k,
        attacker,
        "a",
        &lcall_object(stale_code.0),
        &["entry"],
    )
    .unwrap();
    // threshold is 1, so the attacker is itself quarantined by the #NP —
    // but the fault it was aborted with must be the not-present check.
    match kx.invoke(&mut k, attacker, "entry", 0) {
        Err(KextError::Aborted(fault)) => {
            assert_eq!(fault.vector, Vector::NotPresent);
        }
        other => panic!("far call through quarantined selector: {other:?}"),
    }
}

// --- pending asynchronous requests ---------------------------------------

/// A segment quarantined mid-drain tombstones the remaining queue: every
/// pending request completes with a structured `Quarantined` error, and
/// none is dispatched through the revoked descriptors.
#[test]
fn pending_async_requests_surface_quarantine_error() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    assert_eq!(
        kx.default_config().quarantine_threshold,
        3,
        "default three-strikes policy"
    );

    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "m",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    for i in 0..5 {
        kx.queue_async(seg, "entry", i);
    }
    assert!(kx.segment(seg).busy);

    let results = kx.run_pending(&mut k, seg);
    assert_eq!(results.len(), 5, "every pending request gets an answer");
    for r in &results[..3] {
        assert!(matches!(r, Err(KextError::Aborted(_))), "{r:?}");
    }
    for r in &results[3..] {
        assert_eq!(r, &Err(KextError::Quarantined { strikes: 3 }));
    }
    assert!(kx.segment(seg).quarantined);
    assert!(!kx.segment(seg).busy);
    assert_eq!(kx.quarantines, 1);
    assert_eq!(kx.aborts, 3);
}

/// Destroying a segment with requests still queued: the drain returns
/// structured `SegmentDead` errors for all of them.
#[test]
fn pending_async_requests_surface_destroy_error() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();

    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "m", &gen::benign_object(9), &["entry"])
        .unwrap();
    kx.queue_async(seg, "entry", 1);
    kx.queue_async(seg, "entry", 2);

    kx.destroy_segment(&mut k, seg);
    let results = kx.run_pending(&mut k, seg);
    assert_eq!(results, vec![Err(KextError::SegmentDead); 2]);
}

/// `rmmod` of the last module clears the Extension Function Table; a
/// later invocation gets `NoSuchFunction`, not a stale dispatch.
#[test]
fn rmmod_clears_function_table() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();

    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "m", &gen::benign_object(3), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "entry", 0), Ok(3));

    assert!(kx.rmmod(seg, "m"));
    assert!(!kx.rmmod(seg, "m"), "double rmmod is a no-op");
    assert_eq!(
        kx.invoke(&mut k, seg, "entry", 0),
        Err(KextError::NoSuchFunction("entry".into()))
    );
    // The segment itself is still healthy: a reload works.
    kx.insmod(&mut k, seg, "m2", &gen::benign_object(4), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "entry", 0), Ok(4));
}

// --- strikes below the threshold ------------------------------------------

/// Below the quarantine threshold the segment survives aborts: strikes
/// accumulate but the descriptors stay present and a healthy function
/// still runs. (The router lowers the threshold to 1 for fail-closed
/// semantics; the default host tolerates transient faults.)
#[test]
fn strikes_below_threshold_keep_segment_alive() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();

    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "good", &gen::benign_object(11), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "entry", 0), Ok(11));
    let code_idx = kx.segment(seg).code_sel.index();

    // Two strikes from a scratch faulting registration.
    kx.insmod(
        &mut k,
        seg,
        "bad2",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    for _ in 0..2 {
        assert!(matches!(
            kx.invoke(&mut k, seg, "entry", 0),
            Err(KextError::Aborted(_))
        ));
    }
    assert_eq!(kx.segment(seg).strikes, 2);
    assert!(!kx.segment(seg).quarantined);
    assert_eq!(k.m.gdt_entry_present(code_idx), Some(true));

    // The healthy body still runs after re-registration.
    kx.insmod(&mut k, seg, "good2", &gen::benign_object(12), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "entry", 0), Ok(12));
}
