//! Extension supervision: transactional reclamation and restart.
//!
//! The acceptance contract for the supervisor subsystem:
//!
//! * killing each supervised segment repeatedly (≥ 3 times) and letting
//!   the supervisor restart it leaves the kernel's resource ledgers
//!   balanced — `assert_no_leaks` passes and the frame/GDT/ledger
//!   footprint returns to its post-install baseline;
//! * reclamation is transactional at the edge cases: a quarantine with a
//!   non-empty asynchronous backlog drops every request exactly once, a
//!   double `destroy_segment` is idempotent (never a double free), and a
//!   quarantine fired by an in-flight downcall leaves consistent state;
//! * `rmmod` tombstones are clean — the same module name can be
//!   reinstalled (the supervisor's one-for-one restart primitive) —
//!   while fault tombstones are permanent;
//! * the seeded chaos campaign stays byte-deterministic with supervision
//!   enabled.

use chaos::campaign::{self, CampaignConfig};
use chaos::gen;
use minikernel::Kernel;
use palladium::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use palladium::supervisor::{
    ModuleImage, ResourceAudit, RestartPolicy, Supervisor, SupervisorError,
};

/// Out-of-segment store: faults (and with threshold 1, quarantines) on
/// every invocation.
fn faulting_image() -> ModuleImage {
    ModuleImage::new("bad", gen::store_to_object(0x0020_0000), &["entry"])
}

const ONE_STRIKE: SegmentConfig = SegmentConfig {
    quarantine_threshold: 1,
    recycle_descriptors: false,
    verify: false,
    verified: None,
};

// --- the headline criterion ----------------------------------------------

/// Two supervised extensions, each killed four times and restarted by
/// the supervisor: the kernel ends with balanced ledgers and the exact
/// resource footprint it had after the first install.
#[test]
fn repeated_kill_restart_cycles_leave_no_leaks() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let mut sup = Supervisor::new(RestartPolicy::immediate());

    let a = sup
        .install(&mut k, &mut kx, 8, ONE_STRIKE, vec![faulting_image()])
        .unwrap();
    let b = sup
        .install(&mut k, &mut kx, 8, ONE_STRIKE, vec![faulting_image()])
        .unwrap();
    let baseline = ResourceAudit::capture(&k, &kx);

    for id in [a, b] {
        for _ in 0..4 {
            // Every invocation kills the segment; the supervisor
            // reclaims it through the ledger and schedules the restart.
            match sup.invoke(&mut k, &mut kx, id, "entry", 0) {
                Err(SupervisorError::Kext(KextError::Aborted(_))) => {}
                other => panic!("expected an aborted downcall, got {other:?}"),
            }
            kx.assert_no_leaks(&k).unwrap();
        }
        // Bring the last scheduled restart up so the end state matches
        // the baseline shape (both extensions Running).
        sup.poll(&mut k, &mut kx, id);
    }

    assert_eq!(sup.restarts, 8, "four restarts per extension");
    assert_eq!(
        sup.pages_reclaimed,
        8 * (8 + 1),
        "8 segment + 1 Prepare page per kill"
    );
    kx.assert_no_leaks(&k).unwrap();
    assert_eq!(
        ResourceAudit::capture(&k, &kx),
        baseline,
        "kill/restart cycles changed the kernel's resource footprint"
    );
}

// --- satellite edge cases -------------------------------------------------

/// Quarantine with a non-empty asynchronous backlog: the queue survives
/// the quarantine (late callers get structured errors), and the reclaim
/// drops every request exactly once.
#[test]
fn quarantine_with_async_backlog_drops_requests_transactionally() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment_with(&mut k, 8, ONE_STRIKE).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "bad",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    for i in 0..5 {
        kx.queue_async(seg, "entry", i);
    }

    // A synchronous downcall faults and quarantines the segment while
    // the backlog is still queued.
    assert!(matches!(
        kx.invoke(&mut k, seg, "entry", 0),
        Err(KextError::Aborted(_))
    ));
    assert!(kx.segment(seg).quarantined);
    assert_eq!(kx.segment(seg).queue.len(), 5, "quarantine keeps the queue");
    kx.assert_no_leaks(&k).unwrap();

    let record = kx.reclaim_segment(&mut k, seg);
    assert_eq!(record.requests_dropped, 5);
    assert!(kx.segment(seg).queue.is_empty());
    kx.assert_no_leaks(&k).unwrap();
}

/// `destroy_segment` twice (and a reclaim on top) releases every page
/// exactly once — the frame allocator would panic on a double free.
#[test]
fn double_destroy_segment_is_idempotent() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "m", &gen::benign_object(5), &["entry"])
        .unwrap();

    kx.destroy_segment(&mut k, seg);
    let frames_after_first = k.frames.in_use();
    kx.destroy_segment(&mut k, seg);
    assert_eq!(
        k.frames.in_use(),
        frames_after_first,
        "second destroy freed again"
    );
    let record = kx.reclaim_segment(&mut k, seg);
    assert_eq!(k.frames.in_use(), frames_after_first);
    assert_eq!(record.requests_dropped, 0);
    kx.assert_no_leaks(&k).unwrap();
}

/// A quarantine fired *by* an in-flight downcall (the third strike lands
/// mid-invocation) leaves fully consistent state: table tombstoned,
/// descriptors revoked, busy cleared, and the ledger reclaimable.
#[test]
fn quarantine_during_in_flight_downcall_unwinds_cleanly() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "bad",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    let code_idx = kx.segment(seg).code_sel.index();

    // Two strikes: still alive, descriptors still present.
    for _ in 0..2 {
        assert!(matches!(
            kx.invoke(&mut k, seg, "entry", 0),
            Err(KextError::Aborted(_))
        ));
        kx.assert_no_leaks(&k).unwrap();
    }
    assert!(!kx.segment(seg).quarantined);
    assert_eq!(k.m.gdt_entry_present(code_idx), Some(true));

    // Third strike: the quarantine fires while the downcall is being
    // aborted.
    assert!(matches!(
        kx.invoke(&mut k, seg, "entry", 0),
        Err(KextError::Aborted(_))
    ));
    let s = kx.segment(seg);
    assert!(s.quarantined && s.dead && !s.busy);
    assert!(s.functions.is_empty());
    assert!(s.tombstones["entry"].faulted);
    assert_eq!(k.m.gdt_entry_present(code_idx), Some(false));
    kx.assert_no_leaks(&k).unwrap();

    kx.reclaim_segment(&mut k, seg);
    kx.assert_no_leaks(&k).unwrap();
}

// --- rmmod tombstones -----------------------------------------------------

/// A module cleanly unloaded with `rmmod` can be reinstalled under the
/// same name — the regression that used to leave the name tombstoned
/// forever — while the quarantined path stays permanently unusable.
#[test]
fn rmmod_then_reinstall_same_name_succeeds() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(&mut k, seg, "filter", &gen::benign_object(1), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "entry", 0), Ok(1));

    assert!(kx.rmmod(seg, "filter"));
    assert_eq!(
        kx.invoke(&mut k, seg, "entry", 0),
        Err(KextError::NoSuchFunction("entry".into()))
    );

    // One-for-one reinstall under the same module and export names.
    kx.insmod(&mut k, seg, "filter", &gen::benign_object(2), &["entry"])
        .unwrap();
    assert_eq!(kx.invoke(&mut k, seg, "entry", 0), Ok(2));
    assert!(!kx.segment(seg).tombstones.contains_key("entry"));

    // A faulted segment, by contrast, rejects any reinstall.
    let seg2 = kx.create_segment_with(&mut k, 8, ONE_STRIKE).unwrap();
    kx.insmod(
        &mut k,
        seg2,
        "bad",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    let _ = kx.invoke(&mut k, seg2, "entry", 0);
    assert!(kx.segment(seg2).tombstones["entry"].faulted);
    assert_eq!(
        kx.insmod(&mut k, seg2, "bad", &gen::benign_object(3), &["entry"]),
        Err(KextError::SegmentDead)
    );
}

/// A one-strike quarantine threshold is a per-segment property, set by
/// passing a `SegmentConfig` to `create_segment_with` (the former global
/// setter is deprecated and slated for removal).
#[test]
fn per_segment_quarantine_threshold_applies() {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let config = SegmentConfig {
        quarantine_threshold: 1,
        ..kx.default_config()
    };
    let seg = kx.create_segment_with(&mut k, 8, config).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "bad",
        &gen::store_to_object(0x0020_0000),
        &["entry"],
    )
    .unwrap();
    let _ = kx.invoke(&mut k, seg, "entry", 0);
    assert!(
        kx.segment(seg).quarantined,
        "one strike must now quarantine"
    );
}

// --- campaign determinism with supervision --------------------------------

/// Same seed ⇒ byte-identical campaign report with supervision enabled,
/// and the supervisor actually engaged (restarts happened, pages were
/// reclaimed, the per-step leak audit stayed clean).
#[test]
fn supervised_campaign_is_byte_deterministic() {
    let cfg = CampaignConfig {
        seed: 0x5EED_50B7,
        steps: 600,
        ..CampaignConfig::default()
    };
    let a = campaign::run(&cfg);
    let b = campaign::run(&cfg);
    assert_eq!(campaign::summarize(&a), campaign::summarize(&b));
    assert_eq!(a.events, b.events);
    assert_eq!(a.restarts, b.restarts);
    assert_eq!(a.pages_reclaimed, b.pages_reclaimed);
    assert!(a.violations.is_empty(), "{:?}", a.violations);
    assert!(a.restarts >= 3, "supervisor never engaged: {}", a.restarts);
    assert!(a.pages_reclaimed > 0);
}
