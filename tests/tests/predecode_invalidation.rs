//! The predecode fast path under adversarial conditions: chaos-style
//! code corruption must be observed by the very next fetch, and whole
//! campaigns must be event-identical with the fast path on and off.

use chaos::campaign::{self, CampaignConfig};
use chaos::inject;
use integration::asm;
use minikernel::Kernel;
use palladium::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp};

/// A chaos `corrupt_code_byte` injection into an already-executed (and
/// therefore predecoded) extension: the next call must hit the corrupted
/// byte (`0xFF` is an invalid opcode → abort), and restoring the byte
/// must bring the extension back — both transitions observed by the
/// first fetch after the host write.
#[test]
fn corrupt_injection_into_executed_code_faults_next_call() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    let h = app
        .dlopen(
            &mut k,
            &asm("f:\nmov eax, 77\nret\n"),
            &DlopenOptions::new(),
        )
        .unwrap();
    let f = app.seg_dlsym(&mut k, h, "f").unwrap();
    let fn_addr = app.dlsym(h, "f").unwrap();

    // Warm the predecode cache: two successful calls.
    assert_eq!(app.call_extension(&mut k, f, 0), Ok(77));
    assert_eq!(app.call_extension(&mut k, f, 0), Ok(77));

    // Corrupt the first byte of the function body in the app's address
    // space (the injection uses the current CR3).
    k.switch_to(app.tid);
    let prev = inject::corrupt_code_byte(&mut k, fn_addr, 0xFF).expect("mapped code");
    match app.call_extension(&mut k, f, 0) {
        Err(ExtCallError::Fault { .. }) => {}
        other => panic!("stale decode served after corruption: {other:?}"),
    }

    // Restore and the extension runs again.
    k.switch_to(app.tid);
    assert_eq!(inject::corrupt_code_byte(&mut k, fn_addr, prev), Some(0xFF));
    assert_eq!(app.call_extension(&mut k, f, 0), Ok(77));
}

/// The fast path is invisible to campaign behaviour: the same seed with
/// predecode on and off produces a byte-identical event log, the same
/// outcome histogram and the same guest instruction count.
#[test]
fn campaign_events_identical_with_and_without_predecode() {
    let run = |predecode: bool| {
        campaign::run(&CampaignConfig {
            seed: 0xFA57_CAFE,
            steps: 150,
            predecode,
            ..CampaignConfig::default()
        })
    };
    let fast = run(true);
    let slow = run(false);
    assert_eq!(fast.events, slow.events);
    assert_eq!(fast.outcomes, slow.outcomes);
    assert_eq!(fast.quarantines, slow.quarantines);
    assert_eq!(fast.guest_insns, slow.guest_insns);
    assert!(fast.guest_insns > 0, "the campaign actually stepped guests");
    assert_eq!(fast.host_panics, 0);
    assert!(fast.violations.is_empty(), "{:?}", fast.violations);
}
