//! Backend conformance: every [`palladium::IsolationBackend`] must pass
//! the same lifecycle, containment and durability scenarios.
//!
//! The suite runs each scenario against each [`BackendKind`] and asserts
//! *containment parity*: the mechanisms differ in how they stop a
//! violation (fault tag, budget abort, load-time rejection, or SFI's
//! store masking), but never in whether the hosting application
//! survives with its private state intact.
#![warn(clippy::pedantic)]

use palladium::backend::{backend_for, BackendKind, FaultAttribution};
use palladium::{DlopenOptions, Error, Session};

fn obj(src: &str) -> asm86::Object {
    asm86::Assembler::assemble(src).expect("asm")
}

/// Stores the argument through itself as a pointer: a wild write when
/// handed an application-private address.
const WILD: &str = "wild:\nmov eax, [esp+4]\nmov [eax], eax\nret\n";

/// Branch-free (the SFI rewriter admits no relative branches), so the
/// same object loads under every backend.
const DOUBLE: &str = "double:\nmov eax, [esp+4]\nadd eax, eax\nret\n";

#[test]
fn load_call_close_on_every_backend() {
    for kind in BackendKind::ALL {
        let mut s = Session::with_backend(kind).unwrap();
        let h = s.dlopen(&obj(DOUBLE), &DlopenOptions::new()).unwrap();
        assert_eq!(s.app().backend_of(h).unwrap(), kind, "{kind}");
        let f = s.dlsym(h, "double").unwrap();
        assert_eq!(s.call(f, 21).unwrap(), 42, "{kind}");

        // Close revokes: a later call must abort, never execute stale
        // code, and the application must survive the abort.
        s.dlclose(h).unwrap();
        match s.call(f, 1) {
            Err(Error::Call(_)) => {}
            other => panic!("{kind}: call into a closed extension must abort, got {other:?}"),
        }
        let h2 = s.dlopen(&obj(DOUBLE), &DlopenOptions::new()).unwrap();
        let f2 = s.dlsym(h2, "double").unwrap();
        assert_eq!(s.call(f2, 4).unwrap(), 8, "{kind}: app must survive");
    }
}

#[test]
fn wild_write_containment_parity() {
    // Each backend stops the wild write its own way; none lets the
    // poison reach the victim, and all keep the application alive.
    for kind in BackendKind::ALL {
        let mut s = Session::with_backend(kind).unwrap();
        let h = s.dlopen(&obj(WILD), &DlopenOptions::new()).unwrap();
        let f = s.dlsym(h, "wild").unwrap();
        let victim = s.app().save_slot_addr();

        match (kind, s.call(f, victim)) {
            (BackendKind::SegPaging, Err(Error::Call(e))) => assert_eq!(
                backend_for(kind).attribute_fault(&e),
                FaultAttribution::Contained {
                    check: "page-protection"
                },
            ),
            (BackendKind::ProtKeys, Err(Error::Call(e))) => assert_eq!(
                backend_for(kind).attribute_fault(&e),
                FaultAttribution::Contained { check: "page-key" },
            ),
            // SFI redirects instead of faulting: the call completes.
            (BackendKind::Sfi, Ok(_)) => {}
            (kind, other) => panic!("{kind}: unexpected wild-write outcome {other:?}"),
        }
        // Parity: the poison value never landed on the victim.
        assert_ne!(
            s.kernel().m.host_read_u32(victim),
            victim,
            "{kind}: poison landed"
        );
        // Parity: the application still makes protected calls.
        let h2 = s.dlopen(&obj(DOUBLE), &DlopenOptions::new()).unwrap();
        let f2 = s.dlsym(h2, "double").unwrap();
        assert_eq!(s.call(f2, 3).unwrap(), 6, "{kind}");
    }
}

#[test]
fn privilege_escalation_parity() {
    // `hlt` is privileged at every extension privilege level; no backend
    // may let it retire.
    for kind in BackendKind::ALL {
        let mut s = Session::with_backend(kind).unwrap();
        let loaded = s.dlopen(&obj("bad:\nhlt\nret\n"), &DlopenOptions::new());
        let contained = match loaded {
            // Rejected before it ever ran: contained.
            Err(_) => true,
            Ok(h) => {
                let f = s.dlsym(h, "bad").unwrap();
                match s.call(f, 0) {
                    Err(Error::Call(e)) => matches!(
                        backend_for(kind).attribute_fault(&e),
                        FaultAttribution::Contained { .. }
                    ),
                    other => panic!("{kind}: hlt must not retire, got {other:?}"),
                }
            }
        };
        assert!(contained, "{kind}: privilege escalation not contained");
    }
}

#[test]
fn quarantine_and_restart_parity() {
    // A faulting extension is closed (quarantined) and replaced by a
    // fresh load; the replacement must work on every backend.
    for kind in BackendKind::ALL {
        let mut s = Session::with_backend(kind).unwrap();
        let h = s.dlopen(&obj(WILD), &DlopenOptions::new()).unwrap();
        let f = s.dlsym(h, "wild").unwrap();
        let victim = s.app().save_slot_addr();
        let _ = s.call(f, victim); // faults on the hardware backends
        s.dlclose(h).unwrap();

        let h2 = s.dlopen(&obj(DOUBLE), &DlopenOptions::new()).unwrap();
        let f2 = s.dlsym(h2, "double").unwrap();
        assert_eq!(s.call(f2, 10).unwrap(), 20, "{kind}: restart failed");

        // The unload left no protection state behind.
        let findings = backend_for(kind).leak_audit(s.kernel(), s.app());
        assert!(
            findings.is_empty(),
            "{kind}: leaks after restart: {findings:?}"
        );
    }
}

#[test]
fn fork_and_checkpoint_restore_parity() {
    for kind in BackendKind::ALL {
        let mut s = Session::with_backend(kind).unwrap();
        let h = s.dlopen(&obj(DOUBLE), &DlopenOptions::new()).unwrap();
        let f = s.dlsym(h, "double").unwrap();
        assert_eq!(s.call(f, 2).unwrap(), 4);

        // Fork: backend identity and loaded extensions carry over.
        let mut child = s.fork();
        assert_eq!(child.backend(), kind);
        assert_eq!(child.call(f, 5).unwrap(), 10, "{kind}: fork");

        // Checkpoint/restore: ditto, through the byte image.
        let image = s.checkpoint();
        let mut r = Session::restore(&image).unwrap();
        assert_eq!(r.backend(), kind);
        assert_eq!(r.call(f, 7).unwrap(), 14, "{kind}: restore");
        assert_eq!(r.app().backend_of(h).unwrap(), kind);

        // And the parent is unperturbed by either.
        assert_eq!(s.call(f, 9).unwrap(), 18, "{kind}: parent");
    }
}

#[test]
fn wrong_backend_restore_is_a_typed_rejection() {
    for kind in BackendKind::ALL {
        let s = Session::with_backend(kind).unwrap();
        let image = s.checkpoint();
        assert!(Session::restore_as(&image, kind).is_ok());
        for other in BackendKind::ALL {
            if other == kind {
                continue;
            }
            match Session::restore_as(&image, other) {
                Err(Error::BackendMismatch { found, expected }) => {
                    assert_eq!(found, kind);
                    assert_eq!(expected, other);
                }
                r => panic!("restore_as({kind} image, {other}) must be typed, got {r:?}"),
            }
        }
    }
}

#[test]
fn chaos_oracle_tags_findings_with_the_active_backend() {
    // A short campaign per backend: the oracle's invariants must hold
    // under every isolation mechanism, and any finding (none expected)
    // would carry the backend tag for attribution.
    for kind in BackendKind::ALL {
        let report = chaos::campaign::run(&chaos::campaign::CampaignConfig {
            steps: 75,
            episode_len: 25,
            probe_interval: 0,
            backend: kind,
            ..Default::default()
        });
        assert_eq!(report.steps_run, 75);
        assert!(
            report.violations.is_empty(),
            "{kind}: containment violations: {:?}",
            report.violations
        );
        // The corpus actually exercised the user-level loader under this
        // backend (loads either succeed or are structured errors).
        let uext_loads: u64 = report
            .outcomes
            .iter()
            .filter(|(tag, _)| tag.starts_with("uext-") || tag.starts_with("dlopen-"))
            .map(|(_, n)| n)
            .sum();
        assert!(uext_loads > 0, "{kind}: corpus never reached the loader");
    }
}
