//! Fleet rollout engine: canaried rolling upgrades with SLO-driven
//! automatic rollback and long-soak leak audits.
//!
//! The acceptance contract for `crates/fleet`:
//!
//! * a faulty push trips the canary's SLO and the fleet rolls back
//!   automatically — with **zero** dropped or degraded requests on the
//!   replicas the roll never reached, and zero ledger leaks anywhere;
//! * a healthy push promotes canary → waves → convergence, serving 100%
//!   of requests throughout;
//! * the rendered rollout report is byte-identical across `--jobs`
//!   counts (the CI job diffs `--jobs 1` against `--jobs 8`);
//! * the long-soak churn campaign (kill / upgrade / bad-push / rollback)
//!   passes `assert_no_leaks` at every epoch;
//! * a containment violation fails the replica *closed*: requests are
//!   dropped, not served from a breached world.

use fleet::replica::Replica;
use fleet::report::{render_rollout, render_soak};
use fleet::rollout::{self, RolloutConfig, RolloutOutcome};
use fleet::slo::{SloPolicy, SloVerdict};
use fleet::soak::{self, SoakConfig};
use fleet::{faulty_images, version_images};
use palladium::supervisor::RestartPolicy;

/// A faulty push: the canary trips, every upgraded replica rolls back,
/// and the replicas the roll never touched serve every request.
#[test]
fn faulty_push_rolls_back_without_touching_healthy_replicas() {
    let cfg = RolloutConfig::default();
    let report = rollout::run(&cfg, &version_images("filter", 1), &faulty_images("filter"));

    assert_eq!(report.outcome, RolloutOutcome::RolledBack);
    let rollback_round = report.rollback_round.expect("rollback fired");
    assert!(rollback_round >= cfg.canary_round);
    assert!(report.rollback_latency_cycles.unwrap() > 0);
    assert!(
        report.converged_round.is_some(),
        "the fleet re-converges on the old version after the rollback"
    );

    // The canary degraded (503s) but never dropped: graceful, not fatal.
    let canary = &report.per_replica[0];
    assert!(canary.degraded > 0, "canary served 503s while faulty");
    assert_eq!(canary.dropped, 0);

    // Replicas the roll never reached are completely unaffected.
    for p in report.per_replica.iter().filter(|p| p.rollovers == 0) {
        assert_eq!(
            (p.degraded, p.dropped),
            (0, 0),
            "replica {} was touched by a roll that never reached it",
            p.idx
        );
    }

    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        report.leak_failures.is_empty(),
        "{:?}",
        report.leak_failures
    );
    assert_eq!(report.dropped, 0, "nothing dropped anywhere");
}

/// A healthy push promotes to convergence with 100% availability and
/// every replica on the new generation.
#[test]
fn healthy_push_promotes_to_convergence() {
    let cfg = RolloutConfig::default();
    let report = rollout::run(
        &cfg,
        &version_images("filter", 1),
        &version_images("filter", 2),
    );

    assert_eq!(report.outcome, RolloutOutcome::Promoted);
    assert!(report.rollback_round.is_none());
    assert!(report.converged_round.is_some());
    assert_eq!(report.degraded + report.dropped, 0, "100% availability");
    for p in &report.per_replica {
        assert_eq!(p.final_gen, 1, "replica {} not on the new version", p.idx);
        assert_eq!(p.final_state, "running");
    }
    assert!(report.violations.is_empty());
    assert!(report.leak_failures.is_empty());
}

/// The whole run — rendered report text included — is byte-identical
/// across worker counts, for both outcomes.
#[test]
fn rollout_reports_are_byte_identical_across_jobs() {
    for faulty in [true, false] {
        let old = version_images("filter", 1);
        let new = if faulty {
            faulty_images("filter")
        } else {
            version_images("filter", 2)
        };
        let texts: Vec<String> = [1usize, 4, 8]
            .into_iter()
            .map(|jobs| {
                let cfg = RolloutConfig {
                    jobs,
                    ..RolloutConfig::default()
                };
                render_rollout(&rollout::run(&cfg, &old, &new))
            })
            .collect();
        assert_eq!(texts[0], texts[1], "jobs 1 vs 4 (faulty={faulty})");
        assert_eq!(texts[0], texts[2], "jobs 1 vs 8 (faulty={faulty})");
    }
}

/// A shortened soak: kill/upgrade/bad-push/rollback churn with the epoch
/// leak audit green throughout, and byte-identical across worker counts.
#[test]
fn soak_churn_is_leak_free_and_jobs_invariant() {
    let cfg = SoakConfig {
        epochs: 3,
        rounds_per_epoch: 8,
        requests_per_round: 12,
        work_per_request: 32,
        ..SoakConfig::default()
    };
    let report = soak::run(&cfg);
    assert!(report.violations.is_empty(), "{:?}", report.violations);
    assert!(
        report.leak_failures.is_empty(),
        "{:?}",
        report.leak_failures
    );
    assert!(report.kills > 0, "churn must actually kill");
    assert!(report.upgrades > 0, "churn must actually upgrade");
    assert!(report.served > 0);

    let other = soak::run(&SoakConfig { jobs: 8, ..cfg });
    assert_eq!(
        render_soak(&report),
        render_soak(&other),
        "soak must be byte-identical across jobs"
    );
}

/// A containment violation fails the replica closed: the round that
/// observes it records the violation, and every subsequent request is
/// dropped rather than served from a breached world. The SLO monitor
/// treats that as an immediate trip.
#[test]
fn containment_violation_fails_closed_and_trips_slo() {
    let mut rep = Replica::new(
        9,
        0,
        version_images("filter", 1),
        RestartPolicy::default(),
        20_000,
        true,
    )
    .unwrap();
    let round = rep.serve_round(10);
    assert_eq!(round.served, 10, "healthy replica serves everything");
    assert_eq!(
        fleet::SloPolicy::default().evaluate(&rep),
        SloVerdict::Healthy
    );

    rep.corrupt_canary();
    rep.serve_round(10);
    assert!(!rep.violations.is_empty(), "oracle observed the corruption");
    assert!(rep.failed_closed());
    assert!(matches!(
        SloPolicy::default().evaluate(&rep),
        SloVerdict::Tripped(_)
    ));

    let after = rep.serve_round(10);
    assert_eq!(
        (after.served, after.dropped),
        (0, 10),
        "a breached world must not serve"
    );
}

/// The SLO error-rate arm trips on its own (no containment violation
/// needed): a canary that answers 503s past the threshold is rolled
/// back even though isolation held.
#[test]
fn slo_trips_on_error_rate_alone() {
    let report = rollout::run(
        &RolloutConfig::default(),
        &version_images("filter", 1),
        &faulty_images("filter"),
    );
    assert!(report.violations.is_empty(), "isolation held throughout");
    assert_eq!(report.outcome, RolloutOutcome::RolledBack);
    let trip = report
        .events
        .iter()
        .find(|e| e.contains("SLO tripped"))
        .expect("trip event logged");
    assert!(trip.contains("replica 0"), "the canary tripped: {trip}");
}
