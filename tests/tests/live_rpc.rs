//! A live client/server RPC on the simulated system: two real guest
//! processes exchanging requests through kernel mailboxes, with the
//! server running the same string-reverse routine Table 2 measures.
//!
//! This complements the calibrated RPC *cost model*
//! ([`baselines::rpc`]): here the mechanics — marshalling into a message,
//! the four syscalls, the context switches under the round-robin
//! scheduler — really happen, demonstrating structurally why the
//! intra-machine RPC path dwarfs a protected call.

use std::collections::BTreeMap;

use integration::asm;
use minikernel::{Budget, Kernel, Outcome, USER_TEXT};

const MSGSEND: u32 = 210;
const MSGRECV: u32 = 211;
const EXIT: u32 = 1;
const FORK: u32 = 2;

/// Builds the combined client+server program: the parent (client) sends a
/// string to the forked child (server), which reverses it in place and
/// sends it back; the client stores the reply at `reply_buf`.
fn rpc_program() -> String {
    format!(
        "\
_start:
    mov eax, {FORK}
    int 0x80
    cmp eax, 0
    je server

client:
    mov esi, eax            ; server tid
    mov eax, {MSGSEND}
    mov ebx, esi
    mov ecx, request
    mov edx, 6
    int 0x80
client_wait:
    mov eax, {MSGRECV}
    mov ebx, reply_buf
    mov ecx, 64
    int 0x80
    cmp eax, -11            ; EAGAIN: server not done yet
    je client_wait
    mov ebx, eax            ; reply length
    mov eax, {EXIT}
    int 0x80

server:
server_wait:
    mov eax, {MSGRECV}
    mov ebx, work_buf
    mov ecx, 64
    int 0x80
    cmp eax, -11
    je server_wait
    mov edi, eax            ; request length
    ; reverse work_buf[0..edi] in place
    mov ecx, work_buf
    mov edx, work_buf
    add edx, edi
    dec edx
rev_loop:
    cmp ecx, edx
    jae rev_done
    mov eax, byte [ecx]
    mov esi, byte [edx]
    mov byte [ecx], esi
    mov byte [edx], eax
    inc ecx
    dec edx
    jmp rev_loop
rev_done:
    ; reply to the client (tid 1 spawned first)
    mov eax, {MSGSEND}
    mov ebx, 1
    mov ecx, work_buf
    mov edx, edi
    int 0x80
    mov eax, {EXIT}
    mov ebx, 0
    int 0x80

request:
    .asciz \"dlrow\\n\"
reply_buf:
    .space 64
work_buf:
    .space 64
"
    )
}

#[test]
fn client_server_rpc_round_trip() {
    let mut k = Kernel::boot();
    let obj = asm(&rpc_program());
    let client = k.spawn(&obj, &BTreeMap::new()).unwrap();
    k.switch_to(client);

    let events = k.run_all(Budget::Insns(80), 100);
    // Both exited; the client's exit code is the reply length.
    let client_exit = events
        .iter()
        .find(|(tid, _)| *tid == client)
        .expect("client finished");
    assert_eq!(client_exit.1, Outcome::Exited(6));

    // The reply buffer holds the reversed request.
    let reply_off = obj.symbol("reply_buf").unwrap();
    let reply = k.m.host_read(USER_TEXT + reply_off, 6);
    assert_eq!(&reply, b"\nworld", "server reversed the string");
}

#[test]
fn live_rpc_costs_dwarf_a_protected_call() {
    // Structural Table 2 claim, live: one mailbox round trip (ignoring
    // even the scheduler spin) costs far more than the whole 142-cycle
    // protected call.
    let mut k = Kernel::boot();
    let obj = asm(&rpc_program());
    let client = k.spawn(&obj, &BTreeMap::new()).unwrap();
    k.switch_to(client);
    let before = k.m.cycles();
    let _ = k.run_all(Budget::Insns(80), 100);
    let rpc_cycles = k.m.cycles() - before;
    assert!(
        rpc_cycles > 20 * 142,
        "live RPC round trip {rpc_cycles} cycles vs 142-cycle protected call"
    );
}

#[test]
fn messages_to_dead_or_missing_tasks_fail() {
    let mut k = Kernel::boot();
    let obj = asm(&format!(
        "_start:\n\
         mov eax, {MSGSEND}\n\
         mov ebx, 99\n\
         mov ecx, _start\n\
         mov edx, 4\n\
         int 0x80\n\
         mov ebx, eax\n\
         mov eax, {EXIT}\n\
         int 0x80\n"
    ));
    let t = k.spawn(&obj, &BTreeMap::new()).unwrap();
    k.switch_to(t);
    match k.run_current(Budget::Insns(100)) {
        Outcome::Exited(code) => assert!(code < 0, "ESRCH for missing task"),
        other => panic!("unexpected {other:?}"),
    }
}
