//! Shared helpers for the cross-crate integration tests.

use asm86::{Assembler, Object};

/// Assembles or panics with the source attached.
pub fn asm(src: &str) -> Object {
    match Assembler::assemble(src) {
        Ok(o) => o,
        Err(e) => panic!("assembly failed: {e}\n--- source ---\n{src}"),
    }
}
