//! Seeded adversarial fault-injection campaign against both extension
//! mechanisms, with the DESIGN.md §6 containment oracle checking every
//! step.
//!
//! ```text
//! cargo run -p examples --bin chaos_campaign -- --seed 1 --steps 200 --jobs 4
//! ```
//!
//! Exits non-zero if any containment invariant was violated or any host
//! panic occurred; the event log is deterministic per seed *and per
//! worker count* — `--jobs N` fans episodes across N threads with a
//! byte-identical report.
//! `--report <path>` additionally writes the summary to a file (the CI
//! `chaos_recovery` job uploads it as an artifact).
//! `--boot fork|cold` selects whether episodes fork from one warmed
//! template world (the default; copy-on-write, microsecond boot) or
//! cold-boot each episode — a host-performance knob only, the reports
//! are byte-identical (the CI `snapshot_fork` job compares them).

use chaos::campaign::{self, CampaignConfig};

fn usage_error(what: &str) -> ! {
    eprintln!("{what}");
    eprintln!(
        "usage: chaos_campaign [--seed N] [--steps N] [--jobs N] [--cycle-limit N] \
         [--boot fork|cold] [--report PATH]"
    );
    std::process::exit(2);
}

fn numeric_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next() {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} expects a number, got `{v}`"))),
        None => usage_error(&format!("{flag} requires a value")),
    }
}

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => cfg.seed = numeric_value(&mut args, "--seed"),
            "--steps" => cfg.steps = numeric_value(&mut args, "--steps"),
            "--cycle-limit" => cfg.cycle_limit = numeric_value(&mut args, "--cycle-limit"),
            "--jobs" => cfg.jobs = numeric_value(&mut args, "--jobs"),
            "--boot" => match args.next().as_deref() {
                Some("fork") => cfg.fork_boot = true,
                Some("cold") => cfg.fork_boot = false,
                Some(v) => usage_error(&format!("--boot expects fork|cold, got `{v}`")),
                None => usage_error("--boot requires a value"),
            },
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => usage_error("--report requires a path"),
            },
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }

    let header = format!(
        "chaos campaign: seed {} / {} steps / cycle limit {} / {} jobs",
        cfg.seed, cfg.steps, cfg.cycle_limit, cfg.jobs
    );
    println!("{header}");
    let report = campaign::run(&cfg);
    let summary = campaign::summarize(&report);
    print!("{summary}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, format!("{header}\n{summary}")) {
            eprintln!("could not write report to {path}: {e}");
            std::process::exit(2);
        }
    }

    if !report.violations.is_empty() || report.host_panics != 0 {
        std::process::exit(1);
    }
}
