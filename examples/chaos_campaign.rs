//! Seeded adversarial fault-injection campaign against both extension
//! mechanisms, with the DESIGN.md §6 containment oracle checking every
//! step.
//!
//! ```text
//! cargo run -p examples --bin chaos_campaign -- --seed 1 --steps 200 --jobs 4
//! ```
//!
//! Exits non-zero if any containment invariant was violated or any host
//! panic occurred; the event log is deterministic per seed *and per
//! worker count* — `--jobs N` fans episodes across N threads with a
//! byte-identical report.
//! `--report <path>` additionally writes the summary to a file (the CI
//! `chaos_recovery` job uploads it as an artifact).
//! `--boot fork|cold` selects whether episodes fork from one warmed
//! template world (the default; copy-on-write, microsecond boot) or
//! cold-boot each episode — a host-performance knob only, the reports
//! are byte-identical (the CI `snapshot_fork` job compares them).
//!
//! `--crash-drill` runs a durable-checkpoint crash drill instead of the
//! campaign: a seeded call workload checkpoints every
//! `--checkpoint-every N` calls (images under
//! `target/checkpoints/chaos_campaign/`), the world is "host-crashed"
//! two thirds of the way through, the newest image is damaged by a
//! seeded chaos injector, and recovery walks the lineage back to the
//! newest intact generation. The drill then proves the recovery honest
//! twice over: the corrupt image must be rejected with a typed error
//! (never silently restored), and the restored world must finish the
//! workload byte-identical to an uninterrupted run.

use chaos::campaign::{self, CampaignConfig};
use chaos::corrupt;
use palladium::{DlopenOptions, Session};
use seedrng::SeedRng;

fn usage_error(what: &str) -> ! {
    eprintln!("{what}");
    eprintln!(
        "usage: chaos_campaign [--seed N] [--steps N] [--jobs N] [--cycle-limit N] \
         [--boot fork|cold] [--report PATH] [--crash-drill] [--checkpoint-every N]"
    );
    std::process::exit(2);
}

fn numeric_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next() {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} expects a number, got `{v}`"))),
        None => usage_error(&format!("{flag} requires a value")),
    }
}

/// Boots a session with one verified extension and returns it with the
/// extension's `Prepare` address. Deterministic: two builds (or a build
/// and a restore) agree on every address.
fn build_world() -> (Session, u32) {
    let mut s = Session::new().expect("boot");
    let ext = asm86::Assembler::assemble("double:\nmov eax, [esp+4]\nadd eax, eax\nret\n")
        .expect("assemble");
    let h = s
        .dlopen(&ext, &DlopenOptions::new().verify(&["double"]))
        .expect("dlopen");
    let f = s.dlsym(h, "double").expect("dlsym");
    (s, f)
}

/// The seeded crash drill: checkpoint a call workload every `every`
/// calls, crash and damage the newest image, walk back, restore, finish
/// — and require the finish to be byte-identical to never crashing.
fn crash_drill(seed: u64, steps: u32, every: u32) -> Result<String, String> {
    let dir = "target/checkpoints/chaos_campaign";
    std::fs::create_dir_all(dir).map_err(|e| format!("create {dir}: {e}"))?;
    let arg_for = |i: u32| SeedRng::new(seed ^ 0x0CA1_1A46 ^ u64::from(i)).gen_range(1, 1 << 16);
    let crash_at = steps * 2 / 3;

    let mut out = format!(
        "chaos crash drill: seed {seed} / {steps} calls / checkpoint every {every} / \
         crash at call {crash_at}\n"
    );
    let (mut live, f) = build_world();
    let mut lineage: Vec<Vec<u8>> = Vec::new();
    for i in 0..crash_at {
        live.call(f, arg_for(i))
            .map_err(|e| format!("call {i}: {e}"))?;
        if (i + 1) % every == 0 {
            let img = live.checkpoint();
            let path = format!("{dir}/gen{}.pdim", lineage.len());
            std::fs::write(&path, &img).map_err(|e| format!("write {path}: {e}"))?;
            lineage.push(img);
        }
    }
    drop(live); // the crash: the in-memory world is gone
    if lineage.len() < 2 {
        return Err("drill needs at least two checkpoint generations before the crash".into());
    }
    out.push_str(&format!(
        "crash: world dropped after call {crash_at} ({} checkpoint generations on disk)\n",
        lineage.len()
    ));

    // Storage damage: the newest generation is corrupted by a seeded
    // chaos injector...
    let newest = lineage.len() - 1;
    let mut crng = SeedRng::new(seed ^ 0xBAD_5EED);
    let (kind, bad) = corrupt::corrupted_image(&lineage[newest], &mut crng);
    lineage[newest] = bad;
    out.push_str(&format!(
        "damage: checkpoint gen {newest} corrupted on disk ({})\n",
        kind.tag()
    ));

    // ...and recovery walks the lineage newest-first. The corrupt image
    // must be rejected with a typed error — silent restore is the one
    // unforgivable outcome.
    let mut restored = None;
    let mut recovered_gen = 0;
    for g in (0..lineage.len()).rev() {
        match Session::restore(&lineage[g]) {
            Ok(s) => {
                out.push_str(&format!("recovery: restored from gen {g}\n"));
                recovered_gen = g as u32;
                restored = Some(s);
                break;
            }
            Err(e) => out.push_str(&format!("recovery: gen {g} rejected ({e})\n")),
        }
    }
    let mut live = restored.ok_or("no generation restored — lineage walk-back exhausted")?;
    if recovered_gen as usize == newest {
        return Err(format!(
            "corrupt image ({}) was silently restored",
            kind.tag()
        ));
    }

    // Finish the workload from the restored world, then prove the crash
    // left no trace: an uninterrupted twin run must produce the same
    // bytes.
    for i in (recovered_gen + 1) * every..steps {
        live.call(f, arg_for(i))
            .map_err(|e| format!("call {i} after restore: {e}"))?;
    }
    let survivor = live.checkpoint();

    let (mut twin, tf) = build_world();
    for i in 0..steps {
        twin.call(tf, arg_for(i))
            .map_err(|e| format!("twin call {i}: {e}"))?;
    }
    if twin.checkpoint() != survivor {
        return Err("restored world diverged from the uninterrupted run".into());
    }
    out.push_str(&format!(
        "converged: finished {} remaining calls; final image ({} bytes) is byte-identical \
         to an uninterrupted run\n",
        steps - (recovered_gen + 1) * every,
        survivor.len()
    ));
    Ok(out)
}

fn main() {
    let mut cfg = CampaignConfig::default();
    let mut report_path: Option<String> = None;
    let mut run_drill = false;
    let mut checkpoint_every: Option<u32> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => cfg.seed = numeric_value(&mut args, "--seed"),
            "--steps" => cfg.steps = numeric_value(&mut args, "--steps"),
            "--cycle-limit" => cfg.cycle_limit = numeric_value(&mut args, "--cycle-limit"),
            "--jobs" => cfg.jobs = numeric_value(&mut args, "--jobs"),
            "--boot" => match args.next().as_deref() {
                Some("fork") => cfg.fork_boot = true,
                Some("cold") => cfg.fork_boot = false,
                Some(v) => usage_error(&format!("--boot expects fork|cold, got `{v}`")),
                None => usage_error("--boot requires a value"),
            },
            "--crash-drill" => run_drill = true,
            "--checkpoint-every" => {
                checkpoint_every = Some(numeric_value(&mut args, "--checkpoint-every"));
            }
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => usage_error("--report requires a path"),
            },
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if checkpoint_every.is_some() && !run_drill {
        usage_error("--checkpoint-every requires --crash-drill");
    }

    if run_drill {
        match crash_drill(cfg.seed, cfg.steps, checkpoint_every.unwrap_or(25).max(1)) {
            Ok(text) => {
                print!("{text}");
                if let Some(path) = report_path {
                    if let Err(e) = std::fs::write(&path, &text) {
                        eprintln!("could not write report to {path}: {e}");
                        std::process::exit(2);
                    }
                }
            }
            Err(e) => {
                eprintln!("crash drill failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let header = format!(
        "chaos campaign: seed {} / {} steps / cycle limit {} / {} jobs",
        cfg.seed, cfg.steps, cfg.cycle_limit, cfg.jobs
    );
    println!("{header}");
    let report = campaign::run(&cfg);
    let summary = campaign::summarize(&report);
    print!("{summary}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, format!("{header}\n{summary}")) {
            eprintln!("could not write report to {path}: {e}");
            std::process::exit(2);
        }
    }

    if !report.violations.is_empty() || report.host_panics != 0 {
        std::process::exit(1);
    }
}
