//! The compiled packet filter (§5.2): run a filter as a Palladium kernel
//! extension over a traffic mix, side by side with interpreted BPF, and
//! show a rogue filter being aborted.
//!
//! ```sh
//! cargo run -p examples --bin kernel_packet_filter
//! ```

use asm86::Assembler;
use minikernel::Kernel;
use netfilter::{paper_conjunction, traffic, FilterBench};
use palladium::kernel_ext::{KernelExtensions, KextError};

fn main() {
    // Filter: IPv4 + UDP + dst 10.0.0.2 + port 5001 (the paper's 4-term
    // conjunction).
    let filter = paper_conjunction(4);
    let mut bench = FilterBench::new().expect("bench boots");
    bench.install_compiled(&filter).expect("filter loaded");

    let packets = traffic(2024, 60, 0.5);
    let mut accepted = 0usize;
    let mut pd_cycles = 0u64;
    let mut bpf_cycles = 0u64;
    for pkt in &packets {
        let c = bench.run_compiled(pkt).expect("compiled filter");
        let i = bench.run_bpf(&filter, pkt).expect("bpf");
        assert_eq!(c.accept, i.accept, "both mechanisms agree");
        accepted += c.accept as usize;
        pd_cycles += c.cycles;
        bpf_cycles += i.cycles;
    }
    println!(
        "{} packets filtered, {} accepted ({}%)",
        packets.len(),
        accepted,
        accepted * 100 / packets.len()
    );
    println!(
        "compiled extension: {:>6} cycles/packet (avg)",
        pd_cycles / packets.len() as u64
    );
    println!(
        "interpreted BPF:    {:>6} cycles/packet (avg)",
        bpf_cycles / packets.len() as u64
    );

    // Now a rogue "filter" that tries to escape its extension segment —
    // the kernel aborts it on the segment-limit #GP and keeps running.
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("kext mechanism");
    let seg = kx.create_segment(&mut k, 8).expect("segment");
    let rogue = Assembler::assemble(
        "rogue:\n\
         mov eax, [0x00400000]    ; far beyond the 32 KB segment limit\n\
         ret\n",
    )
    .unwrap();
    kx.insmod(&mut k, seg, "rogue", &rogue, &["rogue"]).unwrap();
    match kx.invoke(&mut k, seg, "rogue", 0) {
        Err(KextError::Aborted(fault)) => {
            println!("\nrogue kernel extension aborted: {fault}");
            println!("(the paper measures this abort path at ~1,020 cycles)");
        }
        other => panic!("expected abort, got {other:?}"),
    }
    println!(
        "kernel survived: {} extension calls completed, {} aborted",
        kx.calls, kx.aborts
    );
}
