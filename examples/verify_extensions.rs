//! Audit: run the load-time static verifier over the repository's
//! shipped extension images and a pinned chaos corpus.
//!
//! ```sh
//! cargo run -p examples --bin verify_extensions
//! ```
//!
//! Exits nonzero if any expectation fails:
//!
//! * every benign shipped extension (the quickstart Fibonacci, the CGI
//!   cube, compiled packet filters, the kernel doubler) is **accepted**
//!   through the real verifying loaders (`dlopen` with `verify`,
//!   `insmod` with [`SegmentConfig::verify`]);
//! * every hostile demo extension (the quickstart scribbler, the
//!   segment-limit escape, the syscall probe, privileged instructions)
//!   is **rejected** with a typed error;
//! * over the pinned chaos corpus, reloc-overflow mutants are always
//!   rejected, and any hostile object the verifier admits contains no
//!   reachable privileged instruction (spot-checked against the CFG).

use asm86::isa::Insn;
use asm86::Assembler;
use chaos::verify::{kernel_policy, verify_object, VerifyOutcome};
use minikernel::Kernel;
use netfilter::{extended_conjunction, paper_conjunction};
use palladium::user_ext::{DlopenOptions, ExtensibleApp};
use palladium::{KernelExtensions, KextError, PalError, SegmentConfig, VerifyError};
use seedrng::SeedRng;

struct Audit {
    checks: u32,
    failures: u32,
}

impl Audit {
    fn expect(&mut self, what: &str, ok: bool, detail: &str) {
        self.checks += 1;
        if ok {
            println!("  ok   {what}: {detail}");
        } else {
            self.failures += 1;
            println!("  FAIL {what}: {detail}");
        }
    }
}

fn user_extensions(a: &mut Audit) {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("boot extensible app");

    let benign: [(&str, &str, &str); 3] = [
        (
            "quickstart fib",
            "fib",
            "fib:\nmov ecx, [esp+4]\nmov eax, 0\nmov edx, 1\nfib_loop:\ncmp ecx, 0\n\
             je fib_done\nmov ebx, eax\nadd ebx, edx\nmov eax, edx\nmov edx, ebx\n\
             dec ecx\njmp fib_loop\nfib_done:\nret\n",
        ),
        (
            "cgi cube",
            "cube",
            "cube:\nmov eax, [esp+4]\nimul eax, [esp+4]\nimul eax, [esp+4]\nret\n",
        ),
        (
            "table reader",
            "get",
            "get:\nmov eax, [table]\nret\ntable:\n.dd 0x1234\n",
        ),
    ];
    for (what, entry, src) in benign {
        let obj = Assembler::assemble(src).expect("assembles");
        match app.dlopen(&mut k, &obj, &DlopenOptions::new().verify(&[entry])) {
            Ok(h) => {
                let att = app.attestation(h).unwrap().unwrap();
                a.expect(
                    what,
                    att.entries == 1 && att.insns > 0,
                    &format!("verified ({} insns, {} blocks)", att.insns, att.blocks),
                );
            }
            Err(e) => a.expect(what, false, &format!("rejected: {e}")),
        }
    }

    let hostile: [(&str, &str, String); 3] = [
        (
            "quickstart scribbler",
            "evil",
            format!(
                "evil:\nmov eax, 0x41414141\nmov [{}], eax\nret\n",
                minikernel::USER_TEXT
            ),
        ),
        (
            "kernel prober",
            "probe",
            "probe:\nmov eax, [0xC0000000]\nret\n".to_string(),
        ),
        ("halter", "stop", "stop:\nhlt\nret\n".to_string()),
    ];
    for (what, entry, src) in hostile {
        let obj = Assembler::assemble(&src).expect("assembles");
        match app.dlopen(&mut k, &obj, &DlopenOptions::new().verify(&[entry])) {
            Err(PalError::Verify(e)) => a.expect(what, true, &format!("rejected: {e}")),
            Ok(_) => a.expect(what, false, "hostile extension was admitted"),
            Err(e) => a.expect(what, false, &format!("wrong error class: {e}")),
        }
    }
}

fn kernel_extensions(a: &mut Audit) {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("kext init");
    let config = SegmentConfig {
        verify: true,
        ..kx.default_config()
    };

    let benign = [
        (
            "kernel doubler",
            "ext_double",
            Assembler::assemble("ext_double:\nmov eax, [esp+4]\nadd eax, eax\nret\n").unwrap(),
        ),
        (
            "packet filter (paper, 4 terms)",
            "filter",
            netfilter::compile::compile(&paper_conjunction(4)),
        ),
        (
            "packet filter (extended, 80 terms)",
            "filter",
            netfilter::compile::compile(&extended_conjunction(80)),
        ),
    ];
    for (what, entry, obj) in benign {
        let seg = kx
            .create_segment_with(&mut k, 16, config.clone())
            .expect("segment");
        match kx.insmod(&mut k, seg, "m", &obj, &[entry]) {
            Ok(()) => a.expect(what, true, "verified and loaded"),
            Err(e) => a.expect(what, false, &format!("rejected: {e}")),
        }
    }

    let hostile = [
        (
            "segment-limit escape",
            Assembler::assemble("esc:\nmov eax, [0x100000]\nret\n").unwrap(),
            "esc",
        ),
        (
            "user syscall probe (int 0x80)",
            Assembler::assemble("probe:\nint 0x80\nret\n").unwrap(),
            "probe",
        ),
        (
            "segment-register forger",
            Assembler::assemble("forge:\nmov eax, 8\nmov ds, eax\nret\n").unwrap(),
            "forge",
        ),
    ];
    for (what, obj, entry) in hostile {
        let seg = kx
            .create_segment_with(&mut k, 16, config.clone())
            .expect("segment");
        match kx.insmod(&mut k, seg, "m", &obj, &[entry]) {
            Err(KextError::Verify(e)) => a.expect(what, true, &format!("rejected: {e}")),
            Ok(()) => a.expect(what, false, "hostile module was admitted"),
            Err(e) => a.expect(what, false, &format!("wrong error class: {e}")),
        }
    }
}

/// Reachable instructions of an admitted image must be free of
/// privileged operations — re-derived from the CFG, independently of the
/// verifier's own bookkeeping.
fn no_reachable_privileged(obj: &asm86::Object, at: u32) -> bool {
    let image = match obj.link(at, &Default::default()) {
        Ok(i) => i,
        Err(_) => return false,
    };
    let entries = match obj.entry_offsets(&["entry"]) {
        Ok(e) => e,
        Err(_) => return false,
    };
    let cfg = match asm86::Cfg::build(&image, &entries) {
        Ok(c) => c,
        Err(_) => return false,
    };
    cfg.lines.values().all(|l| {
        !matches!(
            l.insn,
            Insn::Hlt
                | Insn::Iret
                | Insn::Lret
                | Insn::LretN(_)
                | Insn::MovToSeg(..)
                | Insn::PopSeg(_)
        ) && !matches!(l.insn, Insn::Int(v) if v != minikernel::layout::KSERVICE_VECTOR)
    })
}

fn chaos_corpus(a: &mut Audit) {
    const AT: u32 = 0x3000;
    const SEG_SIZE: u32 = 0x1_0000;
    // The CI-pinned campaign seeds plus the throughput-bench seed.
    let seeds: [u64; 4] = [1, 0xBE7C_4A05, 2_698_080_257, 1_592_610_999];
    let policy = kernel_policy(AT, SEG_SIZE);

    let mut rejected = 0u32;
    let mut accepted = 0u32;
    let mut bad_overflow = 0u32;
    let mut unsound = 0u32;
    for seed in seeds {
        let mut r = SeedRng::new(seed);
        for _ in 0..60 {
            let (kind, obj) = chaos::corrupt::corrupted_object(&mut r);
            let out = verify_object(&obj, AT, &policy);
            match &out {
                VerifyOutcome::Accepted(_) => {
                    accepted += 1;
                    if kind == chaos::Corruption::RelocOverflow {
                        bad_overflow += 1;
                    }
                    if !no_reachable_privileged(&obj, AT) {
                        unsound += 1;
                    }
                }
                VerifyOutcome::Rejected(e) => {
                    rejected += 1;
                    // Typed rejection: the error must carry an offset or
                    // structured payload, not just exist.
                    let _: &VerifyError = e;
                }
                VerifyOutcome::RejectedAtLink(_) => rejected += 1,
            }
        }
        for _ in 0..60 {
            let obj = chaos::gen::kernel_ext_object(&mut r);
            match verify_object(&obj, AT, &policy) {
                VerifyOutcome::Accepted(_) => {
                    accepted += 1;
                    if !no_reachable_privileged(&obj, AT) {
                        unsound += 1;
                    }
                }
                _ => rejected += 1,
            }
        }
    }
    a.expect(
        "chaos corpus classified",
        rejected + accepted == 480,
        &format!("{rejected} rejected, {accepted} accepted"),
    );
    a.expect(
        "reloc-overflow mutants",
        bad_overflow == 0,
        &format!("{bad_overflow} admitted (must be 0)"),
    );
    a.expect(
        "admitted images",
        unsound == 0,
        &format!("{unsound} with reachable privileged insns (must be 0)"),
    );
    a.expect(
        "verifier bites",
        rejected > accepted,
        &format!("{rejected} rejected vs {accepted} accepted"),
    );
}

fn main() {
    let mut a = Audit {
        checks: 0,
        failures: 0,
    };
    println!("user-level extensions (dlopen with DlopenOptions::verify):");
    user_extensions(&mut a);
    println!("kernel extensions (insmod with SegmentConfig::verify):");
    kernel_extensions(&mut a);
    println!("pinned chaos corpus:");
    chaos_corpus(&mut a);

    println!("\n{} checks, {} failures", a.checks, a.failures);
    if a.failures > 0 {
        std::process::exit(1);
    }
}
