//! Canaried fleet rollout with SLO-driven automatic rollback, plus an
//! optional long-soak churn campaign.
//!
//! ```text
//! cargo run -p examples --bin fleet_rollout -- --seed 1 --replicas 6 --jobs 4
//! cargo run -p examples --bin fleet_rollout -- --soak --epochs 40 --min-insns 10000000
//! ```
//!
//! The default run pushes a *faulty* new version: the canary trips the
//! SLO monitor and the fleet rolls back automatically, with healthy
//! replicas unaffected. `--good` pushes a healthy version instead and
//! the roll promotes wave by wave. The report is byte-identical per
//! seed *and per worker count*; `--report <path>` writes it to a file
//! (the CI `fleet_rollout` job diffs `--jobs 1` against `--jobs 8`).
//! `--boot fork|cold` selects whether the fleet boots by forking one
//! template replica (the default; copy-on-write, microsecond boot) or
//! cold-boots every world — a host-performance knob only, the reports
//! are byte-identical (the CI `snapshot_fork` job compares them).
//!
//! `--crash-drill` runs the durable-checkpoint crash-recovery drill
//! instead: the fleet checkpoints every `--checkpoint-every N` rounds
//! (images under `target/checkpoints/fleet_rollout/`), a replica is
//! killed mid-stream, `--corrupt-latest N` generations are damaged on
//! "disk", and recovery walks the lineage newest-first. The drill
//! report is byte-identical per seed and worker count too (the CI
//! `checkpoint_restore` job diffs `--jobs 1` against `--jobs 8`).
//!
//! Exits non-zero on any containment violation, any ledger leak, or —
//! for the rollout and the drill — any dropped request on a healthy
//! replica.

use fleet::drill::{self, DrillConfig};
use fleet::report::{render_drill, render_rollout, render_soak};
use fleet::rollout::{self, RolloutConfig};
use fleet::soak::{self, SoakConfig};
use fleet::{faulty_images, version_images};

fn usage_error(what: &str) -> ! {
    eprintln!("{what}");
    eprintln!(
        "usage: fleet_rollout [--seed N] [--replicas N] [--rounds N] [--requests N] [--jobs N] \
         [--boot fork|cold] [--good] [--report PATH] [--soak] [--epochs N] [--min-insns N] \
         [--crash-drill] [--checkpoint-every N] [--corrupt-latest N]"
    );
    std::process::exit(2);
}

fn numeric_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next() {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} expects a number, got `{v}`"))),
        None => usage_error(&format!("{flag} requires a value")),
    }
}

fn main() {
    let mut cfg = RolloutConfig::default();
    let mut soak_cfg = SoakConfig::default();
    let mut drill_cfg = DrillConfig::default();
    let mut run_soak = false;
    let mut run_drill = false;
    let mut good_push = false;
    let mut checkpoint_every: Option<u32> = None;
    let mut min_insns: u64 = 0;
    let mut report_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => {
                cfg.seed = numeric_value(&mut args, "--seed");
                soak_cfg.seed = cfg.seed;
                drill_cfg.seed = cfg.seed;
            }
            "--replicas" => {
                cfg.replicas = numeric_value(&mut args, "--replicas");
                soak_cfg.replicas = cfg.replicas;
                drill_cfg.replicas = cfg.replicas;
            }
            "--rounds" => {
                cfg.rounds = numeric_value(&mut args, "--rounds");
                drill_cfg.rounds = cfg.rounds;
            }
            "--requests" => {
                cfg.requests_per_round = numeric_value(&mut args, "--requests");
                soak_cfg.requests_per_round = cfg.requests_per_round;
                drill_cfg.requests_per_round = cfg.requests_per_round;
            }
            "--jobs" => {
                cfg.jobs = numeric_value(&mut args, "--jobs");
                soak_cfg.jobs = cfg.jobs;
                drill_cfg.jobs = cfg.jobs;
            }
            "--boot" => {
                let fork = match args.next().as_deref() {
                    Some("fork") => true,
                    Some("cold") => false,
                    Some(v) => usage_error(&format!("--boot expects fork|cold, got `{v}`")),
                    None => usage_error("--boot requires a value"),
                };
                cfg.fork_boot = fork;
                soak_cfg.fork_boot = fork;
                drill_cfg.fork_boot = fork;
            }
            "--epochs" => soak_cfg.epochs = numeric_value(&mut args, "--epochs"),
            "--min-insns" => min_insns = numeric_value(&mut args, "--min-insns"),
            "--good" => good_push = true,
            "--soak" => run_soak = true,
            "--crash-drill" => run_drill = true,
            "--checkpoint-every" => {
                checkpoint_every = Some(numeric_value(&mut args, "--checkpoint-every"));
            }
            "--corrupt-latest" => {
                drill_cfg.corrupt_latest = numeric_value(&mut args, "--corrupt-latest");
            }
            "--report" => match args.next() {
                Some(p) => report_path = Some(p),
                None => usage_error("--report requires a path"),
            },
            other => usage_error(&format!("unknown argument `{other}`")),
        }
    }
    if checkpoint_every.is_some() && !run_drill {
        usage_error("--checkpoint-every requires --crash-drill");
    }

    let (text, failed) = if run_drill {
        if let Some(every) = checkpoint_every {
            drill_cfg.checkpoint_every = every;
        }
        drill_cfg.persist_dir = Some("target/checkpoints/fleet_rollout".to_string());
        let report = drill::run(&drill_cfg, &version_images("filter", 1));
        let text = render_drill(&report);
        let failed = !report.violations.is_empty()
            || !report.leak_failures.is_empty()
            || report.healthy_replica_drops != 0
            || report.guest_insns < min_insns;
        (text, failed)
    } else if run_soak {
        let report = soak::run(&soak_cfg);
        let text = render_soak(&report);
        let failed = !report.violations.is_empty()
            || !report.leak_failures.is_empty()
            || report.guest_insns < min_insns;
        if report.guest_insns < min_insns {
            eprintln!(
                "soak too small: {} guest insns < required {min_insns}",
                report.guest_insns
            );
        }
        (text, failed)
    } else {
        let old = version_images("filter", 1);
        let new = if good_push {
            version_images("filter", 2)
        } else {
            faulty_images("filter")
        };
        let report = rollout::run(&cfg, &old, &new);
        let text = render_rollout(&report);
        // Healthy (non-canary, never-upgraded) replicas must not drop or
        // degrade a single request during a failed roll.
        let healthy_drops = report
            .per_replica
            .iter()
            .filter(|p| p.idx != 0 && p.rollovers == 0)
            .map(|p| p.dropped + p.degraded)
            .sum::<u64>();
        let failed = !report.violations.is_empty()
            || !report.leak_failures.is_empty()
            || healthy_drops != 0
            || report.guest_insns < min_insns;
        (text, failed)
    };

    print!("{text}");
    if let Some(path) = report_path {
        if let Err(e) = std::fs::write(&path, &text) {
            eprintln!("could not write report to {path}: {e}");
            std::process::exit(2);
        }
    }
    if failed {
        std::process::exit(1);
    }
}
