//! A tour of the protection matrix: every boundary the paper claims, with
//! the hardware check that enforces it.
//!
//! ```sh
//! cargo run -p examples --bin fault_containment
//! ```

use asm86::Assembler;
use minikernel::Kernel;
use palladium::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use palladium::protmem::ProtectedMemory;
use palladium::supervisor::{
    ModuleImage, RestartPolicy, SupervisedState, Supervisor, SupervisorError,
};
use palladium::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp};

fn check(name: &str, ok: bool) {
    println!("  [{}] {name}", if ok { "BLOCKED" } else { " FAIL  " });
    assert!(ok, "{name}");
}

/// Like [`check`], but for recovery steps that *succeed* rather than
/// accesses that are blocked.
fn recovered(name: &str, ok: bool) {
    println!("  [{}] {name}", if ok { "  OK   " } else { " FAIL  " });
    assert!(ok, "{name}");
}

fn main() {
    println!("User-level mechanism (paging + segmentation, §4.4):");
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).unwrap();
    app.load_libc(&mut k).unwrap();

    let probes: &[(&str, String)] = &[
        (
            "extension write to application data (PPL 0 page -> #PF)",
            format!(
                "f:\nmov eax, 1\nmov [{}], eax\nret\n",
                minikernel::USER_TEXT
            ),
        ),
        (
            "extension read of application data (PPL 0 page -> #PF)",
            format!("f:\nmov eax, [{}]\nret\n", minikernel::USER_TEXT),
        ),
        (
            "extension access to kernel space (segment limit -> #GP)",
            "f:\nmov eax, [0xD0000000]\nret\n".to_string(),
        ),
    ];
    for (name, src) in probes {
        let h = app
            .dlopen(
                &mut k,
                &Assembler::assemble(src).unwrap(),
                &DlopenOptions::new(),
            )
            .unwrap();
        let f = app.seg_dlsym(&mut k, h, "f").unwrap();
        check(
            name,
            matches!(
                app.call_extension(&mut k, f, 0),
                Err(ExtCallError::Fault { .. })
            ),
        );
    }

    // GOT sealing.
    let h = app
        .dlopen(
            &mut k,
            &Assembler::assemble(
                "f:\nmov ecx, [esp+4]\nmov eax, 0\nmov [ecx], eax\nret\nuses:\ncall strlen\nret\n",
            )
            .unwrap(),
            &DlopenOptions::new(),
        )
        .unwrap();
    let got = app.got_page(h).unwrap().expect("has a GOT");
    let f = app.seg_dlsym(&mut k, h, "f").unwrap();
    check(
        "extension write to the sealed GOT (read-only page -> #PF)",
        matches!(
            app.call_extension(&mut k, f, got),
            Err(ExtCallError::Fault { .. })
        ),
    );

    // Direct syscall from extension code.
    let h = app
        .dlopen(
            &mut k,
            &Assembler::assemble("f:\nmov eax, 20\nint 0x80\nret\n").unwrap(),
            &DlopenOptions::new(),
        )
        .unwrap();
    let f = app.seg_dlsym(&mut k, h, "f").unwrap();
    let r = app.call_extension(&mut k, f, 0).unwrap();
    check(
        "direct system call from SPL 3 extension (taskSPL rule -> EPERM)",
        (r as i32) < 0,
    );

    // Runaway extension.
    k.extension_cycle_limit = 30_000;
    let h = app
        .dlopen(
            &mut k,
            &Assembler::assemble("f:\nspin:\njmp spin\n").unwrap(),
            &DlopenOptions::new(),
        )
        .unwrap();
    let f = app.seg_dlsym(&mut k, h, "f").unwrap();
    check(
        "infinite-loop extension (CPU-time limit -> abort)",
        matches!(
            app.call_extension(&mut k, f, 0),
            Err(ExtCallError::TimeLimit)
        ),
    );
    k.extension_cycle_limit = 10_000_000;

    println!("\nKernel-level mechanism (segment limits + SPL, §4.3):");
    let mut kx = KernelExtensions::new(&mut k).unwrap();
    let seg = kx.create_segment(&mut k, 8).unwrap();
    kx.insmod(
        &mut k,
        seg,
        "escape",
        &Assembler::assemble("f:\nmov eax, [0x100000]\nret\n").unwrap(),
        &["f"],
    )
    .unwrap();
    check(
        "kernel extension beyond its segment limit (#GP -> abort)",
        matches!(kx.invoke(&mut k, seg, "f", 0), Err(KextError::Aborted(_))),
    );

    println!("\nSupervised restart (fault -> reclaim -> backoff -> reinstall):");
    // A supervised extension whose segment quarantines on the first
    // fault. The supervisor transactionally reclaims the dead segment's
    // pages and descriptors, waits out an exponential backoff, then
    // reinstalls the module from its stored image — and service resumes.
    let mut sup = Supervisor::new(RestartPolicy {
        backoff_base: 5_000,
        ..RestartPolicy::default()
    });
    let image = ModuleImage::new(
        "svc",
        Assembler::assemble(
            "entry:\n\
             mov ecx, [esp+4]\n\
             cmp ecx, 0xBAD\n\
             jne ok\n\
             mov eax, 1\n\
             mov [0x00200000], eax\n\
             ok:\n\
             mov eax, 7\n\
             ret\n",
        )
        .unwrap(),
        &["entry"],
    );
    let id = sup
        .install(
            &mut k,
            &mut kx,
            8,
            SegmentConfig {
                quarantine_threshold: 1,
                ..SegmentConfig::default()
            },
            vec![image],
        )
        .unwrap();
    assert_eq!(sup.invoke(&mut k, &mut kx, id, "entry", 1), Ok(7));
    check(
        "poison argument faults and kills the segment (#GP -> reclaim)",
        matches!(
            sup.invoke(&mut k, &mut kx, id, "entry", 0xBAD),
            Err(SupervisorError::Kext(KextError::Aborted(_)))
        ),
    );
    check(
        "calls during the backoff window get a structured error",
        matches!(
            sup.invoke(&mut k, &mut kx, id, "entry", 1),
            Err(SupervisorError::Restarting { .. })
        ),
    );
    k.m.charge(5_001); // the backoff elapses on the simulated clock
    recovered(
        "after the backoff the module is reinstalled and service resumes",
        sup.poll(&mut k, &mut kx, id) == SupervisedState::Running
            && sup.invoke(&mut k, &mut kx, id, "entry", 1) == Ok(7),
    );
    recovered(
        "the kill/restart cycle leaked nothing (ledger audit)",
        kx.assert_no_leaks(&k).is_ok(),
    );
    println!(
        "  restarts: {}  pages reclaimed: {}",
        sup.restarts, sup.pages_reclaimed
    );

    println!("\nProtected memory service (§6 future work, implemented):");
    let mut pm = ProtectedMemory::new(&mut k, 1).unwrap();
    pm.write(&mut k, 0, b"precious bytes").unwrap();
    check(
        "wild writes to a sealed region (read-only + PPL 0 PTEs)",
        pm.read(&k, 0, 14).unwrap() == b"precious bytes",
    );

    println!("\nall protection boundaries held; the application made");
    println!(
        "{} protected calls and survived {} aborted ones.",
        app.calls, app.aborted_calls
    );
}
