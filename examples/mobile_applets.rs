//! The §6 mobile-code system: "downloaded" compiled applets run without
//! any verification — the hardware contains them — under service
//! allow-lists, CPU/memory quotas, and three-strikes revocation.
//!
//! ```sh
//! cargo run -p examples --bin mobile_applets
//! ```

use asm86::Assembler;
use minikernel::Kernel;
use palladium::mobile::{AppletHost, AppletOutcome, AppletQuota};

fn main() {
    let mut k = Kernel::boot();
    let mut host = AppletHost::new(
        &mut k,
        AppletQuota {
            memory_pages: 16,
            cycles_per_call: 100_000,
            max_strikes: 2,
        },
    )
    .expect("host boots");
    println!("applet host up: libc allow-list, 100k-cycle quota, 2 strikes\n");

    // A well-behaved applet: computes a checksum over a string using the
    // shared libc it is allowed to import.
    let good = Assembler::assemble(
        "applet_main:
    push dword [esp+4]
    call strlen
    add esp, 4
    imul eax, 31
    ret
",
    )
    .unwrap();
    let good_id = host.admit(&mut k, "checksummer", &good).expect("admitted");
    let shared = host_shared(&mut k, &mut host, b"hello applet\0");
    match host.invoke(&mut k, good_id, shared) {
        AppletOutcome::Done(v) => println!("checksummer({shared:#x}) = {v} (12 chars x 31)"),
        other => panic!("unexpected {other:?}"),
    }

    // A corrupted download is refused at admission (integrity, not
    // safety).
    let mut corrupt = Assembler::assemble("applet_main:\nret\n").unwrap();
    corrupt.bytes[0] = 0xEE;
    println!(
        "corrupt download: {}",
        host.admit(&mut k, "noise", &corrupt).unwrap_err()
    );

    // An applet importing an API outside the allow-list is refused.
    let sneaky = Assembler::assemble("applet_main:\ncall format_disk\nret\n").unwrap();
    println!(
        "sneaky import:    {}",
        host.admit(&mut k, "sneaky", &sneaky).unwrap_err()
    );

    // A hostile applet runs — and is contained, struck, and revoked.
    let hostile = Assembler::assemble(&format!(
        "applet_main:\nmov eax, 0x41\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ))
    .unwrap();
    let hostile_id = host.admit(&mut k, "hostile", &hostile).expect("admitted");
    println!("\nhostile applet admitted (no verification needed!):");
    for _ in 0..3 {
        match host.invoke(&mut k, hostile_id, 0) {
            AppletOutcome::Faulted { strikes, revoked } => {
                println!("  contained by #PF — strike {strikes}, revoked: {revoked}");
            }
            AppletOutcome::Revoked => println!("  already revoked; pages pulled"),
            other => panic!("unexpected {other:?}"),
        }
    }

    // The good applet — and the host — are unaffected.
    match host.invoke(&mut k, good_id, shared) {
        AppletOutcome::Done(v) => println!("\ncheck summer still works after the attack: {v}"),
        other => panic!("unexpected {other:?}"),
    }
    let (_, calls, strikes, revoked) = host.status(hostile_id);
    println!("hostile final status: {calls} completed calls, {strikes} strikes, revoked={revoked}");
}

/// Puts a string into a shared area the applets can read.
fn host_shared(k: &mut Kernel, host: &mut AppletHost, s: &[u8]) -> u32 {
    let addr = host.alloc_shared(k, 1).expect("shared area");
    assert!(k.m.host_write(addr, s));
    addr
}
