//! The LibCGI web server (§5.2): serve live requests through all five CGI
//! execution models and print a Table 3-style summary.
//!
//! ```sh
//! cargo run -p examples --bin safe_cgi_server
//! ```

use webserver::http::get_request;
use webserver::{run_ab, run_live, AbConfig, ExecModel, WebServer};

fn main() {
    let mut server = WebServer::new().expect("server boots");
    server.add_benchmark_files();
    server.add_file(
        "/",
        b"<html><body>Palladium LibCGI demo</body></html>".to_vec(),
    );
    // A dynamic endpoint: the script computes per request, in-process,
    // behind the protection boundary.
    let calc = asm86::Assembler::assemble(
        "cube:
         mov eax, [esp+4]
         imul eax, [esp+4]
         imul eax, [esp+4]
         ret
",
    )
    .unwrap();
    server
        .add_dynamic("/cube", &calc, "cube")
        .expect("dynamic endpoint");

    println!(
        "web server up; warm protected LibCGI call measured at {} cycles\n",
        server.protected_call_cycles
    );

    // Serve a few live requests — the protected model really invokes the
    // CGI script as a Palladium extension on the simulated CPU.
    let resp = server
        .handle(&get_request("/"), ExecModel::LibCgiProtected)
        .expect("request served");
    let text = String::from_utf8_lossy(&resp);
    println!(
        "GET / via protected LibCGI:\n{}\n",
        text.lines().next().unwrap()
    );

    // Dynamic content through the protected script.
    let resp = server
        .handle(&get_request("/cube?n=7"), ExecModel::LibCgiProtected)
        .expect("dynamic request");
    let text = String::from_utf8_lossy(&resp);
    println!("GET /cube?n=7 -> {}", text.lines().last().unwrap());
    println!();

    // A live mini-benchmark against the 1 KB document.
    for model in ExecModel::ALL {
        let r = run_live(&mut server, model, "/file1024", 25, 7).expect("live run");
        println!("live {:<22} {:>7.0} req/s", model.name(), r.rps);
    }

    // The full analytic Table 3 (1000 requests, concurrency 30).
    println!("\nTable 3 (requests/second):");
    print!("{:>10}", "Size");
    for m in ExecModel::ALL {
        print!(" {:>20}", m.name());
    }
    println!();
    for size in [28u32, 1024, 10 * 1024, 100 * 1024] {
        print!("{:>9}B", size);
        for model in ExecModel::ALL {
            let r = run_ab(&server, model, size, AbConfig::default());
            print!(" {:>20.0}", r.rps);
        }
        println!();
    }
    println!(
        "\nserved {} live requests in total; protection cost stayed within a few percent.",
        server.served
    );
}
