//! Quickstart: load an extension into a protected application, call it,
//! and watch a misbehaving one get contained.
//!
//! ```sh
//! cargo run -p examples --bin quickstart
//! ```

use asm86::Assembler;
use palladium::user_ext::ExtCallError;
use palladium::{DlopenOptions, Error, Session};

fn main() {
    // 1. Boot a session: a simulated machine + kernel with an extensible
    //    application already promoted by init_PL (the app moves to SPL 2,
    //    its writable pages to PPL 0).
    let mut s = Session::new().expect("boot session");
    println!("application promoted to SPL 2 (task {})", s.app().tid);

    // 2. Write an extension in assembly and load it. Its pages are mapped
    //    at PPL 1, visible to both sides. `verify` runs the load-time
    //    static verifier and records an attestation on admission.
    let ext = Assembler::assemble(
        "; u32 fib(u32 n) — iterative Fibonacci
fib:
    mov ecx, [esp+4]
    mov eax, 0
    mov edx, 1
fib_loop:
    cmp ecx, 0
    je fib_done
    mov ebx, eax
    add ebx, edx
    mov eax, edx
    mov edx, ebx
    dec ecx
    jmp fib_loop
fib_done:
    ret
",
    )
    .expect("extension assembles");
    let h = s
        .dlopen(&ext, &DlopenOptions::new().verify(&["fib"]))
        .expect("dlopen");
    let att = s.attestation(h).unwrap().expect("attestation recorded");
    println!(
        "extension admitted by the verifier: {} entries, {} instructions",
        att.entries, att.insns
    );

    // 3. dlsym returns a pointer to the generated Prepare routine — the
    //    only way in. Calling it runs the full Figure 6 sequence (lret
    //    down to SPL 3, call gate back up) on the simulated CPU.
    let fib = s.dlsym(h, "fib").expect("dlsym");
    for n in [0u32, 1, 10, 30] {
        let before = s.kernel().m.cycles();
        let v = s.call(fib, n).expect("protected call");
        println!(
            "fib({n:>2}) = {v:>6}   [{} simulated cycles]",
            s.kernel().m.cycles() - before
        );
    }

    // 4. A buggy extension that scribbles over the application is caught
    //    by the paging hardware: SIGSEGV, call aborted, app lives on.
    //    (Loaded unverified — hardware containment needs no admission
    //    policy to hold.)
    let evil = Assembler::assemble(&format!(
        "evil:\nmov eax, 0x41414141\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ))
    .unwrap();
    let h2 = s.dlopen(&evil, &DlopenOptions::new()).unwrap();
    let evil_fn = s.dlsym(h2, "evil").unwrap();
    match s.call(evil_fn, 0) {
        Err(Error::Call(ExtCallError::Fault { sig, addr, cause })) => {
            let why = cause.map(|c| c.tag()).unwrap_or("?");
            println!("evil extension contained: signal {sig} at {addr:#010x} ({why})");
        }
        other => panic!("expected containment, got {other:?}"),
    }

    // 5. The application is unharmed and keeps working.
    let v = s.call(fib, 12).unwrap();
    println!("after the abort, fib(12) still works: {v}");
    println!(
        "totals: {} protected calls, {} aborted",
        s.app().calls,
        s.app().aborted_calls
    );
}
