//! Quickstart: load an extension into a protected application, call it,
//! and watch a misbehaving one get contained.
//!
//! ```sh
//! cargo run -p examples --bin quickstart
//! ```

use asm86::Assembler;
use minikernel::Kernel;
use palladium::user_ext::{DlOptions, ExtCallError, ExtensibleApp};

fn main() {
    // 1. Boot the simulated machine and kernel, and create an extensible
    //    application: this runs init_PL, promoting the app to SPL 2 and
    //    demoting its writable pages to PPL 0.
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("boot extensible app");
    println!("application promoted to SPL 2 (task {})", app.tid);

    // 2. Write an extension in assembly and load it with seg_dlopen. Its
    //    pages are mapped at PPL 1, visible to both sides.
    let ext = Assembler::assemble(
        "; u32 fib(u32 n) — iterative Fibonacci
fib:
    mov ecx, [esp+4]
    mov eax, 0
    mov edx, 1
fib_loop:
    cmp ecx, 0
    je fib_done
    mov ebx, eax
    add ebx, edx
    mov eax, edx
    mov edx, ebx
    dec ecx
    jmp fib_loop
fib_done:
    ret
",
    )
    .expect("extension assembles");
    let h = app
        .seg_dlopen(&mut k, &ext, DlOptions::default())
        .expect("seg_dlopen");

    // 3. seg_dlsym returns a pointer to the generated Prepare routine —
    //    the only way in. Calling it runs the full Figure 6 sequence
    //    (lret down to SPL 3, call gate back up) on the simulated CPU.
    let fib = app.seg_dlsym(&mut k, h, "fib").expect("seg_dlsym");
    for n in [0u32, 1, 10, 30] {
        let before = k.m.cycles();
        let v = app.call_extension(&mut k, fib, n).expect("protected call");
        println!(
            "fib({n:>2}) = {v:>6}   [{} simulated cycles]",
            k.m.cycles() - before
        );
    }

    // 4. A buggy extension that scribbles over the application is caught
    //    by the paging hardware: SIGSEGV, call aborted, app lives on.
    let evil = Assembler::assemble(&format!(
        "evil:\nmov eax, 0x41414141\nmov [{}], eax\nret\n",
        minikernel::USER_TEXT
    ))
    .unwrap();
    let h2 = app.seg_dlopen(&mut k, &evil, DlOptions::default()).unwrap();
    let evil_fn = app.seg_dlsym(&mut k, h2, "evil").unwrap();
    match app.call_extension(&mut k, evil_fn, 0) {
        Err(ExtCallError::Fault { sig, addr, cause }) => {
            let why = cause.map(|c| c.tag()).unwrap_or("?");
            println!("evil extension contained: signal {sig} at {addr:#010x} ({why})");
        }
        other => panic!("expected containment, got {other:?}"),
    }

    // 5. The application is unharmed and keeps working.
    let v = app.call_extension(&mut k, fib, 12).unwrap();
    println!("after the abort, fib(12) still works: {v}");
    println!(
        "totals: {} protected calls, {} aborted",
        app.calls, app.aborted_calls
    );
}
