//! The segmentation-aware debugger (§6): trace one protected call and
//! print a domain-labelled, symbolized disassembly plus the per-SPL
//! cycle profile.
//!
//! ```sh
//! cargo run -p examples --bin segdb_trace
//! ```

use asm86::Assembler;
use minikernel::Kernel;
use palladium::segdb::SegDb;
use palladium::user_ext::{DlopenOptions, ExtensibleApp};

fn main() {
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).expect("app");

    let ext = Assembler::assemble(
        "; sum of the first n integers
sum_to:
    mov ecx, [esp+4]
    mov eax, 0
sum_loop:
    cmp ecx, 0
    je sum_done
    add eax, ecx
    dec ecx
    jmp sum_loop
sum_done:
    ret
",
    )
    .unwrap();
    let h = app.dlopen(&mut k, &ext, &DlopenOptions::new()).unwrap();
    let f = app.seg_dlsym(&mut k, h, "sum_to").unwrap();
    app.call_extension(&mut k, f, 3).unwrap(); // warm

    // Trace one warm call.
    k.m.enable_trace(512);
    let r = app.call_extension(&mut k, f, 3).unwrap();
    let trace = k.m.disable_trace().unwrap();
    println!("sum_to(3) = {r}\n");

    // Symbolize: the extension, its trampolines, and the app runtime.
    let mut db = SegDb::new();
    let sum_addr = app.dlsym(h, "sum_to").unwrap();
    let obj_syms = ext
        .symbols
        .iter()
        .map(|(s, off)| (s.clone(), sum_addr + off))
        .collect::<Vec<_>>();
    db.add_region("ext:sum", sum_addr, sum_addr + ext.len() as u32, obj_syms);
    let (prep, transfer) = app.trampoline_addrs(h, "sum_to").unwrap();
    db.add_region(
        "trampoline",
        prep.min(transfer) & !0xFFF,
        (prep.max(transfer) | 0xFFF) + 1,
        vec![
            ("Prepare".to_string(), prep),
            ("Transfer".to_string(), transfer),
            ("AppCallGate".to_string(), app.app_callgate_addr()),
            ("invoke_stub".to_string(), app.invoke_stub_addr()),
        ],
    );

    println!("{}", db.format_trace(&trace));
    println!("protection-domain crossings: {}", SegDb::crossings(&trace));
    println!("cycles per domain:");
    for (cpl, cycles) in SegDb::domain_profile(&trace) {
        println!("  {:<12} {:>5} cycles", SegDb::domain(cpl), cycles);
    }
}
