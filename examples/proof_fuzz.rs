//! Differential soundness fuzzer for proof-directed check elision.
//!
//! ```text
//! cargo run --release -p examples --bin proof_fuzz -- --modules 10000
//! ```
//!
//! Every seeded module (plus the hand-written analysis adversaries) is
//! pushed through the verifying `insmod` + `invoke` pipeline in two
//! cloned worlds — proof elision on vs. off — and every observable is
//! compared. Exits non-zero if any module produced an unsoundness
//! finding (the CI `verifier_soundness` job gates on this).
//!
//! `--report <path>` writes the summary to a file; `--artifacts <dir>`
//! dumps each finding's replay artifact (detail + linked image) there.

use chaos::fuzz::{self, FuzzConfig};

fn usage_error(what: &str) -> ! {
    eprintln!("{what}");
    eprintln!(
        "usage: proof_fuzz [--seed N] [--modules N] [--image-every N] \
         [--report PATH] [--artifacts DIR]"
    );
    std::process::exit(2);
}

fn numeric_value<T: std::str::FromStr>(args: &mut impl Iterator<Item = String>, flag: &str) -> T {
    match args.next() {
        Some(v) => v
            .parse()
            .unwrap_or_else(|_| usage_error(&format!("{flag} expects a number, got `{v}`"))),
        None => usage_error(&format!("{flag} requires a value")),
    }
}

fn main() {
    let mut cfg = FuzzConfig::default();
    let mut report_path: Option<String> = None;
    let mut artifacts_dir: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => cfg.master_seed = numeric_value(&mut args, "--seed"),
            "--modules" => cfg.modules = numeric_value(&mut args, "--modules"),
            "--image-every" => cfg.image_compare_every = numeric_value(&mut args, "--image-every"),
            "--report" => report_path = args.next(),
            "--artifacts" => artifacts_dir = args.next(),
            other => usage_error(&format!("unknown flag `{other}`")),
        }
    }

    let report = fuzz::run(&cfg);

    let summary = format!(
        "proof_fuzz: master seed {:#x}\n\
         modules          {}\n\
         accepted         {}\n\
         rejected         {}\n\
         completed        {}\n\
         faulted          {}\n\
         blocks served    {}\n\
         ds checks elided {}\n\
         findings         {}\n",
        cfg.master_seed,
        report.modules,
        report.accepted,
        report.rejected,
        report.completed,
        report.faulted,
        report.blocks_served,
        report.ds_checks_elided,
        report.findings.len(),
    );
    print!("{summary}");

    if let Some(path) = &report_path {
        if let Some(dir) = std::path::Path::new(path).parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        std::fs::write(path, &summary).expect("write report");
    }

    if !report.findings.is_empty() {
        let dir = artifacts_dir.unwrap_or_else(|| "target/proof_fuzz_findings".into());
        std::fs::create_dir_all(&dir).expect("create artifacts dir");
        for f in &report.findings {
            let stem = format!("{dir}/finding-{:04}-{}", f.index, f.kind.tag());
            let detail = format!(
                "master seed: {:#x}\nindex: {}\nsource: {}\nkind: {}\n\n{}\n",
                f.master_seed,
                f.index,
                f.source,
                f.kind.tag(),
                f.detail
            );
            std::fs::write(format!("{stem}.txt"), detail).expect("write finding detail");
            std::fs::write(format!("{stem}.img"), &f.image).expect("write finding image");
            eprintln!("UNSOUND [{}] {} ({})", f.kind.tag(), f.source, f.index);
        }
        eprintln!(
            "proof_fuzz: {} unsoundness finding(s); artifacts in {dir}",
            report.findings.len()
        );
        std::process::exit(1);
    }

    // The campaign is vacuous if nothing was actually elided.
    if report.blocks_served == 0 || report.ds_checks_elided == 0 {
        eprintln!("proof_fuzz: campaign never exercised the elided path");
        std::process::exit(1);
    }
    println!(
        "proof_fuzz: sound — no divergence across {} modules",
        report.modules
    );
}
