//! The in-kernel BPF interpreter, written in simulated assembly.
//!
//! To reproduce Figure 7 the interpretation overhead must *emerge* from
//! execution rather than be asserted, so the interpreter itself is guest
//! code, loaded into kernel memory and run (as trusted SPL 0 code — BPF
//! is part of the kernel, not an extension) on the simulated CPU.
//!
//! The code mirrors `bpf_filter()` as compiled by the era's compilers:
//!
//! * the accumulator `A`, index `X` and `pc` live in stack slots (the
//!   large dispatch switch exhausts the i386's registers),
//! * dispatch is a bounds-checked jump table (an indirect jump that
//!   reliably misses the Pentium's BTB — the classic interpreter
//!   penalty),
//! * packet loads go through the `EXTRACT_SHORT`/`EXTRACT_LONG`
//!   byte-composition macros (packets are in network byte order), with
//!   bounds checks.

use asm86::{Assembler, Object};
use minikernel::Kernel;
use x86sim::machine::Exit;

use crate::bpf::{serialize, BpfInsn};

/// Errors from the guest interpreter harness.
#[derive(Debug, Clone, PartialEq)]
pub enum InterpError {
    /// Out of kernel memory.
    OutOfMemory,
    /// The interpreter faulted (should not happen on validated programs).
    Faulted(String),
    /// Ran past the safety instruction budget.
    Runaway,
}

impl core::fmt::Display for InterpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            InterpError::OutOfMemory => write!(f, "out of kernel memory"),
            InterpError::Faulted(e) => write!(f, "interpreter faulted: {e}"),
            InterpError::Runaway => write!(f, "interpreter exceeded instruction budget"),
        }
    }
}

impl std::error::Error for InterpError {}

/// Assembles the interpreter.
///
/// Exported symbols: `bpf_interp` (cdecl: `u32 bpf_interp(prog, pkt,
/// len)`) and `bpf_entry` (a host-invocation stub: `eax`=prog, `ebx`=pkt,
/// `ecx`=len, halts with the result in `eax`).
pub fn interpreter_object() -> Object {
    Assembler::assemble(
        "\
; Entry stub for host invocation.
bpf_entry:
    push ecx
    push ebx
    push eax
    call bpf_interp
    hlt

; u32 bpf_interp(prog, pkt, len)
; Locals (A, X and pc spilled, as gcc 2.7 did around the big switch):
;   [esp]    A
;   [esp+4]  X
;   [esp+8]  pc (pointer to the current instruction)
; Args after the 12-byte frame:
;   [esp+16] prog   [esp+20] pkt   [esp+24] len
bpf_interp:
    sub esp, 12
    mov eax, [esp+16]
    mov [esp+8], eax
    mov eax, 0
    mov [esp], eax
    mov [esp+4], eax

step:
    mov esi, [esp+8]
    mov eax, [esi]          ; opcode
    cmp eax, 20
    ja bad
    imul eax, 4
    add eax, jumptable
    jmp dword [eax]         ; the interpreter's indirect dispatch

bad:
    mov eax, 0
    add esp, 12
    ret

next:
    mov esi, [esp+8]
    add esi, 16
    mov [esp+8], esi
    jmp step

fail:
    mov eax, 0
    add esp, 12
    ret

op_ret_k:
    mov eax, [esi+12]
    add esp, 12
    ret

op_ret_a:
    mov eax, [esp]
    add esp, 12
    ret

; A = EXTRACT_LONG(pkt + k): network byte order, composed bytewise.
op_ld_w:
    mov ecx, [esi+12]
    mov edx, ecx
    add edx, 4
    cmp [esp+24], edx
    jb fail
    add ecx, [esp+20]
    mov ebx, byte [ecx]
    shl ebx, 8
    mov edx, byte [ecx+1]
    or ebx, edx
    shl ebx, 8
    mov edx, byte [ecx+2]
    or ebx, edx
    shl ebx, 8
    mov edx, byte [ecx+3]
    or ebx, edx
    mov [esp], ebx
    jmp next

; A = EXTRACT_SHORT(pkt + k).
op_ld_h:
    mov ecx, [esi+12]
    mov edx, ecx
    add edx, 2
    cmp [esp+24], edx
    jb fail
    add ecx, [esp+20]
    mov ebx, byte [ecx]
    shl ebx, 8
    mov edx, byte [ecx+1]
    or ebx, edx
    mov [esp], ebx
    jmp next

op_ld_b:
    mov ecx, [esi+12]
    mov edx, ecx
    inc edx
    cmp [esp+24], edx
    jb fail
    add ecx, [esp+20]
    mov ebx, byte [ecx]
    mov [esp], ebx
    jmp next

op_ld_imm:
    mov ebx, [esi+12]
    mov [esp], ebx
    jmp next

op_ldx_imm:
    mov ebx, [esi+12]
    mov [esp+4], ebx
    jmp next

; A = EXTRACT_LONG(pkt + X + k).
op_ld_ind:
    mov ecx, [esi+12]
    add ecx, [esp+4]
    mov edx, ecx
    add edx, 4
    cmp [esp+24], edx
    jb fail
    add ecx, [esp+20]
    mov ebx, byte [ecx]
    shl ebx, 8
    mov edx, byte [ecx+1]
    or ebx, edx
    shl ebx, 8
    mov edx, byte [ecx+2]
    or ebx, edx
    shl ebx, 8
    mov edx, byte [ecx+3]
    or ebx, edx
    mov [esp], ebx
    jmp next

take_jt:
    mov ecx, [esi+4]
    jmp branch
take_jf:
    mov ecx, [esi+8]
branch:
    imul ecx, 16
    mov esi, [esp+8]
    add esi, 16
    add esi, ecx
    mov [esp+8], esi
    jmp step

op_jeq:
    mov ebx, [esp]
    mov ecx, [esi+12]
    cmp ebx, ecx
    je take_jt
    jmp take_jf

op_jgt:
    mov ebx, [esp]
    mov ecx, [esi+12]
    cmp ebx, ecx
    ja take_jt
    jmp take_jf

op_jge:
    mov ebx, [esp]
    mov ecx, [esi+12]
    cmp ebx, ecx
    jae take_jt
    jmp take_jf

op_jset:
    mov ebx, [esp]
    and ebx, [esi+12]
    cmp ebx, 0
    jne take_jt
    jmp take_jf

op_ja:
    mov ecx, [esi+12]
    jmp branch

op_and:
    mov ebx, [esp]
    and ebx, [esi+12]
    mov [esp], ebx
    jmp next

op_or:
    mov ebx, [esp]
    or ebx, [esi+12]
    mov [esp], ebx
    jmp next

op_add:
    mov ebx, [esp]
    add ebx, [esi+12]
    mov [esp], ebx
    jmp next

op_sub:
    mov ebx, [esp]
    sub ebx, [esi+12]
    mov [esp], ebx
    jmp next

op_lsh:
    mov ebx, [esp]
    mov ecx, [esi+12]
    shl ebx, ecx
    mov [esp], ebx
    jmp next

op_rsh:
    mov ebx, [esp]
    mov ecx, [esi+12]
    shr ebx, ecx
    mov [esp], ebx
    jmp next

op_tax:
    mov ebx, [esp]
    mov [esp+4], ebx
    jmp next

op_txa:
    mov ebx, [esp+4]
    mov [esp], ebx
    jmp next

.align 4
jumptable:
    .dd op_ret_k
    .dd op_ret_a
    .dd op_ld_w
    .dd op_ld_h
    .dd op_ld_b
    .dd op_ld_imm
    .dd op_ldx_imm
    .dd op_ld_ind
    .dd op_jeq
    .dd op_jgt
    .dd op_jge
    .dd op_jset
    .dd op_ja
    .dd op_and
    .dd op_or
    .dd op_add
    .dd op_sub
    .dd op_lsh
    .dd op_rsh
    .dd op_tax
    .dd op_txa
",
    )
    .expect("bpf interpreter assembles")
}

/// The installed in-kernel interpreter.
#[derive(Debug, Clone)]
pub struct BpfKernelInterp {
    entry: u32,
    /// Scratch kernel buffer for (program, packet).
    prog_buf: u32,
    pkt_buf: u32,
    stack_top: u32,
    /// Capacity of each buffer in bytes.
    buf_size: u32,
}

impl BpfKernelInterp {
    /// Loads the interpreter into kernel memory.
    pub fn install(k: &mut Kernel) -> Result<BpfKernelInterp, InterpError> {
        let obj = interpreter_object();
        let pages = (obj.len() as u32).div_ceil(4096).max(1);
        let base = k
            .alloc_kernel_pages(pages)
            .map_err(|_| InterpError::OutOfMemory)?;
        let image = obj
            .link(base, &Default::default())
            .expect("interpreter links");
        if !k.kwrite(base, &image) {
            return Err(InterpError::OutOfMemory);
        }

        let buf_size = 16 * 4096;
        let prog_buf = k
            .alloc_kernel_pages(16)
            .map_err(|_| InterpError::OutOfMemory)?;
        let pkt_buf = k
            .alloc_kernel_pages(16)
            .map_err(|_| InterpError::OutOfMemory)?;
        let stack = k
            .alloc_kernel_pages(2)
            .map_err(|_| InterpError::OutOfMemory)?;
        Ok(BpfKernelInterp {
            entry: base + obj.symbol("bpf_entry").expect("entry"),
            prog_buf,
            pkt_buf,
            stack_top: stack + 2 * 4096,
            buf_size,
        })
    }

    /// Runs a filter over a packet on the simulated CPU, returning the
    /// filter value and the cycles consumed by the interpretation.
    pub fn run(
        &self,
        k: &mut Kernel,
        prog: &[BpfInsn],
        pkt: &[u8],
    ) -> Result<(u32, u64), InterpError> {
        let prog_bytes = serialize(prog);
        assert!(
            prog_bytes.len() as u32 <= self.buf_size,
            "program too large"
        );
        assert!(pkt.len() as u32 <= self.buf_size, "packet too large");
        if !k.kwrite(self.prog_buf, &prog_bytes) || !k.kwrite(self.pkt_buf, pkt) {
            return Err(InterpError::Faulted("interpreter buffers unmapped".into()));
        }

        let snapshot = k.m.cpu.clone();
        k.m.force_seg_from_table(asm86::isa::SegReg::Cs, k.sel.kcode);
        k.m.force_seg_from_table(asm86::isa::SegReg::Ss, k.sel.kdata);
        k.m.force_seg_from_table(asm86::isa::SegReg::Ds, k.sel.kdata);
        k.m.cpu.set_reg(asm86::isa::Reg::Esp, self.stack_top);
        k.m.cpu.set_reg(asm86::isa::Reg::Eax, self.prog_buf);
        k.m.cpu.set_reg(asm86::isa::Reg::Ebx, self.pkt_buf);
        k.m.cpu.set_reg(asm86::isa::Reg::Ecx, pkt.len() as u32);
        k.m.cpu.eip = self.entry;

        let start = k.m.cycles();
        let result = match k.m.run(4_000_000) {
            Exit::Hlt => Ok((k.m.cpu.reg(asm86::isa::Reg::Eax), k.m.cycles() - start)),
            Exit::Fault(f) => Err(InterpError::Faulted(f.to_string())),
            Exit::InsnLimit => Err(InterpError::Runaway),
            other => Err(InterpError::Faulted(format!("unexpected exit {other:?}"))),
        };
        k.m.cpu = snapshot;
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bpf::{self, validate};
    use seedrng::SeedRng;

    fn harness() -> (Kernel, BpfKernelInterp) {
        let mut k = Kernel::boot();
        let interp = BpfKernelInterp::install(&mut k).unwrap();
        (k, interp)
    }

    #[test]
    fn guest_matches_host_on_simple_filter() {
        let (mut k, interp) = harness();
        let prog = vec![
            BpfInsn::LdAbsB(9),
            BpfInsn::Jeq(17, 0, 1),
            BpfInsn::RetK(1),
            BpfInsn::RetK(0),
        ];
        let mut pkt = vec![0u8; 20];
        pkt[9] = 17;
        let (guest, cycles) = interp.run(&mut k, &prog, &pkt).unwrap();
        assert_eq!(guest, bpf::run(&prog, &pkt).unwrap());
        assert_eq!(guest, 1);
        assert!(cycles > 0);
    }

    #[test]
    fn network_byte_order_extraction() {
        let (mut k, interp) = harness();
        // A 16-bit field 0x0800 stored big-endian.
        let pkt = vec![0x08, 0x00, 0xAA, 0xBB, 0xCC, 0xDD];
        let prog = vec![BpfInsn::LdAbsH(0), BpfInsn::RetA];
        let (guest, _) = interp.run(&mut k, &prog, &pkt).unwrap();
        assert_eq!(guest, 0x0800);

        let prog = vec![BpfInsn::LdAbsW(2), BpfInsn::RetA];
        let (guest, _) = interp.run(&mut k, &prog, &pkt).unwrap();
        assert_eq!(guest, 0xAABB_CCDD);
    }

    #[test]
    fn out_of_bounds_load_rejects_packet() {
        let (mut k, interp) = harness();
        let prog = vec![BpfInsn::LdAbsW(100), BpfInsn::RetK(1)];
        let (guest, _) = interp.run(&mut k, &prog, &[0u8; 8]).unwrap();
        assert_eq!(guest, 0, "bounds failure returns 0 (drop)");
    }

    #[test]
    fn cost_grows_with_term_count() {
        let (mut k, interp) = harness();
        let pkt = {
            let mut p = vec![0u8; 64];
            for (i, b) in p.iter_mut().enumerate() {
                *b = i as u8;
            }
            p
        };
        let mut last = 0u64;
        for terms in 1..=4u32 {
            let mut prog = Vec::new();
            for t in 0..terms {
                let off = t * 4;
                let want = crate::bpf::run(&[BpfInsn::LdAbsW(off), BpfInsn::RetA], &pkt).unwrap();
                prog.push(BpfInsn::LdAbsW(off));
                prog.push(BpfInsn::Jeq(want, 0, (2 * (terms - t) - 1) as u8));
            }
            prog.push(BpfInsn::RetK(1));
            prog.push(BpfInsn::RetK(0));
            validate(&prog).unwrap();

            let (v, cycles) = interp.run(&mut k, &prog, &pkt).unwrap();
            assert_eq!(v, 1, "all terms true");
            assert!(cycles > last, "cost must grow with terms");
            last = cycles;
        }
    }

    /// Differential test: guest and host interpreters agree on random
    /// straight-line programs.
    fn arb_insn(r: &mut SeedRng) -> BpfInsn {
        let k = r.gen_range(0, 64);
        match r.gen_range(0, 16) {
            0 => BpfInsn::LdAbsW(r.gen_range(0, 16)),
            1 => BpfInsn::LdAbsH(r.gen_range(0, 18)),
            2 => BpfInsn::LdAbsB(r.gen_range(0, 20)),
            3 => BpfInsn::LdImm(k),
            4 => BpfInsn::LdxImm(r.gen_range(0, 8)),
            // Jumps stay 0/0 so the program is straight-line and always
            // valid regardless of position.
            5 => BpfInsn::Jeq(k, 0, 0),
            6 => BpfInsn::Jgt(k, 0, 0),
            7 => BpfInsn::Jset(k, 0, 0),
            8 => BpfInsn::And(k),
            9 => BpfInsn::Or(k),
            10 => BpfInsn::Add(k),
            11 => BpfInsn::Sub(k),
            12 => BpfInsn::Lsh(r.gen_range(0, 31)),
            13 => BpfInsn::Rsh(r.gen_range(0, 31)),
            14 => BpfInsn::Tax,
            _ => BpfInsn::Txa,
        }
    }

    #[test]
    fn seeded_guest_matches_host() {
        let mut r = SeedRng::new(0xB9F);
        for _ in 0..48 {
            let n = 1 + r.gen_range(0, 11) as usize;
            let mut prog: Vec<BpfInsn> = (0..n).map(|_| arb_insn(&mut r)).collect();
            prog.push(BpfInsn::RetA);
            validate(&prog).unwrap();

            let plen = 24 + r.gen_range(0, 16) as usize;
            let mut pkt = vec![0u8; plen];
            r.fill_bytes(&mut pkt);

            let host = bpf::run(&prog, &pkt).unwrap();
            let (mut k, interp) = harness();
            let (guest, _) = interp.run(&mut k, &prog, &pkt).unwrap();
            assert_eq!(guest, host);
        }
    }
}
