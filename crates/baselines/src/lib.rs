//! `baselines` — every comparator in the Palladium paper's evaluation.
//!
//! * [`bpf`] / [`bpf_interp`] — the Berkeley Packet Filter: bytecode,
//!   validator, host reference interpreter, and the in-kernel interpreter
//!   written in simulated assembly whose execution cost reproduces the
//!   interpretation overhead of Figure 7.
//! * [`sfi`] — a software-fault-isolation binary rewriter (write-protect
//!   and read-write-protect), for the §2.3 per-instruction-overhead
//!   comparison.
//! * [`rpc`] — the intra-machine socket RPC cost model (Table 2's third
//!   column).
//! * [`ipc`] — the published L4/LRPC comparison points (§2.2, §5.1).
//! * [`comparison`] — the §2.3 software-vs-hardware cost models and
//!   break-even analysis.

pub mod bpf;
pub mod bpf_interp;
pub mod comparison;
pub mod ipc;
pub mod rpc;
pub mod sfi;

pub use bpf::{BpfError, BpfInsn};
pub use bpf_interp::BpfKernelInterp;
pub use rpc::RpcCosts;
pub use sfi::{Sandbox, SfiPolicy};
