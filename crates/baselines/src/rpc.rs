//! The socket-RPC comparator for Table 2.
//!
//! The paper's third column runs the string-reverse service as a
//! client/server pair on the same machine over Linux's socket-based RPC —
//! "not optimized for intra-machine RPC". A request/reply costs four
//! syscalls (send + receive on each side), two context switches, argument
//! marshalling, and four data copies (user→kernel and kernel→user in each
//! direction).
//!
//! The model composes those costs from constants anchored to contemporary
//! measurements (Linux 2.0 on a Pentium 200; lmbench-era numbers), and is
//! calibrated so that the 32-byte round trip lands near the paper's
//! 349 µs and the slope near its ~66 cycles/byte.

use x86sim::cycles::cycles_to_us;

/// Cost components of one intra-machine RPC round trip.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RpcCosts {
    /// Client-side send path: syscall, sockaddr handling, UDP/IP output,
    /// loopback queueing. Anchor: ~70 µs send latency on Linux 2.0/P200.
    pub send_path: u64,
    /// Receive path: wakeup, checksum, copy to user, syscall return.
    pub recv_path: u64,
    /// Scheduler context switch (the receiver must be switched in).
    pub context_switch: u64,
    /// RPC-layer marshalling/dispatch fixed cost (XDR-style header
    /// processing, stub dispatch).
    pub marshal_fixed: u64,
    /// Per-byte, per-direction cost: two copies (user→kernel and
    /// kernel→user) plus checksumming and XDR touching each byte.
    pub per_byte: u64,
}

impl Default for RpcCosts {
    fn default() -> RpcCosts {
        RpcCosts {
            send_path: 14_000,
            recv_path: 16_000,
            context_switch: 3_000,
            marshal_fixed: 2_300,
            per_byte: 33,
        }
    }
}

impl RpcCosts {
    /// Cycles for one request/reply carrying `payload` bytes each way.
    ///
    /// Two messages traverse the full path (request and reply), each
    /// paying send + receive + a context switch to the peer, plus the
    /// RPC-layer fixed work once per round trip.
    pub fn round_trip_cycles(&self, payload: usize) -> u64 {
        2 * (self.send_path + self.recv_path + self.context_switch)
            + self.marshal_fixed
            + self.per_byte * 2 * payload as u64
    }

    /// Round trip in microseconds at the simulated 200 MHz clock.
    pub fn round_trip_us(&self, payload: usize) -> f64 {
        cycles_to_us(self.round_trip_cycles(payload))
    }

    /// Number of protection-domain crossings per round trip (4: two
    /// user→kernel entries and two exits on each message — the structural
    /// contrast with Palladium's 2, §5.1).
    pub fn domain_crossings(&self) -> u32 {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_paper_at_32_bytes() {
        // Paper: 349.19 us. Accept within 10%.
        let us = RpcCosts::default().round_trip_us(32);
        assert!((us - 349.19).abs() / 349.19 < 0.10, "got {us}");
    }

    #[test]
    fn matches_paper_slope() {
        // Paper: 423.33 - 349.19 = 74.14 us over 224 bytes.
        let c = RpcCosts::default();
        let slope = (c.round_trip_us(256) - c.round_trip_us(32)) / 224.0;
        let paper = 74.14 / 224.0;
        assert!((slope - paper).abs() / paper < 0.25, "got {slope}");
    }

    #[test]
    fn rpc_is_orders_of_magnitude_slower_than_a_call() {
        // The structural claim: at 32 bytes the RPC is >100x an unprotected
        // call (paper: 349.19 vs 2.20 us).
        let rpc = RpcCosts::default().round_trip_us(32);
        assert!(rpc / 2.2 > 100.0);
    }

    #[test]
    fn four_domain_crossings() {
        assert_eq!(RpcCosts::default().domain_crossings(), 4);
    }
}
