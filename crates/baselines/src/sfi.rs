//! Software fault isolation (the §2/§2.3 comparator).
//!
//! SFI [Wahbe et al. '93] sandboxes an extension by rewriting its binary:
//! before every store (write protection) or every memory access
//! (read-write protection), inserted instructions force the effective
//! address into the extension's sandbox region. Cost is therefore
//! *per-instruction-executed* — the opposite end of the trade-off from
//! Palladium's one-time domain-crossing cost, which is the comparison the
//! ablation benchmark quantifies.
//!
//! The sandbox region must be aligned to its (power-of-two) size so that
//! masking + OR-ing the base yields an in-region address. Two registers
//! are dedicated to the rewriter (`ESI` holds the scratch address, `EDI`
//! is reserved for future use, as in the original scheme); rewritten code
//! must not use them.

use asm86::isa::{AluOp, Insn, Mem, Reg, Src};

/// Protection policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfiPolicy {
    /// Only stores are forced into the sandbox (the cheap variant).
    WriteProtect,
    /// Loads and stores are both forced.
    ReadWriteProtect,
}

/// A sandbox region: `[base, base + size)`, `size` a power of two,
/// `base` aligned to `size`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sandbox {
    /// Region base.
    pub base: u32,
    /// Region size (power of two).
    pub size: u32,
}

/// Errors from the rewriter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SfiError {
    /// The sandbox is not a power-of-two size or misaligned.
    BadSandbox,
    /// The code uses a register the rewriter reserves.
    ReservedRegister(Reg),
    /// An instruction kind the rewriter cannot sandbox (far transfers out
    /// of the sandbox model).
    Unsupported(&'static str),
}

impl core::fmt::Display for SfiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SfiError::BadSandbox => write!(f, "sandbox must be size-aligned power of two"),
            SfiError::ReservedRegister(r) => write!(f, "code uses reserved register {r}"),
            SfiError::Unsupported(what) => write!(f, "cannot sandbox {what}"),
        }
    }
}

impl std::error::Error for SfiError {}

impl Sandbox {
    /// Validates the region.
    pub fn validate(&self) -> Result<(), SfiError> {
        if !self.size.is_power_of_two() || !self.base.is_multiple_of(self.size) {
            return Err(SfiError::BadSandbox);
        }
        Ok(())
    }

    /// The AND mask applied to offsets.
    pub fn mask(&self) -> u32 {
        self.size - 1
    }

    /// True if `addr` falls inside the region.
    pub fn contains(&self, addr: u32) -> bool {
        addr >= self.base && addr < self.base + self.size
    }
}

/// Dedicated scratch register for sandboxed effective addresses.
pub const SCRATCH: Reg = Reg::Esi;

/// Second reserved register (held for the scheme; unused by this
/// rewriter).
pub const RESERVED: Reg = Reg::Edi;

fn uses_reserved(insn: &Insn) -> Option<Reg> {
    // Conservative scan over operand registers.
    let regs: Vec<Reg> = match *insn {
        Insn::Mov(r, s) | Insn::Cmp(r, s) | Insn::Test(r, s) | Insn::Alu(_, r, s) => {
            let mut v = vec![r];
            if let Src::Reg(r2) = s {
                v.push(r2);
            }
            v
        }
        Insn::Load(r, m)
        | Insn::LoadB(r, m)
        | Insn::LoadW(r, m)
        | Insn::Lea(r, m)
        | Insn::AluM(_, r, m) => {
            let mut v = vec![r];
            v.extend(m.base);
            v
        }
        Insn::Store(m, s) | Insn::CmpM(m, s) => {
            let mut v: Vec<Reg> = m.base.into_iter().collect();
            if let Src::Reg(r2) = s {
                v.push(r2);
            }
            v
        }
        Insn::StoreB(m, r) | Insn::StoreW(m, r) => {
            let mut v = vec![r];
            v.extend(m.base);
            v
        }
        Insn::Push(Src::Reg(r)) | Insn::Pop(r) => vec![r],
        Insn::PushM(m) | Insn::PopM(m) => m.base.into_iter().collect(),
        Insn::Neg(r) | Insn::Not(r) | Insn::Inc(r) | Insn::Dec(r) => vec![r],
        Insn::JmpReg(r) | Insn::CallReg(r) => vec![r],
        Insn::JmpM(m) | Insn::CallM(m) => m.base.into_iter().collect(),
        Insn::MovToSeg(_, r) | Insn::MovFromSeg(r, _) => vec![r],
        _ => vec![],
    };
    regs.into_iter().find(|r| *r == SCRATCH || *r == RESERVED)
}

/// Emits the sandboxing prologue for a memory operand: computes the
/// effective address into [`SCRATCH`], masks it into the region, and
/// returns the replacement operand `[SCRATCH]`.
fn sandbox_addr(out: &mut Vec<Insn>, m: Mem, sb: &Sandbox) -> Mem {
    out.push(Insn::Lea(SCRATCH, m));
    out.push(Insn::Alu(AluOp::And, SCRATCH, Src::Imm(sb.mask() as i32)));
    out.push(Insn::Alu(AluOp::Or, SCRATCH, Src::Imm(sb.base as i32)));
    Mem::based(SCRATCH, 0)
}

/// Statistics about a rewrite.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SfiStats {
    /// Instructions in the input.
    pub input_insns: usize,
    /// Instructions in the output.
    pub output_insns: usize,
    /// Memory operations that were sandboxed.
    pub sandboxed_ops: usize,
}

/// Rewrites straight-line extension code to confine its memory accesses
/// to the sandbox. Relative branches within the code are not supported by
/// this simplified rewriter (the benchmark extensions are loop-free or
/// use counted loops expressed with `Jcc`, whose displacements would need
/// fixing up after insertion — the classic implementation patches them;
/// here the caller provides branch-free bodies).
pub fn rewrite(
    code: &[Insn],
    sb: &Sandbox,
    policy: SfiPolicy,
) -> Result<(Vec<Insn>, SfiStats), SfiError> {
    sb.validate()?;
    let mut out = Vec::with_capacity(code.len() * 2);
    let mut stats = SfiStats {
        input_insns: code.len(),
        ..SfiStats::default()
    };
    let rw = policy == SfiPolicy::ReadWriteProtect;
    for insn in code {
        if matches!(insn, Insn::Jmp(_) | Insn::Jcc(..) | Insn::Call(_)) {
            return Err(SfiError::Unsupported("relative branches"));
        }
        if matches!(
            insn,
            Insn::Lcall(..) | Insn::Lret | Insn::LretN(_) | Insn::Int(_)
        ) {
            return Err(SfiError::Unsupported("far transfers"));
        }
        if let Some(r) = uses_reserved(insn) {
            return Err(SfiError::ReservedRegister(r));
        }
        match *insn {
            Insn::Store(m, s) => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::Store(safe, s));
                stats.sandboxed_ops += 1;
            }
            Insn::StoreB(m, r) => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::StoreB(safe, r));
                stats.sandboxed_ops += 1;
            }
            Insn::StoreW(m, r) => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::StoreW(safe, r));
                stats.sandboxed_ops += 1;
            }
            Insn::PopM(m) => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::PopM(safe));
                stats.sandboxed_ops += 1;
            }
            Insn::Load(r, m) if rw => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::Load(r, safe));
                stats.sandboxed_ops += 1;
            }
            Insn::LoadB(r, m) if rw => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::LoadB(r, safe));
                stats.sandboxed_ops += 1;
            }
            Insn::LoadW(r, m) if rw => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::LoadW(r, safe));
                stats.sandboxed_ops += 1;
            }
            Insn::AluM(op, r, m) if rw => {
                let safe = sandbox_addr(&mut out, m, sb);
                out.push(Insn::AluM(op, r, safe));
                stats.sandboxed_ops += 1;
            }
            // Indirect control transfers are masked into the sandbox too
            // (code and data share the region in this simplified model).
            Insn::JmpReg(r) => {
                out.push(Insn::Mov(SCRATCH, Src::Reg(r)));
                out.push(Insn::Alu(AluOp::And, SCRATCH, Src::Imm(sb.mask() as i32)));
                out.push(Insn::Alu(AluOp::Or, SCRATCH, Src::Imm(sb.base as i32)));
                out.push(Insn::JmpReg(SCRATCH));
                stats.sandboxed_ops += 1;
            }
            other => out.push(other),
        }
    }
    stats.output_insns = out.len();
    Ok((out, stats))
}

/// The per-sandboxed-op overhead in measured cycles (lea + and + or).
pub fn per_op_overhead_cycles() -> u64 {
    use x86sim::cycles::measured_cost;
    measured_cost(&Insn::Lea(SCRATCH, Mem::abs(0)))
        + measured_cost(&Insn::Alu(AluOp::And, SCRATCH, Src::Imm(0)))
        + measured_cost(&Insn::Alu(AluOp::Or, SCRATCH, Src::Imm(0)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sb() -> Sandbox {
        Sandbox {
            base: 0x0010_0000,
            size: 0x1_0000,
        }
    }

    #[test]
    fn sandbox_validation() {
        assert!(sb().validate().is_ok());
        assert_eq!(
            Sandbox {
                base: 0x1000,
                size: 0x3000
            }
            .validate(),
            Err(SfiError::BadSandbox)
        );
        assert_eq!(
            Sandbox {
                base: 0x800,
                size: 0x1000
            }
            .validate(),
            Err(SfiError::BadSandbox)
        );
    }

    #[test]
    fn stores_are_wrapped_loads_left_alone_under_write_protect() {
        let code = vec![
            Insn::Load(Reg::Eax, Mem::abs(0xDEAD_0000)),
            Insn::Store(Mem::abs(0xDEAD_0000), Src::Reg(Reg::Eax)),
        ];
        let (out, stats) = rewrite(&code, &sb(), SfiPolicy::WriteProtect).unwrap();
        assert_eq!(stats.sandboxed_ops, 1);
        assert_eq!(out.len(), 1 + 4);
        // The load is untouched; the store goes through the scratch reg.
        assert_eq!(out[0], code[0]);
        assert_eq!(
            out[4],
            Insn::Store(Mem::based(SCRATCH, 0), Src::Reg(Reg::Eax))
        );
    }

    #[test]
    fn read_write_protect_wraps_both() {
        let code = vec![
            Insn::Load(Reg::Eax, Mem::based(Reg::Ebx, 4)),
            Insn::Store(Mem::based(Reg::Ebx, 8), Src::Reg(Reg::Eax)),
        ];
        let (_, stats) = rewrite(&code, &sb(), SfiPolicy::ReadWriteProtect).unwrap();
        assert_eq!(stats.sandboxed_ops, 2);
    }

    #[test]
    fn reserved_registers_are_rejected() {
        let code = vec![Insn::Mov(Reg::Esi, Src::Imm(1))];
        assert_eq!(
            rewrite(&code, &sb(), SfiPolicy::WriteProtect).unwrap_err(),
            SfiError::ReservedRegister(Reg::Esi)
        );
    }

    #[test]
    fn masked_address_always_lands_in_sandbox() {
        // Algebraic property: (addr & mask) | base is in [base, base+size).
        let s = sb();
        for addr in [0u32, 0xFFFF_FFFF, 0xDEAD_BEEF, s.base, s.base + s.size] {
            let forced = (addr & s.mask()) | s.base;
            assert!(s.contains(forced), "addr {addr:#x} -> {forced:#x}");
        }
    }

    #[test]
    fn sandboxed_store_cannot_escape_on_the_machine() {
        use asm86::encode::encode_program;
        use asm86::isa::SegReg;
        use x86sim::desc::{Descriptor, Selector};
        use x86sim::machine::{Exit, Machine};

        // Victim dword outside the sandbox at 0x0009_0000.
        let s = sb();
        let code = [
            Insn::Mov(Reg::Eax, Src::Imm(0x41)),
            Insn::Store(Mem::abs(0x0009_0000), Src::Reg(Reg::Eax)),
            Insn::Hlt,
        ];
        let (safe, _) = rewrite(&code[..2], &s, SfiPolicy::WriteProtect).unwrap();
        let mut prog = safe;
        prog.push(Insn::Hlt);

        let mut m = Machine::new();
        let c = m.gdt.push(Descriptor::flat_code(0));
        let d = m.gdt.push(Descriptor::flat_data(0));
        m.mem.write_bytes(0x1000, &encode_program(&prog));
        m.force_seg_from_table(SegReg::Cs, Selector::new(c, false, 0));
        m.force_seg_from_table(SegReg::Ss, Selector::new(d, false, 0));
        m.force_seg_from_table(SegReg::Ds, Selector::new(d, false, 0));
        m.cpu.set_reg(Reg::Esp, 0x8000);
        m.cpu.eip = 0x1000;
        assert_eq!(m.run(100), Exit::Hlt);

        assert_eq!(m.mem.read_u32(0x0009_0000), 0, "victim untouched");
        // The write landed inside the sandbox instead.
        let forced = (0x0009_0000u32 & s.mask()) | s.base;
        assert_eq!(m.mem.read_u32(forced), 0x41);
    }

    #[test]
    fn per_op_overhead_is_a_few_cycles() {
        let o = per_op_overhead_cycles();
        assert!((2..=6).contains(&o), "got {o}");
    }
}
