//! A classic BPF virtual machine (the paper's Figure 7 comparator).
//!
//! The Berkeley Packet Filter [McCanne & Jacobson '93] is the
//! interpretation-based protection baseline of the paper: filter programs
//! are bytecode for a small accumulator machine, validated and interpreted
//! *inside the kernel*. This module provides:
//!
//! * the bytecode definition and an in-memory layout guest code can walk,
//! * a host (Rust) reference interpreter, used for differential testing,
//! * a validator (bounded jumps, no divide-by-zero by constant zero).
//!
//! The guest interpreter that actually reproduces Figure 7 — written in
//! simulated assembly and run on the simulated CPU so interpretation
//! overhead *emerges* — lives in [`crate::bpf_interp`].
//!
//! Deviation from historical BPF: instructions serialize to 16 bytes
//! (`opcode, jt, jf, k`, each a little-endian u32) instead of 8, to keep
//! the guest interpreter's address arithmetic simple; packet loads use
//! network byte order (big-endian), exactly as real BPF's
//! `EXTRACT_SHORT`/`EXTRACT_LONG` macros do.

/// One BPF instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpfInsn {
    /// `ret k` — accept/return constant.
    RetK(u32),
    /// `ret a` — return the accumulator.
    RetA,
    /// `ld [k]` — A = 32-bit load from packet offset k.
    LdAbsW(u32),
    /// `ldh [k]` — A = 16-bit load (zero-extended).
    LdAbsH(u32),
    /// `ldb [k]` — A = 8-bit load (zero-extended).
    LdAbsB(u32),
    /// `ld #k` — A = k.
    LdImm(u32),
    /// `ldx #k` — X = k.
    LdxImm(u32),
    /// `ld [x+k]` — A = 32-bit load from packet offset X+k.
    LdIndW(u32),
    /// `jeq #k, jt, jf`.
    Jeq(u32, u8, u8),
    /// `jgt #k, jt, jf` (unsigned).
    Jgt(u32, u8, u8),
    /// `jge #k, jt, jf` (unsigned).
    Jge(u32, u8, u8),
    /// `jset #k, jt, jf` (A & k != 0).
    Jset(u32, u8, u8),
    /// `ja k` — unconditional forward jump.
    Ja(u32),
    /// `and #k`.
    And(u32),
    /// `or #k`.
    Or(u32),
    /// `add #k`.
    Add(u32),
    /// `sub #k`.
    Sub(u32),
    /// `lsh #k`.
    Lsh(u32),
    /// `rsh #k`.
    Rsh(u32),
    /// `tax` — X = A.
    Tax,
    /// `txa` — A = X.
    Txa,
}

/// Numeric opcodes for the serialized form (shared with the guest
/// interpreter — keep in sync with `bpf_interp`).
pub mod opcode {
    /// `ret k`.
    pub const RET_K: u32 = 0;
    /// `ret a`.
    pub const RET_A: u32 = 1;
    /// `ld [k]` (word).
    pub const LD_ABS_W: u32 = 2;
    /// `ldh [k]`.
    pub const LD_ABS_H: u32 = 3;
    /// `ldb [k]`.
    pub const LD_ABS_B: u32 = 4;
    /// `ld #k`.
    pub const LD_IMM: u32 = 5;
    /// `ldx #k`.
    pub const LDX_IMM: u32 = 6;
    /// `ld [x+k]`.
    pub const LD_IND_W: u32 = 7;
    /// `jeq`.
    pub const JEQ: u32 = 8;
    /// `jgt`.
    pub const JGT: u32 = 9;
    /// `jge`.
    pub const JGE: u32 = 10;
    /// `jset`.
    pub const JSET: u32 = 11;
    /// `ja`.
    pub const JA: u32 = 12;
    /// `and`.
    pub const AND: u32 = 13;
    /// `or`.
    pub const OR: u32 = 14;
    /// `add`.
    pub const ADD: u32 = 15;
    /// `sub`.
    pub const SUB: u32 = 16;
    /// `lsh`.
    pub const LSH: u32 = 17;
    /// `rsh`.
    pub const RSH: u32 = 18;
    /// `tax`.
    pub const TAX: u32 = 19;
    /// `txa`.
    pub const TXA: u32 = 20;
}

/// Size of one serialized instruction.
pub const BPF_INSN_SIZE: u32 = 16;

impl BpfInsn {
    /// Splits into the serialized (opcode, jt, jf, k) quadruple.
    pub fn fields(&self) -> (u32, u32, u32, u32) {
        use opcode::*;
        match *self {
            BpfInsn::RetK(k) => (RET_K, 0, 0, k),
            BpfInsn::RetA => (RET_A, 0, 0, 0),
            BpfInsn::LdAbsW(k) => (LD_ABS_W, 0, 0, k),
            BpfInsn::LdAbsH(k) => (LD_ABS_H, 0, 0, k),
            BpfInsn::LdAbsB(k) => (LD_ABS_B, 0, 0, k),
            BpfInsn::LdImm(k) => (LD_IMM, 0, 0, k),
            BpfInsn::LdxImm(k) => (LDX_IMM, 0, 0, k),
            BpfInsn::LdIndW(k) => (LD_IND_W, 0, 0, k),
            BpfInsn::Jeq(k, jt, jf) => (JEQ, jt as u32, jf as u32, k),
            BpfInsn::Jgt(k, jt, jf) => (JGT, jt as u32, jf as u32, k),
            BpfInsn::Jge(k, jt, jf) => (JGE, jt as u32, jf as u32, k),
            BpfInsn::Jset(k, jt, jf) => (JSET, jt as u32, jf as u32, k),
            BpfInsn::Ja(k) => (JA, 0, 0, k),
            BpfInsn::And(k) => (AND, 0, 0, k),
            BpfInsn::Or(k) => (OR, 0, 0, k),
            BpfInsn::Add(k) => (ADD, 0, 0, k),
            BpfInsn::Sub(k) => (SUB, 0, 0, k),
            BpfInsn::Lsh(k) => (LSH, 0, 0, k),
            BpfInsn::Rsh(k) => (RSH, 0, 0, k),
            BpfInsn::Tax => (TAX, 0, 0, 0),
            BpfInsn::Txa => (TXA, 0, 0, 0),
        }
    }

    /// Serializes one instruction (16 bytes, little-endian fields).
    pub fn serialize_into(&self, out: &mut Vec<u8>) {
        let (op, jt, jf, k) = self.fields();
        out.extend_from_slice(&op.to_le_bytes());
        out.extend_from_slice(&jt.to_le_bytes());
        out.extend_from_slice(&jf.to_le_bytes());
        out.extend_from_slice(&k.to_le_bytes());
    }
}

/// Serializes a program for the guest interpreter.
pub fn serialize(prog: &[BpfInsn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(prog.len() * BPF_INSN_SIZE as usize);
    for i in prog {
        i.serialize_into(&mut out);
    }
    out
}

/// Validation errors (the kernel refuses to install invalid filters, as
/// real BPF does).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BpfError {
    /// A jump leaves the program.
    JumpOutOfRange(usize),
    /// Fell off the end without a `ret`.
    NoReturn,
    /// Program empty or too long.
    BadLength,
    /// Packet load out of bounds at run time.
    PacketBounds(u32),
}

impl core::fmt::Display for BpfError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BpfError::JumpOutOfRange(pc) => write!(f, "jump out of range at insn {pc}"),
            BpfError::NoReturn => write!(f, "program can fall off the end"),
            BpfError::BadLength => write!(f, "bad program length"),
            BpfError::PacketBounds(k) => write!(f, "packet load out of bounds at {k}"),
        }
    }
}

impl std::error::Error for BpfError {}

/// Validates a program: all jumps must stay inside and the last reachable
/// path must end in `ret`. (BPF jumps are forward-only, guaranteeing
/// termination — the property the paper's interpretation baseline gets
/// for free and Palladium must buy with its CPU-time limit.)
pub fn validate(prog: &[BpfInsn]) -> Result<(), BpfError> {
    if prog.is_empty() || prog.len() > 4096 {
        return Err(BpfError::BadLength);
    }
    for (pc, insn) in prog.iter().enumerate() {
        let (op, jt, jf, k) = insn.fields();
        match op {
            opcode::JEQ | opcode::JGT | opcode::JGE | opcode::JSET
                if pc + 1 + jt as usize >= prog.len() || pc + 1 + jf as usize >= prog.len() =>
            {
                return Err(BpfError::JumpOutOfRange(pc));
            }
            opcode::JA if pc + 1 + k as usize >= prog.len() => {
                return Err(BpfError::JumpOutOfRange(pc));
            }
            _ => {}
        }
    }
    match prog.last().unwrap() {
        BpfInsn::RetA | BpfInsn::RetK(_) | BpfInsn::Ja(_) => Ok(()),
        // Conservative: require the program to end with a return.
        _ => Err(BpfError::NoReturn),
    }
}

fn load(pkt: &[u8], off: u32, size: u32) -> Result<u32, BpfError> {
    let off = off as usize;
    let end = off + size as usize;
    if end > pkt.len() {
        return Err(BpfError::PacketBounds(off as u32));
    }
    // Network byte order, as BPF's EXTRACT macros.
    let mut v = 0u32;
    for i in 0..size as usize {
        v = (v << 8) | pkt[off + i] as u32;
    }
    Ok(v)
}

/// The host reference interpreter. Returns the filter's value (non-zero =
/// accept, matching BPF convention).
pub fn run(prog: &[BpfInsn], pkt: &[u8]) -> Result<u32, BpfError> {
    let mut a: u32 = 0;
    let mut x: u32 = 0;
    let mut pc = 0usize;
    // Validation guarantees termination; belt-and-braces bound anyway.
    for _ in 0..prog.len() + 1 {
        let insn = prog.get(pc).ok_or(BpfError::JumpOutOfRange(pc))?;
        pc += 1;
        match *insn {
            BpfInsn::RetK(k) => return Ok(k),
            BpfInsn::RetA => return Ok(a),
            BpfInsn::LdAbsW(k) => a = load(pkt, k, 4)?,
            BpfInsn::LdAbsH(k) => a = load(pkt, k, 2)?,
            BpfInsn::LdAbsB(k) => a = load(pkt, k, 1)?,
            BpfInsn::LdImm(k) => a = k,
            BpfInsn::LdxImm(k) => x = k,
            BpfInsn::LdIndW(k) => a = load(pkt, x.wrapping_add(k), 4)?,
            BpfInsn::Jeq(k, jt, jf) => pc += if a == k { jt as usize } else { jf as usize },
            BpfInsn::Jgt(k, jt, jf) => pc += if a > k { jt as usize } else { jf as usize },
            BpfInsn::Jge(k, jt, jf) => pc += if a >= k { jt as usize } else { jf as usize },
            BpfInsn::Jset(k, jt, jf) => pc += if a & k != 0 { jt as usize } else { jf as usize },
            BpfInsn::Ja(k) => pc += k as usize,
            BpfInsn::And(k) => a &= k,
            BpfInsn::Or(k) => a |= k,
            BpfInsn::Add(k) => a = a.wrapping_add(k),
            BpfInsn::Sub(k) => a = a.wrapping_sub(k),
            BpfInsn::Lsh(k) => a = a.wrapping_shl(k),
            BpfInsn::Rsh(k) => a = a.wrapping_shr(k),
            BpfInsn::Tax => x = a,
            BpfInsn::Txa => a = x,
        }
    }
    Err(BpfError::NoReturn)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_all_and_reject_all() {
        assert_eq!(run(&[BpfInsn::RetK(u32::MAX)], &[]).unwrap(), u32::MAX);
        assert_eq!(run(&[BpfInsn::RetK(0)], &[]).unwrap(), 0);
    }

    #[test]
    fn single_term_filter() {
        // Accept packets whose byte 9 (the IP protocol field) is 17 (UDP).
        let prog = vec![
            BpfInsn::LdAbsB(9),
            BpfInsn::Jeq(17, 0, 1),
            BpfInsn::RetK(1),
            BpfInsn::RetK(0),
        ];
        validate(&prog).unwrap();
        let mut pkt = vec![0u8; 20];
        pkt[9] = 17;
        assert_eq!(run(&prog, &pkt).unwrap(), 1);
        pkt[9] = 6;
        assert_eq!(run(&prog, &pkt).unwrap(), 0);
    }

    #[test]
    fn loads_are_network_byte_order_and_bounded() {
        let pkt = [0x11, 0x22, 0x33, 0x44];
        let prog = vec![BpfInsn::LdAbsW(0), BpfInsn::RetA];
        assert_eq!(run(&prog, &pkt).unwrap(), 0x1122_3344);
        let prog = vec![BpfInsn::LdAbsH(2), BpfInsn::RetA];
        assert_eq!(run(&prog, &pkt).unwrap(), 0x3344);
        let prog = vec![BpfInsn::LdAbsW(2), BpfInsn::RetA];
        assert_eq!(run(&prog, &pkt), Err(BpfError::PacketBounds(2)));
    }

    #[test]
    fn arithmetic_and_index_register() {
        let prog = vec![
            BpfInsn::LdImm(10),
            BpfInsn::Tax,
            BpfInsn::LdImm(5),
            BpfInsn::Add(2),
            BpfInsn::Lsh(1), // (5+2)*2 = 14
            BpfInsn::Txa,    // a = 10
            BpfInsn::Sub(3),
            BpfInsn::RetA, // 7
        ];
        assert_eq!(run(&prog, &[]).unwrap(), 7);
    }

    #[test]
    fn jset_and_comparisons() {
        let prog = |insn: BpfInsn| {
            vec![
                BpfInsn::LdImm(0b1010),
                insn,
                BpfInsn::RetK(100),
                BpfInsn::RetK(200),
            ]
        };
        assert_eq!(run(&prog(BpfInsn::Jset(0b0010, 0, 1)), &[]).unwrap(), 100);
        assert_eq!(run(&prog(BpfInsn::Jset(0b0101, 0, 1)), &[]).unwrap(), 200);
        assert_eq!(run(&prog(BpfInsn::Jgt(9, 0, 1)), &[]).unwrap(), 100);
        assert_eq!(run(&prog(BpfInsn::Jge(10, 0, 1)), &[]).unwrap(), 100);
        assert_eq!(run(&prog(BpfInsn::Jgt(10, 0, 1)), &[]).unwrap(), 200);
    }

    #[test]
    fn validate_rejects_escaping_jumps() {
        let prog = vec![BpfInsn::Jeq(1, 5, 0), BpfInsn::RetK(0)];
        assert_eq!(validate(&prog), Err(BpfError::JumpOutOfRange(0)));
        assert_eq!(validate(&[]), Err(BpfError::BadLength));
        assert_eq!(validate(&[BpfInsn::LdImm(1)]), Err(BpfError::NoReturn));
    }

    #[test]
    fn serialization_layout() {
        let bytes = serialize(&[BpfInsn::Jeq(0xAABB, 2, 3)]);
        assert_eq!(bytes.len(), 16);
        assert_eq!(
            u32::from_le_bytes(bytes[0..4].try_into().unwrap()),
            opcode::JEQ
        );
        assert_eq!(u32::from_le_bytes(bytes[4..8].try_into().unwrap()), 2);
        assert_eq!(u32::from_le_bytes(bytes[8..12].try_into().unwrap()), 3);
        assert_eq!(
            u32::from_le_bytes(bytes[12..16].try_into().unwrap()),
            0xAABB
        );
    }
}
