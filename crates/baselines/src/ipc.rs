//! Fast-IPC comparators from §2.2 / §5.1: L4 and LRPC.
//!
//! These are published numbers the paper compares against, reproduced
//! here as models so the micro-benchmark harness can print the same
//! comparison rows:
//!
//! * **L4** achieved a 242-cycle request/reply IPC on a Pentium 166
//!   (best case, register-only parameters) with **four**
//!   protection-domain crossings;
//! * **LRPC** took 125 µs for a null call on a C-VAX Firefly (vs 464 µs
//!   conventional RPC), with two context switches and four crossings;
//! * **Palladium** performs a protected call in 142 cycles with **two**
//!   crossings and no context switch.

/// One comparison row.
#[derive(Debug, Clone, PartialEq)]
pub struct IpcMechanism {
    /// Mechanism name.
    pub name: &'static str,
    /// Request/reply cost in CPU cycles on its reference hardware.
    pub cycles: u64,
    /// Reference clock in MHz (for µs conversion).
    pub clock_mhz: u32,
    /// Protection-domain crossings per request/reply.
    pub crossings: u32,
    /// Context switches per request/reply.
    pub context_switches: u32,
}

impl IpcMechanism {
    /// Latency in microseconds on the mechanism's reference hardware.
    pub fn latency_us(&self) -> f64 {
        self.cycles as f64 / self.clock_mhz as f64
    }
}

/// L4's best-case IPC (Liedtke et al., HotOS '97): 242 cycles on a
/// Pentium 166.
pub fn l4() -> IpcMechanism {
    IpcMechanism {
        name: "L4 IPC (P166, best case)",
        cycles: 242,
        clock_mhz: 166,
        crossings: 4,
        context_switches: 2,
    }
}

/// LRPC (Bershad et al. '90): 125 µs null call on a C-VAX Firefly.
/// The C-VAX ran at ~12.5 MHz, making this ~1,562 cycles.
pub fn lrpc() -> IpcMechanism {
    IpcMechanism {
        name: "LRPC (C-VAX Firefly)",
        cycles: 1_562,
        clock_mhz: 12,
        crossings: 4,
        context_switches: 2,
    }
}

/// Palladium's protected procedure call: 142 cycles on the Pentium 200,
/// two crossings, no context switch (Table 1).
pub fn palladium() -> IpcMechanism {
    IpcMechanism {
        name: "Palladium protected call (P200)",
        cycles: 142,
        clock_mhz: 200,
        crossings: 2,
        context_switches: 0,
    }
}

/// The paper's headline comparison: Palladium beats L4's best case by
/// about 100 cycles with half the crossings.
pub fn palladium_vs_l4_cycle_gap() -> i64 {
    l4().cycles as i64 - palladium().cycles as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_comparison_numbers() {
        assert_eq!(l4().cycles, 242);
        assert_eq!(palladium().cycles, 142);
        assert_eq!(palladium_vs_l4_cycle_gap(), 100);
    }

    #[test]
    fn palladium_halves_the_crossings() {
        assert_eq!(palladium().crossings * 2, l4().crossings);
        assert_eq!(palladium().context_switches, 0);
    }

    #[test]
    fn latency_conversions() {
        // L4: 242 / 166 ≈ 1.46 us, as the paper states.
        assert!((l4().latency_us() - 1.46).abs() < 0.01);
        // Palladium: 142 / 200 = 0.71 us, as the paper states.
        assert!((palladium().latency_us() - 0.71).abs() < 0.001);
    }
}
