//! The §2.3 comparison: software-only protection vs hardware-based.
//!
//! "Software-only approaches ... incur an overhead that is approximately
//! proportional to the amount of extension code executed. ...
//! Hardware-based protection mechanisms do not incur per-instruction
//! overhead beyond the processor-level performance cost. The cost of
//! invoking an extension is typically a one-time cost associated with
//! each protection-domain crossing."
//!
//! This module turns that argument into a computable model: each approach
//! is (fixed crossing cost, multiplicative execution factor), with the
//! factors taken from the numbers the paper quotes for each system. The
//! break-even analysis — how much work an extension must do per
//! invocation before the per-instruction tax exceeds Palladium's 142-cycle
//! crossing — is what the ablation bench prints.

/// One protection approach's cost model.
#[derive(Debug, Clone, PartialEq)]
pub struct Approach {
    /// Name, as the paper cites it.
    pub name: &'static str,
    /// One-time cost per extension invocation, cycles.
    pub crossing_cycles: u64,
    /// Execution-time multiplier range (1.0 = native speed).
    pub slowdown: (f64, f64),
    /// Does safety depend on trusting a large software artifact
    /// (compiler / interpreter / rewriter)?
    pub trusts_software: bool,
}

/// Palladium (this paper): 142-cycle crossing, native execution,
/// hardware-enforced.
pub fn palladium() -> Approach {
    Approach {
        name: "Palladium (segmentation+paging)",
        crossing_cycles: 142,
        slowdown: (1.0, 1.0),
        trusts_software: false,
    }
}

/// SFI \[29, 25]: "from under 1% to 220% of the execution time".
pub fn sfi() -> Approach {
    Approach {
        name: "SFI / MiSFIT sandboxing",
        crossing_cycles: 10, // a plain call
        slowdown: (1.01, 3.20),
        trusts_software: true,
    }
}

/// SPIN's Modula-3 extensions \[6]: "10% to 150% of the same code in C".
pub fn typesafe_language() -> Approach {
    Approach {
        name: "Type-safe language (SPIN/Modula-3)",
        crossing_cycles: 10,
        slowdown: (1.10, 2.50),
        trusts_software: true,
    }
}

/// Static verification (PCC \[19], verified object code): a load-time
/// proof replaces runtime enforcement, so crossings are plain calls and
/// execution is native — but the TCB now contains the verifier itself
/// (and a slow or conservative verifier taxes what it cannot prove;
/// bound with our own verifier's fallback, which keeps hardware checks
/// for unproven accesses at up to a 10% dispatch tax).
pub fn static_verification() -> Approach {
    Approach {
        name: "Static verification (PCC/verified code)",
        crossing_cycles: 10,
        slowdown: (1.00, 1.10),
        trusts_software: true,
    }
}

/// Interpretation (BPF, Java without JIT) \[17, 24]: order-of-magnitude
/// slowdowns; we bound with our measured guest-interpreter factor (~20x
/// per term against compiled) and the classic 10-40x Java range.
pub fn interpretation() -> Approach {
    Approach {
        name: "Interpretation (BPF/Java)",
        crossing_cycles: 20,
        slowdown: (10.0, 40.0),
        trusts_software: true,
    }
}

/// All approaches, Palladium first.
pub fn all() -> Vec<Approach> {
    vec![
        palladium(),
        sfi(),
        typesafe_language(),
        static_verification(),
        interpretation(),
    ]
}

impl Approach {
    /// Total cycles to run an extension whose native execution costs
    /// `work` cycles, using the pessimistic end of the slowdown range.
    pub fn invocation_cost(&self, work: u64) -> u64 {
        self.crossing_cycles + (work as f64 * self.slowdown.1).round() as u64
    }

    /// Same, with the optimistic end.
    pub fn invocation_cost_best(&self, work: u64) -> u64 {
        self.crossing_cycles + (work as f64 * self.slowdown.0).round() as u64
    }
}

/// Native work (cycles per invocation) above which Palladium beats the
/// given software approach even at that approach's *best* overhead.
pub fn break_even_work(other: &Approach) -> Option<u64> {
    let pd = palladium();
    let per_cycle_tax = other.slowdown.0 - 1.0;
    if per_cycle_tax <= 0.0 {
        return None; // never (the other approach has no per-work tax)
    }
    let crossing_gap = pd.crossing_cycles.saturating_sub(other.crossing_cycles);
    Some((crossing_gap as f64 / per_cycle_tax).ceil() as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn palladium_is_the_only_native_speed_hardware_approach() {
        for a in all() {
            if a.name.starts_with("Palladium") {
                assert_eq!(a.slowdown, (1.0, 1.0));
                assert!(!a.trusts_software);
            } else {
                assert!(a.slowdown.1 > 1.0);
                assert!(a.trusts_software);
            }
        }
    }

    #[test]
    fn break_even_points_are_modest() {
        // Against best-case SFI (1%), Palladium amortizes its crossing
        // after ~13k cycles of extension work — a fraction of any of the
        // paper's real workloads (a 10 KB CGI request costs ~600k cycles).
        let be = break_even_work(&sfi()).unwrap();
        assert!((10_000..20_000).contains(&be), "got {be}");
        // Against SPIN's best case (10%), after ~1.3k cycles.
        let be = break_even_work(&typesafe_language()).unwrap();
        assert!((1_000..2_000).contains(&be), "got {be}");
        // Against interpretation it wins almost immediately.
        let be = break_even_work(&interpretation()).unwrap();
        assert!(be < 100, "got {be}");
    }

    #[test]
    fn costs_scale_as_the_paper_argues() {
        // For tiny extensions the crossing dominates and software wins;
        // for real ones the per-instruction tax dominates and Palladium
        // wins.
        let pd = palladium();
        let s = sfi();
        assert!(pd.invocation_cost(20) > s.invocation_cost_best(20));
        assert!(pd.invocation_cost(100_000) < s.invocation_cost_best(100_000));
    }
}
