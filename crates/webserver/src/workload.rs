//! The ApacheBench-style closed-loop load generator (§5.2: "a total of
//! 1000 requests were sent to the Web server with up to 30 requests being
//! serviced concurrently").

use seedrng::SeedRng;

use crate::cgi::{ExecModel, ServerError, WebServer};
use crate::http::get_request;
use crate::netcost::cpu_rps;
use x86sim::cycles::CLOCK_HZ;

/// One benchmark request with header jitter: ApacheBench varies nothing
/// but timing, so half the requests use an alternate header set to make
/// the parser do honest work. Drawing the coin from `rng` keeps every
/// seeded driver (live runs, sharded replicas, fleet rollouts)
/// byte-reproducible.
pub fn jittered_get(rng: &mut SeedRng, path: &str) -> String {
    if rng.gen_bool(0.5) {
        get_request(path)
    } else {
        format!("GET {path} HTTP/1.0\r\nHost: bench\r\nAccept: */*\r\n\r\n")
    }
}

/// Benchmark configuration (defaults match the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AbConfig {
    /// Total requests.
    pub requests: u32,
    /// Concurrent connections.
    pub concurrency: u32,
}

impl Default for AbConfig {
    fn default() -> AbConfig {
        AbConfig {
            requests: 1000,
            concurrency: 30,
        }
    }
}

/// One benchmark result.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AbResult {
    /// Requests per second.
    pub rps: f64,
    /// Total wall-clock seconds for the run.
    pub seconds: f64,
    /// Whether the link (rather than the CPU) was the bottleneck.
    pub link_bound: bool,
}

/// Analytic run: with 30-way concurrency both CPU and link pipelines stay
/// full, so completion time is the larger of the two resources' busy
/// times.
pub fn run_ab(server: &WebServer, model: ExecModel, size: u32, cfg: AbConfig) -> AbResult {
    let cpu = cpu_rps(server.cycles_per_request(model, size));
    let link = server.link.capacity_rps(size);
    let rps = cpu.min(link);
    AbResult {
        rps,
        seconds: cfg.requests as f64 / rps,
        link_bound: link < cpu,
    }
}

/// Live run: actually serves `n` requests through [`WebServer::handle`]
/// (protected LibCGI calls really execute on the simulated CPU) against a
/// randomly chosen benchmark file, and derives throughput from the
/// machine's cycle counter.
pub fn run_live(
    server: &mut WebServer,
    model: ExecModel,
    path: &str,
    n: u32,
    seed: u64,
) -> Result<AbResult, ServerError> {
    let mut rng = SeedRng::new(seed);
    let start = server.k.m.cycles();
    let mut resp_bytes = 0u64;
    for _ in 0..n {
        let raw = jittered_get(&mut rng, path);
        let resp = server.handle(&raw, model)?;
        resp_bytes += resp.len() as u64;
    }
    let cycles = server.k.m.cycles() - start;
    let seconds = cycles as f64 / CLOCK_HZ as f64;
    let cpu_rps = n as f64 / seconds;
    let link = server.link.capacity_rps((resp_bytes / n as u64) as u32);
    Ok(AbResult {
        rps: cpu_rps.min(link),
        seconds,
        link_bound: link < cpu_rps,
    })
}

/// Per-shard measurements from a [`run_live_sharded`] request group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardStats {
    /// Requests served by this group.
    pub requests: u32,
    /// Simulated cycles the group's server spent serving them.
    pub cycles: u64,
    /// Response bytes produced.
    pub resp_bytes: u64,
}

/// Sharded live run: splits `n` requests into `groups` independent
/// request groups, serves each group on its **own** freshly built
/// server (from `make_server`), and fans the groups across `pool`.
///
/// Group `g` draws from the positional stream `SeedRng::stream(seed,
/// g)` and never observes another group, so the aggregate result and
/// the per-shard stats are byte-identical for every worker count —
/// only wall-clock time changes. The request-group decomposition is a
/// function of `(n, groups)` alone, never of `pool.jobs()`.
///
/// Returns the merged result plus the in-order per-shard stats.
pub fn run_live_sharded<F>(
    make_server: F,
    model: ExecModel,
    path: &str,
    n: u32,
    seed: u64,
    groups: u32,
    pool: parex::Pool,
) -> Result<(AbResult, Vec<ShardStats>), ServerError>
where
    F: Fn() -> Result<WebServer, ServerError> + Sync,
{
    let groups = groups.clamp(1, n.max(1));
    let sizes: Vec<(u32, u32)> = (0..groups)
        .map(|g| {
            // Near-equal split: the first `n % groups` groups get one
            // extra request.
            (g, n / groups + u32::from(g < n % groups))
        })
        .collect();

    let shards = pool.run_ordered(sizes, |_, (g, reqs)| -> Result<_, ServerError> {
        let mut server = make_server()?;
        let mut rng = SeedRng::stream(seed, u64::from(g));
        let start = server.k.m.cycles();
        let mut resp_bytes = 0u64;
        for _ in 0..reqs {
            let raw = jittered_get(&mut rng, path);
            let resp = server.handle(&raw, model)?;
            resp_bytes += resp.len() as u64;
        }
        Ok((
            ShardStats {
                requests: reqs,
                cycles: server.k.m.cycles() - start,
                resp_bytes,
            },
            server.link,
        ))
    });

    let mut stats = Vec::with_capacity(shards.len());
    let mut link = None;
    for s in shards {
        let (stat, l) = s?;
        link = link.or(Some(l));
        stats.push(stat);
    }
    let link = link.expect("at least one group");

    let total_reqs: u32 = stats.iter().map(|s| s.requests).sum();
    let total_cycles: u64 = stats.iter().map(|s| s.cycles).sum();
    let total_bytes: u64 = stats.iter().map(|s| s.resp_bytes).sum();
    // Aggregate over *simulated CPU work*: the servers are replicas, so
    // total cycles over total requests is the per-request cost and the
    // merged rps is what one server would sustain — identical to a
    // serial run over the same groups.
    let seconds = total_cycles as f64 / CLOCK_HZ as f64;
    let cpu_rps = total_reqs as f64 / seconds;
    let link_rps = link.capacity_rps((total_bytes / u64::from(total_reqs.max(1))) as u32);
    Ok((
        AbResult {
            rps: cpu_rps.min(link_rps),
            seconds,
            link_bound: link_rps < cpu_rps,
        },
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_and_live_agree_for_static() {
        let mut s = WebServer::new().unwrap();
        s.add_benchmark_files();
        let analytic = run_ab(&s, ExecModel::StaticFile, 1024, AbConfig::default());
        let live = run_live(&mut s, ExecModel::StaticFile, "/file1024", 50, 1).unwrap();
        let err = (analytic.rps - live.rps).abs() / analytic.rps;
        assert!(err < 0.05, "analytic {} vs live {}", analytic.rps, live.rps);
    }

    #[test]
    fn live_protected_run_includes_real_guest_calls() {
        let mut s = WebServer::new().unwrap();
        s.add_benchmark_files();
        let before = s.k.m.insns();
        let live = run_live(&mut s, ExecModel::LibCgiProtected, "/file28", 20, 2).unwrap();
        assert!(live.rps > 0.0);
        assert!(
            s.k.m.insns() > before + 20 * 10,
            "each request executed guest instructions"
        );
    }

    #[test]
    fn run_times_scale_with_request_count() {
        let s = WebServer::new().unwrap();
        let a = run_ab(
            &s,
            ExecModel::Cgi,
            28,
            AbConfig {
                requests: 1000,
                concurrency: 30,
            },
        );
        let b = run_ab(
            &s,
            ExecModel::Cgi,
            28,
            AbConfig {
                requests: 2000,
                concurrency: 30,
            },
        );
        assert!((b.seconds / a.seconds - 2.0).abs() < 1e-9);
        assert_eq!(a.rps, b.rps);
    }

    #[test]
    fn sharded_live_run_is_job_count_invariant() {
        let make = || {
            let mut s = WebServer::new()?;
            s.add_benchmark_files();
            Ok(s)
        };
        let (r1, s1) = run_live_sharded(
            make,
            ExecModel::LibCgiProtected,
            "/file1024",
            40,
            7,
            4,
            parex::Pool::new(1),
        )
        .unwrap();
        let (r4, s4) = run_live_sharded(
            make,
            ExecModel::LibCgiProtected,
            "/file1024",
            40,
            7,
            4,
            parex::Pool::new(4),
        )
        .unwrap();
        assert_eq!(s1, s4);
        assert_eq!(r1.rps.to_bits(), r4.rps.to_bits());
        assert_eq!(r1.seconds.to_bits(), r4.seconds.to_bits());
    }

    #[test]
    fn nothing_in_table3_is_link_bound() {
        let s = WebServer::new().unwrap();
        for model in ExecModel::ALL {
            for size in [28u32, 1024, 10 * 1024, 100 * 1024] {
                let r = run_ab(&s, model, size, AbConfig::default());
                assert!(!r.link_bound, "{} at {size}", model.name());
            }
        }
    }
}

#[cfg(test)]
mod dynamic_live {
    use super::*;

    #[test]
    fn live_runs_hit_dynamic_endpoints_too() {
        let mut s = WebServer::new().unwrap();
        let script = asm86::Assembler::assemble(
            "inc_by_one:\n\
             mov eax, [esp+4]\n\
             inc eax\n\
             ret\n",
        )
        .unwrap();
        s.add_dynamic("/inc", &script, "inc_by_one").unwrap();
        let r = run_live(&mut s, ExecModel::LibCgiProtected, "/inc?n=41", 10, 4).unwrap();
        assert!(r.rps > 0.0);
        assert_eq!(s.served, 10);
        assert!(s
            .access_log
            .iter()
            .all(|l| l.contains("/inc?n=41") && l.contains("200")));
    }
}
