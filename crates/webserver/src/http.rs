//! Minimal HTTP/1.0 request and response handling.
//!
//! The server core runs host-side (its cycle cost is charged from the
//! calibrated model in [`crate::netcost`]); this module provides the
//! actual parsing and formatting so the examples and integration tests
//! exercise real requests end to end.

/// A parsed HTTP request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Request method (only GET is served).
    pub method: String,
    /// Request path.
    pub path: String,
    /// Raw header lines.
    pub headers: Vec<(String, String)>,
}

/// Request parse errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HttpError {
    /// Malformed request line.
    BadRequestLine,
    /// Malformed header.
    BadHeader(String),
    /// Unsupported method.
    MethodNotAllowed(String),
}

impl core::fmt::Display for HttpError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            HttpError::BadRequestLine => write!(f, "malformed request line"),
            HttpError::BadHeader(l) => write!(f, "malformed header `{l}`"),
            HttpError::MethodNotAllowed(m) => write!(f, "method `{m}` not allowed"),
        }
    }
}

impl std::error::Error for HttpError {}

/// Parses an HTTP/1.0 request.
pub fn parse_request(raw: &str) -> Result<Request, HttpError> {
    let mut lines = raw.split("\r\n");
    let request_line = lines.next().ok_or(HttpError::BadRequestLine)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(HttpError::BadRequestLine)?.to_string();
    let path = parts.next().ok_or(HttpError::BadRequestLine)?.to_string();
    let _version = parts.next().ok_or(HttpError::BadRequestLine)?;
    if method != "GET" {
        return Err(HttpError::MethodNotAllowed(method));
    }
    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadHeader(line.to_string()))?;
        headers.push((name.trim().to_string(), value.trim().to_string()));
    }
    Ok(Request {
        method,
        path,
        headers,
    })
}

/// Builds a 200 response with the given body.
pub fn ok_response(content_type: &str, body: &[u8]) -> Vec<u8> {
    let mut out = format!(
        "HTTP/1.0 200 OK\r\nServer: palladium-httpd/0.1\r\nContent-Type: {}\r\nContent-Length: {}\r\n\r\n",
        content_type,
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body);
    out
}

/// Builds an error response.
pub fn error_response(code: u16, reason: &str) -> Vec<u8> {
    format!("HTTP/1.0 {code} {reason}\r\nContent-Length: 0\r\n\r\n").into_bytes()
}

/// A GET request for `path`, as ApacheBench would send it.
pub fn get_request(path: &str) -> String {
    format!("GET {path} HTTP/1.0\r\nHost: bench\r\nUser-Agent: ab\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_get() {
        let r = parse_request(&get_request("/index.html")).unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/index.html");
        assert_eq!(r.headers.len(), 2);
        assert_eq!(r.headers[0], ("Host".into(), "bench".into()));
    }

    #[test]
    fn rejects_garbage_and_posts() {
        assert_eq!(parse_request("???"), Err(HttpError::BadRequestLine));
        assert!(matches!(
            parse_request("POST / HTTP/1.0\r\n\r\n"),
            Err(HttpError::MethodNotAllowed(_))
        ));
        assert!(matches!(
            parse_request("GET / HTTP/1.0\r\nnocolon\r\n\r\n"),
            Err(HttpError::BadHeader(_))
        ));
    }

    #[test]
    fn response_has_content_length() {
        let r = ok_response("text/html", b"hello");
        let s = String::from_utf8(r).unwrap();
        assert!(s.starts_with("HTTP/1.0 200 OK\r\n"));
        assert!(s.contains("Content-Length: 5"));
        assert!(s.ends_with("hello"));
    }

    #[test]
    fn error_response_format() {
        let r = String::from_utf8(error_response(404, "Not Found")).unwrap();
        assert!(r.starts_with("HTTP/1.0 404 Not Found"));
    }
}
