//! The extensible web server and its five CGI execution models (Table 3).
//!
//! * **CGI** — fork + exec a per-request process, pipe the response back.
//! * **FastCGI** — keep the CGI process alive; per-request IPC round trip.
//! * **LibCGI (unprotected)** — the script is a shared library invoked as
//!   a plain function call inside the server's address space \[28].
//! * **LibCGI (protected)** — the same, but the script is a Palladium
//!   user-level extension invoked through the Figure 6 protected call;
//!   the invocation really executes on the simulated CPU.
//! * **Static** — no CGI at all; the upper bound.
//!
//! Each model's per-request CPU cycles combine the calibrated server core
//! costs ([`crate::netcost`]) with the model-specific mechanism cost; the
//! protected-call component is *measured* from the simulator at server
//! start-up, not assumed.

use std::collections::BTreeMap;

use asm86::Assembler;
use minikernel::Kernel;
use palladium::user_ext::{DlopenOptions, ExtensibleApp, ExtensionHandle, PalError};

use crate::http::{self, Request};
use crate::netcost::{cpu_rps, Link, ServerCosts};

/// The intra-address-space (unprotected) call cost, Table 1's Intra
/// column.
pub const UNPROTECTED_CALL_CYCLES: u64 = 10;

/// CGI execution models, in Table 3 column order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecModel {
    /// fork/exec per request.
    Cgi,
    /// Persistent CGI process, IPC per request.
    FastCgi,
    /// Palladium-protected in-process script.
    LibCgiProtected,
    /// Unprotected in-process script.
    LibCgiUnprotected,
    /// Plain file serving (the bound).
    StaticFile,
}

impl ExecModel {
    /// All models, in Table 3 column order.
    pub const ALL: [ExecModel; 5] = [
        ExecModel::Cgi,
        ExecModel::FastCgi,
        ExecModel::LibCgiProtected,
        ExecModel::LibCgiUnprotected,
        ExecModel::StaticFile,
    ];

    /// Column label.
    pub fn name(self) -> &'static str {
        match self {
            ExecModel::Cgi => "CGI",
            ExecModel::FastCgi => "FastCGI",
            ExecModel::LibCgiProtected => "LibCGI (Protected)",
            ExecModel::LibCgiUnprotected => "LibCGI (Unprotected)",
            ExecModel::StaticFile => "Web Server",
        }
    }
}

/// Server errors.
#[derive(Debug)]
pub enum ServerError {
    /// Palladium setup failed.
    Pal(PalError),
    /// The protected script call failed.
    ScriptFault(String),
    /// Request parsing failed.
    Http(http::HttpError),
    /// No such document.
    NotFound(String),
}

impl core::fmt::Display for ServerError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ServerError::Pal(e) => write!(f, "palladium: {e}"),
            ServerError::ScriptFault(e) => write!(f, "script fault: {e}"),
            ServerError::Http(e) => write!(f, "http: {e}"),
            ServerError::NotFound(p) => write!(f, "not found: {p}"),
        }
    }
}

impl std::error::Error for ServerError {}

impl From<PalError> for ServerError {
    fn from(e: PalError) -> ServerError {
        ServerError::Pal(e)
    }
}

/// The LibCGI script source: reads the shared area pointer argument,
/// stamps the status word and a marker, and returns the status. This is
/// the guest code every protected invocation actually runs.
const CGI_SCRIPT: &str = "\
cgi_main:
    mov ecx, [esp+4]        ; shared data area
    mov eax, 200
    mov [ecx], eax          ; status code
    mov eax, 0x49474322     ; marker '\"CGI'
    mov [ecx+4], eax
    mov eax, 200
    ret
";

/// What a dynamic endpoint serves while its script is degraded
/// (faulted and waiting out the restart window) instead of a 500.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CgiFallback {
    /// Serve `503 Service Unavailable`.
    ServiceUnavailable,
    /// Serve a canned static body with a `200` (graceful degradation to
    /// precomputed content).
    Static(Vec<u8>),
}

/// A registered dynamic endpoint: the live symbols plus everything
/// needed to reinstall the script after a fault.
#[derive(Debug, Clone)]
struct DynamicEndpoint {
    /// Protected `Prepare` address.
    prep: u32,
    /// Unprotected in-process address.
    unprot: u32,
    /// Extension handle of the protected load (for `seg_dlclose`).
    handle: ExtensionHandle,
    /// The original script image, kept for reinstall. Behind an `Arc`
    /// because it is immutable after registration, so forked servers
    /// share it instead of copying the object per clone.
    script: std::sync::Arc<asm86::Object>,
    /// Entry symbol name.
    entry: String,
    /// Opt-in degradation behavior; `None` keeps the plain 500 path.
    fallback: Option<CgiFallback>,
    /// While `Some(t)`, protected requests before cycle `t` get the
    /// fallback response; the first request at or after `t` triggers a
    /// script reinstall.
    degraded_until: Option<u64>,
}

/// The extensible web server.
///
/// `Clone` is a world fork: the kernel's physical frames share
/// copy-on-write ([`x86sim::Machine::fork`]), so replica servers boot
/// from one warmed template in microseconds instead of re-running
/// `WebServer::new` per shard.
#[derive(Debug, Clone)]
pub struct WebServer {
    /// The hosting kernel (public: benches read its cycle counter).
    pub k: Kernel,
    app: ExtensibleApp,
    prep_cgi: u32,
    shared: u32,
    /// Server cost model.
    pub costs: ServerCosts,
    /// The client link.
    pub link: Link,
    /// Warm protected-call cycles, measured at start-up.
    pub protected_call_cycles: u64,
    files: BTreeMap<String, Vec<u8>>,
    /// Dynamic endpoints by path.
    dynamic: BTreeMap<String, DynamicEndpoint>,
    /// How long (simulated cycles) a faulted endpoint with a fallback
    /// stays degraded before the server reinstalls its script.
    pub degraded_window: u64,
    /// Fallback responses served in place of a faulted script.
    pub degraded_responses: u64,
    /// Successful script reinstalls after a degradation window.
    pub cgi_restarts: u64,
    /// Requests served.
    pub served: u64,
    /// Common-log-format access log (the paper's Apache logs requests
    /// too; logging cost is part of the calibrated base).
    pub access_log: Vec<String>,
}

impl WebServer {
    /// Boots the kernel, promotes the server, loads the LibCGI script as
    /// a protected extension and measures the warm protected-call cost.
    pub fn new() -> Result<WebServer, ServerError> {
        let mut k = Kernel::boot();
        let mut app = ExtensibleApp::new(&mut k)?;
        let script = Assembler::assemble(CGI_SCRIPT).expect("cgi script");
        let h = app.dlopen(&mut k, &script, &DlopenOptions::new())?;
        let prep_cgi = app.seg_dlsym(&mut k, h, "cgi_main")?;
        let shared = app.alloc_shared(&mut k, 2)?;

        // Measure the warm protected call exactly as §5.1 does: run it
        // twice, take the second.
        app.call_extension(&mut k, prep_cgi, shared)
            .map_err(|e| ServerError::ScriptFault(e.to_string()))?;
        let c0 = k.m.cycles();
        app.call_extension(&mut k, prep_cgi, shared)
            .map_err(|e| ServerError::ScriptFault(e.to_string()))?;
        let protected_call_cycles = k.m.cycles() - c0;

        Ok(WebServer {
            k,
            app,
            prep_cgi,
            shared,
            costs: ServerCosts::default(),
            link: Link::default(),
            protected_call_cycles,
            files: BTreeMap::new(),
            dynamic: BTreeMap::new(),
            degraded_window: 10_000,
            degraded_responses: 0,
            cgi_restarts: 0,
            served: 0,
            access_log: Vec::new(),
        })
    }

    /// Publishes a memory-resident document (the paper's files are
    /// memory-resident too).
    pub fn add_file(&mut self, path: &str, content: Vec<u8>) {
        self.files.insert(path.to_string(), content);
    }

    /// Creates the four benchmark documents of Table 3 under
    /// `/file<size>`.
    pub fn add_benchmark_files(&mut self) {
        for size in [28usize, 1024, 10 * 1024, 100 * 1024] {
            let body: Vec<u8> = (0..size).map(|i| b'a' + (i % 26) as u8).collect();
            self.add_file(&format!("/file{size}"), body);
        }
    }

    /// Analytic per-request CPU cycles for a model and response size.
    pub fn cycles_per_request(&self, model: ExecModel, size: u32) -> u64 {
        let c = &self.costs;
        let base = c.static_cycles(size);
        match model {
            ExecModel::StaticFile => base,
            ExecModel::LibCgiUnprotected => base + c.libcgi_glue + UNPROTECTED_CALL_CYCLES,
            ExecModel::LibCgiProtected => {
                base + c.libcgi_glue + self.protected_call_cycles + c.libcgi_prot_extra
            }
            ExecModel::FastCgi => base + c.fastcgi_ipc + c.fastcgi_per_byte * size as u64,
            ExecModel::Cgi => base + c.cgi_process + c.cgi_per_byte * size as u64,
        }
    }

    /// Throughput in requests/second: the CPU rate capped by the link.
    pub fn throughput_rps(&self, model: ExecModel, size: u32) -> f64 {
        let cpu = cpu_rps(self.cycles_per_request(model, size));
        cpu.min(self.link.capacity_rps(size))
    }

    /// Registers a dynamic endpoint: a CGI script (cdecl, one u32 in, one
    /// u32 out) served at `path`. The script is loaded twice — as a
    /// Palladium extension (for the protected model) and as plain
    /// application code (for every unprotected model) — so a
    /// `GET path?n=<u32>` request computes `f(n)` through whichever
    /// mechanism the execution model dictates.
    pub fn add_dynamic(
        &mut self,
        path: &str,
        script: &asm86::Object,
        entry: &str,
    ) -> Result<(), ServerError> {
        self.register_dynamic(path, script, entry, None)
    }

    /// Like [`WebServer::add_dynamic`], but when the protected script
    /// faults the endpoint degrades to `fallback` for
    /// [`WebServer::degraded_window`] cycles and the server then
    /// reinstalls the script from its stored image, instead of
    /// answering 500 forever.
    pub fn add_dynamic_with_fallback(
        &mut self,
        path: &str,
        script: &asm86::Object,
        entry: &str,
        fallback: CgiFallback,
    ) -> Result<(), ServerError> {
        self.register_dynamic(path, script, entry, Some(fallback))
    }

    fn register_dynamic(
        &mut self,
        path: &str,
        script: &asm86::Object,
        entry: &str,
        fallback: Option<CgiFallback>,
    ) -> Result<(), ServerError> {
        let h = self
            .app
            .dlopen(&mut self.k, script, &DlopenOptions::new())?;
        let prep = self.app.seg_dlsym(&mut self.k, h, entry)?;
        let unprot = self.app.install_app_code(&mut self.k, script)?[entry];
        self.dynamic.insert(
            path.to_string(),
            DynamicEndpoint {
                prep,
                unprot,
                handle: h,
                script: std::sync::Arc::new(script.clone()),
                entry: entry.to_string(),
                fallback,
                degraded_until: None,
            },
        );
        Ok(())
    }

    /// Whether the endpoint at `path` is currently serving its fallback.
    pub fn dynamic_degraded(&self, path: &str) -> bool {
        self.dynamic
            .get(path)
            .is_some_and(|e| e.degraded_until.is_some())
    }

    /// Serves the endpoint's fallback response and logs it.
    fn fallback_response(&mut self, req: &Request, fb: CgiFallback, model: ExecModel) -> Vec<u8> {
        self.degraded_responses += 1;
        match fb {
            CgiFallback::ServiceUnavailable => {
                self.log(req, 503, 0, model);
                http::error_response(503, "Service Unavailable")
            }
            CgiFallback::Static(body) => {
                self.served += 1;
                self.log(req, 200, body.len(), model);
                http::ok_response("text/html", &body)
            }
        }
    }

    /// If the endpoint is degraded, either serves the fallback (window
    /// still open) or reinstalls the script from its stored image
    /// (window elapsed). Returns `Some(response)` when the request was
    /// answered by the fallback.
    fn poll_endpoint(&mut self, path: &str, req: &Request, model: ExecModel) -> Option<Vec<u8>> {
        let e = self.dynamic.get(path)?;
        let until = e.degraded_until?;
        let fb = e.fallback.clone()?;
        if self.k.m.cycles() < until {
            return Some(self.fallback_response(req, fb, model));
        }
        // Window elapsed: reinstall the script (fault → restart →
        // service resumes). A failed reinstall re-arms the window.
        let (handle, script, entry) = {
            let e = &self.dynamic[path];
            (e.handle, e.script.clone(), e.entry.clone())
        };
        let _ = self.app.seg_dlclose(&mut self.k, handle);
        let reinstalled = self
            .app
            .dlopen(&mut self.k, &script, &DlopenOptions::new())
            .and_then(|h| Ok((h, self.app.seg_dlsym(&mut self.k, h, &entry)?)));
        match reinstalled {
            Ok((h, prep)) => {
                self.cgi_restarts += 1;
                let e = self.dynamic.get_mut(path).unwrap();
                e.handle = h;
                e.prep = prep;
                e.degraded_until = None;
                None
            }
            Err(_) => {
                let again = self.k.m.cycles() + self.degraded_window;
                self.dynamic.get_mut(path).unwrap().degraded_until = Some(again);
                Some(self.fallback_response(req, fb, model))
            }
        }
    }

    fn handle_dynamic(
        &mut self,
        req: &Request,
        n: u32,
        model: ExecModel,
    ) -> Result<Vec<u8>, ServerError> {
        let path = req.path.split('?').next().unwrap_or("").to_string();
        // Degradation only shields the protected model: the unprotected
        // models run in the server's own address space and have no
        // faulting boundary to recover behind.
        if model == ExecModel::LibCgiProtected {
            if let Some(resp) = self.poll_endpoint(&path, req, model) {
                return Ok(resp);
            }
        }
        let (prep, unprot) = {
            let e = &self.dynamic[&path];
            (e.prep, e.unprot)
        };
        // Charge the model's fixed mechanism cost around a small dynamic
        // response (~64 bytes).
        let model_cycles = self.cycles_per_request(model, 64);
        let result = match model {
            ExecModel::LibCgiProtected => {
                self.k
                    .m
                    .charge(model_cycles.saturating_sub(self.protected_call_cycles));
                self.app
                    .call_extension(&mut self.k, prep, n)
                    .map_err(|e| ServerError::ScriptFault(e.to_string()))
            }
            _ => {
                self.k.m.charge(model_cycles);
                self.app
                    .call_app_function(&mut self.k, unprot, n)
                    .map_err(|e| ServerError::ScriptFault(e.to_string()))
            }
        };
        match result {
            Ok(v) => {
                self.served += 1;
                self.log(req, 200, 0, model);
                let body = format!(
                    "n={n} result={v}
"
                )
                .into_bytes();
                Ok(http::ok_response("text/plain", &body))
            }
            Err(_) => {
                if model == ExecModel::LibCgiProtected {
                    let fb = self.dynamic[&path].fallback.clone();
                    if let Some(fb) = fb {
                        let until = self.k.m.cycles() + self.degraded_window;
                        self.dynamic.get_mut(&path).unwrap().degraded_until = Some(until);
                        return Ok(self.fallback_response(req, fb, model));
                    }
                }
                self.log(req, 500, 0, model);
                Ok(http::error_response(500, "Script Error"))
            }
        }
    }

    /// Guesses a Content-Type from the path suffix.
    fn content_type(path: &str) -> &'static str {
        match path.rsplit('.').next() {
            Some("html") | Some("htm") => "text/html",
            Some("txt") => "text/plain",
            Some("css") => "text/css",
            Some("js") => "application/javascript",
            Some("png") => "image/png",
            Some("jpg") | Some("jpeg") => "image/jpeg",
            _ => "text/html",
        }
    }

    fn log(&mut self, req: &Request, status: u16, bytes: usize, model: ExecModel) {
        self.access_log.push(format!(
            "- - [{}] \"{} {} HTTP/1.0\" {} {} ({})",
            self.k.m.cycles(),
            req.method,
            req.path,
            status,
            bytes,
            model.name()
        ));
    }

    /// Serves one request end to end, charging the model's cycle cost.
    /// For the protected model the script invocation really executes on
    /// the simulated CPU; for the others the mechanism cost is charged
    /// from the model.
    pub fn handle(&mut self, raw: &str, model: ExecModel) -> Result<Vec<u8>, ServerError> {
        let req: Request = http::parse_request(raw).map_err(ServerError::Http)?;
        // Dynamic endpoint? `GET /path?n=<u32>`.
        let (bare, query) = match req.path.split_once('?') {
            Some((p, q)) => (p.to_string(), Some(q.to_string())),
            None => (req.path.clone(), None),
        };
        if self.dynamic.contains_key(&bare) {
            let n = query
                .as_deref()
                .and_then(|q| q.strip_prefix("n="))
                .and_then(|v| v.parse::<u32>().ok())
                .unwrap_or(0);
            return self.handle_dynamic(&req, n, model);
        }
        let Some(body) = self.files.get(&req.path).cloned() else {
            self.log(&req, 404, 0, model);
            return Ok(http::error_response(404, "Not Found"));
        };
        let size = body.len() as u32;

        let model_cycles = self.cycles_per_request(model, size);
        match model {
            ExecModel::LibCgiProtected => {
                // Charge everything except the protected call, then make
                // the real protected call.
                self.k
                    .m
                    .charge(model_cycles.saturating_sub(self.protected_call_cycles));
                let status = self
                    .app
                    .call_extension(&mut self.k, self.prep_cgi, self.shared)
                    .map_err(|e| ServerError::ScriptFault(e.to_string()))?;
                if status != 200 {
                    return Ok(http::error_response(500, "Script Error"));
                }
                // The script stamped the shared area; verify the marker.
                let marker = self.k.m.host_read_u32(self.shared + 4);
                debug_assert_eq!(marker, 0x4947_4322);
            }
            _ => self.k.m.charge(model_cycles),
        }
        self.served += 1;
        self.log(&req, 200, body.len(), model);
        let ctype = Self::content_type(&req.path);
        Ok(http::ok_response(ctype, &body))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::get_request;

    #[test]
    fn server_boots_and_measures_the_protected_call() {
        let s = WebServer::new().unwrap();
        assert!(
            (142..500).contains(&s.protected_call_cycles),
            "got {}",
            s.protected_call_cycles
        );
    }

    #[test]
    fn serves_static_and_protected_requests() {
        let mut s = WebServer::new().unwrap();
        s.add_file("/x", b"hello world".to_vec());
        let r = s.handle(&get_request("/x"), ExecModel::StaticFile).unwrap();
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("200 OK"));
        assert!(text.ends_with("hello world"));

        let r = s
            .handle(&get_request("/x"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().ends_with("hello world"));
        assert_eq!(s.served, 2);
    }

    #[test]
    fn missing_files_404() {
        let mut s = WebServer::new().unwrap();
        let r = s
            .handle(&get_request("/nope"), ExecModel::StaticFile)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 404"));
    }

    #[test]
    fn model_ordering_matches_table3_at_every_size() {
        let s = WebServer::new().unwrap();
        for size in [28u32, 1024, 10 * 1024, 100 * 1024] {
            let cgi = s.throughput_rps(ExecModel::Cgi, size);
            let fast = s.throughput_rps(ExecModel::FastCgi, size);
            let prot = s.throughput_rps(ExecModel::LibCgiProtected, size);
            let unprot = s.throughput_rps(ExecModel::LibCgiUnprotected, size);
            let stat = s.throughput_rps(ExecModel::StaticFile, size);
            assert!(cgi < fast, "{size}: CGI slowest");
            assert!(fast < prot, "{size}: FastCGI below LibCGI");
            assert!(prot <= unprot, "{size}: protection costs something");
            assert!(unprot <= stat, "{size}: static is the bound");
        }
    }

    #[test]
    fn protected_libcgi_within_4_percent_of_unprotected() {
        // §5.2: "In all cases, protected LibCGI performs within 4% of
        // unprotected LibCGI."
        let s = WebServer::new().unwrap();
        for size in [28u32, 1024, 10 * 1024, 100 * 1024] {
            let prot = s.throughput_rps(ExecModel::LibCgiProtected, size);
            let unprot = s.throughput_rps(ExecModel::LibCgiUnprotected, size);
            let gap = (unprot - prot) / unprot;
            assert!(gap < 0.04, "{size}: gap {gap:.3}");
        }
    }

    #[test]
    fn protected_libcgi_at_least_twice_fastcgi_below_10kb() {
        // §5.2: "protected LibCGI is at least twice as fast as FastCGI for
        // data size smaller than 10 KBytes."
        let s = WebServer::new().unwrap();
        for size in [28u32, 1024] {
            let prot = s.throughput_rps(ExecModel::LibCgiProtected, size);
            let fast = s.throughput_rps(ExecModel::FastCgi, size);
            assert!(prot >= 2.0 * fast, "{size}: {prot:.0} vs {fast:.0}");
        }
    }

    #[test]
    fn throughput_numbers_near_paper() {
        // Spot-check headline cells of Table 3 within 15%.
        let s = WebServer::new().unwrap();
        let cells = [
            (ExecModel::Cgi, 28u32, 98.0),
            (ExecModel::FastCgi, 28, 193.0),
            (ExecModel::LibCgiProtected, 28, 437.0),
            (ExecModel::LibCgiUnprotected, 28, 448.0),
            (ExecModel::StaticFile, 28, 460.0),
            (ExecModel::Cgi, 100 * 1024, 33.0),
            (ExecModel::StaticFile, 100 * 1024, 57.0),
        ];
        for (model, size, paper) in cells {
            let got = s.throughput_rps(model, size);
            let err = (got - paper).abs() / paper;
            assert!(
                err < 0.15,
                "{} {size}B: got {got:.0} vs paper {paper} ({err:.2})",
                model.name()
            );
        }
    }
}

#[cfg(test)]
mod logging_tests {
    use super::*;
    use crate::http::get_request;

    #[test]
    fn requests_are_access_logged() {
        let mut s = WebServer::new().unwrap();
        s.add_file("/a.html", b"x".to_vec());
        s.handle(&get_request("/a.html"), ExecModel::StaticFile)
            .unwrap();
        s.handle(&get_request("/missing"), ExecModel::StaticFile)
            .unwrap();
        assert_eq!(s.access_log.len(), 2);
        assert!(s.access_log[0].contains("\"GET /a.html HTTP/1.0\" 200 1"));
        assert!(s.access_log[1].contains("404"));
    }

    #[test]
    fn content_types_by_suffix() {
        let mut s = WebServer::new().unwrap();
        s.add_file("/x.css", b"a{}".to_vec());
        s.add_file("/x.bin", b"?".to_vec());
        let r = s
            .handle(&get_request("/x.css"), ExecModel::StaticFile)
            .unwrap();
        assert!(String::from_utf8_lossy(&r).contains("Content-Type: text/css"));
        let r = s
            .handle(&get_request("/x.bin"), ExecModel::StaticFile)
            .unwrap();
        assert!(String::from_utf8_lossy(&r).contains("Content-Type: text/html"));
    }
}

#[cfg(test)]
mod dynamic_tests {
    use super::*;
    use crate::http::get_request;
    use asm86::Assembler;

    fn square_script() -> asm86::Object {
        Assembler::assemble(
            "square:\n\
             mov eax, [esp+4]\n\
             imul eax, [esp+4]\n\
             ret\n",
        )
        .unwrap()
    }

    #[test]
    fn dynamic_endpoint_computes_per_request() {
        let mut s = WebServer::new().unwrap();
        s.add_dynamic("/calc", &square_script(), "square").unwrap();
        for (model, n, want) in [
            (ExecModel::LibCgiProtected, 9u32, 81u32),
            (ExecModel::LibCgiUnprotected, 12, 144),
            (ExecModel::Cgi, 3, 9),
        ] {
            let r = s
                .handle(&get_request(&format!("/calc?n={n}")), model)
                .unwrap();
            let text = String::from_utf8(r).unwrap();
            assert!(
                text.contains(&format!("result={want}")),
                "{model:?}: {text}"
            );
        }
        // Missing or malformed query defaults to n=0.
        let r = s
            .handle(&get_request("/calc"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().contains("result=0"));
    }

    fn crash_script() -> asm86::Object {
        Assembler::assemble(&format!(
            "boom:\nmov eax, 1\nmov [{}], eax\nret\n",
            minikernel::USER_TEXT
        ))
        .unwrap()
    }

    #[test]
    fn fallback_endpoint_degrades_to_503_then_restarts() {
        let mut s = WebServer::new().unwrap();
        s.add_dynamic_with_fallback(
            "/svc",
            &crash_script(),
            "boom",
            CgiFallback::ServiceUnavailable,
        )
        .unwrap();
        s.degraded_window = 5_000;

        // First request faults the script: the endpoint degrades and the
        // client sees 503, not 500.
        let r = s
            .handle(&get_request("/svc?n=1"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 503"));
        assert!(s.dynamic_degraded("/svc"));

        // Inside the window every protected request gets the fallback
        // without touching the script.
        let aborted_before = s.app.aborted_calls;
        let r = s
            .handle(&get_request("/svc?n=1"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 503"));
        assert_eq!(
            s.app.aborted_calls, aborted_before,
            "no invoke while degraded"
        );
        assert!(s.degraded_responses >= 2);

        // After the window the server reinstalls the script and tries
        // again (it faults again here — the script is deterministically
        // hostile — which re-arms the window).
        s.k.m.charge(5_001);
        let r = s
            .handle(&get_request("/svc?n=1"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 503"));
        assert_eq!(s.cgi_restarts, 1);
        assert!(s.dynamic_degraded("/svc"));
    }

    #[test]
    fn static_fallback_serves_canned_body_during_degradation() {
        let mut s = WebServer::new().unwrap();
        s.add_dynamic_with_fallback(
            "/svc",
            &crash_script(),
            "boom",
            CgiFallback::Static(b"cached copy".to_vec()),
        )
        .unwrap();
        let r = s
            .handle(&get_request("/svc?n=1"), ExecModel::LibCgiProtected)
            .unwrap();
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("200 OK"), "{text}");
        assert!(text.ends_with("cached copy"));
        // Unprotected models are not shielded: no degradation routing.
        assert!(s.dynamic_degraded("/svc"));
    }

    #[test]
    fn restart_resumes_service_for_a_transiently_registered_script() {
        // Degrade the endpoint, then verify the post-window reinstall
        // really produces a working script again by swapping the stored
        // image for a healthy one (modelling a fixed redeploy).
        let mut s = WebServer::new().unwrap();
        s.add_dynamic_with_fallback(
            "/svc",
            &crash_script(),
            "boom",
            CgiFallback::ServiceUnavailable,
        )
        .unwrap();
        s.degraded_window = 1_000;
        let r = s
            .handle(&get_request("/svc?n=6"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 503"));

        // Fixed script ships under the same path and entry name.
        let fixed = Assembler::assemble(
            "boom:\n\
             mov eax, [esp+4]\n\
             imul eax, [esp+4]\n\
             ret\n",
        )
        .unwrap();
        s.dynamic.get_mut("/svc").unwrap().script = std::sync::Arc::new(fixed);

        s.k.m.charge(1_001);
        let r = s
            .handle(&get_request("/svc?n=6"), ExecModel::LibCgiProtected)
            .unwrap();
        let text = String::from_utf8(r).unwrap();
        assert!(text.contains("result=36"), "{text}");
        assert_eq!(s.cgi_restarts, 1);
        assert!(!s.dynamic_degraded("/svc"));
    }

    #[test]
    fn plain_add_dynamic_keeps_the_500_contract() {
        let mut s = WebServer::new().unwrap();
        s.add_dynamic("/boom", &crash_script(), "boom").unwrap();
        for _ in 0..2 {
            let r = s
                .handle(&get_request("/boom?n=1"), ExecModel::LibCgiProtected)
                .unwrap();
            assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 500"));
        }
        assert!(!s.dynamic_degraded("/boom"));
        assert_eq!(s.degraded_responses, 0);
    }

    #[test]
    fn hostile_dynamic_script_yields_500_and_server_survives() {
        let mut s = WebServer::new().unwrap();
        let evil = Assembler::assemble(&format!(
            "boom:\nmov eax, 1\nmov [{}], eax\nret\n",
            minikernel::USER_TEXT
        ))
        .unwrap();
        s.add_dynamic("/boom", &evil, "boom").unwrap();
        s.add_dynamic("/ok", &square_script(), "square").unwrap();

        let r = s
            .handle(&get_request("/boom?n=1"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 500"));

        // The server keeps serving, both static and dynamic.
        let r = s
            .handle(&get_request("/ok?n=4"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().contains("result=16"));
    }
}

#[cfg(test)]
mod protection_contrast {
    use super::*;
    use crate::http::get_request;
    use asm86::Assembler;

    #[test]
    fn unprotected_libcgi_lets_a_buggy_script_corrupt_the_server() {
        // The paper's whole motivation, demonstrated: the SAME buggy
        // script that the protected model contains (500 + server lives)
        // silently corrupts server memory when run unprotected in the
        // address space.
        let mut s = WebServer::new().unwrap();
        let evil = Assembler::assemble(&format!(
            "boom:\nmov eax, 0x41414141\nmov [{}], eax\nmov eax, 0\nret\n",
            minikernel::USER_TEXT
        ))
        .unwrap();
        s.add_dynamic("/boom", &evil, "boom").unwrap();

        let before = s.k.m.host_read(minikernel::USER_TEXT, 4);

        // Protected: contained, memory intact.
        let r = s
            .handle(&get_request("/boom?n=1"), ExecModel::LibCgiProtected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().starts_with("HTTP/1.0 500"));
        assert_eq!(s.k.m.host_read(minikernel::USER_TEXT, 4), before);

        // Unprotected: the script runs at the server's own privilege and
        // the write lands — silent corruption, a 200 response, and a
        // time bomb.
        let r = s
            .handle(&get_request("/boom?n=1"), ExecModel::LibCgiUnprotected)
            .unwrap();
        assert!(String::from_utf8(r).unwrap().contains("200 OK"));
        assert_eq!(
            s.k.m.host_read(minikernel::USER_TEXT, 4),
            vec![0x41, 0x41, 0x41, 0x41],
            "server memory corrupted by the unprotected script"
        );
    }
}
