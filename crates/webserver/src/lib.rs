//! `webserver` — the user-level extensible application of §5.2: an
//! Apache-like server whose CGI scripts can run as Palladium-protected
//! in-process extensions (LibCGI \[28]), reproducing Table 3.
//!
//! * [`http`] — minimal HTTP/1.0 parsing and formatting.
//! * [`netcost`] — the calibrated server CPU cost model and the 100 Mbps
//!   link.
//! * [`cgi`] — the [`cgi::WebServer`] with five execution
//!   models; the protected LibCGI invocation really runs on the
//!   simulated CPU and its cost is measured, not assumed.
//! * [`workload`] — the ApacheBench-style load generator (1000 requests,
//!   concurrency 30), plus [`workload::run_live_sharded`]: independent
//!   request groups fanned across a [`parex::Pool`] with a
//!   deterministic, worker-count-invariant merge.

pub mod cgi;
pub mod http;
pub mod netcost;
pub mod workload;

pub use cgi::{ExecModel, ServerError, WebServer};
pub use netcost::{Link, ServerCosts};
pub use workload::{run_ab, run_live, run_live_sharded, AbConfig, AbResult, ShardStats};
