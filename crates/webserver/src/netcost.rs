//! The server-side cost model and the 100 Mbps link (Table 3's
//! environment).
//!
//! Table 3 was measured on Apache on a Pentium 200 with clients over a
//! quiescent 100 Mbps Ethernet, 1000 requests at concurrency 30. At that
//! concurrency both the CPU and the link stay busy, so throughput is the
//! minimum of the two rates. The CPU cost of a request decomposes into a
//! fixed part (accept, parse, open, logging) and per-byte/per-segment
//! parts (file read, socket writes, TCP output); the calibration
//! constants below reproduce the measured static-file row within a few
//! percent and are reused unchanged by every CGI model.

use x86sim::cycles::CLOCK_HZ;

/// TCP maximum segment size on Ethernet.
pub const MSS: u32 = 1460;

/// The shared client-server link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Capacity in megabits per second.
    pub mbps: u32,
}

impl Default for Link {
    fn default() -> Link {
        Link { mbps: 100 }
    }
}

impl Link {
    /// Maximum request rate the link sustains for responses of
    /// `resp_bytes` (including rough per-packet framing overhead).
    pub fn capacity_rps(&self, resp_bytes: u32) -> f64 {
        let packets = resp_bytes.div_ceil(MSS).max(1);
        let wire_bytes = resp_bytes + packets * 58; // Ethernet+IP+TCP framing
        let bits = wire_bytes as f64 * 8.0;
        self.mbps as f64 * 1e6 / bits
    }
}

/// Per-request CPU costs of the server core.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerCosts {
    /// Fixed per-request work: accept, HTTP parse, `open`, `stat`,
    /// logging, connection teardown. Calibrated to the 28-byte static row
    /// (460 req/s ⇒ ~435k cycles total).
    pub base: u64,
    /// Per response byte: file read + socket copy + checksum.
    pub per_byte: u64,
    /// Per TCP segment: IP/TCP output path and interrupt handling.
    pub per_packet: u64,
    /// LibCGI: invoking the script as an in-process function — response
    /// assembly glue around the plain call.
    pub libcgi_glue: u64,
    /// Protected LibCGI extras beyond the measured protected-call cycles:
    /// shared-area bookkeeping and the TLB effects of the PPL 0/1 split.
    pub libcgi_prot_extra: u64,
    /// FastCGI: the round trip to the persistent CGI process (local
    /// socket protocol, two context switches, scheduler latency).
    pub fastcgi_ipc: u64,
    /// FastCGI per-byte extra: the response is piped through the socket.
    pub fastcgi_per_byte: u64,
    /// CGI: `fork` + `exec` + dynamic-linker start-up + `exit`/`wait` of
    /// a per-request process.
    pub cgi_process: u64,
    /// CGI per-byte extra: response piped from the child.
    pub cgi_per_byte: u64,
}

impl Default for ServerCosts {
    fn default() -> ServerCosts {
        ServerCosts {
            base: 420_000,
            per_byte: 22,
            per_packet: 8_000,
            libcgi_glue: 6_000,
            libcgi_prot_extra: 9_000,
            fastcgi_ipc: 600_000,
            fastcgi_per_byte: 2,
            cgi_process: 1_600_000,
            cgi_per_byte: 9,
        }
    }
}

impl ServerCosts {
    /// The static-file CPU cycles for a response body of `bytes`.
    pub fn static_cycles(&self, bytes: u32) -> u64 {
        self.base
            + self.per_byte * bytes as u64
            + self.per_packet * bytes.div_ceil(MSS).max(1) as u64
    }
}

/// Converts a per-request CPU cost to a request rate on the simulated
/// 200 MHz processor.
pub fn cpu_rps(cycles_per_request: u64) -> f64 {
    CLOCK_HZ as f64 / cycles_per_request as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_row_matches_paper_within_tolerance() {
        // Paper (Table 3, Web Server column): 460 / 436 / 315 / 57.
        let c = ServerCosts::default();
        let rows = [
            (28u32, 460.0),
            (1024, 436.0),
            (10 * 1024, 315.0),
            (100 * 1024, 57.0),
        ];
        for (size, paper) in rows {
            let got = cpu_rps(c.static_cycles(size));
            let err = (got - paper).abs() / paper;
            assert!(
                err < 0.15,
                "static {size}B: got {got:.0} rps vs paper {paper} ({err:.2})"
            );
        }
    }

    #[test]
    fn link_is_not_the_bottleneck_in_the_papers_runs() {
        // Even at 100 KB the CPU (57 rps) is below the link's ~119 rps.
        let link = Link::default();
        let c = ServerCosts::default();
        let cpu = cpu_rps(c.static_cycles(100 * 1024));
        assert!(link.capacity_rps(100 * 1024) > cpu);
    }

    #[test]
    fn link_capacity_scales_inversely_with_size() {
        let link = Link::default();
        assert!(link.capacity_rps(1024) > link.capacity_rps(10 * 1024));
        // ~12.5 MB/s for big transfers.
        let rps = link.capacity_rps(1_000_000);
        assert!((11.0..13.0).contains(&(rps * 1.0e6 / 1e6)), "got {rps}");
    }
}
