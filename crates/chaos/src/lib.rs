//! `chaos` — adversarial fault injection and containment auditing.
//!
//! The Palladium reproduction's safety story (DESIGN.md §6) is a set of
//! seven invariants that must hold for *any* extension behaviour, not
//! just the behaviours the unit tests enumerate. This crate attacks the
//! implementation and audits the invariants while doing so:
//!
//! * [`gen`] — seeded generation of adversarial SPL 1 / SPL 3
//!   extensions: out-of-limit accesses, PPL 0 writes, forged far
//!   transfers, segment-register loads, interrupt floods, runaways;
//! * [`corrupt`] — damaged loader inputs (truncated and garbled images,
//!   relocation overflows, raw garbage) and damaged *checkpoint* images
//!   (bit rot, truncation, torn writes, block transposition, version
//!   skew);
//! * [`inject`] — machine-state mutation through the simulator's
//!   injection hooks (descriptor present bits, PTE present bits, TLB
//!   drops, frame exhaustion), always in the *revoking* direction so
//!   containment stays assertable;
//! * [`oracle`] — the §6 invariants as executable checks plus
//!   behavioural probes (fork/exec privilege rules, syscall rejection,
//!   timer aborts, checkpoint-tamper rejection);
//! * [`campaign`] — the deterministic driver: one seed, thousands of
//!   steps, a structured event log, zero tolerated violations;
//! * [`fuzz`] — the differential soundness fuzzer for proof-directed
//!   check elision: every module runs under an elided and an unelided
//!   twin world; any observable divergence, or a fault inside a proven
//!   block, is an unsoundness finding with a replay artifact.
//!
//! Everything is reproducible: a campaign is a pure function of its
//! [`CampaignConfig`], so `--seed 42` fails (or passes) identically on
//! every machine.

pub mod campaign;
pub mod corrupt;
pub mod fuzz;
pub mod gen;
pub mod inject;
pub mod oracle;
pub mod verify;

pub use campaign::{run, CampaignConfig, CampaignReport, Event};
pub use corrupt::{Corruption, ImageCorruption};
pub use fuzz::{Finding, FindingKind, FuzzConfig, FuzzReport};
pub use oracle::{StateOracle, Violation};
pub use verify::{kernel_policy, verify_object, VerifyOutcome};
