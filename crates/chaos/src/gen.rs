//! Seeded generation of adversarial extensions.
//!
//! Every generator draws from a [`SeedRng`], so a campaign is a pure
//! function of its seed: the same seed produces byte-identical extension
//! objects, in the same order, on every run. The instruction mix is
//! deliberately hostile — far transfers at forged selectors, segment
//! register loads, accesses far outside any plausible limit, writes at
//! PPL 0 pages, interrupt floods and runaway loops — because the
//! containment argument is only as strong as the attacks thrown at it.

use asm86::isa::{AluOp, Cond, Insn, Mem, Reg, SegReg, Src};
use asm86::{CodeBuilder, Object};
use minikernel::layout::{KERNEL_VA_START, SHARED_LIB_BASE};
use minikernel::{KERNEL_BASE, USER_TEXT};
use seedrng::SeedRng;

/// A random general-purpose register.
pub fn arb_reg(r: &mut SeedRng) -> Reg {
    Reg::from_u8(r.gen_range(0, 8) as u8).unwrap()
}

/// A random data-capable segment register (never CS: `mov cs, r` is not
/// encodable on real hardware either).
pub fn arb_data_segreg(r: &mut SeedRng) -> SegReg {
    match r.gen_range(0, 3) {
        0 => SegReg::Es,
        1 => SegReg::Ss,
        _ => SegReg::Ds,
    }
}

/// Addresses a hostile *user-level* (SPL 3) extension aims at: the
/// application image (PPL 0), the kernel range, the application stack,
/// its own region, wrap-around values, and wild pointers.
pub fn hostile_user_target(r: &mut SeedRng) -> u32 {
    match r.gen_range(0, 8) {
        0 => USER_TEXT,
        1 => USER_TEXT + r.gen_range(0, 0x1000),
        2 => KERNEL_VA_START + r.gen_range(0, 0x10_0000),
        3 => KERNEL_BASE + r.gen_range(0, 0x1000),
        4 => 0xBFFE_8000 + r.gen_range(0, 0x8000),
        5 => SHARED_LIB_BASE + r.gen_range(0, 0x4_0000),
        6 => 0xFFFF_FF00 + r.gen_range(0, 0x100),
        _ => r.next_u32(),
    }
}

/// Offsets a hostile *kernel-level* (SPL 1) extension aims at. Kernel
/// extension addresses are segment-relative, so "escape" attempts are
/// offsets beyond any plausible segment limit, flat kernel addresses
/// (interpreted against the segment base they overshoot the limit), and
/// wrap-around values.
pub fn hostile_kernel_target(r: &mut SeedRng) -> u32 {
    match r.gen_range(0, 6) {
        0 => 0x10_0000 + r.gen_range(0, 0x10_0000),
        1 => KERNEL_VA_START,
        2 => KERNEL_BASE,
        3 => 0xFFFF_FFF0,
        4 => 0x2_0000 + r.gen_range(0, 0x1000),
        _ => r.next_u32(),
    }
}

/// A forged selector: random index, random table bit, random RPL —
/// sometimes near the well-known low GDT slots, sometimes wild.
pub fn arb_selector(r: &mut SeedRng) -> u16 {
    if r.gen_bool(0.5) {
        // Low GDT indexes (kernel/user/gate descriptors live here).
        (r.gen_range(0, 32) as u16) << 3 | r.gen_range(0, 4) as u16
    } else {
        r.next_u32() as u16
    }
}

/// One adversarial instruction, with `target(r)` supplying hostile
/// memory operands appropriate for the privilege level under attack.
fn arb_insn(r: &mut SeedRng, target: fn(&mut SeedRng) -> u32) -> Insn {
    match r.gen_range(0, 24) {
        0 => Insn::Mov(arb_reg(r), Src::Imm(r.next_u32() as i32)),
        1 => Insn::Mov(arb_reg(r), Src::Reg(arb_reg(r))),
        2 => Insn::Load(arb_reg(r), Mem::abs(target(r))),
        3 => Insn::Store(Mem::abs(target(r)), Src::Reg(arb_reg(r))),
        4 => Insn::LoadB(arb_reg(r), Mem::abs(target(r))),
        5 => Insn::StoreB(Mem::abs(target(r)), arb_reg(r)),
        6 => Insn::StoreW(Mem::abs(target(r)), arb_reg(r)),
        7 => Insn::Alu(AluOp::Add, arb_reg(r), Src::Imm(r.next_u32() as i32)),
        8 => Insn::Alu(AluOp::Xor, arb_reg(r), Src::Imm(r.next_u32() as i32)),
        9 => Insn::AluM(AluOp::Or, arb_reg(r), Mem::abs(target(r))),
        10 => Insn::Push(Src::Reg(arb_reg(r))),
        11 => Insn::Pop(arb_reg(r)),
        12 => Insn::PushM(Mem::abs(target(r))),
        // Segment-register loads: forged selectors into ES/SS/DS.
        13 => Insn::Mov(Reg::Eax, Src::Imm(arb_selector(r) as i32)),
        14 => Insn::MovToSeg(arb_data_segreg(r), Reg::Eax),
        15 => Insn::PopSeg(arb_data_segreg(r)),
        16 => Insn::PushSeg(arb_data_segreg(r)),
        // Interrupt floods: the legitimate gates, the internal completion
        // vectors (whose gate DPLs must reject this ring), and junk.
        17 => Insn::Int(match r.gen_range(0, 8) {
            0 => 0x80,
            1 => 0x81,
            2 => 0x83,
            3 => 0x84,
            4 => 0x85,
            5 => 0x86,
            _ => r.next_u32() as u8,
        }),
        // Forged far transfers.
        18 => Insn::Lcall(arb_selector(r), r.gen_range(0, 0x1_0000)),
        19 => Insn::Lret,
        20 => Insn::Iret,
        21 => Insn::Hlt,
        22 => Insn::JmpReg(arb_reg(r)),
        _ => Insn::Cmp(arb_reg(r), Src::Imm(r.next_u32() as i32)),
    }
}

fn build(body: &[Insn], runaway: bool) -> Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    for i in body {
        b.emit(*i);
    }
    if runaway {
        b.label("spin").unwrap();
        b.jmp_label("spin");
    }
    b.emit(Insn::Ret);
    b.finish().unwrap()
}

/// A random adversarial SPL 3 extension object exporting `entry`.
/// About one in eight is a runaway loop (exercising the §4.5.2 timer).
pub fn user_ext_object(r: &mut SeedRng) -> Object {
    let n = r.gen_range(0, 20) as usize;
    let body: Vec<Insn> = (0..n).map(|_| arb_insn(r, hostile_user_target)).collect();
    let runaway = r.gen_bool(0.125);
    build(&body, runaway)
}

/// A random adversarial SPL 1 kernel extension object exporting `entry`.
pub fn kernel_ext_object(r: &mut SeedRng) -> Object {
    let n = r.gen_range(0, 16) as usize;
    let body: Vec<Insn> = (0..n).map(|_| arb_insn(r, hostile_kernel_target)).collect();
    let runaway = r.gen_bool(0.125);
    build(&body, runaway)
}

/// A kernel extension built around a provably bounded `jb` table loop —
/// the mix the verifier's interval analysis *accepts with bounded block
/// proofs*, so the differential soundness fuzzer actually exercises the
/// proof-elided dispatch path (a hostile-only corpus is rejected at the
/// door and proves nothing about elision). The table size, the loop
/// direction of use (sum vs. store) and the table contents are all
/// seed-derived.
pub fn loopy_kernel_ext_object(r: &mut SeedRng) -> Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    b.emit(Insn::Mov(Reg::Eax, Src::Imm(0)));
    b.emit(Insn::Mov(Reg::Esi, Src::Imm(0)));
    let dwords = r.gen_range(4, 64);
    let limit = dwords * 4; // exclusive counter bound, multiple of 4
    let store = r.gen_bool(0.33);
    b.label("lp").unwrap();
    b.mov_label(Reg::Ebx, "table");
    b.emit(Insn::Alu(AluOp::Add, Reg::Ebx, Src::Reg(Reg::Eax)));
    if store {
        b.emit(Insn::Store(Mem::based(Reg::Ebx, 0), Src::Reg(Reg::Esi)));
    } else {
        b.emit(Insn::AluM(AluOp::Add, Reg::Esi, Mem::based(Reg::Ebx, 0)));
    }
    b.emit(Insn::Alu(AluOp::Add, Reg::Eax, Src::Imm(4)));
    b.emit(Insn::Cmp(Reg::Eax, Src::Imm(limit as i32)));
    b.jcc_label(Cond::B, "lp");
    b.emit(Insn::Mov(Reg::Eax, Src::Reg(Reg::Esi)));
    b.emit(Insn::Ret);
    b.label("table").unwrap();
    // The interval domain is stride-blind: the proven range reaches 3
    // bytes past offset `limit - 4`, so allocate one dword of slack.
    for _ in 0..=dwords {
        b.dword(r.next_u32());
    }
    b.finish().unwrap()
}

/// Hand-written adversaries aimed at the *analysis* rather than the
/// hardware: each is a module that is easy to misjudge with a buggy
/// interval/loop pipeline. All must be rejected at admission against a
/// segment of `seg_size` bytes — an acceptance is an unsoundness unless
/// the run still faults identically under elided and unelided dispatch.
pub fn analysis_adversaries(seg_size: u32) -> Vec<(&'static str, Object)> {
    let mut out = Vec::new();

    // In bounds on every iteration but the last: `table = seg_size -
    // 0x100` and the counter runs to 0x104, so the final access reaches
    // 3 bytes past the segment limit. A narrowing pass that clamps the
    // counter to its penultimate value would wrongly prove this loop.
    {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Reg::Eax, Src::Imm(0)));
        b.emit(Insn::Mov(Reg::Esi, Src::Imm(0)));
        b.label("lp").unwrap();
        b.emit(Insn::Mov(Reg::Ebx, Src::Imm((seg_size - 0x100) as i32)));
        b.emit(Insn::Alu(AluOp::Add, Reg::Ebx, Src::Reg(Reg::Eax)));
        b.emit(Insn::AluM(AluOp::Add, Reg::Esi, Mem::based(Reg::Ebx, 0)));
        b.emit(Insn::Alu(AluOp::Add, Reg::Eax, Src::Imm(4)));
        b.emit(Insn::Cmp(Reg::Eax, Src::Imm(0x104)));
        b.jcc_label(Cond::B, "lp");
        b.emit(Insn::Mov(Reg::Eax, Src::Reg(Reg::Esi)));
        b.emit(Insn::Ret);
        out.push(("loop-last-iteration-escape", b.finish().unwrap()));
    }

    // Address arithmetic that wraps mod 2^32: the access range straddles
    // the 2^32 boundary (0xFFFF_FF00 .. 0x1FF). Naive wrapping interval
    // addition can collapse it to a small in-bounds range.
    {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Mov(Reg::Eax, Src::Imm(0)));
        b.emit(Insn::Mov(Reg::Esi, Src::Imm(0)));
        b.label("lp").unwrap();
        b.emit(Insn::Mov(Reg::Ebx, Src::Imm(0xFFFF_FF00u32 as i32)));
        b.emit(Insn::Alu(AluOp::Add, Reg::Ebx, Src::Reg(Reg::Eax)));
        b.emit(Insn::AluM(AluOp::Add, Reg::Esi, Mem::based(Reg::Ebx, 0)));
        b.emit(Insn::Alu(AluOp::Add, Reg::Eax, Src::Imm(4)));
        b.emit(Insn::Cmp(Reg::Eax, Src::Imm(0x200)));
        b.jcc_label(Cond::B, "lp");
        b.emit(Insn::Mov(Reg::Eax, Src::Reg(Reg::Esi)));
        b.emit(Insn::Ret);
        out.push(("mod-2^32-straddle", b.finish().unwrap()));
    }

    // Indirect-target laundering: the jump target is a known constant
    // (`entry + 1`, mid-instruction) pushed through self-cancelling
    // arithmetic. Constant propagation that tracks it must reject the
    // misaligned target; an analysis that loses the constant must reject
    // the unresolved indirect. Accepting it is unsound either way.
    {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.mov_label(Reg::Eax, "entry");
        b.emit(Insn::Alu(AluOp::Add, Reg::Eax, Src::Imm(1)));
        b.emit(Insn::Alu(AluOp::Xor, Reg::Eax, Src::Imm(0x5A5A_5A5A)));
        b.emit(Insn::Alu(AluOp::Xor, Reg::Eax, Src::Imm(0x5A5A_5A5A)));
        b.emit(Insn::JmpReg(Reg::Eax));
        b.emit(Insn::Ret);
        out.push(("indirect-laundering", b.finish().unwrap()));
    }

    out
}

/// An extension whose only job is to overwrite `addr` — used to attack
/// sealed pages (the GOT) whose address is only known after load.
pub fn store_to_object(addr: u32) -> Object {
    build(
        &[
            Insn::Mov(Reg::Eax, Src::Imm(0x5EED_5EEDu32 as i32)),
            Insn::Store(Mem::abs(addr), Src::Reg(Reg::Eax)),
        ],
        false,
    )
}

/// A well-behaved extension returning `value` — the campaign's "known
/// good" probe that the application must still be able to run after
/// every adversarial step.
pub fn benign_object(value: u32) -> Object {
    build(&[Insn::Mov(Reg::Eax, Src::Imm(value as i32))], false)
}
