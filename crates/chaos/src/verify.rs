//! Verifier oracle: classifies what the load-time static verifier does
//! with the campaign's adversarial inputs.
//!
//! The containment story has two independent layers: the hardware
//! protection model (segment limits, gate DPLs, page PPLs) and the
//! `verifier` crate's load-time admission pass. This module drives the
//! second layer with the same seeded hostile generators the campaigns
//! throw at the first, so tests can assert the end-to-end property:
//! **every mutation class is rejected at admission or contained at
//! runtime** — there is no input that slips past both.

use std::collections::BTreeMap;

use asm86::Object;
use minikernel::layout::KSERVICE_VECTOR;
use verifier::{verify_image, Attestation, VerifyError, VerifyPolicy};

/// What the admission pipeline (link + static verification) did with an
/// object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyOutcome {
    /// The linker refused the object before verification could run
    /// (e.g. a relocation site out of range).
    RejectedAtLink(String),
    /// The verifier refused the linked image with a typed error.
    Rejected(VerifyError),
    /// The image was admitted with an attestation; if it is hostile it
    /// must now be contained by the hardware checks at runtime.
    Accepted(Attestation),
}

impl VerifyOutcome {
    /// Stable tag for deterministic event logs.
    pub fn tag(&self) -> &'static str {
        match self {
            VerifyOutcome::RejectedAtLink(_) => "rejected-at-link",
            VerifyOutcome::Rejected(_) => "rejected",
            VerifyOutcome::Accepted(_) => "accepted",
        }
    }
}

/// The admission policy `insmod` applies to kernel extensions loaded at
/// segment offset `at` into a segment of `seg_size` bytes: data accesses
/// must stay under the segment limit and the only legal software
/// interrupt is the kernel-service vector.
pub fn kernel_policy(at: u32, seg_size: u32) -> VerifyPolicy {
    VerifyPolicy::new(1, at)
        .allow_data(0, seg_size)
        .allow_vector(KSERVICE_VECTOR)
}

/// Links `obj` at `at` (no externs) and runs the verifier over the image
/// under `policy`, classifying the result. Mirrors the `insmod` pipeline
/// so oracle verdicts match what a verifying loader would decide.
pub fn verify_object(obj: &Object, at: u32, policy: &VerifyPolicy) -> VerifyOutcome {
    let image = match obj.link(at, &BTreeMap::new()) {
        Ok(image) => image,
        Err(e) => return VerifyOutcome::RejectedAtLink(e.to_string()),
    };
    let entries = match obj.entry_offsets(&["entry"]) {
        Ok(e) => e,
        Err(e) => return VerifyOutcome::RejectedAtLink(e.to_string()),
    };
    match verify_image(&image, &entries, policy) {
        Ok(att) => VerifyOutcome::Accepted(att),
        Err(e) => VerifyOutcome::Rejected(e),
    }
}

#[cfg(test)]
mod tests {
    use seedrng::SeedRng;

    use super::*;
    use crate::corrupt::{bad_reloc_site_object, corrupted_object, Corruption};
    use crate::gen;

    const AT: u32 = 0x3000;
    const SEG_SIZE: u32 = 0x1_0000;

    fn policy() -> VerifyPolicy {
        kernel_policy(AT, SEG_SIZE)
    }

    #[test]
    fn benign_probe_is_accepted() {
        let out = verify_object(&gen::benign_object(7), AT, &policy());
        assert!(
            matches!(out, VerifyOutcome::Accepted(att) if att.entries == 1),
            "the campaign's known-good probe must pass admission"
        );
    }

    #[test]
    fn reloc_overflow_class_is_always_rejected() {
        let mut r = SeedRng::new(0xC0FF_EE01);
        let mut seen = 0;
        while seen < 40 {
            let (kind, obj) = corrupted_object(&mut r);
            if kind != Corruption::RelocOverflow {
                continue;
            }
            seen += 1;
            let out = verify_object(&obj, AT, &policy());
            assert!(
                matches!(
                    out,
                    VerifyOutcome::Rejected(VerifyError::BadIndirectTarget { .. })
                ),
                "overflowed reloc must be a typed indirect-target rejection, got {out:?}"
            );
        }
    }

    #[test]
    fn bad_reloc_site_is_rejected_at_link() {
        let out = verify_object(&bad_reloc_site_object(), AT, &policy());
        assert!(matches!(out, VerifyOutcome::RejectedAtLink(_)));
    }

    #[test]
    fn accepted_hostile_extensions_have_no_reachable_privileged_insn() {
        // 200 seeded hostile kernel extensions: anything the verifier
        // admits must carry no reachable privileged instruction and no
        // reachable forbidden software interrupt — the hostile draws, if
        // any, were dead code behind a runaway loop or early return.
        use asm86::isa::Insn;
        let mut r = SeedRng::new(0x5EED_0CF6);
        let mut rejected = 0u32;
        for _ in 0..200 {
            let obj = gen::kernel_ext_object(&mut r);
            match verify_object(&obj, AT, &policy()) {
                VerifyOutcome::Accepted(_) => {
                    let image = obj.link(AT, &BTreeMap::new()).unwrap();
                    let entries = obj.entry_offsets(&["entry"]).unwrap();
                    let cfg = asm86::Cfg::build(&image, &entries).unwrap();
                    for line in cfg.lines.values() {
                        assert!(
                            !matches!(
                                line.insn,
                                Insn::Hlt
                                    | Insn::Iret
                                    | Insn::Lret
                                    | Insn::LretN(_)
                                    | Insn::MovToSeg(..)
                                    | Insn::PopSeg(_)
                            ),
                            "verifier admitted a reachable privileged insn at {:#x}",
                            line.offset
                        );
                        if let Insn::Int(v) = line.insn {
                            assert_eq!(v, KSERVICE_VECTOR, "forbidden vector admitted");
                        }
                    }
                }
                VerifyOutcome::Rejected(_) | VerifyOutcome::RejectedAtLink(_) => rejected += 1,
            }
        }
        // Sanity: the verifier actually bites on this generator's mix.
        assert!(
            rejected > 100,
            "expected most hostile extensions rejected, got {rejected}/200"
        );
    }

    #[test]
    fn every_corruption_class_is_rejected_or_admitted_with_attestation() {
        // The oracle never panics and always produces a typed verdict,
        // whatever the damage; rejection reasons stay structured.
        let mut r = SeedRng::new(0xDEAD_5EED);
        let mut tags = std::collections::BTreeSet::new();
        for _ in 0..120 {
            let (kind, obj) = corrupted_object(&mut r);
            let out = verify_object(&obj, AT, &policy());
            tags.insert((kind.tag(), out.tag()));
        }
        // Every corruption class appeared and produced a verdict.
        for class in ["truncated", "garbled", "reloc-overflow", "garbage"] {
            assert!(
                tags.iter().any(|(k, _)| *k == class),
                "corruption class {class} never drawn"
            );
        }
    }
}
