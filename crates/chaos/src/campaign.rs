//! The seeded campaign driver.
//!
//! A campaign is a deterministic fuzzing loop: from one `u64` seed it
//! derives every extension body, every corruption, every injection and
//! every scheduling choice, so a failing step can be replayed exactly by
//! re-running the seed. Steps are grouped into *episodes*, each on a
//! freshly booted kernel (bounding state growth and making out-of-memory
//! episodes possible); within an episode the kernel is long-lived so
//! faults, quarantines and injections interact.
//!
//! Episodes are also the campaign's unit of parallelism: episode *i*
//! draws from the positional stream `SeedRng::stream(seed, i)` and owns
//! a private kernel, so [`CampaignConfig::jobs`] can fan episodes across
//! a [`parex::Pool`] with the reports merged back in episode order.
//! The report is byte-identical for every `jobs` value — the
//! determinism suite asserts `jobs = 1` against `jobs = 8`.
//!
//! After every step the [`StateOracle`]
//! re-checks the structural §6 invariants; at intervals the behavioural
//! probes (fork/exec, syscall rejection, timer abort) run on scratch
//! kernels, and the durability probe checkpoints the episode's own
//! kernel, asserts the image round-trips, and asserts every corruption
//! class is rejected. Any violation — including a host panic, which the
//! driver catches — fails the audit.

use std::collections::BTreeMap;
use std::panic::{self, AssertUnwindSafe};

use minikernel::Kernel;
use palladium::backend::BackendKind;
use palladium::kernel_ext::{ExtSegmentId, KernelExtensions, KextError, SegmentConfig};
use palladium::supervisor::{RestartPolicy, SupervisedId, SupervisedState, Supervisor};
use palladium::user_ext::{DlopenOptions, ExtCallError, ExtensibleApp, PalError};
use seedrng::SeedRng;
use x86sim::mem::PAGE_SIZE;

use crate::corrupt;
use crate::gen;
use crate::inject;
use crate::oracle::{self, StateOracle};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; the entire campaign is a function of it.
    pub seed: u64,
    /// Total adversarial steps.
    pub steps: u32,
    /// Steps per episode (per freshly booted kernel).
    pub episode_len: u32,
    /// CPU-time limit per extension invocation (kept low so runaway
    /// steps stay cheap).
    pub cycle_limit: u64,
    /// Run the behavioural probes every this many steps (0 = never).
    pub probe_interval: u32,
    /// Enable the simulator's predecoded-instruction fast path in the
    /// episode kernels. Host-performance knob only: the event log is
    /// identical either way (asserted by the determinism tests); the
    /// throughput benchmark flips it to measure the speedup.
    pub predecode: bool,
    /// Worker threads to fan episodes across (1 = run them inline, in
    /// order, on the calling thread). Any value yields a byte-identical
    /// report: episodes draw from positional per-episode RNG streams and
    /// the per-episode results are merged in episode order.
    pub jobs: usize,
    /// Boot each (non-OOM) episode by forking one warmed template world
    /// (copy-on-write frames) instead of a cold `Kernel::boot` per
    /// episode. Host-performance knob only: a forked world is
    /// byte-identical to the cold boot it replaces, so the report is the
    /// same either way (asserted by the differential suite and the CI
    /// byte-compare). Out-of-memory episodes always cold-boot — their
    /// bounded pool is part of the scenario.
    pub fork_boot: bool,
    /// Isolation backend for the user-level extension loads. The
    /// adversarial corpus is backend-agnostic (objects the backend's
    /// loader refuses are structured `dlopen-*-err` outcomes, not
    /// violations), and every violation is tagged with the active
    /// backend so cross-backend audits attribute findings correctly.
    pub backend: BackendKind,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            seed: 1,
            steps: 1_000,
            episode_len: 25,
            cycle_limit: 20_000,
            probe_interval: 500,
            predecode: true,
            jobs: 1,
            fork_boot: true,
            backend: BackendKind::SegPaging,
        }
    }
}

/// One logged step. Same seed ⇒ identical event sequence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Global step number.
    pub step: u32,
    /// What the driver did (stable tag).
    pub action: String,
    /// What happened (stable tag derived from the structured result).
    pub outcome: String,
}

/// Campaign results.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Steps executed.
    pub steps_run: u32,
    /// The full deterministic event log.
    pub events: Vec<Event>,
    /// Outcome-tag histogram.
    pub outcomes: BTreeMap<String, u64>,
    /// Containment-invariant violations (must be empty for a passing
    /// audit). Host panics are recorded here too.
    pub violations: Vec<String>,
    /// Automatic segment quarantines observed.
    pub quarantines: u64,
    /// Kernel-extension aborts observed.
    pub kext_aborts: u64,
    /// User-extension aborted calls observed.
    pub uext_aborts: u64,
    /// Behavioural probe rounds completed.
    pub probes_run: u32,
    /// Steps that panicked in the host and were caught.
    pub host_panics: u32,
    /// Supervised segment restarts performed (replaces the old ad-hoc
    /// respawn; each one transactionally reclaims the dead segment).
    pub restarts: u64,
    /// Kernel pages reclaimed by those restarts.
    pub pages_reclaimed: u64,
    /// Total guest instructions retired across all episodes (the
    /// throughput benchmark's work metric).
    pub guest_insns: u64,
}

const CANARY: u32 = 0xC0FF_EE11;

/// The per-episode world: one kernel hosting both extension mechanisms.
///
/// `Clone` forks the whole world copy-on-write ([`Kernel`]'s clone):
/// non-OOM episodes clone one warmed template instead of cold-booting,
/// and resume byte-identically to the cold boot they replace.
#[derive(Clone)]
struct Episode {
    k: Kernel,
    app: ExtensibleApp,
    kx: KernelExtensions,
    /// Supervisor for the adversarial kernel segment: restarts are
    /// immediate (no backoff) so the campaign's step cadence is
    /// unchanged, but every replacement goes through the transactional
    /// reclaim path and the leak audit.
    sup: Supervisor,
    sup_id: SupervisedId,
    seg: ExtSegmentId,
    oracle: StateOracle,
    /// Load options for user-level extensions (carries the campaign's
    /// isolation backend).
    uopts: DlopenOptions,
    /// Prepared user extension entry points that loaded successfully.
    user_pool: Vec<u32>,
    /// The known-good extension (must keep returning 77).
    benign_fn: u32,
    /// Whether the current kernel segment has a registered `entry`.
    kext_loaded: bool,
    /// Sealed GOT page of the libc-importing probe extension, once
    /// loaded (lazily, since it costs pages).
    got_page: Option<u32>,
    module_n: u32,
}

impl Episode {
    /// Builds a fresh world. `pool_bytes` bounds physical memory for
    /// out-of-memory episodes (`None` = the full default pool).
    fn new(cfg: &CampaignConfig, pool_bytes: Option<u32>) -> Result<Episode, String> {
        let mut k = match pool_bytes {
            Some(b) => Kernel::boot_with_memory(b),
            None => Kernel::boot(),
        };
        k.extension_cycle_limit = cfg.cycle_limit;
        k.m.set_predecode(cfg.predecode);
        let mut app = ExtensibleApp::new(&mut k).map_err(|e| format!("app: {e}"))?;
        let mut kx = KernelExtensions::new(&mut k).map_err(|e| format!("kx: {e}"))?;
        let mut sup = Supervisor::new(RestartPolicy::immediate());
        let sup_id = sup
            .install(&mut k, &mut kx, 16, SegmentConfig::default(), Vec::new())
            .map_err(|e| format!("segment: {e}"))?;
        let seg = sup.segment(sup_id);
        let canary = k
            .alloc_kernel_pages(1)
            .map_err(|e| format!("canary: {e}"))?;
        k.m.host_write_u32(canary, CANARY);
        let oracle = StateOracle::new(&k, canary, CANARY);
        let uopts = DlopenOptions::new().backend(cfg.backend);
        let h = app
            .dlopen(&mut k, &gen::benign_object(77), &uopts)
            .map_err(|e| format!("benign: {e}"))?;
        let benign_fn = app
            .seg_dlsym(&mut k, h, "entry")
            .map_err(|e| format!("benign sym: {e}"))?;
        Ok(Episode {
            k,
            app,
            kx,
            sup,
            sup_id,
            seg,
            oracle,
            uopts,
            user_pool: Vec::new(),
            benign_fn,
            kext_loaded: false,
            got_page: None,
            module_n: 0,
        })
    }

    fn cr3(&self) -> u32 {
        self.k.task(self.app.tid).cr3
    }

    /// Retires the current kernel segment through the supervisor —
    /// transactional reclaim of its pages, descriptors and queue — and
    /// brings up the replacement. Errors if the restart itself fails
    /// (only possible under memory pressure).
    fn respawn_segment(&mut self) -> Result<(), KextError> {
        if !self.kx.segment(self.seg).dead {
            self.kx.destroy_segment(&mut self.k, self.seg);
        }
        self.sup
            .notify_death(&mut self.k, &mut self.kx, self.sup_id);
        self.kext_loaded = false;
        match self.sup.poll(&mut self.k, &mut self.kx, self.sup_id) {
            SupervisedState::Running => {
                self.seg = self.sup.segment(self.sup_id);
                Ok(())
            }
            SupervisedState::Backoff { .. } | SupervisedState::Tombstoned => {
                Err(KextError::SegmentDead)
            }
        }
    }

    /// Replaces a quarantined/dead kernel segment with a fresh one.
    fn ensure_segment(&mut self) -> Result<(), KextError> {
        let s = self.kx.segment(self.seg);
        if s.quarantined || s.dead {
            self.respawn_segment()?;
        }
        Ok(())
    }

    fn insmod_entry(&mut self, obj: &asm86::Object) -> Result<(), KextError> {
        self.ensure_segment()?;
        self.module_n += 1;
        let name = format!("m{}", self.module_n);
        match self
            .kx
            .insmod(&mut self.k, self.seg, &name, obj, &["entry"])
        {
            Ok(()) => {
                self.kext_loaded = true;
                Ok(())
            }
            Err(KextError::OutOfMemory) => {
                // The bump loader filled the segment: retire it through
                // the supervisor and retry once in the replacement.
                self.respawn_segment()?;
                let r = self
                    .kx
                    .insmod(&mut self.k, self.seg, &name, obj, &["entry"]);
                if r.is_ok() {
                    self.kext_loaded = true;
                }
                r
            }
            Err(e) => Err(e),
        }
    }
}

fn uext_outcome(r: &Result<u32, ExtCallError>) -> String {
    match r {
        Ok(_) => "uext-ok".into(),
        Err(ExtCallError::Fault { cause, .. }) => {
            format!("uext-fault:{}", cause.map(|c| c.tag()).unwrap_or("?"))
        }
        Err(ExtCallError::TimeLimit) => "uext-timelimit".into(),
        Err(ExtCallError::Killed(_)) => "uext-killed".into(),
    }
}

fn kext_outcome(r: &Result<u32, KextError>) -> String {
    match r {
        Ok(_) => "kext-ok".into(),
        Err(KextError::Aborted(f)) => format!("kext-fault:{}", f.cause.tag()),
        Err(KextError::TimeLimit) => "kext-timelimit".into(),
        Err(KextError::Quarantined { .. }) => "kext-quarantined".into(),
        Err(KextError::SegmentDead) => "kext-dead".into(),
        Err(KextError::NoSuchFunction(_)) => "kext-nofunc".into(),
        Err(KextError::OutOfMemory) => "kext-oom".into(),
        Err(KextError::Link(_)) => "kext-link-err".into(),
        Err(KextError::Verify(_)) => "kext-verify-err".into(),
    }
}

fn dl_outcome(e: &PalError) -> String {
    match e {
        PalError::Spawn(_) => "dlopen-oom".into(),
        PalError::Dl(_) | PalError::Link(_) => "dlopen-link-err".into(),
        PalError::NoSymbol(_) => "dlopen-nosym".into(),
        PalError::Kernel(..) => "dlopen-kernel-err".into(),
        PalError::Closed => "dlopen-closed".into(),
        PalError::Verify(_) => "dlopen-verify-err".into(),
        PalError::Sfi(_) => "dlopen-sfi-err".into(),
    }
}

/// One adversarial step. Returns the (action, outcome) tags.
fn step(ep: &mut Episode, r: &mut SeedRng) -> (String, String) {
    match r.gen_range(0, 13) {
        // --- adversarial SPL 3 extension: load and run -------------------
        0..=2 => {
            let obj = gen::user_ext_object(r);
            match ep.app.dlopen(&mut ep.k, &obj, &ep.uopts) {
                Ok(h) => match ep.app.seg_dlsym(&mut ep.k, h, "entry") {
                    Ok(f) => {
                        ep.user_pool.push(f);
                        let res = ep.app.call_extension(&mut ep.k, f, r.next_u32());
                        ("uext-new".into(), uext_outcome(&res))
                    }
                    Err(e) => ("uext-new".into(), dl_outcome(&e)),
                },
                Err(e) => ("uext-new".into(), dl_outcome(&e)),
            }
        }
        // --- adversarial SPL 1 kernel extension --------------------------
        3..=4 => {
            let obj = gen::kernel_ext_object(r);
            match ep.insmod_entry(&obj) {
                Ok(()) => {
                    let res = ep.kx.invoke(&mut ep.k, ep.seg, "entry", r.next_u32());
                    ("kext-new".into(), kext_outcome(&res))
                }
                Err(e) => ("kext-new".into(), kext_outcome(&Err(e))),
            }
        }
        // --- replay a previously loaded user extension -------------------
        5 => match ep.user_pool.as_slice() {
            [] => ("uext-replay".into(), "empty-pool".into()),
            pool => {
                let f = *r.choose(pool);
                let res = ep.app.call_extension(&mut ep.k, f, r.next_u32());
                ("uext-replay".into(), uext_outcome(&res))
            }
        },
        // --- corrupted loader input --------------------------------------
        6 => {
            let (kind, obj) = corrupt::corrupted_object(r);
            let action = format!("corrupt-{}", kind.tag());
            if r.gen_bool(0.5) {
                match ep.app.dlopen(&mut ep.k, &obj, &ep.uopts) {
                    Ok(h) => match ep.app.seg_dlsym(&mut ep.k, h, "entry") {
                        Ok(f) => {
                            let res = ep.app.call_extension(&mut ep.k, f, 0);
                            (action, uext_outcome(&res))
                        }
                        Err(e) => (action, dl_outcome(&e)),
                    },
                    Err(e) => (action, dl_outcome(&e)),
                }
            } else {
                match ep.insmod_entry(&obj) {
                    Ok(()) => {
                        let res = ep.kx.invoke(&mut ep.k, ep.seg, "entry", 0);
                        (action, kext_outcome(&res))
                    }
                    Err(e) => (action, kext_outcome(&Err(e))),
                }
            }
        }
        // --- GOT tamper ---------------------------------------------------
        7 => {
            if ep.got_page.is_none() {
                // Lazily load a libc importer so there is a sealed GOT.
                let got = ep.app.load_libc(&mut ep.k).ok().and_then(|_| {
                    let probe = asm86::Assembler::assemble("entry:\ncall strlen\nret\n").unwrap();
                    let h = ep.app.dlopen(&mut ep.k, &probe, &ep.uopts).ok()?;
                    ep.app.got_page(h).ok().flatten()
                });
                if let Some(g) = got {
                    ep.oracle.watch_got_page(g);
                    ep.got_page = Some(g);
                }
            }
            match ep.got_page {
                None => ("got-tamper".into(), "no-got".into()),
                Some(g) => {
                    let target = g + r.gen_range(0, PAGE_SIZE) / 4 * 4;
                    let obj = gen::store_to_object(target);
                    match ep.app.dlopen(&mut ep.k, &obj, &ep.uopts) {
                        Ok(h) => match ep.app.seg_dlsym(&mut ep.k, h, "entry") {
                            Ok(f) => {
                                let res = ep.app.call_extension(&mut ep.k, f, 0);
                                ("got-tamper".into(), uext_outcome(&res))
                            }
                            Err(e) => ("got-tamper".into(), dl_outcome(&e)),
                        },
                        Err(e) => ("got-tamper".into(), dl_outcome(&e)),
                    }
                }
            }
        }
        // --- descriptor injection: revoke, invoke, restore ----------------
        8 => {
            if !ep.kext_loaded {
                return ("inject-descriptor".into(), "no-kext".into());
            }
            let s = ep.kx.segment(ep.seg);
            let idx = if r.gen_bool(0.5) {
                s.code_sel.index()
            } else {
                s.data_sel.index()
            };
            let was = inject::revoke_descriptor(&mut ep.k, idx);
            let res = ep.kx.invoke(&mut ep.k, ep.seg, "entry", 1);
            if let Some(p) = was {
                inject::restore_descriptor(&mut ep.k, idx, p);
            }
            ("inject-descriptor".into(), kext_outcome(&res))
        }
        // --- PTE injection: unmap a segment page, invoke, restore ---------
        9 => {
            if !ep.kext_loaded {
                return ("inject-pte".into(), "no-kext".into());
            }
            let s = ep.kx.segment(ep.seg);
            let lin = s.base + r.gen_range(0, s.size / PAGE_SIZE) * PAGE_SIZE;
            let cr3 = ep.cr3();
            let revoked = inject::revoke_pte(&mut ep.k, cr3, lin);
            let res = ep.kx.invoke(&mut ep.k, ep.seg, "entry", 2);
            if revoked {
                inject::restore_pte(&mut ep.k, cr3, lin);
            }
            ("inject-pte".into(), kext_outcome(&res))
        }
        // --- TLB drop: pure performance event; behaviour must not change --
        10 => {
            let dropped = inject::drop_tlb_entries(&mut ep.k, r);
            let res = ep.app.call_extension(&mut ep.k, ep.benign_fn, 0);
            let tag = match res {
                Ok(77) => format!("tlb-drop-{}-ok", dropped.min(9)),
                other => format!("tlb-drop-bad:{}", uext_outcome(&other)),
            };
            ("inject-tlb".into(), tag)
        }
        // --- analysis adversaries and provable-loop modules ---------------
        // Aimed at the verifier's interval/loop pipeline rather than the
        // hardware: each hand-written adversary must be rejected at load
        // or contained at runtime, and the provable-loop modules keep the
        // proof-elided dispatch path under campaign fire.
        11 => {
            if ep.ensure_segment().is_err() {
                return ("kext-analysis".into(), "no-segment".into());
            }
            let (action, obj) = if r.gen_bool(0.5) {
                let mut advs = gen::analysis_adversaries(ep.kx.segment(ep.seg).size);
                let i = r.gen_range(0, advs.len() as u32) as usize;
                let (name, obj) = advs.swap_remove(i);
                (format!("kext-adversary:{name}"), obj)
            } else {
                ("kext-loopy".to_string(), gen::loopy_kernel_ext_object(r))
            };
            match ep.insmod_entry(&obj) {
                Ok(()) => {
                    let res = ep.kx.invoke(&mut ep.k, ep.seg, "entry", r.next_u32());
                    (action, kext_outcome(&res))
                }
                Err(e) => (action, kext_outcome(&Err(e))),
            }
        }
        // --- async queue under fire ---------------------------------------
        _ => {
            if !ep.kext_loaded {
                return ("kext-async".into(), "no-kext".into());
            }
            let n = 2 + r.gen_range(0, 3);
            for i in 0..n {
                ep.kx.queue_async(ep.seg, "entry", i);
            }
            let results = ep.kx.run_pending(&mut ep.k, ep.seg);
            let tags: Vec<String> = results.iter().map(kext_outcome).collect();
            ("kext-async".into(), tags.join(","))
        }
    }
}

/// One episode's slice of the report, merged in episode order by
/// [`run`].
#[derive(Debug, Default)]
struct EpisodeOutput {
    events: Vec<Event>,
    outcomes: BTreeMap<String, u64>,
    violations: Vec<String>,
    steps_run: u32,
    probes_run: u32,
    host_panics: u32,
    quarantines: u64,
    kext_aborts: u64,
    uext_aborts: u64,
    restarts: u64,
    pages_reclaimed: u64,
    guest_insns: u64,
}

/// Runs episode `episode_idx` over global steps `start..start + len`.
///
/// Everything the episode does is a function of `(cfg, episode_idx)`
/// alone: its RNG is the positional stream `stream(cfg.seed, idx)`, its
/// kernel is freshly booted — or forked from `template`, a world built
/// by the very same `Episode::new(cfg, None)` and therefore
/// byte-identical to that cold boot — and it never observes another
/// episode. That is what lets [`run`] execute episodes on any worker in
/// any order and still merge a byte-identical report.
fn run_episode(
    cfg: &CampaignConfig,
    template: Option<&Episode>,
    episode_idx: u32,
    start: u32,
    len: u32,
) -> EpisodeOutput {
    let mut out = EpisodeOutput::default();
    let mut rng = SeedRng::stream(cfg.seed, u64::from(episode_idx));

    // Every sixth episode runs under memory pressure: a bounded pool,
    // further squeezed below so allocation failures surface mid-campaign
    // ("OOM at touch"). OOM episodes never fork — the bounded pool is
    // part of the scenario.
    let oom = episode_idx % 6 == 5;
    let pool = if oom { Some(4 * 1024 * 1024) } else { None };
    let built = match (oom, template) {
        (false, Some(t)) => Ok(t.clone()),
        _ => Episode::new(cfg, pool),
    };
    let mut episode = match built {
        Ok(mut ep) => {
            if oom {
                let keep = rng.gen_range(0, 48);
                inject::exhaust_frames(&mut ep.k, keep);
            }
            Some(ep)
        }
        Err(e) => {
            // Setup can only fail under memory pressure; that is itself a
            // structured outcome, not a violation.
            out.events.push(Event {
                step: start,
                action: "episode-setup".into(),
                outcome: format!("failed:{e}"),
            });
            None
        }
    };

    for stepno in start..start + len {
        let Some(ep) = episode.as_mut() else {
            *out.outcomes.entry("skipped-no-episode".into()).or_insert(0) += 1;
            out.steps_run += 1;
            continue;
        };

        let caught = panic::catch_unwind(AssertUnwindSafe(|| {
            let (action, outcome) = step(ep, &mut rng);
            let mut violations = ep.oracle.check(&ep.k, ep.cr3());
            // Recovery invariant: supervised restarts must leave the
            // resource ledgers balanced after every step.
            violations.extend(oracle::check_recovery(&ep.k, &ep.kx));
            (action, outcome, violations)
        }));
        match caught {
            Ok((action, outcome, violations)) => {
                *out.outcomes.entry(outcome.clone()).or_insert(0) += 1;
                out.events.push(Event {
                    step: stepno,
                    action,
                    outcome,
                });
                for v in violations {
                    out.violations
                        .push(format!("step {stepno} [{}]: {v}", cfg.backend));
                }
            }
            Err(_) => {
                out.host_panics += 1;
                out.violations.push(format!(
                    "step {stepno} [{}]: host panic caught",
                    cfg.backend
                ));
                out.events.push(Event {
                    step: stepno,
                    action: "step".into(),
                    outcome: "host-panic".into(),
                });
                // The half-mutated world is unusable; the rest of the
                // episode's steps are skipped.
                episode = None;
            }
        }
        out.steps_run += 1;

        // Behavioural probes on scratch kernels. They draw nothing from
        // the episode stream, so their cadence is on *global* step
        // numbers, exactly as in a serial run.
        if cfg.probe_interval != 0 && (stepno + 1) % cfg.probe_interval == 0 {
            for probe in [
                oracle::probe_fork_exec as fn() -> Result<(), oracle::Violation>,
                oracle::probe_syscall_rejection,
            ] {
                if let Err(v) = probe() {
                    out.violations
                        .push(format!("step {stepno} [{}]: {v}", cfg.backend));
                }
            }
            if let Err(v) = oracle::probe_timer_abort(cfg.cycle_limit) {
                out.violations
                    .push(format!("step {stepno} [{}]: {v}", cfg.backend));
            }
            // Durability probe on the episode's own world: its kernel
            // image must restore cleanly, and every checkpoint-corruption
            // class must be rejected with a typed error. The probe rng is
            // a function of (seed, step) alone, preserving the
            // jobs-invariance of the event log.
            if let Some(ep) = episode.as_ref() {
                let img = ep.k.save_image();
                if Kernel::restore_image(&img).is_err() {
                    out.violations.push(format!(
                        "step {stepno} [{}]: [checkpoint-restores] kernel image failed to round-trip",
                        cfg.backend
                    ));
                }
                let mut cr = SeedRng::new(cfg.seed ^ 0xC4EC_4001 ^ u64::from(stepno));
                for v in oracle::probe_checkpoint_rejection(
                    &img,
                    x86sim::image::kind::KERNEL,
                    1,
                    &mut cr,
                ) {
                    out.violations
                        .push(format!("step {stepno} [{}]: {v}", cfg.backend));
                }
            }
            out.probes_run += 1;
        }
    }

    // Roll up counters from the episode's world. A panicking step drops
    // the half-mutated world, counters included.
    if let Some(ep) = episode.as_ref() {
        out.quarantines += ep.kx.quarantines;
        out.kext_aborts += ep.kx.aborts;
        out.uext_aborts += ep.app.aborted_calls;
        out.guest_insns += ep.k.m.insns();
        out.restarts += ep.sup.restarts;
        out.pages_reclaimed += ep.sup.pages_reclaimed;
    }
    out
}

/// Runs a campaign to completion, fanning episodes across
/// [`CampaignConfig::jobs`] workers and merging the per-episode results
/// in episode order.
pub fn run(cfg: &CampaignConfig) -> CampaignReport {
    let episode_len = cfg.episode_len.max(1);
    let episodes: Vec<(u32, u32, u32)> = (0..cfg.steps.div_ceil(episode_len))
        .map(|i| {
            let start = i * episode_len;
            (i, start, episode_len.min(cfg.steps - start))
        })
        .collect();

    // One warmed template world, forked per non-OOM episode. Building
    // it goes through the very same `Episode::new(cfg, None)` a cold
    // boot would, so forks are byte-identical to cold boots; if the
    // build fails (only possible under memory pressure) every episode
    // falls back to cold-booting itself.
    let template = if cfg.fork_boot {
        Episode::new(cfg, None).ok()
    } else {
        None
    };

    // Campaign steps run under catch_unwind: a host panic is the worst
    // possible audit failure and must be recorded, not crash the driver.
    // The hook is process-global, so it is installed once around the
    // whole fan-out rather than per worker.
    let prev_hook = panic::take_hook();
    panic::set_hook(Box::new(|_| {}));
    let outputs = parex::Pool::new(cfg.jobs).run_ordered(episodes, |_, (idx, start, len)| {
        run_episode(cfg, template.as_ref(), idx, start, len)
    });
    panic::set_hook(prev_hook);

    let mut report = CampaignReport::default();
    for o in outputs {
        report.steps_run += o.steps_run;
        report.events.extend(o.events);
        for (tag, n) in o.outcomes {
            *report.outcomes.entry(tag).or_insert(0) += n;
        }
        report.violations.extend(o.violations);
        report.probes_run += o.probes_run;
        report.host_panics += o.host_panics;
        report.quarantines += o.quarantines;
        report.kext_aborts += o.kext_aborts;
        report.uext_aborts += o.uext_aborts;
        report.restarts += o.restarts;
        report.pages_reclaimed += o.pages_reclaimed;
        report.guest_insns += o.guest_insns;
    }
    report
}

/// A compact human-readable summary (used by the example binary).
pub fn summarize(report: &CampaignReport) -> String {
    use core::fmt::Write;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "steps: {}  events: {}  probes: {}",
        report.steps_run,
        report.events.len(),
        report.probes_run
    );
    let _ = writeln!(
        s,
        "quarantines: {}  kext aborts: {}  uext aborts: {}  host panics: {}",
        report.quarantines, report.kext_aborts, report.uext_aborts, report.host_panics
    );
    let _ = writeln!(
        s,
        "supervised restarts: {}  pages reclaimed: {}",
        report.restarts, report.pages_reclaimed
    );
    let _ = writeln!(s, "outcomes:");
    for (tag, n) in &report.outcomes {
        let _ = writeln!(s, "  {tag:<28} {n}");
    }
    if report.violations.is_empty() {
        let _ = writeln!(s, "containment: OK (0 violations)");
    } else {
        let _ = writeln!(s, "containment: {} VIOLATIONS", report.violations.len());
        for v in &report.violations {
            let _ = writeln!(s, "  {v}");
        }
    }
    s
}
