//! Differential soundness fuzzer for proof-directed check elision.
//!
//! The simulator's proof tokens hoist per-instruction segment-limit and
//! PPL checks to one guard at block entry — a *host-side* optimization
//! licensed by the verifier's block proofs. Its contract is absolute:
//! simulated cycles, statistics, faults and memory are byte-identical
//! with elision on or off. This module attacks that contract head-on.
//!
//! Every seeded module — bounded-loop extensions the verifier accepts
//! with proofs, hostile extensions it mostly rejects, and the
//! hand-written [`gen::analysis_adversaries`] — is pushed through the
//! full `insmod` + `invoke` pipeline in **two cloned worlds**: twin A
//! runs with proof elision on (the default), twin B with
//! [`x86sim::Machine::set_proof_elision`] off. Any observable difference
//! (admission verdict, invocation result, cycle or instruction count,
//! or — on a subsample — the entire serialized world image) is an
//! unsoundness finding carried with enough artifact (seed, index, linked
//! image) to replay it. A limit fault raised by a pure DS access inside
//! a block whose proof claims bounded DS accesses is likewise a finding,
//! even when both twins agree: the proof itself was wrong.
//!
//! A campaign is a pure function of [`FuzzConfig`] — the same master
//! seed replays byte-identically, which is what lets CI pin a corpus.

use std::collections::BTreeMap;

use asm86::isa::{Insn, Mem, SegReg};
use asm86::Object;
use minikernel::Kernel;
use palladium::kernel_ext::{ExtSegmentId, KernelExtensions, KextError};
use seedrng::SeedRng;
use verifier::ProofMap;
use x86sim::fault::FaultCause;
use x86sim::mem::PAGE_SIZE;

use crate::gen;

/// Configuration of one differential fuzz campaign.
#[derive(Debug, Clone)]
pub struct FuzzConfig {
    /// Master seed; module `i` draws from `SeedRng::stream(master, i)`.
    pub master_seed: u64,
    /// Seeded modules to generate (the hand-written analysis
    /// adversaries always run in addition, before the seeded corpus).
    pub modules: u32,
    /// Compare full `save_image` bytes every N modules (0 disables the
    /// subsample; verdict/cycle/insn comparison still runs for all).
    pub image_compare_every: u32,
    /// Extension segment size in pages for the fuzz world.
    pub seg_pages: u32,
}

impl Default for FuzzConfig {
    fn default() -> FuzzConfig {
        FuzzConfig {
            master_seed: 0x50F7_F02E,
            modules: 256,
            image_compare_every: 16,
            seg_pages: 16,
        }
    }
}

/// How a module demonstrated unsoundness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// The elided and unelided twins disagreed on any observable:
    /// admission verdict, invocation result, cycles or instructions.
    Divergence,
    /// Both twins agreed, but a limit fault was raised by a pure DS
    /// access inside a block whose proof claims bounded DS accesses.
    FaultInProvenBlock,
    /// The twins' serialized world images differ byte-for-byte.
    ImageMismatch,
}

impl FindingKind {
    /// Stable tag for logs and artifact file names.
    pub fn tag(&self) -> &'static str {
        match self {
            FindingKind::Divergence => "divergence",
            FindingKind::FaultInProvenBlock => "fault-in-proven-block",
            FindingKind::ImageMismatch => "image-mismatch",
        }
    }
}

/// One unsoundness finding, with enough artifact to replay it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Index of the module in the campaign (adversaries first, then the
    /// seeded corpus in stream order).
    pub index: u32,
    /// The campaign's master seed (replay key).
    pub master_seed: u64,
    /// Generator tag: an adversary name or `seeded:<stream>`.
    pub source: String,
    /// What diverged.
    pub kind: FindingKind,
    /// Human-readable diff of the observables.
    pub detail: String,
    /// The linked image as admitted (empty if linking failed).
    pub image: Vec<u8>,
}

/// Aggregate result of a fuzz campaign.
#[derive(Debug, Clone, Default)]
pub struct FuzzReport {
    /// Modules pushed through the pipeline (adversaries + seeded).
    pub modules: u32,
    /// Modules the verifier admitted.
    pub accepted: u32,
    /// Modules rejected at link or verification.
    pub rejected: u32,
    /// Invocations that completed normally.
    pub completed: u32,
    /// Invocations that faulted or overran the time limit.
    pub faulted: u32,
    /// Proof-token block activations in the elided twins (the fuzzer is
    /// vacuous if this stays 0 — nothing was actually elided).
    pub blocks_served: u64,
    /// Per-access DS checks elided in the elided twins.
    pub ds_checks_elided: u64,
    /// Unsoundness findings. Must be empty.
    pub findings: Vec<Finding>,
}

impl FuzzReport {
    /// True when no module produced an unsoundness finding.
    pub fn is_sound(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Everything observable about one twin's run of one module.
#[derive(Debug, Clone, PartialEq)]
struct TwinOutcome {
    insmod: Result<(), KextError>,
    invoke: Option<Result<u32, KextError>>,
    cycles: u64,
    insns: u64,
}

struct Twin {
    out: TwinOutcome,
    /// `(load offset, proofs)` of the admitted module, captured before
    /// invocation (a quarantine would drop them afterwards).
    proofs: Option<(u32, ProofMap)>,
    image: Option<Vec<u8>>,
    served: u64,
    ds_elided: u64,
}

fn run_twin(
    template: &(Kernel, KernelExtensions, ExtSegmentId),
    obj: &Object,
    arg: u32,
    elide: bool,
    want_image: bool,
) -> Twin {
    let (mut k, mut kx, id) = template.clone();
    k.m.set_proof_elision(elide);
    let insmod = kx.insmod(&mut k, id, "m", obj, &["entry"]);
    let (invoke, proofs) = if insmod.is_ok() {
        let proofs = kx.segment(id).proofs.last().cloned();
        (Some(kx.invoke(&mut k, id, "entry", arg)), proofs)
    } else {
        (None, None)
    };
    let stats = k.m.proof_stats();
    Twin {
        out: TwinOutcome {
            insmod,
            invoke,
            cycles: k.m.cycles(),
            insns: k.m.insns(),
        },
        proofs,
        image: want_image.then(|| k.save_image()),
        served: stats.served,
        ds_elided: stats.ds_elided,
    }
}

/// True when the instruction is a pure effective-DS data access (no SS
/// side effects), so a limit fault at its address is attributable to the
/// DS operand the block proof claims to bound.
fn is_pure_ds_access(insn: &Insn) -> bool {
    let mem: Option<&Mem> = match insn {
        Insn::Load(_, m)
        | Insn::LoadB(_, m)
        | Insn::LoadW(_, m)
        | Insn::Store(m, _)
        | Insn::StoreB(m, _)
        | Insn::StoreW(m, _)
        | Insn::AluM(_, _, m)
        | Insn::CmpM(m, _) => Some(m),
        _ => None,
    };
    mem.is_some_and(|m| m.effective_seg() == SegReg::Ds)
}

/// Classifies a fault from the elided twin: a limit violation raised by
/// a pure DS access inside a DS-bounded proven block means the proof —
/// not the module — was wrong.
fn fault_in_proven_block(twin: &Twin, obj: &Object) -> Option<String> {
    let Some(Err(KextError::Aborted(f))) = &twin.out.invoke else {
        return None;
    };
    if !matches!(f.cause, FaultCause::LimitViolation { .. }) {
        return None;
    }
    let (at, proofs) = twin.proofs.as_ref()?;
    let off = f.eip.wrapping_sub(*at);
    let block = proofs.block_containing(off)?;
    let (lo, hi) = block.ds_bounds?;
    // Attribute the fault to the DS operand only when the faulting
    // instruction has no stack side effects: re-link the module (link
    // address changes immediates, never lengths) and decode at the
    // faulting offset.
    let image = obj.link(*at, &BTreeMap::new()).ok()?;
    let (insn, _) = asm86::decode(image.get(off as usize..)?).ok()?;
    if !is_pure_ds_access(&insn) {
        return None;
    }
    Some(format!(
        "limit fault at eip {:#x} (block {:#x}+{}) despite DS proof [{lo:#x}, {hi:#x}]: {f:?}",
        f.eip, block.start, block.len
    ))
}

fn template_world(seg_pages: u32) -> (Kernel, KernelExtensions, ExtSegmentId) {
    let mut k = Kernel::boot();
    let mut kx = KernelExtensions::new(&mut k).expect("fuzz world boot");
    let mut config = kx.default_config();
    config.verify = true;
    let id = kx
        .create_segment_with(&mut k, seg_pages, config)
        .expect("fuzz segment");
    (k, kx, id)
}

/// One campaign case: which module run this is and how to exercise it.
struct Case<'a> {
    /// Where the module came from (adversary name or seeded index).
    source: &'a str,
    /// Campaign-wide case number, recorded in findings.
    index: u32,
    /// Invocation argument.
    arg: u32,
    /// Also compare the twins' serialized world images.
    compare_image: bool,
}

/// Runs one module through both twins and appends any finding.
fn fuzz_one(
    template: &(Kernel, KernelExtensions, ExtSegmentId),
    obj: &Object,
    case: &Case<'_>,
    cfg: &FuzzConfig,
    report: &mut FuzzReport,
) {
    let Case {
        source,
        index,
        arg,
        compare_image,
    } = *case;
    let a = run_twin(template, obj, arg, true, compare_image);
    let b = run_twin(template, obj, arg, false, compare_image);

    report.modules += 1;
    match &a.out.insmod {
        Ok(()) => report.accepted += 1,
        Err(_) => report.rejected += 1,
    }
    match &a.out.invoke {
        Some(Ok(_)) => report.completed += 1,
        Some(Err(_)) => report.faulted += 1,
        None => {}
    }
    report.blocks_served += a.served;
    report.ds_checks_elided += a.ds_elided;

    let load_at = a.proofs.as_ref().map_or(0, |(at, _)| *at);
    let linked_image = || obj.link(load_at, &BTreeMap::new()).unwrap_or_default();
    let mut push = |kind: FindingKind, detail: String| {
        report.findings.push(Finding {
            index,
            master_seed: cfg.master_seed,
            source: source.to_string(),
            kind,
            detail,
            image: linked_image(),
        });
    };

    if a.out != b.out {
        push(
            FindingKind::Divergence,
            format!("elided {:?} != unelided {:?}", a.out, b.out),
        );
        return;
    }
    if let Some(detail) = fault_in_proven_block(&a, obj) {
        push(FindingKind::FaultInProvenBlock, detail);
        return;
    }
    if compare_image {
        if let (Some(ia), Some(ib)) = (&a.image, &b.image) {
            if ia != ib {
                let at = ia
                    .iter()
                    .zip(ib.iter())
                    .position(|(x, y)| x != y)
                    .unwrap_or(ia.len().min(ib.len()));
                push(
                    FindingKind::ImageMismatch,
                    format!(
                        "world images differ (len {} vs {}, first diff at byte {at})",
                        ia.len(),
                        ib.len()
                    ),
                );
            }
        }
    }
}

/// Runs a full differential campaign: the hand-written analysis
/// adversaries first, then `cfg.modules` seeded modules — roughly half
/// bounded-loop extensions (exercising the elided path), half the
/// hostile admission mix.
pub fn run(cfg: &FuzzConfig) -> FuzzReport {
    let template = template_world(cfg.seg_pages);
    let seg_size = cfg.seg_pages * PAGE_SIZE;
    let mut report = FuzzReport::default();

    let mut index = 0u32;
    for (name, obj) in gen::analysis_adversaries(seg_size) {
        let case = Case {
            source: name,
            index,
            arg: 7,
            compare_image: true,
        };
        fuzz_one(&template, &obj, &case, cfg, &mut report);
        index += 1;
    }

    for i in 0..cfg.modules {
        let mut r = SeedRng::stream(cfg.master_seed, u64::from(i));
        let obj = if r.gen_bool(0.5) {
            gen::loopy_kernel_ext_object(&mut r)
        } else {
            gen::kernel_ext_object(&mut r)
        };
        let case = Case {
            source: &format!("seeded:{i}"),
            index,
            arg: r.next_u32(),
            compare_image: cfg.image_compare_every != 0 && i % cfg.image_compare_every == 0,
        };
        fuzz_one(&template, &obj, &case, cfg, &mut report);
        index += 1;
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{kernel_policy, verify_object, VerifyOutcome};

    #[test]
    fn analysis_adversaries_are_rejected_or_contained_identically() {
        // The verifier is one-sided: an adversary whose escape is not
        // *provable* (e.g. only the last loop iteration strays) may be
        // admitted — but then it must carry no DS proof for the straying
        // block, fault identically under both twins, and never complete.
        let cfg = FuzzConfig {
            modules: 0,
            ..FuzzConfig::default()
        };
        let report = run(&cfg); // adversaries only
        assert_eq!(report.modules, 3);
        assert!(
            report.is_sound(),
            "unsoundness findings: {:#?}",
            report.findings
        );
        assert_eq!(
            report.completed, 0,
            "an analysis adversary ran to completion: {report:?}"
        );
    }

    #[test]
    fn straddling_adversaries_carry_no_ds_proof_when_admitted() {
        let policy = kernel_policy(0x3000, 0x1_0000);
        for (name, obj) in gen::analysis_adversaries(0x1_0000) {
            if let VerifyOutcome::Accepted(att) = verify_object(&obj, 0x3000, &policy) {
                assert_eq!(
                    att.proofs.bounded_blocks(),
                    0,
                    "adversary `{name}` was admitted *with* a DS bounds proof"
                );
            }
        }
    }

    #[test]
    fn loopy_modules_are_accepted_with_bounded_proofs() {
        let policy = kernel_policy(0x3000, 0x1_0000);
        let mut r = SeedRng::new(0x100B_5EED);
        let mut bounded = 0u32;
        for _ in 0..20 {
            let obj = gen::loopy_kernel_ext_object(&mut r);
            match verify_object(&obj, 0x3000, &policy) {
                VerifyOutcome::Accepted(att) => bounded += att.proofs.bounded_blocks(),
                out => panic!("loopy module must be admitted, got {}", out.tag()),
            }
        }
        assert!(bounded >= 20, "every loop body carries a DS proof");
    }

    #[test]
    fn pinned_campaign_is_sound_and_exercises_elision() {
        let cfg = FuzzConfig {
            modules: 48,
            ..FuzzConfig::default()
        };
        let report = run(&cfg);
        assert!(
            report.is_sound(),
            "unsoundness findings: {:#?}",
            report.findings
        );
        assert!(report.accepted > 0 && report.rejected > 0, "{report:?}");
        assert!(
            report.blocks_served > 0 && report.ds_checks_elided > 0,
            "campaign never exercised the elided path: {report:?}"
        );
    }

    #[test]
    fn campaign_is_deterministic() {
        let cfg = FuzzConfig {
            modules: 12,
            ..FuzzConfig::default()
        };
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.modules, b.modules);
        assert_eq!(a.accepted, b.accepted);
        assert_eq!(a.blocks_served, b.blocks_served);
        assert_eq!(a.ds_checks_elided, b.ds_checks_elided);
        assert_eq!(a.findings.len(), b.findings.len());
    }
}
