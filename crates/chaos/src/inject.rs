//! Machine-state fault injection.
//!
//! Each injection mutates simulated hardware state *in the revoking
//! direction only* — clearing present bits, dropping TLB entries,
//! exhausting physical frames. Revocation can only make accesses fault
//! that would otherwise succeed, so every containment invariant remains
//! assertable while the injection is live; an injection that *granted*
//! access (raising a limit, setting U/S) would instead invalidate the
//! oracle. Injections are undoable so a campaign can interleave them
//! with normal traffic.

use minikernel::Kernel;
use seedrng::SeedRng;
use x86sim::paging::{get_pte, pte, update_pte_flags};

/// Marks GDT descriptor `index` not-present, returning the previous
/// state for [`restore_descriptor`]. `None` if the slot is empty/null.
pub fn revoke_descriptor(k: &mut Kernel, index: u16) -> Option<bool> {
    k.m.set_descriptor_present(index, false)
}

/// Restores a descriptor's present bit after [`revoke_descriptor`].
pub fn restore_descriptor(k: &mut Kernel, index: u16, present: bool) {
    k.m.set_descriptor_present(index, present);
}

/// Clears the present bit of the PTE mapping `linear` under `cr3` and
/// flushes the stale translation, so the next touch takes a not-present
/// #PF. Returns true if there was a mapping to revoke.
pub fn revoke_pte(k: &mut Kernel, cr3: u32, linear: u32) -> bool {
    if get_pte(&k.m.mem, cr3, linear).is_none() {
        return false;
    }
    let ok = update_pte_flags(&mut k.m.mem, cr3, linear, 0, pte::P);
    k.m.mmu.flush_page(linear);
    ok
}

/// Restores the present bit after [`revoke_pte`].
pub fn restore_pte(k: &mut Kernel, cr3: u32, linear: u32) -> bool {
    let ok = update_pte_flags(&mut k.m.mem, cr3, linear, pte::P, 0);
    k.m.mmu.flush_page(linear);
    ok
}

/// Drops a random subset of TLB entries (and occasionally the whole
/// TLB). Translations must be re-derived from the page tables, so
/// behaviour may not change — only cost. Returns how many were dropped.
pub fn drop_tlb_entries(k: &mut Kernel, r: &mut SeedRng) -> usize {
    if r.gen_bool(0.25) {
        let n = k.m.mmu.tlb_entries();
        k.m.mmu.flush();
        return n;
    }
    let vpns = k.m.mmu.tlb_vpns();
    let mut dropped = 0;
    for vpn in vpns {
        if r.gen_bool(0.5) {
            k.m.mmu.flush_page(vpn << 12);
            dropped += 1;
        }
    }
    dropped
}

/// Overwrites one byte of already-loaded extension code at `linear` (in
/// the *current* address space), returning the original byte for
/// restoration, or `None` when the page is unmapped.
///
/// This is still a revoking-direction injection in the containment
/// sense: corrupting an extension's own text can only change what the
/// extension computes or make it fault (e.g. `0xFF` is an invalid
/// opcode → #UD) — it grants no access the protection checks would deny.
/// It also exercises the predecode-cache invariant: the host write goes
/// through `PhysMem` and bumps the frame's store generation, so a stale
/// cached decode of the corrupted instruction can never be served.
pub fn corrupt_code_byte(k: &mut Kernel, linear: u32, byte: u8) -> Option<u8> {
    let prev = k.m.host_read(linear, 1)[0];
    if !k.m.host_write(linear, &[byte]) {
        return None;
    }
    Some(prev)
}

/// Exhausts the physical frame pool, keeping at most `keep` frames
/// available — subsequent `mmap`/`dlopen`/`insmod` traffic must surface
/// structured out-of-memory errors, not panics. Returns the number of
/// frames swallowed (they are not returned; use a scratch kernel or a
/// short-lived episode).
pub fn exhaust_frames(k: &mut Kernel, keep: u32) -> u32 {
    let mut taken = 0;
    while k.frames.remaining() > keep {
        if k.frames.alloc().is_none() {
            break;
        }
        taken += 1;
    }
    taken
}
