//! Corruption of loader inputs.
//!
//! The dynamic loaders (`seg_dlopen`, `insmod`) are attack surface: a
//! hostile or damaged object file must produce a structured link error
//! or a contained runtime fault — never a host panic and never code that
//! escapes its domain. These generators produce the damaged inputs:
//! truncated images, garbled instruction streams, and relocations whose
//! resolved addresses overflow the extension's region.
//!
//! Checkpoint images are attack surface too: a restore path that trusts
//! bytes from disk would turn a torn write or a flipped bit into silent
//! state corruption. [`corrupted_image`] damages a valid world image in
//! each of the ways real storage fails — bit rot, truncation, torn
//! writes, block transposition, stale format versions — so the oracle
//! can assert every one is rejected with a typed error.

use asm86::{CodeBuilder, Object, Reloc, RelocKind};
use seedrng::SeedRng;

use crate::gen;

/// How an object was damaged (stable tags for the event log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The image is a prefix of a valid extension, cut mid-instruction.
    Truncated,
    /// Random bytes overwrote part of a valid extension image.
    Garbled,
    /// A relocation aims far outside the extension's address range.
    RelocOverflow,
    /// The "code" never was code: pure random bytes.
    Garbage,
}

impl Corruption {
    /// Stable tag for deterministic event logs.
    pub fn tag(self) -> &'static str {
        match self {
            Corruption::Truncated => "truncated",
            Corruption::Garbled => "garbled",
            Corruption::RelocOverflow => "reloc-overflow",
            Corruption::Garbage => "garbage",
        }
    }
}

/// Wraps raw bytes as a loadable object exporting `entry` — how a
/// damaged image re-enters the loader.
fn bytes_object(data: &[u8]) -> Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    b.bytes(data);
    b.finish().unwrap()
}

/// A randomly corrupted extension object plus how it was damaged. The
/// loader may reject it (link error) or load it; if loaded, running it
/// must stay contained like any other extension.
pub fn corrupted_object(r: &mut SeedRng) -> (Corruption, Object) {
    let kind = match r.gen_range(0, 4) {
        0 => Corruption::Truncated,
        1 => Corruption::Garbled,
        2 => Corruption::RelocOverflow,
        _ => Corruption::Garbage,
    };
    let obj = match kind {
        Corruption::Truncated => {
            let whole = gen::user_ext_object(r);
            let image = whole.link(0, &Default::default()).unwrap_or_default();
            let n = if image.is_empty() {
                0
            } else {
                r.gen_range(0, image.len() as u32) as usize
            };
            bytes_object(&image[..n])
        }
        Corruption::Garbled => {
            let whole = gen::user_ext_object(r);
            let mut image = whole.link(0, &Default::default()).unwrap_or_default();
            if image.is_empty() {
                image = vec![0x90; 8];
            }
            for _ in 0..1 + r.gen_range(0, 6) {
                let at = r.gen_range(0, image.len() as u32) as usize;
                image[at] = r.next_u32() as u8;
            }
            bytes_object(&image)
        }
        Corruption::RelocOverflow => {
            // An absolute-word relocation patched with an offset far past
            // the end of the code: `entry` jumps through a pointer whose
            // resolved value lands way outside the extension region.
            let mut b = CodeBuilder::new();
            b.label("entry").unwrap();
            b.jmpm_label("slot", 0);
            b.align(4);
            b.label("slot").unwrap();
            b.dword_label("entry", (0x1000_0000 + r.gen_range(0, 0x1000_0000)) as i32);
            b.finish().unwrap()
        }
        Corruption::Garbage => {
            let mut data = vec![0u8; 4 + r.gen_range(0, 60) as usize];
            r.fill_bytes(&mut data);
            bytes_object(&data)
        }
    };
    (kind, obj)
}

/// An object carrying a relocation whose *site* (not just target) is out
/// of range — the link step itself must reject it with a structured
/// error rather than writing out of bounds.
pub fn bad_reloc_site_object() -> Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    b.bytes(&[0x90, 0x90, 0x90, 0x90]);
    b.raw_reloc(Reloc {
        offset: 0xFFFF_FFF0,
        sym: "entry".to_string(),
        addend: 0,
        kind: RelocKind::Abs32,
    });
    b.finish().unwrap()
}

/// How a checkpoint image was damaged (stable tags for the event log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ImageCorruption {
    /// One random bit flipped anywhere in the image (bit rot).
    BitFlip,
    /// The image cut short at a random point (partial write / lost tail).
    Truncate,
    /// A torn write: a 64-byte block overwritten with stale bytes from
    /// elsewhere in the image.
    TornWrite,
    /// Two interior 32-byte blocks transposed (misordered scatter write).
    SectionSwap,
    /// The format-version word rewritten to an unsupported value, with
    /// the trailing whole-image CRC recomputed so the *version* check —
    /// not the integrity check — must catch it.
    VersionSkew,
}

impl ImageCorruption {
    /// Stable tag for deterministic event logs.
    pub fn tag(self) -> &'static str {
        match self {
            ImageCorruption::BitFlip => "bit-flip",
            ImageCorruption::Truncate => "truncate",
            ImageCorruption::TornWrite => "torn-write",
            ImageCorruption::SectionSwap => "section-swap",
            ImageCorruption::VersionSkew => "version-skew",
        }
    }

    /// All corruption classes, for exhaustive rejection matrices.
    pub const ALL: [ImageCorruption; 5] = [
        ImageCorruption::BitFlip,
        ImageCorruption::Truncate,
        ImageCorruption::TornWrite,
        ImageCorruption::SectionSwap,
        ImageCorruption::VersionSkew,
    ];
}

/// Applies `kind` to a copy of a valid checkpoint image. The result is
/// guaranteed to differ from the input (the damage never no-ops), so a
/// restore that accepts it has provably skipped an integrity check.
pub fn corrupt_image(image: &[u8], kind: ImageCorruption, r: &mut SeedRng) -> Vec<u8> {
    let mut bad = image.to_vec();
    match kind {
        ImageCorruption::BitFlip => {
            let bit = r.gen_range(0, (bad.len() * 8) as u32) as usize;
            bad[bit / 8] ^= 1 << (bit % 8);
        }
        ImageCorruption::Truncate => {
            let keep = r.gen_range(0, bad.len() as u32) as usize;
            bad.truncate(keep);
        }
        ImageCorruption::TornWrite => {
            // Overwrite one block with a copy of another; retry the draw
            // until the blocks actually differ.
            let len = bad.len().clamp(1, 64);
            loop {
                let dst = r.gen_range(0, (bad.len() - len + 1) as u32) as usize;
                let srcb = r.gen_range(0, (bad.len() - len + 1) as u32) as usize;
                if bad[dst..dst + len] != bad[srcb..srcb + len] {
                    let stale = bad[srcb..srcb + len].to_vec();
                    bad[dst..dst + len].copy_from_slice(&stale);
                    break;
                }
                // A fully uniform image can't be torn distinguishably;
                // flip a bit instead so the damage is still real.
                if bad.iter().all(|&b| b == bad[0]) {
                    bad[0] ^= 1;
                    break;
                }
            }
        }
        ImageCorruption::SectionSwap => {
            let len = (bad.len() / 2).clamp(1, 32);
            loop {
                let a = r.gen_range(0, (bad.len() - len + 1) as u32) as usize;
                let b = r.gen_range(0, (bad.len() - len + 1) as u32) as usize;
                let (lo, hi) = (a.min(b), a.max(b));
                if lo + len <= hi && bad[lo..lo + len] != bad[hi..hi + len] {
                    let tmp = bad[lo..lo + len].to_vec();
                    let hi_block = bad[hi..hi + len].to_vec();
                    bad[lo..lo + len].copy_from_slice(&hi_block);
                    bad[hi..hi + len].copy_from_slice(&tmp);
                    break;
                }
                if bad.iter().all(|&b| b == bad[0]) || bad.len() < 2 * len {
                    bad[0] ^= 1;
                    break;
                }
            }
        }
        ImageCorruption::VersionSkew => {
            // The version word sits right after the 4-byte magic; write a
            // future version and recompute the trailing CRC so only the
            // version check can reject it.
            if bad.len() >= 12 {
                let skew = 0xDEAD_0000u32 | (1 + r.gen_range(0, 1000));
                bad[4..8].copy_from_slice(&skew.to_le_bytes());
                let body = bad.len() - 4;
                let crc = x86sim::image::crc32(&bad[..body]);
                bad[body..].copy_from_slice(&crc.to_le_bytes());
            } else {
                bad.push(0);
            }
        }
    }
    bad
}

/// A random corruption class applied to `image` — how a damaged
/// checkpoint re-enters the restore path mid-campaign.
pub fn corrupted_image(image: &[u8], r: &mut SeedRng) -> (ImageCorruption, Vec<u8>) {
    let kind = *r.choose(&ImageCorruption::ALL);
    (kind, corrupt_image(image, kind, r))
}
