//! Corruption of loader inputs.
//!
//! The dynamic loaders (`seg_dlopen`, `insmod`) are attack surface: a
//! hostile or damaged object file must produce a structured link error
//! or a contained runtime fault — never a host panic and never code that
//! escapes its domain. These generators produce the damaged inputs:
//! truncated images, garbled instruction streams, and relocations whose
//! resolved addresses overflow the extension's region.

use asm86::{CodeBuilder, Object, Reloc, RelocKind};
use seedrng::SeedRng;

use crate::gen;

/// How an object was damaged (stable tags for the event log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The image is a prefix of a valid extension, cut mid-instruction.
    Truncated,
    /// Random bytes overwrote part of a valid extension image.
    Garbled,
    /// A relocation aims far outside the extension's address range.
    RelocOverflow,
    /// The "code" never was code: pure random bytes.
    Garbage,
}

impl Corruption {
    /// Stable tag for deterministic event logs.
    pub fn tag(self) -> &'static str {
        match self {
            Corruption::Truncated => "truncated",
            Corruption::Garbled => "garbled",
            Corruption::RelocOverflow => "reloc-overflow",
            Corruption::Garbage => "garbage",
        }
    }
}

/// Wraps raw bytes as a loadable object exporting `entry` — how a
/// damaged image re-enters the loader.
fn bytes_object(data: &[u8]) -> Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    b.bytes(data);
    b.finish().unwrap()
}

/// A randomly corrupted extension object plus how it was damaged. The
/// loader may reject it (link error) or load it; if loaded, running it
/// must stay contained like any other extension.
pub fn corrupted_object(r: &mut SeedRng) -> (Corruption, Object) {
    let kind = match r.gen_range(0, 4) {
        0 => Corruption::Truncated,
        1 => Corruption::Garbled,
        2 => Corruption::RelocOverflow,
        _ => Corruption::Garbage,
    };
    let obj = match kind {
        Corruption::Truncated => {
            let whole = gen::user_ext_object(r);
            let image = whole.link(0, &Default::default()).unwrap_or_default();
            let n = if image.is_empty() {
                0
            } else {
                r.gen_range(0, image.len() as u32) as usize
            };
            bytes_object(&image[..n])
        }
        Corruption::Garbled => {
            let whole = gen::user_ext_object(r);
            let mut image = whole.link(0, &Default::default()).unwrap_or_default();
            if image.is_empty() {
                image = vec![0x90; 8];
            }
            for _ in 0..1 + r.gen_range(0, 6) {
                let at = r.gen_range(0, image.len() as u32) as usize;
                image[at] = r.next_u32() as u8;
            }
            bytes_object(&image)
        }
        Corruption::RelocOverflow => {
            // An absolute-word relocation patched with an offset far past
            // the end of the code: `entry` jumps through a pointer whose
            // resolved value lands way outside the extension region.
            let mut b = CodeBuilder::new();
            b.label("entry").unwrap();
            b.jmpm_label("slot", 0);
            b.align(4);
            b.label("slot").unwrap();
            b.dword_label("entry", (0x1000_0000 + r.gen_range(0, 0x1000_0000)) as i32);
            b.finish().unwrap()
        }
        Corruption::Garbage => {
            let mut data = vec![0u8; 4 + r.gen_range(0, 60) as usize];
            r.fill_bytes(&mut data);
            bytes_object(&data)
        }
    };
    (kind, obj)
}

/// An object carrying a relocation whose *site* (not just target) is out
/// of range — the link step itself must reject it with a structured
/// error rather than writing out of bounds.
pub fn bad_reloc_site_object() -> Object {
    let mut b = CodeBuilder::new();
    b.label("entry").unwrap();
    b.bytes(&[0x90, 0x90, 0x90, 0x90]);
    b.raw_reloc(Reloc {
        offset: 0xFFFF_FFF0,
        sym: "entry".to_string(),
        addend: 0,
        kind: RelocKind::Abs32,
    });
    b.finish().unwrap()
}
