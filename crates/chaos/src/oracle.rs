//! The containment-audit oracle.
//!
//! DESIGN.md §6 states the paper's safety claims as seven testable
//! invariants. The oracle checks them against a live kernel after every
//! campaign step (the cheap, structural forms) and with dedicated
//! behavioural probes at intervals (the forms that need their own guest
//! workload). A violated invariant is a [`Violation`] — the campaign
//! treats any violation as a failed audit.
//!
//! The seven invariants:
//!
//! 1. an SPL 3 extension can never read/write a PPL 0 page;
//! 2. an SPL 1 kernel extension can never touch kernel memory outside
//!    its segment limit;
//! 3. an SPL 2 application can never touch the 3–4 GB kernel range;
//! 4. call gates / the GOT cannot be modified from SPL 3;
//! 5. syscalls from SPL 3 extension code of an SPL 2 task are rejected;
//! 6. fork inherits SPL/PPL state, exec resets it;
//! 7. runaway extensions are aborted by the timer limit.
//!
//! An eighth *recovery* invariant rides along since the supervisor was
//! added: reclaiming or restarting an extension segment must leave the
//! kernel's resource ledgers balanced — no leaked pages, descriptors or
//! EFT entries ([`check_recovery`] wraps the kernel-side audit).
//!
//! A ninth *durability* invariant arrived with durable checkpoints: a
//! tampered world image is always rejected with a typed restore error —
//! never silently restored, never a host panic
//! ([`probe_checkpoint_rejection`] drives every corruption class from
//! [`crate::corrupt`] against a valid image).

use std::collections::BTreeMap;

use asm86::Assembler;
use minikernel::layout::sys;
use minikernel::{Budget, Kernel, Outcome, USER_TEXT};
use palladium::kernel_ext::{KernelExtensions, KextError, SegmentConfig};
use palladium::user_ext::{DlopenOptions, ExtensibleApp};
use seedrng::SeedRng;
use x86sim::desc::Descriptor;
use x86sim::image::{self, Dec, Enc, ImageView, RestoreError};
use x86sim::paging::{get_pte, pte};

use crate::corrupt::{self, ImageCorruption};
use crate::gen;

/// One containment-invariant violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Which §6 invariant was violated (stable short name).
    pub invariant: &'static str,
    /// What the oracle observed.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[{}] {}", self.invariant, self.detail)
    }
}

/// Structural state watched across every step of a campaign episode.
///
/// `Clone` lets an oracle captured on a template world travel with each
/// fork: the watched baseline (text snapshot, canary, descriptors, GOT
/// pages) is identical in the forked world by construction.
#[derive(Debug, Clone)]
pub struct StateOracle {
    /// Snapshot of the application's image page (PPL 0): invariant 1.
    text_snapshot: Vec<u8>,
    /// Canary in kernel memory outside every extension segment:
    /// invariant 2.
    canary_addr: u32,
    canary_value: u32,
    /// GDT entries that must never change behind the kernel's back
    /// (boot selectors and registered call gates): invariants 3 and 4.
    watched_descriptors: Vec<(u16, Descriptor)>,
    /// GOT pages whose PTEs must stay read-only and user-visible:
    /// invariant 4.
    got_pages: Vec<u32>,
}

impl StateOracle {
    /// Captures the invariants' baseline from a freshly set-up world.
    /// `canary_addr` must hold `canary_value` in kernel memory outside
    /// every extension segment.
    pub fn new(k: &Kernel, canary_addr: u32, canary_value: u32) -> StateOracle {
        let mut watched = Vec::new();
        for sel in [
            k.sel.kcode,
            k.sel.kdata,
            k.sel.ucode,
            k.sel.udata,
            k.sel.ucode2,
            k.sel.udata2,
        ] {
            if let Some(d) = k.m.gdt.get(sel.index()).copied() {
                watched.push((sel.index(), d));
            }
        }
        StateOracle {
            text_snapshot: k.m.host_read(USER_TEXT, 4096),
            canary_addr,
            canary_value,
            watched_descriptors: watched,
            got_pages: Vec::new(),
        }
    }

    /// Address of the watched kernel canary word (outside every
    /// extension segment). Exposed so chaos hooks — e.g. the fleet
    /// driver's fail-closed drill — can corrupt exactly what the oracle
    /// watches.
    pub fn canary_addr(&self) -> u32 {
        self.canary_addr
    }

    /// Adds a GDT entry (e.g. a freshly created call gate) to the
    /// immutability watch list.
    pub fn watch_descriptor(&mut self, k: &Kernel, index: u16) {
        if let Some(d) = k.m.gdt.get(index).copied() {
            self.watched_descriptors.push((index, d));
        }
    }

    /// Adds a sealed GOT page to the watch list.
    pub fn watch_got_page(&mut self, page: u32) {
        self.got_pages.push(page);
    }

    /// Serializes the watched baseline into `e`, so a checkpointed world
    /// carries its containment oracle with it: the restored oracle
    /// watches exactly the snapshot, canary, descriptors and GOT pages
    /// the original did.
    pub fn save_into(&self, e: &mut Enc) {
        e.blob(&self.text_snapshot);
        e.u32(self.canary_addr);
        e.u32(self.canary_value);
        e.u32(self.watched_descriptors.len() as u32);
        for (idx, d) in &self.watched_descriptors {
            e.u16(*idx);
            image::put_descriptor(e, d);
        }
        e.u32(self.got_pages.len() as u32);
        for p in &self.got_pages {
            e.u32(*p);
        }
    }

    /// Rebuilds an oracle from [`save_into`](Self::save_into) bytes.
    pub fn restore_from(d: &mut Dec) -> Result<StateOracle, RestoreError> {
        let text_snapshot = d.blob()?.to_vec();
        let canary_addr = d.u32()?;
        let canary_value = d.u32()?;
        let n = d.u32()?;
        let mut watched_descriptors = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let idx = d.u16()?;
            let desc = image::get_descriptor(d)?;
            watched_descriptors.push((idx, desc));
        }
        let n = d.u32()?;
        let mut got_pages = Vec::with_capacity(n as usize);
        for _ in 0..n {
            got_pages.push(d.u32()?);
        }
        Ok(StateOracle {
            text_snapshot,
            canary_addr,
            canary_value,
            watched_descriptors,
            got_pages,
        })
    }

    /// Runs every structural check. `cr3` is the extensible
    /// application's address space (for page-table inspection).
    pub fn check(&self, k: &Kernel, cr3: u32) -> Vec<Violation> {
        let mut v = Vec::new();

        // Invariant 1: the application image (PPL 0) is untouched.
        if k.m.host_read(USER_TEXT, 4096) != self.text_snapshot {
            v.push(Violation {
                invariant: "ppl0-unreachable",
                detail: format!("application image at {USER_TEXT:#010x} was modified"),
            });
        }
        // ... and still supervisor-at-page-level protection: the image
        // PTE must remain PPL 0 (U/S clear).
        match get_pte(&k.m.mem, cr3, USER_TEXT) {
            Some(p) if p & pte::US != 0 => v.push(Violation {
                invariant: "ppl0-unreachable",
                detail: format!("image PTE became user-accessible: {p:#x}"),
            }),
            None => v.push(Violation {
                invariant: "ppl0-unreachable",
                detail: "image PTE vanished".into(),
            }),
            _ => {}
        }

        // Invariant 2: kernel memory outside every segment is intact.
        let got = k.m.host_read_u32(self.canary_addr);
        if got != self.canary_value {
            v.push(Violation {
                invariant: "spl1-confined",
                detail: format!(
                    "kernel canary at {:#010x}: {got:#x} != {:#x}",
                    self.canary_addr, self.canary_value
                ),
            });
        }

        // Invariants 3 and 4 (structural half): the boot descriptors —
        // including the SPL 2 selectors whose limit walls off the 3-4 GB
        // range — and every registered call gate are unchanged.
        for (idx, want) in &self.watched_descriptors {
            let now = k.m.gdt.get(*idx).copied();
            if now != Some(*want) {
                v.push(Violation {
                    invariant: "descriptors-immutable",
                    detail: format!("GDT[{idx}] changed: {want:?} -> {now:?}"),
                });
            }
        }

        // Invariant 4 (GOT half): sealed GOT pages stay read-only and
        // extension-visible.
        for &page in &self.got_pages {
            match get_pte(&k.m.mem, cr3, page) {
                Some(p) => {
                    if p & pte::RW != 0 {
                        v.push(Violation {
                            invariant: "got-sealed",
                            detail: format!("GOT page {page:#010x} became writable: {p:#x}"),
                        });
                    }
                    if p & pte::US == 0 {
                        v.push(Violation {
                            invariant: "got-sealed",
                            detail: format!("GOT page {page:#010x} lost U/S: {p:#x}"),
                        });
                    }
                }
                None => v.push(Violation {
                    invariant: "got-sealed",
                    detail: format!("GOT page {page:#010x} unmapped"),
                }),
            }
        }
        v
    }
}

/// Recovery invariant: the kernel's per-segment resource ledgers are
/// balanced — every reclaimed segment's pages are unmapped and back on
/// the free list, pooled descriptors are not-present, and every live
/// segment's ledger matches what the kernel actually holds for it.
pub fn check_recovery(k: &Kernel, kx: &KernelExtensions) -> Vec<Violation> {
    match kx.assert_no_leaks(k) {
        Ok(()) => Vec::new(),
        Err(detail) => vec![Violation {
            invariant: "resources-reclaimed",
            detail,
        }],
    }
}

fn asm(src: &str) -> asm86::Object {
    Assembler::assemble(src).expect("oracle probe assembles")
}

/// Invariant 6 probe: fork inherits SPL/PPL state; exec resets it.
pub fn probe_fork_exec() -> Result<(), Violation> {
    let fail = |detail: String| Violation {
        invariant: "fork-exec-spl",
        detail,
    };
    let mut k = Kernel::boot();
    let parent = k
        .spawn(
            &asm(&format!(
                "_start:\n\
                 mov eax, {init_pl}\n\
                 int 0x80\n\
                 mov eax, {fork}\n\
                 int 0x80\n\
                 mov ebx, eax\n\
                 mov eax, {exit}\n\
                 int 0x80\n",
                init_pl = sys::INIT_PL,
                fork = sys::FORK,
                exit = sys::EXIT,
            )),
            &BTreeMap::new(),
        )
        .map_err(|e| fail(format!("spawn failed: {e}")))?;
    k.switch_to(parent);
    let child = match k.run_current(Budget::Insns(1_000_000)) {
        Outcome::Exited(code) if code > 0 => code as u32,
        other => return Err(fail(format!("parent did not fork+exit: {other:?}"))),
    };
    if k.task(child).task_spl != 2 {
        return Err(fail(format!(
            "fork did not inherit taskSPL=2 (got {})",
            k.task(child).task_spl
        )));
    }
    let p = get_pte(&k.m.mem, k.task(child).cr3, USER_TEXT)
        .ok_or_else(|| fail("child image unmapped".into()))?;
    if p & pte::US != 0 {
        return Err(fail("fork did not copy PPL 0 marking of the image".into()));
    }

    // exec resets: run the child to completion, then exec a fresh image
    // over it and check the privilege state went back to SPL 3.
    k.switch_to(child);
    let _ = k.run_current(Budget::Insns(1_000_000));
    let t2 = k
        .spawn(
            &asm(&format!(
                "_start:\nmov eax, {init_pl}\nint 0x80\nmov eax, 99\nint 0x80\njmp _start\n",
                init_pl = sys::INIT_PL
            )),
            &BTreeMap::new(),
        )
        .map_err(|e| fail(format!("spawn failed: {e}")))?;
    k.switch_to(t2);
    let _ = k.run_current(Budget::Insns(8));
    if k.task(t2).task_spl != 2 {
        return Err(fail("init_PL did not promote to SPL 2".into()));
    }
    let fresh = asm(&format!(
        "_start:\nmov eax, {exit}\nmov ebx, 42\nint 0x80\n",
        exit = sys::EXIT
    ));
    k.exec_current(&fresh, &BTreeMap::new())
        .map_err(|e| fail(format!("exec failed: {e}")))?;
    if k.task(t2).task_spl != 3 {
        return Err(fail(format!(
            "exec did not reset taskSPL to 3 (got {})",
            k.task(t2).task_spl
        )));
    }
    match k.run_current(Budget::Insns(1_000_000)) {
        Outcome::Exited(42) => Ok(()),
        other => Err(fail(format!("exec'd image misbehaved: {other:?}"))),
    }
}

/// Invariant 5 probe: a direct `int 0x80` from SPL 3 extension code of
/// a promoted task is rejected (−EPERM), and the application survives.
pub fn probe_syscall_rejection() -> Result<(), Violation> {
    let fail = |detail: String| Violation {
        invariant: "syscall-rejected",
        detail,
    };
    let mut k = Kernel::boot();
    let mut app = ExtensibleApp::new(&mut k).map_err(|e| fail(format!("setup: {e}")))?;
    // The extension tries to exit(7) the whole task via a raw syscall.
    let h = app
        .dlopen(
            &mut k,
            &asm(&format!(
                "entry:\nmov eax, {exit}\nmov ebx, 7\nint 0x80\nmov eax, 1\nret\n",
                exit = sys::EXIT
            )),
            &DlopenOptions::new(),
        )
        .map_err(|e| fail(format!("dlopen: {e}")))?;
    let f = app
        .seg_dlsym(&mut k, h, "entry")
        .map_err(|e| fail(format!("dlsym: {e}")))?;
    let rejected_before = k.stats.syscalls_rejected;
    let r = app.call_extension(&mut k, f, 0);
    if k.stats.syscalls_rejected <= rejected_before {
        return Err(fail(format!(
            "raw syscall from SPL 3 was not rejected (result {r:?})"
        )));
    }
    // The call itself returns normally (the extension survives its
    // -EPERM and falls through to ret) — and the app can still work.
    let h2 = app
        .dlopen(&mut k, &gen::benign_object(55), &DlopenOptions::new())
        .map_err(|e| fail(format!("post dlopen: {e}")))?;
    let ok = app
        .seg_dlsym(&mut k, h2, "entry")
        .map_err(|e| fail(format!("post dlsym: {e}")))?;
    match app.call_extension(&mut k, ok, 0) {
        Ok(55) => Ok(()),
        other => Err(fail(format!(
            "application damaged after rejection: {other:?}"
        ))),
    }
}

/// Invariant 7 probe: a runaway kernel extension is aborted by the
/// CPU-time limit, within a bounded number of cycles.
pub fn probe_timer_abort(cycle_limit: u64) -> Result<(), Violation> {
    let fail = |detail: String| Violation {
        invariant: "timer-abort",
        detail,
    };
    let mut k = Kernel::boot();
    k.extension_cycle_limit = cycle_limit;
    let mut kx = KernelExtensions::new(&mut k).map_err(|e| fail(format!("setup: {e}")))?;
    let seg = kx
        .create_segment_with(
            &mut k,
            8,
            SegmentConfig {
                quarantine_threshold: 1,
                ..SegmentConfig::default()
            },
        )
        .map_err(|e| fail(format!("segment: {e}")))?;
    kx.insmod(&mut k, seg, "spin", &asm("spin:\njmp spin\n"), &["spin"])
        .map_err(|e| fail(format!("insmod: {e}")))?;
    let before = k.m.cycles();
    match kx.invoke(&mut k, seg, "spin", 0) {
        Err(KextError::TimeLimit) => {}
        other => return Err(fail(format!("runaway not aborted by timer: {other:?}"))),
    }
    let spent = k.m.cycles() - before;
    // The abort must land near the limit (limit + dispatch/abort slack).
    if spent > cycle_limit + 50_000 {
        return Err(fail(format!(
            "abort took {spent} cycles against a limit of {cycle_limit}"
        )));
    }
    if !kx.segment(seg).quarantined {
        return Err(fail("threshold-1 runaway was not quarantined".into()));
    }
    Ok(())
}

/// Durability invariant probe: every corruption class applied to a valid
/// checkpoint image must be rejected by the parser with a typed
/// [`RestoreError`] — a tampered image is never silently restored, and
/// the rejection is never a host panic.
///
/// `expected_kind` is the image's kind word (machine / kernel / session /
/// replica); `trials` corruptions are drawn per class from `r`.
pub fn probe_checkpoint_rejection(
    image: &[u8],
    expected_kind: u32,
    trials: u32,
    r: &mut SeedRng,
) -> Vec<Violation> {
    let mut v = Vec::new();
    if ImageView::parse(image, expected_kind).is_err() {
        v.push(Violation {
            invariant: "checkpoint-rejected",
            detail: "baseline image failed to parse; probe is vacuous".into(),
        });
        return v;
    }
    for kind in ImageCorruption::ALL {
        for t in 0..trials.max(1) {
            let bad = corrupt::corrupt_image(image, kind, r);
            match ImageView::parse(&bad, expected_kind) {
                Err(_) => {}
                Ok(_) => v.push(Violation {
                    invariant: "checkpoint-rejected",
                    detail: format!(
                        "corruption {} (trial {t}) was silently accepted by the parser",
                        kind.tag()
                    ),
                }),
            }
        }
    }
    v
}
