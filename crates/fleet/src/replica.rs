//! One replica world: a private kernel hosting one supervised extension
//! segment behind an HTTP front end, with the containment oracle
//! auditing every round.

use chaos::oracle::{self, StateOracle};
use minikernel::Kernel;
use palladium::kernel_ext::{KernelExtensions, SegmentConfig};
use palladium::supervisor::{ModuleImage, RestartPolicy, SupervisedId, Supervisor};
use palladium::user_ext::ExtensibleApp;
use seedrng::SeedRng;
use webserver::http;
use webserver::workload::jittered_get;
use x86sim::image::{kind, Enc, ImageBuilder, ImageView, RestoreError};

/// Kernel canary word planted outside every extension segment; the
/// oracle checks it after every round.
const CANARY: u32 = 0xF1EE_7CA9;

/// Host-side cycles charged per request (connection handling, parsing,
/// response formatting). Charging them keeps simulated time flowing even
/// while the extension is down, so backoff windows actually expire and
/// strike decay runs on the same clock as the request stream.
pub const REQUEST_OVERHEAD_CYCLES: u64 = 2_000;

/// How one replica treated the requests of a single round.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RoundStats {
    /// Requests answered 200 by the extension.
    pub served: u32,
    /// Requests answered 503 (extension faulted, quarantined, or in its
    /// restart backoff) — degraded, not lost.
    pub degraded: u32,
    /// Requests dropped because the replica failed closed after a
    /// containment violation.
    pub dropped: u32,
}

impl RoundStats {
    fn total(&self) -> u32 {
        self.served + self.degraded + self.dropped
    }

    /// Unhealthy share of the round — degraded *and* dropped requests —
    /// in basis points (0..=10_000). Integer math so SLO evaluation is
    /// trivially byte-deterministic.
    pub fn unhealthy_bp(&self) -> u32 {
        ((self.degraded + self.dropped) * 10_000)
            .checked_div(self.total())
            .unwrap_or(0)
    }
}

/// Whole-run counters for one replica.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplicaStats {
    /// Requests answered 200.
    pub served: u64,
    /// Requests answered 503.
    pub degraded: u64,
    /// Requests dropped fail-closed.
    pub dropped: u64,
    /// Response bytes produced.
    pub resp_bytes: u64,
}

/// One replica world. Replica `i` of a fleet draws from the positional
/// stream `SeedRng::stream(seed, i)` and owns every piece of its state,
/// so a round is a pure function of the replica — the parex contract
/// that makes fleet runs byte-identical across worker counts.
///
/// `Clone` is a world fork: the machine's physical frames share
/// copy-on-write ([`x86sim::Machine::fork`]), so cloning a booted
/// replica costs metadata, not memory — the basis of
/// [`fork_as`](Replica::fork_as) template boot.
#[derive(Debug, Clone)]
pub struct Replica {
    /// The replica's private kernel.
    pub k: Kernel,
    /// The extensible application hosting the front end (its address
    /// space is what the oracle's page-table checks inspect).
    pub app: ExtensibleApp,
    /// Kernel-extension state.
    pub kx: KernelExtensions,
    /// The supervisor driving restart/upgrade policy.
    pub sup: Supervisor,
    /// The supervised request-handler extension.
    pub ext: SupervisedId,
    /// Whole-run counters.
    pub stats: ReplicaStats,
    /// Stats of the most recently served round (the SLO monitor's
    /// evaluation window).
    pub last_round: RoundStats,
    /// Containment violations observed, with round numbers. Any entry
    /// fails the replica closed.
    pub violations: Vec<String>,
    /// Leak-audit failures observed at epoch checks.
    pub leak_failures: Vec<String>,
    oracle: StateOracle,
    rng: SeedRng,
    rounds_served: u32,
    failed_closed: bool,
}

impl Replica {
    /// Boots replica `idx` of a fleet seeded with `seed`, installing
    /// `images` as the supervised request handler.
    pub fn new(
        seed: u64,
        idx: u32,
        images: Vec<ModuleImage>,
        policy: RestartPolicy,
        cycle_limit: u64,
        predecode: bool,
    ) -> Result<Replica, String> {
        let mut k = Kernel::boot();
        k.extension_cycle_limit = cycle_limit;
        k.m.set_predecode(predecode);
        let app = ExtensibleApp::new(&mut k).map_err(|e| format!("app: {e}"))?;
        let mut kx = KernelExtensions::new(&mut k).map_err(|e| format!("kx: {e}"))?;
        let mut sup = Supervisor::new(policy);
        let config = SegmentConfig {
            quarantine_threshold: 3,
            ..kx.default_config()
        };
        let ext = sup
            .install(&mut k, &mut kx, 16, config, images)
            .map_err(|e| format!("install: {e}"))?;
        let canary = k
            .alloc_kernel_pages(1)
            .map_err(|e| format!("canary: {e}"))?;
        k.m.host_write_u32(canary, CANARY);
        let oracle = StateOracle::new(&k, canary, CANARY);
        Ok(Replica {
            k,
            app,
            kx,
            sup,
            ext,
            stats: ReplicaStats::default(),
            last_round: RoundStats::default(),
            violations: Vec::new(),
            leak_failures: Vec::new(),
            oracle,
            rng: SeedRng::stream(seed, u64::from(idx)),
            rounds_served: 0,
            failed_closed: false,
        })
    }

    /// Forks this replica into replica `idx` of a fleet seeded with
    /// `seed`: a copy-on-write clone with its request stream re-pointed
    /// at the positional stream `SeedRng::stream(seed, idx)`.
    ///
    /// Byte-faithful to a cold [`Replica::new`] boot because boot is
    /// `idx`-independent — `idx` only seeds the rng, and the rng is
    /// first consumed in [`serve_round`](Replica::serve_round). The
    /// idiom: boot one template replica, then `fork_as` the rest of the
    /// fleet in microseconds.
    pub fn fork_as(&self, seed: u64, idx: u32) -> Replica {
        let mut r = self.clone();
        r.rng = SeedRng::stream(seed, u64::from(idx));
        r
    }

    /// Whether the replica has failed closed (a containment violation
    /// was observed; every request is dropped from then on).
    pub fn failed_closed(&self) -> bool {
        self.failed_closed
    }

    /// Rounds served so far.
    pub fn rounds_served(&self) -> u32 {
        self.rounds_served
    }

    /// Serves one round of `requests` requests through the supervised
    /// extension, then audits containment and the resource ledgers.
    ///
    /// Request handling degrades gracefully, never fatally:
    ///
    /// * a healthy extension serves 200s;
    /// * a faulted / quarantined / restarting extension yields 503s —
    ///   the supervisor reclaims and restarts underneath, and the next
    ///   round picks up the recovered segment automatically;
    /// * after a containment violation the replica fails **closed**:
    ///   requests are dropped, not answered, until the operator retires
    ///   the world (serving from a world whose isolation was breached
    ///   would be worse than downtime).
    pub fn serve_round(&mut self, requests: u32) -> RoundStats {
        let mut round = RoundStats::default();
        for _ in 0..requests {
            let raw = jittered_get(&mut self.rng, "/filter");
            let arg = self.rng.next_u32() & 0xFFFF;
            self.k.m.charge(REQUEST_OVERHEAD_CYCLES);
            if self.failed_closed {
                round.dropped += 1;
                continue;
            }
            let resp = match http::parse_request(&raw) {
                Ok(_) => match self
                    .sup
                    .invoke(&mut self.k, &mut self.kx, self.ext, "entry", arg)
                {
                    Ok(v) => {
                        round.served += 1;
                        http::ok_response("text/plain", format!("filtered:{v}\n").as_bytes())
                    }
                    Err(_) => {
                        round.degraded += 1;
                        http::error_response(503, "Service Unavailable")
                    }
                },
                Err(_) => {
                    round.degraded += 1;
                    http::error_response(400, "Bad Request")
                }
            };
            self.stats.resp_bytes += resp.len() as u64;
        }
        let cr3 = self.k.task(self.app.tid).cr3;
        let violations = self.oracle.check(&self.k, cr3);
        for v in violations {
            self.violations
                .push(format!("round {}: {v}", self.rounds_served));
            self.failed_closed = true;
        }
        self.stats.served += u64::from(round.served);
        self.stats.degraded += u64::from(round.degraded);
        self.stats.dropped += u64::from(round.dropped);
        self.last_round = round;
        self.rounds_served += 1;
        round
    }

    /// The epoch leak audit: the kernel's per-segment resource ledgers
    /// must balance exactly. Records (and returns) any failure.
    pub fn audit_leaks(&mut self, epoch: &str) -> bool {
        let clean = oracle::check_recovery(&self.k, &self.kx);
        if clean.is_empty() {
            true
        } else {
            for v in clean {
                self.leak_failures.push(format!("{epoch}: {v}"));
            }
            false
        }
    }

    // ----- durable checkpoints ----------------------------------------------

    /// Serializes the whole replica world — kernel (with the machine
    /// image inside), application, kernel-extension table, supervisor,
    /// containment oracle, counters and the request-stream RNG — into a
    /// standalone, integrity-checked image.
    ///
    /// A [`restore`](Replica::restore)d replica is cycle-, stat- and
    /// fault-identical going forward: it re-serves exactly the rounds the
    /// original would have served from the checkpoint instant.
    pub fn checkpoint(&self) -> Vec<u8> {
        let mut b = ImageBuilder::new(kind::REPLICA);
        let mut sec = Enc::new();
        sec.blob(&self.k.save_image());
        b.section(1, sec);
        let mut sec = Enc::new();
        self.app.save_into(&mut sec);
        b.section(2, sec);
        let mut sec = Enc::new();
        self.kx.save_into(&mut sec);
        b.section(3, sec);
        let mut sec = Enc::new();
        self.sup.save_into(&mut sec);
        b.section(4, sec);
        let mut sec = Enc::new();
        self.oracle.save_into(&mut sec);
        b.section(5, sec);
        let mut sec = Enc::new();
        sec.u32(self.ext.index() as u32);
        sec.u64(self.stats.served);
        sec.u64(self.stats.degraded);
        sec.u64(self.stats.dropped);
        sec.u64(self.stats.resp_bytes);
        sec.u32(self.last_round.served);
        sec.u32(self.last_round.degraded);
        sec.u32(self.last_round.dropped);
        sec.u32(self.violations.len() as u32);
        for v in &self.violations {
            sec.str(v);
        }
        sec.u32(self.leak_failures.len() as u32);
        for v in &self.leak_failures {
            sec.str(v);
        }
        sec.u64(self.rng.state());
        sec.u32(self.rounds_served);
        sec.bool(self.failed_closed);
        b.section(6, sec);
        b.finish()
    }

    /// Rebuilds a replica from [`checkpoint`](Replica::checkpoint)
    /// bytes. Every corruption — truncation, bit rot, torn or
    /// transposed blocks, version skew — surfaces as a typed
    /// [`RestoreError`]; a tampered image is never silently restored.
    pub fn restore(bytes: &[u8]) -> Result<Replica, RestoreError> {
        let view = ImageView::parse(bytes, kind::REPLICA)?;
        let mut d = view.require(1, "replica.kernel")?;
        let k = Kernel::restore_image(d.blob()?)?;
        d.finish()?;
        let mut d = view.require(2, "replica.app")?;
        let app = ExtensibleApp::restore_from(&mut d)?;
        d.finish()?;
        let mut d = view.require(3, "replica.kx")?;
        let kx = KernelExtensions::restore_from(&mut d)?;
        d.finish()?;
        let mut d = view.require(4, "replica.sup")?;
        let sup = Supervisor::restore_from(&mut d)?;
        d.finish()?;
        let mut d = view.require(5, "replica.oracle")?;
        let oracle = StateOracle::restore_from(&mut d)?;
        d.finish()?;
        let mut d = view.require(6, "replica.state")?;
        let ext = SupervisedId::from_index(d.u32()? as usize);
        let stats = ReplicaStats {
            served: d.u64()?,
            degraded: d.u64()?,
            dropped: d.u64()?,
            resp_bytes: d.u64()?,
        };
        let last_round = RoundStats {
            served: d.u32()?,
            degraded: d.u32()?,
            dropped: d.u32()?,
        };
        let n = d.u32()?;
        let mut violations = Vec::with_capacity(n as usize);
        for _ in 0..n {
            violations.push(d.str()?);
        }
        let n = d.u32()?;
        let mut leak_failures = Vec::with_capacity(n as usize);
        for _ in 0..n {
            leak_failures.push(d.str()?);
        }
        let rng = SeedRng::new(d.u64()?);
        let rounds_served = d.u32()?;
        let failed_closed = d.bool()?;
        d.finish()?;
        Ok(Replica {
            k,
            app,
            kx,
            sup,
            ext,
            stats,
            last_round,
            violations,
            leak_failures,
            oracle,
            rng,
            rounds_served,
            failed_closed,
        })
    }

    /// Test/chaos hook: corrupts the kernel canary so the next round's
    /// oracle check observes a containment violation and the replica
    /// fails closed. (Under normal operation the protection mechanisms
    /// make this state unreachable — which is the point of checking.)
    pub fn corrupt_canary(&mut self) {
        let addr = self.oracle_canary_addr();
        self.k.m.host_write_u32(addr, !CANARY);
    }

    fn oracle_canary_addr(&self) -> u32 {
        self.oracle.canary_addr()
    }
}
