//! Stable plain-text rendering of fleet reports.
//!
//! The rendered string is the artifact the CI byte-identity check
//! compares across `--jobs 1` and `--jobs 8`, so everything here is
//! integer formatting — no floats, no host state, no timestamps.

use core::fmt::Write;

use crate::drill::DrillReport;
use crate::rollout::RolloutReport;
use crate::soak::SoakReport;

/// Availability in basis points (10_000 = 100.00%), integer math.
fn availability_bp(served: u64, degraded: u64, dropped: u64) -> u64 {
    let total = served + degraded + dropped;
    (served * 10_000).checked_div(total).unwrap_or(10_000)
}

/// Formats basis points as a percentage with two decimals.
fn pct(bp: u64) -> String {
    format!("{}.{:02}%", bp / 100, bp % 100)
}

/// Renders a rollout report as stable plain text.
pub fn render_rollout(r: &RolloutReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fleet rollout: seed {} / {} replicas / {} rounds x {} requests",
        r.seed, r.replicas, r.rounds, r.requests_per_round
    );
    let _ = writeln!(s, "outcome: {}", r.outcome.tag());
    let _ = writeln!(
        s,
        "requests: served {}  degraded {}  dropped {}  availability {}",
        r.served,
        r.degraded,
        r.dropped,
        pct(availability_bp(r.served, r.degraded, r.dropped))
    );
    let _ = writeln!(
        s,
        "canary round: {}  rollback round: {}  rollback latency: {} cycles",
        r.canary_round,
        r.rollback_round.map_or("-".to_string(), |x| x.to_string()),
        r.rollback_latency_cycles
            .map_or("-".to_string(), |x| x.to_string()),
    );
    let _ = writeln!(
        s,
        "converged round: {}  guest insns: {}",
        r.converged_round.map_or("-".to_string(), |x| x.to_string()),
        r.guest_insns
    );
    let _ = writeln!(s, "replicas:");
    for p in &r.per_replica {
        let _ = writeln!(
            s,
            "  {} {:<10} gen {}  served {}  degraded {}  dropped {}  restarts {}  rollovers {}  pages-reclaimed {}  violations {}",
            p.idx,
            p.final_state,
            p.final_gen,
            p.served,
            p.degraded,
            p.dropped,
            p.restarts,
            p.rollovers,
            p.pages_reclaimed,
            p.violations
        );
    }
    let _ = writeln!(s, "events:");
    for e in &r.events {
        let _ = writeln!(s, "  {e}");
    }
    if r.violations.is_empty() && r.leak_failures.is_empty() {
        let _ = writeln!(s, "audit: OK (0 violations, 0 leaks)");
    } else {
        let _ = writeln!(
            s,
            "audit: {} violations, {} leak failures",
            r.violations.len(),
            r.leak_failures.len()
        );
        for v in r.violations.iter().chain(r.leak_failures.iter()) {
            let _ = writeln!(s, "  {v}");
        }
    }
    s
}

/// Renders a soak report as stable plain text.
pub fn render_soak(r: &SoakReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fleet soak: seed {} / {} replicas / {} epochs x {} rounds x {} requests",
        r.seed, r.replicas, r.epochs, r.rounds_per_epoch, r.requests_per_round
    );
    let _ = writeln!(
        s,
        "requests: served {}  degraded {}  dropped {}  availability {}",
        r.served,
        r.degraded,
        r.dropped,
        pct(availability_bp(r.served, r.degraded, r.dropped))
    );
    let _ = writeln!(
        s,
        "churn: kills {}  upgrades {}  rollbacks {}  restarts {}  pages reclaimed {}",
        r.kills, r.upgrades, r.rollbacks, r.restarts, r.pages_reclaimed
    );
    let _ = writeln!(s, "guest insns: {}", r.guest_insns);
    if r.violations.is_empty() && r.leak_failures.is_empty() {
        let _ = writeln!(
            s,
            "audit: OK (0 violations, 0 leaks over {} epochs)",
            r.epochs
        );
    } else {
        let _ = writeln!(
            s,
            "audit: {} violations, {} leak failures",
            r.violations.len(),
            r.leak_failures.len()
        );
        for v in r.violations.iter().chain(r.leak_failures.iter()) {
            let _ = writeln!(s, "  {v}");
        }
    }
    s
}

/// Renders a crash-recovery drill report as stable plain text.
pub fn render_drill(r: &DrillReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "fleet drill: seed {} / {} replicas / {} rounds x {} requests / checkpoint every {}",
        r.seed, r.replicas, r.rounds, r.requests_per_round, r.checkpoint_every
    );
    let _ = writeln!(
        s,
        "crash: round {}  victim {}  corrupted generations {}",
        r.crash_round, r.victim, r.corrupted_generations
    );
    let _ = writeln!(
        s,
        "recovery: {}  generations walked {}  recovered gen {}  converged after {} rounds",
        r.outcome.tag(),
        r.generations_walked,
        r.recovered_generation
            .map_or("-".to_string(), |g| g.to_string()),
        r.rounds_to_converge
            .map_or("-".to_string(), |x| x.to_string()),
    );
    let _ = writeln!(
        s,
        "checkpoints: {} written  largest image {} bytes",
        r.checkpoints_written, r.largest_image_bytes
    );
    let _ = writeln!(
        s,
        "requests: served {}  degraded {}  dropped {}  availability {}  (503s during recovery: {})",
        r.served,
        r.degraded,
        r.dropped,
        pct(availability_bp(r.served, r.degraded, r.dropped)),
        r.recovery_degraded
    );
    let _ = writeln!(
        s,
        "healthy-replica drops: {}  guest insns: {}",
        r.healthy_replica_drops, r.guest_insns
    );
    let _ = writeln!(s, "events:");
    for e in &r.events {
        let _ = writeln!(s, "  {e}");
    }
    if r.violations.is_empty() && r.leak_failures.is_empty() && r.healthy_replica_drops == 0 {
        let _ = writeln!(
            s,
            "audit: OK (0 violations, 0 leaks, 0 healthy-replica drops)"
        );
    } else {
        let _ = writeln!(
            s,
            "audit: {} violations, {} leak failures, {} healthy-replica drops",
            r.violations.len(),
            r.leak_failures.len(),
            r.healthy_replica_drops
        );
        for v in r.violations.iter().chain(r.leak_failures.iter()) {
            let _ = writeln!(s, "  {v}");
        }
    }
    s
}
