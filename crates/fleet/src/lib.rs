//! `fleet` — deterministic fleet operations over supervised extensions.
//!
//! Five PRs of mechanism — protected segments, transactional
//! reclamation, restart policies, staged upgrades, worker-invariant
//! sharding — compose here into the scenario a production operator
//! actually runs: **N replica worlds serve a sustained request stream
//! while a new extension version rolls out replica-by-replica**, canary
//! first, then progressive waves, with an SLO monitor that rolls the
//! fleet back automatically when the canary trips.
//!
//! The moving parts:
//!
//! * [`replica::Replica`] — one self-contained world (kernel, supervised
//!   extension segment, containment oracle, positional RNG stream) that
//!   serves HTTP requests through its extension and fails *closed* the
//!   moment the oracle observes a containment violation;
//! * [`slo::SloPolicy`] — the trip conditions: per-round error rate,
//!   charged restart strikes, and any containment violation;
//! * [`rollout`] — the canary → soak → waves → converge state machine,
//!   with rollback through [`Supervisor::stage_images`] +
//!   [`Supervisor::rollover`] when the SLO monitor trips;
//! * [`soak`] — long-soak churn campaigns (kill / upgrade / rollback,
//!   10^7+ guest instructions) asserting zero ledger drift via
//!   `assert_no_leaks` at every epoch;
//! * [`drill`] — the crash-recovery drill: periodic durable
//!   [`Replica::checkpoint`]s, a mid-stream host crash, and recovery
//!   that walks the checkpoint lineage past corrupt generations
//!   (rejected with typed errors) before ever cold-booting;
//! * [`report`] — stable plain-text rendering, the artifact the CI
//!   byte-identity check compares across `--jobs` counts.
//!
//! Determinism is the same contract as everywhere else in the
//! workspace: replica `i` draws from the positional stream
//! `SeedRng::stream(seed, i)`, rounds fan replicas across a
//! [`parex::Pool`] with an ordered merge, and every fleet-level decision
//! is made serially from the merged state — so the whole run, report
//! text included, is byte-identical for every worker count.
//!
//! [`Supervisor::stage_images`]: palladium::supervisor::Supervisor::stage_images
//! [`Supervisor::rollover`]: palladium::supervisor::Supervisor::rollover

pub mod drill;
pub mod replica;
pub mod report;
pub mod rollout;
pub mod slo;
pub mod soak;

pub use drill::{DrillConfig, DrillOutcome, DrillReport};
pub use replica::{Replica, ReplicaStats, RoundStats};
pub use rollout::{RolloutConfig, RolloutOutcome, RolloutReport};
pub use slo::{SloPolicy, SloVerdict};
pub use soak::{SoakConfig, SoakReport};

use chaos::gen;
use palladium::supervisor::ModuleImage;

/// The module image set for a benign extension version: an `entry`
/// export returning `value` (the version's observable behaviour, so
/// tests can tell which version served a request).
pub fn version_images(name: &str, value: u32) -> Vec<ModuleImage> {
    vec![ModuleImage::new(
        name,
        gen::benign_object(value),
        &["entry"],
    )]
}

/// A benign version whose handler does real per-request work: a bounded
/// arg-dependent scan loop (the shape of a netfilter rule walk) of
/// `work`..`work + 64` iterations before returning `value`. The soak
/// campaigns use this so their guest-instruction volume reflects a
/// fleet actually computing, not just trampolining.
pub fn working_version_images(name: &str, value: u32, work: u32) -> Vec<ModuleImage> {
    let src = format!(
        "entry:\n\
         mov ecx, [esp+4]\n\
         and ecx, 63\n\
         add ecx, {work}\n\
         scan:\n\
         dec ecx\n\
         cmp ecx, 0\n\
         jne scan\n\
         mov eax, {value}\n\
         ret\n"
    );
    let obj = asm86::Assembler::assemble(&src).expect("working version image assembles");
    vec![ModuleImage::new(name, obj, &["entry"])]
}

/// The module image set for a faulty version: every invocation stores
/// outside its segment, faults, and strikes toward quarantine — the
/// "bad push" a canary exists to catch.
pub fn faulty_images(name: &str) -> Vec<ModuleImage> {
    vec![ModuleImage::new(
        name,
        gen::store_to_object(0x0020_0000),
        &["entry"],
    )]
}
