//! The crash-recovery drill: kill a replica mid-stream and prove the
//! fleet recovers from durable checkpoints, never from luck.
//!
//! The drill runs a serving fleet with periodic per-replica checkpoints
//! (a lineage of image generations per replica). At a configured round
//! the victim replica "host-crashes": its in-memory world is dropped on
//! the floor, exactly as a power cut would. Recovery then walks the
//! checkpoint lineage newest-first — optionally with the newest
//! generations corrupted by the chaos injectors, the way real storage
//! fails — restoring the first image whose integrity checks pass.
//! Corrupt images are rejected with typed errors and the walk-back is
//! bounded; if every retained generation is damaged the replica
//! cold-boots. Throughout, the fleet degrades gracefully: the victim's
//! requests are answered 503 while it is down, healthy replicas keep
//! serving, and *zero* requests are dropped on healthy replicas.
//!
//! Determinism is the usual fleet contract: replicas fan across a
//! [`parex::Pool`] and every drill decision — including which checkpoint
//! generation recovers — is made serially from merged state, so the
//! report is byte-identical for every `jobs` value.

use chaos::corrupt;
use palladium::supervisor::{ModuleImage, RestartPolicy};
use seedrng::SeedRng;

use crate::replica::Replica;

/// Crash-recovery drill parameters.
#[derive(Debug, Clone)]
pub struct DrillConfig {
    /// Master seed; replica `i` draws from `SeedRng::stream(seed, i)`,
    /// and checkpoint corruption draws from a stream derived from it.
    pub seed: u64,
    /// Fleet size.
    pub replicas: u32,
    /// Total rounds to run.
    pub rounds: u32,
    /// Requests per replica per round.
    pub requests_per_round: u32,
    /// Rounds between checkpoints (every replica checkpoints on the
    /// same cadence; clamped to at least 1).
    pub checkpoint_every: u32,
    /// Round at whose start the victim's world is destroyed.
    pub crash_round: u32,
    /// Replica index that crashes.
    pub victim: u32,
    /// Newest checkpoint generations corrupted before recovery (the
    /// torn-write / bit-rot scenario that forces lineage walk-back).
    pub corrupt_latest: u32,
    /// Maximum lineage generations tried before giving up and
    /// cold-booting (bounded retries; clamped to at least 1).
    pub max_walkback: u32,
    /// Supervisor restart policy for every replica.
    pub policy: RestartPolicy,
    /// CPU-time limit per extension invocation.
    pub cycle_limit: u64,
    /// Simulator predecode fast path (host-performance knob only).
    pub predecode: bool,
    /// Worker threads to fan replicas across (any value is
    /// byte-identical).
    pub jobs: usize,
    /// Boot the fleet by forking one template replica.
    pub fork_boot: bool,
    /// Directory to persist every checkpoint image into
    /// (`replica<i>-gen<g>.pdim`), created if missing. `None` keeps the
    /// lineage in memory only. Persisting never changes the report —
    /// the drill recovers from the in-memory lineage either way.
    pub persist_dir: Option<String>,
}

impl Default for DrillConfig {
    fn default() -> DrillConfig {
        DrillConfig {
            seed: 1,
            replicas: 4,
            rounds: 18,
            requests_per_round: 40,
            checkpoint_every: 3,
            crash_round: 10,
            victim: 1,
            corrupt_latest: 0,
            max_walkback: 3,
            policy: RestartPolicy::default(),
            cycle_limit: 20_000,
            predecode: true,
            jobs: 1,
            fork_boot: true,
            persist_dir: None,
        }
    }
}

/// How the drill's recovery ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrillOutcome {
    /// The victim restored from its newest intact checkpoint.
    Restored,
    /// Restore succeeded only after walking back past corrupt
    /// generations.
    RestoredAfterWalkback,
    /// Every tried generation was rejected; the victim cold-booted.
    ColdBooted,
}

impl DrillOutcome {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            DrillOutcome::Restored => "restored",
            DrillOutcome::RestoredAfterWalkback => "restored-after-walkback",
            DrillOutcome::ColdBooted => "cold-booted",
        }
    }
}

/// The full deterministic record of one crash-recovery drill.
#[derive(Debug, Clone, PartialEq)]
pub struct DrillReport {
    /// Seed the run was derived from.
    pub seed: u64,
    /// Fleet size.
    pub replicas: u32,
    /// Rounds executed.
    pub rounds: u32,
    /// Requests per replica per round.
    pub requests_per_round: u32,
    /// Checkpoint cadence in rounds.
    pub checkpoint_every: u32,
    /// Round the victim crashed.
    pub crash_round: u32,
    /// Victim replica index.
    pub victim: u32,
    /// Checkpoint generations deliberately corrupted before recovery.
    pub corrupted_generations: u32,
    /// Generations rejected (with typed errors) before one restored.
    pub generations_walked: u32,
    /// Lineage generation that restored (newest = highest), if any.
    pub recovered_generation: Option<u32>,
    /// How recovery ended.
    pub outcome: DrillOutcome,
    /// Requests answered 503 on the victim's behalf while it was down
    /// (graceful degradation — never dropped, never a fleet outage).
    pub recovery_degraded: u64,
    /// Rounds from the crash until the victim again served a fully
    /// healthy round (its time-to-converge), if it did.
    pub rounds_to_converge: Option<u32>,
    /// Checkpoint images written across the run.
    pub checkpoints_written: u32,
    /// Largest checkpoint image, in bytes.
    pub largest_image_bytes: usize,
    /// Fleet-wide request totals (includes `recovery_degraded`).
    pub served: u64,
    /// Fleet-wide 503 total.
    pub degraded: u64,
    /// Fleet-wide fail-closed drops.
    pub dropped: u64,
    /// Requests dropped on replicas *other than* the victim — must be 0:
    /// a drill must never cost a healthy replica a request.
    pub healthy_replica_drops: u64,
    /// The drill's event log, one line per decision.
    pub events: Vec<String>,
    /// Containment violations across the fleet (must be empty).
    pub violations: Vec<String>,
    /// Ledger-audit failures across the fleet (must be empty).
    pub leak_failures: Vec<String>,
    /// Guest instructions retired across every replica.
    pub guest_insns: u64,
}

/// Runs a crash-recovery drill over a fleet serving `images`.
pub fn run(cfg: &DrillConfig, images: &[ModuleImage]) -> DrillReport {
    let pool = parex::Pool::new(cfg.jobs);
    let n = cfg.replicas.max(1);
    let victim = cfg.victim.min(n - 1) as usize;
    let every = cfg.checkpoint_every.max(1);

    let boot = |idx: u32| {
        Replica::new(
            cfg.seed,
            idx,
            images.to_vec(),
            cfg.policy,
            cfg.cycle_limit,
            cfg.predecode,
        )
    };
    let template = if cfg.fork_boot { boot(0).ok() } else { None };
    let mut reps: Vec<Replica> = pool
        .run_ordered((0..n).collect(), |_, i| match &template {
            Some(t) => Ok(t.fork_as(cfg.seed, i)),
            None => boot(i),
        })
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("replica boot is deterministic and must succeed");

    // Per-replica checkpoint lineage, oldest generation first.
    let mut lineage: Vec<Vec<Vec<u8>>> = vec![Vec::new(); n as usize];
    let mut events = Vec::new();
    let mut checkpoints_written = 0u32;
    let mut largest_image_bytes = 0usize;
    let mut recovery_degraded = 0u64;
    let mut generations_walked = 0u32;
    let mut corrupted_generations = 0u32;
    let mut recovered_generation = None;
    let mut outcome = DrillOutcome::Restored;
    let mut crashed = false;
    let mut rounds_to_converge = None;

    for round in 0..cfg.rounds {
        // --- the crash: the victim's world vanishes ---------------------
        if round == cfg.crash_round {
            crashed = true;
            events.push(format!(
                "round {round}: replica {victim} crashed (world dropped, \
                 {} checkpoint generations retained)",
                lineage[victim].len()
            ));

            // Storage damage: the newest `corrupt_latest` generations are
            // corrupted by the chaos injectors, seeded so the drill is
            // replayable bit-for-bit.
            let mut crng = SeedRng::new(cfg.seed ^ 0xD811_C0DE);
            let gens = lineage[victim].len();
            for back in 0..cfg.corrupt_latest.min(gens as u32) {
                let g = gens - 1 - back as usize;
                let (kind, bad) = corrupt::corrupted_image(&lineage[victim][g], &mut crng);
                lineage[victim][g] = bad;
                corrupted_generations += 1;
                events.push(format!(
                    "round {round}: checkpoint gen {g} damaged on disk ({})",
                    kind.tag()
                ));
            }

            // Recovery: walk the lineage newest-first, bounded retries,
            // typed rejection on every corrupt image.
            let mut restored = None;
            for (walked, g) in (0..gens)
                .rev()
                .take(cfg.max_walkback.max(1) as usize)
                .enumerate()
            {
                match Replica::restore(&lineage[victim][g]) {
                    Ok(r) => {
                        events.push(format!(
                            "round {round}: replica {victim} restored from gen {g} \
                             ({} rounds of state)",
                            r.rounds_served()
                        ));
                        recovered_generation = Some(g as u32);
                        generations_walked = walked as u32;
                        restored = Some(r);
                        break;
                    }
                    Err(e) => {
                        generations_walked = walked as u32 + 1;
                        events.push(format!("round {round}: checkpoint gen {g} rejected ({e})"));
                    }
                }
            }
            match restored {
                Some(r) => {
                    outcome = if generations_walked == 0 {
                        DrillOutcome::Restored
                    } else {
                        DrillOutcome::RestoredAfterWalkback
                    };
                    reps[victim] = r;
                }
                None => {
                    outcome = DrillOutcome::ColdBooted;
                    events.push(format!(
                        "round {round}: no intact checkpoint within walk-back budget; \
                         replica {victim} cold-booting"
                    ));
                    reps[victim] =
                        boot(victim as u32).expect("cold boot is deterministic and must succeed");
                }
            }

            // The round the crash consumed: the front end answers the
            // victim's share 503 — degraded, never dropped, never an
            // outage — while every healthy replica serves normally.
            recovery_degraded += u64::from(cfg.requests_per_round);
            pool.update_ordered(&mut reps, |i, rep| {
                if i != victim {
                    rep.serve_round(cfg.requests_per_round);
                }
            });
            continue;
        }

        pool.update_ordered(&mut reps, |_, rep| {
            rep.serve_round(cfg.requests_per_round);
        });

        if crashed && rounds_to_converge.is_none() && reps[victim].last_round.unhealthy_bp() == 0 {
            rounds_to_converge = Some(round - cfg.crash_round);
            events.push(format!(
                "round {round}: replica {victim} converged (healthy round, \
                 {} rounds after the crash)",
                round - cfg.crash_round
            ));
        }

        // --- periodic checkpoints ---------------------------------------
        if (round + 1) % every == 0 {
            for (i, rep) in reps.iter().enumerate() {
                let img = rep.checkpoint();
                largest_image_bytes = largest_image_bytes.max(img.len());
                if let Some(dir) = &cfg.persist_dir {
                    std::fs::create_dir_all(dir).expect("create checkpoint dir");
                    let path = format!("{dir}/replica{i}-gen{}.pdim", lineage[i].len());
                    std::fs::write(&path, &img).expect("persist checkpoint image");
                }
                lineage[i].push(img);
                checkpoints_written += 1;
            }
            events.push(format!(
                "round {round}: fleet checkpointed (gen {})",
                lineage[victim].len() - 1
            ));
        }
    }

    for (i, rep) in reps.iter_mut().enumerate() {
        rep.audit_leaks(&format!("replica {i} end-of-run"));
    }

    let mut report = DrillReport {
        seed: cfg.seed,
        replicas: n,
        rounds: cfg.rounds,
        requests_per_round: cfg.requests_per_round,
        checkpoint_every: every,
        crash_round: cfg.crash_round,
        victim: victim as u32,
        corrupted_generations,
        generations_walked,
        recovered_generation,
        outcome,
        recovery_degraded,
        rounds_to_converge,
        checkpoints_written,
        largest_image_bytes,
        served: 0,
        degraded: recovery_degraded,
        dropped: 0,
        healthy_replica_drops: 0,
        events,
        violations: Vec::new(),
        leak_failures: Vec::new(),
        guest_insns: 0,
    };
    for (i, rep) in reps.iter().enumerate() {
        report.served += rep.stats.served;
        report.degraded += rep.stats.degraded;
        report.dropped += rep.stats.dropped;
        if i != victim {
            report.healthy_replica_drops += rep.stats.dropped;
        }
        report.guest_insns += rep.k.m.insns();
        report
            .violations
            .extend(rep.violations.iter().map(|v| format!("replica {i}: {v}")));
        report.leak_failures.extend(rep.leak_failures.clone());
    }
    report
}
