//! The SLO monitor: the trip conditions that turn a canary's bad round
//! into an automatic rollback.

use crate::replica::Replica;

/// Trip thresholds evaluated against the canary (and each wave member)
/// after every round.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SloPolicy {
    /// Maximum tolerated degraded+dropped share of one round, in basis
    /// points (10_000 = 100%). Integer basis points keep the evaluation
    /// byte-deterministic.
    pub max_degraded_bp: u32,
    /// Maximum tolerated charged restart strikes on the supervised
    /// extension (the supervisor decays these under healthy operation,
    /// so a persistent crash loop trips while a forgiven ancient strike
    /// does not).
    pub max_strikes: u32,
}

impl Default for SloPolicy {
    fn default() -> SloPolicy {
        SloPolicy {
            // One degraded request in ten trips the monitor.
            max_degraded_bp: 1_000,
            max_strikes: 3,
        }
    }
}

/// The monitor's verdict for one replica after one round.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloVerdict {
    /// Within budget.
    Healthy,
    /// Out of budget; the stable tag names the first condition that
    /// tripped (`containment` > `strikes` > `error-rate`).
    Tripped(&'static str),
}

impl SloPolicy {
    /// Evaluates one replica's most recent round.
    ///
    /// Containment is checked first — a violation fails closed
    /// regardless of error budget — then the strike count, then the
    /// round's degraded share.
    pub fn evaluate(&self, replica: &Replica) -> SloVerdict {
        if !replica.violations.is_empty() || replica.failed_closed() {
            return SloVerdict::Tripped("containment");
        }
        if replica.sup.charged_restarts(replica.ext) >= self.max_strikes {
            return SloVerdict::Tripped("strikes");
        }
        // `unhealthy_bp` counts 503s and fail-closed drops alike; any
        // dropped request also tripped `containment` above, so in
        // practice this arm reads the degraded share of the round.
        if replica.last_round.unhealthy_bp() > self.max_degraded_bp {
            return SloVerdict::Tripped("error-rate");
        }
        SloVerdict::Healthy
    }
}
