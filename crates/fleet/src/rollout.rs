//! The canaried rollout driver: canary → soak → waves → converge, with
//! SLO-driven automatic rollback.
//!
//! One round = every replica serves a fixed batch of requests (fanned
//! across the worker pool, merged in replica order), then the
//! controller makes its decisions serially from the merged state:
//! upgrade the canary, watch it soak, promote wave by wave, or roll
//! everything back the moment the SLO monitor trips. Because the
//! controller only ever reads post-merge state, the entire run — event
//! log included — is byte-identical for every `jobs` value.

use palladium::supervisor::{ModuleImage, RestartPolicy, SupervisedState};

use crate::replica::Replica;
use crate::slo::{SloPolicy, SloVerdict};

/// Rollout parameters.
#[derive(Debug, Clone)]
pub struct RolloutConfig {
    /// Master seed; replica `i` draws from `SeedRng::stream(seed, i)`.
    pub seed: u64,
    /// Fleet size (replica 0 is the canary).
    pub replicas: u32,
    /// Total rounds to run.
    pub rounds: u32,
    /// Requests per replica per round.
    pub requests_per_round: u32,
    /// Round at which the canary switches to the new version.
    pub canary_round: u32,
    /// Rounds the canary must stay within SLO before waves proceed.
    pub soak_rounds: u32,
    /// Replicas promoted per wave once the canary has soaked.
    pub wave_size: u32,
    /// The SLO monitor's trip thresholds.
    pub slo: SloPolicy,
    /// Supervisor restart policy for every replica.
    pub policy: RestartPolicy,
    /// CPU-time limit per extension invocation.
    pub cycle_limit: u64,
    /// Simulator predecode fast path (host-performance knob only).
    pub predecode: bool,
    /// Worker threads to fan replicas across (any value is
    /// byte-identical).
    pub jobs: usize,
    /// Boot the fleet by forking one template replica (copy-on-write)
    /// instead of cold-booting every world. Host-performance knob only:
    /// replica boot is index-independent, so reports are byte-identical
    /// either way.
    pub fork_boot: bool,
}

impl Default for RolloutConfig {
    fn default() -> RolloutConfig {
        RolloutConfig {
            seed: 1,
            replicas: 6,
            rounds: 30,
            requests_per_round: 40,
            canary_round: 4,
            soak_rounds: 4,
            wave_size: 2,
            slo: SloPolicy::default(),
            policy: RestartPolicy::default(),
            cycle_limit: 20_000,
            predecode: true,
            jobs: 1,
            fork_boot: true,
        }
    }
}

/// How the rollout ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutOutcome {
    /// Every replica runs the new version.
    Promoted,
    /// The SLO monitor tripped; every upgraded replica was rolled back
    /// to the old version.
    RolledBack,
    /// The run ended mid-roll (not enough rounds to converge).
    Incomplete,
}

impl RolloutOutcome {
    /// Stable tag for reports.
    pub fn tag(&self) -> &'static str {
        match self {
            RolloutOutcome::Promoted => "promoted",
            RolloutOutcome::RolledBack => "rolled-back",
            RolloutOutcome::Incomplete => "incomplete",
        }
    }
}

/// Per-replica summary, in replica order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaSummary {
    /// Replica index (0 = canary).
    pub idx: u32,
    /// Requests answered 200 / 503 / dropped fail-closed.
    pub served: u64,
    /// Requests answered 503.
    pub degraded: u64,
    /// Requests dropped fail-closed.
    pub dropped: u64,
    /// Supervised restarts completed on this replica.
    pub restarts: u64,
    /// Operator-driven generation switches (upgrades + rollbacks).
    pub rollovers: u64,
    /// Kernel pages reclaimed through ledgers.
    pub pages_reclaimed: u64,
    /// Image generation the replica ended on.
    pub final_gen: u64,
    /// Final lifecycle state tag.
    pub final_state: &'static str,
    /// Containment violations observed (must be 0 in a clean roll).
    pub violations: usize,
}

/// The full deterministic record of one rollout.
#[derive(Debug, Clone, PartialEq)]
pub struct RolloutReport {
    /// Seed the run was derived from.
    pub seed: u64,
    /// Fleet size.
    pub replicas: u32,
    /// Rounds executed.
    pub rounds: u32,
    /// Requests per replica per round.
    pub requests_per_round: u32,
    /// The controller's event log, one line per decision.
    pub events: Vec<String>,
    /// Per-replica summaries, in replica order.
    pub per_replica: Vec<ReplicaSummary>,
    /// Fleet-wide request totals.
    pub served: u64,
    /// Fleet-wide 503 total.
    pub degraded: u64,
    /// Fleet-wide fail-closed drops.
    pub dropped: u64,
    /// Round the canary was upgraded.
    pub canary_round: u32,
    /// Round the rollback fired, if it did.
    pub rollback_round: Option<u32>,
    /// Simulated cycles on the canary's clock from its upgrade to the
    /// completed rollback.
    pub rollback_latency_cycles: Option<u64>,
    /// First round at which the fleet converged (all replicas healthy on
    /// the final version).
    pub converged_round: Option<u32>,
    /// How the roll ended.
    pub outcome: RolloutOutcome,
    /// Containment violations across the fleet (must be empty).
    pub violations: Vec<String>,
    /// Ledger-audit failures across the fleet (must be empty).
    pub leak_failures: Vec<String>,
    /// Guest instructions retired across every replica.
    pub guest_insns: u64,
}

/// Runs a canaried rollout of `new` over a fleet currently running
/// `old`.
pub fn run(cfg: &RolloutConfig, old: &[ModuleImage], new: &[ModuleImage]) -> RolloutReport {
    let pool = parex::Pool::new(cfg.jobs);
    let n = cfg.replicas.max(1);

    // Boot the fleet: either fork replica worlds off one template
    // (microsecond copy-on-write boot) or cold-boot each one. Boot is
    // index-independent, so both paths yield byte-identical fleets.
    let template = if cfg.fork_boot {
        Replica::new(
            cfg.seed,
            0,
            old.to_vec(),
            cfg.policy,
            cfg.cycle_limit,
            cfg.predecode,
        )
        .ok()
    } else {
        None
    };
    let mut reps: Vec<Replica> = pool
        .run_ordered((0..n).collect(), |_, i| match &template {
            Some(t) => Ok(t.fork_as(cfg.seed, i)),
            None => Replica::new(
                cfg.seed,
                i,
                old.to_vec(),
                cfg.policy,
                cfg.cycle_limit,
                cfg.predecode,
            ),
        })
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("replica boot is deterministic and must succeed");

    let mut events = Vec::new();
    let mut upgraded = vec![false; n as usize];
    let mut rolled_back = false;
    let mut canary_up_cycles = None;
    let mut rollback_round = None;
    let mut rollback_latency_cycles = None;
    let mut converged_round = None;

    let switch = |rep: &mut Replica, images: &[ModuleImage]| {
        rep.sup.stage_images(rep.ext, images.to_vec());
        rep.sup.rollover(&mut rep.k, &mut rep.kx, rep.ext)
    };

    for round in 0..cfg.rounds {
        pool.update_ordered(&mut reps, |_, rep| {
            rep.serve_round(cfg.requests_per_round);
        });

        // --- controller decisions, serial over the merged state ---------

        if round == cfg.canary_round && !rolled_back {
            let rep = &mut reps[0];
            match switch(rep, new) {
                Ok(_) => events.push(format!(
                    "round {round}: canary replica 0 -> new version (gen {})",
                    rep.sup.running_generation(rep.ext)
                )),
                Err(e) => events.push(format!("round {round}: canary switch failed: {e}")),
            }
            canary_up_cycles = Some(rep.k.m.cycles());
            upgraded[0] = true;
        }

        // SLO watch over every replica already on the new version.
        if !rolled_back && round >= cfg.canary_round {
            let mut trip = None;
            for (i, rep) in reps.iter().enumerate() {
                if !upgraded[i] {
                    continue;
                }
                if let SloVerdict::Tripped(why) = cfg.slo.evaluate(rep) {
                    trip = Some((i, why));
                    break;
                }
            }
            if let Some((i, why)) = trip {
                events.push(format!("round {round}: SLO tripped on replica {i} ({why})"));
                for (j, rep) in reps.iter_mut().enumerate() {
                    if !upgraded[j] {
                        continue;
                    }
                    match switch(rep, old) {
                        Ok(_) => events.push(format!(
                            "round {round}: rollback replica {j} -> old version (gen {})",
                            rep.sup.running_generation(rep.ext)
                        )),
                        Err(e) => {
                            events.push(format!("round {round}: rollback replica {j} failed: {e}"))
                        }
                    }
                    upgraded[j] = false;
                }
                rolled_back = true;
                rollback_round = Some(round);
                rollback_latency_cycles =
                    canary_up_cycles.map(|up| reps[0].k.m.cycles().saturating_sub(up));
            }
        }

        // Waves: once the canary has soaked clean, promote the rest.
        if !rolled_back
            && round >= cfg.canary_round + cfg.soak_rounds
            && upgraded.iter().any(|&u| u)
            && !upgraded.iter().all(|&u| u)
        {
            let mut promoted = 0;
            for j in 0..n as usize {
                if upgraded[j] {
                    continue;
                }
                match switch(&mut reps[j], new) {
                    Ok(_) => events.push(format!(
                        "round {round}: wave promotes replica {j} -> new version (gen {})",
                        reps[j].sup.running_generation(reps[j].ext)
                    )),
                    Err(e) => events.push(format!("round {round}: wave replica {j} failed: {e}")),
                }
                upgraded[j] = true;
                promoted += 1;
                if promoted == cfg.wave_size {
                    break;
                }
            }
        }

        // Convergence: all replicas healthy on the roll's final version.
        if converged_round.is_none() {
            let target_reached = if rolled_back {
                upgraded.iter().all(|&u| !u)
            } else {
                upgraded.iter().all(|&u| u)
            };
            let all_healthy = reps.iter().all(|rep| {
                rep.sup.state(rep.ext) == SupervisedState::Running
                    && rep.sup.running_generation(rep.ext) == rep.sup.staged_generation(rep.ext)
            });
            if target_reached && all_healthy && (rolled_back || round >= cfg.canary_round) {
                converged_round = Some(round);
                events.push(format!(
                    "round {round}: fleet converged ({})",
                    if rolled_back {
                        "old version everywhere"
                    } else {
                        "new version everywhere"
                    }
                ));
            }
        }
    }

    // Final epoch audit: the ledgers must balance on every replica.
    for (i, rep) in reps.iter_mut().enumerate() {
        rep.audit_leaks(&format!("replica {i} end-of-run"));
    }

    let outcome = if rolled_back {
        RolloutOutcome::RolledBack
    } else if converged_round.is_some() {
        RolloutOutcome::Promoted
    } else {
        RolloutOutcome::Incomplete
    };

    let mut report = RolloutReport {
        seed: cfg.seed,
        replicas: n,
        rounds: cfg.rounds,
        requests_per_round: cfg.requests_per_round,
        events,
        per_replica: Vec::new(),
        served: 0,
        degraded: 0,
        dropped: 0,
        canary_round: cfg.canary_round,
        rollback_round,
        rollback_latency_cycles,
        converged_round,
        outcome,
        violations: Vec::new(),
        leak_failures: Vec::new(),
        guest_insns: 0,
    };
    for (i, rep) in reps.iter().enumerate() {
        report.served += rep.stats.served;
        report.degraded += rep.stats.degraded;
        report.dropped += rep.stats.dropped;
        report.guest_insns += rep.k.m.insns();
        report
            .violations
            .extend(rep.violations.iter().map(|v| format!("replica {i}: {v}")));
        report.leak_failures.extend(rep.leak_failures.clone());
        report.per_replica.push(ReplicaSummary {
            idx: i as u32,
            served: rep.stats.served,
            degraded: rep.stats.degraded,
            dropped: rep.stats.dropped,
            restarts: rep.sup.restarts,
            rollovers: rep.sup.rollovers,
            pages_reclaimed: rep.sup.pages_reclaimed,
            final_gen: rep.sup.running_generation(rep.ext),
            final_state: match rep.sup.state(rep.ext) {
                SupervisedState::Running => "running",
                SupervisedState::Backoff { .. } => "backoff",
                SupervisedState::Tombstoned => "tombstoned",
            },
            violations: rep.violations.len(),
        });
    }
    report
}
