//! Long-soak churn campaigns: sustained load with periodic kill /
//! upgrade / bad-push / rollback churn, auditing the resource ledgers
//! at every epoch boundary.
//!
//! The soak is the leak hunter: a single kill-restart cycle that leaks
//! one page is invisible to a short test, but 10^7+ guest instructions
//! of churn drift the ledger audit far out of balance. Every epoch ends
//! with `assert_no_leaks` on every replica; any failure is recorded and
//! fails the run.

use palladium::supervisor::{RestartPolicy, SupervisedState};
use seedrng::SeedRng;

use crate::replica::Replica;
use crate::{faulty_images, working_version_images};

/// Soak parameters.
#[derive(Debug, Clone)]
pub struct SoakConfig {
    /// Master seed.
    pub seed: u64,
    /// Fleet size.
    pub replicas: u32,
    /// Epochs (each ends with a full-fleet leak audit).
    pub epochs: u32,
    /// Rounds per epoch; each round ends with one churn action.
    pub rounds_per_epoch: u32,
    /// Requests per replica per round.
    pub requests_per_round: u32,
    /// Handler work-loop iterations per request (see
    /// [`working_version_images`]); the knob that scales guest
    /// instructions per request.
    pub work_per_request: u32,
    /// CPU-time limit per extension invocation.
    pub cycle_limit: u64,
    /// Simulator predecode fast path.
    pub predecode: bool,
    /// Worker threads (any value is byte-identical).
    pub jobs: usize,
    /// Boot the fleet by forking one template replica (copy-on-write)
    /// instead of cold-booting every world. Host-performance knob only;
    /// reports are byte-identical either way.
    pub fork_boot: bool,
}

impl Default for SoakConfig {
    fn default() -> SoakConfig {
        SoakConfig {
            seed: 1,
            replicas: 4,
            epochs: 8,
            rounds_per_epoch: 12,
            requests_per_round: 30,
            work_per_request: 320,
            cycle_limit: 20_000,
            predecode: true,
            jobs: 1,
            fork_boot: true,
        }
    }
}

/// Soak results.
#[derive(Debug, Clone, PartialEq)]
pub struct SoakReport {
    /// Seed the run was derived from.
    pub seed: u64,
    /// Fleet size.
    pub replicas: u32,
    /// Epochs completed.
    pub epochs: u32,
    /// Rounds per epoch.
    pub rounds_per_epoch: u32,
    /// Requests per replica per round.
    pub requests_per_round: u32,
    /// Fleet-wide request totals.
    pub served: u64,
    /// Fleet-wide 503 total.
    pub degraded: u64,
    /// Fleet-wide fail-closed drops.
    pub dropped: u64,
    /// Kill actions performed.
    pub kills: u64,
    /// Version upgrades staged and rolled over.
    pub upgrades: u64,
    /// Rollbacks to the last known-good version.
    pub rollbacks: u64,
    /// Supervised restarts across the fleet.
    pub restarts: u64,
    /// Kernel pages reclaimed through ledgers.
    pub pages_reclaimed: u64,
    /// Guest instructions retired across the fleet (the "10^7+ steps"
    /// scale metric).
    pub guest_insns: u64,
    /// Containment violations (must be empty).
    pub violations: Vec<String>,
    /// Epoch leak-audit failures (must be empty).
    pub leak_failures: Vec<String>,
}

/// Per-replica version bookkeeping for the churn controller.
struct VersionState {
    /// Value of the last known-good version.
    good: u32,
    /// Whether the currently staged version is the faulty push.
    on_bad: bool,
}

/// Runs a soak campaign.
///
/// Replica worlds shard across the pool per round; churn decisions come
/// from one dedicated controller stream (`SeedRng::stream(seed,
/// u64::MAX)`) drawn serially between rounds, so the action sequence —
/// like everything else — is independent of the worker count.
pub fn run(cfg: &SoakConfig) -> SoakReport {
    let pool = parex::Pool::new(cfg.jobs);
    let n = cfg.replicas.max(1);

    let images_for = |value: u32| working_version_images("flt", value, cfg.work_per_request);

    // Fork the fleet off one template world when `fork_boot` is on;
    // boot is index-independent, so the fleet is byte-identical to a
    // cold-booted one.
    let template = if cfg.fork_boot {
        Replica::new(
            cfg.seed,
            0,
            images_for(100),
            RestartPolicy::default(),
            cfg.cycle_limit,
            cfg.predecode,
        )
        .ok()
    } else {
        None
    };
    let mut reps: Vec<Replica> = pool
        .run_ordered((0..n).collect(), |_, i| match &template {
            Some(t) => Ok(t.fork_as(cfg.seed, i)),
            None => Replica::new(
                cfg.seed,
                i,
                images_for(100),
                RestartPolicy::default(),
                cfg.cycle_limit,
                cfg.predecode,
            ),
        })
        .into_iter()
        .collect::<Result<_, _>>()
        .expect("replica boot is deterministic and must succeed");

    let mut ctrl = SeedRng::stream(cfg.seed, u64::MAX);
    let mut versions: Vec<VersionState> = (0..n)
        .map(|_| VersionState {
            good: 100,
            on_bad: false,
        })
        .collect();

    let mut report = SoakReport {
        seed: cfg.seed,
        replicas: n,
        epochs: cfg.epochs,
        rounds_per_epoch: cfg.rounds_per_epoch,
        requests_per_round: cfg.requests_per_round,
        served: 0,
        degraded: 0,
        dropped: 0,
        kills: 0,
        upgrades: 0,
        rollbacks: 0,
        restarts: 0,
        pages_reclaimed: 0,
        guest_insns: 0,
        violations: Vec::new(),
        leak_failures: Vec::new(),
    };

    for epoch in 0..cfg.epochs {
        for _round in 0..cfg.rounds_per_epoch {
            pool.update_ordered(&mut reps, |_, rep| {
                rep.serve_round(cfg.requests_per_round);
            });

            // One churn action per round, drawn from the controller
            // stream over the merged fleet state.
            let target = ctrl.gen_range(0, n) as usize;
            match ctrl.gen_range(0, 6) {
                // Kill: destroy the live segment out from under the
                // supervisor; it must reclaim through the ledger and
                // restart on the backoff clock.
                0 | 1 => {
                    let rep = &mut reps[target];
                    if rep.sup.state(rep.ext) == SupervisedState::Running {
                        let seg = rep.sup.segment(rep.ext);
                        rep.kx.destroy_segment(&mut rep.k, seg);
                        rep.sup.notify_death(&mut rep.k, &mut rep.kx, rep.ext);
                        report.kills += 1;
                    }
                }
                // Upgrade: stage the next benign version and roll over.
                2 | 3 => {
                    versions[target].good += 1;
                    versions[target].on_bad = false;
                    let images = images_for(versions[target].good);
                    let rep = &mut reps[target];
                    rep.sup.stage_images(rep.ext, images);
                    let _ = rep.sup.rollover(&mut rep.k, &mut rep.kx, rep.ext);
                    report.upgrades += 1;
                }
                // Bad push: a faulty version goes out (it will strike and
                // quarantine under load, possibly all the way to a
                // tombstone)...
                4 => {
                    versions[target].on_bad = true;
                    let rep = &mut reps[target];
                    rep.sup.stage_images(rep.ext, faulty_images("flt"));
                    let _ = rep.sup.rollover(&mut rep.k, &mut rep.kx, rep.ext);
                    report.upgrades += 1;
                }
                // ...and rollback restores the last known-good version on
                // the first replica still serving a bad push — including
                // reviving a tombstoned lineage, since the rollback
                // stages a different generation.
                _ => {
                    if let Some(bad) = versions.iter().position(|v| v.on_bad) {
                        versions[bad].on_bad = false;
                        let images = images_for(versions[bad].good);
                        let rep = &mut reps[bad];
                        rep.sup.stage_images(rep.ext, images);
                        let _ = rep.sup.rollover(&mut rep.k, &mut rep.kx, rep.ext);
                        report.rollbacks += 1;
                    }
                }
            }
        }

        // The epoch boundary: zero ledger drift, on every replica.
        for (i, rep) in reps.iter_mut().enumerate() {
            rep.audit_leaks(&format!("epoch {epoch} replica {i}"));
        }
    }

    for (i, rep) in reps.iter().enumerate() {
        report.served += rep.stats.served;
        report.degraded += rep.stats.degraded;
        report.dropped += rep.stats.dropped;
        report.restarts += rep.sup.restarts;
        report.pages_reclaimed += rep.sup.pages_reclaimed;
        report.guest_insns += rep.k.m.insns();
        report
            .violations
            .extend(rep.violations.iter().map(|v| format!("replica {i}: {v}")));
        report.leak_failures.extend(rep.leak_failures.clone());
    }
    report
}
