//! Durable world images: a versioned, integrity-checked binary format.
//!
//! A checkpoint crosses a protection boundary in exactly the sense of the
//! paper: the restore path ingests bytes that may have been corrupted (a
//! torn write, a flipped bit on disk, an attacker) and must *verify or
//! reject* them — never silently restore. The format is therefore built
//! for detection, not compactness:
//!
//! ```text
//! magic[4] version:u32 kind:u32 meta_len:u32 meta[..] nsec:u32
//!   ( id:u32 len:u32 payload[len] crc32(payload) )*   // ids strictly ascending
//! crc32(everything above)
//! ```
//!
//! * the **magic/version/kind** header rejects foreign bytes and version
//!   skew with typed errors before anything is interpreted;
//! * every section carries a **CRC32 over its payload** — a bit flip
//!   anywhere in a payload is caught section-locally;
//! * section ids must be **strictly ascending** — transposed or replayed
//!   sections are a structural error, not a silent reorder;
//! * a trailing **whole-image CRC32** covers every preceding byte —
//!   torn writes and header tampering fail even when each section
//!   happens to look self-consistent;
//! * all lengths are bounds-checked while walking, so truncation is a
//!   typed error, never a panic or an out-of-bounds read.
//!
//! Decoding of section payloads goes through [`Dec`], which bounds-checks
//! every read and rejects trailing bytes, so a malformed payload that
//! passed its CRC (i.e. a buggy or malicious *writer*) still yields a
//! typed [`RestoreError`], never a partially-initialized world.
//!
//! What is deliberately **not** in an image: predecode caches, page
//! translation memos, execution traces, and per-frame store/code
//! generations. All of it is host-side derived state, rebuilt on demand;
//! the memo/stat accounting is constructed so its absence is invisible
//! (memo hits count as TLB hits, predecode is a host knob). The
//! differential tests assert a restored world is cycle/stat/fault
//! byte-identical going forward.

use core::fmt;

use crate::desc::{CallGate, CodeSeg, DataSeg, Descriptor, DescriptorTable, Selector};
use crate::fault::{Fault, FaultCause, Vector};
use crate::machine::{Cpu, Flags, SegCache};

/// Image magic: "PDIM" (PallaDium IMage).
pub const MAGIC: [u8; 4] = *b"PDIM";

/// Current format version. Bumped on any incompatible layout change; a
/// mismatch is a typed [`RestoreError::Version`], never a guess.
pub const VERSION: u32 = 1;

/// Image kinds: which layer's state an image carries. Restoring an image
/// of the wrong kind is rejected ([`RestoreError::Kind`]) — a kernel
/// image is not a machine image even when every CRC passes.
pub mod kind {
    /// A bare [`crate::Machine`] world.
    pub const MACHINE: u32 = 1;
    /// A hosting kernel (machine + task table + allocator).
    pub const KERNEL: u32 = 2;
    /// A Palladium session (kernel + extensible application).
    pub const SESSION: u32 = 3;
    /// A fleet replica (session + kernel extensions + supervisor).
    pub const REPLICA: u32 = 4;
}

/// Why an image was rejected. Every corruption class maps to a variant:
/// bit flips to `SectionCrc`/`ImageCrc`, truncation to `Truncated`, torn
/// writes to `ImageCrc`/`SectionOrder`, transposed sections to
/// `SectionOrder`, version skew to `Version`, and writer bugs to
/// `Malformed`/`MissingSection`/`TrailingBytes`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RestoreError {
    /// The bytes do not begin with the image magic.
    BadMagic,
    /// The format version is not the one this build reads.
    Version {
        /// Version found in the image.
        found: u32,
        /// Version this build supports.
        supported: u32,
    },
    /// The image is of a different layer's kind.
    Kind {
        /// Kind found in the image.
        found: u32,
        /// Kind the caller required.
        expected: u32,
    },
    /// The image ends before the structure it promises.
    Truncated {
        /// Which part ran out of bytes.
        section: &'static str,
    },
    /// Section ids are not strictly ascending (transposed or duplicated
    /// sections).
    SectionOrder {
        /// The offending section id.
        id: u32,
    },
    /// A section payload fails its CRC32.
    SectionCrc {
        /// The offending section id.
        id: u32,
    },
    /// The whole-image trailer CRC32 fails (torn write or header
    /// tampering).
    ImageCrc,
    /// Bytes remain after the structure ended.
    TrailingBytes {
        /// Which part had leftover bytes.
        section: &'static str,
    },
    /// A section this kind requires is absent.
    MissingSection {
        /// The missing section's name.
        section: &'static str,
    },
    /// A section's payload decodes to out-of-range values.
    Malformed {
        /// Which section.
        section: &'static str,
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RestoreError::BadMagic => write!(f, "not a world image (bad magic)"),
            RestoreError::Version { found, supported } => {
                write!(f, "image version {found} (this build reads {supported})")
            }
            RestoreError::Kind { found, expected } => {
                write!(f, "image kind {found} where kind {expected} was required")
            }
            RestoreError::Truncated { section } => write!(f, "image truncated in {section}"),
            RestoreError::SectionOrder { id } => {
                write!(f, "section {id} out of order (transposed or duplicated)")
            }
            RestoreError::SectionCrc { id } => write!(f, "section {id} failed its CRC32"),
            RestoreError::ImageCrc => write!(f, "whole-image CRC32 mismatch (torn write?)"),
            RestoreError::TrailingBytes { section } => {
                write!(f, "trailing bytes after {section}")
            }
            RestoreError::MissingSection { section } => {
                write!(f, "required section {section} missing")
            }
            RestoreError::Malformed { section, detail } => {
                write!(f, "malformed {section}: {detail}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// IEEE CRC32 (the PNG/zlib polynomial), table-driven, hand-rolled so the
/// workspace stays dependency-free.
pub fn crc32(bytes: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc32_table();
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Little-endian byte-stream encoder for section payloads.
#[derive(Debug, Default)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// An empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian i32.
    pub fn i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a bool as one byte (0 or 1).
    pub fn bool(&mut self, v: bool) {
        self.buf.push(v as u8);
    }

    /// Appends raw bytes with no length prefix (fixed-size payloads).
    pub fn bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Appends a u32-length-prefixed byte string.
    pub fn blob(&mut self, v: &[u8]) {
        self.u32(v.len() as u32);
        self.bytes(v);
    }

    /// Appends a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) {
        self.blob(v.as_bytes());
    }

    /// Consumes the encoder, yielding the payload.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }
}

/// Bounds-checked little-endian decoder over a section payload. Every
/// read that would run past the end is a typed [`RestoreError`], and
/// [`Dec::finish`] rejects trailing bytes — a payload must decode
/// *exactly* or not at all.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
    section: &'static str,
}

impl<'a> Dec<'a> {
    /// Wraps a payload; `section` names it in error values.
    pub fn new(buf: &'a [u8], section: &'static str) -> Dec<'a> {
        Dec {
            buf,
            pos: 0,
            section,
        }
    }

    /// Builds a [`RestoreError::Malformed`] naming this section.
    pub fn fail(&self, detail: impl Into<String>) -> RestoreError {
        RestoreError::Malformed {
            section: self.section,
            detail: detail.into(),
        }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        if self.buf.len() - self.pos < n {
            return Err(RestoreError::Truncated {
                section: self.section,
            });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, RestoreError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, RestoreError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, RestoreError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn u64(&mut self) -> Result<u64, RestoreError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian i32.
    pub fn i32(&mut self) -> Result<i32, RestoreError> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a bool, rejecting anything but 0 or 1.
    pub fn bool(&mut self) -> Result<bool, RestoreError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            v => Err(self.fail(format!("bool byte {v:#x}"))),
        }
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8], RestoreError> {
        self.take(n)
    }

    /// Reads a u32-length-prefixed byte string.
    pub fn blob(&mut self) -> Result<&'a [u8], RestoreError> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    /// Reads a u32-length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<String, RestoreError> {
        let b = self.blob()?;
        String::from_utf8(b.to_vec()).map_err(|_| self.fail("non-UTF-8 string"))
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the payload was consumed exactly.
    pub fn finish(self) -> Result<(), RestoreError> {
        if self.pos != self.buf.len() {
            return Err(RestoreError::TrailingBytes {
                section: self.section,
            });
        }
        Ok(())
    }
}

/// Builds an image: header, CRC-stamped sections in ascending-id order,
/// trailing whole-image CRC.
#[derive(Debug)]
pub struct ImageBuilder {
    kind: u32,
    meta: Vec<u8>,
    body: Vec<u8>,
    nsec: u32,
    last_id: Option<u32>,
}

impl ImageBuilder {
    /// Starts an image of the given [`kind`].
    pub fn new(kind: u32) -> ImageBuilder {
        ImageBuilder {
            kind,
            meta: Vec::new(),
            body: Vec::new(),
            nsec: 0,
            last_id: None,
        }
    }

    /// Attaches opaque metadata (seed/config provenance), covered by the
    /// whole-image CRC and readable via [`ImageView::meta`].
    pub fn meta(&mut self, meta: &[u8]) {
        self.meta = meta.to_vec();
    }

    /// Appends a section. Ids must be strictly ascending.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not greater than the previous section's id —
    /// the writer controls section order and must emit it sorted.
    pub fn section(&mut self, id: u32, payload: Enc) {
        assert!(
            self.last_id.is_none_or(|last| id > last),
            "section ids must be strictly ascending (got {id})"
        );
        self.last_id = Some(id);
        let payload = payload.into_vec();
        self.body.extend_from_slice(&id.to_le_bytes());
        self.body
            .extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.body.extend_from_slice(&payload);
        self.body.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.nsec += 1;
    }

    /// Finalizes the image, stamping the trailing whole-image CRC.
    pub fn finish(self) -> Vec<u8> {
        let mut out = Vec::with_capacity(20 + self.meta.len() + self.body.len() + 4);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        out.extend_from_slice(&(self.meta.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.meta);
        out.extend_from_slice(&self.nsec.to_le_bytes());
        out.extend_from_slice(&self.body);
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        out
    }
}

/// A parsed, integrity-verified view of an image. Construction *is* the
/// verification: magic, version, kind, structural bounds, section order,
/// every section CRC and the whole-image CRC are all checked before any
/// payload byte is handed out.
#[derive(Debug)]
pub struct ImageView<'a> {
    meta: &'a [u8],
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> ImageView<'a> {
    /// Parses and verifies an image of the expected [`kind`].
    pub fn parse(bytes: &'a [u8], expected_kind: u32) -> Result<ImageView<'a>, RestoreError> {
        let header = "header";
        if bytes.len() < 4 {
            return Err(RestoreError::Truncated { section: header });
        }
        if bytes[0..4] != MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let mut d = Dec::new(bytes, header);
        let _ = d.bytes(4)?;
        let version = d.u32()?;
        if version != VERSION {
            return Err(RestoreError::Version {
                found: version,
                supported: VERSION,
            });
        }
        let found_kind = d.u32()?;
        if found_kind != expected_kind {
            return Err(RestoreError::Kind {
                found: found_kind,
                expected: expected_kind,
            });
        }
        let meta = d.blob()?;
        let nsec = d.u32()?;

        let mut sections = Vec::with_capacity(nsec as usize);
        let mut d = Dec {
            section: "section table",
            ..d
        };
        let mut last_id: Option<u32> = None;
        for _ in 0..nsec {
            let id = d.u32()?;
            if last_id.is_some_and(|last| id <= last) {
                return Err(RestoreError::SectionOrder { id });
            }
            last_id = Some(id);
            let len = d.u32()? as usize;
            let payload = d.bytes(len)?;
            let stored = d.u32()?;
            if crc32(payload) != stored {
                return Err(RestoreError::SectionCrc { id });
            }
            sections.push((id, payload));
        }

        // Exactly the 4-byte trailer must remain; it covers every
        // preceding byte (torn writes and header tampering).
        if d.remaining() < 4 {
            return Err(RestoreError::Truncated { section: "trailer" });
        }
        let stored = d.u32()?;
        d.finish()
            .map_err(|_| RestoreError::TrailingBytes { section: "trailer" })?;
        if crc32(&bytes[..bytes.len() - 4]) != stored {
            return Err(RestoreError::ImageCrc);
        }
        Ok(ImageView { meta, sections })
    }

    /// The opaque metadata the writer attached.
    pub fn meta(&self) -> &'a [u8] {
        self.meta
    }

    /// Borrows a section's payload, if present.
    pub fn section(&self, id: u32) -> Option<&'a [u8]> {
        self.sections
            .iter()
            .find(|(sid, _)| *sid == id)
            .map(|(_, p)| *p)
    }

    /// A decoder over a required section, or [`RestoreError::MissingSection`].
    pub fn require(&self, id: u32, name: &'static str) -> Result<Dec<'a>, RestoreError> {
        self.section(id)
            .map(|p| Dec::new(p, name))
            .ok_or(RestoreError::MissingSection { section: name })
    }
}

// ----- shared codecs for public x86sim types --------------------------------
//
// Layers above (the hosting kernel, Palladium, the fleet) serialize CPU
// contexts, descriptor tables and faults of their own; these helpers keep
// every image speaking one encoding.

/// Encodes a [`Descriptor`] structurally.
///
/// Structural, not via [`Descriptor::pack`]: packing is lossy for
/// byte-granular limits above 20 bits (the G-bit conversion), and a
/// checkpoint must round-trip the table the kernel actually holds.
pub fn put_descriptor(e: &mut Enc, d: &Descriptor) {
    match d {
        Descriptor::Null => e.u8(0),
        Descriptor::Code(c) => {
            e.u8(1);
            e.u32(c.base);
            e.u32(c.limit);
            e.u8(c.dpl);
            e.bool(c.readable);
            e.bool(c.conforming);
            e.bool(c.present);
        }
        Descriptor::Data(d) => {
            e.u8(2);
            e.u32(d.base);
            e.u32(d.limit);
            e.u8(d.dpl);
            e.bool(d.writable);
            e.bool(d.expand_down);
            e.bool(d.present);
        }
        Descriptor::Gate(g) => {
            e.u8(3);
            e.u16(g.selector.0);
            e.u32(g.offset);
            e.u8(g.dpl);
            e.u8(g.param_count);
            e.bool(g.present);
        }
    }
}

/// Decodes a [`Descriptor`] written by [`put_descriptor`].
pub fn get_descriptor(d: &mut Dec<'_>) -> Result<Descriptor, RestoreError> {
    Ok(match d.u8()? {
        0 => Descriptor::Null,
        1 => Descriptor::Code(CodeSeg {
            base: d.u32()?,
            limit: d.u32()?,
            dpl: d.u8()?,
            readable: d.bool()?,
            conforming: d.bool()?,
            present: d.bool()?,
        }),
        2 => Descriptor::Data(DataSeg {
            base: d.u32()?,
            limit: d.u32()?,
            dpl: d.u8()?,
            writable: d.bool()?,
            expand_down: d.bool()?,
            present: d.bool()?,
        }),
        3 => Descriptor::Gate(CallGate {
            selector: Selector(d.u16()?),
            offset: d.u32()?,
            dpl: d.u8()?,
            param_count: d.u8()?,
            present: d.bool()?,
        }),
        t => return Err(d.fail(format!("descriptor tag {t}"))),
    })
}

/// Encodes a whole [`DescriptorTable`] (including the null slot count).
pub fn put_descriptor_table(e: &mut Enc, t: &DescriptorTable) {
    e.u32(t.len() as u32);
    for i in 1..t.len() as u16 {
        put_descriptor(e, t.get(i).expect("index < len"));
    }
}

/// Decodes a [`DescriptorTable`] written by [`put_descriptor_table`].
pub fn get_descriptor_table(d: &mut Dec<'_>) -> Result<DescriptorTable, RestoreError> {
    let len = d.u32()? as usize;
    if len == 0 {
        return Err(d.fail("descriptor table without a null slot"));
    }
    let mut t = DescriptorTable::new();
    for _ in 1..len {
        let desc = get_descriptor(d)?;
        t.push(desc);
    }
    Ok(t)
}

/// Encodes a [`SegCache`] (the hidden half of a segment register).
pub fn put_seg_cache(e: &mut Enc, s: &SegCache) {
    e.u16(s.selector.0);
    e.bool(s.valid);
    e.u32(s.base);
    e.u32(s.limit);
    e.u8(s.dpl);
    e.bool(s.code);
    e.bool(s.writable);
    e.bool(s.readable);
    e.bool(s.expand_down);
    e.bool(s.conforming);
}

/// Decodes a [`SegCache`] written by [`put_seg_cache`].
pub fn get_seg_cache(d: &mut Dec<'_>) -> Result<SegCache, RestoreError> {
    Ok(SegCache {
        selector: Selector(d.u16()?),
        valid: d.bool()?,
        base: d.u32()?,
        limit: d.u32()?,
        dpl: d.u8()?,
        code: d.bool()?,
        writable: d.bool()?,
        readable: d.bool()?,
        expand_down: d.bool()?,
        conforming: d.bool()?,
    })
}

/// Encodes a full [`Cpu`] context.
pub fn put_cpu(e: &mut Enc, c: &Cpu) {
    for r in c.regs {
        e.u32(r);
    }
    e.u32(c.eip);
    e.bool(c.flags.cf);
    e.bool(c.flags.zf);
    e.bool(c.flags.sf);
    e.bool(c.flags.of);
    for s in &c.segs {
        put_seg_cache(e, s);
    }
    e.u8(c.cpl);
    e.u32(c.pkru);
}

/// Decodes a [`Cpu`] written by [`put_cpu`].
pub fn get_cpu(d: &mut Dec<'_>) -> Result<Cpu, RestoreError> {
    let mut regs = [0u32; 8];
    for r in &mut regs {
        *r = d.u32()?;
    }
    let eip = d.u32()?;
    let flags = Flags {
        cf: d.bool()?,
        zf: d.bool()?,
        sf: d.bool()?,
        of: d.bool()?,
    };
    let mut segs = [SegCache::invalid(); 4];
    for s in &mut segs {
        *s = get_seg_cache(d)?;
    }
    let cpl = d.u8()?;
    let pkru = d.u32()?;
    Ok(Cpu {
        regs,
        eip,
        flags,
        segs,
        cpl,
        pkru,
    })
}

/// Encodes a [`Fault`] (vector, error code, CR2, structured cause, site).
pub fn put_fault(e: &mut Enc, f: &Fault) {
    e.u8(f.vector.number());
    e.u32(f.error_code);
    match f.cr2 {
        Some(v) => {
            e.bool(true);
            e.u32(v);
        }
        None => e.bool(false),
    }
    match f.cause {
        FaultCause::LimitViolation { offset, limit } => {
            e.u8(0);
            e.u32(offset);
            e.u32(limit);
        }
        FaultCause::PrivilegeViolation { cpl, rpl, dpl } => {
            e.u8(1);
            e.u8(cpl);
            e.u8(rpl);
            e.u8(dpl);
        }
        FaultCause::BadSegmentType => e.u8(2),
        FaultCause::BadSelector(s) => {
            e.u8(3);
            e.u16(s);
        }
        FaultCause::SegmentNotPresent(s) => {
            e.u8(4);
            e.u16(s);
        }
        FaultCause::Page { linear, code } => {
            e.u8(5);
            e.u32(linear);
            e.u32(code);
        }
        FaultCause::PrivilegedInstruction => e.u8(6),
        FaultCause::BadInstruction => e.u8(7),
        FaultCause::Arithmetic => e.u8(8),
        FaultCause::BadTransfer => e.u8(9),
        FaultCause::KeyGateViolation { site } => {
            e.u8(10);
            e.u32(site);
        }
    }
    e.u32(f.eip);
    e.u16(f.cs);
    e.u8(f.cpl);
}

/// Decodes a [`Fault`] written by [`put_fault`].
pub fn get_fault(d: &mut Dec<'_>) -> Result<Fault, RestoreError> {
    let vector = match d.u8()? {
        0 => Vector::DivideError,
        6 => Vector::InvalidOpcode,
        11 => Vector::NotPresent,
        12 => Vector::StackFault,
        13 => Vector::GeneralProtection,
        14 => Vector::PageFault,
        v => return Err(d.fail(format!("fault vector {v}"))),
    };
    let error_code = d.u32()?;
    let cr2 = if d.bool()? { Some(d.u32()?) } else { None };
    let cause = match d.u8()? {
        0 => FaultCause::LimitViolation {
            offset: d.u32()?,
            limit: d.u32()?,
        },
        1 => FaultCause::PrivilegeViolation {
            cpl: d.u8()?,
            rpl: d.u8()?,
            dpl: d.u8()?,
        },
        2 => FaultCause::BadSegmentType,
        3 => FaultCause::BadSelector(d.u16()?),
        4 => FaultCause::SegmentNotPresent(d.u16()?),
        5 => FaultCause::Page {
            linear: d.u32()?,
            code: d.u32()?,
        },
        6 => FaultCause::PrivilegedInstruction,
        7 => FaultCause::BadInstruction,
        8 => FaultCause::Arithmetic,
        9 => FaultCause::BadTransfer,
        10 => FaultCause::KeyGateViolation { site: d.u32()? },
        t => return Err(d.fail(format!("fault cause tag {t}"))),
    };
    Ok(Fault {
        vector,
        error_code,
        cr2,
        cause,
        eip: d.u32()?,
        cs: d.u16()?,
        cpl: d.u8()?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // The standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    fn sample_image() -> Vec<u8> {
        let mut b = ImageBuilder::new(kind::MACHINE);
        b.meta(b"seed=1");
        let mut e = Enc::new();
        e.u32(0xDEAD_BEEF);
        e.str("hello");
        b.section(1, e);
        let mut e = Enc::new();
        e.u64(42);
        b.section(7, e);
        b.finish()
    }

    #[test]
    fn image_roundtrip() {
        let img = sample_image();
        let v = ImageView::parse(&img, kind::MACHINE).unwrap();
        assert_eq!(v.meta(), b"seed=1");
        let mut d = v.require(1, "one").unwrap();
        assert_eq!(d.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.str().unwrap(), "hello");
        d.finish().unwrap();
        let mut d = v.require(7, "seven").unwrap();
        assert_eq!(d.u64().unwrap(), 42);
        assert!(v.section(2).is_none());
        assert!(matches!(
            v.require(2, "two"),
            Err(RestoreError::MissingSection { section: "two" })
        ));
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let img = sample_image();
        for byte in 0..img.len() {
            for bit in 0..8 {
                let mut bad = img.clone();
                bad[byte] ^= 1 << bit;
                assert!(
                    ImageView::parse(&bad, kind::MACHINE).is_err(),
                    "flip of byte {byte} bit {bit} went undetected"
                );
            }
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let img = sample_image();
        for len in 0..img.len() {
            assert!(
                ImageView::parse(&img[..len], kind::MACHINE).is_err(),
                "truncation to {len} bytes went undetected"
            );
        }
    }

    #[test]
    fn wrong_kind_and_version_are_typed() {
        let img = sample_image();
        assert_eq!(
            ImageView::parse(&img, kind::KERNEL).unwrap_err(),
            RestoreError::Kind {
                found: kind::MACHINE,
                expected: kind::KERNEL
            }
        );
        // A genuine future-version image (correct trailer CRC) is
        // rejected on the version field, not the CRC.
        let mut skewed = img.clone();
        skewed[4..8].copy_from_slice(&(VERSION + 1).to_le_bytes());
        let n = skewed.len();
        let crc = crc32(&skewed[..n - 4]);
        skewed[n - 4..].copy_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ImageView::parse(&skewed, kind::MACHINE).unwrap_err(),
            RestoreError::Version {
                found: VERSION + 1,
                supported: VERSION
            }
        );
        assert_eq!(
            ImageView::parse(b"nope", kind::MACHINE).unwrap_err(),
            RestoreError::BadMagic
        );
    }

    #[test]
    fn transposed_sections_are_rejected() {
        // Build the same sections in descending order by hand: re-parse
        // the good image, then rebuild with swapped section blocks and a
        // recomputed trailer CRC (so only the order is wrong).
        let img = sample_image();
        let v = ImageView::parse(&img, kind::MACHINE).unwrap();
        let s1 = v.section(1).unwrap().to_vec();
        let s7 = v.section(7).unwrap().to_vec();
        let mut out = Vec::new();
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&VERSION.to_le_bytes());
        out.extend_from_slice(&kind::MACHINE.to_le_bytes());
        out.extend_from_slice(&6u32.to_le_bytes());
        out.extend_from_slice(b"seed=1");
        out.extend_from_slice(&2u32.to_le_bytes());
        for (id, payload) in [(7u32, &s7), (1u32, &s1)] {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            out.extend_from_slice(payload);
            out.extend_from_slice(&crc32(payload).to_le_bytes());
        }
        let crc = crc32(&out);
        out.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(
            ImageView::parse(&out, kind::MACHINE).unwrap_err(),
            RestoreError::SectionOrder { id: 1 }
        );
    }

    #[test]
    fn torn_suffix_is_rejected() {
        let mut img = sample_image();
        let n = img.len();
        for b in &mut img[n - 12..] {
            *b = 0;
        }
        assert!(ImageView::parse(&img, kind::MACHINE).is_err());
    }

    #[test]
    fn payload_decoders_are_bounds_checked() {
        let mut e = Enc::new();
        e.u32(7);
        let payload = e.into_vec();
        let mut d = Dec::new(&payload, "t");
        assert_eq!(d.u32().unwrap(), 7);
        assert!(matches!(d.u8(), Err(RestoreError::Truncated { .. })));

        // Trailing bytes are rejected.
        let mut d = Dec::new(&payload, "t");
        assert_eq!(d.u16().unwrap(), 7);
        assert!(matches!(
            d.finish(),
            Err(RestoreError::TrailingBytes { .. })
        ));

        // Bad bool bytes are malformed, not coerced.
        let mut d = Dec::new(&[2u8], "t");
        assert!(matches!(d.bool(), Err(RestoreError::Malformed { .. })));
    }

    #[test]
    fn descriptor_codec_roundtrips_losslessly() {
        // A byte-granular limit above 20 bits — exactly what pack() loses.
        let lossy = Descriptor::Code(CodeSeg {
            base: 0xC010_0000,
            limit: 0x0012_3456,
            dpl: 1,
            readable: true,
            conforming: false,
            present: true,
        });
        let all = [
            Descriptor::Null,
            lossy,
            Descriptor::flat_data(3),
            Descriptor::call_gate(Selector(0x2B), 0xDEAD_BEEF, 3),
        ];
        let mut t = DescriptorTable::new();
        for d in &all {
            t.push(*d);
        }
        let mut e = Enc::new();
        put_descriptor_table(&mut e, &t);
        let payload = e.into_vec();
        let mut d = Dec::new(&payload, "gdt");
        let back = get_descriptor_table(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.len(), t.len());
        for i in 0..t.len() as u16 {
            assert_eq!(back.get(i), t.get(i));
        }
    }

    #[test]
    fn fault_codec_roundtrips_every_cause() {
        use crate::fault::pf_err;
        let causes = [
            FaultCause::LimitViolation {
                offset: 1,
                limit: 2,
            },
            FaultCause::PrivilegeViolation {
                cpl: 3,
                rpl: 2,
                dpl: 1,
            },
            FaultCause::BadSegmentType,
            FaultCause::BadSelector(0x2B),
            FaultCause::SegmentNotPresent(0x33),
            FaultCause::Page {
                linear: 0xC000_0000,
                code: pf_err::PRESENT | pf_err::USER,
            },
            FaultCause::Page {
                linear: 0x0900_0000,
                code: pf_err::PRESENT | pf_err::USER | pf_err::PKEY,
            },
            FaultCause::PrivilegedInstruction,
            FaultCause::KeyGateViolation { site: 0x0804_8010 },
            FaultCause::BadInstruction,
            FaultCause::Arithmetic,
            FaultCause::BadTransfer,
        ];
        for cause in causes {
            let f = Fault {
                vector: Vector::GeneralProtection,
                error_code: 0x18,
                cr2: Some(0x1234),
                cause,
                eip: 0x0804_8000,
                cs: 0x1B,
                cpl: 3,
            };
            let mut e = Enc::new();
            put_fault(&mut e, &f);
            let payload = e.into_vec();
            let mut d = Dec::new(&payload, "fault");
            assert_eq!(get_fault(&mut d).unwrap(), f);
            d.finish().unwrap();
        }
    }
}
