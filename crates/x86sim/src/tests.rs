//! Machine-level tests: execution semantics, protection checks, and far
//! control transfers.

use asm86::Assembler;
use std::collections::BTreeMap;

use crate::desc::{Descriptor, Selector};
use crate::fault::{FaultCause, Vector};
use crate::machine::{Exit, Machine};
use crate::paging::{map_page, pte};
use asm86::isa::{Reg, SegReg};

/// Builds a machine with flat ring-0 code/data/stack segments, the given
/// program at linear `0x1000`, and a stack top at `0x8000`. Paging off.
fn flat_machine(src: &str) -> Machine {
    let mut m = Machine::new();
    let code = m.gdt.push(Descriptor::flat_code(0));
    let data = m.gdt.push(Descriptor::flat_data(0));
    let obj = Assembler::assemble(src).expect("asm");
    let image = obj.link(0x1000, &BTreeMap::new()).expect("link");
    m.mem.write_bytes(0x1000, &image);

    m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data, false, 0));
    m.cpu.eip = 0x1000;
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m
}

fn run_to_hlt(m: &mut Machine) {
    match m.run(100_000) {
        Exit::Hlt => {}
        other => panic!("expected Hlt, got {other:?}"),
    }
}

#[test]
fn arithmetic_and_halt() {
    let mut m = flat_machine(
        "mov eax, 6\n\
         mov ebx, 7\n\
         imul eax, ebx\n\
         hlt\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Eax), 42);
    assert!(m.cycles() > 0);
    assert_eq!(m.insns(), 4);
}

#[test]
fn memory_roundtrip_and_byte_ops() {
    let mut m = flat_machine(
        "mov eax, 0x11223344\n\
         mov [0x2000], eax\n\
         mov ebx, byte [0x2001]\n\
         mov ecx, word [0x2002]\n\
         hlt\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Ebx), 0x33);
    assert_eq!(m.cpu.reg(Reg::Ecx), 0x1122);
    assert_eq!(m.mem.read_u32(0x2000), 0x11223344);
}

#[test]
fn stack_push_pop() {
    let mut m = flat_machine(
        "push 0xAA\n\
         push 0xBB\n\
         pop eax\n\
         pop ebx\n\
         hlt\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Eax), 0xBB);
    assert_eq!(m.cpu.reg(Reg::Ebx), 0xAA);
    assert_eq!(m.cpu.esp(), 0x8000);
}

#[test]
fn loop_and_conditions() {
    // Sum 1..=10.
    let mut m = flat_machine(
        "mov eax, 0\n\
         mov ecx, 10\n\
         top:\n\
         add eax, ecx\n\
         dec ecx\n\
         cmp ecx, 0\n\
         jne top\n\
         hlt\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Eax), 55);
}

#[test]
fn signed_and_unsigned_branches() {
    let mut m = flat_machine(
        "mov eax, -1\n\
         cmp eax, 1\n\
         jl signed_less\n\
         mov ebx, 0\n\
         hlt\n\
         signed_less:\n\
         mov ebx, 1\n\
         cmp eax, 1\n\
         ja unsigned_above\n\
         hlt\n\
         unsigned_above:\n\
         mov ecx, 1\n\
         hlt\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Ebx), 1, "-1 < 1 signed");
    assert_eq!(m.cpu.reg(Reg::Ecx), 1, "0xFFFFFFFF > 1 unsigned");
}

#[test]
fn call_and_ret() {
    let mut m = flat_machine(
        "push 5\n\
         call double\n\
         hlt\n\
         double:\n\
         mov eax, [esp+4]\n\
         add eax, eax\n\
         ret\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Eax), 10);
}

#[test]
fn rdtsc_reads_cycle_counter() {
    let mut m = flat_machine("rdtsc\nmov ebx, eax\nrdtsc\nsub eax, ebx\nhlt\n");
    run_to_hlt(&mut m);
    assert!(m.cpu.reg(Reg::Eax) > 0, "cycles advanced between rdtscs");
}

#[test]
fn segment_limit_violation_faults() {
    let mut m = Machine::new();
    // Code segment of exactly one page; data segment of 16 bytes.
    let code = m.gdt.push(Descriptor::code(0x1000, 0x1000, 0));
    let data = m.gdt.push(Descriptor::data(0x2000, 16, 0));
    let stack = m.gdt.push(Descriptor::flat_data(0));
    let obj = Assembler::assemble(
        "mov eax, [12]\n\
         mov ebx, [13]\n\
         hlt\n",
    )
    .unwrap();
    let image = obj.link(0, &BTreeMap::new()).unwrap();
    m.mem.write_bytes(0x1000, &image);
    m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(stack, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x9000);
    m.cpu.eip = 0;

    // First load: offsets 12..15 inclusive = within limit 15.
    assert!(m.step().is_none());
    // Second load: offsets 13..16 exceeds limit.
    match m.step() {
        Some(Exit::Fault(f)) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert!(matches!(f.cause, FaultCause::LimitViolation { .. }));
        }
        other => panic!("expected #GP, got {other:?}"),
    }
}

#[test]
fn write_to_code_segment_faults() {
    let mut m = flat_machine("mov cs:[0x2000], eax\nhlt\n");
    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert_eq!(f.cause, FaultCause::BadSegmentType);
        }
        other => panic!("expected #GP, got {other:?}"),
    }
}

#[test]
fn hlt_is_privileged() {
    // Run the same program at ring 3 — hlt must #GP.
    let mut m = Machine::new();
    let code = m.gdt.push(Descriptor::flat_code(3));
    let data = m.gdt.push(Descriptor::flat_data(3));
    let obj = Assembler::assemble("hlt\n").unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;
    assert_eq!(m.cpu.cpl, 3);
    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert_eq!(f.cause, FaultCause::PrivilegedInstruction);
        }
        other => panic!("expected #GP, got {other:?}"),
    }
}

#[test]
fn ring3_cannot_load_ring0_data_segment() {
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));
    let data0 = m.gdt.push(Descriptor::flat_data(0));
    let obj = Assembler::assemble(
        "mov ds, eax\n\
         hlt\n",
    )
    .unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu
        .set_reg(Reg::Eax, Selector::new(data0, false, 3).0 as u32);
    m.cpu.eip = 0x1000;
    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert!(matches!(f.cause, FaultCause::PrivilegeViolation { .. }));
        }
        other => panic!("expected #GP, got {other:?}"),
    }
}

#[test]
fn user_write_to_supervisor_page_faults() {
    // Ring 3 flat segments but a PPL 0 page: the paging check must fire
    // even though segmentation passes — the heart of the user-level
    // Palladium mechanism.
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));

    let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
    let cr3 = fa.alloc().unwrap();
    // Identity-map the code page and stack page as user; the target page
    // as supervisor (PPL 0).
    map_page(&mut m.mem, &mut fa, cr3, 0x1000, 0x1000, pte::RW | pte::US);
    map_page(&mut m.mem, &mut fa, cr3, 0x7000, 0x7000, pte::RW | pte::US);
    map_page(&mut m.mem, &mut fa, cr3, 0x5000, 0x5000, pte::RW);
    m.mmu.set_cr3(cr3);
    m.mmu.enabled = true;

    let obj = Assembler::assemble(
        "mov eax, 1\n\
         mov [0x5000], eax\n\
         hlt\n",
    )
    .unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::PageFault);
            assert_eq!(f.cr2, Some(0x5000));
        }
        other => panic!("expected #PF, got {other:?}"),
    }
    // The write never reached memory.
    assert_eq!(m.mem.read_u32(0x5000), 0);
}

/// Builds the two-ring machine used by the gate tests: ring-2 "app" code
/// and ring-3 "extension" code over the same flat range, a call gate from
/// ring 3 into ring 2, and per-ring stacks via the TSS.
fn two_ring_machine(app_src: &str, ext_src: &str) -> (Machine, u16, u16) {
    let mut m = Machine::new();
    let code2 = m.gdt.push(Descriptor::flat_code(2));
    let data2 = m.gdt.push(Descriptor::flat_data(2));
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));

    let app = Assembler::assemble(app_src).expect("app asm");
    let ext = Assembler::assemble(ext_src).expect("ext asm");
    let mut externs = BTreeMap::new();
    for (name, off) in &ext.symbols {
        externs.insert(name.clone(), 0x4000 + off);
    }
    let app_img = app.link(0x1000, &externs).expect("app link");
    let mut externs2 = BTreeMap::new();
    for (name, off) in &app.symbols {
        externs2.insert(name.clone(), 0x1000 + off);
    }
    let ext_img = ext.link(0x4000, &externs2).expect("ext link");
    m.mem.write_bytes(0x1000, &app_img);
    m.mem.write_bytes(0x4000, &ext_img);

    // Ring-2 stack at 0x8000 (via TSS when entering ring 2).
    m.tss.stack[2] = (Selector::new(data2, false, 2), 0x8000);

    m.force_seg_from_table(SegReg::Cs, Selector::new(code2, false, 2));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data2, false, 2));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data2, false, 2));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    (
        m,
        Selector::new(code3, false, 3).0,
        Selector::new(data3, false, 3).0,
    )
}

#[test]
fn figure6_downcall_and_gated_return() {
    // A miniature of the paper's Figure 6: ring-2 code synthesizes a far
    // return into ring-3 code; the ring-3 code lcalls back through a call
    // gate. This is the exact lret/lcall pair Palladium times at 31+72
    // cycles.
    let app_src = "\
entry:
    ; Synthesize the phantom activation record: SS3, ESP3, CS3, EIP3.
    push 0x23        ; ext stack selector (data3, RPL 3) — patched below
    push 0x9000      ; ext stack pointer
    push 0x1B        ; ext code selector (code3, RPL 3) — patched below
    push transfer_target
    lret
back_in_app:
    int 0x30         ; yield to the host
app_gate_entry:
    mov eax, 77
    jmp back_in_app
";
    let ext_src = "\
transfer_target:
    mov ebx, 55
    lcall 0x2B, 0    ; through the call gate (selector patched below)
";
    let (mut m, code3_sel, data3_sel) = two_ring_machine(app_src, ext_src);
    m.idt[0x30] = Some(crate::machine::IdtGate { dpl: 3 });

    // Create the call gate into app_gate_entry at ring 2, callable from 3.
    let app_obj = Assembler::assemble(app_src).unwrap();
    let gate_entry = 0x1000 + app_obj.symbol("app_gate_entry").unwrap();
    let code2_sel = m.cpu.seg(SegReg::Cs).selector;
    let gate_idx = m
        .gdt
        .push(Descriptor::call_gate(code2_sel.with_rpl(0), gate_entry, 3));
    let gate_sel = Selector::new(gate_idx, false, 3);

    // Patch the immediates the sources hard-coded: selectors depend on GDT
    // layout, so rewrite the pushed values by editing memory directly.
    // push 0x23 at 0x1000 (opcode 1 + tag 1 + imm). push imm encoding:
    // [PUSH][SRC_IMM][imm32].
    m.mem.write_u32(0x1002, data3_sel as u32);
    m.mem.write_u32(0x100E, code3_sel as u32);
    // The ext lcall selector: lcall encodes as [LCALL][sel16][off32] and
    // sits right after "mov ebx, 55" (7 bytes) at 0x4000.
    m.mem.write_u16(0x4008, gate_sel.0);

    match m.run(100) {
        Exit::IntHook(0x30) => {}
        other => panic!("expected IntHook(0x30), got {other:?}"),
    }
    assert_eq!(m.cpu.reg(Reg::Ebx), 55, "extension ran");
    assert_eq!(m.cpu.reg(Reg::Eax), 77, "gate entry ran");
    assert_eq!(m.cpu.cpl, 2, "returned to ring 2");
}

#[test]
fn lret_to_inner_ring_is_rejected() {
    // Ring-3 code forging a far return "to ring 0" must fault.
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    // Forge the frame lret expects: push CS first, EIP last (lret pops EIP
    // then CS).
    let forged = Assembler::assemble(&format!(
        "push {}\n\
         push 0x2000\n\
         lret\n",
        Selector::new(code0, false, 0).0
    ))
    .unwrap();
    let img = forged.link(0x1000, &BTreeMap::new()).unwrap();
    m.mem.write_bytes(0x1000, &img);
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
        }
        other => panic!("expected #GP, got {other:?}"),
    }
    assert_eq!(m.cpu.cpl, 3, "CPL unchanged");
}

#[test]
fn gate_dpl_blocks_unprivileged_callers() {
    // A gate with DPL 0 cannot be called from ring 3.
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    let gate = m.gdt.push(Descriptor::call_gate(
        Selector::new(code0, false, 0),
        0x2000,
        0,
    ));
    let obj = Assembler::assemble(&format!(
        "lcall {}, 0\nhlt\n",
        Selector::new(gate, false, 3).0
    ))
    .unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;
    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert!(matches!(f.cause, FaultCause::PrivilegeViolation { .. }));
        }
        other => panic!("expected #GP, got {other:?}"),
    }
}

#[test]
fn inward_gate_call_switches_stacks_via_tss() {
    // Ring 3 calls a ring-0 routine through a gate; the TSS supplies the
    // ring-0 stack, and the old SS:ESP appear on it.
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    let data0 = m.gdt.push(Descriptor::flat_data(0));
    let gate = m.gdt.push(Descriptor::call_gate(
        Selector::new(code0, false, 0),
        0x3000,
        3,
    ));

    let user = Assembler::assemble(&format!(
        "lcall {}, 0\nmov edi, 1\nhlt\n",
        Selector::new(gate, false, 3).0
    ))
    .unwrap();
    m.mem
        .write_bytes(0x1000, &user.link(0x1000, &BTreeMap::new()).unwrap());
    let handler = Assembler::assemble("mov esi, 42\nlret\n").unwrap();
    m.mem
        .write_bytes(0x3000, &handler.link(0x3000, &BTreeMap::new()).unwrap());

    m.tss.stack[0] = (Selector::new(data0, false, 0), 0xF000);
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    // Step the lcall only, to inspect the switched stack.
    assert!(m.step().is_none());
    assert_eq!(m.cpu.cpl, 0);
    assert_eq!(m.cpu.esp(), 0xF000 - 16, "SS, ESP, CS, EIP pushed");
    let old_esp = m.mem.read_u32(0xF000 - 8);
    assert_eq!(old_esp, 0x8000);

    // Run to completion; the handler returns outward and the user code
    // halts — which faults at ring 3, so expect #GP *after* edi is set...
    // hlt is privileged, so check state at the fault instead.
    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.cause, FaultCause::PrivilegedInstruction);
        }
        other => panic!("expected fault on ring-3 hlt, got {other:?}"),
    }
    assert_eq!(m.cpu.reg(Reg::Esi), 42, "ring-0 routine ran");
    assert_eq!(m.cpu.reg(Reg::Edi), 1, "control returned to ring 3");
    assert_eq!(m.cpu.esp(), 0x8000, "outer stack restored");
}

#[test]
fn int_hook_requires_gate_dpl() {
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));
    m.idt[0x80] = Some(crate::machine::IdtGate { dpl: 3 });
    m.idt[0x81] = Some(crate::machine::IdtGate { dpl: 0 });

    let obj = Assembler::assemble("int 0x80\nint 0x81\nhlt\n").unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    match m.run(10) {
        Exit::IntHook(0x80) => {}
        other => panic!("expected IntHook(0x80), got {other:?}"),
    }
    // Resume: the int 0x81 must #GP (gate DPL 0 < CPL 3).
    match m.run(10) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
        }
        other => panic!("expected #GP, got {other:?}"),
    }
    // Unhooked vector also faults.
    let mut m2 = flat_machine("int 0x40\nhlt\n");
    match m2.run(10) {
        Exit::Fault(f) => assert_eq!(f.vector, Vector::GeneralProtection),
        other => panic!("expected #GP, got {other:?}"),
    }
}

#[test]
fn outward_return_invalidates_privileged_data_segments() {
    // Ring-0 code loads DS with a ring-0 segment, then returns outward to
    // ring 3: DS must be nulled so ring 3 cannot use the cached descriptor.
    let mut m = Machine::new();
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    let data0 = m.gdt.push(Descriptor::flat_data(0));
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));

    let ring0 = Assembler::assemble(&format!(
        "mov eax, {}\n\
         mov ds, eax\n\
         push {}\n\
         push 0x9000\n\
         push {}\n\
         push 0x3000\n\
         lret\n",
        Selector::new(data0, false, 0).0,
        Selector::new(data3, false, 3).0,
        Selector::new(code3, false, 3).0,
    ))
    .unwrap();
    m.mem
        .write_bytes(0x1000, &ring0.link(0x1000, &BTreeMap::new()).unwrap());
    // Ring-3 code tries to read through DS.
    let ring3 = Assembler::assemble("mov ebx, [0x2000]\nhlt\n").unwrap();
    m.mem
        .write_bytes(0x3000, &ring3.link(0x3000, &BTreeMap::new()).unwrap());

    m.force_seg_from_table(SegReg::Cs, Selector::new(code0, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data0, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    match m.run(20) {
        Exit::Fault(f) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert_eq!(f.cpl, 3);
            assert!(
                matches!(f.cause, FaultCause::BadSelector(_)),
                "DS was invalidated on the outward return: {:?}",
                f.cause
            );
        }
        other => panic!("expected #GP through nulled DS, got {other:?}"),
    }
}

#[test]
fn cycle_budget_stops_runaway_code() {
    let mut m = flat_machine("spin:\njmp spin\n");
    let exit = m.run_until_cycles(1_000);
    assert_eq!(exit, Exit::CycleLimit);
    assert!(m.cycles() >= 1_000);
}

#[test]
fn insn_budget_stops_runaway_code() {
    let mut m = flat_machine("spin:\njmp spin\n");
    assert_eq!(m.run(100), Exit::InsnLimit);
    assert_eq!(m.insns(), 100);
}

#[test]
fn undecodable_bytes_fault() {
    let mut m = flat_machine("nop\nhlt\n");
    m.mem.write_u8(0x1000, 0xFE); // invalid opcode
    match m.run(10) {
        Exit::Fault(f) => assert_eq!(f.vector, Vector::InvalidOpcode),
        other => panic!("expected #UD, got {other:?}"),
    }
}

#[test]
fn host_helpers_bypass_protection() {
    let mut m = Machine::new();
    let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
    let cr3 = fa.alloc().unwrap();
    map_page(&mut m.mem, &mut fa, cr3, 0x5000, 0x6000, pte::RW); // PPL 0
    m.mmu.set_cr3(cr3);
    m.mmu.enabled = true;

    assert!(m.host_write_u32(0x5010, 0xFEED));
    assert_eq!(m.host_read_u32(0x5010), 0xFEED);
    assert_eq!(m.mem.read_u32(0x6010), 0xFEED, "went through the mapping");
    assert!(!m.host_write_u32(0xDEAD_0000, 1), "unmapped fails");
}

#[test]
fn tlb_miss_charges_cycles() {
    let mut m = Machine::new();
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    let data0 = m.gdt.push(Descriptor::flat_data(0));
    let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
    let cr3 = fa.alloc().unwrap();
    for page in [0x1000u32, 0x7000, 0x2000] {
        map_page(&mut m.mem, &mut fa, cr3, page, page, pte::RW | pte::US);
    }
    m.mmu.set_cr3(cr3);
    m.mmu.enabled = true;

    let obj = Assembler::assemble("mov eax, [0x2000]\nmov ebx, [0x2004]\nhlt\n").unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code0, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data0, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data0, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x7FF0);
    m.cpu.eip = 0x1000;

    run_to_hlt(&mut m);
    // Two data pages + one code page walked once each.
    assert_eq!(m.mmu.stats.misses, 2); // 0x2000 data + code page
    assert!(m.mmu.stats.hits > 0);
}

mod properties {
    use super::*;
    use crate::desc::{CodeSeg, DataSeg};
    use seedrng::SeedRng;

    fn arb_code_desc(r: &mut SeedRng) -> Descriptor {
        Descriptor::Code(CodeSeg {
            base: r.next_u32(),
            limit: r.gen_range(0, 0x10_0000),
            dpl: r.gen_range(0, 4) as u8,
            readable: r.gen_bool(0.5),
            conforming: r.gen_bool(0.5),
            present: r.gen_bool(0.5),
        })
    }

    fn arb_data_desc(r: &mut SeedRng) -> Descriptor {
        Descriptor::Data(DataSeg {
            base: r.next_u32(),
            limit: r.gen_range(0, 0x10_0000),
            dpl: r.gen_range(0, 4) as u8,
            writable: r.gen_bool(0.5),
            expand_down: r.gen_bool(0.5),
            present: r.gen_bool(0.5),
        })
    }

    /// Descriptors with byte-granular limits survive the genuine
    /// 8-byte x86 packing bit-exactly.
    #[test]
    fn seeded_descriptor_pack_roundtrip() {
        let mut r = SeedRng::new(0xDE5C);
        for _ in 0..2000 {
            let d = if r.gen_bool(0.5) {
                arb_code_desc(&mut r)
            } else {
                arb_data_desc(&mut r)
            };
            assert_eq!(Descriptor::unpack(d.pack()), Some(d));
        }
    }

    /// Page-granular limits lose exactly their low 12 bits.
    #[test]
    fn seeded_large_limit_granularity() {
        let mut r = SeedRng::new(0x11A1);
        for _ in 0..500 {
            let limit = r.gen_range_u64(0x10_0000, 1 << 32) as u32;
            let d = Descriptor::Code(CodeSeg {
                base: 0,
                limit,
                dpl: 0,
                readable: true,
                conforming: false,
                present: true,
            });
            match Descriptor::unpack(d.pack()) {
                Some(Descriptor::Code(c)) => assert_eq!(c.limit, limit | 0xFFF),
                other => panic!("{other:?}"),
            }
        }
    }

    /// ALU flag semantics agree with wide-arithmetic reference math.
    #[test]
    fn seeded_add_sub_flags() {
        let mut r = SeedRng::new(0xF1A6);
        for _ in 0..500 {
            let (a, b) = (r.next_u32(), r.next_u32());
            let mut m = flat_machine("hlt\n");
            // add
            m.cpu.set_reg(Reg::Eax, a);
            m.execute(
                asm86::Insn::Alu(asm86::AluOp::Add, Reg::Eax, asm86::Src::Imm(b as i32)),
                0,
            )
            .unwrap();
            let v = m.cpu.reg(Reg::Eax);
            assert_eq!(v, a.wrapping_add(b));
            assert_eq!(m.cpu.flags.cf, (a as u64 + b as u64) > u32::MAX as u64);
            assert_eq!(m.cpu.flags.zf, v == 0);
            assert_eq!(m.cpu.flags.sf, (v as i32) < 0);
            assert_eq!(m.cpu.flags.of, (a as i32).checked_add(b as i32).is_none());
            // sub (via cmp so the destination is untouched)
            m.cpu.set_reg(Reg::Ecx, a);
            m.execute(asm86::Insn::Cmp(Reg::Ecx, asm86::Src::Imm(b as i32)), 0)
                .unwrap();
            assert_eq!(m.cpu.flags.cf, a < b);
            assert_eq!(m.cpu.flags.zf, a == b);
            assert_eq!(m.cpu.flags.of, (a as i32).checked_sub(b as i32).is_none());
        }
    }

    /// Random arithmetic programs compute what reference Rust does.
    #[test]
    fn seeded_straightline_arith_matches_host() {
        let mut r = SeedRng::new(0xA317);
        for _ in 0..200 {
            let start = r.next_u32();
            let n = 1 + r.gen_range(0, 23) as usize;
            let mut expected = start;
            let mut src = format!("mov eax, {}\n", start as i32);
            for _ in 0..n {
                let v = r.next_u32() as i32;
                let (mn, f): (&str, fn(u32, i32) -> u32) = match r.gen_range(0, 6) {
                    0 => ("add", |a, v| a.wrapping_add(v as u32)),
                    1 => ("sub", |a, v| a.wrapping_sub(v as u32)),
                    2 => ("and", |a, v| a & v as u32),
                    3 => ("or", |a, v| a | v as u32),
                    4 => ("xor", |a, v| a ^ v as u32),
                    _ => ("imul", |a, v| (a as i32).wrapping_mul(v) as u32),
                };
                expected = f(expected, v);
                src.push_str(&format!("{mn} eax, {v}\n"));
            }
            src.push_str("hlt\n");
            let mut m = flat_machine(&src);
            run_to_hlt(&mut m);
            assert_eq!(m.cpu.reg(Reg::Eax), expected);
        }
    }
}

#[test]
fn expand_down_segment_semantics() {
    // An expand-down data segment permits offsets strictly *above* the
    // limit — the x86 stack-segment idiom.
    use crate::desc::DataSeg;
    let mut m = Machine::new();
    let code = m.gdt.push(Descriptor::flat_code(0));
    let stack = m.gdt.push(Descriptor::flat_data(0));
    let down = m.gdt.push(Descriptor::Data(DataSeg {
        base: 0,
        limit: 0xFFFF,
        dpl: 0,
        writable: true,
        expand_down: true,
        present: true,
    }));
    let obj = asm86::Assembler::assemble(
        "mov eax, [0x10000]\n\
         mov ebx, [0x8000]\n\
         hlt\n",
    )
    .unwrap();
    let image = obj
        .link(0x1000, &std::collections::BTreeMap::new())
        .unwrap();
    m.mem.write_bytes(0x1000, &image);
    m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(stack, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(down, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    // 0x10000 > limit: allowed.
    assert!(m.step().is_none(), "above-limit access allowed");
    // 0x8000 <= limit: #GP.
    match m.step() {
        Some(Exit::Fault(f)) => {
            assert_eq!(f.vector, Vector::GeneralProtection);
            assert!(matches!(f.cause, FaultCause::LimitViolation { .. }));
        }
        other => panic!("expected #GP below the limit, got {other:?}"),
    }
}

#[test]
fn not_present_code_segment_faults_on_transfer() {
    use crate::desc::CodeSeg;
    let mut m = flat_machine("lcall 0, 0\nhlt\n");
    let np = m.gdt.push(Descriptor::Code(CodeSeg {
        base: 0,
        limit: u32::MAX,
        dpl: 0,
        readable: true,
        conforming: false,
        present: false,
    }));
    // Patch the lcall selector (opcode at 0x1000, sel16 at 0x1001).
    m.mem.write_u16(0x1001, Selector::new(np, false, 0).0);
    match m.run(10) {
        Exit::Fault(f) => assert_eq!(f.vector, Vector::NotPresent),
        other => panic!("expected #NP, got {other:?}"),
    }
}

#[test]
fn conforming_code_keeps_caller_privilege() {
    use crate::desc::CodeSeg;
    // Ring 3 far-calls a conforming ring-0 segment: allowed, CPL stays 3.
    let mut m = Machine::new();
    let code3 = m.gdt.push(Descriptor::flat_code(3));
    let data3 = m.gdt.push(Descriptor::flat_data(3));
    let conf = m.gdt.push(Descriptor::Code(CodeSeg {
        base: 0,
        limit: u32::MAX,
        dpl: 0,
        readable: true,
        conforming: true,
        present: true,
    }));
    let user = asm86::Assembler::assemble(&format!(
        "lcall {}, 0x3000\nspin:\njmp spin\n",
        Selector::new(conf, false, 3).0
    ))
    .unwrap();
    m.mem.write_bytes(
        0x1000,
        &user
            .link(0x1000, &std::collections::BTreeMap::new())
            .unwrap(),
    );
    let callee = asm86::Assembler::assemble("mov esi, 5\nlret\n").unwrap();
    m.mem.write_bytes(
        0x3000,
        &callee
            .link(0x3000, &std::collections::BTreeMap::new())
            .unwrap(),
    );
    m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
    m.cpu.set_reg(Reg::Esp, 0x8000);
    m.cpu.eip = 0x1000;

    assert!(
        m.step().is_none(),
        "conforming far call allowed from ring 3"
    );
    assert_eq!(m.cpu.cpl, 3, "CPL unchanged by a conforming transfer");
    assert!(m.step().is_none());
    assert!(m.step().is_none(), "lret back");
    assert_eq!(m.cpu.reg(Reg::Esi), 5);
    assert_eq!(m.cpu.cpl, 3);
}

#[test]
fn data_segment_load_privilege_matrix() {
    // Exhaustive check of the x86 rule: a data segment is loadable iff
    // DPL >= max(CPL, RPL). 4 CPLs x 4 RPLs x 4 DPLs = 64 combinations.
    for cpl in 0u8..4 {
        for rpl in 0u8..4 {
            for dpl in 0u8..4 {
                let mut m = Machine::new();
                let code = m.gdt.push(Descriptor::flat_code(cpl));
                let stack = m.gdt.push(Descriptor::flat_data(cpl));
                let target = m.gdt.push(Descriptor::flat_data(dpl));
                m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, cpl));
                m.force_seg_from_table(SegReg::Ss, Selector::new(stack, false, cpl));
                m.cpu.set_reg(Reg::Esp, 0x8000);

                let sel = Selector::new(target, false, rpl);
                let r = m.load_data_seg(asm86::isa::SegReg::Ds, sel);
                let allowed = dpl >= cpl.max(rpl);
                assert_eq!(
                    r.is_ok(),
                    allowed,
                    "cpl={cpl} rpl={rpl} dpl={dpl}: expected allowed={allowed}"
                );
            }
        }
    }
}

#[test]
fn ss_load_requires_exact_privilege_match() {
    // SS is stricter: RPL == CPL == DPL, writable data.
    for cpl in 0u8..4 {
        for rpl in 0u8..4 {
            for dpl in 0u8..4 {
                let mut m = Machine::new();
                let code = m.gdt.push(Descriptor::flat_code(cpl));
                let stack = m.gdt.push(Descriptor::flat_data(cpl));
                let target = m.gdt.push(Descriptor::flat_data(dpl));
                m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, cpl));
                m.force_seg_from_table(SegReg::Ss, Selector::new(stack, false, cpl));

                let sel = Selector::new(target, false, rpl);
                let r = m.load_data_seg(asm86::isa::SegReg::Ss, sel);
                let allowed = rpl == cpl && dpl == cpl;
                assert_eq!(r.is_ok(), allowed, "SS cpl={cpl} rpl={rpl} dpl={dpl}");
            }
        }
    }
}

#[test]
fn gate_call_privilege_matrix() {
    // lcall through a gate: allowed iff max(CPL, RPL) <= gate DPL and
    // target code DPL <= CPL. Exercise with a ring-0 target across all
    // callers and gate DPLs.
    for cpl in 0u8..4 {
        for gate_dpl in 0u8..4 {
            for rpl in 0u8..4 {
                let mut m = Machine::new();
                let code = m.gdt.push(Descriptor::flat_code(cpl));
                let data = m.gdt.push(Descriptor::flat_data(cpl));
                let kcode = m.gdt.push(Descriptor::flat_code(0));
                let kdata = m.gdt.push(Descriptor::flat_data(0));
                let gate = m.gdt.push(Descriptor::call_gate(
                    Selector::new(kcode, false, 0),
                    0x3000,
                    gate_dpl,
                ));
                m.tss.stack[0] = (Selector::new(kdata, false, 0), 0xF000);
                m.force_seg_from_table(SegReg::Cs, Selector::new(code, false, cpl));
                m.force_seg_from_table(SegReg::Ss, Selector::new(data, false, cpl));
                m.cpu.set_reg(Reg::Esp, 0x8000);
                m.cpu.eip = 0x1000;
                m.mem.write_bytes(
                    0x1000,
                    &asm86::encode_program(&[asm86::Insn::Lcall(
                        Selector::new(gate, false, rpl).0,
                        0,
                    )]),
                );

                let r = m.step();
                let allowed = cpl.max(rpl) <= gate_dpl;
                match (allowed, r) {
                    (true, None) => {
                        assert_eq!(m.cpu.cpl, 0, "entered ring 0");
                    }
                    (false, Some(Exit::Fault(f))) => {
                        assert_eq!(f.vector, Vector::GeneralProtection);
                    }
                    (want, got) => {
                        panic!(
                            "cpl={cpl} rpl={rpl} gate={gate_dpl}: want allowed={want}, got {got:?}"
                        )
                    }
                }
            }
        }
    }
}

mod machine_fuzz {
    use super::*;
    use seedrng::SeedRng;

    /// Total machine: arbitrary bytes executed as ring-3 code always
    /// produce a defined exit (fault/hook/limit), never a panic, and
    /// never escalate privilege.
    #[test]
    fn seeded_random_bytes_never_panic_or_escalate() {
        let mut r = SeedRng::new(0xBAD5);
        for _ in 0..64 {
            let n = 1 + r.gen_range(0, 255) as usize;
            let mut code = vec![0u8; n];
            r.fill_bytes(&mut code);

            let mut m = Machine::new();
            let c3 = m.gdt.push(Descriptor::flat_code(3));
            let d3 = m.gdt.push(Descriptor::flat_data(3));
            let c0 = m.gdt.push(Descriptor::flat_code(0));
            let d0 = m.gdt.push(Descriptor::flat_data(0));
            // Tempting targets exist: a ring-0 code segment, a gate.
            let _gate = m.gdt.push(Descriptor::call_gate(
                Selector::new(c0, false, 0),
                0x5000,
                0, // DPL 0: unreachable from ring 3
            ));
            let _ = d0;
            m.idt[0x80] = Some(crate::machine::IdtGate { dpl: 3 });
            m.mem.write_bytes(0x1000, &code);
            m.force_seg_from_table(SegReg::Cs, Selector::new(c3, false, 3));
            m.force_seg_from_table(SegReg::Ss, Selector::new(d3, false, 3));
            m.force_seg_from_table(SegReg::Ds, Selector::new(d3, false, 3));
            for i in 0..8 {
                m.cpu.regs[i] = r.next_u32();
            }
            m.cpu.regs[Reg::Esp as usize] = 0x9000;
            m.cpu.eip = 0x1000;

            // Budgeted run: every step must leave CPL at 3 unless a legal
            // gate was traversed — and no DPL-3 gate to inner rings exists.
            for _ in 0..2000 {
                match m.step() {
                    None => {
                        assert_eq!(m.cpu.cpl, 3, "no privilege escalation");
                    }
                    Some(Exit::IntHook(0x80)) => {
                        // Syscall hook: a host kernel would service it;
                        // terminate the run here.
                        break;
                    }
                    Some(Exit::Fault(_)) | Some(Exit::Hlt) => break,
                    Some(other) => panic!("odd exit {other:?}"),
                }
            }
        }
    }
}

#[test]
fn straddling_store_is_atomic_across_a_fault() {
    // A 4-byte store crossing into an unmapped page must fault without
    // committing the bytes on the first (mapped) page.
    let mut m = Machine::new();
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    let data0 = m.gdt.push(Descriptor::flat_data(0));
    let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
    let cr3 = fa.alloc().unwrap();
    for page in [0x1000u32, 0x7000, 0x2000] {
        map_page(&mut m.mem, &mut fa, cr3, page, page, pte::RW | pte::US);
    }
    // 0x3000 is NOT mapped; the store at 0x2FFE straddles into it.
    m.mmu.set_cr3(cr3);
    m.mmu.enabled = true;

    let obj = Assembler::assemble(
        "mov eax, 0x11223344\n\
         mov [0x2FFE], eax\n\
         hlt\n",
    )
    .unwrap();
    m.mem
        .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
    m.force_seg_from_table(SegReg::Cs, Selector::new(code0, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data0, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data0, false, 0));
    m.cpu.set_reg(Reg::Esp, 0x7FF0);
    m.cpu.eip = 0x1000;

    match m.run(10) {
        Exit::Fault(f) => assert_eq!(f.vector, Vector::PageFault),
        other => panic!("expected #PF, got {other:?}"),
    }
    assert_eq!(
        m.mem.read_u16(0x2FFE),
        0,
        "no partial bytes escaped the faulting store"
    );
}

#[test]
fn straddling_access_within_mapped_pages_works() {
    let mut m = flat_machine(
        "mov eax, 0xAABBCCDD\n\
         mov [0x2FFE], eax\n\
         mov ebx, [0x2FFE]\n\
         hlt\n",
    );
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Ebx), 0xAABB_CCDD);
}

#[test]
fn condition_codes_match_reference_predicates() {
    // Exhaustive: every Jcc against every (a, b) in a small grid, checked
    // against host-side signed/unsigned comparisons after `cmp a, b`.
    use asm86::isa::Cond;
    let samples: &[u32] = &[
        0,
        1,
        2,
        0x7FFF_FFFF,
        0x8000_0000,
        0x8000_0001,
        0xFFFF_FFFE,
        0xFFFF_FFFF,
    ];
    for &a in samples {
        for &b in samples {
            let mut m = flat_machine("hlt\n");
            m.cpu.set_reg(Reg::Eax, a);
            m.execute(asm86::Insn::Cmp(Reg::Eax, asm86::Src::Imm(b as i32)), 0)
                .unwrap();
            let f = m.cpu.flags;
            let (sa, sb) = (a as i32, b as i32);
            for c in Cond::ALL {
                let cpu_taken = match c {
                    Cond::E => f.zf,
                    Cond::Ne => !f.zf,
                    Cond::L => f.sf != f.of,
                    Cond::Le => f.zf || f.sf != f.of,
                    Cond::G => !f.zf && f.sf == f.of,
                    Cond::Ge => f.sf == f.of,
                    Cond::B => f.cf,
                    Cond::Be => f.cf || f.zf,
                    Cond::A => !f.cf && !f.zf,
                    Cond::Ae => !f.cf,
                    Cond::S => f.sf,
                    Cond::Ns => !f.sf,
                };
                let want = match c {
                    Cond::E => a == b,
                    Cond::Ne => a != b,
                    Cond::L => sa < sb,
                    Cond::Le => sa <= sb,
                    Cond::G => sa > sb,
                    Cond::Ge => sa >= sb,
                    Cond::B => a < b,
                    Cond::Be => a <= b,
                    Cond::A => a > b,
                    Cond::Ae => a >= b,
                    Cond::S => sa.wrapping_sub(sb) < 0,
                    Cond::Ns => sa.wrapping_sub(sb) >= 0,
                };
                assert_eq!(
                    cpu_taken, want,
                    "cond {c:?} after cmp {a:#x}, {b:#x} (flags {f:?})"
                );
            }
        }
    }
}

#[test]
fn run_to_stops_at_breakpoints() {
    let mut m = flat_machine(
        "mov eax, 1\n\
         mov eax, 2\n\
         bp:\n\
         mov eax, 3\n\
         hlt\n",
    );
    // mov = 7 bytes each; breakpoint at the third mov.
    let bp = 0x1000 + 14;
    assert_eq!(m.run_to(bp, 100), None, "stopped before executing bp");
    assert_eq!(m.cpu.reg(Reg::Eax), 2, "two instructions executed");
    assert_eq!(m.cpu.eip, bp);
    // Continue to completion.
    assert_eq!(m.run(10), Exit::Hlt);
    assert_eq!(m.cpu.reg(Reg::Eax), 3);
}

// --- fetch-path regressions and the predecode cache ----------------------

/// Assembles one-or-more instructions and returns their raw encoding.
fn enc(src: &str) -> Vec<u8> {
    Assembler::assemble(src)
        .unwrap()
        .link(0, &BTreeMap::new())
        .unwrap()
}

/// A paged ring-0 machine with exactly one mapped code page at
/// linear/physical `0x1000`; everything else (notably `0x2000`) unmapped.
fn paged_code_page_only() -> Machine {
    let mut m = Machine::new();
    let code0 = m.gdt.push(Descriptor::flat_code(0));
    let data0 = m.gdt.push(Descriptor::flat_data(0));
    let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
    let cr3 = fa.alloc().unwrap();
    map_page(&mut m.mem, &mut fa, cr3, 0x1000, 0x1000, pte::RW | pte::US);
    m.mmu.set_cr3(cr3);
    m.mmu.enabled = true;
    m.force_seg_from_table(SegReg::Cs, Selector::new(code0, false, 0));
    m.force_seg_from_table(SegReg::Ss, Selector::new(data0, false, 0));
    m.force_seg_from_table(SegReg::Ds, Selector::new(data0, false, 0));
    m
}

/// Regression (spurious #PF): a short instruction in the last bytes of a
/// mapped page must execute even though the MAX_INSN_LEN prefetch window
/// crosses into an unmapped page. The fetch may only raise the boundary
/// fault when the decoder actually needed the missing bytes.
#[test]
fn short_insn_at_end_of_mapped_page_executes() {
    let hlt = enc("hlt\n");
    assert_eq!(hlt.len(), 1);
    for predecode in [true, false] {
        let mut m = paged_code_page_only();
        m.set_predecode(predecode);
        m.mem.write_bytes(0x1FFF, &hlt);
        m.cpu.eip = 0x1FFF;
        assert_eq!(
            m.run(10),
            Exit::Hlt,
            "spurious #PF with predecode={predecode}"
        );
    }
}

/// Companion: an instruction that genuinely continues into the unmapped
/// page still page-faults, with the fault at the page boundary.
#[test]
fn truncated_insn_at_page_boundary_still_faults() {
    let mov = enc("mov eax, 1\n");
    assert!(mov.len() > 1);
    for predecode in [true, false] {
        let mut m = paged_code_page_only();
        m.set_predecode(predecode);
        m.mem.write_bytes(0x1FFF, &mov); // only byte 0 is in the mapped page
        m.cpu.eip = 0x1FFF;
        match m.run(10) {
            Exit::Fault(f) => {
                assert_eq!(f.vector, Vector::PageFault, "predecode={predecode}");
                match f.cause {
                    FaultCause::Page { linear, .. } => assert_eq!(linear, 0x2000),
                    other => panic!("wrong cause {other:?}"),
                }
            }
            other => panic!("expected #PF, got {other:?} (predecode={predecode})"),
        }
    }
}

/// Regression (debug-build panic): a page-straddling access whose linear
/// address wraps past 0xFFFF_FFFF must wrap like `seg_check` does, not
/// panic on `linear + i` overflow.
#[test]
fn straddling_access_wraps_past_top_of_linear_space() {
    use crate::desc::DataSeg;
    let mut m = flat_machine("hlt\n");
    let high = m.gdt.push(Descriptor::Data(DataSeg {
        base: 0xFFFF_F000,
        limit: 0xFFFF_FFFF,
        dpl: 0,
        writable: true,
        expand_down: false,
        present: true,
    }));
    m.force_seg_from_table(SegReg::Es, Selector::new(high, false, 0));

    // Linear 0xFFFF_FFFE..=0x1: straddles both the page at the top of the
    // address space and the wrap-around.
    m.mem.write_u8(0xFFFF_FFFE, 0x11);
    m.mem.write_u8(0xFFFF_FFFF, 0x22);
    m.mem.write_u8(0x0000_0000, 0x33);
    m.mem.write_u8(0x0000_0001, 0x44);
    assert_eq!(m.read_data(SegReg::Es, 0xFFE, 4), Ok(0x4433_2211));

    assert_eq!(m.write_data(SegReg::Es, 0xFFE, 4, 0xAABB_CCDD), Ok(()));
    assert_eq!(m.mem.read_u8(0xFFFF_FFFE), 0xDD);
    assert_eq!(m.mem.read_u8(0xFFFF_FFFF), 0xCC);
    assert_eq!(m.mem.read_u8(0x0000_0000), 0xBB);
    assert_eq!(m.mem.read_u8(0x0000_0001), 0xAA);
}

/// Self-modifying code via a *guest store*: the program overwrites an
/// instruction it has already executed (and which is therefore in the
/// predecode cache); the very next fetch must see the new bytes.
#[test]
fn guest_store_into_executed_code_is_seen_by_next_fetch() {
    let enc5 = enc("add eax, 5\n");
    let enc9 = enc("add eax, 9\n");
    assert_eq!(enc5.len(), enc9.len());
    // The encodings differ only in the immediate; patch the dword that
    // starts at the first differing byte.
    let w = enc5.iter().zip(&enc9).position(|(a, b)| a != b).unwrap();
    assert!(w + 4 <= enc5.len() && enc5[w + 4..] == enc9[w + 4..]);
    let patch = u32::from_le_bytes(enc9[w..w + 4].try_into().unwrap());

    let src = |addr: u32| {
        format!(
            "mov eax, 0\n\
             mov ecx, 0\n\
             top:\n\
             add eax, 5\n\
             cmp ecx, 1\n\
             je done\n\
             mov ecx, 1\n\
             mov ebx, 0x{patch:08X}\n\
             mov [0x{addr:08X}], ebx\n\
             jmp top\n\
             done:\n\
             hlt\n"
        )
    };
    // Two-pass: locate the target instruction in a probe image (every
    // operand is fixed-width, so the layout is address-independent).
    let probe = Assembler::assemble(&src(0x9999_9999))
        .unwrap()
        .link(0x1000, &BTreeMap::new())
        .unwrap();
    let t_off = probe
        .windows(enc5.len())
        .position(|w| w == &enc5[..])
        .expect("target insn in image") as u32;

    let mut m = flat_machine(&src(0x1000 + t_off + w as u32));
    run_to_hlt(&mut m);
    assert_eq!(m.cpu.reg(Reg::Eax), 14, "5 before the patch, 9 after");
}

/// Self-modifying code via `host_write` (the loader / kernel path): the
/// cache must be invalidated exactly like for guest stores.
#[test]
fn host_write_into_executed_code_is_seen_by_next_fetch() {
    let enc5 = enc("add eax, 5\n");
    let enc9 = enc("add eax, 9\n");
    let mut m = flat_machine("top:\nadd eax, 5\njmp top\n");
    // `top` is at 0x1000; run two loop iterations so the add is cached.
    assert_eq!(m.run(4), Exit::InsnLimit);
    assert_eq!(m.cpu.reg(Reg::Eax), 10);
    assert!(
        m.predecode_stats().hits > 0,
        "second loop iteration is served from the cache"
    );
    assert!(m.host_write(0x1000, &enc9));
    assert_eq!(m.run(2), Exit::InsnLimit);
    assert_eq!(m.cpu.reg(Reg::Eax), 19, "the very next fetch sees 9");
    // And back again.
    assert!(m.host_write(0x1000, &enc5));
    assert_eq!(m.run(2), Exit::InsnLimit);
    assert_eq!(m.cpu.reg(Reg::Eax), 24);
}

/// A page-straddling instruction is cached against *both* frames: a write
/// that only touches the second page must still invalidate it.
#[test]
fn straddling_insn_invalidated_by_store_to_second_page() {
    let add = enc("add eax, 5\n");
    let hlt = enc("hlt\n");
    assert!(add.len() >= 2);
    // Place the add so exactly its last byte (the immediate's high byte)
    // lands on the next page.
    let start = 0x2001 - add.len() as u32;
    let run_at = |image: &[u8], m: &mut Machine| {
        m.mem.write_bytes(start, image);
        m.mem.write_bytes(start + add.len() as u32, &hlt);
        m.cpu.eip = start;
        m.cpu.set_reg(Reg::Eax, 0);
        run_to_hlt(m);
        m.cpu.reg(Reg::Eax)
    };

    let mut patched = add.clone();
    *patched.last_mut().unwrap() ^= 0x01;
    // Ground truth from a fresh machine that never saw the original.
    let expected = run_at(&patched, &mut flat_machine("hlt\n"));
    assert_ne!(expected, 5);

    let mut m = flat_machine("hlt\n");
    assert_eq!(run_at(&add, &mut m), 5);
    // Patch only the byte on the second page, on the same machine.
    let got = run_at(&patched, &mut m);
    assert_eq!(got, expected, "stale straddling decode served");
}

/// The predecode fast path is cycle-neutral: an identical workload run
/// with the cache on and off retires the same instructions, charges the
/// same cycles and walks the page tables the same number of times.
#[test]
fn predecode_fast_path_is_cycle_neutral() {
    fn run(predecode: bool) -> (u64, u64, u64, u32, u32) {
        let mut m = Machine::new();
        let code0 = m.gdt.push(Descriptor::flat_code(0));
        let data0 = m.gdt.push(Descriptor::flat_data(0));
        let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
        let cr3 = fa.alloc().unwrap();
        for page in [0x1000u32, 0x2000, 0x7000] {
            map_page(&mut m.mem, &mut fa, cr3, page, page, pte::RW | pte::US);
        }
        m.mmu.set_cr3(cr3);
        m.mmu.enabled = true;
        let obj = Assembler::assemble(
            "mov eax, 0\n\
             mov ecx, 50\n\
             top:\n\
             add eax, ecx\n\
             mov [0x2000], eax\n\
             mov ebx, [0x2000]\n\
             push ebx\n\
             pop edx\n\
             dec ecx\n\
             cmp ecx, 0\n\
             jne top\n\
             hlt\n",
        )
        .unwrap();
        m.mem
            .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
        m.force_seg_from_table(SegReg::Cs, Selector::new(code0, false, 0));
        m.force_seg_from_table(SegReg::Ss, Selector::new(data0, false, 0));
        m.force_seg_from_table(SegReg::Ds, Selector::new(data0, false, 0));
        m.cpu.set_reg(Reg::Esp, 0x7FF0);
        m.cpu.eip = 0x1000;
        m.set_predecode(predecode);
        run_to_hlt(&mut m);
        (
            m.cycles(),
            m.insns(),
            m.mmu.stats.misses,
            m.cpu.reg(Reg::Eax),
            m.cpu.esp(),
        )
    }
    assert_eq!(run(true), run(false));
}

mod checkpoint {
    //! Differential checkpoint/restore tests: a restored world must be
    //! cycle/stat/fault byte-identical going forward versus the world
    //! that never checkpointed.

    use super::*;
    use seedrng::SeedRng;

    /// Everything observable about a machine's forward behaviour.
    fn observe(m: &Machine) -> (u64, u64, crate::paging::TlbStats, [u32; 8], u32, u8, usize) {
        (
            m.cycles(),
            m.insns(),
            m.mmu.stats,
            m.cpu.regs,
            m.cpu.eip,
            m.cpu.cpl,
            m.mem.resident_frames(),
        )
    }

    /// A paged two-ring-ish workload with loops, stores and stack
    /// traffic — enough to populate the TLB, the predecode cache and a
    /// few dozen frames.
    fn paged_workload(predecode: bool) -> Machine {
        let mut m = Machine::new();
        let code0 = m.gdt.push(Descriptor::flat_code(0));
        let data0 = m.gdt.push(Descriptor::flat_data(0));
        let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x40_0000);
        let cr3 = fa.alloc().unwrap();
        m.mem.zero(cr3, crate::mem::PAGE_SIZE);
        for page in 0..16u32 {
            assert!(map_page(
                &mut m.mem,
                &mut fa,
                cr3,
                page << 12,
                page << 12,
                pte::RW | pte::US
            ));
        }
        m.mmu.set_cr3(cr3);
        m.mmu.enabled = true;
        let obj = Assembler::assemble(
            "top:\n\
             mov eax, [0x2000]\n\
             add eax, 3\n\
             mov [0x2000], eax\n\
             push eax\n\
             pop ebx\n\
             mov [0x3000], ebx\n\
             dec ecx\n\
             cmp ecx, 0\n\
             jne top\n\
             hlt\n",
        )
        .unwrap();
        m.mem
            .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
        m.force_seg_from_table(SegReg::Cs, Selector::new(code0, false, 0));
        m.force_seg_from_table(SegReg::Ss, Selector::new(data0, false, 0));
        m.force_seg_from_table(SegReg::Ds, Selector::new(data0, false, 0));
        m.cpu.set_reg(Reg::Esp, 0x7FF0);
        m.cpu.set_reg(Reg::Ecx, 400);
        m.cpu.eip = 0x1000;
        m.set_predecode(predecode);
        m
    }

    #[test]
    fn save_is_deterministic() {
        let m = paged_workload(true);
        assert_eq!(m.save_image(), m.save_image());
    }

    #[test]
    fn restore_resumes_byte_identically_mid_run() {
        for predecode in [true, false] {
            let mut r = SeedRng::new(0x1DE2_0001);
            for _ in 0..6 {
                let split = r.gen_range(1, 1200) as u64;
                let mut original = paged_workload(predecode);
                // Run to a random split point, checkpoint, then let the
                // original continue untouched.
                assert_eq!(original.run(split), Exit::InsnLimit);
                let img = original.save_image();
                let mut restored = Machine::restore_image(&img).unwrap();
                assert_eq!(observe(&original), observe(&restored));
                let a = original.run(1_000_000);
                let b = restored.run(1_000_000);
                assert_eq!(a, b);
                assert_eq!(
                    observe(&original),
                    observe(&restored),
                    "divergence after split {split} (predecode={predecode})"
                );
                assert_eq!(
                    original.mem.read_bytes(0x2000, 8),
                    restored.mem.read_bytes(0x2000, 8)
                );
            }
        }
    }

    #[test]
    fn restore_preserves_faults_forward() {
        // A world about to fault must fault identically after restore.
        let mut m = paged_workload(true);
        let _ = m.run(50);
        // Point it at an unmapped page.
        let obj = Assembler::assemble("mov eax, [0x00F0F000]\nhlt\n").unwrap();
        m.mem
            .write_bytes(0x1800, &obj.link(0x1800, &BTreeMap::new()).unwrap());
        m.cpu.eip = 0x1800;
        let img = m.save_image();
        let mut restored = Machine::restore_image(&img).unwrap();
        let a = m.run(10);
        let b = restored.run(10);
        assert_eq!(a, b);
        assert!(
            matches!(a, Exit::Fault(ref f) if f.vector == Vector::PageFault),
            "got {a:?}"
        );
        assert_eq!(m.cycles(), restored.cycles());
    }

    #[test]
    fn fork_then_checkpoint_then_restore_interleaving() {
        // A forked world checkpointed mid-run restores into a world
        // indistinguishable from the fork — and independent of both the
        // template and the fork.
        let mut template = paged_workload(true);
        assert_eq!(template.run(100), Exit::InsnLimit);
        let snap = template.snapshot();
        let mut fork = snap.fork();
        assert_eq!(fork.run(150), Exit::InsnLimit);
        let img = fork.save_image();
        let mut restored = Machine::restore_image(&img).unwrap();
        assert_eq!(observe(&fork), observe(&restored));
        let a = fork.run(1_000_000);
        let b = restored.run(1_000_000);
        assert_eq!(a, b);
        assert_eq!(observe(&fork), observe(&restored));
        // The template continues unaffected by either.
        let mut t = snap.fork();
        assert_eq!(t.cycles(), {
            let mut t2 = snap.fork();
            let _ = t2.run(0);
            t2.cycles()
        });
        let _ = t.run(1_000_000);
    }

    #[test]
    fn corrupted_machine_images_are_rejected_never_restored() {
        let mut m = paged_workload(true);
        let _ = m.run(300);
        let img = m.save_image();
        let mut r = SeedRng::new(0xBADC_0DE5);
        // Seeded bit flips anywhere in the image.
        for _ in 0..64 {
            let mut bad = img.clone();
            let byte = r.gen_range(0, bad.len() as u32) as usize;
            let bit = r.gen_range(0, 8) as u8;
            bad[byte] ^= 1 << bit;
            assert!(
                Machine::restore_image(&bad).is_err(),
                "bit flip at byte {byte} bit {bit} silently restored"
            );
        }
        // Seeded truncations.
        for _ in 0..32 {
            let len = r.gen_range(0, img.len() as u32) as usize;
            assert!(Machine::restore_image(&img[..len]).is_err());
        }
    }
}

mod proof_tokens {
    //! Proof-token check elision: host-only speedup, byte-identical
    //! simulated behavior, invalidated by self-modification.

    use super::*;
    use crate::proof::{ProofDs, ProofInstallError};

    /// A straight-line block with DS loads and stores, then `hlt`. The
    /// token covers everything but the final `hlt`.
    const BLOCK_SRC: &str = "mov eax, 0x11223344\n\
         mov [0x2000], eax\n\
         mov ebx, [0x2000]\n\
         add ebx, 1\n\
         mov [0x2004], ebx\n\
         hlt\n";

    fn block_len(m: &Machine) -> u32 {
        // Everything from 0x1000 up to (not including) the hlt.
        let bytes = m.host_read(0x1000, 64);
        let mut at = 0usize;
        loop {
            let (insn, len) = asm86::decode(&bytes[at..]).expect("decodable program");
            if matches!(insn, asm86::isa::Insn::Hlt) {
                return at as u32;
            }
            at += len;
        }
    }

    #[test]
    fn served_block_is_byte_identical_to_unelided() {
        let template = flat_machine(BLOCK_SRC).snapshot();
        let mut a = template.fork();
        let mut b = template.fork();
        let len = block_len(&a);
        a.install_proof_token(
            0x1000,
            len,
            Some(ProofDs {
                hi: 0x2007,
                loads: true,
                stores: true,
            }),
        )
        .unwrap();
        b.set_proof_elision(false);
        run_to_hlt(&mut a);
        run_to_hlt(&mut b);
        assert_eq!(a.cycles(), b.cycles());
        assert_eq!(a.insns(), b.insns());
        assert_eq!(a.cpu.reg(Reg::Eax), b.cpu.reg(Reg::Eax));
        assert_eq!(a.cpu.reg(Reg::Ebx), 0x11223345);
        assert_eq!(a.mem.read_u32(0x2004), 0x11223345);
        let stats = a.proof_stats();
        assert_eq!(stats.activations, 1);
        assert_eq!(stats.served, 5);
        assert_eq!(stats.ds_elided, 3, "three DS accesses in the block");
        // And the durable images agree byte for byte (tokens are derived
        // state, the elision flag is not serialized).
        b.set_proof_elision(true);
        assert_eq!(a.save_image(), b.save_image());
    }

    #[test]
    fn smc_invalidates_the_token() {
        let mut m = flat_machine(BLOCK_SRC);
        let len = block_len(&m);
        m.install_proof_token(0x1000, len, None).unwrap();
        run_to_hlt(&mut m);
        assert_eq!(m.proof_stats().served, 5);
        // Overwrite the first instruction's immediate (its trailing four
        // bytes): the store bumps the slot's code generation, so the
        // token must stop serving stale bytes.
        let (_, len0) = asm86::decode(&m.host_read(0x1000, 16)).unwrap();
        m.host_write_u32(0x1000 + len0 as u32 - 4, 0x5566_7788);
        m.cpu.eip = 0x1000;
        run_to_hlt(&mut m);
        assert_eq!(
            m.proof_stats().served,
            5,
            "no serves after self-modification"
        );
        assert_eq!(m.cpu.reg(Reg::Eax), 0x5566_7788, "new bytes executed");
    }

    #[test]
    fn failed_ds_guard_disables_elision_not_execution() {
        let mut m = flat_machine(BLOCK_SRC);
        let len = block_len(&m);
        // Claim a DS range beyond the flat limit is impossible; instead
        // shrink DS so the guard (hi <= limit) fails.
        let small = m.gdt.push(Descriptor::Data(crate::desc::DataSeg {
            base: 0,
            limit: 0x1fff, // excludes offset 0x2000
            dpl: 0,
            writable: true,
            expand_down: false,
            present: true,
        }));
        m.force_seg_from_table(SegReg::Ds, Selector::new(small, false, 0));
        m.install_proof_token(
            0x1000,
            len,
            Some(ProofDs {
                hi: 0x2007,
                loads: true,
                stores: true,
            }),
        )
        .unwrap();
        // The block's first DS store is now out of segment: the fault
        // must be delivered exactly as on the normal path (the entry
        // guard refused elision; the per-access check still runs).
        let exit = m.run(10);
        assert!(
            matches!(exit, Exit::Fault(ref f) if f.vector == Vector::GeneralProtection),
            "got {exit:?}"
        );
        assert_eq!(m.proof_stats().ds_elided, 0);
    }

    #[test]
    fn install_rejects_bad_blocks() {
        let mut m = flat_machine(BLOCK_SRC);
        let len = block_len(&m);
        assert_eq!(
            m.install_proof_token(0x1000, 0, None),
            Err(ProofInstallError::Empty)
        );
        assert_eq!(
            m.install_proof_token(0x1000, len - 1, None),
            Err(ProofInstallError::BadBytes),
            "length not tiling instruction boundaries"
        );
        assert_eq!(
            m.install_proof_token(0x1FFC, 8, None),
            Err(ProofInstallError::CrossesPage)
        );
        assert_eq!(m.proof_token_count(), 0);
        m.install_proof_token(0x1000, len, None).unwrap();
        assert_eq!(m.proof_token_count(), 1);
        m.clear_proof_tokens();
        assert_eq!(m.proof_token_count(), 0);
    }

    #[test]
    fn forked_worlds_share_tokens_copy_on_write() {
        let mut m = flat_machine(BLOCK_SRC);
        let len = block_len(&m);
        m.install_proof_token(0x1000, len, None).unwrap();
        let mut f = m.fork();
        run_to_hlt(&mut f);
        assert_eq!(f.proof_stats().served, 5);
        // The template never served anything.
        assert_eq!(m.proof_stats().served, 0);
        f.clear_proof_tokens();
        assert_eq!(m.proof_token_count(), 1, "template keeps its token");
    }
}

// --- protection keys ------------------------------------------------------

mod protection_keys {
    use super::*;
    use crate::fault::pf_err;

    /// A ring-3 machine with flat segments running `src` at 0x1000,
    /// paging off.
    fn ring3_machine(src: &str) -> Machine {
        let mut m = Machine::new();
        let code3 = m.gdt.push(Descriptor::flat_code(3));
        let data3 = m.gdt.push(Descriptor::flat_data(3));
        let obj = Assembler::assemble(src).expect("asm");
        m.mem
            .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
        m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
        m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
        m.force_seg_from_table(SegReg::Ds, Selector::new(data3, false, 3));
        m.cpu.set_reg(Reg::Esp, 0x8000);
        m.cpu.eip = 0x1000;
        m
    }

    #[test]
    fn wrpkru_at_cpl3_requires_registered_gate() {
        let src = "wrpkru 0xC\nrdpkru eax\nint 0x30\n";
        // Unregistered site: Garmr-style gate-integrity #GP.
        let mut m = ring3_machine(src);
        m.idt[0x30] = Some(crate::machine::IdtGate { dpl: 3 });
        match m.run(10) {
            Exit::Fault(f) => {
                assert_eq!(f.vector, Vector::GeneralProtection);
                assert_eq!(f.cause, FaultCause::KeyGateViolation { site: 0x1000 });
                assert_eq!(f.cause.tag(), "key-gate");
            }
            other => panic!("expected #GP, got {other:?}"),
        }
        assert_eq!(m.cpu.pkru, 0, "PKRU untouched by the rejected write");

        // Registered site: the write lands and rdpkru reads it back.
        let mut m = ring3_machine(src);
        m.idt[0x30] = Some(crate::machine::IdtGate { dpl: 3 });
        m.register_key_gate(0x1000);
        match m.run(10) {
            Exit::IntHook(0x30) => {}
            other => panic!("expected IntHook, got {other:?}"),
        }
        assert_eq!(m.cpu.pkru, 0xC);
        assert_eq!(m.cpu.reg(Reg::Eax), 0xC);
    }

    #[test]
    fn supervisor_wrpkru_needs_no_gate() {
        let mut m = flat_machine("wrpkru 0x3\nhlt\n");
        run_to_hlt(&mut m);
        assert_eq!(m.cpu.pkru, 0x3);
    }

    #[test]
    fn revoked_key_denies_user_access_despite_warm_memo() {
        // Ring 3, paging on: the data page carries key 5. The first load
        // succeeds (and warms the TLB, the memo and the predecode cache);
        // a gated wrpkru then revokes key 5, and the very next load of
        // the *same* page must #PF with the PKEY error bit — the cached
        // translation may not bypass the live rights check.
        let mut m = Machine::new();
        let code3 = m.gdt.push(Descriptor::flat_code(3));
        let data3 = m.gdt.push(Descriptor::flat_data(3));
        let mut fa = crate::mem::FrameAlloc::new(0x10_0000, 0x20_0000);
        let cr3 = fa.alloc().unwrap();
        map_page(&mut m.mem, &mut fa, cr3, 0x1000, 0x1000, pte::RW | pte::US);
        map_page(&mut m.mem, &mut fa, cr3, 0x7000, 0x7000, pte::RW | pte::US);
        map_page(
            &mut m.mem,
            &mut fa,
            cr3,
            0x2000,
            0x2000,
            pte::RW | pte::US | pte::key_flags(5),
        );
        m.mmu.set_cr3(cr3);
        m.mmu.enabled = true;

        // AD for key 5 is bit 10.
        let src = "mov eax, [0x2000]\n\
                   mov eax, [0x2000]\n\
                   wrpkru 0x400\n\
                   mov ebx, [0x2000]\n\
                   int 0x30\n";
        let obj = Assembler::assemble(src).unwrap();
        m.mem
            .write_bytes(0x1000, &obj.link(0x1000, &BTreeMap::new()).unwrap());
        m.idt[0x30] = Some(crate::machine::IdtGate { dpl: 3 });
        m.force_seg_from_table(SegReg::Cs, Selector::new(code3, false, 3));
        m.force_seg_from_table(SegReg::Ss, Selector::new(data3, false, 3));
        m.force_seg_from_table(SegReg::Ds, Selector::new(data3, false, 3));
        m.cpu.set_reg(Reg::Esp, 0x8000);
        m.cpu.eip = 0x1000;

        // The wrpkru sits after the two loads.
        let load_len = enc("mov eax, [0x2000]\n").len() as u32;
        m.register_key_gate(0x1000 + 2 * load_len);

        m.mem.write_u32(0x2000, 0xFEED);
        match m.run(20) {
            Exit::Fault(f) => {
                assert_eq!(f.vector, Vector::PageFault);
                assert_eq!(f.cr2, Some(0x2000));
                assert_ne!(f.error_code & pf_err::PKEY, 0, "PKEY bit set");
                assert_ne!(f.error_code & pf_err::PRESENT, 0);
                assert_eq!(f.cause.tag(), "page-key");
            }
            other => panic!("expected #PF, got {other:?}"),
        }
        assert_eq!(m.cpu.reg(Reg::Eax), 0xFEED, "pre-revocation loads ran");
        assert_eq!(m.cpu.reg(Reg::Ebx), 0, "post-revocation load blocked");
    }

    #[test]
    fn image_roundtrip_carries_pkru_and_gate_sites() {
        let mut m = ring3_machine("wrpkru 0xC\nint 0x30\n");
        m.idt[0x30] = Some(crate::machine::IdtGate { dpl: 3 });
        m.cpu.pkru = 0x30;
        m.register_key_gate(0x1000);
        m.register_key_gate(0x4CAFE);

        let img = m.save_image();
        let mut back = Machine::restore_image(&img).unwrap();
        assert_eq!(back.cpu.pkru, 0x30);
        assert!(back.key_gate_registered(0x1000));
        assert!(back.key_gate_registered(0x4CAFE));
        assert!(!back.key_gate_registered(0x2000));
        assert_eq!(back.save_image(), img, "deterministic re-save");

        // The restored gate registration is live: the wrpkru executes.
        match back.run(10) {
            Exit::IntHook(0x30) => {}
            other => panic!("expected IntHook, got {other:?}"),
        }
        assert_eq!(back.cpu.pkru, 0xC);
    }
}
