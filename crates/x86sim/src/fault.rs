//! The exception model.
//!
//! Protection violations detected by the simulated hardware surface as
//! [`Fault`] values carrying the same information real x86 pushes for its
//! exception handlers: the vector, an error code, and `CR2` for page
//! faults. The hosting kernel turns these into SIGSEGV delivery or
//! extension aborts exactly as §4.5.2 of the paper describes.

use core::fmt;

/// Exception vectors (the subset the protection architecture raises).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Vector {
    /// #DE — divide error.
    DivideError,
    /// #UD — invalid opcode.
    InvalidOpcode,
    /// #NP — segment not present.
    NotPresent,
    /// #SS — stack-segment fault.
    StackFault,
    /// #GP — general protection.
    GeneralProtection,
    /// #PF — page fault.
    PageFault,
}

impl Vector {
    /// The x86 vector number.
    pub fn number(self) -> u8 {
        match self {
            Vector::DivideError => 0,
            Vector::InvalidOpcode => 6,
            Vector::NotPresent => 11,
            Vector::StackFault => 12,
            Vector::GeneralProtection => 13,
            Vector::PageFault => 14,
        }
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Vector::DivideError => "#DE",
            Vector::InvalidOpcode => "#UD",
            Vector::NotPresent => "#NP",
            Vector::StackFault => "#SS",
            Vector::GeneralProtection => "#GP",
            Vector::PageFault => "#PF",
        };
        f.write_str(name)
    }
}

/// Page-fault error-code bits (pushed by hardware on #PF).
pub mod pf_err {
    /// Set when the fault was a protection violation (clear: not present).
    pub const PRESENT: u32 = 1 << 0;
    /// Set when the access was a write.
    pub const WRITE: u32 = 1 << 1;
    /// Set when the access originated at CPL 3.
    pub const USER: u32 = 1 << 2;
    /// Set when a protection-key rights check denied the access (the
    /// PKRU-style bit 5 real hardware pushes for MPK violations).
    pub const PKEY: u32 = 1 << 5;
}

/// Why a fault was raised — a structured refinement of the error code,
/// used by tests and by the kernel's Palladium-aware fault handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultCause {
    /// Segment limit exceeded.
    LimitViolation {
        /// Offset that was accessed.
        offset: u32,
        /// The segment's limit.
        limit: u32,
    },
    /// Privilege check on a descriptor failed.
    PrivilegeViolation {
        /// Current privilege level at the time.
        cpl: u8,
        /// Requestor privilege level of the selector.
        rpl: u8,
        /// Descriptor privilege level.
        dpl: u8,
    },
    /// Wrong descriptor type for the operation (e.g. writing a code
    /// segment, loading SS with a read-only segment).
    BadSegmentType,
    /// A null or out-of-range selector was used.
    BadSelector(u16),
    /// Descriptor marked not-present.
    SegmentNotPresent(u16),
    /// Page-level violation; the error code distinguishes not-present from
    /// protection.
    Page {
        /// Faulting linear address (CR2).
        linear: u32,
        /// #PF error code bits.
        code: u32,
    },
    /// Executed a privileged instruction above CPL 0.
    PrivilegedInstruction,
    /// A `wrpkru` executed at CPL 3 from an address that is not a
    /// registered gate site (Garmr-style gate-integrity violation).
    KeyGateViolation {
        /// Linear address of the offending `wrpkru`.
        site: u32,
    },
    /// Undecodable instruction bytes.
    BadInstruction,
    /// Division by zero or overflow.
    Arithmetic,
    /// Attempted control transfer violating ring rules.
    BadTransfer,
}

impl FaultCause {
    /// A short, stable tag naming the cause — used by fault-injection
    /// event logs (which must be byte-identical across replays of the
    /// same seed) and by SIGSEGV-delivery traces.
    pub fn tag(&self) -> &'static str {
        match self {
            FaultCause::LimitViolation { .. } => "limit",
            FaultCause::PrivilegeViolation { .. } => "privilege",
            FaultCause::BadSegmentType => "segtype",
            FaultCause::BadSelector(_) => "selector",
            FaultCause::SegmentNotPresent(_) => "not-present",
            FaultCause::Page { code, .. } => {
                if code & pf_err::PRESENT == 0 {
                    "page-not-present"
                } else if code & pf_err::PKEY != 0 {
                    "page-key"
                } else {
                    "page-protection"
                }
            }
            FaultCause::PrivilegedInstruction => "priv-insn",
            FaultCause::KeyGateViolation { .. } => "key-gate",
            FaultCause::BadInstruction => "bad-insn",
            FaultCause::Arithmetic => "arith",
            FaultCause::BadTransfer => "transfer",
        }
    }
}

/// A delivered exception.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Fault {
    /// Which exception.
    pub vector: Vector,
    /// The hardware error code (selector index for #GP/#NP/#SS, page-fault
    /// bits for #PF, 0 otherwise).
    pub error_code: u32,
    /// Faulting linear address for #PF.
    pub cr2: Option<u32>,
    /// Structured cause.
    pub cause: FaultCause,
    /// EIP of the faulting instruction.
    pub eip: u32,
    /// CS selector at the time of the fault.
    pub cs: u16,
    /// CPL at the time of the fault.
    pub cpl: u8,
}

impl Fault {
    /// Builds a #GP with a selector error code.
    #[cold]
    pub fn gp(sel: u16, cause: FaultCause) -> FaultBuilder {
        FaultBuilder {
            vector: Vector::GeneralProtection,
            error_code: sel as u32 & !0x3,
            cr2: None,
            cause,
        }
    }

    /// Builds a #SS.
    #[cold]
    pub fn ss(sel: u16, cause: FaultCause) -> FaultBuilder {
        FaultBuilder {
            vector: Vector::StackFault,
            error_code: sel as u32 & !0x3,
            cr2: None,
            cause,
        }
    }

    /// Builds a #PF.
    #[cold]
    pub fn pf(linear: u32, code: u32) -> FaultBuilder {
        FaultBuilder {
            vector: Vector::PageFault,
            error_code: code,
            cr2: Some(linear),
            cause: FaultCause::Page { linear, code },
        }
    }

    /// Builds a #UD.
    #[cold]
    pub fn ud(cause: FaultCause) -> FaultBuilder {
        FaultBuilder {
            vector: Vector::InvalidOpcode,
            error_code: 0,
            cr2: None,
            cause,
        }
    }

    /// Builds a #NP.
    #[cold]
    pub fn np(sel: u16) -> FaultBuilder {
        FaultBuilder {
            vector: Vector::NotPresent,
            error_code: sel as u32 & !0x3,
            cr2: None,
            cause: FaultCause::SegmentNotPresent(sel),
        }
    }
}

/// A fault minus the CPU-context fields, which the machine fills in at the
/// point of delivery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultBuilder {
    /// Which exception.
    pub vector: Vector,
    /// Error code.
    pub error_code: u32,
    /// CR2 contents for #PF.
    pub cr2: Option<u32>,
    /// Structured cause.
    pub cause: FaultCause,
}

impl FaultBuilder {
    /// Attaches the CPU context, producing a deliverable [`Fault`].
    pub fn at(self, eip: u32, cs: u16, cpl: u8) -> Fault {
        Fault {
            vector: self.vector,
            error_code: self.error_code,
            cr2: self.cr2,
            cause: self.cause,
            eip,
            cs,
            cpl,
        }
    }
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} err={:#x} at {:04x}:{:08x} cpl={} ({:?})",
            self.vector, self.error_code, self.cs, self.eip, self.cpl, self.cause
        )?;
        if let Some(cr2) = self.cr2 {
            write!(f, " cr2={cr2:#010x}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vector_numbers_match_x86() {
        assert_eq!(Vector::GeneralProtection.number(), 13);
        assert_eq!(Vector::PageFault.number(), 14);
        assert_eq!(Vector::StackFault.number(), 12);
        assert_eq!(Vector::InvalidOpcode.number(), 6);
    }

    #[test]
    fn gp_error_code_masks_rpl() {
        let f = Fault::gp(0x1B, FaultCause::BadSelector(0x1B)).at(0, 0x1B, 3);
        assert_eq!(f.error_code, 0x18);
    }

    #[test]
    fn pf_records_cr2() {
        let f = Fault::pf(0xC000_0000, pf_err::PRESENT | pf_err::USER).at(0x100, 0x2B, 3);
        assert_eq!(f.cr2, Some(0xC000_0000));
        assert_eq!(f.error_code, 0b101);
        assert_eq!(f.vector, Vector::PageFault);
    }

    #[test]
    fn display_is_informative() {
        let f = Fault::pf(0x1234, pf_err::WRITE).at(0x8048000, 0x23, 3);
        let s = f.to_string();
        assert!(s.contains("#PF"));
        assert!(s.contains("cr2=0x00001234"));
    }
}
