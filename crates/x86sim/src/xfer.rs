//! Far control transfers: `lcall`, `lret`, `int`, `iret`.
//!
//! These implement the x86 inter-privilege transfer rules — call gates,
//! the TSS stack switch, and outward-return data-segment invalidation —
//! which are exactly the hardware paths Palladium's `Prepare` /
//! `Transfer` / `AppCallGate` sequences (Figure 6 of the paper) are
//! built from.

use asm86::isa::{Reg, SegReg};

use crate::cycles::Event;
use crate::desc::{resolve, CodeSeg, Descriptor, Selector};
use crate::fault::{Fault, FaultBuilder, FaultCause};
use crate::machine::{Exit, Machine, SegCache};

impl Machine {
    fn resolve_code(&self, sel: Selector) -> Result<CodeSeg, FaultBuilder> {
        match resolve(&self.gdt, self.ldt.as_ref(), sel)? {
            Descriptor::Code(c) => {
                if !c.present {
                    return Err(Fault::np(sel.0));
                }
                Ok(c)
            }
            _ => Err(Fault::gp(sel.0, FaultCause::BadSegmentType)),
        }
    }

    fn cs_cache(&self, sel: Selector, c: &CodeSeg, cpl: u8) -> SegCache {
        SegCache {
            selector: sel.with_rpl(cpl),
            valid: true,
            base: c.base,
            limit: c.limit,
            dpl: c.dpl,
            code: true,
            writable: false,
            readable: c.readable,
            expand_down: false,
            conforming: c.conforming,
        }
    }

    /// `lcall sel, off` — far call, possibly through a call gate.
    pub(crate) fn exec_lcall(
        &mut self,
        sel: Selector,
        off: u32,
        ret_eip: u32,
    ) -> Result<(), FaultBuilder> {
        let cpl = self.cpu.cpl;
        let d = resolve(&self.gdt, self.ldt.as_ref(), sel)?;
        match d {
            Descriptor::Code(c) => {
                if !c.present {
                    return Err(Fault::np(sel.0));
                }
                // Direct far call: no privilege change is ever possible.
                if c.conforming {
                    if c.dpl > cpl {
                        return Err(Fault::gp(
                            sel.0,
                            FaultCause::PrivilegeViolation {
                                cpl,
                                rpl: sel.rpl(),
                                dpl: c.dpl,
                            },
                        ));
                    }
                } else if sel.rpl() > cpl || c.dpl != cpl {
                    return Err(Fault::gp(
                        sel.0,
                        FaultCause::PrivilegeViolation {
                            cpl,
                            rpl: sel.rpl(),
                            dpl: c.dpl,
                        },
                    ));
                }
                self.charge_event(Event::FarCallDirect);
                let cs_sel = self.cpu.seg(SegReg::Cs).selector.0;
                self.push32(cs_sel as u32)?;
                self.push32(ret_eip)?;
                let cs = self.cs_cache(sel, &c, cpl);
                self.write_seg_cache(SegReg::Cs, cs);
                self.cpu.eip = off;
                Ok(())
            }
            Descriptor::Gate(g) => {
                if !g.present {
                    return Err(Fault::np(sel.0));
                }
                // Gate privilege: max(CPL, RPL) <= gate DPL.
                if cpl.max(sel.rpl()) > g.dpl {
                    return Err(Fault::gp(
                        sel.0,
                        FaultCause::PrivilegeViolation {
                            cpl,
                            rpl: sel.rpl(),
                            dpl: g.dpl,
                        },
                    ));
                }
                let target = self.resolve_code(g.selector)?;
                if target.dpl > cpl {
                    return Err(Fault::gp(
                        g.selector.0,
                        FaultCause::PrivilegeViolation {
                            cpl,
                            rpl: g.selector.rpl(),
                            dpl: target.dpl,
                        },
                    ));
                }
                if !target.conforming && target.dpl < cpl {
                    self.gate_call_inner(g.selector, &target, g.offset, g.param_count, ret_eip)
                } else {
                    // Same-privilege gate call.
                    self.charge_event(Event::GateCallSame);
                    let cs_sel = self.cpu.seg(SegReg::Cs).selector.0;
                    self.push32(cs_sel as u32)?;
                    self.push32(ret_eip)?;
                    let cs = self.cs_cache(g.selector, &target, cpl);
                    self.write_seg_cache(SegReg::Cs, cs);
                    self.cpu.eip = g.offset;
                    Ok(())
                }
            }
            _ => Err(Fault::gp(sel.0, FaultCause::BadSegmentType)),
        }
    }

    /// The inward (more-privileged) gate call with TSS stack switch.
    fn gate_call_inner(
        &mut self,
        target_sel: Selector,
        target: &CodeSeg,
        entry: u32,
        param_count: u8,
        ret_eip: u32,
    ) -> Result<(), FaultBuilder> {
        self.charge_event(Event::GateCallInner);
        let new_cpl = target.dpl;
        let (new_ss_sel, new_esp) = self.tss.stack[new_cpl as usize];

        // Validate the inner stack segment before any state changes.
        let ss_desc = resolve(&self.gdt, self.ldt.as_ref(), new_ss_sel)?;
        let ss_cache = SegCache::from_descriptor(new_ss_sel, &ss_desc)
            .ok_or(Fault::ss(new_ss_sel.0, FaultCause::BadSegmentType))?;
        if ss_cache.code || !ss_cache.writable || ss_cache.dpl != new_cpl {
            return Err(Fault::ss(new_ss_sel.0, FaultCause::BadSegmentType));
        }

        // Copy the gate's parameters from the *old* stack before switching.
        let mut params = Vec::with_capacity(param_count as usize);
        for i in 0..param_count as u32 {
            params.push(self.read_data(SegReg::Ss, self.cpu.esp().wrapping_add(4 * i), 4)?);
        }

        let old_ss = self.cpu.seg(SegReg::Ss).selector.0;
        let old_esp = self.cpu.esp();
        let old_cs = self.cpu.seg(SegReg::Cs).selector.0;

        // Switch: the pushes below execute at the *new* CPL, so an inward
        // call from SPL 3 can push onto a PPL 0 stack page.
        self.cpu.cpl = new_cpl;
        self.write_seg_cache(SegReg::Ss, ss_cache);
        self.cpu.set_reg(Reg::Esp, new_esp);

        self.push32(old_ss as u32)?;
        self.push32(old_esp)?;
        for p in params.iter().rev() {
            self.push32(*p)?;
        }
        self.push32(old_cs as u32)?;
        self.push32(ret_eip)?;

        let cs = self.cs_cache(target_sel, target, new_cpl);
        self.write_seg_cache(SegReg::Cs, cs);
        self.cpu.eip = entry;
        Ok(())
    }

    /// `lret n` — far return, possibly outward to less privileged code.
    pub(crate) fn exec_lret(&mut self, n: u32) -> Result<(), FaultBuilder> {
        let cpl = self.cpu.cpl;
        let ret_eip = self.pop32()?;
        let ret_cs = Selector(self.pop32()? as u16);
        let rpl = ret_cs.rpl();
        if rpl < cpl {
            return Err(Fault::gp(ret_cs.0, FaultCause::BadTransfer));
        }
        let target = self.resolve_code(ret_cs)?;
        if target.conforming {
            if target.dpl > rpl {
                return Err(Fault::gp(ret_cs.0, FaultCause::BadTransfer));
            }
        } else if target.dpl != rpl {
            return Err(Fault::gp(ret_cs.0, FaultCause::BadTransfer));
        }

        if rpl == cpl {
            self.charge_event(Event::FarRetSame);
            let esp = self.cpu.esp().wrapping_add(n);
            self.cpu.set_reg(Reg::Esp, esp);
            let cs = self.cs_cache(ret_cs, &target, rpl);
            self.write_seg_cache(SegReg::Cs, cs);
            self.cpu.eip = ret_eip;
            return Ok(());
        }

        // Outward return: release parameters on the inner stack, then pop
        // the outer SS:ESP that the inward transfer saved.
        self.charge_event(Event::FarRetOuter);
        let esp = self.cpu.esp().wrapping_add(n);
        self.cpu.set_reg(Reg::Esp, esp);
        let new_esp = self.pop32()?;
        let new_ss = Selector(self.pop32()? as u16);

        let ss_desc = resolve(&self.gdt, self.ldt.as_ref(), new_ss)?;
        let ss_cache = SegCache::from_descriptor(new_ss, &ss_desc)
            .ok_or(Fault::gp(new_ss.0, FaultCause::BadSegmentType))?;
        if ss_cache.code || !ss_cache.writable || ss_cache.dpl != rpl {
            return Err(Fault::gp(new_ss.0, FaultCause::BadSegmentType));
        }

        let cs = self.cs_cache(ret_cs, &target, rpl);
        self.write_seg_cache(SegReg::Cs, cs);
        self.cpu.cpl = rpl;
        self.write_seg_cache(SegReg::Ss, ss_cache);
        self.cpu.set_reg(Reg::Esp, new_esp);
        self.cpu.eip = ret_eip;
        self.invalidate_inaccessible_data_segs();
        Ok(())
    }

    /// On an outward transfer the hardware nulls DS/ES if they would be
    /// accessible above the new CPL — preventing a returning outer ring
    /// from inheriting privileged segment caches.
    fn invalidate_inaccessible_data_segs(&mut self) {
        let cpl = self.cpu.cpl;
        for sr in [SegReg::Ds, SegReg::Es] {
            let seg = &self.cpu.segs[sr as usize];
            if seg.valid && !(seg.code && seg.conforming) && seg.dpl < cpl {
                self.write_seg_cache(sr, SegCache::invalid());
            }
        }
    }

    /// `int vec` — software interrupt. Every IDT vector is a host hook;
    /// the gate's DPL check still applies (this is what stops SPL 3 code
    /// invoking ring-0-only vectors).
    pub(crate) fn exec_int(&mut self, vec: u8, next_eip: u32) -> Result<Exit, FaultBuilder> {
        let gate = self.idt[vec as usize].ok_or(Fault::gp(
            (vec as u16) * 8 + 2,
            FaultCause::BadSelector(vec as u16),
        ))?;
        if self.cpu.cpl > gate.dpl {
            return Err(Fault::gp(
                (vec as u16) * 8 + 2,
                FaultCause::PrivilegeViolation {
                    cpl: self.cpu.cpl,
                    rpl: 0,
                    dpl: gate.dpl,
                },
            ));
        }
        self.charge_event(Event::IntGate);
        // Leave the CPU at the resume point; the host kernel reads and
        // writes register state directly while "in ring 0".
        self.cpu.eip = next_eip;
        Ok(Exit::IntHook(vec))
    }

    /// `iret` from guest code.
    ///
    /// Guest ring-0 code is never run in this system (the kernel is the
    /// host), and the transfer stubs return with `lret`, so a guest `iret`
    /// is rejected as a privileged instruction unless at CPL 0.
    pub(crate) fn exec_iret(&mut self) -> Result<(), FaultBuilder> {
        Err(Fault::gp(0, FaultCause::PrivilegedInstruction))
    }
}
