//! The Pentium-derived cycle cost model.
//!
//! The paper reports two kinds of numbers for its control-transfer paths
//! (Table 1): *measured* cycle counts from the Pentium performance counter,
//! and the *theoretical* ("Hardware") counts from the Pentium architecture
//! manual, attributing the difference to data/control pipeline hazards.
//!
//! The simulator charges the **measured** per-instruction costs while it
//! executes, so cycle counters read with `rdtsc` or
//! [`Machine::cycles`](crate::machine::Machine::cycles) reproduce the
//! paper's measured columns. The **documented** table is exposed
//! separately (fractional, reflecting U/V-pipe pairing) for the analytic
//! "Hardware" column of Table 1.
//!
//! Clock conversions use the paper's 200 MHz Pentium (5 ns per cycle).

use asm86::isa::Insn;

/// The simulated clock rate: 200 MHz, as in the paper's evaluation.
pub const CLOCK_HZ: u64 = 200_000_000;

/// Converts cycles to microseconds at the simulated clock rate.
pub fn cycles_to_us(cycles: u64) -> f64 {
    cycles as f64 / (CLOCK_HZ as f64 / 1e6)
}

/// Converts microseconds to cycles at the simulated clock rate.
pub fn us_to_cycles(us: f64) -> u64 {
    (us * (CLOCK_HZ as f64 / 1e6)).round() as u64
}

/// Costs of events that are not plain instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Loading a data segment register (`mov sreg, r` / `pop sreg`).
    ///
    /// The manual documents 2-3 cycles; the paper measured 12 consistently
    /// (§5.1) — the measured table uses 12.
    SegLoad,
    /// Far call directly to a code segment (no gate, no privilege change).
    FarCallDirect,
    /// Call through a call gate without a privilege change.
    GateCallSame,
    /// Call through a call gate *to more privileged code* — the expensive
    /// inward transition with a TSS stack switch (`lcall` in the return
    /// path of Figure 6, measured at about 75 cycles including the
    /// adjacent `ret`).
    GateCallInner,
    /// Far return without privilege change.
    FarRetSame,
    /// Far return *to less privileged code* (the `lret` leaving `Prepare`).
    FarRetOuter,
    /// Software interrupt through an interrupt gate to ring 0.
    IntGate,
    /// `iret` resuming a less-privileged context.
    IretResume,
    /// A TLB miss (two-level page walk).
    TlbMiss,
    /// Delivery of an exception to the kernel (vectoring cost only; the
    /// kernel's handler work is charged by the kernel's own cost model).
    ExceptionDelivery,
}

/// Per-instruction and per-event measured cycle costs.
///
/// These are what the simulated CPU charges. Values are calibrated against
/// the Pentium manual and the paper's measured breakdown (Table 1):
/// a protected null call must decompose as 26 + 34 + 75 + 7 = 142 cycles
/// and an unprotected one as 2 + 3 + 3 + 2 = 10.
pub fn measured_cost(insn: &Insn) -> u64 {
    use asm86::isa::Src;
    match insn {
        Insn::Nop | Insn::Hlt => 1,
        Insn::Mov(..) => 1,
        Insn::Load(..) | Insn::LoadB(..) | Insn::LoadW(..) => 2,
        Insn::Store(..) | Insn::StoreB(..) | Insn::StoreW(..) => 3,
        Insn::MovToSeg(..) | Insn::PopSeg(..) => 0, // charged via Event::SegLoad
        Insn::MovFromSeg(..) => 1,
        Insn::Lea(..) => 1,
        Insn::Push(Src::Reg(_)) => 1,
        Insn::Push(Src::Imm(_)) => 2,
        Insn::PushM(..) => 3,
        Insn::PushSeg(..) => 2,
        Insn::Pop(..) => 1,
        Insn::PopM(..) => 4,
        Insn::Alu(..) => 1,
        Insn::AluM(..) => 2,
        Insn::Neg(..) | Insn::Not(..) | Insn::Inc(..) | Insn::Dec(..) => 1,
        Insn::Cmp(..) | Insn::Test(..) => 1,
        Insn::CmpM(..) => 2,
        Insn::Jmp(..) => 1,
        Insn::JmpReg(..) => 2,
        // Indirect jump through memory: the dominant use is interpreter
        // dispatch and PLT entry, where the Pentium's BTB misses —
        // base cost plus the 4-5 cycle misprediction flush and the AGI
        // stall on the table load.
        Insn::JmpM(..) => 12,
        // Charged as not-taken; `taken_branch_extra` adds the rest.
        Insn::Jcc(..) => 1,
        Insn::Call(..) => 3,
        Insn::CallReg(..) => 4,
        Insn::CallM(..) => 5,
        Insn::Ret | Insn::RetN(..) => 3,
        // Far transfers are charged via events (the cost depends on the
        // privilege transition, which is only known at execution time).
        Insn::Lcall(..) | Insn::Lret | Insn::LretN(..) | Insn::Int(..) | Insn::Iret => 0,
        Insn::Rdtsc => 6,
        // WRPKRU serializes the pipeline on real MPK hardware (~20-60
        // cycles measured); RDPKRU is a cheap register read.
        Insn::Wrpkru(..) => 23,
        Insn::Rdpkru(..) => 1,
    }
}

/// Extra cycles when a conditional branch is taken (flush penalty).
pub const TAKEN_BRANCH_EXTRA: u64 = 2;

/// Measured costs of non-instruction events.
pub fn measured_event(ev: Event) -> u64 {
    match ev {
        Event::SegLoad => 12,
        Event::FarCallDirect => 12,
        Event::GateCallSame => 22,
        Event::GateCallInner => 72,
        Event::FarRetSame => 10,
        Event::FarRetOuter => 31,
        Event::IntGate => 85,
        Event::IretResume => 56,
        Event::TlbMiss => 9,
        Event::ExceptionDelivery => 82,
    }
}

/// Documented (architecture-manual) per-instruction costs.
///
/// Fractional values model U/V-pipe pairing: two simple paired
/// instructions retire per cycle on the Pentium, so a paired simple op
/// effectively costs half a cycle. These feed the analytic "Hardware"
/// column of Table 1 only; the simulator never charges them.
pub fn documented_cost(insn: &Insn) -> f64 {
    use asm86::isa::Src;
    match insn {
        Insn::Nop | Insn::Hlt => 0.5,
        Insn::Mov(..) => 0.5,
        Insn::Load(..) | Insn::LoadB(..) | Insn::LoadW(..) => 1.0,
        Insn::Store(..) | Insn::StoreB(..) | Insn::StoreW(..) => 0.5,
        Insn::MovToSeg(..) | Insn::PopSeg(..) => 2.5,
        Insn::MovFromSeg(..) => 0.5,
        Insn::Lea(..) => 0.5,
        Insn::Push(Src::Reg(_)) => 0.5,
        Insn::Push(Src::Imm(_)) => 0.5,
        Insn::PushM(..) => 1.0,
        Insn::PushSeg(..) => 0.5,
        Insn::Pop(..) => 0.5,
        Insn::PopM(..) => 1.0,
        Insn::Alu(..) => 0.5,
        Insn::AluM(..) => 1.0,
        Insn::Neg(..) | Insn::Not(..) | Insn::Inc(..) | Insn::Dec(..) => 0.5,
        Insn::Cmp(..) | Insn::Test(..) => 0.5,
        Insn::CmpM(..) => 1.0,
        Insn::Jmp(..) => 1.0,
        Insn::JmpReg(..) => 2.0,
        Insn::JmpM(..) => 4.0,
        Insn::Jcc(..) => 1.0,
        Insn::Call(..) => 3.0,
        Insn::CallReg(..) => 3.0,
        Insn::CallM(..) => 3.0,
        Insn::Ret | Insn::RetN(..) => 3.0,
        Insn::Lcall(..) | Insn::Lret | Insn::LretN(..) | Insn::Int(..) | Insn::Iret => 0.0,
        Insn::Rdtsc => 6.0,
        Insn::Wrpkru(..) => 23.0,
        Insn::Rdpkru(..) => 1.0,
    }
}

/// Documented costs of non-instruction events (Pentium manual values).
pub fn documented_event(ev: Event) -> f64 {
    match ev {
        Event::SegLoad => 2.5,
        Event::FarCallDirect => 4.0,
        Event::GateCallSame => 13.0,
        Event::GateCallInner => 41.0,
        Event::FarRetSame => 4.0,
        Event::FarRetOuter => 19.0,
        Event::IntGate => 71.0,
        Event::IretResume => 36.0,
        Event::TlbMiss => 9.0,
        Event::ExceptionDelivery => 71.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::isa::{Mem, Reg, Src};

    #[test]
    fn clock_conversion_roundtrip() {
        assert_eq!(cycles_to_us(200), 1.0);
        assert_eq!(us_to_cycles(1.0), 200);
        assert_eq!(us_to_cycles(0.71), 142);
    }

    #[test]
    fn paper_table1_inter_row_breakdown() {
        // The "Setting up stack" phase: caller's push+call plus Prepare's
        // body up to (not including) the lret. Must sum to 26 cycles.
        let caller = [
            Insn::Push(Src::Reg(Reg::Eax)), // push the argument
            Insn::Call(0),                  // call Prepare
        ];
        let prepare_body = [
            Insn::PushM(Mem::based(Reg::Esp, 4)),         // pushl 0x4(%esp)
            Insn::PopM(Mem::abs(0)),                      // popl ExtensionStack
            Insn::Store(Mem::abs(0), Src::Reg(Reg::Esp)), // movl %esp, SP2
            Insn::Store(Mem::abs(0), Src::Reg(Reg::Ebp)), // movl %ebp, BP2
            Insn::Push(Src::Imm(0)),                      // push ExtensionStackSegment
            Insn::PushM(Mem::abs(0)),                     // pushl ExtensionStackPointer
            Insn::Push(Src::Imm(0)),                      // push ExtensionCodeSegment
            Insn::Push(Src::Imm(0)),                      // push Transfer
        ];
        let setup: u64 = caller
            .iter()
            .chain(prepare_body.iter())
            .map(measured_cost)
            .sum();
        assert_eq!(setup, 26);

        // "Calling function": the lret to SPL 3 plus Transfer's local call.
        let calling = measured_event(Event::FarRetOuter) + measured_cost(&Insn::Call(0));
        assert_eq!(calling, 34);

        // "Returning to caller": the extension's ret plus the lcall through
        // the AppCallGate call gate (inward, stack switch).
        let returning = measured_cost(&Insn::Ret) + measured_event(Event::GateCallInner);
        assert_eq!(returning, 75);

        // "Restoring state": AppCallGate's two loads and local ret.
        let restoring =
            2 * measured_cost(&Insn::Load(Reg::Esp, Mem::abs(0))) + measured_cost(&Insn::Ret);
        assert_eq!(restoring, 7);

        assert_eq!(setup + calling + returning + restoring, 142);
    }

    #[test]
    fn paper_table1_intra_total() {
        // Unprotected call: push arg + callee prologue (2), call (3),
        // ret (3), epilogue pop + caller cleanup (2) = 10.
        let t = measured_cost(&Insn::Push(Src::Reg(Reg::Eax)))
            + measured_cost(&Insn::Push(Src::Reg(Reg::Ebp)))
            + measured_cost(&Insn::Call(0))
            + measured_cost(&Insn::Ret)
            + measured_cost(&Insn::Pop(Reg::Ebp))
            + measured_cost(&Insn::Pop(Reg::Ecx));
        assert_eq!(t, 10);
    }

    #[test]
    fn seg_load_uses_measured_12_cycles() {
        // §5.1: "2 to 3 cycles according to Intel's architecture manual,
        // but is consistently 12 cycles from our own measurement".
        assert_eq!(measured_event(Event::SegLoad), 12);
        assert!(documented_event(Event::SegLoad) <= 3.0);
    }

    #[test]
    fn far_transfer_instruction_base_cost_is_zero() {
        // Far transfers are charged entirely through events.
        assert_eq!(measured_cost(&Insn::Lcall(8, 0)), 0);
        assert_eq!(measured_cost(&Insn::Lret), 0);
        assert_eq!(measured_cost(&Insn::Int(0x80)), 0);
    }

    #[test]
    fn documented_is_cheaper_than_measured_for_transfers() {
        for ev in [
            Event::GateCallInner,
            Event::FarRetOuter,
            Event::IntGate,
            Event::SegLoad,
        ] {
            assert!(
                documented_event(ev) < measured_event(ev) as f64,
                "{ev:?} documented should undercut measured"
            );
        }
    }
}
