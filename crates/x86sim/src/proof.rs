//! Proof tokens: verifier-licensed per-block check elision.
//!
//! The static verifier (crate `verifier`) emits, with every accepted
//! module, a proof map: per basic block, the facts it *proved* — most
//! usefully that every effective-DS access in the block falls inside one
//! static offset range. A loader that trusts the verifier can cash those
//! facts in here: [`crate::machine::Machine::install_proof_token`] turns
//! a proven block into a [`BlockToken`], and the fetch path then serves
//! the block's instructions from the token while a single *hoisted*
//! guard — evaluated once at block entry instead of once per access —
//! stands in for the per-instruction segment-limit and rights
//! validation inside the block.
//!
//! This is a **host** fast path with the same contract as the predecode
//! cache: simulated cycles, statistics and faults are byte-identical
//! with tokens on or off, because every check it skips is one whose
//! outcome the proof (plus the entry guard) predetermines, and the
//! skipped work never charged simulated cycles in the first place. The
//! differential soundness fuzzer in `chaos` exists to hold that claim to
//! account: any divergence between a token-serving world and its
//! unelided twin is an unsoundness finding against the verifier.
//!
//! Invalidation reuses the machinery that already polices the predecode
//! cache:
//!
//! - **Self-modifying code** — a token records the code generation of
//!   its frame's slab slot at install time; every serve revalidates it,
//!   and any store that overlaps bytes marked as code bumps the
//!   generation ([`crate::mem::PhysMem::mark_code`]).
//! - **Remapping** — tokens are keyed by *physical* block start, and
//!   every serve re-runs the (memoized) fetch translation and compares;
//!   changing the mapping makes the comparison miss and the fetch falls
//!   back to the normal path. Stale tokens are harmless, merely dead
//!   weight until the loader clears them.
//! - **Segment reloads** — the entry guard snapshots the machine's
//!   segment-write generation (a host counter bumped on every segment
//!   cache load); every serve compares it, so a far transfer or segment
//!   reload inside the block (possible only via an instruction the
//!   verifier admits, but guarded anyway) stops the token run on the
//!   next fetch. The counter subsumes comparing the CS/DS caches and
//!   the CPL byte-for-byte: none of them can change without a segment
//!   cache write.

use asm86::isa::Insn;
use std::collections::BTreeMap;
use std::sync::Arc;

/// One predecoded instruction of a token block: everything `fetch`
/// returns, precomputed.
#[derive(Debug, Clone, Copy)]
pub(crate) struct TokenInsn {
    pub(crate) insn: Insn,
    pub(crate) len: u32,
    pub(crate) cost: u64,
}

/// The DS facts of a proven block, as the loader hands them to
/// [`crate::machine::Machine::install_proof_token`]. Offsets are DS
/// segment offsets (the verifier's addressing domain for the module).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProofDs {
    /// Highest DS byte offset any access in the block can touch
    /// (inclusive, access width included).
    pub hi: u32,
    /// The block performs DS loads.
    pub loads: bool,
    /// The block performs DS stores.
    pub stores: bool,
}

/// An installed block token: the block's instructions predecoded, plus
/// what the entry guard must establish for the elision to be licensed.
#[derive(Debug, Clone)]
pub(crate) struct BlockToken {
    /// Physical address of the block's first byte (the map key).
    pub(crate) start_phys: u32,
    /// Block length in bytes; the block plus a trailing
    /// [`crate::machine::MAX_INSN_LEN`] window fits inside its page, so
    /// serving never needs a second translation.
    pub(crate) len: u32,
    /// The block's instructions, tiling exactly `len` bytes.
    pub(crate) insns: Vec<TokenInsn>,
    /// DS facts, when the block carries a DS bounds proof.
    pub(crate) ds: Option<ProofDs>,
    /// Slab slot of the block's frame.
    pub(crate) slot: u32,
    /// Code generation of that slot at install time.
    pub(crate) gen: u64,
}

/// The token store: physical block start → token. `Arc` so world forks
/// share it copy-on-write like the predecode cache's slot array.
pub(crate) type TokenMap = Arc<BTreeMap<u32, Arc<BlockToken>>>;

/// An active token run: the machine is executing inside a proven block
/// and the entry guard held. Cleared on any mismatch; a run that reaches
/// block end is *kept* (`idx == insns.len()`) so a loop back edge can
/// re-arm it without re-running the entry guard or the token lookup.
#[derive(Debug, Clone)]
pub(crate) struct ProofRun {
    pub(crate) token: Arc<BlockToken>,
    /// Next instruction index to serve; `count` marks a run that
    /// completed its block (eligible for re-arm, never a "break").
    pub(crate) idx: usize,
    /// Flat copy of `token.insns.len()` so the per-serve completion
    /// check never chases the `Arc`.
    pub(crate) count: usize,
    /// Flat copy of `token.slot` (for the full path's per-slot
    /// code-generation re-validation).
    pub(crate) slot: u32,
    /// Flat copy of `token.gen`.
    pub(crate) gen: u64,
    /// [`crate::mem::PhysMem::code_epoch`] at the last full-path
    /// validation of the slot's code generation. While it is unchanged
    /// no frame's code generation moved, so the hot path substitutes one
    /// inline compare for the slab read.
    pub(crate) code_epoch: u64,
    /// EIP the next fetch must be at.
    pub(crate) expect_eip: u32,
    /// Physical address the next fetch must translate to.
    pub(crate) expect_phys: u32,
    /// EIP of the block's first instruction (re-arm target).
    pub(crate) start_eip: u32,
    /// Physical address of the block's first byte.
    pub(crate) start_phys: u32,
    /// MMU invalidation epoch at the last verified translation; while it
    /// is unchanged (and paging stayed on) the fetch translation is the
    /// one the page memo would return, so the hot path may skip it.
    pub(crate) epoch: u64,
    /// Paging was enabled at the last verified translation.
    pub(crate) paged: bool,
    /// The machine's segment-write generation at activation. Unchanged
    /// means the CS/DS caches and the CPL are bit-identical to what the
    /// entry guard validated (every path that changes any of them writes
    /// a segment cache); one `u64` compare stands in for all three.
    pub(crate) seg_gen: u64,
    /// Whether the DS entry guard held: per-access DS checks inside the
    /// block are skipped.
    pub(crate) ds_elide: bool,
}

/// Host-side proof-token counters (never part of simulated state).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProofStats {
    /// Tokens currently installed.
    pub installed: u64,
    /// Entry guards that held (token runs started).
    pub activations: u64,
    /// Instructions served from tokens.
    pub served: u64,
    /// DS accesses whose per-access check was elided.
    pub ds_elided: u64,
    /// Token runs stopped early (guard mismatch, SMC, remap).
    pub broken: u64,
}

/// Why a token could not be installed. Installation failure is never an
/// error for the caller's correctness — a missing token only means the
/// block executes on the normal path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofInstallError {
    /// The block's linear range is unmapped.
    Unmapped,
    /// The block (plus the fetch lookahead window) does not fit inside
    /// one physical page.
    CrossesPage,
    /// The block's bytes do not decode to instructions tiling its length.
    BadBytes,
    /// Zero-length block.
    Empty,
}
