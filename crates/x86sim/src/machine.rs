//! The assembled machine: CPU, MMU, descriptor tables, TSS and cycle
//! counter.
//!
//! Every memory access performs the full protection pipeline of Figure 1
//! of the paper: segment-register cache → limit check → segment rights
//! check → linear address → TLB/page walk → page-level rights check.

use asm86::decode;
use asm86::isa::{Insn, Reg, SegReg};

use crate::cycles::{self, Event};
use crate::desc::{resolve, Descriptor, DescriptorTable, Selector};
use crate::fault::{Fault, FaultBuilder, FaultCause};
use crate::mem::PhysMem;
use crate::paging::{Access, Mmu};
use crate::trace::{Trace, TraceRecord};

/// Longest possible instruction encoding, in bytes.
pub const MAX_INSN_LEN: usize = 12;

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Carry.
    pub cf: bool,
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Overflow.
    pub of: bool,
}

/// The hidden (cached) part of a segment register, as loaded from its
/// descriptor — the "descriptor cache" real x86 keeps per segment register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegCache {
    /// The visible selector.
    pub selector: Selector,
    /// False for a null/unloaded segment (any access faults).
    pub valid: bool,
    /// Segment base linear address.
    pub base: u32,
    /// Segment limit (highest valid offset for expand-up segments).
    pub limit: u32,
    /// Descriptor privilege level.
    pub dpl: u8,
    /// True for code segments.
    pub code: bool,
    /// Data writable (false for code).
    pub writable: bool,
    /// Readable (always true for data; the R bit for code).
    pub readable: bool,
    /// Expand-down data segment.
    pub expand_down: bool,
    /// Conforming code segment.
    pub conforming: bool,
}

impl SegCache {
    /// An invalid (null) segment cache.
    pub fn invalid() -> SegCache {
        SegCache {
            selector: Selector(0),
            valid: false,
            base: 0,
            limit: 0,
            dpl: 0,
            code: false,
            writable: false,
            readable: false,
            expand_down: false,
            conforming: false,
        }
    }

    /// Builds a cache from a resolved descriptor.
    pub fn from_descriptor(selector: Selector, d: &Descriptor) -> Option<SegCache> {
        match d {
            Descriptor::Code(c) => Some(SegCache {
                selector,
                valid: true,
                base: c.base,
                limit: c.limit,
                dpl: c.dpl,
                code: true,
                writable: false,
                readable: c.readable,
                expand_down: false,
                conforming: c.conforming,
            }),
            Descriptor::Data(d) => Some(SegCache {
                selector,
                valid: true,
                base: d.base,
                limit: d.limit,
                dpl: d.dpl,
                code: false,
                writable: d.writable,
                readable: true,
                expand_down: d.expand_down,
                conforming: false,
            }),
            _ => None,
        }
    }

    /// Limit check for an access of `size` bytes at `off`.
    pub fn check_limit(&self, off: u32, size: u32) -> bool {
        debug_assert!(size >= 1);
        let end = match off.checked_add(size - 1) {
            Some(e) => e,
            None => return false,
        };
        if self.expand_down {
            // Valid offsets lie strictly above the limit.
            off > self.limit
        } else {
            end <= self.limit
        }
    }
}

/// The CPU register state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Reg`].
    pub regs: [u32; 8],
    /// Instruction pointer (offset within CS).
    pub eip: u32,
    /// Arithmetic flags.
    pub flags: Flags,
    /// Segment registers with their descriptor caches, indexed by
    /// [`SegReg`].
    pub segs: [SegCache; 4],
    /// Current privilege level.
    pub cpl: u8,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu {
            regs: [0; 8],
            eip: 0,
            flags: Flags::default(),
            segs: [SegCache::invalid(); 4],
            cpl: 0,
        }
    }
}

impl Cpu {
    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r as usize]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r as usize] = v;
    }

    /// The segment cache for a segment register.
    pub fn seg(&self, sr: SegReg) -> &SegCache {
        &self.segs[sr as usize]
    }

    /// ESP shorthand.
    pub fn esp(&self) -> u32 {
        self.regs[Reg::Esp as usize]
    }
}

/// An IDT entry. The hosting kernel runs natively, so every vector is a
/// *host hook*: delivering through it suspends guest execution and returns
/// control (and the vector number) to the host, which plays the role of
/// the ring-0 handler. Gate DPL is still checked for software `int`
/// exactly as the hardware would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdtGate {
    /// Minimum privilege allowed to invoke this vector with `int`.
    pub dpl: u8,
}

/// The per-task state the hardware consults on inward stack switches:
/// one (SS, ESP) pair for each of rings 0-2, as in the x86 TSS. (Ring 3
/// needs no slot; x86 never switches *to* ring 3 via a call.)
#[derive(Debug, Clone, Copy, Default)]
pub struct Tss {
    /// `stack[r]` is the (SS selector, ESP) loaded when entering ring `r`.
    pub stack: [(Selector, u32); 3],
}

/// Why `run` stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// `hlt` executed at CPL 0.
    Hlt,
    /// A software interrupt hit a host-hooked IDT vector.
    IntHook(u8),
    /// An exception was raised; the host kernel must handle it.
    Fault(Fault),
    /// The instruction budget was exhausted.
    InsnLimit,
    /// The cycle budget was exhausted (used for extension CPU limits).
    CycleLimit,
}

/// The machine.
#[derive(Debug)]
pub struct Machine {
    /// CPU registers and segment caches.
    pub cpu: Cpu,
    /// Simulated physical memory.
    pub mem: PhysMem,
    /// Paging unit.
    pub mmu: Mmu,
    /// Global descriptor table.
    pub gdt: DescriptorTable,
    /// Current local descriptor table, if any.
    pub ldt: Option<DescriptorTable>,
    /// Interrupt descriptor table (host hooks).
    pub idt: Vec<Option<IdtGate>>,
    /// Task state segment (inner-ring stack pointers).
    pub tss: Tss,
    cycles: u64,
    insns: u64,
    trace: Option<Trace>,
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

impl Machine {
    /// Creates a machine with empty tables and paging disabled.
    pub fn new() -> Machine {
        Machine {
            cpu: Cpu::default(),
            mem: PhysMem::new(),
            mmu: Mmu::new(),
            gdt: DescriptorTable::new(),
            ldt: None,
            idt: vec![None; 256],
            tss: Tss::default(),
            cycles: 0,
            insns: 0,
            trace: None,
        }
    }

    /// Total cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions retired.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Charges raw cycles (used by the hosting kernel for modelled work).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Charges a hardware event.
    pub fn charge_event(&mut self, ev: Event) {
        self.cycles += cycles::measured_event(ev);
    }

    // ----- segment loading -------------------------------------------------

    /// Loads a data segment register (`mov sreg, r`, `pop sreg`), with the
    /// full descriptor privilege checks. Charges the segment-load cost.
    pub fn load_data_seg(&mut self, sr: SegReg, sel: Selector) -> Result<(), FaultBuilder> {
        self.charge_event(Event::SegLoad);
        self.load_data_seg_nocharge(sr, sel)
    }

    /// As [`Machine::load_data_seg`] but without charging — used inside
    /// far transfers whose event cost already includes the loads.
    pub(crate) fn load_data_seg_nocharge(
        &mut self,
        sr: SegReg,
        sel: Selector,
    ) -> Result<(), FaultBuilder> {
        match sr {
            SegReg::Cs => {
                // CS is only loadable by far control transfers.
                return Err(Fault::ud(FaultCause::BadInstruction));
            }
            SegReg::Ss => {
                if sel.is_null() {
                    return Err(Fault::gp(sel.0, FaultCause::BadSelector(sel.0)));
                }
                let d = resolve(&self.gdt, self.ldt.as_ref(), sel)?;
                let cache = SegCache::from_descriptor(sel, &d)
                    .ok_or(Fault::gp(sel.0, FaultCause::BadSegmentType))?;
                if cache.code || !cache.writable {
                    return Err(Fault::gp(sel.0, FaultCause::BadSegmentType));
                }
                if sel.rpl() != self.cpu.cpl || cache.dpl != self.cpu.cpl {
                    return Err(Fault::gp(
                        sel.0,
                        FaultCause::PrivilegeViolation {
                            cpl: self.cpu.cpl,
                            rpl: sel.rpl(),
                            dpl: cache.dpl,
                        },
                    ));
                }
                if !self.descriptor_present(&d) {
                    return Err(Fault::ss(sel.0, FaultCause::SegmentNotPresent(sel.0)));
                }
                self.cpu.segs[sr as usize] = cache;
            }
            SegReg::Ds | SegReg::Es => {
                if sel.is_null() {
                    // Null is loadable; any use faults later.
                    self.cpu.segs[sr as usize] = SegCache::invalid();
                    return Ok(());
                }
                let d = resolve(&self.gdt, self.ldt.as_ref(), sel)?;
                let cache = SegCache::from_descriptor(sel, &d)
                    .ok_or(Fault::gp(sel.0, FaultCause::BadSegmentType))?;
                if cache.code && !cache.readable {
                    return Err(Fault::gp(sel.0, FaultCause::BadSegmentType));
                }
                // Privilege: data and non-conforming readable code require
                // DPL >= max(CPL, RPL); conforming code skips the check.
                if !(cache.code && cache.conforming) {
                    let eff = self.cpu.cpl.max(sel.rpl());
                    if cache.dpl < eff {
                        return Err(Fault::gp(
                            sel.0,
                            FaultCause::PrivilegeViolation {
                                cpl: self.cpu.cpl,
                                rpl: sel.rpl(),
                                dpl: cache.dpl,
                            },
                        ));
                    }
                }
                if !self.descriptor_present(&d) {
                    return Err(Fault::np(sel.0));
                }
                self.cpu.segs[sr as usize] = cache;
            }
        }
        Ok(())
    }

    fn descriptor_present(&self, d: &Descriptor) -> bool {
        match d {
            Descriptor::Null => false,
            Descriptor::Code(c) => c.present,
            Descriptor::Data(d) => d.present,
            Descriptor::Gate(g) => g.present,
        }
    }

    /// Host-side: force a segment cache without checks (used to establish
    /// initial state, like a bootloader or kernel `iret` into a task).
    pub fn force_seg(&mut self, sr: SegReg, sel: Selector, cache: SegCache) {
        let mut cache = cache;
        cache.selector = sel;
        self.cpu.segs[sr as usize] = cache;
        if sr == SegReg::Cs {
            self.cpu.cpl = sel.rpl();
        }
    }

    /// Host-side: resolve a selector and force-load it (asserting it is
    /// valid). Convenience for kernels establishing contexts.
    pub fn force_seg_from_table(&mut self, sr: SegReg, sel: Selector) {
        let d = resolve(&self.gdt, self.ldt.as_ref(), sel).expect("bad selector");
        let cache = SegCache::from_descriptor(sel, &d).expect("not a segment");
        self.force_seg(sr, sel, cache);
    }

    // ----- logical memory access -------------------------------------------

    /// Performs the segment-level checks for an access and returns the
    /// linear address.
    pub fn seg_check(
        &self,
        sr: SegReg,
        off: u32,
        size: u32,
        write: bool,
    ) -> Result<u32, FaultBuilder> {
        let seg = self.cpu.seg(sr);
        let stack = sr == SegReg::Ss;
        let fault = |cause| {
            if stack {
                Fault::ss(0, cause)
            } else {
                Fault::gp(0, cause)
            }
        };
        if !seg.valid {
            return Err(fault(FaultCause::BadSelector(seg.selector.0)));
        }
        if !seg.check_limit(off, size) {
            return Err(fault(FaultCause::LimitViolation {
                offset: off,
                limit: seg.limit,
            }));
        }
        if write {
            if seg.code || !seg.writable {
                return Err(fault(FaultCause::BadSegmentType));
            }
        } else if !seg.readable {
            return Err(fault(FaultCause::BadSegmentType));
        }
        Ok(seg.base.wrapping_add(off))
    }

    fn translate_data(&mut self, linear: u32, write: bool) -> Result<u32, FaultBuilder> {
        let access = if write { Access::Write } else { Access::Read };
        let user = self.cpu.cpl == 3;
        let t = self.mmu.translate(&mut self.mem, linear, access, user)?;
        if t.tlb_miss {
            self.charge_event(Event::TlbMiss);
        }
        Ok(t.phys)
    }

    /// Reads `size` (1, 2 or 4) bytes through a segment.
    pub fn read_data(&mut self, sr: SegReg, off: u32, size: u32) -> Result<u32, FaultBuilder> {
        let linear = self.seg_check(sr, off, size, false)?;
        self.read_linear(linear, size, false)
    }

    /// Writes `size` (1, 2 or 4) bytes through a segment.
    pub fn write_data(
        &mut self,
        sr: SegReg,
        off: u32,
        size: u32,
        value: u32,
    ) -> Result<(), FaultBuilder> {
        let linear = self.seg_check(sr, off, size, true)?;
        self.write_linear(linear, size, value)
    }

    fn read_linear(&mut self, linear: u32, size: u32, _exec: bool) -> Result<u32, FaultBuilder> {
        if (linear & 0xFFF) + size <= 0x1000 {
            let phys = self.translate_data(linear, false)?;
            Ok(match size {
                1 => self.mem.read_u8(phys) as u32,
                2 => self.mem.read_u16(phys) as u32,
                _ => self.mem.read_u32(phys),
            })
        } else {
            // Page-straddling access: translate byte-wise.
            let mut v: u32 = 0;
            for i in 0..size {
                let phys = self.translate_data(linear + i, false)?;
                v |= (self.mem.read_u8(phys) as u32) << (8 * i);
            }
            Ok(v)
        }
    }

    fn write_linear(&mut self, linear: u32, size: u32, value: u32) -> Result<(), FaultBuilder> {
        if (linear & 0xFFF) + size <= 0x1000 {
            let phys = self.translate_data(linear, true)?;
            match size {
                1 => self.mem.write_u8(phys, value as u8),
                2 => self.mem.write_u16(phys, value as u16),
                _ => self.mem.write_u32(phys, value),
            }
        } else {
            // Page-straddling store: translate every byte *before* writing
            // any, so a fault on the second page cannot leave a partial
            // store (restartable-instruction semantics).
            let mut phys = [0u32; 4];
            for i in 0..size {
                phys[i as usize] = self.translate_data(linear + i, true)?;
            }
            for i in 0..size {
                self.mem
                    .write_u8(phys[i as usize], (value >> (8 * i)) as u8);
            }
        }
        Ok(())
    }

    // ----- stack helpers ----------------------------------------------------

    /// Pushes a 32-bit value on the current stack.
    pub fn push32(&mut self, v: u32) -> Result<(), FaultBuilder> {
        let esp = self.cpu.esp().wrapping_sub(4);
        self.write_data(SegReg::Ss, esp, 4, v)?;
        self.cpu.set_reg(Reg::Esp, esp);
        Ok(())
    }

    /// Pops a 32-bit value from the current stack.
    pub fn pop32(&mut self) -> Result<u32, FaultBuilder> {
        let esp = self.cpu.esp();
        let v = self.read_data(SegReg::Ss, esp, 4)?;
        self.cpu.set_reg(Reg::Esp, esp.wrapping_add(4));
        Ok(v)
    }

    // ----- instruction fetch ------------------------------------------------

    /// Fetches and decodes the instruction at CS:EIP.
    pub fn fetch(&mut self) -> Result<(Insn, u32), FaultBuilder> {
        let cs = *self.cpu.seg(SegReg::Cs);
        if !cs.valid || !cs.code {
            return Err(Fault::gp(cs.selector.0, FaultCause::BadSegmentType));
        }
        let eip = self.cpu.eip;
        // Read up to MAX_INSN_LEN bytes, stopping at the segment limit.
        let mut buf = [0u8; MAX_INSN_LEN];
        let mut n = 0usize;
        while n < MAX_INSN_LEN {
            let off = eip.wrapping_add(n as u32);
            if !cs.check_limit(off, 1) {
                break;
            }
            let linear = cs.base.wrapping_add(off);
            let phys = self.translate_fetch(linear)?;
            buf[n] = self.mem.read_u8(phys);
            n += 1;
        }
        if n == 0 {
            return Err(Fault::gp(
                0,
                FaultCause::LimitViolation {
                    offset: eip,
                    limit: cs.limit,
                },
            ));
        }
        match decode(&buf[..n]) {
            Ok((insn, len)) => Ok((insn, len as u32)),
            Err(_) => Err(Fault::ud(FaultCause::BadInstruction)),
        }
    }

    fn translate_fetch(&mut self, linear: u32) -> Result<u32, FaultBuilder> {
        let user = self.cpu.cpl == 3;
        let t = self
            .mmu
            .translate(&mut self.mem, linear, Access::Read, user)?;
        if t.tlb_miss {
            self.charge_event(Event::TlbMiss);
        }
        Ok(t.phys)
    }

    // ----- execution loop ---------------------------------------------------

    /// Executes one instruction. `None` means "keep going".
    pub fn step(&mut self) -> Option<Exit> {
        let saved_eip = self.cpu.eip;
        let cs_sel = self.cpu.seg(SegReg::Cs).selector.0;
        let cpl = self.cpu.cpl;
        match self.step_inner() {
            Ok(exit) => exit,
            Err(fb) => {
                // Deliver the exception: restore the faulting EIP
                // (instructions are restartable) and exit to the host
                // kernel, charging the vectoring cost.
                self.cpu.eip = saved_eip;
                self.charge_event(Event::ExceptionDelivery);
                Some(Exit::Fault(fb.at(saved_eip, cs_sel, cpl)))
            }
        }
    }

    fn step_inner(&mut self) -> Result<Option<Exit>, FaultBuilder> {
        let (insn, len) = self.fetch()?;
        self.insns += 1;
        self.cycles += cycles::measured_cost(&insn);
        // Attribute the instruction to the domain it *executed in* (far
        // transfers change CPL as a side effect).
        let eip = self.cpu.eip;
        let cs = self.cpu.segs[SegReg::Cs as usize].selector.0;
        let cpl = self.cpu.cpl;
        let r = self.execute(insn, len);
        if let Some(t) = self.trace.as_mut() {
            t.push(TraceRecord {
                cs,
                cpl,
                eip,
                insn,
                cycles: self.cycles,
            });
        }
        r
    }

    /// Runs until an exit or until `max_insns` instructions retire.
    pub fn run(&mut self, max_insns: u64) -> Exit {
        for _ in 0..max_insns {
            if let Some(exit) = self.step() {
                return exit;
            }
        }
        Exit::InsnLimit
    }

    /// Runs until EIP reaches `breakpoint` (before executing it), an exit
    /// occurs, or `max_insns` retire — the `segdb` breakpoint primitive.
    pub fn run_to(&mut self, breakpoint: u32, max_insns: u64) -> Option<Exit> {
        for _ in 0..max_insns {
            if self.cpu.eip == breakpoint {
                return None;
            }
            if let Some(exit) = self.step() {
                return Some(exit);
            }
        }
        Some(Exit::InsnLimit)
    }

    /// Runs until an exit or until the cycle counter passes `deadline`.
    ///
    /// This is the primitive behind the paper's extension CPU-time limit:
    /// the kernel's timer interrupt is modelled as a deadline check.
    pub fn run_until_cycles(&mut self, deadline: u64) -> Exit {
        loop {
            if self.cycles >= deadline {
                return Exit::CycleLimit;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Enables execution tracing, retaining the last `capacity` retired
    /// instructions (for the segmentation-aware debugger of §6).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Disables tracing, returning what was collected.
    pub fn disable_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Borrows the live trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Host-side: charge the cost of resuming the guest with `iret`.
    ///
    /// Called by the kernel when it returns control to guest code after a
    /// host-hooked interrupt or exception.
    pub fn charge_iret_resume(&mut self) {
        self.charge_event(Event::IretResume);
    }

    // ----- host-side (supervisor) memory helpers ----------------------------

    /// Reads bytes at a linear address, bypassing all protection (the
    /// hosting ring-0 kernel's view). Does not charge cycles.
    pub fn host_read(&self, linear: u32, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        for i in 0..len {
            let l = linear.wrapping_add(i as u32);
            out.push(match self.host_translate(l) {
                Some(p) => self.mem.read_u8(p),
                None => 0,
            });
        }
        out
    }

    /// Writes bytes at a linear address, bypassing all protection.
    ///
    /// Returns `false` if any page was unmapped.
    pub fn host_write(&mut self, linear: u32, data: &[u8]) -> bool {
        for (i, b) in data.iter().enumerate() {
            let l = linear.wrapping_add(i as u32);
            match self.host_translate(l) {
                Some(p) => self.mem.write_u8(p, *b),
                None => return false,
            }
        }
        true
    }

    /// Reads a u32 at a linear address (host view).
    pub fn host_read_u32(&self, linear: u32) -> u32 {
        let b = self.host_read(linear, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Writes a u32 at a linear address (host view).
    pub fn host_write_u32(&mut self, linear: u32, v: u32) -> bool {
        self.host_write(linear, &v.to_le_bytes())
    }

    fn host_translate(&self, linear: u32) -> Option<u32> {
        if !self.mmu.enabled {
            return Some(linear);
        }
        let pte_val = crate::paging::get_pte(&self.mem, self.mmu.cr3, linear)?;
        Some((pte_val & crate::paging::pte::FRAME) | (linear & 0xFFF))
    }

    // ----- fault-injection hooks ---------------------------------------------
    //
    // Campaign drivers (crates/chaos) mutate machine state between steps
    // to probe the fault paths. All hooks move in the *revoking* direction
    // only (present → not-present); granting access would invalidate the
    // protection invariants the campaigns assert.

    /// Sets the present bit of GDT descriptor `index` (code, data or
    /// gate). Returns the previous present state, or `None` when the
    /// index does not name a descriptor.
    pub fn set_descriptor_present(&mut self, index: u16, present: bool) -> Option<bool> {
        let d = self.gdt.get(index).copied()?;
        let (was, updated) = match d {
            Descriptor::Null => return None,
            Descriptor::Code(mut c) => {
                let was = c.present;
                c.present = present;
                (was, Descriptor::Code(c))
            }
            Descriptor::Data(mut dd) => {
                let was = dd.present;
                dd.present = present;
                (was, Descriptor::Data(dd))
            }
            Descriptor::Gate(mut g) => {
                let was = g.present;
                g.present = present;
                (was, Descriptor::Gate(g))
            }
        };
        self.gdt.set(index, updated);
        Some(was)
    }

    /// Present bit of GDT descriptor `index`, if it exists.
    pub fn gdt_entry_present(&self, index: u16) -> Option<bool> {
        Some(match self.gdt.get(index)? {
            Descriptor::Null => return None,
            Descriptor::Code(c) => c.present,
            Descriptor::Data(d) => d.present,
            Descriptor::Gate(g) => g.present,
        })
    }
}
