//! The assembled machine: CPU, MMU, descriptor tables, TSS and cycle
//! counter.
//!
//! Every memory access performs the full protection pipeline of Figure 1
//! of the paper: segment-register cache → limit check → segment rights
//! check → linear address → TLB/page walk → page-level rights check.

use asm86::isa::{Insn, Reg, SegReg};
use asm86::{decode, DecodeError};

use crate::cycles::{self, Event};
use crate::desc::{resolve, Descriptor, DescriptorTable, Selector};
use crate::fault::{Fault, FaultBuilder, FaultCause};
use crate::image::{self, kind, Enc, ImageBuilder, ImageView, RestoreError};
use crate::mem::{PhysMem, PAGE_MASK, PAGE_SIZE};
use crate::paging::{Access, Mmu};
use crate::predecode::{InsnCache, PredecodeStats};
use crate::proof::{BlockToken, ProofDs, ProofInstallError, ProofRun, ProofStats, TokenInsn};
use crate::trace::{Trace, TraceRecord};
use std::sync::Arc;

/// Longest possible instruction encoding, in bytes.
pub const MAX_INSN_LEN: usize = 12;

/// Arithmetic flags.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Flags {
    /// Carry.
    pub cf: bool,
    /// Zero.
    pub zf: bool,
    /// Sign.
    pub sf: bool,
    /// Overflow.
    pub of: bool,
}

/// The hidden (cached) part of a segment register, as loaded from its
/// descriptor — the "descriptor cache" real x86 keeps per segment register.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegCache {
    /// The visible selector.
    pub selector: Selector,
    /// False for a null/unloaded segment (any access faults).
    pub valid: bool,
    /// Segment base linear address.
    pub base: u32,
    /// Segment limit (highest valid offset for expand-up segments).
    pub limit: u32,
    /// Descriptor privilege level.
    pub dpl: u8,
    /// True for code segments.
    pub code: bool,
    /// Data writable (false for code).
    pub writable: bool,
    /// Readable (always true for data; the R bit for code).
    pub readable: bool,
    /// Expand-down data segment.
    pub expand_down: bool,
    /// Conforming code segment.
    pub conforming: bool,
}

impl SegCache {
    /// An invalid (null) segment cache.
    pub fn invalid() -> SegCache {
        SegCache {
            selector: Selector(0),
            valid: false,
            base: 0,
            limit: 0,
            dpl: 0,
            code: false,
            writable: false,
            readable: false,
            expand_down: false,
            conforming: false,
        }
    }

    /// Builds a cache from a resolved descriptor.
    pub fn from_descriptor(selector: Selector, d: &Descriptor) -> Option<SegCache> {
        match d {
            Descriptor::Code(c) => Some(SegCache {
                selector,
                valid: true,
                base: c.base,
                limit: c.limit,
                dpl: c.dpl,
                code: true,
                writable: false,
                readable: c.readable,
                expand_down: false,
                conforming: c.conforming,
            }),
            Descriptor::Data(d) => Some(SegCache {
                selector,
                valid: true,
                base: d.base,
                limit: d.limit,
                dpl: d.dpl,
                code: false,
                writable: d.writable,
                readable: true,
                expand_down: d.expand_down,
                conforming: false,
            }),
            _ => None,
        }
    }

    /// Limit check for an access of `size` bytes at `off`.
    pub fn check_limit(&self, off: u32, size: u32) -> bool {
        debug_assert!(size >= 1);
        let end = match off.checked_add(size - 1) {
            Some(e) => e,
            None => return false,
        };
        if self.expand_down {
            // Valid offsets lie strictly above the limit.
            off > self.limit
        } else {
            end <= self.limit
        }
    }
}

/// The CPU register state.
#[derive(Debug, Clone)]
pub struct Cpu {
    /// General-purpose registers, indexed by [`Reg`].
    pub regs: [u32; 8],
    /// Instruction pointer (offset within CS).
    pub eip: u32,
    /// Arithmetic flags.
    pub flags: Flags,
    /// Segment registers with their descriptor caches, indexed by
    /// [`SegReg`].
    pub segs: [SegCache; 4],
    /// Current privilege level.
    pub cpl: u8,
    /// Protection-key rights register (MPK-style PKRU): two bits per
    /// 4-bit page key — AD at bit `2k`, WD at bit `2k+1`. Zero grants
    /// every key full rights, which keeps worlds that never touch keys
    /// byte-identical to the pre-key machine. Written by `wrpkru`, read
    /// by `rdpkru`, consulted by user-mode data translation only (see
    /// [`crate::paging::pkru`]).
    pub pkru: u32,
}

impl Default for Cpu {
    fn default() -> Cpu {
        Cpu {
            regs: [0; 8],
            eip: 0,
            flags: Flags::default(),
            segs: [SegCache::invalid(); 4],
            cpl: 0,
            pkru: 0,
        }
    }
}

impl Cpu {
    /// Reads a general-purpose register.
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r as usize]
    }

    /// Writes a general-purpose register.
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        self.regs[r as usize] = v;
    }

    /// The segment cache for a segment register.
    pub fn seg(&self, sr: SegReg) -> &SegCache {
        &self.segs[sr as usize]
    }

    /// ESP shorthand.
    pub fn esp(&self) -> u32 {
        self.regs[Reg::Esp as usize]
    }
}

/// An IDT entry. The hosting kernel runs natively, so every vector is a
/// *host hook*: delivering through it suspends guest execution and returns
/// control (and the vector number) to the host, which plays the role of
/// the ring-0 handler. Gate DPL is still checked for software `int`
/// exactly as the hardware would.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdtGate {
    /// Minimum privilege allowed to invoke this vector with `int`.
    pub dpl: u8,
}

/// The per-task state the hardware consults on inward stack switches:
/// one (SS, ESP) pair for each of rings 0-2, as in the x86 TSS. (Ring 3
/// needs no slot; x86 never switches *to* ring 3 via a call.)
#[derive(Debug, Clone, Copy, Default)]
pub struct Tss {
    /// `stack[r]` is the (SS selector, ESP) loaded when entering ring `r`.
    pub stack: [(Selector, u32); 3],
}

/// Why `run` stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Exit {
    /// `hlt` executed at CPL 0.
    Hlt,
    /// A software interrupt hit a host-hooked IDT vector.
    IntHook(u8),
    /// An exception was raised; the host kernel must handle it.
    Fault(Fault),
    /// The instruction budget was exhausted.
    InsnLimit,
    /// The cycle budget was exhausted (used for extension CPU limits).
    CycleLimit,
}

/// The machine.
///
/// `Clone` is the world snapshot/fork primitive (see
/// [`Machine::snapshot`] / [`Machine::fork`]): physical frame payloads
/// are shared copy-on-write, everything else — CPU, tables, TLB,
/// predecode cache, translation memos, counters — is copied, so a fork
/// resumes byte-identically to the world it was taken from and its
/// writes never bleed into siblings or the template.
#[derive(Debug, Clone)]
pub struct Machine {
    /// CPU registers and segment caches.
    pub cpu: Cpu,
    /// Simulated physical memory.
    pub mem: PhysMem,
    /// Paging unit.
    pub mmu: Mmu,
    /// Global descriptor table.
    pub gdt: DescriptorTable,
    /// Current local descriptor table, if any.
    pub ldt: Option<DescriptorTable>,
    /// Interrupt descriptor table (host hooks).
    pub idt: Vec<Option<IdtGate>>,
    /// Task state segment (inner-ring stack pointers).
    pub tss: Tss,
    cycles: u64,
    insns: u64,
    trace: Option<Trace>,
    icache: InsnCache,
    predecode: bool,
    /// One-entry translation memos: the last code page fetched and the
    /// last data pages read and written, each valid while the TLB epoch
    /// and privilege are unchanged (see [`PageMemo`]).
    fetch_memo: PageMemo,
    data_read_memo: PageMemo,
    data_write_memo: PageMemo,
    /// Installed proof tokens, keyed by physical block start. Shared
    /// copy-on-write across forks like the predecode slot array.
    proof_tokens: crate::proof::TokenMap,
    /// The token run in progress, if the last fetch was served from one.
    proof_run: Option<ProofRun>,
    /// Master switch for serving from tokens (installation is always
    /// allowed). Off = the differential baseline.
    proof_elide: bool,
    /// Set per fetch: the instruction about to execute was served from a
    /// token whose DS entry guard held, so its DS accesses skip the
    /// per-access segment check.
    ds_elide_now: bool,
    /// Host-side segment-write generation: bumped on every segment-cache
    /// write (`mov sreg`, far transfers, fault delivery, host forcing).
    /// A token run whose snapshot matches knows the CS/DS caches and the
    /// CPL are untouched since its entry guard ran — one compare instead
    /// of three. Never serialized; restore starts a fresh count (no run
    /// survives a restore).
    seg_gen: u64,
    proof_stats: ProofStats,
    /// Registered `wrpkru` gate sites (linear addresses). A `wrpkru`
    /// executed at CPL 3 from any other address raises #GP with
    /// [`FaultCause::KeyGateViolation`] — the Garmr-style gate-integrity
    /// rule that stops hostile extension code from granting itself key
    /// rights. CPL 0-2 code may write PKRU from anywhere (it could edit
    /// page tables instead, so gating it buys nothing). BTreeSet keeps
    /// image serialization deterministic.
    key_gates: std::collections::BTreeSet<u32>,
}

/// Sentinel slab slot for "frame not backed when the memo was filled".
const NO_SLOT: u32 = u32::MAX;

/// A one-entry memo of a page translation, standing in for a guaranteed
/// TLB hit.
///
/// Re-translating the same linear page at the same privilege and access
/// kind is a pure TLB hit with no architectural side effect: the TLB
/// never evicts on its own, a hit checks the *cached* permission bits
/// (which are frozen until a flush), and the dirty-bit update happens at
/// most once per entry — any successful write-translate leaves the entry
/// dirty, so later writes through the same entry do no PTE work. The memo
/// therefore answers without consulting the MMU, revalidating against
/// [`Mmu::epoch`], which advances on every flush — the only way a live
/// TLB entry disappears or changes. Cycle accounting is unaffected
/// because TLB hits charge nothing; TLB statistics are unaffected because
/// memo hits are counted via [`Mmu::count_memo_hit`].
///
/// The memo also carries the frame's slab slot ([`NO_SLOT`] if the frame
/// was unbacked at fill time) so repeat accesses read physical memory
/// with one array index instead of a hash lookup. Slots are stable for a
/// frame's whole lifetime, so the slot needs no revalidation of its own.
///
/// The memos are part of the host fast path gated by
/// [`Machine::set_predecode`]: with predecode off every translation takes
/// the original per-access MMU path, reproducing the pre-fast-path cost
/// structure that the throughput benchmark uses as its baseline.
#[derive(Debug, Clone, Copy)]
struct PageMemo {
    /// Linear page base; `u32::MAX` (never a page base) when invalid.
    lin_page: u32,
    phys_page: u32,
    slot: u32,
    user: bool,
    /// PKRU value the translation was checked under. A `wrpkru` between
    /// accesses must not be answered from the memo — key rights are
    /// judged live on real hardware even for TLB-resident entries.
    pkru: u32,
    epoch: u64,
}

impl PageMemo {
    const INVALID: PageMemo = PageMemo {
        lin_page: u32::MAX,
        phys_page: 0,
        slot: NO_SLOT,
        user: false,
        pkru: 0,
        epoch: 0,
    };

    #[inline]
    fn lookup(&self, page: u32, user: bool, pkru: u32, epoch: u64) -> Option<(u32, u32)> {
        (self.lin_page == page && self.user == user && self.pkru == pkru && self.epoch == epoch)
            .then_some((self.phys_page, self.slot))
    }

    #[inline]
    fn fill(&mut self, page: u32, phys_page: u32, slot: u32, user: bool, pkru: u32, epoch: u64) {
        *self = PageMemo {
            lin_page: page,
            phys_page,
            slot,
            user,
            pkru,
            epoch,
        };
    }
}

impl Default for Machine {
    fn default() -> Machine {
        Machine::new()
    }
}

/// An immutable world snapshot: a warmed [`Machine`] frozen as a fork
/// template.
///
/// Created by [`Machine::snapshot`]. The snapshot exposes no mutable
/// access, so the frames it shares with its forks stay frozen; each
/// [`Snapshot::fork`] produces an independent world in microseconds
/// whose writes materialize frames privately (copy-on-write).
#[derive(Debug, Clone)]
pub struct Snapshot(Machine);

impl Snapshot {
    /// Forks a new independent world from the template.
    pub fn fork(&self) -> Machine {
        self.0.clone()
    }

    /// Read-only view of the frozen world (for oracles and tests).
    pub fn machine(&self) -> &Machine {
        &self.0
    }
}

impl Machine {
    /// Creates a machine with empty tables and paging disabled.
    pub fn new() -> Machine {
        Machine {
            cpu: Cpu::default(),
            mem: PhysMem::new(),
            mmu: Mmu::new(),
            gdt: DescriptorTable::new(),
            ldt: None,
            idt: vec![None; 256],
            tss: Tss::default(),
            cycles: 0,
            insns: 0,
            trace: None,
            icache: InsnCache::new(),
            predecode: true,
            fetch_memo: PageMemo::INVALID,
            data_read_memo: PageMemo::INVALID,
            data_write_memo: PageMemo::INVALID,
            proof_tokens: crate::proof::TokenMap::default(),
            proof_run: None,
            proof_elide: true,
            ds_elide_now: false,
            seg_gen: 0,
            proof_stats: ProofStats::default(),
            key_gates: std::collections::BTreeSet::new(),
        }
    }

    // ----- protection-key gate sites ----------------------------------------

    /// Registers `linear` as a legal `wrpkru` gate site for CPL-3 code.
    ///
    /// The loader calls this for the `wrpkru` instructions it plants in
    /// its call gates; any CPL-3 `wrpkru` fetched from an unregistered
    /// address faults with [`FaultCause::KeyGateViolation`].
    pub fn register_key_gate(&mut self, linear: u32) {
        self.key_gates.insert(linear);
    }

    /// Removes a registered gate site (e.g. when an extension unloads).
    pub fn unregister_key_gate(&mut self, linear: u32) {
        self.key_gates.remove(&linear);
    }

    /// Whether `linear` is a registered `wrpkru` gate site.
    pub fn key_gate_registered(&self, linear: u32) -> bool {
        self.key_gates.contains(&linear)
    }

    /// All registered gate sites, in ascending linear-address order
    /// (exposed so loaders can audit for stale gates after unloads).
    pub fn key_gate_sites(&self) -> impl Iterator<Item = u32> + '_ {
        self.key_gates.iter().copied()
    }

    /// Freezes the world into an immutable [`Snapshot`] usable as a
    /// fork template. The frame slab is shared copy-on-write behind the
    /// snapshot — taking one costs a slab-metadata copy (microseconds),
    /// not a memory copy — and the snapshot's own frames can never
    /// change afterwards: it hands out no mutable access.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot(self.clone())
    }

    /// Forks a new world from this one in microseconds.
    ///
    /// Frame payloads are shared copy-on-write and materialize
    /// privately on first write in either world. The predecode cache
    /// and translation memos carry over — they key on physical
    /// addresses and slab slots, both preserved by the fork, and are
    /// invalidated per-frame by the same store/code generations as
    /// always — so a forked world is cycle/stat/fault byte-identical
    /// to the world it forked from (and hence to a cold boot that
    /// reached the same state).
    pub fn fork(&self) -> Machine {
        self.clone()
    }

    // ----- durable checkpoint/restore ---------------------------------------

    /// Serializes the whole world into a deterministic, integrity-checked
    /// binary image (see [`crate::image`] for the format).
    ///
    /// The image carries every piece of *architectural* state: CPU,
    /// descriptor tables, IDT, TSS, the MMU with its live TLB (sorted by
    /// VPN), the cycle/instruction counters, and only the materialized
    /// physical frames (sorted by frame number). The predecode cache,
    /// translation memos and any live trace are deliberately excluded —
    /// they are derived host-side state, rebuilt on demand, and their
    /// absence is invisible to cycle accounting and statistics (memo hits
    /// count as TLB hits). Saving the same world twice yields the same
    /// bytes.
    pub fn save_image(&self) -> Vec<u8> {
        let mut b = ImageBuilder::new(kind::MACHINE);

        let mut e = Enc::new();
        image::put_cpu(&mut e, &self.cpu);
        b.section(1, e);

        let mut e = Enc::new();
        image::put_descriptor_table(&mut e, &self.gdt);
        b.section(2, e);

        let mut e = Enc::new();
        match &self.ldt {
            Some(t) => {
                e.bool(true);
                image::put_descriptor_table(&mut e, t);
            }
            None => e.bool(false),
        }
        b.section(3, e);

        let mut e = Enc::new();
        e.u32(self.idt.len() as u32);
        for gate in &self.idt {
            match gate {
                Some(g) => {
                    e.bool(true);
                    e.u8(g.dpl);
                }
                None => e.bool(false),
            }
        }
        b.section(4, e);

        let mut e = Enc::new();
        for (sel, esp) in self.tss.stack {
            e.u16(sel.0);
            e.u32(esp);
        }
        b.section(5, e);

        let mut e = Enc::new();
        self.mmu.save_into(&mut e);
        b.section(6, e);

        let mut e = Enc::new();
        e.u64(self.cycles);
        e.u64(self.insns);
        e.bool(self.predecode);
        b.section(7, e);

        let mut e = Enc::new();
        self.mem.save_into(&mut e);
        b.section(8, e);

        let mut e = Enc::new();
        e.u32(self.key_gates.len() as u32);
        for &site in &self.key_gates {
            e.u32(site);
        }
        b.section(9, e);

        b.finish()
    }

    /// Rebuilds a world from an image written by [`Machine::save_image`].
    ///
    /// Restore is verify-or-reject: any corruption — a flipped bit, a
    /// truncation, a torn write, transposed sections, a version or kind
    /// mismatch — yields a typed [`RestoreError`] and no world. A
    /// successful restore resumes cycle/stat/fault byte-identically to
    /// the world that was saved; the predecode cache and translation
    /// memos start cold and are rebuilt on demand.
    pub fn restore_image(bytes: &[u8]) -> Result<Machine, RestoreError> {
        let v = ImageView::parse(bytes, kind::MACHINE)?;
        let mut m = Machine::new();

        let mut d = v.require(1, "cpu")?;
        m.cpu = image::get_cpu(&mut d)?;
        d.finish()?;

        let mut d = v.require(2, "gdt")?;
        m.gdt = image::get_descriptor_table(&mut d)?;
        d.finish()?;

        let mut d = v.require(3, "ldt")?;
        m.ldt = if d.bool()? {
            Some(image::get_descriptor_table(&mut d)?)
        } else {
            None
        };
        d.finish()?;

        let mut d = v.require(4, "idt")?;
        let n = d.u32()? as usize;
        if n != 256 {
            return Err(d.fail(format!("IDT has {n} vectors")));
        }
        let mut idt = Vec::with_capacity(n);
        for _ in 0..n {
            idt.push(if d.bool()? {
                Some(IdtGate { dpl: d.u8()? })
            } else {
                None
            });
        }
        m.idt = idt;
        d.finish()?;

        let mut d = v.require(5, "tss")?;
        for slot in &mut m.tss.stack {
            *slot = (Selector(d.u16()?), d.u32()?);
        }
        d.finish()?;

        let mut d = v.require(6, "mmu")?;
        m.mmu = Mmu::restore_from(&mut d)?;
        d.finish()?;

        let mut d = v.require(7, "counters")?;
        m.cycles = d.u64()?;
        m.insns = d.u64()?;
        m.predecode = d.bool()?;
        d.finish()?;

        let mut d = v.require(8, "frames")?;
        m.mem = PhysMem::restore_from(&mut d)?;
        d.finish()?;

        let mut d = v.require(9, "key-gates")?;
        let n = d.u32()?;
        let mut prev: Option<u32> = None;
        for _ in 0..n {
            let site = d.u32()?;
            if prev.is_some_and(|p| p >= site) {
                return Err(d.fail("gate sites not strictly ascending"));
            }
            prev = Some(site);
            m.key_gates.insert(site);
        }
        d.finish()?;

        Ok(m)
    }

    /// Enables or disables the predecoded-instruction fast path.
    ///
    /// This is a *host* performance knob: simulated semantics and cycle
    /// accounting are identical either way (the determinism tests assert
    /// it). Disabling clears the cache and falls back to the byte-wise
    /// fetch, which the throughput benchmark uses as its baseline.
    pub fn set_predecode(&mut self, on: bool) {
        self.predecode = on;
        if !on {
            self.icache.clear();
            self.proof_run = None;
        }
    }

    /// Whether the predecode fast path is enabled.
    pub fn predecode_enabled(&self) -> bool {
        self.predecode
    }

    /// Host-side hit/miss counters of the predecode cache.
    pub fn predecode_stats(&self) -> PredecodeStats {
        self.icache.stats()
    }

    // ----- proof tokens ------------------------------------------------------

    /// Installs a proof token for the verified block at linear address
    /// `linear`, `len` bytes long, with `ds` carrying the block's DS
    /// bounds proof (if it has one). The machine predecodes the block's
    /// bytes itself — the caller asserts only the *proof* (that every DS
    /// access stays at offsets `..=ds.hi`), never the decoding.
    ///
    /// Serving requires both the predecode fast path and
    /// [`Machine::set_proof_elision`] to be on. A failed installation is
    /// harmless: the block simply executes on the normal path.
    pub fn install_proof_token(
        &mut self,
        linear: u32,
        len: u32,
        ds: Option<ProofDs>,
    ) -> Result<(), ProofInstallError> {
        if len == 0 {
            return Err(ProofInstallError::Empty);
        }
        let phys = self
            .host_translate(linear)
            .ok_or(ProofInstallError::Unmapped)?;
        // The whole block plus one fetch lookahead window must sit inside
        // a single page, so serving (and the equivalent normal-path
        // fetch) never needs a second page translation.
        if (phys & PAGE_MASK) as usize + len as usize + MAX_INSN_LEN > PAGE_SIZE as usize {
            return Err(ProofInstallError::CrossesPage);
        }
        // Contiguity of the linear range follows: it fits one page too.
        let bytes = self.host_read(linear, len as usize);
        let mut insns = Vec::new();
        let mut at = 0usize;
        while at < len as usize {
            let Ok((insn, ilen)) = decode(&bytes[at..]) else {
                return Err(ProofInstallError::BadBytes);
            };
            insns.push(TokenInsn {
                insn,
                len: ilen as u32,
                cost: cycles::measured_cost(&insn),
            });
            at += ilen;
        }
        if at != len as usize {
            return Err(ProofInstallError::BadBytes);
        }
        // Track self-modification exactly like the predecode cache: mark
        // the bytes as code and snapshot the slot's code generation.
        let slot = self.mem.ensure_frame_slot(phys);
        self.mem
            .mark_code(slot, (phys & PAGE_MASK) as usize, len as usize);
        let gen = self.mem.slot_code_generation(slot);
        let token = BlockToken {
            start_phys: phys,
            len,
            insns,
            ds,
            slot,
            gen,
        };
        Arc::make_mut(&mut self.proof_tokens).insert(phys, Arc::new(token));
        self.proof_stats.installed = self.proof_tokens.len() as u64;
        Ok(())
    }

    /// Removes every installed proof token and stops any active run.
    /// Loaders call this when a module is unloaded or its pages are
    /// repurposed; still-valid proofs can simply be reinstalled.
    pub fn clear_proof_tokens(&mut self) {
        if !self.proof_tokens.is_empty() {
            self.proof_tokens = crate::proof::TokenMap::default();
        }
        self.proof_run = None;
        self.proof_stats.installed = 0;
    }

    /// Removes the proof token for the block at linear address `linear`,
    /// if one is installed and the page is still mapped. Loaders call
    /// this per block when one module's pages are revoked while others
    /// keep running — unlike [`Machine::clear_proof_tokens`] it leaves
    /// unrelated tokens in place.
    pub fn remove_proof_token(&mut self, linear: u32) -> bool {
        let Some(phys) = self.host_translate(linear) else {
            return false;
        };
        let removed = Arc::make_mut(&mut self.proof_tokens)
            .remove(&phys)
            .is_some();
        if removed {
            if let Some(run) = &self.proof_run {
                if run.token.start_phys == phys {
                    self.proof_run = None;
                }
            }
            self.proof_stats.installed = self.proof_tokens.len() as u64;
        }
        removed
    }

    /// Enables or disables serving from proof tokens.
    ///
    /// Like [`Machine::set_predecode`], a *host* knob: simulated cycles,
    /// statistics and faults are identical either way (the differential
    /// soundness fuzzer asserts exactly this). Off is the baseline the
    /// throughput benchmark and the fuzzer's unelided twin use.
    pub fn set_proof_elision(&mut self, on: bool) {
        self.proof_elide = on;
        if !on {
            self.proof_run = None;
        }
    }

    /// Whether serving from proof tokens is enabled.
    pub fn proof_elision_enabled(&self) -> bool {
        self.proof_elide
    }

    /// Host-side proof-token counters.
    pub fn proof_stats(&self) -> ProofStats {
        self.proof_stats
    }

    /// Number of installed proof tokens.
    pub fn proof_token_count(&self) -> usize {
        self.proof_tokens.len()
    }

    /// Total cycles charged so far.
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total instructions retired.
    pub fn insns(&self) -> u64 {
        self.insns
    }

    /// Charges raw cycles (used by the hosting kernel for modelled work).
    pub fn charge(&mut self, cycles: u64) {
        self.cycles += cycles;
    }

    /// Charges a hardware event.
    pub fn charge_event(&mut self, ev: Event) {
        self.cycles += cycles::measured_event(ev);
    }

    // ----- segment loading -------------------------------------------------

    /// Loads a data segment register (`mov sreg, r`, `pop sreg`), with the
    /// full descriptor privilege checks. Charges the segment-load cost.
    pub fn load_data_seg(&mut self, sr: SegReg, sel: Selector) -> Result<(), FaultBuilder> {
        self.charge_event(Event::SegLoad);
        self.load_data_seg_nocharge(sr, sel)
    }

    /// As [`Machine::load_data_seg`] but without charging — used inside
    /// far transfers whose event cost already includes the loads.
    pub(crate) fn load_data_seg_nocharge(
        &mut self,
        sr: SegReg,
        sel: Selector,
    ) -> Result<(), FaultBuilder> {
        match sr {
            SegReg::Cs => {
                // CS is only loadable by far control transfers.
                return Err(Fault::ud(FaultCause::BadInstruction));
            }
            SegReg::Ss => {
                if sel.is_null() {
                    return Err(Fault::gp(sel.0, FaultCause::BadSelector(sel.0)));
                }
                let d = resolve(&self.gdt, self.ldt.as_ref(), sel)?;
                let cache = SegCache::from_descriptor(sel, &d)
                    .ok_or(Fault::gp(sel.0, FaultCause::BadSegmentType))?;
                if cache.code || !cache.writable {
                    return Err(Fault::gp(sel.0, FaultCause::BadSegmentType));
                }
                if sel.rpl() != self.cpu.cpl || cache.dpl != self.cpu.cpl {
                    return Err(Fault::gp(
                        sel.0,
                        FaultCause::PrivilegeViolation {
                            cpl: self.cpu.cpl,
                            rpl: sel.rpl(),
                            dpl: cache.dpl,
                        },
                    ));
                }
                if !self.descriptor_present(&d) {
                    return Err(Fault::ss(sel.0, FaultCause::SegmentNotPresent(sel.0)));
                }
                self.write_seg_cache(sr, cache);
            }
            SegReg::Ds | SegReg::Es => {
                if sel.is_null() {
                    // Null is loadable; any use faults later.
                    self.write_seg_cache(sr, SegCache::invalid());
                    return Ok(());
                }
                let d = resolve(&self.gdt, self.ldt.as_ref(), sel)?;
                let cache = SegCache::from_descriptor(sel, &d)
                    .ok_or(Fault::gp(sel.0, FaultCause::BadSegmentType))?;
                if cache.code && !cache.readable {
                    return Err(Fault::gp(sel.0, FaultCause::BadSegmentType));
                }
                // Privilege: data and non-conforming readable code require
                // DPL >= max(CPL, RPL); conforming code skips the check.
                if !(cache.code && cache.conforming) {
                    let eff = self.cpu.cpl.max(sel.rpl());
                    if cache.dpl < eff {
                        return Err(Fault::gp(
                            sel.0,
                            FaultCause::PrivilegeViolation {
                                cpl: self.cpu.cpl,
                                rpl: sel.rpl(),
                                dpl: cache.dpl,
                            },
                        ));
                    }
                }
                if !self.descriptor_present(&d) {
                    return Err(Fault::np(sel.0));
                }
                self.write_seg_cache(sr, cache);
            }
        }
        Ok(())
    }

    /// The single funnel for segment-cache writes: every load of a
    /// segment register (and the host forcing helpers) goes through here
    /// so the segment-write generation advances — the one compare a
    /// proof-token run needs to know its snapshotted CS/DS/CPL state is
    /// untouched.
    #[inline]
    pub(crate) fn write_seg_cache(&mut self, sr: SegReg, cache: SegCache) {
        self.cpu.segs[sr as usize] = cache;
        self.seg_gen = self.seg_gen.wrapping_add(1);
    }

    fn descriptor_present(&self, d: &Descriptor) -> bool {
        match d {
            Descriptor::Null => false,
            Descriptor::Code(c) => c.present,
            Descriptor::Data(d) => d.present,
            Descriptor::Gate(g) => g.present,
        }
    }

    /// Host-side: force a segment cache without checks (used to establish
    /// initial state, like a bootloader or kernel `iret` into a task).
    pub fn force_seg(&mut self, sr: SegReg, sel: Selector, cache: SegCache) {
        let mut cache = cache;
        cache.selector = sel;
        self.write_seg_cache(sr, cache);
        if sr == SegReg::Cs {
            self.cpu.cpl = sel.rpl();
        }
    }

    /// Host-side: resolve a selector and force-load it (asserting it is
    /// valid). Convenience for kernels establishing contexts.
    pub fn force_seg_from_table(&mut self, sr: SegReg, sel: Selector) {
        let d = resolve(&self.gdt, self.ldt.as_ref(), sel).expect("bad selector");
        let cache = SegCache::from_descriptor(sel, &d).expect("not a segment");
        self.force_seg(sr, sel, cache);
    }

    // ----- logical memory access -------------------------------------------

    /// Performs the segment-level checks for an access and returns the
    /// linear address.
    #[inline]
    pub fn seg_check(
        &self,
        sr: SegReg,
        off: u32,
        size: u32,
        write: bool,
    ) -> Result<u32, FaultBuilder> {
        let seg = self.cpu.seg(sr);
        let stack = sr == SegReg::Ss;
        let fault = |cause| {
            if stack {
                Fault::ss(0, cause)
            } else {
                Fault::gp(0, cause)
            }
        };
        if !seg.valid {
            return Err(fault(FaultCause::BadSelector(seg.selector.0)));
        }
        if !seg.check_limit(off, size) {
            return Err(fault(FaultCause::LimitViolation {
                offset: off,
                limit: seg.limit,
            }));
        }
        if write {
            if seg.code || !seg.writable {
                return Err(fault(FaultCause::BadSegmentType));
            }
        } else if !seg.readable {
            return Err(fault(FaultCause::BadSegmentType));
        }
        Ok(seg.base.wrapping_add(off))
    }

    /// Translates a data access on the original per-access MMU path (no
    /// memo): the page-straddling paths and the `set_predecode(false)`
    /// baseline use this.
    fn translate_data(&mut self, linear: u32, write: bool) -> Result<u32, FaultBuilder> {
        let access = if write { Access::Write } else { Access::Read };
        let user = self.cpu.cpl == 3;
        let t = self
            .mmu
            .translate_keyed(&mut self.mem, linear, access, user, self.cpu.pkru)?;
        if t.tlb_miss {
            self.charge_event(Event::TlbMiss);
        }
        Ok(t.phys)
    }

    /// Translates a within-page data access, answering repeat same-page
    /// accesses from the read/write memos and returning the frame's slab
    /// slot ([`NO_SLOT`] when unbacked) for slot-direct physical access.
    /// See [`PageMemo`] for the soundness argument. Gated on the
    /// predecode flag so the benchmark baseline keeps the pre-fast-path
    /// cost structure.
    #[inline]
    fn translate_data_slot(
        &mut self,
        linear: u32,
        write: bool,
    ) -> Result<(u32, u32), FaultBuilder> {
        if !(self.mmu.enabled && self.predecode) {
            return self.translate_data(linear, write).map(|p| (p, NO_SLOT));
        }
        let user = self.cpu.cpl == 3;
        let pkru = self.cpu.pkru;
        let page = linear & !PAGE_MASK;
        let epoch = self.mmu.epoch();
        let memo = if write {
            &self.data_write_memo
        } else {
            &self.data_read_memo
        };
        if let Some((pp, slot)) = memo.lookup(page, user, pkru, epoch) {
            self.mmu.count_memo_hit();
            return Ok((pp | (linear & PAGE_MASK), slot));
        }
        let access = if write { Access::Write } else { Access::Read };
        let t = self
            .mmu
            .translate_keyed(&mut self.mem, linear, access, user, pkru)?;
        if t.tlb_miss {
            self.charge_event(Event::TlbMiss);
        }
        let pp = t.phys & !PAGE_MASK;
        let slot = if write {
            // The store about to happen would back the frame anyway, so
            // allocating it now changes nothing observable.
            self.mem.ensure_frame_slot(pp)
        } else {
            self.mem.frame_slot(pp).unwrap_or(NO_SLOT)
        };
        if write {
            // A successful write-translate leaves the TLB entry dirty and
            // write rights imply read rights, so the page is also good
            // for reads.
            self.data_write_memo.fill(page, pp, slot, user, pkru, epoch);
        }
        self.data_read_memo.fill(page, pp, slot, user, pkru, epoch);
        Ok((t.phys, slot))
    }

    /// Reads `size` (1, 2 or 4) bytes through a segment.
    ///
    /// Inside a proof-token run whose DS entry guard held, DS accesses
    /// skip [`Machine::seg_check`]: the verifier proved the offset range
    /// the block can touch and the guard validated it against the live
    /// descriptor once at block entry. The check charges no simulated
    /// cycles and (per the proof) cannot fault, so eliding it is
    /// invisible to the simulated machine.
    #[inline]
    pub fn read_data(&mut self, sr: SegReg, off: u32, size: u32) -> Result<u32, FaultBuilder> {
        let linear = if sr == SegReg::Ds && self.ds_elide_now {
            self.proof_stats.ds_elided += 1;
            self.cpu.seg(SegReg::Ds).base.wrapping_add(off)
        } else {
            self.seg_check(sr, off, size, false)?
        };
        self.read_linear(linear, size, false)
    }

    /// Writes `size` (1, 2 or 4) bytes through a segment. DS writes
    /// elide the segment check inside a proven block, as
    /// [`Machine::read_data`] describes.
    #[inline]
    pub fn write_data(
        &mut self,
        sr: SegReg,
        off: u32,
        size: u32,
        value: u32,
    ) -> Result<(), FaultBuilder> {
        let linear = if sr == SegReg::Ds && self.ds_elide_now {
            self.proof_stats.ds_elided += 1;
            self.cpu.seg(SegReg::Ds).base.wrapping_add(off)
        } else {
            self.seg_check(sr, off, size, true)?
        };
        self.write_linear(linear, size, value)
    }

    #[inline]
    fn read_linear(&mut self, linear: u32, size: u32, _exec: bool) -> Result<u32, FaultBuilder> {
        if (linear & 0xFFF) + size <= 0x1000 {
            let (phys, slot) = self.translate_data_slot(linear, false)?;
            if slot != NO_SLOT {
                let off = phys & PAGE_MASK;
                return Ok(match size {
                    1 => self.mem.read_u8_slot(slot, off) as u32,
                    2 => self.mem.read_u16_slot(slot, off) as u32,
                    _ => self.mem.read_u32_slot(slot, off),
                });
            }
            Ok(match size {
                1 => self.mem.read_u8(phys) as u32,
                2 => self.mem.read_u16(phys) as u32,
                _ => self.mem.read_u32(phys),
            })
        } else {
            // Page-straddling access: translate byte-wise. The linear
            // address may wrap past 0xFFFF_FFFF (an expand-down or
            // high-based segment), matching `seg_check`'s wrapping
            // arithmetic — the wrapped page then translates (or faults)
            // like any other.
            let mut v: u32 = 0;
            for i in 0..size {
                let phys = self.translate_data(linear.wrapping_add(i), false)?;
                v |= (self.mem.read_u8(phys) as u32) << (8 * i);
            }
            Ok(v)
        }
    }

    #[inline]
    fn write_linear(&mut self, linear: u32, size: u32, value: u32) -> Result<(), FaultBuilder> {
        if (linear & 0xFFF) + size <= 0x1000 {
            let (phys, slot) = self.translate_data_slot(linear, true)?;
            if slot != NO_SLOT {
                let off = phys & PAGE_MASK;
                match size {
                    1 => self.mem.write_u8_slot(slot, off, value as u8),
                    2 => self.mem.write_u16_slot(slot, off, value as u16),
                    _ => self.mem.write_u32_slot(slot, off, value),
                }
                return Ok(());
            }
            match size {
                1 => self.mem.write_u8(phys, value as u8),
                2 => self.mem.write_u16(phys, value as u16),
                _ => self.mem.write_u32(phys, value),
            }
        } else {
            // Page-straddling store: translate every byte *before* writing
            // any, so a fault on the second page cannot leave a partial
            // store (restartable-instruction semantics).
            let mut phys = [0u32; 4];
            for i in 0..size {
                phys[i as usize] = self.translate_data(linear.wrapping_add(i), true)?;
            }
            for i in 0..size {
                self.mem
                    .write_u8(phys[i as usize], (value >> (8 * i)) as u8);
            }
        }
        Ok(())
    }

    // ----- stack helpers ----------------------------------------------------

    /// Pushes a 32-bit value on the current stack.
    #[inline]
    pub fn push32(&mut self, v: u32) -> Result<(), FaultBuilder> {
        let esp = self.cpu.esp().wrapping_sub(4);
        self.write_data(SegReg::Ss, esp, 4, v)?;
        self.cpu.set_reg(Reg::Esp, esp);
        Ok(())
    }

    /// Pops a 32-bit value from the current stack.
    #[inline]
    pub fn pop32(&mut self) -> Result<u32, FaultBuilder> {
        let esp = self.cpu.esp();
        let v = self.read_data(SegReg::Ss, esp, 4)?;
        self.cpu.set_reg(Reg::Esp, esp.wrapping_add(4));
        Ok(v)
    }

    // ----- instruction fetch ------------------------------------------------

    /// Fetches and decodes the instruction at CS:EIP.
    ///
    /// The prefetch window is at most [`MAX_INSN_LEN`] bytes, clipped by
    /// the segment limit; translation happens **per page**, not per byte
    /// (one walk for the window's first page, one more only when the
    /// window crosses a page boundary — the same `Event::TlbMiss` charges
    /// and A-bit side effects as a byte-wise walk, since every byte of a
    /// page shares its translation). A translation fault on the *second*
    /// page is deferred: the decoder runs on the bytes that are mapped,
    /// and the #PF is raised only if the instruction actually needed the
    /// missing bytes. Successful decodes are served from the predecode
    /// cache on subsequent fetches (see [`crate::predecode`]).
    ///
    /// Returns `(insn, length, base cycle cost)` — the cost is
    /// [`cycles::measured_cost`], memoized in the predecode cache so a
    /// hit does not re-derive it.
    pub fn fetch(&mut self) -> Result<(Insn, u32, u64), FaultBuilder> {
        self.ds_elide_now = false;
        let eip = self.cpu.eip;
        // Hot continuation of an active token run: while the guard
        // inputs are provably unchanged (segment-write generation, MMU
        // epoch, code generation) everything below — including the CS
        // validity check, the window computation, the translation and
        // the cache lookups — would reproduce what the run already
        // verified, so it is skipped wholesale. This is where the
        // hoisting pays: a served instruction costs a handful of
        // compares. Falls through to the full path on any mismatch.
        if self.proof_elide && self.proof_run.is_some() {
            if let Some(hit) = self.proof_fast(eip) {
                return Ok(hit);
            }
        }
        let cs = *self.cpu.seg(SegReg::Cs);
        if !cs.valid || !cs.code {
            return Err(Fault::gp(cs.selector.0, FaultCause::BadSegmentType));
        }
        // Bytes of the prefetch window the segment limit permits.
        //
        // For an expand-up segment (every genuine code descriptor) this is
        // arithmetic: offsets `eip..=limit` are valid, and when `limit` is
        // `u32::MAX` the window wraps through 0 and stays valid, exactly
        // as the byte-by-byte `check_limit` probe would find. The probe
        // loop remains for the force-loaded expand-down oddity.
        let window = if !cs.expand_down {
            if eip > cs.limit {
                0
            } else if cs.limit == u32::MAX {
                MAX_INSN_LEN
            } else {
                ((cs.limit - eip + 1) as usize).min(MAX_INSN_LEN)
            }
        } else {
            let mut w = 0usize;
            while w < MAX_INSN_LEN && cs.check_limit(eip.wrapping_add(w as u32), 1) {
                w += 1;
            }
            w
        };
        if window == 0 {
            return Err(Fault::gp(
                0,
                FaultCause::LimitViolation {
                    offset: eip,
                    limit: cs.limit,
                },
            ));
        }
        let lin0 = cs.base.wrapping_add(eip);
        if !self.predecode {
            return self.fetch_bytewise(&cs, eip, window);
        }

        // Translate once per page touched by the permitted window. A
        // fault on the first page is fatal (not even one byte can be
        // fetched); a fault on the second is recorded and raised only if
        // the decoder runs out of bytes.
        let phys0 = self.translate_fetch_fast(lin0)?;

        // Proof-token fast path: serve the instruction from an installed
        // token when the block's hoisted entry guard (still) holds. The
        // serve is host-only — the translation above already performed
        // the same (memoized) work the normal path does, the token block
        // never spans a second page, and the precomputed cost is the one
        // the normal decode would derive — so cycles, stats and faults
        // are byte-identical to the normal path below.
        if self.proof_elide {
            if let Some(hit) = self.proof_serve(phys0, eip, &cs) {
                return Ok(hit);
            }
        }
        let page_rem = (PAGE_SIZE - (lin0 & PAGE_MASK)) as usize;
        let n_lo = window.min(page_rem);
        let mut hi_page: Option<u32> = None;
        let mut pending: Option<FaultBuilder> = None;
        if window > n_lo {
            match self.translate_fetch(lin0.wrapping_add(n_lo as u32)) {
                Ok(p) => hi_page = Some(p),
                Err(fb) => pending = Some(fb),
            }
        }

        if let Some(hit) = self.icache.lookup(&self.mem, phys0, window, hi_page) {
            return Ok(hit);
        }

        let mut buf = [0u8; MAX_INSN_LEN];
        copy_page_bytes(&self.mem, phys0, &mut buf[..n_lo]);
        let mut n = n_lo;
        if let Some(h) = hi_page {
            copy_page_bytes(&self.mem, h, &mut buf[n_lo..window]);
            n = window;
        }
        match decode(&buf[..n]) {
            Ok((insn, len)) => {
                self.icache
                    .insert(&mut self.mem, phys0, insn, len as u32, hi_page);
                Ok((insn, len as u32, cycles::measured_cost(&insn)))
            }
            Err(DecodeError::Truncated) if pending.is_some() => Err(pending.unwrap()),
            Err(_) => Err(Fault::ud(FaultCause::BadInstruction)),
        }
    }

    /// Byte-wise fetch: the pre-fast-path reference implementation, kept
    /// as the benchmark baseline (`set_predecode(false)`). It reproduces
    /// the original algorithm's cost structure — a `check_limit` probe,
    /// a translation and a physical read *per prefetched byte* — with
    /// semantics identical to the per-page path, including the deferred
    /// page-boundary fault.
    fn fetch_bytewise(
        &mut self,
        cs: &SegCache,
        eip: u32,
        window: usize,
    ) -> Result<(Insn, u32, u64), FaultBuilder> {
        let mut buf = [0u8; MAX_INSN_LEN];
        let mut n = 0usize;
        let mut pending: Option<FaultBuilder> = None;
        while n < window {
            let off = eip.wrapping_add(n as u32);
            if !cs.check_limit(off, 1) {
                break;
            }
            match self.translate_fetch(cs.base.wrapping_add(off)) {
                Ok(phys) => buf[n] = self.mem.read_u8(phys),
                Err(fb) => {
                    pending = Some(fb);
                    break;
                }
            }
            n += 1;
        }
        if n == 0 {
            // The very first byte is unmapped: nothing to decode.
            return Err(pending.expect("window > 0, so the loop ran"));
        }
        match decode(&buf[..n]) {
            Ok((insn, len)) => Ok((insn, len as u32, cycles::measured_cost(&insn))),
            Err(DecodeError::Truncated) if pending.is_some() => Err(pending.unwrap()),
            Err(_) => Err(Fault::ud(FaultCause::BadInstruction)),
        }
    }

    /// Tries to serve the fetch at `eip` (translated to `phys0`) from a
    /// proof token: either the active run's next instruction, or the
    /// first instruction of a token starting at `phys0` whose entry
    /// guard holds. `None` falls through to the normal fetch path.
    fn proof_serve(&mut self, phys0: u32, eip: u32, cs: &SegCache) -> Option<(Insn, u32, u64)> {
        if let Some(run) = &self.proof_run {
            if run.idx == run.count {
                // Ran its block to completion (and the hot re-arm did
                // not apply): retire silently, it is not a break.
                self.proof_run = None;
            } else {
                let live = eip == run.expect_eip
                    && phys0 == run.expect_phys
                    && self.seg_gen == run.seg_gen
                    && self.mem.slot_code_generation(run.slot) == run.gen;
                if live {
                    // The translation and the slot's code generation
                    // were just re-verified: re-sync the hot-path guard
                    // inputs so the next fetch can take the fast
                    // continuation again.
                    let (epoch, paged) = (self.mmu.epoch(), self.mmu.enabled);
                    let code_epoch = self.mem.code_epoch();
                    let run = self.proof_run.as_mut().expect("checked above");
                    run.epoch = epoch;
                    run.paged = paged;
                    run.code_epoch = code_epoch;
                    return self.proof_advance();
                }
                self.proof_run = None;
                self.proof_stats.broken += 1;
            }
        }
        // Not inside a run: attempt activation at a block boundary.
        let token = Arc::clone(self.proof_tokens.get(&phys0)?);
        debug_assert_eq!(token.start_phys, phys0);
        // Entry guard, hoisted over the whole block:
        // - the block's last byte is inside the (expand-up) CS limit, so
        //   every per-instruction window check inside the block passes;
        // - the bytes still are what was predecoded (code generation);
        // - when the block carries a DS bounds proof, DS covers its
        //   maximum offset with the rights its accesses need.
        if cs.expand_down
            || eip.checked_add(token.len - 1).is_none_or(|e| e > cs.limit)
            || self.mem.slot_code_generation(token.slot) != token.gen
        {
            return None;
        }
        let ds = *self.cpu.seg(SegReg::Ds);
        let ds_elide = token.ds.is_some_and(|p| {
            ds.valid
                && !ds.expand_down
                && p.hi <= ds.limit
                && (!p.stores || (!ds.code && ds.writable))
                && (!p.loads || ds.readable)
        });
        self.proof_run = Some(ProofRun {
            idx: 0,
            count: token.insns.len(),
            slot: token.slot,
            gen: token.gen,
            code_epoch: self.mem.code_epoch(),
            token,
            expect_eip: eip,
            expect_phys: phys0,
            start_eip: eip,
            start_phys: phys0,
            epoch: self.mmu.epoch(),
            paged: self.mmu.enabled,
            seg_gen: self.seg_gen,
            ds_elide,
        });
        self.proof_stats.activations += 1;
        self.proof_advance()
    }

    /// Hot path of [`Machine::proof_serve`]: continues an active run —
    /// or re-arms a completed one across a loop back edge — without the
    /// window computation, translation or cache lookups of the full
    /// fetch path. Sound because every input those steps depend on is
    /// compared against the values the run verified when it last went
    /// through the full path: the segment-write generation (so the
    /// CS/DS caches and the CPL — the memo's `user` key — are
    /// bit-identical to what the entry guard validated), the MMU epoch
    /// with paging still on (the fetch-page memo would return the same
    /// translation), and the global code-invalidation epoch (no frame's
    /// code generation moved, so the bytes are still the predecoded
    /// ones). Any mismatch falls back to the full path, which breaks or
    /// re-verifies the run with a real translation in hand.
    ///
    /// The skipped memoized translation is accounted as the memo hit it
    /// would have been (`Mmu::count_memo_hit`), so the serialized TLB
    /// statistics stay byte-identical to unelided dispatch.
    #[inline(always)]
    fn proof_fast(&mut self, eip: u32) -> Option<(Insn, u32, u64)> {
        let run = self.proof_run.as_ref()?;
        let done = run.idx == run.count;
        let expect = if done { run.start_eip } else { run.expect_eip };
        if eip != expect
            || self.seg_gen != run.seg_gen
            || !run.paged
            || !self.mmu.enabled
            || self.mmu.epoch() != run.epoch
            || self.mem.code_epoch() != run.code_epoch
        {
            return None;
        }
        self.mmu.count_memo_hit();
        if done {
            // Loop back edge: everything the entry guard checked at
            // activation was just re-compared, so re-arm in place.
            let run = self.proof_run.as_mut().expect("checked above");
            run.idx = 0;
            run.expect_eip = run.start_eip;
            run.expect_phys = run.start_phys;
            self.proof_stats.activations += 1;
        }
        self.proof_advance()
    }

    /// Serves the active run's next instruction and advances it. A run
    /// that reaches block end is kept (`idx == insns.len()`) so the hot
    /// path can re-arm it across a loop back edge; it is retired by the
    /// next full-path fetch that does not re-arm it.
    #[inline(always)]
    fn proof_advance(&mut self) -> Option<(Insn, u32, u64)> {
        let run = self.proof_run.as_mut()?;
        let t = run.token.insns[run.idx];
        self.ds_elide_now = run.ds_elide;
        run.idx += 1;
        run.expect_eip = run.expect_eip.wrapping_add(t.len);
        run.expect_phys += t.len;
        self.proof_stats.served += 1;
        Some((t.insn, t.len, t.cost))
    }

    /// Fetch-path translation through the fetch-page memo (fast path
    /// only; the byte-wise baseline keeps calling
    /// [`Machine::translate_fetch`]). See [`PageMemo`] for why the memo
    /// is invisible to the simulated machine.
    #[inline]
    fn translate_fetch_fast(&mut self, linear: u32) -> Result<u32, FaultBuilder> {
        // Memoize only under paging: `enabled` is a plain field that can
        // be toggled without a flush, so identity translations must not
        // be cached across an enable.
        if !self.mmu.enabled {
            return self.translate_fetch(linear);
        }
        let page = linear & !PAGE_MASK;
        let user = self.cpu.cpl == 3;
        let epoch = self.mmu.epoch();
        // Protection keys never gate instruction fetches (as on real
        // MPK hardware), so the fetch memo keys on a constant PKRU.
        if let Some((pp, _)) = self.fetch_memo.lookup(page, user, 0, epoch) {
            self.mmu.count_memo_hit();
            return Ok(pp | (linear & PAGE_MASK));
        }
        let phys = self.translate_fetch(linear)?;
        self.fetch_memo
            .fill(page, phys & !PAGE_MASK, NO_SLOT, user, 0, epoch);
        Ok(phys)
    }

    fn translate_fetch(&mut self, linear: u32) -> Result<u32, FaultBuilder> {
        let user = self.cpu.cpl == 3;
        let t = self
            .mmu
            .translate(&mut self.mem, linear, Access::Read, user)?;
        if t.tlb_miss {
            self.charge_event(Event::TlbMiss);
        }
        Ok(t.phys)
    }

    // ----- execution loop ---------------------------------------------------

    /// Executes one instruction. `None` means "keep going".
    pub fn step(&mut self) -> Option<Exit> {
        let saved_eip = self.cpu.eip;
        let cs_sel = self.cpu.seg(SegReg::Cs).selector.0;
        let cpl = self.cpu.cpl;
        match self.step_inner() {
            Ok(exit) => exit,
            Err(fb) => {
                // Deliver the exception: restore the faulting EIP
                // (instructions are restartable) and exit to the host
                // kernel, charging the vectoring cost.
                self.cpu.eip = saved_eip;
                self.charge_event(Event::ExceptionDelivery);
                Some(Exit::Fault(fb.at(saved_eip, cs_sel, cpl)))
            }
        }
    }

    fn step_inner(&mut self) -> Result<Option<Exit>, FaultBuilder> {
        let (insn, len, cost) = self.fetch()?;
        self.insns += 1;
        self.cycles += cost;
        // Attribute the instruction to the domain it *executed in* (far
        // transfers change CPL as a side effect), so capture the state
        // before `execute` — but only when a trace is live.
        let pre = self.trace.is_some().then(|| {
            (
                self.cpu.eip,
                self.cpu.segs[SegReg::Cs as usize].selector.0,
                self.cpu.cpl,
            )
        });
        let r = self.execute(insn, len);
        if let Some((eip, cs, cpl)) = pre {
            if let Some(t) = self.trace.as_mut() {
                t.push(TraceRecord {
                    cs,
                    cpl,
                    eip,
                    insn,
                    cycles: self.cycles,
                });
            }
        }
        r
    }

    /// Runs until an exit or until `max_insns` instructions retire.
    pub fn run(&mut self, max_insns: u64) -> Exit {
        for _ in 0..max_insns {
            if let Some(exit) = self.step() {
                return exit;
            }
        }
        Exit::InsnLimit
    }

    /// Runs until EIP reaches `breakpoint` (before executing it), an exit
    /// occurs, or `max_insns` retire — the `segdb` breakpoint primitive.
    pub fn run_to(&mut self, breakpoint: u32, max_insns: u64) -> Option<Exit> {
        for _ in 0..max_insns {
            if self.cpu.eip == breakpoint {
                return None;
            }
            if let Some(exit) = self.step() {
                return Some(exit);
            }
        }
        Some(Exit::InsnLimit)
    }

    /// Runs until an exit or until the cycle counter passes `deadline`.
    ///
    /// This is the primitive behind the paper's extension CPU-time limit:
    /// the kernel's timer interrupt is modelled as a deadline check.
    pub fn run_until_cycles(&mut self, deadline: u64) -> Exit {
        loop {
            if self.cycles >= deadline {
                return Exit::CycleLimit;
            }
            if let Some(exit) = self.step() {
                return exit;
            }
        }
    }

    /// Enables execution tracing, retaining the last `capacity` retired
    /// instructions (for the segmentation-aware debugger of §6).
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = Some(Trace::new(capacity));
    }

    /// Disables tracing, returning what was collected.
    pub fn disable_trace(&mut self) -> Option<Trace> {
        self.trace.take()
    }

    /// Borrows the live trace, if enabled.
    pub fn trace(&self) -> Option<&Trace> {
        self.trace.as_ref()
    }

    /// Host-side: charge the cost of resuming the guest with `iret`.
    ///
    /// Called by the kernel when it returns control to guest code after a
    /// host-hooked interrupt or exception.
    pub fn charge_iret_resume(&mut self) {
        self.charge_event(Event::IretResume);
    }

    // ----- host-side (supervisor) memory helpers ----------------------------

    /// Reads bytes at a linear address, bypassing all protection (the
    /// hosting ring-0 kernel's view). Does not charge cycles.
    pub fn host_read(&self, linear: u32, len: usize) -> Vec<u8> {
        // Translation and backing are page-granular, so walk the range one
        // page span at a time instead of re-translating every byte.
        let mut out = vec![0u8; len];
        let mut done = 0usize;
        while done < len {
            let l = linear.wrapping_add(done as u32);
            let n = ((PAGE_SIZE - (l & PAGE_MASK)) as usize).min(len - done);
            if let Some(p) = self.host_translate(l) {
                if let Some(frame) = self.mem.frame_data(p) {
                    let off = (p & PAGE_MASK) as usize;
                    out[done..done + n].copy_from_slice(&frame[off..off + n]);
                }
                // Unbacked frames read as zeros; `out` already is.
            }
            done += n;
        }
        out
    }

    /// Writes bytes at a linear address, bypassing all protection.
    ///
    /// Returns `false` if any page was unmapped.
    pub fn host_write(&mut self, linear: u32, data: &[u8]) -> bool {
        // One translation per page span, then a bulk physical copy (which
        // bumps the span's store generation once, like any other store).
        let mut done = 0usize;
        while done < data.len() {
            let l = linear.wrapping_add(done as u32);
            let n = ((PAGE_SIZE - (l & PAGE_MASK)) as usize).min(data.len() - done);
            match self.host_translate(l) {
                Some(p) => self.mem.write_bytes(p, &data[done..done + n]),
                None => return false,
            }
            done += n;
        }
        true
    }

    /// Reads a u32 at a linear address (host view).
    pub fn host_read_u32(&self, linear: u32) -> u32 {
        let b = self.host_read(linear, 4);
        u32::from_le_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Writes a u32 at a linear address (host view).
    pub fn host_write_u32(&mut self, linear: u32, v: u32) -> bool {
        self.host_write(linear, &v.to_le_bytes())
    }

    /// Advisory host-side check that `linear` begins a decodable
    /// straight-line instruction window: decodes up to `max_insns`
    /// instructions from at most `max_bytes` bytes, stopping early at any
    /// control transfer. Returns `false` on undecodable bytes.
    ///
    /// Loaders dispatching into code that carries no load-time
    /// attestation use this to re-validate entry points per call; a
    /// `Verified` attestation licenses skipping it. Charges no cycles and
    /// never changes machine state.
    pub fn validate_entry_window(&self, linear: u32, max_bytes: usize, max_insns: u32) -> bool {
        let buf = self.host_read(linear, max_bytes);
        let mut off = 0usize;
        for _ in 0..max_insns {
            match decode(&buf[off..]) {
                Ok((insn, len)) => {
                    if insn.is_control() {
                        return true;
                    }
                    off += len;
                    if off >= buf.len() {
                        return true;
                    }
                }
                // A window ending mid-instruction is indistinguishable
                // from a longer valid one; only a hard bad opcode or
                // operand fails the check.
                Err(DecodeError::Truncated) => return true,
                Err(_) => return false,
            }
        }
        true
    }

    fn host_translate(&self, linear: u32) -> Option<u32> {
        if !self.mmu.enabled {
            return Some(linear);
        }
        let pte_val = crate::paging::get_pte(&self.mem, self.mmu.cr3, linear)?;
        Some((pte_val & crate::paging::pte::FRAME) | (linear & 0xFFF))
    }

    // ----- fault-injection hooks ---------------------------------------------
    //
    // Campaign drivers (crates/chaos) mutate machine state between steps
    // to probe the fault paths. All hooks move in the *revoking* direction
    // only (present → not-present); granting access would invalidate the
    // protection invariants the campaigns assert.

    /// Sets the present bit of GDT descriptor `index` (code, data or
    /// gate). Returns the previous present state, or `None` when the
    /// index does not name a descriptor.
    pub fn set_descriptor_present(&mut self, index: u16, present: bool) -> Option<bool> {
        let d = self.gdt.get(index).copied()?;
        let (was, updated) = match d {
            Descriptor::Null => return None,
            Descriptor::Code(mut c) => {
                let was = c.present;
                c.present = present;
                (was, Descriptor::Code(c))
            }
            Descriptor::Data(mut dd) => {
                let was = dd.present;
                dd.present = present;
                (was, Descriptor::Data(dd))
            }
            Descriptor::Gate(mut g) => {
                let was = g.present;
                g.present = present;
                (was, Descriptor::Gate(g))
            }
        };
        self.gdt.set(index, updated);
        Some(was)
    }

    /// Present bit of GDT descriptor `index`, if it exists.
    pub fn gdt_entry_present(&self, index: u16) -> Option<bool> {
        Some(match self.gdt.get(index)? {
            Descriptor::Null => return None,
            Descriptor::Code(c) => c.present,
            Descriptor::Data(d) => d.present,
            Descriptor::Gate(g) => g.present,
        })
    }
}

/// Copies `out.len()` bytes starting at physical `phys` out of a single
/// frame (the caller guarantees the range does not cross one). Unbacked
/// frames read as zeros, like [`PhysMem::read_u8`].
fn copy_page_bytes(mem: &PhysMem, phys: u32, out: &mut [u8]) {
    let off = (phys & PAGE_MASK) as usize;
    match mem.frame_data(phys) {
        Some(f) => out.copy_from_slice(&f[off..off + out.len()]),
        None => out.fill(0),
    }
}
