//! Segment descriptors, selectors and descriptor tables (GDT/LDT).
//!
//! Descriptors are held in structured form for clarity, but they pack to
//! and unpack from the genuine 8-byte x86 descriptor format (Figure 1 of
//! the paper); round-trip tests pin the bit layout.

use crate::fault::{Fault, FaultBuilder, FaultCause};

/// A segment selector: `index << 3 | TI << 2 | RPL`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Selector(pub u16);

impl Selector {
    /// Builds a selector from parts.
    pub fn new(index: u16, local: bool, rpl: u8) -> Selector {
        Selector((index << 3) | ((local as u16) << 2) | (rpl as u16 & 3))
    }

    /// The descriptor-table index.
    pub fn index(self) -> u16 {
        self.0 >> 3
    }

    /// True if the selector references the LDT.
    pub fn is_local(self) -> bool {
        self.0 & 0x4 != 0
    }

    /// The requestor privilege level.
    pub fn rpl(self) -> u8 {
        (self.0 & 3) as u8
    }

    /// True for the null selector (index 0 in the GDT, any RPL).
    pub fn is_null(self) -> bool {
        self.0 & !0x3 == 0
    }

    /// Returns the selector with its RPL replaced.
    pub fn with_rpl(self, rpl: u8) -> Selector {
        Selector((self.0 & !0x3) | (rpl as u16 & 3))
    }
}

impl From<u16> for Selector {
    fn from(v: u16) -> Selector {
        Selector(v)
    }
}

/// A code segment descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CodeSeg {
    /// Linear base address.
    pub base: u32,
    /// Limit in bytes (highest valid offset). Stored byte-granular; the
    /// packer converts to page granularity when it exceeds 20 bits.
    pub limit: u32,
    /// Descriptor privilege level.
    pub dpl: u8,
    /// Readable (data reads through CS allowed).
    pub readable: bool,
    /// Conforming: callable from less privileged code without changing CPL.
    pub conforming: bool,
    /// Present bit.
    pub present: bool,
}

/// A data segment descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataSeg {
    /// Linear base address.
    pub base: u32,
    /// Limit in bytes (highest valid offset).
    pub limit: u32,
    /// Descriptor privilege level.
    pub dpl: u8,
    /// Writable.
    pub writable: bool,
    /// Expand-down: valid offsets are those *above* the limit.
    pub expand_down: bool,
    /// Present bit.
    pub present: bool,
}

/// A call gate descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CallGate {
    /// Selector of the target code segment.
    pub selector: Selector,
    /// Entry point offset within the target segment.
    pub offset: u32,
    /// Minimum privilege required to call through the gate.
    pub dpl: u8,
    /// Number of 32-bit parameters copied across a stack switch.
    pub param_count: u8,
    /// Present bit.
    pub present: bool,
}

/// One descriptor-table entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Descriptor {
    /// The null descriptor (or an unused slot).
    Null,
    /// An executable segment.
    Code(CodeSeg),
    /// A data/stack segment.
    Data(DataSeg),
    /// A call gate.
    Gate(CallGate),
}

impl Descriptor {
    /// A flat 0..4GB code segment at the given DPL.
    pub fn flat_code(dpl: u8) -> Descriptor {
        Descriptor::Code(CodeSeg {
            base: 0,
            limit: u32::MAX,
            dpl,
            readable: true,
            conforming: false,
            present: true,
        })
    }

    /// A flat 0..4GB data segment at the given DPL.
    pub fn flat_data(dpl: u8) -> Descriptor {
        Descriptor::Data(DataSeg {
            base: 0,
            limit: u32::MAX,
            dpl,
            writable: true,
            expand_down: false,
            present: true,
        })
    }

    /// A code segment spanning `[base, base+size)`.
    pub fn code(base: u32, size: u32, dpl: u8) -> Descriptor {
        Descriptor::Code(CodeSeg {
            base,
            limit: size - 1,
            dpl,
            readable: true,
            conforming: false,
            present: true,
        })
    }

    /// A writable data segment spanning `[base, base+size)`.
    pub fn data(base: u32, size: u32, dpl: u8) -> Descriptor {
        Descriptor::Data(DataSeg {
            base,
            limit: size - 1,
            dpl,
            writable: true,
            expand_down: false,
            present: true,
        })
    }

    /// A call gate.
    pub fn call_gate(target: Selector, offset: u32, dpl: u8) -> Descriptor {
        Descriptor::Gate(CallGate {
            selector: target,
            offset,
            dpl,
            param_count: 0,
            present: true,
        })
    }

    /// The descriptor's DPL (0 for null).
    pub fn dpl(&self) -> u8 {
        match self {
            Descriptor::Null => 0,
            Descriptor::Code(c) => c.dpl,
            Descriptor::Data(d) => d.dpl,
            Descriptor::Gate(g) => g.dpl,
        }
    }

    /// Packs into the 8-byte x86 descriptor format.
    ///
    /// Byte-granular limits above `0xFFFFF` are converted to 4 KB
    /// granularity (the `G` bit), losing the low 12 bits exactly as real
    /// hardware would.
    pub fn pack(&self) -> u64 {
        match *self {
            Descriptor::Null => 0,
            Descriptor::Code(c) => {
                let type_bits = 0b1000 | ((c.conforming as u64) << 2) | ((c.readable as u64) << 1);
                pack_segment(c.base, c.limit, c.dpl, c.present, type_bits)
            }
            Descriptor::Data(d) => {
                let type_bits = ((d.expand_down as u64) << 2) | ((d.writable as u64) << 1);
                pack_segment(d.base, d.limit, d.dpl, d.present, type_bits)
            }
            Descriptor::Gate(g) => {
                let mut v = 0u64;
                v |= (g.offset & 0xFFFF) as u64;
                v |= (g.selector.0 as u64) << 16;
                v |= (g.param_count as u64 & 0x1F) << 32;
                v |= 0b01100 << 40; // type = 32-bit call gate (0xC)
                v |= (g.dpl as u64 & 3) << 45;
                v |= (g.present as u64) << 47;
                v |= ((g.offset >> 16) as u64) << 48;
                v
            }
        }
    }

    /// Unpacks from the 8-byte x86 descriptor format.
    ///
    /// Returns `None` for descriptor types the simulator does not model
    /// (TSS, LDT, 16-bit gates, ...).
    pub fn unpack(raw: u64) -> Option<Descriptor> {
        if raw == 0 {
            return Some(Descriptor::Null);
        }
        let s_bit = raw >> 44 & 1;
        let present = raw >> 47 & 1 != 0;
        let dpl = (raw >> 45 & 3) as u8;
        if s_bit == 1 {
            // Code or data segment.
            let base = ((raw >> 16) & 0xFF_FFFF) as u32 | (((raw >> 56) & 0xFF) as u32) << 24;
            let mut limit = (raw & 0xFFFF) as u32 | (((raw >> 48) & 0xF) as u32) << 16;
            let g = raw >> 55 & 1 != 0;
            if g {
                limit = (limit << 12) | 0xFFF;
            }
            let type_bits = (raw >> 40) & 0xF;
            if type_bits & 0b1000 != 0 {
                Some(Descriptor::Code(CodeSeg {
                    base,
                    limit,
                    dpl,
                    readable: type_bits & 0b0010 != 0,
                    conforming: type_bits & 0b0100 != 0,
                    present,
                }))
            } else {
                Some(Descriptor::Data(DataSeg {
                    base,
                    limit,
                    dpl,
                    writable: type_bits & 0b0010 != 0,
                    expand_down: type_bits & 0b0100 != 0,
                    present,
                }))
            }
        } else {
            let type_bits = (raw >> 40) & 0xF;
            if type_bits != 0b1100 {
                return None;
            }
            let offset = (raw & 0xFFFF) as u32 | (((raw >> 48) & 0xFFFF) as u32) << 16;
            Some(Descriptor::Gate(CallGate {
                selector: Selector((raw >> 16 & 0xFFFF) as u16),
                offset,
                dpl,
                param_count: (raw >> 32 & 0x1F) as u8,
                present,
            }))
        }
    }
}

fn pack_segment(base: u32, limit: u32, dpl: u8, present: bool, type_bits: u64) -> u64 {
    let (limit, g) = if limit > 0xFFFFF {
        (limit >> 12, 1u64)
    } else {
        (limit, 0u64)
    };
    let mut v = 0u64;
    v |= (limit & 0xFFFF) as u64;
    v |= ((base & 0xFFFFFF) as u64) << 16;
    v |= type_bits << 40;
    v |= 1 << 44; // S = code/data
    v |= (dpl as u64 & 3) << 45;
    v |= (present as u64) << 47;
    v |= (((limit >> 16) & 0xF) as u64) << 48;
    v |= 1 << 54; // D = 32-bit
    v |= g << 55;
    v |= ((base >> 24) as u64) << 56;
    v
}

/// A descriptor table (GDT or LDT).
#[derive(Debug, Clone, Default)]
pub struct DescriptorTable {
    entries: Vec<Descriptor>,
}

impl DescriptorTable {
    /// An empty table containing only the null descriptor.
    pub fn new() -> DescriptorTable {
        DescriptorTable {
            entries: vec![Descriptor::Null],
        }
    }

    /// Number of entries (including the null slot).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if only the null descriptor exists.
    pub fn is_empty(&self) -> bool {
        self.entries.len() <= 1
    }

    /// Appends a descriptor, returning its index.
    pub fn push(&mut self, d: Descriptor) -> u16 {
        self.entries.push(d);
        (self.entries.len() - 1) as u16
    }

    /// Replaces the descriptor at `index`.
    ///
    /// # Panics
    ///
    /// Panics if the index is out of range or is the null slot — the
    /// hosting kernel controls table layout and never does this.
    pub fn set(&mut self, index: u16, d: Descriptor) {
        assert!(index != 0, "cannot replace the null descriptor");
        self.entries[index as usize] = d;
    }

    /// Fetches the descriptor at `index`, if in range.
    pub fn get(&self, index: u16) -> Option<&Descriptor> {
        self.entries.get(index as usize)
    }
}

/// Resolves a selector against the GDT/LDT pair, performing the
/// out-of-range and null checks the hardware does.
pub fn resolve(
    gdt: &DescriptorTable,
    ldt: Option<&DescriptorTable>,
    sel: Selector,
) -> Result<Descriptor, FaultBuilder> {
    if sel.is_null() {
        return Err(Fault::gp(sel.0, FaultCause::BadSelector(sel.0)));
    }
    let table = if sel.is_local() {
        ldt.ok_or(Fault::gp(sel.0, FaultCause::BadSelector(sel.0)))?
    } else {
        gdt
    };
    match table.get(sel.index()) {
        Some(Descriptor::Null) | None => Err(Fault::gp(sel.0, FaultCause::BadSelector(sel.0))),
        Some(d) => Ok(*d),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_fields() {
        let s = Selector::new(5, true, 3);
        assert_eq!(s.0, 5 << 3 | 0x4 | 3);
        assert_eq!(s.index(), 5);
        assert!(s.is_local());
        assert_eq!(s.rpl(), 3);
        assert!(!s.is_null());
        assert!(Selector(0).is_null());
        assert!(Selector(3).is_null(), "null selector ignores RPL");
        assert_eq!(Selector(0x1B).with_rpl(0).0, 0x18);
    }

    #[test]
    fn pack_unpack_code_segment() {
        let d = Descriptor::Code(CodeSeg {
            base: 0xC000_0000,
            limit: 0xFFFFF,
            dpl: 1,
            readable: true,
            conforming: false,
            present: true,
        });
        assert_eq!(Descriptor::unpack(d.pack()), Some(d));
    }

    #[test]
    fn pack_unpack_data_segment() {
        let d = Descriptor::Data(DataSeg {
            base: 0x1234_5000,
            limit: 0x7FFF,
            dpl: 3,
            writable: true,
            expand_down: false,
            present: true,
        });
        assert_eq!(Descriptor::unpack(d.pack()), Some(d));
    }

    #[test]
    fn pack_unpack_call_gate() {
        let d = Descriptor::Gate(CallGate {
            selector: Selector(0x10),
            offset: 0xDEAD_BEEF,
            dpl: 3,
            param_count: 4,
            present: true,
        });
        assert_eq!(Descriptor::unpack(d.pack()), Some(d));
    }

    #[test]
    fn large_limits_become_page_granular() {
        let d = Descriptor::flat_code(0);
        // 4 GB limit survives the G-bit conversion exactly.
        assert_eq!(Descriptor::unpack(d.pack()), Some(d));

        // A large non-page-multiple limit loses its low 12 bits.
        let d = Descriptor::Code(CodeSeg {
            base: 0,
            limit: 0x0012_3456,
            dpl: 0,
            readable: true,
            conforming: false,
            present: true,
        });
        match Descriptor::unpack(d.pack()) {
            Some(Descriptor::Code(c)) => assert_eq!(c.limit, 0x0012_3FFF),
            other => panic!("bad unpack: {other:?}"),
        }
    }

    #[test]
    fn null_packs_to_zero() {
        assert_eq!(Descriptor::Null.pack(), 0);
        assert_eq!(Descriptor::unpack(0), Some(Descriptor::Null));
    }

    #[test]
    fn table_resolution() {
        let mut gdt = DescriptorTable::new();
        let code = Descriptor::flat_code(0);
        let idx = gdt.push(code);
        let sel = Selector::new(idx, false, 0);
        assert_eq!(resolve(&gdt, None, sel).unwrap(), code);

        // Null selector faults.
        assert!(resolve(&gdt, None, Selector(0)).is_err());
        // Out of range faults.
        assert!(resolve(&gdt, None, Selector::new(9, false, 0)).is_err());
        // LDT reference without an LDT faults.
        assert!(resolve(&gdt, None, Selector::new(1, true, 0)).is_err());
    }

    #[test]
    fn ldt_resolution() {
        let gdt = DescriptorTable::new();
        let mut ldt = DescriptorTable::new();
        let data = Descriptor::flat_data(3);
        let idx = ldt.push(data);
        let sel = Selector::new(idx, true, 3);
        assert_eq!(resolve(&gdt, Some(&ldt), sel).unwrap(), data);
    }
}
