//! `x86sim` — a cycle-accounted simulator of the Intel x86 protection
//! architecture, built for the reproduction of *"Integrating segmentation
//! and paging protection for safe, efficient and transparent software
//! extensions"* (Palladium, SOSP '99).
//!
//! The simulator models the pieces of Figure 1 of the paper:
//!
//! * variable-length segments with base/limit and 4 privilege rings
//!   ([`desc`], [`machine`]),
//! * two-level page tables with Present / R/W / U.S. bits and a TLB
//!   ([`paging`]),
//! * call gates, interrupt gates and TSS stack switching ([`machine`],
//!   the `xfer` module),
//! * #GP/#PF exceptions with real error codes ([`fault`]), and
//! * a Pentium-derived cycle cost model at 200 MHz ([`cycles`]).
//!
//! Every simulated memory access runs the full pipeline: segment cache →
//! limit check → rights check → linear address → TLB/page walk → page
//! rights check. This is what makes the paper's safety claims *testable*:
//! the property tests in the workspace hand adversarial code to the
//! simulator and assert containment.
//!
//! The hosting kernel (`minikernel`) plays ring 0 natively: interrupt
//! vectors are host hooks that suspend the guest, and the kernel
//! manipulates machine state directly, charging modelled costs.

pub mod cycles;
pub mod desc;
mod exec;
pub mod fault;
pub mod image;
pub mod machine;
pub mod mem;
pub mod paging;
pub mod predecode;
pub mod proof;
pub mod trace;
mod xfer;

#[cfg(test)]
mod tests;

pub use cycles::{cycles_to_us, us_to_cycles, Event, CLOCK_HZ};
pub use desc::{CallGate, CodeSeg, DataSeg, Descriptor, DescriptorTable, Selector};
pub use fault::{Fault, FaultCause, Vector};
pub use image::RestoreError;
pub use machine::{Cpu, Exit, Flags, IdtGate, Machine, SegCache, Snapshot, Tss};
pub use mem::{FrameAlloc, PhysMem, PAGE_SIZE};
pub use paging::{pte, Access, Mmu};
pub use predecode::PredecodeStats;
pub use proof::{ProofDs, ProofInstallError, ProofStats};
pub use trace::{Trace, TraceRecord};
