//! Two-level page tables, the TLB, and page-level protection.
//!
//! Page tables live in *simulated physical memory*, in the genuine x86
//! two-level format: CR3 points at a page directory of 1024 PDEs, each
//! pointing at a page table of 1024 PTEs. Each access checks the Present,
//! Read/Write and User/Supervisor bits; the U/S bit is the paper's "page
//! privilege level" (PPL): `US=1` is PPL 1 (user-accessible), `US=0` is
//! PPL 0 (supervisor only).
//!
//! Supervisor code (CPL 0-2) may read and write any present page
//! regardless of `R/W`/`U/S`, matching the paper's statement that
//! "programs executing at SPL 0 to 2 can access all pages" (CR0.WP = 0
//! semantics, as on the i386 and on Linux 2.0's Pentium configuration).

use std::collections::HashMap;

use crate::fault::{pf_err, Fault, FaultBuilder};
use crate::image::{Dec, Enc, RestoreError};
use crate::mem::{FrameAlloc, PhysMem, U32HashBuilder, PAGE_MASK};

/// PTE/PDE flag bits.
pub mod pte {
    /// Present.
    pub const P: u32 = 1 << 0;
    /// Writable (by user-mode code; supervisor ignores with WP=0).
    pub const RW: u32 = 1 << 1;
    /// User/Supervisor — the paper's PPL bit (set = PPL 1).
    pub const US: u32 = 1 << 2;
    /// Accessed (set by the walker).
    pub const A: u32 = 1 << 5;
    /// Dirty (set by the walker on write; PTE only).
    pub const D: u32 = 1 << 6;

    /// Low bit of the 4-bit protection key. Bits 8-11 of a PTE are
    /// ignored by the i386 walker, so the key rides in the page tables
    /// without disturbing the frame or flag bits (an MPK/POE-style
    /// retrofit; real MPK stores its key in PTE bits 59-62).
    pub const KEY_SHIFT: u32 = 8;
    /// Mask of the protection-key bits.
    pub const KEY_MASK: u32 = 0xF << KEY_SHIFT;

    /// Mask of the frame address bits.
    pub const FRAME: u32 = 0xFFFF_F000;

    /// PTE flag bits encoding protection key `k` (0-15).
    #[inline]
    pub fn key_flags(k: u8) -> u32 {
        (u32::from(k) & 0xF) << KEY_SHIFT
    }

    /// The protection key stored in a PTE.
    #[inline]
    pub fn key_of(pte_val: u32) -> u8 {
        ((pte_val & KEY_MASK) >> KEY_SHIFT) as u8
    }
}

/// Helpers over the PKRU-style per-thread key-rights register.
///
/// Two bits per key, exactly as in Intel's PKRU layout: bit `2k` is
/// *access disable* (AD — no read or write), bit `2k+1` is *write
/// disable* (WD). Key 0 occupies bits 0-1, so a PKRU of zero grants
/// every key full rights — which is why worlds that never touch keys
/// behave identically to the pre-key simulator.
pub mod pkru {
    /// True if `pkru` denies all access to pages tagged `key`.
    #[inline]
    pub fn access_disabled(pkru: u32, key: u8) -> bool {
        pkru >> (2 * u32::from(key & 0xF)) & 1 != 0
    }

    /// True if `pkru` denies writes to pages tagged `key`.
    #[inline]
    pub fn write_disabled(pkru: u32, key: u8) -> bool {
        pkru >> (2 * u32::from(key & 0xF) + 1) & 1 != 0
    }

    /// A PKRU value with *access disable* set for every key in `keys`
    /// and full rights everywhere else.
    pub fn deny_access(keys: &[u8]) -> u32 {
        keys.iter()
            .fold(0, |acc, &k| acc | 1 << (2 * u32::from(k & 0xF)))
    }

    /// A PKRU value with *write disable* set for every key in `keys`
    /// and full rights everywhere else.
    pub fn deny_write(keys: &[u8]) -> u32 {
        keys.iter()
            .fold(0, |acc, &k| acc | 1 << (2 * u32::from(k & 0xF) + 1))
    }
}

/// The kind of memory access being translated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// Data read (or instruction fetch: x86-32 has no execute bit).
    Read,
    /// Data write.
    Write,
}

/// One cached translation.
#[derive(Debug, Clone, Copy)]
struct TlbEntry {
    frame: u32,
    /// Combined user bit (PDE & PTE).
    user: bool,
    /// Combined writable bit (PDE & PTE).
    writable: bool,
    /// Dirty already set in the PTE.
    dirty: bool,
    /// Physical address of the PTE (to set D lazily).
    pte_addr: u32,
    /// The page's 4-bit protection key (PTE bits 8-11). Cached like the
    /// permission bits; rights are judged live against the accessor's
    /// PKRU, so a PKRU write needs no TLB shootdown — as on real MPK.
    key: u8,
}

/// Translation statistics, used by the cycle model and tests.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TlbStats {
    /// Lookups that hit the TLB.
    pub hits: u64,
    /// Lookups that required a page walk.
    pub misses: u64,
    /// Explicit flushes (CR3 loads and kernel shootdowns).
    pub flushes: u64,
}

/// The MMU: paging enable, CR3, and the TLB.
///
/// `Clone` carries the live TLB and epoch into a forked world: entries
/// are translations of the same guest page tables, and the epoch keeps
/// carried-over translation memos valid, so a fork resumes with exactly
/// the hit/miss behaviour the template would have had.
#[derive(Debug, Default, Clone)]
pub struct Mmu {
    /// Physical base of the page directory.
    pub cr3: u32,
    /// Paging enable (CR0.PG).
    pub enabled: bool,
    tlb: HashMap<u32, TlbEntry, U32HashBuilder>,
    /// Advances on every invalidation (full flush or single-page flush) —
    /// the only operations that remove or change a live TLB entry. A
    /// caller holding a memoized translation (the machine's fetch-page
    /// memo) revalidates against this instead of re-probing the TLB.
    epoch: u64,
    /// Statistics counters.
    pub stats: TlbStats,
}

/// Result of a translation: physical address plus whether the TLB missed
/// (the cycle model charges a page-walk penalty on misses).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Translation {
    /// The physical address.
    pub phys: u32,
    /// True if a page walk was required.
    pub tlb_miss: bool,
}

impl Mmu {
    /// Creates an MMU with paging disabled.
    pub fn new() -> Mmu {
        Mmu::default()
    }

    /// Loads CR3, flushing the TLB as the hardware does on task switch.
    pub fn set_cr3(&mut self, cr3: u32) {
        self.cr3 = cr3 & pte::FRAME;
        self.flush();
    }

    /// Flushes the entire TLB.
    pub fn flush(&mut self) {
        self.tlb.clear();
        self.epoch += 1;
        self.stats.flushes += 1;
    }

    /// Flushes one page's translation (like `invlpg`).
    pub fn flush_page(&mut self, linear: u32) {
        self.tlb.remove(&(linear >> 12));
        self.epoch += 1;
    }

    /// Invalidation epoch: changes whenever any cached translation may
    /// have been dropped. See the field doc.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Records a lookup answered by a caller's translation memo. A memo
    /// hit stands in for a guaranteed TLB hit, so it is counted as one —
    /// keeping [`Mmu::stats`] identical to a memo-less run.
    #[inline]
    pub fn count_memo_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Number of live TLB entries.
    pub fn tlb_entries(&self) -> usize {
        self.tlb.len()
    }

    /// Serializes the MMU into a checkpoint payload.
    ///
    /// The TLB *is* architectural here: its contents decide future
    /// hit/miss counts, page-walk cycle charges and lazy dirty-bit
    /// updates, so a restored world must resume with the exact entries
    /// (sorted by VPN — `HashMap` iteration order is host-dependent).
    /// The epoch rides along so carried-over semantics around flush
    /// counting stay monotonic.
    pub(crate) fn save_into(&self, e: &mut Enc) {
        e.u32(self.cr3);
        e.bool(self.enabled);
        e.u64(self.epoch);
        e.u64(self.stats.hits);
        e.u64(self.stats.misses);
        e.u64(self.stats.flushes);
        let mut vpns: Vec<u32> = self.tlb.keys().copied().collect();
        vpns.sort_unstable();
        e.u32(vpns.len() as u32);
        for vpn in vpns {
            let t = &self.tlb[&vpn];
            e.u32(vpn);
            e.u32(t.frame);
            e.bool(t.user);
            e.bool(t.writable);
            e.bool(t.dirty);
            e.u32(t.pte_addr);
            e.u8(t.key);
        }
    }

    /// Rebuilds an MMU from a payload written by [`Mmu::save_into`].
    pub(crate) fn restore_from(d: &mut Dec<'_>) -> Result<Mmu, RestoreError> {
        let cr3 = d.u32()?;
        let enabled = d.bool()?;
        let epoch = d.u64()?;
        let stats = TlbStats {
            hits: d.u64()?,
            misses: d.u64()?,
            flushes: d.u64()?,
        };
        let n = d.u32()?;
        let mut tlb: HashMap<u32, TlbEntry, U32HashBuilder> = HashMap::default();
        let mut last: Option<u32> = None;
        for _ in 0..n {
            let vpn = d.u32()?;
            if last.is_some_and(|l| vpn <= l) {
                return Err(d.fail(format!("TLB entries not sorted (vpn {vpn:#x})")));
            }
            last = Some(vpn);
            let entry = TlbEntry {
                frame: d.u32()?,
                user: d.bool()?,
                writable: d.bool()?,
                dirty: d.bool()?,
                pte_addr: d.u32()?,
                key: d.u8()?,
            };
            tlb.insert(vpn, entry);
        }
        Ok(Mmu {
            cr3,
            enabled,
            tlb,
            epoch,
            stats,
        })
    }

    /// Virtual page numbers currently cached, sorted (fault-injection
    /// hook: campaigns pick a victim entry deterministically, so the
    /// iteration order must not depend on the host hash seed).
    pub fn tlb_vpns(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.tlb.keys().copied().collect();
        v.sort_unstable();
        v
    }

    /// Translates a linear address, enforcing page-level protection with
    /// full key rights (PKRU 0) — the pre-key behaviour. See
    /// [`Mmu::translate_keyed`].
    #[inline]
    pub fn translate(
        &mut self,
        mem: &mut PhysMem,
        linear: u32,
        access: Access,
        user: bool,
    ) -> Result<Translation, FaultBuilder> {
        self.translate_keyed(mem, linear, access, user, 0)
    }

    /// Translates a linear address, enforcing page-level protection and
    /// the protection-key rights in `pkru`.
    ///
    /// `user` is true when the access originates at CPL 3; supervisor
    /// accesses (CPL 0-2) bypass `R/W`, `U/S` and key checks per
    /// CR0.WP = 0. A PKRU of zero grants every key, so callers that never
    /// program keys get exactly the historical behaviour, fault for
    /// fault and stat for stat.
    ///
    /// This is split into an inlined fast path for the common cases —
    /// paging off, or a TLB hit that needs no dirty-bit update — and an
    /// outlined `Mmu::translate_slow` for the rest. The split is a host
    /// optimisation only: the order of stats updates, permission checks
    /// and PTE side effects is exactly that of the straight-line version.
    #[inline]
    pub fn translate_keyed(
        &mut self,
        mem: &mut PhysMem,
        linear: u32,
        access: Access,
        user: bool,
        pkru: u32,
    ) -> Result<Translation, FaultBuilder> {
        if !self.enabled {
            return Ok(Translation {
                phys: linear,
                tlb_miss: false,
            });
        }
        let vpn = linear >> 12;
        let is_write = access == Access::Write;

        if let Some(entry) = self.tlb.get(&vpn) {
            if !is_write || entry.dirty {
                let entry = *entry;
                self.stats.hits += 1;
                self.check_perms(&entry, linear, is_write, user, pkru)?;
                return Ok(Translation {
                    phys: entry.frame | (linear & PAGE_MASK),
                    tlb_miss: false,
                });
            }
        }
        self.translate_slow(mem, linear, is_write, user, pkru)
    }

    /// TLB hit needing a dirty-bit update, or a full page walk.
    fn translate_slow(
        &mut self,
        mem: &mut PhysMem,
        linear: u32,
        is_write: bool,
        user: bool,
        pkru: u32,
    ) -> Result<Translation, FaultBuilder> {
        let vpn = linear >> 12;
        if let Some(entry) = self.tlb.get(&vpn).copied() {
            self.stats.hits += 1;
            self.check_perms(&entry, linear, is_write, user, pkru)?;
            if is_write && !entry.dirty {
                let pte_val = mem.read_u32(entry.pte_addr);
                mem.write_u32(entry.pte_addr, pte_val | pte::D);
                if let Some(e) = self.tlb.get_mut(&vpn) {
                    e.dirty = true;
                }
            }
            return Ok(Translation {
                phys: entry.frame | (linear & PAGE_MASK),
                tlb_miss: false,
            });
        }

        self.stats.misses += 1;
        let entry = self.walk(mem, linear, is_write, user)?;
        self.check_perms(&entry, linear, is_write, user, pkru)?;
        self.tlb.insert(vpn, entry);
        Ok(Translation {
            phys: entry.frame | (linear & PAGE_MASK),
            tlb_miss: true,
        })
    }

    #[inline]
    fn check_perms(
        &self,
        entry: &TlbEntry,
        linear: u32,
        is_write: bool,
        user: bool,
        pkru: u32,
    ) -> Result<(), FaultBuilder> {
        if !user {
            return Ok(());
        }
        let mut code = pf_err::PRESENT | pf_err::USER;
        if is_write {
            code |= pf_err::WRITE;
        }
        if !entry.user {
            return Err(Fault::pf(linear, code));
        }
        if is_write && !entry.writable {
            return Err(Fault::pf(linear, code));
        }
        // Key rights, checked after the classic bits as on real MPK
        // (keys restrict user pages only; the error code gains bit 5).
        if pkru != 0
            && (pkru::access_disabled(pkru, entry.key)
                || (is_write && pkru::write_disabled(pkru, entry.key)))
        {
            return Err(Fault::pf(linear, code | pf_err::PKEY));
        }
        Ok(())
    }

    fn walk(
        &self,
        mem: &mut PhysMem,
        linear: u32,
        is_write: bool,
        user: bool,
    ) -> Result<TlbEntry, FaultBuilder> {
        let mut code = 0;
        if is_write {
            code |= pf_err::WRITE;
        }
        if user {
            code |= pf_err::USER;
        }

        let pde_addr = self.cr3 + (linear >> 22) * 4;
        let pde = mem.read_u32(pde_addr);
        if pde & pte::P == 0 {
            return Err(Fault::pf(linear, code));
        }
        let pt_base = pde & pte::FRAME;
        let pte_addr = pt_base + ((linear >> 12) & 0x3FF) * 4;
        let pte_val = mem.read_u32(pte_addr);
        if pte_val & pte::P == 0 {
            return Err(Fault::pf(linear, code));
        }

        // Set accessed bits; dirty on write.
        mem.write_u32(pde_addr, pde | pte::A);
        let mut new_pte = pte_val | pte::A;
        if is_write {
            new_pte |= pte::D;
        }
        if new_pte != pte_val {
            mem.write_u32(pte_addr, new_pte);
        }

        Ok(TlbEntry {
            frame: pte_val & pte::FRAME,
            user: (pde & pte::US != 0) && (pte_val & pte::US != 0),
            writable: (pde & pte::RW != 0) && (pte_val & pte::RW != 0),
            dirty: new_pte & pte::D != 0,
            pte_addr,
            key: pte::key_of(pte_val),
        })
    }
}

/// Maps `linear -> phys` in the page tables rooted at `cr3`, creating the
/// page table for the region on demand from `fa`.
///
/// Page directories are created fully permissive (`P|RW|US`) so that the
/// per-page PTE flags — where Palladium's PPL lives — are what govern.
/// Returns `false` if a page-table frame could not be allocated.
pub fn map_page(
    mem: &mut PhysMem,
    fa: &mut FrameAlloc,
    cr3: u32,
    linear: u32,
    phys: u32,
    flags: u32,
) -> bool {
    let pde_addr = cr3 + (linear >> 22) * 4;
    let pde = mem.read_u32(pde_addr);
    let pt_base = if pde & pte::P == 0 {
        let Some(frame) = fa.alloc() else {
            return false;
        };
        mem.zero(frame, crate::mem::PAGE_SIZE);
        mem.write_u32(pde_addr, frame | pte::P | pte::RW | pte::US);
        frame
    } else {
        pde & pte::FRAME
    };
    let pte_addr = pt_base + ((linear >> 12) & 0x3FF) * 4;
    mem.write_u32(
        pte_addr,
        (phys & pte::FRAME) | (flags & !pte::FRAME) | pte::P,
    );
    true
}

/// Reads the PTE mapping `linear`, if present.
pub fn get_pte(mem: &PhysMem, cr3: u32, linear: u32) -> Option<u32> {
    let pde = mem.read_u32(cr3 + (linear >> 22) * 4);
    if pde & pte::P == 0 {
        return None;
    }
    let pte_val = mem.read_u32((pde & pte::FRAME) + ((linear >> 12) & 0x3FF) * 4);
    if pte_val & pte::P == 0 {
        None
    } else {
        Some(pte_val)
    }
}

/// Rewrites the flag bits of the PTE mapping `linear`.
///
/// Returns `false` if the page is unmapped. Callers must flush the TLB (or
/// the page) afterwards — exactly the shootdown real kernels perform.
pub fn update_pte_flags(mem: &mut PhysMem, cr3: u32, linear: u32, set: u32, clear: u32) -> bool {
    let pde = mem.read_u32(cr3 + (linear >> 22) * 4);
    if pde & pte::P == 0 {
        return false;
    }
    let pte_addr = (pde & pte::FRAME) + ((linear >> 12) & 0x3FF) * 4;
    let v = mem.read_u32(pte_addr);
    if v & pte::P == 0 {
        return false;
    }
    mem.write_u32(pte_addr, (v | set) & !clear);
    true
}

/// Unmaps `linear` (clears the PTE entirely).
pub fn unmap_page(mem: &mut PhysMem, cr3: u32, linear: u32) -> bool {
    let pde = mem.read_u32(cr3 + (linear >> 22) * 4);
    if pde & pte::P == 0 {
        return false;
    }
    let pte_addr = (pde & pte::FRAME) + ((linear >> 12) & 0x3FF) * 4;
    if mem.read_u32(pte_addr) & pte::P == 0 {
        return false;
    }
    mem.write_u32(pte_addr, 0);
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::FaultCause;

    fn setup() -> (PhysMem, FrameAlloc, Mmu) {
        let mem = PhysMem::new();
        let mut fa = FrameAlloc::new(0x10_0000, 0x40_0000);
        let mut mmu = Mmu::new();
        let cr3 = fa.alloc().unwrap();
        mmu.set_cr3(cr3);
        mmu.enabled = true;
        (mem, fa, mmu)
    }

    #[test]
    fn identity_when_paging_disabled() {
        let mut mem = PhysMem::new();
        let mut mmu = Mmu::new();
        let t = mmu
            .translate(&mut mem, 0x1234, Access::Write, true)
            .unwrap();
        assert_eq!(t.phys, 0x1234);
    }

    #[test]
    fn map_translate_roundtrip() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x0804_8000,
            frame,
            pte::RW | pte::US
        ));

        let t = mmu
            .translate(&mut mem, 0x0804_8123, Access::Read, true)
            .unwrap();
        assert_eq!(t.phys, frame | 0x123);
        assert!(t.tlb_miss);

        // Second access hits the TLB.
        let t2 = mmu
            .translate(&mut mem, 0x0804_8456, Access::Read, true)
            .unwrap();
        assert_eq!(t2.phys, frame | 0x456);
        assert!(!t2.tlb_miss);
        assert_eq!(mmu.stats.hits, 1);
        assert_eq!(mmu.stats.misses, 1);
    }

    #[test]
    fn unmapped_page_faults_not_present() {
        let (mut mem, _fa, mut mmu) = setup();
        let err = mmu
            .translate(&mut mem, 0xDEAD_0000, Access::Read, true)
            .unwrap_err();
        match err.cause {
            FaultCause::Page { code, .. } => {
                assert_eq!(code & pf_err::PRESENT, 0, "not-present fault");
                assert_ne!(code & pf_err::USER, 0);
            }
            other => panic!("wrong cause {other:?}"),
        }
    }

    #[test]
    fn supervisor_page_blocks_user_but_not_supervisor() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        // PPL 0 page: US clear.
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0xC000_0000,
            frame,
            pte::RW
        ));

        // User (CPL 3) access faults with a *protection* error code.
        let err = mmu
            .translate(&mut mem, 0xC000_0000, Access::Read, true)
            .unwrap_err();
        match err.cause {
            FaultCause::Page { code, .. } => {
                assert_ne!(code & pf_err::PRESENT, 0, "protection fault");
            }
            other => panic!("wrong cause {other:?}"),
        }

        // Supervisor access succeeds.
        assert!(mmu
            .translate(&mut mem, 0xC000_0000, Access::Write, false)
            .is_ok());
    }

    #[test]
    fn read_only_page_blocks_user_write_only() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x4000_0000,
            frame,
            pte::US
        ));

        assert!(mmu
            .translate(&mut mem, 0x4000_0000, Access::Read, true)
            .is_ok());
        let err = mmu
            .translate(&mut mem, 0x4000_0000, Access::Write, true)
            .unwrap_err();
        match err.cause {
            FaultCause::Page { code, .. } => {
                assert_ne!(code & pf_err::WRITE, 0);
            }
            other => panic!("wrong cause {other:?}"),
        }
        // Supervisor write is allowed (WP = 0).
        assert!(mmu
            .translate(&mut mem, 0x4000_0000, Access::Write, false)
            .is_ok());
    }

    #[test]
    fn accessed_and_dirty_bits_are_maintained() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x5000_0000,
            frame,
            pte::RW | pte::US
        ));

        mmu.translate(&mut mem, 0x5000_0000, Access::Read, true)
            .unwrap();
        let v = get_pte(&mem, mmu.cr3, 0x5000_0000).unwrap();
        assert_ne!(v & pte::A, 0);
        assert_eq!(v & pte::D, 0);

        // Write through the TLB-cached entry still sets Dirty.
        mmu.translate(&mut mem, 0x5000_0004, Access::Write, true)
            .unwrap();
        let v = get_pte(&mem, mmu.cr3, 0x5000_0000).unwrap();
        assert_ne!(v & pte::D, 0);
    }

    #[test]
    fn flag_update_plus_flush_changes_protection() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x0700_0000,
            frame,
            pte::RW | pte::US
        ));
        mmu.translate(&mut mem, 0x0700_0000, Access::Read, true)
            .unwrap();

        // Revoke the user bit (PPL 1 -> PPL 0) — this is init_PL's core op.
        assert!(update_pte_flags(&mut mem, mmu.cr3, 0x0700_0000, 0, pte::US));

        // Stale TLB entry still allows access until the shootdown...
        assert!(mmu
            .translate(&mut mem, 0x0700_0000, Access::Read, true)
            .is_ok());
        // ...and the flush makes the new PPL take effect.
        mmu.flush();
        assert!(mmu
            .translate(&mut mem, 0x0700_0000, Access::Read, true)
            .is_err());
    }

    #[test]
    fn unmap_then_access_faults() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x0600_0000,
            frame,
            pte::RW | pte::US
        ));
        assert!(unmap_page(&mut mem, mmu.cr3, 0x0600_0000));
        mmu.flush();
        assert!(mmu
            .translate(&mut mem, 0x0600_0000, Access::Read, true)
            .is_err());
        assert!(!unmap_page(&mut mem, mmu.cr3, 0x0600_0000));
    }

    #[test]
    fn set_cr3_flushes_tlb() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x0804_8000,
            frame,
            pte::US
        ));
        mmu.translate(&mut mem, 0x0804_8000, Access::Read, true)
            .unwrap();
        assert_eq!(mmu.tlb_entries(), 1);
        let cr3 = mmu.cr3;
        mmu.set_cr3(cr3);
        assert_eq!(mmu.tlb_entries(), 0);
    }

    #[test]
    fn protection_key_rides_the_pte_and_pkru_denies_access() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x0900_0000,
            frame,
            pte::RW | pte::US | pte::key_flags(5)
        ));
        assert_eq!(pte::key_of(get_pte(&mem, mmu.cr3, 0x0900_0000).unwrap()), 5);

        // Full rights (pkru 0): access as before.
        assert!(mmu
            .translate(&mut mem, 0x0900_0000, Access::Write, true)
            .is_ok());

        // Access-disable key 5: both reads and writes fault with the
        // PKEY bit set, no TLB shootdown needed.
        let deny = pkru::deny_access(&[5]);
        for access in [Access::Read, Access::Write] {
            let err = mmu
                .translate_keyed(&mut mem, 0x0900_0000, access, true, deny)
                .unwrap_err();
            match err.cause {
                FaultCause::Page { code, .. } => {
                    assert_ne!(code & pf_err::PKEY, 0);
                    assert_ne!(code & pf_err::PRESENT, 0);
                }
                other => panic!("wrong cause {other:?}"),
            }
            assert_eq!(err.at(0, 0, 3).cause.tag(), "page-key");
        }

        // Write-disable: reads pass, writes fault.
        let wd = pkru::deny_write(&[5]);
        assert!(mmu
            .translate_keyed(&mut mem, 0x0900_0000, Access::Read, true, wd)
            .is_ok());
        assert!(mmu
            .translate_keyed(&mut mem, 0x0900_0000, Access::Write, true, wd)
            .is_err());

        // A different key is unaffected.
        let other = pkru::deny_access(&[3]);
        assert!(mmu
            .translate_keyed(&mut mem, 0x0900_0000, Access::Write, true, other)
            .is_ok());

        // Supervisor accesses bypass key checks entirely (CR0.WP = 0).
        assert!(mmu
            .translate_keyed(&mut mem, 0x0900_0000, Access::Write, false, deny)
            .is_ok());
    }

    #[test]
    fn key_survives_tlb_serialization() {
        let (mut mem, mut fa, mut mmu) = setup();
        let frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            mmu.cr3,
            0x0A00_0000,
            frame,
            pte::RW | pte::US | pte::key_flags(9)
        ));
        mmu.translate(&mut mem, 0x0A00_0000, Access::Read, true)
            .unwrap();

        let mut e = Enc::new();
        mmu.save_into(&mut e);
        let bytes = e.into_vec();
        let mut d = Dec::new(&bytes, "mmu");
        let mut back = Mmu::restore_from(&mut d).unwrap();
        assert_eq!(back.stats, mmu.stats);

        // The restored TLB entry still carries key 9: the cached
        // translation denies under a PKRU that revokes that key (a TLB
        // hit — rights are judged live, the key rides the entry).
        let deny = pkru::deny_access(&[9]);
        assert!(back
            .translate_keyed(&mut mem, 0x0A00_0000, Access::Read, true, deny)
            .is_err());
        assert_eq!(back.stats.misses, mmu.stats.misses);
        assert_eq!(back.stats.hits, mmu.stats.hits + 1);
    }

    #[test]
    fn pkru_helper_bit_layout_matches_intel() {
        // AD for key k is bit 2k, WD is bit 2k+1.
        assert_eq!(pkru::deny_access(&[0]), 0b01);
        assert_eq!(pkru::deny_write(&[0]), 0b10);
        assert_eq!(pkru::deny_access(&[1]), 0b0100);
        assert_eq!(pkru::deny_write(&[15]), 1 << 31);
        assert!(pkru::access_disabled(pkru::deny_access(&[7]), 7));
        assert!(!pkru::access_disabled(pkru::deny_access(&[7]), 6));
        assert!(pkru::write_disabled(pkru::deny_write(&[2, 4]), 4));
    }

    #[test]
    fn distinct_address_spaces_translate_independently() {
        let (mut mem, mut fa, mut mmu) = setup();
        let cr3_a = mmu.cr3;
        let cr3_b = fa.alloc().unwrap();
        let fa_frame = fa.alloc().unwrap();
        let fb_frame = fa.alloc().unwrap();
        assert!(map_page(
            &mut mem,
            &mut fa,
            cr3_a,
            0x0804_8000,
            fa_frame,
            pte::US
        ));
        assert!(map_page(
            &mut mem,
            &mut fa,
            cr3_b,
            0x0804_8000,
            fb_frame,
            pte::US
        ));

        let ta = mmu
            .translate(&mut mem, 0x0804_8000, Access::Read, true)
            .unwrap();
        assert_eq!(ta.phys, fa_frame);
        mmu.set_cr3(cr3_b);
        let tb = mmu
            .translate(&mut mem, 0x0804_8000, Access::Read, true)
            .unwrap();
        assert_eq!(tb.phys, fb_frame);
    }
}
