//! Execution tracing: a bounded ring buffer of retired instructions.
//!
//! Off by default (zero overhead beyond a branch); enabled by debuggers
//! and by the Palladium `segdb` tooling (§6 asks for "segmentation-aware
//! debuggers" — the trace records the CS selector and CPL alongside each
//! instruction, so a trace shows *which protection domain* executed what).

use asm86::isa::Insn;

/// One retired instruction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// CS selector at execution time.
    pub cs: u16,
    /// CPL at execution time.
    pub cpl: u8,
    /// EIP of the instruction.
    pub eip: u32,
    /// The instruction.
    pub insn: Insn,
    /// Machine cycle counter *after* the instruction retired.
    pub cycles: u64,
}

/// A bounded execution trace.
#[derive(Debug, Default, Clone)]
pub struct Trace {
    records: Vec<TraceRecord>,
    capacity: usize,
    head: usize,
    total: u64,
}

impl Trace {
    /// Creates a trace retaining the most recent `capacity` records.
    pub fn new(capacity: usize) -> Trace {
        Trace {
            records: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            total: 0,
        }
    }

    /// Appends a record, evicting the oldest when full.
    #[inline]
    pub fn push(&mut self, r: TraceRecord) {
        self.total += 1;
        if self.capacity == 0 {
            return;
        }
        if self.records.len() < self.capacity {
            self.records.push(r);
        } else {
            self.records[self.head] = r;
            self.head = (self.head + 1) % self.capacity;
        }
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> Vec<TraceRecord> {
        let mut out = Vec::with_capacity(self.records.len());
        out.extend_from_slice(&self.records[self.head..]);
        out.extend_from_slice(&self.records[..self.head]);
        out
    }

    /// Total instructions observed (including evicted ones).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use asm86::isa::{Reg, Src};

    fn rec(eip: u32) -> TraceRecord {
        TraceRecord {
            cs: 0x1B,
            cpl: 3,
            eip,
            insn: Insn::Mov(Reg::Eax, Src::Imm(0)),
            cycles: eip as u64,
        }
    }

    #[test]
    fn retains_most_recent_in_order() {
        let mut t = Trace::new(3);
        for i in 0..5 {
            t.push(rec(i));
        }
        let eips: Vec<u32> = t.records().iter().map(|r| r.eip).collect();
        assert_eq!(eips, vec![2, 3, 4]);
        assert_eq!(t.total(), 5);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn zero_capacity_counts_but_keeps_nothing() {
        let mut t = Trace::new(0);
        t.push(rec(1));
        assert!(t.is_empty());
        assert_eq!(t.total(), 1);
    }

    #[test]
    fn partial_fill_preserves_order() {
        let mut t = Trace::new(8);
        t.push(rec(10));
        t.push(rec(11));
        let eips: Vec<u32> = t.records().iter().map(|r| r.eip).collect();
        assert_eq!(eips, vec![10, 11]);
    }
}
