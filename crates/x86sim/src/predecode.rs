//! Predecoded-instruction cache: a host-side fast path for the fetch
//! stage.
//!
//! Decoding is the most expensive host work in the step loop, and the
//! instruction stream is overwhelmingly stable, so the machine caches
//! `(Insn, len)` keyed by **physical** address. Three invariants keep the
//! cache invisible to the simulated program (DESIGN.md §5):
//!
//! 1. **Physical-keyed.** The key is the physical address of the first
//!    instruction byte, produced by the ordinary segmented+paged fetch
//!    translation on every step. Remapping a linear page therefore needs
//!    no explicit invalidation — the translation simply yields a
//!    different key — and TLB flushes do not touch the cache.
//! 2. **Generation-invalidated.** Every entry records the *code*
//!    generation ([`crate::mem::PhysMem::slot_code_generation`]) of each
//!    frame it decoded bytes from (two frames when the instruction
//!    straddles a page boundary), and marks the exact bytes the decoder
//!    consumed ([`crate::mem::PhysMem::mark_code`]). Any mutation of
//!    those bytes — guest store, `host_write`, loader, fault injection —
//!    bumps the code generation and thereby invalidates stale entries
//!    lazily, so self-modifying code is observed by the very next fetch.
//!    The trigger is byte-exact: stacks, save slots and patch targets
//!    that merely share a page with code never invalidate anything.
//! 3. **Cycle-neutral.** A hit returns exactly what the decoder would
//!    have produced from the current bytes; translation (and its
//!    `Event::TlbMiss` charges, A-bit side effects and faults) still
//!    happens on every fetch. No simulated cycle count, fault, or
//!    architectural side effect depends on hit or miss.
//!
//! The cache is a direct-mapped array (no hashing, no allocation after
//! construction): the fetch fast path is one slot index, a tag compare
//! and a generation compare — the generation lives in the frame slab
//! ([`PhysMem::slot_code_generation`]), an array read away. Conflicting
//! instruction addresses simply evict each other; eviction order is a
//! pure function of the addresses executed, so runs stay deterministic.

use crate::mem::{PhysMem, PAGE_MASK, PAGE_SIZE};
use asm86::isa::Insn;

/// Host-side hit/miss counters for the predecode cache.
///
/// Purely observational: they exist so benchmarks and tests can see the
/// cache working, and are deliberately *not* part of the simulated
/// machine state.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PredecodeStats {
    /// Fetches served from the cache.
    pub hits: u64,
    /// Fetches that had to run the decoder (including invalidations).
    pub misses: u64,
}

/// Number of direct-mapped slots (8192 ≈ 8 pages of dense code before
/// conflict evictions start; an eviction only costs a re-decode).
const SLOTS: usize = 1 << 13;

/// One cached decode: the instruction, its encoded length, its base
/// cycle cost, and the slab slots + store generations of the frame(s)
/// the bytes came from. Line-aligned so a hit touches one cache line.
#[derive(Debug, Clone, Copy)]
#[repr(align(64))]
struct Entry {
    /// Physical address of the first instruction byte; the slot tag.
    tag: u32,
    /// Encoded length; 0 marks an empty slot.
    len: u8,
    crosses: bool,
    /// [`crate::cycles::measured_cost`] of `insn`, memoized so a hit
    /// skips re-deriving it (it is a pure function of the instruction).
    cost: u16,
    insn: Insn,
    /// Slab slot and generation of the frame holding the first byte.
    lo_slot: u32,
    lo_gen: u64,
    /// For page-straddling instructions: the physical base, slab slot and
    /// generation of the second page.
    hi_base: u32,
    hi_slot: u32,
    hi_gen: u64,
}

impl Entry {
    const EMPTY: Entry = Entry {
        tag: 0,
        len: 0,
        crosses: false,
        cost: 0,
        insn: Insn::Nop,
        lo_slot: 0,
        lo_gen: 0,
        hi_base: 0,
        hi_slot: 0,
        hi_gen: 0,
    };
}

/// The predecoded-instruction cache. Owned by [`crate::Machine`]; see the
/// module docs for the invariants.
///
/// `Clone` carries the cache into a forked world by sharing the slot
/// slab copy-on-write (an `Arc` bump; the 512 KiB slab materializes
/// privately on the fork's first `insert`/`clear`). Entries stay valid
/// in the fork: they are keyed by physical address and slab slot (both
/// preserved by a [`crate::mem::PhysMem`] clone) and revalidated
/// against per-frame code generations, which fork privately with the
/// frame metadata.
#[derive(Debug, Clone)]
pub struct InsnCache {
    slots: std::sync::Arc<[Entry; SLOTS]>,
    live: usize,
    stats: PredecodeStats,
}

impl Default for InsnCache {
    fn default() -> InsnCache {
        InsnCache::new()
    }
}

impl InsnCache {
    /// Creates an empty cache.
    pub fn new() -> InsnCache {
        InsnCache {
            slots: std::sync::Arc::new([Entry::EMPTY; SLOTS]),
            live: 0,
            stats: PredecodeStats::default(),
        }
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> PredecodeStats {
        self.stats
    }

    /// Occupied slots (for tests and diagnostics).
    pub fn len(&self) -> usize {
        self.live
    }

    /// True when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Drops every entry (used when the fast path is toggled off).
    pub fn clear(&mut self) {
        std::sync::Arc::make_mut(&mut self.slots).fill(Entry::EMPTY);
        self.live = 0;
    }

    #[inline]
    fn slot_of(phys: u32) -> usize {
        // Two mixing rounds: a single Fibonacci multiply leaves address
        // pairs at certain deltas (Δ·φ mod 2³² small) systematically
        // colliding, and code segments are laid out at just such strides.
        let mut z = phys.wrapping_mul(0x9E37_79B9);
        z ^= z >> 16;
        z = z.wrapping_mul(0x85EB_CA6B);
        (z >> (32 - 13)) as usize & (SLOTS - 1)
    }

    /// Looks up a decode for the instruction at physical `phys`.
    ///
    /// `window` is the number of prefetch bytes the segment limit permits
    /// this fetch; an entry longer than that cannot be served (the
    /// decoder would have been truncated). `hi_page` is the physical base
    /// of the next page when the permitted window crosses a page
    /// boundary and that page translated successfully — a straddling
    /// entry can only be served when it is present and matches.
    #[inline]
    pub(crate) fn lookup(
        &mut self,
        mem: &PhysMem,
        phys: u32,
        window: usize,
        hi_page: Option<u32>,
    ) -> Option<(Insn, u32, u64)> {
        let e = &self.slots[Self::slot_of(phys)];
        let ok = e.len != 0
            && e.tag == phys
            && (e.len as usize) <= window
            && mem.slot_code_generation(e.lo_slot) == e.lo_gen
            && (!e.crosses
                || (hi_page == Some(e.hi_base) && mem.slot_code_generation(e.hi_slot) == e.hi_gen));
        if ok {
            self.stats.hits += 1;
            Some((e.insn, e.len as u32, e.cost as u64))
        } else {
            self.stats.misses += 1;
            None
        }
    }

    /// Records a successful decode of `insn` (`len` bytes at `phys`).
    ///
    /// Takes `&mut PhysMem` to pin the source frame(s) into the slab
    /// (without bumping generations) and to mark the consumed bytes as
    /// code, so later validations are array reads and only stores that
    /// actually hit those bytes invalidate.
    pub(crate) fn insert(
        &mut self,
        mem: &mut PhysMem,
        phys: u32,
        insn: Insn,
        len: u32,
        hi_page: Option<u32>,
    ) {
        let off = (phys & PAGE_MASK) as usize;
        let crosses = off + len as usize > PAGE_SIZE as usize;
        let n_lo = (len as usize).min(PAGE_SIZE as usize - off);
        let (hi_base, hi_slot, hi_gen) = if crosses {
            // A crossing decode consumed bytes from the second page, so
            // its translation must have been available.
            let Some(h) = hi_page else { return };
            let s = mem.ensure_frame_slot(h);
            mem.mark_code(s, 0, len as usize - n_lo);
            (h, s, mem.slot_code_generation(s))
        } else {
            (0, 0, 0)
        };
        let lo_slot = mem.ensure_frame_slot(phys);
        mem.mark_code(lo_slot, off, n_lo);
        let slot = &mut std::sync::Arc::make_mut(&mut self.slots)[Self::slot_of(phys)];
        if slot.len == 0 {
            self.live += 1;
        }
        *slot = Entry {
            tag: phys,
            len: len as u8,
            crosses,
            cost: crate::cycles::measured_cost(&insn) as u16,
            insn,
            lo_slot,
            lo_gen: mem.slot_code_generation(lo_slot),
            hi_base,
            hi_slot,
            hi_gen,
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nop_cache() -> (PhysMem, InsnCache) {
        let mut mem = PhysMem::new();
        // Back the frame so generations move from a known point.
        mem.write_u8(0x1000, 0);
        (mem, InsnCache::new())
    }

    #[test]
    fn hit_returns_the_cached_decode() {
        let (mut mem, mut c) = nop_cache();
        c.insert(&mut mem, 0x1000, Insn::Nop, 1, None);
        assert_eq!(c.lookup(&mem, 0x1000, 12, None), Some((Insn::Nop, 1, 1)));
        assert_eq!(c.stats(), PredecodeStats { hits: 1, misses: 0 });
    }

    #[test]
    fn store_into_cached_bytes_invalidates() {
        let (mut mem, mut c) = nop_cache();
        c.insert(&mut mem, 0x1000, Insn::Hlt, 4, None);
        mem.write_u8(0x1003, 0x42); // last byte the decode consumed
        assert_eq!(c.lookup(&mem, 0x1000, 12, None), None);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn store_elsewhere_in_the_frame_does_not_invalidate() {
        // Byte-exact triggering: data sharing a page with code (stacks,
        // save slots, patch targets) must not evict decodes.
        let (mut mem, mut c) = nop_cache();
        c.insert(&mut mem, 0x1000, Insn::Hlt, 4, None);
        mem.write_u8(0x1004, 0x42); // first byte *past* the decode
        mem.write_u32(0x1800, 0xDEAD_BEEF);
        assert_eq!(c.lookup(&mem, 0x1000, 12, None), Some((Insn::Hlt, 4, 1)));
        // But a straddling store clipping the first byte does invalidate.
        mem.write_u16(0x0FFF, 0x9090);
        assert_eq!(c.lookup(&mem, 0x1000, 12, None), None);
    }

    #[test]
    fn shrunken_window_cannot_serve_a_long_entry() {
        let (mut mem, mut c) = nop_cache();
        c.insert(&mut mem, 0x1000, Insn::Hlt, 6, None);
        assert_eq!(c.lookup(&mem, 0x1000, 5, None), None);
        assert_eq!(c.lookup(&mem, 0x1000, 6, None), Some((Insn::Hlt, 6, 1)));
    }

    #[test]
    fn straddling_entry_requires_matching_second_page() {
        let (mut mem, mut c) = nop_cache();
        mem.write_u8(0x2000, 0);
        c.insert(&mut mem, 0x1FFE, Insn::Hlt, 6, Some(0x2000));
        assert_eq!(
            c.lookup(&mem, 0x1FFE, 12, Some(0x2000)),
            Some((Insn::Hlt, 6, 1))
        );
        // Second page unavailable (unmapped) or remapped elsewhere: miss.
        assert_eq!(c.lookup(&mem, 0x1FFE, 12, None), None);
        assert_eq!(c.lookup(&mem, 0x1FFE, 12, Some(0x7000)), None);
        // Store into the bytes consumed from the second page: miss.
        mem.write_u8(0x2003, 1);
        assert_eq!(c.lookup(&mem, 0x1FFE, 12, Some(0x2000)), None);
    }

    #[test]
    fn conflicting_addresses_evict_deterministically() {
        let (mut mem, mut c) = nop_cache();
        // Two physical addresses that map to the same direct-mapped slot.
        let a = 0x1000u32;
        let slot = InsnCache::slot_of(a);
        let b = (1..)
            .map(|i| a + i * 0x2000)
            .find(|&p| InsnCache::slot_of(p) == slot)
            .unwrap();
        mem.write_u8(b, 0);
        c.insert(&mut mem, a, Insn::Nop, 1, None);
        c.insert(&mut mem, b, Insn::Hlt, 1, None);
        assert_eq!(c.lookup(&mem, a, 12, None), None, "evicted by conflict");
        assert_eq!(c.lookup(&mem, b, 12, None), Some((Insn::Hlt, 1, 1)));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clear_empties_the_cache() {
        let (mut mem, mut c) = nop_cache();
        c.insert(&mut mem, 0x1000, Insn::Nop, 1, None);
        assert!(!c.is_empty());
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.lookup(&mem, 0x1000, 12, None), None);
    }
}
