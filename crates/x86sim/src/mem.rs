//! Sparse simulated physical memory and a physical frame allocator.
//!
//! The machine addresses a full 32-bit (4 GB) physical space; frames are
//! allocated lazily so only touched pages cost host memory.
//!
//! Every frame carries a *store generation*, bumped on each mutation of
//! the frame (guest stores, host writes, the loader, page-table updates,
//! fault injection — everything funnels through [`PhysMem`]), and a
//! *code generation*, bumped only when a store overlaps bytes a cached
//! decode actually consumed (tracked byte-exactly in a per-frame code
//! mask). Both are pure host-side bookkeeping: they never affect
//! simulated semantics or cycle accounting. The predecoded-instruction
//! cache ([`crate::predecode`]) validates against the code generation to
//! notice self-modifying code without being invalidated by stacks or
//! data that merely share a page with code.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::Arc;

use crate::image::{Dec, Enc, RestoreError};

/// The page size, as on x86.
pub const PAGE_SIZE: u32 = 4096;

/// Mask selecting the offset within a page.
pub const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// Rounds an address down to its page base.
pub fn page_base(addr: u32) -> u32 {
    addr & !PAGE_MASK
}

/// Rounds a size up to whole pages.
pub fn pages_for(len: u32) -> u32 {
    len.div_ceil(PAGE_SIZE)
}

/// A fast hasher for the simulator's u32-keyed maps (frame numbers,
/// virtual page numbers, physical addresses).
///
/// The TLB, the physical-frame map and the predecode cache are the
/// hottest hash lookups in the whole simulator — one of each per
/// simulated instruction — so SipHash's per-lookup cost dominates the
/// step loop. The keys are simulated addresses, not attacker-controlled
/// host input, so a multiply–xor mix is safe and much cheaper.
#[derive(Debug, Default, Clone, Copy)]
pub struct U32Hasher(u64);

impl Hasher for U32Hasher {
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u32(b as u32);
        }
    }

    fn write_u32(&mut self, v: u32) {
        let mut z = self.0 ^ (v as u64);
        z = z.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z ^= z >> 32;
        self.0 = z;
    }
}

/// `BuildHasher` for [`U32Hasher`].
pub type U32HashBuilder = BuildHasherDefault<U32Hasher>;

/// Byte-granular bitmap of a frame's cached-code bytes: bit `i` of word
/// `i / 64` covers byte `i`. Allocated lazily — most frames never hold
/// executed code and pay nothing.
type CodeMask = Box<[u64; (PAGE_SIZE / 64) as usize]>;

/// Returns the bit span `[lo, hi]` within one mask word.
fn span_bits(lo: usize, hi: usize) -> u64 {
    let width = hi - lo + 1;
    if width >= 64 {
        u64::MAX
    } else {
        ((1u64 << width) - 1) << lo
    }
}

/// One backed frame: its bytes, the store generation, and the code
/// generation + mask driving predecode invalidation.
///
/// The payload lives behind an `Arc` so cloning a [`PhysMem`] (a world
/// snapshot/fork) shares the 4 KB byte arrays instead of copying them:
/// a refcount above one *is* the frozen/shared state. The metadata
/// (generations, code mask) is cloned per world — generation bumps and
/// code marking in one fork never disturb its siblings. Every payload
/// mutation funnels through [`Frame::data_mut`], which splits a shared
/// payload privately before writing (copy-on-write).
#[derive(Debug, Clone)]
struct Frame {
    data: Arc<[u8; PAGE_SIZE as usize]>,
    gen: u64,
    /// Bumped only by stores that overlap bytes a cached decode consumed
    /// (per `code_mask`); the generation the predecode cache validates.
    code_gen: u64,
    code_mask: Option<CodeMask>,
}

impl Frame {
    fn new() -> Frame {
        Frame {
            data: Arc::new([0u8; PAGE_SIZE as usize]),
            gen: 0,
            code_gen: 0,
            code_mask: None,
        }
    }

    /// The single mutation choke point for frame payload bytes: if the
    /// payload is shared with a forked sibling or template world it is
    /// copied privately first (`Arc::make_mut`), so a write in this
    /// world can never bleed into another.
    #[inline]
    fn data_mut(&mut self) -> &mut [u8; PAGE_SIZE as usize] {
        Arc::make_mut(&mut self.data)
    }

    /// Records a store of `len` bytes at page offset `off`: always bumps
    /// the store generation, and bumps the code generation only when the
    /// store overlaps cached-code bytes (byte-exact, so data that merely
    /// shares a page with code — stacks, save slots, patch targets —
    /// never invalidates decodes). Returns whether the code generation
    /// moved, so the owning [`PhysMem`] can advance its global
    /// code-invalidation epoch.
    fn note_store(&mut self, off: usize, len: usize) -> bool {
        self.gen += 1;
        if let Some(mask) = &mut self.code_mask {
            let last = off + len - 1;
            for w in (off >> 6)..=(last >> 6) {
                let lo = if w == off >> 6 { off & 63 } else { 0 };
                let hi = if w == last >> 6 { last & 63 } else { 63 };
                if mask[w] & span_bits(lo, hi) != 0 {
                    // Every cached decode from this frame is now suspect;
                    // invalidate them all and let fetches re-mark.
                    self.code_gen += 1;
                    mask.fill(0);
                    return true;
                }
            }
        }
        false
    }
}

/// Sparse physical memory: 4 KB frames in a slab, indexed by frame number.
///
/// Reads from unbacked frames return zeros (like reading zero-initialized
/// DRAM); writes allocate the frame on demand. The MMU layers *all*
/// protection on top of this — physical memory itself performs no checks,
/// exactly as on real hardware.
///
/// Frames live in a `Vec` and are never freed, so a frame's slab slot is
/// a stable identity for its whole lifetime. The predecode cache stores
/// slot numbers and revalidates with [`PhysMem::slot_code_generation`] —
/// a bounds-checked array read instead of a hash lookup on the fetch
/// path.
///
/// `Clone` is the snapshot/fork primitive, and it is two refcount
/// bumps: the index and the frame table are both shared copy-on-write.
/// The first mutation in either world materializes a private frame
/// table (slot numbers — and therefore carried-over predecode entries
/// and translation memos — stay valid), and the 4 KB payloads stay
/// shared beneath it until individually written (`Frame::data_mut`).
#[derive(Debug, Default, Clone)]
pub struct PhysMem {
    index: Arc<HashMap<u32, u32, U32HashBuilder>>,
    slabs: Arc<Vec<Frame>>,
    /// Host-side epoch advanced whenever *any* frame's code generation
    /// moves (a store overlapped cached-code bytes). While it is
    /// unchanged, every per-slot code generation is unchanged too, so
    /// per-fetch revalidation can be one inline compare instead of a
    /// slab walk ([`PhysMem::code_epoch`]). Never serialized; it is
    /// derived bookkeeping like the generations themselves.
    code_epoch: u64,
}

impl PhysMem {
    /// Creates an empty physical memory.
    pub fn new() -> PhysMem {
        PhysMem::default()
    }

    /// Number of frames actually backed by host memory.
    pub fn resident_frames(&self) -> usize {
        self.slabs.len()
    }

    /// Number of backed frames whose payload is still shared with a
    /// snapshot or forked sibling (copy-on-write, not yet materialized
    /// privately). Observability for fork tests and benches; cold
    /// worlds report 0.
    pub fn shared_frames(&self) -> usize {
        if Arc::strong_count(&self.slabs) > 1 {
            // The whole frame table is still shared: no world has
            // mutated anything since the fork.
            return self.resident_frames();
        }
        self.slabs
            .iter()
            .filter(|f| Arc::strong_count(&f.data) > 1)
            .count()
    }

    /// The copy-on-write split points for the mutation paths: a world
    /// that still shares its frame table (or index) with a fork
    /// materializes a private copy before the first change. Payloads
    /// stay shared beneath the private table until written.
    #[inline]
    fn slabs_mut(&mut self) -> &mut Vec<Frame> {
        Arc::make_mut(&mut self.slabs)
    }

    #[inline]
    fn index_mut(&mut self) -> &mut HashMap<u32, u32, U32HashBuilder> {
        Arc::make_mut(&mut self.index)
    }

    /// The store generation of the frame containing `addr`.
    ///
    /// Unbacked frames report 0; the first write to a frame moves it to
    /// 1, so a cached decode of (all-zero) unbacked bytes is invalidated
    /// by the write that backs the frame.
    pub fn frame_generation(&self, addr: u32) -> u64 {
        match self.index.get(&(addr >> 12)) {
            Some(&i) => self.slabs[i as usize].gen,
            None => 0,
        }
    }

    /// Borrows the 4 KB of the frame containing `addr`, if backed.
    pub fn frame_data(&self, addr: u32) -> Option<&[u8; PAGE_SIZE as usize]> {
        self.index
            .get(&(addr >> 12))
            .map(|&i| &*self.slabs[i as usize].data)
    }

    /// Slab slot of the frame containing `addr`, allocating the (zeroed)
    /// frame if unbacked — *without* bumping its store generation.
    /// Allocation is not a store: the frame's bytes are the same zeros
    /// reads already observed.
    ///
    /// CoW invariant: this "touch without bumping" path never mutates
    /// payload bytes, so it must not — and does not — split a payload
    /// shared with a forked world. The same holds for
    /// [`PhysMem::mark_code`], which mutates only per-world metadata.
    /// Every payload mutation goes through `Frame::data_mut`, the
    /// single copy-on-write choke point; a shared frame later written
    /// through the slot returned here still materializes privately
    /// (regression-tested in `slot_write_on_shared_frame_cows`).
    pub fn ensure_frame_slot(&mut self, addr: u32) -> u32 {
        // Hit path stays read-only so it never splits a shared table.
        if let Some(&idx) = self.index.get(&(addr >> 12)) {
            return idx;
        }
        let idx = self.slabs.len() as u32;
        self.index_mut().insert(addr >> 12, idx);
        self.slabs_mut().push(Frame::new());
        idx
    }

    /// The *code* generation of the frame in slab slot `slot` (0 for an
    /// out-of-range slot). One array read — the predecode cache's
    /// per-fetch validation. Unlike the store generation it only moves
    /// when a store overlapped bytes marked by [`PhysMem::mark_code`].
    #[inline]
    pub fn slot_code_generation(&self, slot: u32) -> u64 {
        self.slabs.get(slot as usize).map_or(0, |f| f.code_gen)
    }

    /// The global code-invalidation epoch: advances exactly when some
    /// frame's [`PhysMem::slot_code_generation`] advances. A consumer
    /// that validated a slot's generation may substitute "epoch
    /// unchanged" for re-reading the slot — the proof-token hot path's
    /// self-modification guard.
    #[inline]
    pub fn code_epoch(&self) -> u64 {
        self.code_epoch
    }

    /// Marks `len` bytes at page offset `off` of slab slot `slot` as
    /// consumed by a cached decode: later stores overlapping them bump
    /// the slot's code generation.
    pub fn mark_code(&mut self, slot: u32, off: usize, len: usize) {
        debug_assert!(len > 0 && off + len <= PAGE_SIZE as usize);
        let Some(f) = self.slabs_mut().get_mut(slot as usize) else {
            return;
        };
        let mask = f
            .code_mask
            .get_or_insert_with(|| Box::new([0u64; (PAGE_SIZE / 64) as usize]));
        let last = off + len - 1;
        for w in (off >> 6)..=(last >> 6) {
            let lo = if w == off >> 6 { off & 63 } else { 0 };
            let hi = if w == last >> 6 { last & 63 } else { 63 };
            mask[w] |= span_bits(lo, hi);
        }
    }

    /// Slab slot of the frame containing `addr`, if backed. Unlike
    /// [`PhysMem::ensure_frame_slot`] this never allocates, so it is safe
    /// on read paths where materializing a frame would be observable.
    #[inline]
    pub fn frame_slot(&self, addr: u32) -> Option<u32> {
        self.index.get(&(addr >> 12)).copied()
    }

    /// Reads one byte of the frame in slab slot `slot`.
    ///
    /// Slots are stable identities (frames are never freed), so a caller
    /// holding a page-translation memo reads with one array index instead
    /// of re-hashing the frame number on every access. `off` must lie in
    /// the frame; the `_slot` accessors never straddle.
    #[inline]
    pub fn read_u8_slot(&self, slot: u32, off: u32) -> u8 {
        self.slabs[slot as usize].data[off as usize]
    }

    /// Reads a 16-bit little-endian value inside one frame.
    #[inline]
    pub fn read_u16_slot(&self, slot: u32, off: u32) -> u16 {
        let i = off as usize;
        let d = &self.slabs[slot as usize].data;
        u16::from_le_bytes([d[i], d[i + 1]])
    }

    /// Reads a 32-bit little-endian value inside one frame.
    #[inline]
    pub fn read_u32_slot(&self, slot: u32, off: u32) -> u32 {
        let i = off as usize;
        let d = &self.slabs[slot as usize].data;
        u32::from_le_bytes(d[i..i + 4].try_into().unwrap())
    }

    /// Writes one byte through a slab slot, with the same generation
    /// bookkeeping as the address-keyed stores.
    #[inline]
    pub fn write_u8_slot(&mut self, slot: u32, off: u32, v: u8) {
        let code_epoch = &mut self.code_epoch;
        let f = &mut Arc::make_mut(&mut self.slabs)[slot as usize];
        *code_epoch += u64::from(f.note_store(off as usize, 1));
        f.data_mut()[off as usize] = v;
    }

    /// Writes a 16-bit little-endian value inside one frame.
    #[inline]
    pub fn write_u16_slot(&mut self, slot: u32, off: u32, v: u16) {
        let code_epoch = &mut self.code_epoch;
        let f = &mut Arc::make_mut(&mut self.slabs)[slot as usize];
        *code_epoch += u64::from(f.note_store(off as usize, 2));
        f.data_mut()[off as usize..off as usize + 2].copy_from_slice(&v.to_le_bytes());
    }

    /// Writes a 32-bit little-endian value inside one frame.
    #[inline]
    pub fn write_u32_slot(&mut self, slot: u32, off: u32, v: u32) {
        let code_epoch = &mut self.code_epoch;
        let f = &mut Arc::make_mut(&mut self.slabs)[slot as usize];
        *code_epoch += u64::from(f.note_store(off as usize, 4));
        f.data_mut()[off as usize..off as usize + 4].copy_from_slice(&v.to_le_bytes());
    }

    /// The frame containing `addr`, allocated on demand, with its
    /// generations advanced for a `len`-byte store at `addr` — call only
    /// on the mutation paths, with the span inside one frame.
    fn frame_mut(&mut self, addr: u32, len: usize) -> &mut Frame {
        let idx = self.ensure_frame_slot(addr) as usize;
        let code_epoch = &mut self.code_epoch;
        let f = &mut Arc::make_mut(&mut self.slabs)[idx];
        *code_epoch += u64::from(f.note_store((addr & PAGE_MASK) as usize, len));
        f
    }

    #[inline]
    fn frame(&self, addr: u32) -> Option<&Frame> {
        self.index
            .get(&(addr >> 12))
            .map(|&i| &self.slabs[i as usize])
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.frame(addr) {
            Some(f) => f.data[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.frame_mut(addr, 1).data_mut()[(addr & PAGE_MASK) as usize] = v;
    }

    /// Reads a 16-bit little-endian value (may straddle frames).
    pub fn read_u16(&self, addr: u32) -> u16 {
        if addr & PAGE_MASK < PAGE_MASK {
            let i = (addr & PAGE_MASK) as usize;
            match self.frame(addr) {
                Some(f) => u16::from_le_bytes([f.data[i], f.data[i + 1]]),
                None => 0,
            }
        } else {
            u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
        }
    }

    /// Writes a 16-bit little-endian value.
    pub fn write_u16(&mut self, addr: u32, v: u16) {
        let b = v.to_le_bytes();
        if addr & PAGE_MASK < PAGE_MASK {
            let i = (addr & PAGE_MASK) as usize;
            self.frame_mut(addr, 2).data_mut()[i..i + 2].copy_from_slice(&b);
        } else {
            self.write_u8(addr, b[0]);
            self.write_u8(addr.wrapping_add(1), b[1]);
        }
    }

    /// Reads a 32-bit little-endian value (may straddle frames).
    pub fn read_u32(&self, addr: u32) -> u32 {
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            let i = (addr & PAGE_MASK) as usize;
            match self.frame(addr) {
                Some(f) => u32::from_le_bytes(f.data[i..i + 4].try_into().unwrap()),
                None => 0,
            }
        } else {
            u32::from_le_bytes([
                self.read_u8(addr),
                self.read_u8(addr.wrapping_add(1)),
                self.read_u8(addr.wrapping_add(2)),
                self.read_u8(addr.wrapping_add(3)),
            ])
        }
    }

    /// Writes a 32-bit little-endian value.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let b = v.to_le_bytes();
        if addr & PAGE_MASK <= PAGE_MASK - 3 {
            let i = (addr & PAGE_MASK) as usize;
            self.frame_mut(addr, 4).data_mut()[i..i + 4].copy_from_slice(&b);
        } else {
            for (i, byte) in b.iter().enumerate() {
                self.write_u8(addr.wrapping_add(i as u32), *byte);
            }
        }
    }

    /// Copies a byte slice into physical memory.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        let mut addr = addr;
        let mut data = data;
        while !data.is_empty() {
            let off = (addr & PAGE_MASK) as usize;
            let n = data.len().min(PAGE_SIZE as usize - off);
            self.frame_mut(addr, n).data_mut()[off..off + n].copy_from_slice(&data[..n]);
            data = &data[n..];
            addr = addr.wrapping_add(n as u32);
        }
    }

    /// Reads `len` bytes into a fresh vector.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Serializes the sparse frame set into a checkpoint payload: only
    /// materialized frames, sorted by frame number so the bytes are a
    /// pure function of memory contents (the index `HashMap` iterates in
    /// host-dependent order, and slab slot numbers are allocation-order
    /// accidents).
    ///
    /// Store/code generations and code masks are *not* serialized: they
    /// exist only to invalidate the predecode cache, which a restored
    /// world rebuilds from scratch.
    pub(crate) fn save_into(&self, e: &mut Enc) {
        let mut pages: Vec<(u32, u32)> = self.index.iter().map(|(&p, &s)| (p, s)).collect();
        pages.sort_unstable_by_key(|&(p, _)| p);
        e.u32(pages.len() as u32);
        for (page, slot) in pages {
            e.u32(page);
            e.bytes(&*self.slabs[slot as usize].data);
        }
    }

    /// Rebuilds physical memory from a payload written by
    /// [`PhysMem::save_into`]. Frames come back in sorted order, so slab
    /// slot numbering after a restore is deterministic (slots are
    /// host-side identities; nothing architectural observes them).
    pub(crate) fn restore_from(d: &mut Dec<'_>) -> Result<PhysMem, RestoreError> {
        let n = d.u32()?;
        let mut index: HashMap<u32, u32, U32HashBuilder> = HashMap::default();
        let mut slabs: Vec<Frame> = Vec::with_capacity(n as usize);
        let mut last: Option<u32> = None;
        for _ in 0..n {
            let page = d.u32()?;
            if last.is_some_and(|l| page <= l) {
                return Err(d.fail(format!("frames not sorted (page {page:#x})")));
            }
            last = Some(page);
            let bytes = d.bytes(PAGE_SIZE as usize)?;
            let data: [u8; PAGE_SIZE as usize] = bytes.try_into().expect("read PAGE_SIZE bytes");
            index.insert(page, slabs.len() as u32);
            slabs.push(Frame {
                data: Arc::new(data),
                gen: 1,
                code_gen: 0,
                code_mask: None,
            });
        }
        Ok(PhysMem {
            index: Arc::new(index),
            slabs: Arc::new(slabs),
            code_epoch: 0,
        })
    }

    /// Zero-fills a range.
    pub fn zero(&mut self, addr: u32, len: u32) {
        let mut addr = addr;
        let mut len = len as usize;
        while len > 0 {
            let off = (addr & PAGE_MASK) as usize;
            let n = len.min(PAGE_SIZE as usize - off);
            self.frame_mut(addr, n).data_mut()[off..off + n].fill(0);
            len -= n;
            addr = addr.wrapping_add(n as u32);
        }
    }
}

/// A bump allocator over physical frames, with a deterministic free list.
///
/// The hosting kernel uses it to place page tables, code images and stacks
/// in distinct frames. Freed frames go on a LIFO free list and are reused
/// (most recently freed first) before the bump pointer advances, so every
/// allocation sequence is a pure function of the call sequence — seeded
/// simulations stay replayable across reclaim cycles.
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    next: u32,
    limit: u32,
    free_list: Vec<u32>,
    in_use: u32,
}

impl FrameAlloc {
    /// Creates an allocator handing out frames in `[start, limit)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not page-aligned or empty.
    pub fn new(start: u32, limit: u32) -> FrameAlloc {
        assert_eq!(start & PAGE_MASK, 0, "start must be page-aligned");
        assert_eq!(limit & PAGE_MASK, 0, "limit must be page-aligned");
        assert!(start < limit, "empty frame range");
        FrameAlloc {
            next: start,
            limit,
            free_list: Vec::new(),
            in_use: 0,
        }
    }

    /// Allocates one frame, returning its physical base address. The most
    /// recently freed frame is reused first; the bump pointer only
    /// advances when the free list is empty.
    pub fn alloc(&mut self) -> Option<u32> {
        if let Some(f) = self.free_list.pop() {
            self.in_use += 1;
            return Some(f);
        }
        if self.next >= self.limit {
            return None;
        }
        let f = self.next;
        self.next += PAGE_SIZE;
        self.in_use += 1;
        Some(f)
    }

    /// Allocates `n` contiguous frames, returning the first base address.
    /// Always carved from the bump region (the free list holds single
    /// frames with no adjacency guarantee).
    pub fn alloc_contiguous(&mut self, n: u32) -> Option<u32> {
        let bytes = n.checked_mul(PAGE_SIZE)?;
        let end = self.next.checked_add(bytes)?;
        if end > self.limit {
            return None;
        }
        let f = self.next;
        self.next = end;
        self.in_use += n;
        Some(f)
    }

    /// Returns a frame to the allocator for reuse.
    ///
    /// # Panics
    ///
    /// Panics on a misaligned address, a frame the allocator never handed
    /// out, or a double free — each would silently corrupt a later
    /// allocation, so they are host bugs worth failing loudly on.
    pub fn free(&mut self, frame: u32) {
        assert_eq!(frame & PAGE_MASK, 0, "freed frame must be page-aligned");
        assert!(frame < self.next, "freeing a frame never allocated");
        assert!(
            !self.free_list.contains(&frame),
            "double free of frame {frame:#010x}"
        );
        self.free_list.push(frame);
        self.in_use -= 1;
    }

    /// Frames still available (unreached bump space plus the free list).
    pub fn remaining(&self) -> u32 {
        (self.limit - self.next) / PAGE_SIZE + self.free_list.len() as u32
    }

    /// Frames currently allocated and not yet freed — the leak-audit
    /// counter compared before and after a reclaim cycle.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Serializes the allocator into a checkpoint payload. The free list
    /// is written in its exact LIFO order: allocation sequences are a
    /// pure function of the call sequence *and this order*, so a restored
    /// world must hand out frames identically to the original.
    pub fn save_into(&self, e: &mut Enc) {
        e.u32(self.next);
        e.u32(self.limit);
        e.u32(self.in_use);
        e.u32(self.free_list.len() as u32);
        for &f in &self.free_list {
            e.u32(f);
        }
    }

    /// Rebuilds an allocator from a payload written by
    /// [`FrameAlloc::save_into`], validating the invariants a live
    /// allocator maintains (alignment, bounds, no double entries).
    pub fn restore_from(d: &mut Dec<'_>) -> Result<FrameAlloc, RestoreError> {
        let next = d.u32()?;
        let limit = d.u32()?;
        let in_use = d.u32()?;
        if next & PAGE_MASK != 0 || limit & PAGE_MASK != 0 || next > limit {
            return Err(d.fail(format!("allocator bounds {next:#x}/{limit:#x}")));
        }
        let n = d.u32()?;
        let mut free_list = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let f = d.u32()?;
            if f & PAGE_MASK != 0 || f >= next {
                return Err(d.fail(format!("free frame {f:#x} out of range")));
            }
            if free_list.contains(&f) {
                return Err(d.fail(format!("frame {f:#x} freed twice")));
            }
            free_list.push(f);
        }
        Ok(FrameAlloc {
            next,
            limit,
            free_list,
            in_use,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbacked_memory_reads_zero() {
        let m = PhysMem::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xFFFF_FFF0), 0);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = PhysMem::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF);
        assert_eq!(m.read_u8(0x1003), 0xDE);
        assert_eq!(m.resident_frames(), 1);
    }

    #[test]
    fn values_straddle_frame_boundaries() {
        let mut m = PhysMem::new();
        m.write_u32(0x1FFE, 0x1122_3344);
        assert_eq!(m.read_u32(0x1FFE), 0x1122_3344);
        assert_eq!(m.read_u16(0x1FFF), 0x2233);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn bulk_copy_roundtrip() {
        let mut m = PhysMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x2F80, &data);
        assert_eq!(m.read_bytes(0x2F80, 256), data);
        m.zero(0x2F80, 256);
        assert!(m.read_bytes(0x2F80, 256).iter().all(|b| *b == 0));
    }

    #[test]
    fn store_generations_track_every_mutation_path() {
        let mut m = PhysMem::new();
        assert_eq!(m.frame_generation(0x5000), 0, "unbacked frame is gen 0");

        m.write_u8(0x5000, 1);
        let g1 = m.frame_generation(0x5000);
        assert!(g1 >= 1, "first write backs the frame and bumps it");

        m.write_u32(0x5100, 0xAABBCCDD);
        let g2 = m.frame_generation(0x5000);
        assert!(g2 > g1);

        m.write_bytes(0x5FF0, &[7u8; 32]);
        assert!(m.frame_generation(0x5000) > g2, "straddling copy bumps");
        assert!(m.frame_generation(0x6000) >= 1, "both touched frames bump");

        let g3 = m.frame_generation(0x5000);
        m.zero(0x5000, 16);
        assert!(m.frame_generation(0x5000) > g3);

        // Reads never bump.
        let g4 = m.frame_generation(0x5000);
        let _ = m.read_u32(0x5000);
        let _ = m.read_bytes(0x5000, 64);
        assert_eq!(m.frame_generation(0x5000), g4);
    }

    #[test]
    fn frame_data_exposes_backed_frames_only() {
        let mut m = PhysMem::new();
        assert!(m.frame_data(0x9000).is_none());
        m.write_u8(0x9123, 0x42);
        let f = m.frame_data(0x9000).unwrap();
        assert_eq!(f[0x123], 0x42);
    }

    #[test]
    fn frame_alloc_hands_out_distinct_frames() {
        let mut fa = FrameAlloc::new(0x10_0000, 0x10_3000);
        assert_eq!(fa.remaining(), 3);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(b, a + PAGE_SIZE);
        assert_eq!(fa.remaining(), 1);
        assert!(fa.alloc().is_some());
        assert!(fa.alloc().is_none());
    }

    #[test]
    fn contiguous_allocation_respects_limit() {
        let mut fa = FrameAlloc::new(0, 0x4000);
        assert!(fa.alloc_contiguous(5).is_none());
        let base = fa.alloc_contiguous(4).unwrap();
        assert_eq!(base, 0);
        assert_eq!(fa.remaining(), 0);
    }

    #[test]
    fn page_helpers() {
        assert_eq!(page_base(0x1234), 0x1000);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(0), 0);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn misaligned_frame_alloc_panics() {
        let _ = FrameAlloc::new(0x100, 0x2000);
    }

    #[test]
    fn freed_frames_are_reused_lifo_before_the_bump_pointer() {
        let mut fa = FrameAlloc::new(0x10_0000, 0x10_4000);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_eq!(fa.in_use(), 2);
        fa.free(a);
        fa.free(b);
        assert_eq!(fa.in_use(), 0);
        assert_eq!(fa.remaining(), 4);
        // LIFO: most recently freed first, then the older free, then bump.
        assert_eq!(fa.alloc().unwrap(), b);
        assert_eq!(fa.alloc().unwrap(), a);
        assert_eq!(fa.alloc().unwrap(), b + PAGE_SIZE);
        assert_eq!(fa.in_use(), 3);
    }

    #[test]
    fn free_list_extends_an_exhausted_pool() {
        let mut fa = FrameAlloc::new(0, 0x2000);
        let a = fa.alloc().unwrap();
        let _b = fa.alloc().unwrap();
        assert!(fa.alloc().is_none());
        fa.free(a);
        assert_eq!(fa.remaining(), 1);
        assert_eq!(fa.alloc(), Some(a));
        assert!(fa.alloc().is_none());
    }

    #[test]
    fn cloned_memory_shares_frames_until_written() {
        let mut m = PhysMem::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        m.write_u32(0x2000, 0x1234_5678);
        assert_eq!(m.shared_frames(), 0, "cold world shares nothing");

        let mut fork = m.clone();
        assert_eq!(m.shared_frames(), 2, "snapshot freezes both frames");
        assert_eq!(fork.shared_frames(), 2);
        assert_eq!(fork.read_u32(0x1000), 0xDEAD_BEEF);

        // First write in the fork materializes only that frame.
        let g_before = m.frame_generation(0x1000);
        fork.write_u32(0x1000, 0xCAFE_F00D);
        assert_eq!(fork.read_u32(0x1000), 0xCAFE_F00D);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF, "template untouched");
        assert_eq!(m.frame_generation(0x1000), g_before, "template gen private");
        assert!(fork.frame_generation(0x1000) > g_before, "fork gen bumped");
        assert_eq!(m.shared_frames(), 1, "only the untouched frame shares");

        // Writes in the template split too, without touching the fork.
        m.write_u32(0x2000, 0x9999_0000);
        assert_eq!(fork.read_u32(0x2000), 0x1234_5678);
        assert_eq!(m.shared_frames(), 0);
    }

    #[test]
    fn slot_write_on_shared_frame_cows() {
        // Regression for the "touch without bumping" audit: a frame
        // shared with a fork and then mutated through the slot-direct
        // path (the memoized store fast path) must still materialize
        // privately. `ensure_frame_slot` itself never splits — it does
        // not mutate payload bytes.
        let mut m = PhysMem::new();
        m.write_bytes(0x3000, &[0xAA; 64]);
        let mut fork = m.clone();

        let slot = fork.ensure_frame_slot(0x3000);
        assert_eq!(
            fork.shared_frames(),
            1,
            "ensure_frame_slot alone must not split the shared payload"
        );
        fork.write_u8_slot(slot, 5, 0x55);
        assert_eq!(fork.read_u8(0x3005), 0x55);
        assert_eq!(m.read_u8(0x3005), 0xAA, "template sees no slot write");
        assert_eq!(fork.shared_frames(), 0);

        // Allocating a brand-new frame in the fork never shows up in
        // the template.
        let new_slot = fork.ensure_frame_slot(0x9_F000);
        fork.write_u32_slot(new_slot, 0, 7);
        assert!(m.frame_data(0x9_F000).is_none());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut fa = FrameAlloc::new(0, 0x2000);
        let a = fa.alloc().unwrap();
        fa.free(a);
        fa.free(a);
    }
}
