//! Sparse simulated physical memory and a physical frame allocator.
//!
//! The machine addresses a full 32-bit (4 GB) physical space; frames are
//! allocated lazily so only touched pages cost host memory.

use std::collections::HashMap;

/// The page size, as on x86.
pub const PAGE_SIZE: u32 = 4096;

/// Mask selecting the offset within a page.
pub const PAGE_MASK: u32 = PAGE_SIZE - 1;

/// Rounds an address down to its page base.
pub fn page_base(addr: u32) -> u32 {
    addr & !PAGE_MASK
}

/// Rounds a size up to whole pages.
pub fn pages_for(len: u32) -> u32 {
    len.div_ceil(PAGE_SIZE)
}

/// Sparse physical memory: a map from frame number to 4 KB frames.
///
/// Reads from unbacked frames return zeros (like reading zero-initialized
/// DRAM); writes allocate the frame on demand. The MMU layers *all*
/// protection on top of this — physical memory itself performs no checks,
/// exactly as on real hardware.
#[derive(Debug, Default)]
pub struct PhysMem {
    frames: HashMap<u32, Box<[u8; PAGE_SIZE as usize]>>,
}

impl PhysMem {
    /// Creates an empty physical memory.
    pub fn new() -> PhysMem {
        PhysMem::default()
    }

    /// Number of frames actually backed by host memory.
    pub fn resident_frames(&self) -> usize {
        self.frames.len()
    }

    fn frame_mut(&mut self, addr: u32) -> &mut [u8; PAGE_SIZE as usize] {
        self.frames
            .entry(addr >> 12)
            .or_insert_with(|| Box::new([0u8; PAGE_SIZE as usize]))
    }

    /// Reads one byte.
    pub fn read_u8(&self, addr: u32) -> u8 {
        match self.frames.get(&(addr >> 12)) {
            Some(f) => f[(addr & PAGE_MASK) as usize],
            None => 0,
        }
    }

    /// Writes one byte.
    pub fn write_u8(&mut self, addr: u32, v: u8) {
        self.frame_mut(addr)[(addr & PAGE_MASK) as usize] = v;
    }

    /// Reads a 16-bit little-endian value (may straddle frames).
    pub fn read_u16(&self, addr: u32) -> u16 {
        u16::from_le_bytes([self.read_u8(addr), self.read_u8(addr.wrapping_add(1))])
    }

    /// Writes a 16-bit little-endian value.
    pub fn write_u16(&mut self, addr: u32, v: u16) {
        let b = v.to_le_bytes();
        self.write_u8(addr, b[0]);
        self.write_u8(addr.wrapping_add(1), b[1]);
    }

    /// Reads a 32-bit little-endian value (may straddle frames).
    pub fn read_u32(&self, addr: u32) -> u32 {
        u32::from_le_bytes([
            self.read_u8(addr),
            self.read_u8(addr.wrapping_add(1)),
            self.read_u8(addr.wrapping_add(2)),
            self.read_u8(addr.wrapping_add(3)),
        ])
    }

    /// Writes a 32-bit little-endian value.
    pub fn write_u32(&mut self, addr: u32, v: u32) {
        let b = v.to_le_bytes();
        for (i, byte) in b.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *byte);
        }
    }

    /// Copies a byte slice into physical memory.
    pub fn write_bytes(&mut self, addr: u32, data: &[u8]) {
        for (i, b) in data.iter().enumerate() {
            self.write_u8(addr.wrapping_add(i as u32), *b);
        }
    }

    /// Reads `len` bytes into a fresh vector.
    pub fn read_bytes(&self, addr: u32, len: usize) -> Vec<u8> {
        (0..len)
            .map(|i| self.read_u8(addr.wrapping_add(i as u32)))
            .collect()
    }

    /// Zero-fills a range.
    pub fn zero(&mut self, addr: u32, len: u32) {
        for i in 0..len {
            self.write_u8(addr.wrapping_add(i), 0);
        }
    }
}

/// A bump allocator over physical frames.
///
/// The hosting kernel uses it to place page tables, code images and stacks
/// in distinct frames; frames are never freed (the simulations are short
/// lived and deterministic).
#[derive(Debug, Clone)]
pub struct FrameAlloc {
    next: u32,
    limit: u32,
}

impl FrameAlloc {
    /// Creates an allocator handing out frames in `[start, limit)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not page-aligned or empty.
    pub fn new(start: u32, limit: u32) -> FrameAlloc {
        assert_eq!(start & PAGE_MASK, 0, "start must be page-aligned");
        assert_eq!(limit & PAGE_MASK, 0, "limit must be page-aligned");
        assert!(start < limit, "empty frame range");
        FrameAlloc { next: start, limit }
    }

    /// Allocates one frame, returning its physical base address.
    pub fn alloc(&mut self) -> Option<u32> {
        if self.next >= self.limit {
            return None;
        }
        let f = self.next;
        self.next += PAGE_SIZE;
        Some(f)
    }

    /// Allocates `n` contiguous frames, returning the first base address.
    pub fn alloc_contiguous(&mut self, n: u32) -> Option<u32> {
        let bytes = n.checked_mul(PAGE_SIZE)?;
        let end = self.next.checked_add(bytes)?;
        if end > self.limit {
            return None;
        }
        let f = self.next;
        self.next = end;
        Some(f)
    }

    /// Frames still available.
    pub fn remaining(&self) -> u32 {
        (self.limit - self.next) / PAGE_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbacked_memory_reads_zero() {
        let m = PhysMem::new();
        assert_eq!(m.read_u8(0), 0);
        assert_eq!(m.read_u32(0xFFFF_FFF0), 0);
        assert_eq!(m.resident_frames(), 0);
    }

    #[test]
    fn write_then_read_roundtrip() {
        let mut m = PhysMem::new();
        m.write_u32(0x1000, 0xDEAD_BEEF);
        assert_eq!(m.read_u32(0x1000), 0xDEAD_BEEF);
        assert_eq!(m.read_u8(0x1000), 0xEF);
        assert_eq!(m.read_u8(0x1003), 0xDE);
        assert_eq!(m.resident_frames(), 1);
    }

    #[test]
    fn values_straddle_frame_boundaries() {
        let mut m = PhysMem::new();
        m.write_u32(0x1FFE, 0x1122_3344);
        assert_eq!(m.read_u32(0x1FFE), 0x1122_3344);
        assert_eq!(m.read_u16(0x1FFF), 0x2233);
        assert_eq!(m.resident_frames(), 2);
    }

    #[test]
    fn bulk_copy_roundtrip() {
        let mut m = PhysMem::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write_bytes(0x2F80, &data);
        assert_eq!(m.read_bytes(0x2F80, 256), data);
        m.zero(0x2F80, 256);
        assert!(m.read_bytes(0x2F80, 256).iter().all(|b| *b == 0));
    }

    #[test]
    fn frame_alloc_hands_out_distinct_frames() {
        let mut fa = FrameAlloc::new(0x10_0000, 0x10_3000);
        assert_eq!(fa.remaining(), 3);
        let a = fa.alloc().unwrap();
        let b = fa.alloc().unwrap();
        assert_ne!(a, b);
        assert_eq!(b, a + PAGE_SIZE);
        assert_eq!(fa.remaining(), 1);
        assert!(fa.alloc().is_some());
        assert!(fa.alloc().is_none());
    }

    #[test]
    fn contiguous_allocation_respects_limit() {
        let mut fa = FrameAlloc::new(0, 0x4000);
        assert!(fa.alloc_contiguous(5).is_none());
        let base = fa.alloc_contiguous(4).unwrap();
        assert_eq!(base, 0);
        assert_eq!(fa.remaining(), 0);
    }

    #[test]
    fn page_helpers() {
        assert_eq!(page_base(0x1234), 0x1000);
        assert_eq!(pages_for(1), 1);
        assert_eq!(pages_for(4096), 1);
        assert_eq!(pages_for(4097), 2);
        assert_eq!(pages_for(0), 0);
    }

    #[test]
    #[should_panic(expected = "page-aligned")]
    fn misaligned_frame_alloc_panics() {
        let _ = FrameAlloc::new(0x100, 0x2000);
    }
}
