//! Instruction execution.

use asm86::isa::{AluOp, Cond, Insn, Mem, Reg, SegReg, Src};

use crate::cycles::TAKEN_BRANCH_EXTRA;
use crate::desc::Selector;
use crate::fault::{Fault, FaultBuilder, FaultCause};
use crate::machine::{Exit, Machine};

impl Machine {
    #[inline]
    fn src_value(&self, s: Src) -> u32 {
        match s {
            Src::Reg(r) => self.cpu.reg(r),
            Src::Imm(v) => v as u32,
        }
    }

    #[inline]
    fn effective_addr(&self, m: &Mem) -> (SegReg, u32) {
        let base = m.base.map(|r| self.cpu.reg(r)).unwrap_or(0);
        (m.effective_seg(), base.wrapping_add(m.disp as u32))
    }

    #[inline]
    fn read_mem(&mut self, m: &Mem, size: u32) -> Result<u32, FaultBuilder> {
        let (sr, off) = self.effective_addr(m);
        self.read_data(sr, off, size)
    }

    #[inline]
    fn write_mem(&mut self, m: &Mem, size: u32, v: u32) -> Result<(), FaultBuilder> {
        let (sr, off) = self.effective_addr(m);
        self.write_data(sr, off, size, v)
    }

    #[inline]
    fn set_zs(&mut self, v: u32) {
        self.cpu.flags.zf = v == 0;
        self.cpu.flags.sf = (v as i32) < 0;
    }

    #[inline]
    fn alu(&mut self, op: AluOp, dst: u32, src: u32) -> u32 {
        let f = &mut self.cpu.flags;
        let result = match op {
            AluOp::Add => {
                let (r, c) = dst.overflowing_add(src);
                f.cf = c;
                f.of = ((dst ^ r) & (src ^ r)) >> 31 != 0;
                r
            }
            AluOp::Sub => {
                let (r, b) = dst.overflowing_sub(src);
                f.cf = b;
                f.of = ((dst ^ src) & (dst ^ r)) >> 31 != 0;
                r
            }
            AluOp::And => {
                f.cf = false;
                f.of = false;
                dst & src
            }
            AluOp::Or => {
                f.cf = false;
                f.of = false;
                dst | src
            }
            AluOp::Xor => {
                f.cf = false;
                f.of = false;
                dst ^ src
            }
            AluOp::Shl => {
                let n = src & 31;
                if n == 0 {
                    dst
                } else {
                    f.cf = (dst >> (32 - n)) & 1 != 0;
                    f.of = false;
                    dst << n
                }
            }
            AluOp::Shr => {
                let n = src & 31;
                if n == 0 {
                    dst
                } else {
                    f.cf = (dst >> (n - 1)) & 1 != 0;
                    f.of = false;
                    dst >> n
                }
            }
            AluOp::Sar => {
                let n = src & 31;
                if n == 0 {
                    dst
                } else {
                    f.cf = ((dst as i32) >> (n - 1)) & 1 != 0;
                    f.of = false;
                    ((dst as i32) >> n) as u32
                }
            }
            AluOp::Imul => {
                let wide = (dst as i32 as i64) * (src as i32 as i64);
                let r = wide as i32;
                f.cf = wide != r as i64;
                f.of = f.cf;
                r as u32
            }
        };
        self.set_zs(result);
        result
    }

    #[inline]
    fn cond(&self, c: Cond) -> bool {
        let f = &self.cpu.flags;
        match c {
            Cond::E => f.zf,
            Cond::Ne => !f.zf,
            Cond::L => f.sf != f.of,
            Cond::Le => f.zf || f.sf != f.of,
            Cond::G => !f.zf && f.sf == f.of,
            Cond::Ge => f.sf == f.of,
            Cond::B => f.cf,
            Cond::Be => f.cf || f.zf,
            Cond::A => !f.cf && !f.zf,
            Cond::Ae => !f.cf,
            Cond::S => f.sf,
            Cond::Ns => !f.sf,
        }
    }

    /// Executes one decoded instruction.
    ///
    /// `len` is its encoded length (to compute the fall-through EIP).
    pub(crate) fn execute(&mut self, insn: Insn, len: u32) -> Result<Option<Exit>, FaultBuilder> {
        let next = self.cpu.eip.wrapping_add(len);
        match insn {
            Insn::Nop => {}
            Insn::Hlt => {
                if self.cpu.cpl != 0 {
                    return Err(Fault::gp(0, FaultCause::PrivilegedInstruction));
                }
                self.cpu.eip = next;
                return Ok(Some(Exit::Hlt));
            }
            Insn::Mov(r, s) => {
                let v = self.src_value(s);
                self.cpu.set_reg(r, v);
            }
            Insn::Load(r, m) => {
                let v = self.read_mem(&m, 4)?;
                self.cpu.set_reg(r, v);
            }
            Insn::Store(m, s) => {
                let v = self.src_value(s);
                self.write_mem(&m, 4, v)?;
            }
            Insn::LoadB(r, m) => {
                let v = self.read_mem(&m, 1)?;
                self.cpu.set_reg(r, v & 0xFF);
            }
            Insn::StoreB(m, r) => {
                let v = self.cpu.reg(r);
                self.write_mem(&m, 1, v & 0xFF)?;
            }
            Insn::LoadW(r, m) => {
                let v = self.read_mem(&m, 2)?;
                self.cpu.set_reg(r, v & 0xFFFF);
            }
            Insn::StoreW(m, r) => {
                let v = self.cpu.reg(r);
                self.write_mem(&m, 2, v & 0xFFFF)?;
            }
            Insn::MovToSeg(sr, r) => {
                let sel = Selector(self.cpu.reg(r) as u16);
                self.load_data_seg(sr, sel)?;
            }
            Insn::MovFromSeg(r, sr) => {
                let sel = self.cpu.seg(sr).selector.0;
                self.cpu.set_reg(r, sel as u32);
            }
            Insn::Lea(r, m) => {
                let (_, off) = self.effective_addr(&m);
                self.cpu.set_reg(r, off);
            }
            Insn::Push(s) => {
                let v = self.src_value(s);
                self.push32(v)?;
            }
            Insn::PushM(m) => {
                let v = self.read_mem(&m, 4)?;
                self.push32(v)?;
            }
            Insn::PushSeg(sr) => {
                let sel = self.cpu.seg(sr).selector.0;
                self.push32(sel as u32)?;
            }
            Insn::Pop(r) => {
                let v = self.pop32()?;
                self.cpu.set_reg(r, v);
            }
            Insn::PopM(m) => {
                // Pop then store; if the store faults, ESP must be intact —
                // read the value without committing ESP first.
                let v = self.read_data(SegReg::Ss, self.cpu.esp(), 4)?;
                self.write_mem(&m, 4, v)?;
                let esp = self.cpu.esp().wrapping_add(4);
                self.cpu.set_reg(Reg::Esp, esp);
            }
            Insn::PopSeg(sr) => {
                let v = self.read_data(SegReg::Ss, self.cpu.esp(), 4)?;
                self.load_data_seg(sr, Selector(v as u16))?;
                let esp = self.cpu.esp().wrapping_add(4);
                self.cpu.set_reg(Reg::Esp, esp);
            }
            Insn::Alu(op, r, s) => {
                let a = self.cpu.reg(r);
                let b = self.src_value(s);
                let v = self.alu(op, a, b);
                self.cpu.set_reg(r, v);
            }
            Insn::AluM(op, r, m) => {
                let a = self.cpu.reg(r);
                let b = self.read_mem(&m, 4)?;
                let v = self.alu(op, a, b);
                self.cpu.set_reg(r, v);
            }
            Insn::Neg(r) => {
                let v = self.cpu.reg(r);
                self.cpu.flags.cf = v != 0;
                let r2 = (v as i32).wrapping_neg() as u32;
                self.cpu.flags.of = v == 0x8000_0000;
                self.set_zs(r2);
                self.cpu.set_reg(r, r2);
            }
            Insn::Not(r) => {
                let v = !self.cpu.reg(r);
                self.cpu.set_reg(r, v);
            }
            Insn::Inc(r) => {
                let v = self.cpu.reg(r).wrapping_add(1);
                self.cpu.flags.of = v == 0x8000_0000;
                self.set_zs(v);
                self.cpu.set_reg(r, v);
            }
            Insn::Dec(r) => {
                let v = self.cpu.reg(r).wrapping_sub(1);
                self.cpu.flags.of = v == 0x7FFF_FFFF;
                self.set_zs(v);
                self.cpu.set_reg(r, v);
            }
            Insn::Cmp(r, s) => {
                let a = self.cpu.reg(r);
                let b = self.src_value(s);
                self.alu(AluOp::Sub, a, b);
            }
            Insn::CmpM(m, s) => {
                let a = self.read_mem(&m, 4)?;
                let b = self.src_value(s);
                self.alu(AluOp::Sub, a, b);
            }
            Insn::Test(r, s) => {
                let a = self.cpu.reg(r);
                let b = self.src_value(s);
                self.alu(AluOp::And, a, b);
            }
            Insn::Jmp(rel) => {
                self.cpu.eip = next.wrapping_add(rel as u32);
                return Ok(None);
            }
            Insn::JmpReg(r) => {
                self.cpu.eip = self.cpu.reg(r);
                return Ok(None);
            }
            Insn::JmpM(m) => {
                let target = self.read_mem(&m, 4)?;
                self.cpu.eip = target;
                return Ok(None);
            }
            Insn::Jcc(c, rel) => {
                if self.cond(c) {
                    self.charge(TAKEN_BRANCH_EXTRA);
                    self.cpu.eip = next.wrapping_add(rel as u32);
                    return Ok(None);
                }
            }
            Insn::Call(rel) => {
                self.push32(next)?;
                self.cpu.eip = next.wrapping_add(rel as u32);
                return Ok(None);
            }
            Insn::CallReg(r) => {
                let target = self.cpu.reg(r);
                self.push32(next)?;
                self.cpu.eip = target;
                return Ok(None);
            }
            Insn::CallM(m) => {
                let target = self.read_mem(&m, 4)?;
                self.push32(next)?;
                self.cpu.eip = target;
                return Ok(None);
            }
            Insn::Ret => {
                let ra = self.pop32()?;
                self.cpu.eip = ra;
                return Ok(None);
            }
            Insn::RetN(n) => {
                let ra = self.pop32()?;
                let esp = self.cpu.esp().wrapping_add(n as u32);
                self.cpu.set_reg(Reg::Esp, esp);
                self.cpu.eip = ra;
                return Ok(None);
            }
            Insn::Lcall(sel, off) => {
                self.exec_lcall(Selector(sel), off, next)?;
                return Ok(None);
            }
            Insn::Lret => {
                self.exec_lret(0)?;
                return Ok(None);
            }
            Insn::LretN(n) => {
                self.exec_lret(n as u32)?;
                return Ok(None);
            }
            Insn::Int(vec) => {
                return self.exec_int(vec, next).map(Some);
            }
            Insn::Iret => {
                self.exec_iret()?;
                return Ok(None);
            }
            Insn::Rdtsc => {
                let c = self.cycles();
                self.cpu.set_reg(Reg::Eax, c as u32);
                self.cpu.set_reg(Reg::Edx, (c >> 32) as u32);
            }
            Insn::Wrpkru(s) => {
                // Gate integrity: user code may only write key rights
                // from loader-registered gate sites; supervisor code can
                // rewrite page tables anyway, so it writes from anywhere.
                if self.cpu.cpl == 3 {
                    let site = self.cpu.seg(SegReg::Cs).base.wrapping_add(self.cpu.eip);
                    if !self.key_gate_registered(site) {
                        return Err(Fault::gp(0, FaultCause::KeyGateViolation { site }));
                    }
                }
                self.cpu.pkru = self.src_value(s);
            }
            Insn::Rdpkru(r) => {
                let v = self.cpu.pkru;
                self.cpu.set_reg(r, v);
            }
        }
        self.cpu.eip = next;
        Ok(None)
    }
}
