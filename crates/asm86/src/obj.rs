//! Object format and code builder.
//!
//! An [`Object`] is the output of the assembler or of programmatic code
//! generation (e.g. the Palladium `Prepare`/`Transfer` trampolines): raw
//! bytes, a symbol table, and absolute relocations that a loader applies
//! once the image's base linear address and any external symbols are known.
//!
//! Relative (`rel32`) branches to labels inside the same object are
//! resolved when the object is finalized, so an object's code is
//! position-independent except where it takes the *absolute* address of a
//! symbol — those sites get [`Reloc`] records, mirroring how `ld.so`
//! relocates a shared library.

use std::collections::BTreeMap;

use crate::encode::encode_into;
use crate::isa::{AluOp, Cond, Insn, Mem, Reg, Src};

/// Kinds of relocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocKind {
    /// Patch a 32-bit little-endian absolute address.
    Abs32,
    /// Patch a 32-bit displacement relative to the end of the field
    /// (`rel32` branch targets left unresolved at assembly time, e.g.
    /// calls to imported functions).
    Rel32,
}

/// One relocation: patch the 4 bytes at `offset` with the resolved address
/// of `sym` plus `addend`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Byte offset of the field inside the object.
    pub offset: u32,
    /// Symbol whose address is patched in.
    pub sym: String,
    /// Constant added to the symbol's address.
    pub addend: i32,
    /// Relocation kind.
    pub kind: RelocKind,
}

/// Errors produced while building or linking an object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ObjError {
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A `rel32` branch referenced a label never defined in this object.
    UndefinedLabel(String),
    /// Linking could not resolve a symbol internally or externally.
    UnresolvedSymbol(String),
    /// A relocation field fell outside the object.
    BadReloc(u32),
}

impl core::fmt::Display for ObjError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ObjError::DuplicateLabel(s) => write!(f, "duplicate label `{s}`"),
            ObjError::UndefinedLabel(s) => write!(f, "undefined label `{s}`"),
            ObjError::UnresolvedSymbol(s) => write!(f, "unresolved symbol `{s}`"),
            ObjError::BadReloc(o) => write!(f, "relocation at {o:#x} out of bounds"),
        }
    }
}

impl std::error::Error for ObjError {}

/// A relocatable code/data image.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Object {
    /// The image bytes (code and data interleaved as emitted).
    pub bytes: Vec<u8>,
    /// Defined symbols: name to offset within the image.
    pub symbols: BTreeMap<String, u32>,
    /// Absolute constants (`.equ`): name to value, not shifted by the
    /// load base.
    pub abs_symbols: BTreeMap<String, u32>,
    /// Unapplied absolute relocations.
    pub relocs: Vec<Reloc>,
}

impl Object {
    /// The image size in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True if the image is empty.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The offset of a defined symbol.
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Produces the loadable image for a given base address.
    ///
    /// Every relocation is resolved against this object's own symbol table
    /// first (symbol address = `base + offset`), then against `externs`
    /// (absolute addresses supplied by the loader, e.g. kernel-provided
    /// shared-area addresses).
    pub fn link(&self, base: u32, externs: &BTreeMap<String, u32>) -> Result<Vec<u8>, ObjError> {
        let mut out = self.bytes.clone();
        for r in &self.relocs {
            let value = if let Some(off) = self.symbols.get(&r.sym) {
                base.wrapping_add(*off)
            } else if let Some(v) = self.abs_symbols.get(&r.sym) {
                *v
            } else if let Some(addr) = externs.get(&r.sym) {
                *addr
            } else {
                return Err(ObjError::UnresolvedSymbol(r.sym.clone()));
            };
            let value = value.wrapping_add(r.addend as u32);
            let o = r.offset as usize;
            let field_end = base.wrapping_add(r.offset).wrapping_add(4);
            let field = out.get_mut(o..o + 4).ok_or(ObjError::BadReloc(r.offset))?;
            match r.kind {
                RelocKind::Abs32 => field.copy_from_slice(&value.to_le_bytes()),
                RelocKind::Rel32 => {
                    let rel = value.wrapping_sub(field_end);
                    field.copy_from_slice(&rel.to_le_bytes());
                }
            }
        }
        Ok(out)
    }

    /// Maps exported function names to image offsets, for use as CFG
    /// entry points ([`crate::disasm::Cfg::build`]); errors on the first
    /// name the object does not define.
    pub fn entry_offsets(&self, names: &[&str]) -> Result<Vec<u32>, ObjError> {
        names
            .iter()
            .map(|n| {
                self.symbol(n)
                    .ok_or_else(|| ObjError::UndefinedLabel((*n).to_string()))
            })
            .collect()
    }

    /// Names of symbols this object references but does not define.
    pub fn undefined_symbols(&self) -> Vec<&str> {
        let mut v: Vec<&str> = self
            .relocs
            .iter()
            .filter(|r| {
                !self.symbols.contains_key(&r.sym) && !self.abs_symbols.contains_key(&r.sym)
            })
            .map(|r| r.sym.as_str())
            .collect();
        v.sort_unstable();
        v.dedup();
        v
    }
}

#[derive(Debug, Clone)]
struct RelFixup {
    /// Offset of the 4-byte rel32 field.
    field: u32,
    /// Target label.
    label: String,
}

/// Incremental builder for an [`Object`].
///
/// Plain instructions are emitted with [`CodeBuilder::emit`]; branches to
/// labels use the `*_label` helpers and are fixed up in
/// [`CodeBuilder::finish`]. Helpers that take the absolute address of a
/// symbol (`push_label`, `mov_label`, ...) emit [`Reloc`] records so the
/// loader can place the image anywhere.
#[derive(Debug, Default)]
pub struct CodeBuilder {
    bytes: Vec<u8>,
    symbols: BTreeMap<String, u32>,
    abs_symbols: BTreeMap<String, u32>,
    relocs: Vec<Reloc>,
    rel_fixups: Vec<RelFixup>,
}

impl CodeBuilder {
    /// Creates an empty builder.
    pub fn new() -> CodeBuilder {
        CodeBuilder::default()
    }

    /// Current offset within the image.
    pub fn here(&self) -> u32 {
        self.bytes.len() as u32
    }

    /// Defines `name` at the current offset.
    pub fn label(&mut self, name: &str) -> Result<(), ObjError> {
        let off = self.here();
        if self.abs_symbols.contains_key(name)
            || self.symbols.insert(name.to_string(), off).is_some()
        {
            return Err(ObjError::DuplicateLabel(name.to_string()));
        }
        Ok(())
    }

    /// Defines an absolute constant (`.equ`), usable wherever a label is.
    pub fn equ(&mut self, name: &str, value: u32) -> Result<(), ObjError> {
        if self.symbols.contains_key(name)
            || self.abs_symbols.insert(name.to_string(), value).is_some()
        {
            return Err(ObjError::DuplicateLabel(name.to_string()));
        }
        Ok(())
    }

    /// Emits one fully-resolved instruction.
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        encode_into(&insn, &mut self.bytes);
        self
    }

    /// Emits several fully-resolved instructions.
    pub fn emit_all(&mut self, insns: &[Insn]) -> &mut Self {
        for i in insns {
            self.emit(*i);
        }
        self
    }

    fn emit_rel(&mut self, insn: Insn, label: &str) {
        encode_into(&insn, &mut self.bytes);
        // The rel32 field is the trailing 4 bytes of every relative-branch
        // encoding (see `crate::encode`).
        self.rel_fixups.push(RelFixup {
            field: self.here() - 4,
            label: label.to_string(),
        });
    }

    fn abs_reloc_trailing(&mut self, sym: &str, addend: i32) {
        self.relocs.push(Reloc {
            offset: self.here() - 4,
            sym: sym.to_string(),
            addend,
            kind: RelocKind::Abs32,
        });
    }

    /// `call label` (near relative).
    pub fn call_label(&mut self, label: &str) -> &mut Self {
        self.emit_rel(Insn::Call(0), label);
        self
    }

    /// `jmp label`.
    pub fn jmp_label(&mut self, label: &str) -> &mut Self {
        self.emit_rel(Insn::Jmp(0), label);
        self
    }

    /// `jcc label`.
    pub fn jcc_label(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.emit_rel(Insn::Jcc(cond, 0), label);
        self
    }

    /// `lcall sel, label` — far call whose offset is the absolute address
    /// of `label` (patched at link time).
    pub fn lcall_label(&mut self, sel: u16, label: &str) -> &mut Self {
        self.emit(Insn::Lcall(sel, 0));
        self.abs_reloc_trailing(label, 0);
        self
    }

    /// `mov reg, &label` — loads the absolute address of a symbol.
    pub fn mov_label(&mut self, reg: Reg, label: &str) -> &mut Self {
        self.emit(Insn::Mov(reg, Src::Imm(0)));
        self.abs_reloc_trailing(label, 0);
        self
    }

    /// `push &label` — pushes the absolute address of a symbol.
    pub fn push_label(&mut self, label: &str) -> &mut Self {
        self.emit(Insn::Push(Src::Imm(0)));
        self.abs_reloc_trailing(label, 0);
        self
    }

    /// `mov reg, [label + addend]` — 32-bit load from a symbol's address.
    pub fn load_label(&mut self, reg: Reg, label: &str, addend: i32) -> &mut Self {
        self.emit(Insn::Load(reg, Mem::abs(0)));
        self.abs_reloc_trailing(label, addend);
        self
    }

    /// `push dword [label]`.
    pub fn pushm_label(&mut self, label: &str, addend: i32) -> &mut Self {
        self.emit(Insn::PushM(Mem::abs(0)));
        self.abs_reloc_trailing(label, addend);
        self
    }

    /// `pop dword [label]`.
    pub fn popm_label(&mut self, label: &str, addend: i32) -> &mut Self {
        self.emit(Insn::PopM(Mem::abs(0)));
        self.abs_reloc_trailing(label, addend);
        self
    }

    /// `jmp dword [label]` — indirect jump through a memory slot.
    pub fn jmpm_label(&mut self, label: &str, addend: i32) -> &mut Self {
        self.emit(Insn::JmpM(Mem::abs(0)));
        self.abs_reloc_trailing(label, addend);
        self
    }

    /// `mov [label + addend], reg` — 32-bit store to a symbol's address.
    ///
    /// The displacement field is not trailing in a `Store` encoding, so the
    /// relocation offset is computed explicitly.
    pub fn store_label(&mut self, label: &str, addend: i32, reg: Reg) -> &mut Self {
        let start = self.here();
        self.emit(Insn::Store(Mem::abs(0), Src::Reg(reg)));
        // Layout: opcode(1) + mem flags(1) + disp(4) + src tag(1) + reg(1).
        self.relocs.push(Reloc {
            offset: start + 2,
            sym: label.to_string(),
            addend,
            kind: RelocKind::Abs32,
        });
        self
    }

    /// Records a relocation at an explicit offset.
    ///
    /// Used by the assembler for encodings whose address field is not
    /// trailing; prefer the `*_label` helpers elsewhere.
    pub fn raw_reloc(&mut self, reloc: Reloc) -> &mut Self {
        self.relocs.push(reloc);
        self
    }

    /// Emits raw bytes.
    pub fn bytes(&mut self, data: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(data);
        self
    }

    /// Emits a 32-bit little-endian constant.
    pub fn dword(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Emits a 32-bit field holding the absolute address of `label`.
    pub fn dword_label(&mut self, label: &str, addend: i32) -> &mut Self {
        self.dword(0);
        self.abs_reloc_trailing(label, addend);
        self
    }

    /// Emits `n` zero bytes.
    pub fn space(&mut self, n: usize) -> &mut Self {
        self.bytes.resize(self.bytes.len() + n, 0);
        self
    }

    /// Pads with zero bytes to the given power-of-two alignment.
    pub fn align(&mut self, align: usize) -> &mut Self {
        debug_assert!(align.is_power_of_two());
        let rem = self.bytes.len() % align;
        if rem != 0 {
            self.space(align - rem);
        }
        self
    }

    /// Emits ALU shorthand: `op reg, src`.
    pub fn alu(&mut self, op: AluOp, reg: Reg, src: impl Into<Src>) -> &mut Self {
        self.emit(Insn::Alu(op, reg, src.into()))
    }

    /// Resolves internal `rel32` fixups and returns the object. Branches
    /// to labels not defined in this object become [`RelocKind::Rel32`]
    /// relocations, resolved at link time against external symbols (or
    /// against symbols supplied by a later [`crate::obj`] merge).
    pub fn finish(mut self) -> Result<Object, ObjError> {
        for f in &self.rel_fixups {
            match self.symbols.get(&f.label) {
                Some(target) => {
                    // rel32 is measured from the end of the instruction,
                    // which is the end of the field itself.
                    let rel = (*target as i64 - (f.field as i64 + 4)) as i32;
                    let o = f.field as usize;
                    self.bytes[o..o + 4].copy_from_slice(&rel.to_le_bytes());
                }
                None => {
                    self.relocs.push(Reloc {
                        offset: f.field,
                        sym: f.label.clone(),
                        addend: 0,
                        kind: RelocKind::Rel32,
                    });
                }
            }
        }
        Ok(Object {
            bytes: self.bytes,
            symbols: self.symbols,
            abs_symbols: self.abs_symbols,
            relocs: self.relocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_program;
    use crate::isa::Reg::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut b = CodeBuilder::new();
        b.label("start").unwrap();
        b.emit(Insn::Mov(Eax, Src::Imm(0)));
        b.jmp_label("end");
        b.label("loop").unwrap();
        b.emit(Insn::Inc(Eax));
        b.label("end").unwrap();
        b.jcc_label(Cond::Ne, "loop");
        b.emit(Insn::Ret);
        let obj = b.finish().unwrap();

        let insns = decode_program(&obj.bytes).unwrap();
        // mov(7) jmp(5) inc(2) jcc(6) ret(1)
        // jmp at offset 7, field at 8, end 12; `end` label at 14 => rel 2.
        assert_eq!(insns[1], Insn::Jmp(2));
        // jcc at 14, end 20; `loop` at 12 => rel -8.
        assert_eq!(insns[3], Insn::Jcc(Cond::Ne, -8));
    }

    #[test]
    fn undefined_branch_becomes_rel32_reloc() {
        let mut b = CodeBuilder::new();
        b.jmp_label("imported");
        let obj = b.finish().unwrap();
        assert_eq!(obj.undefined_symbols(), vec!["imported"]);
        // Unresolvable at link time without externs.
        assert_eq!(
            obj.link(0, &BTreeMap::new()).unwrap_err(),
            ObjError::UnresolvedSymbol("imported".into())
        );
        // Resolves against an extern: jmp at base 0x1000, field at 0x1001,
        // end 0x1005; target 0x2000 => rel 0xFFB.
        let mut externs = BTreeMap::new();
        externs.insert("imported".to_string(), 0x2000);
        let image = obj.link(0x1000, &externs).unwrap();
        let insns = crate::encode::decode_program(&image).unwrap();
        assert_eq!(insns[0], Insn::Jmp(0xFFB));
    }

    #[test]
    fn duplicate_label_errors() {
        let mut b = CodeBuilder::new();
        b.label("x").unwrap();
        assert_eq!(
            b.label("x").unwrap_err(),
            ObjError::DuplicateLabel("x".into())
        );
    }

    #[test]
    fn internal_abs_reloc_uses_base() {
        let mut b = CodeBuilder::new();
        b.mov_label(Eax, "data");
        b.emit(Insn::Ret);
        b.label("data").unwrap();
        b.dword(0xCAFE_BABE);
        let obj = b.finish().unwrap();
        let data_off = obj.symbol("data").unwrap();

        let image = obj.link(0x1000, &BTreeMap::new()).unwrap();
        let insns = decode_program(&image[..data_off as usize]).unwrap();
        assert_eq!(insns[0], Insn::Mov(Eax, Src::Imm(0x1000 + data_off as i32)));
    }

    #[test]
    fn external_symbols_resolve_from_map() {
        let mut b = CodeBuilder::new();
        b.load_label(Ecx, "shared_area", 8);
        b.emit(Insn::Ret);
        let obj = b.finish().unwrap();
        assert_eq!(obj.undefined_symbols(), vec!["shared_area"]);

        let mut externs = BTreeMap::new();
        externs.insert("shared_area".to_string(), 0x0800_0000);
        let image = obj.link(0x4000, &externs).unwrap();
        let insns = decode_program(&image).unwrap();
        assert_eq!(insns[0], Insn::Load(Ecx, Mem::abs(0x0800_0008)));
    }

    #[test]
    fn unresolved_symbol_errors_at_link() {
        let mut b = CodeBuilder::new();
        b.push_label("missing");
        let obj = b.finish().unwrap();
        assert_eq!(
            obj.link(0, &BTreeMap::new()).unwrap_err(),
            ObjError::UnresolvedSymbol("missing".into())
        );
    }

    #[test]
    fn store_label_patches_displacement_field() {
        let mut b = CodeBuilder::new();
        b.store_label("slot", 0, Ebx);
        b.emit(Insn::Ret);
        b.label("slot").unwrap();
        b.dword(0);
        let obj = b.finish().unwrap();
        let slot = obj.symbol("slot").unwrap();
        let image = obj.link(0x2000, &BTreeMap::new()).unwrap();
        let insns = decode_program(&image[..slot as usize]).unwrap();
        assert_eq!(
            insns[0],
            Insn::Store(Mem::abs(0x2000 + slot), Src::Reg(Ebx))
        );
    }

    #[test]
    fn align_and_space_pad_with_zeros() {
        let mut b = CodeBuilder::new();
        b.bytes(&[1, 2, 3]);
        b.align(8);
        b.label("here").unwrap();
        b.space(4);
        let obj = b.finish().unwrap();
        assert_eq!(obj.symbol("here"), Some(8));
        assert_eq!(obj.len(), 12);
        assert_eq!(&obj.bytes[3..8], &[0, 0, 0, 0, 0]);
    }

    #[test]
    fn link_is_idempotent_on_clone() {
        let mut b = CodeBuilder::new();
        b.mov_label(Eax, "d");
        b.label("d").unwrap();
        b.dword(9);
        let obj = b.finish().unwrap();
        let a = obj.link(0x100, &BTreeMap::new()).unwrap();
        let c = obj.link(0x100, &BTreeMap::new()).unwrap();
        assert_eq!(a, c);
    }
}
