//! Disassembler: renders encoded instructions back to assembler-like text.
//!
//! Primarily a debugging aid; the integration tests also use it to produce
//! readable failure messages when a simulated extension faults.

use crate::encode::{decode, DecodeError};
use crate::isa::Insn;

/// Renders one instruction as text.
pub fn format_insn(insn: &Insn) -> String {
    match *insn {
        Insn::Nop => "nop".into(),
        Insn::Hlt => "hlt".into(),
        Insn::Mov(r, s) => format!("mov {r}, {s}"),
        Insn::Load(r, m) => format!("mov {r}, {m}"),
        Insn::Store(m, s) => format!("mov {m}, {s}"),
        Insn::LoadB(r, m) => format!("mov {r}, byte {m}"),
        Insn::StoreB(m, r) => format!("mov byte {m}, {r}"),
        Insn::LoadW(r, m) => format!("mov {r}, word {m}"),
        Insn::StoreW(m, r) => format!("mov word {m}, {r}"),
        Insn::MovToSeg(sr, r) => format!("mov {sr}, {r}"),
        Insn::MovFromSeg(r, sr) => format!("mov {r}, {sr}"),
        Insn::Lea(r, m) => format!("lea {r}, {m}"),
        Insn::Push(s) => format!("push {s}"),
        Insn::PushM(m) => format!("push dword {m}"),
        Insn::PushSeg(sr) => format!("push {sr}"),
        Insn::Pop(r) => format!("pop {r}"),
        Insn::PopM(m) => format!("pop dword {m}"),
        Insn::PopSeg(sr) => format!("pop {sr}"),
        Insn::Alu(op, r, s) => format!("{} {r}, {s}", op.name()),
        Insn::AluM(op, r, m) => format!("{} {r}, {m}", op.name()),
        Insn::Neg(r) => format!("neg {r}"),
        Insn::Not(r) => format!("not {r}"),
        Insn::Inc(r) => format!("inc {r}"),
        Insn::Dec(r) => format!("dec {r}"),
        Insn::Cmp(r, s) => format!("cmp {r}, {s}"),
        Insn::CmpM(m, s) => format!("cmp {m}, {s}"),
        Insn::Test(r, s) => format!("test {r}, {s}"),
        Insn::Jmp(rel) => format!("jmp {rel:+}"),
        Insn::JmpReg(r) => format!("jmp {r}"),
        Insn::JmpM(m) => format!("jmp dword {m}"),
        Insn::Jcc(c, rel) => format!("j{} {rel:+}", c.name()),
        Insn::Call(rel) => format!("call {rel:+}"),
        Insn::CallReg(r) => format!("call {r}"),
        Insn::CallM(m) => format!("call dword {m}"),
        Insn::Ret => "ret".into(),
        Insn::RetN(n) => format!("ret {n}"),
        Insn::Lcall(sel, off) => format!("lcall {sel:#06x}, {off:#x}"),
        Insn::Lret => "lret".into(),
        Insn::LretN(n) => format!("lret {n}"),
        Insn::Int(v) => format!("int {v:#04x}"),
        Insn::Iret => "iret".into(),
        Insn::Rdtsc => "rdtsc".into(),
    }
}

/// One disassembled line: offset, instruction, and length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Byte offset of the instruction.
    pub offset: u32,
    /// The decoded instruction.
    pub insn: Insn,
    /// Encoded length in bytes.
    pub len: usize,
}

/// Disassembles a buffer into lines.
pub fn disassemble(buf: &[u8]) -> Result<Vec<Line>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let (insn, len) = decode(&buf[pos..])?;
        out.push(Line {
            offset: pos as u32,
            insn,
            len,
        });
        pos += len;
    }
    Ok(out)
}

/// Disassembles a buffer to printable text, one instruction per line.
pub fn disassemble_text(buf: &[u8], base: u32) -> Result<String, DecodeError> {
    let mut s = String::new();
    for line in disassemble(buf)? {
        s.push_str(&format!(
            "{:08x}:  {}\n",
            base + line.offset,
            format_insn(&line.insn)
        ));
    }
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::encode::encode_program;
    use crate::isa::{Mem, Reg, SegReg, Src};
    use std::collections::BTreeMap;

    #[test]
    fn formats_are_reparsable_by_the_assembler() {
        // Everything the disassembler prints for non-branch instructions
        // should assemble back to the same encoding.
        let prog = vec![
            Insn::Mov(Reg::Eax, Src::Imm(5)),
            Insn::Load(Reg::Ebx, Mem::based(Reg::Ebp, 8)),
            Insn::Store(Mem::based(Reg::Esp, -4), Src::Reg(Reg::Ecx)),
            Insn::MovToSeg(SegReg::Ds, Reg::Eax),
            Insn::Push(Src::Reg(Reg::Esi)),
            Insn::Pop(Reg::Edi),
            Insn::Ret,
        ];
        let text: String = prog
            .iter()
            .map(|i| format!("{}\n", format_insn(i)))
            .collect();
        let obj = Assembler::assemble(&text).unwrap();
        assert_eq!(
            obj.link(0, &BTreeMap::new()).unwrap(),
            encode_program(&prog)
        );
    }

    #[test]
    fn disassemble_reports_offsets_and_lengths() {
        let prog = vec![Insn::Nop, Insn::Mov(Reg::Eax, Src::Imm(1)), Insn::Ret];
        let bytes = encode_program(&prog);
        let lines = disassemble(&bytes).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].offset, 0);
        assert_eq!(lines[1].offset, 1);
        assert_eq!(lines[2].offset, 1 + lines[1].len as u32);
        assert_eq!(lines.iter().map(|l| l.len).sum::<usize>(), bytes.len());
    }

    #[test]
    fn text_output_contains_base_addresses() {
        let bytes = encode_program(&[Insn::Nop]);
        let text = disassemble_text(&bytes, 0x400).unwrap();
        assert!(text.contains("00000400"));
        assert!(text.contains("nop"));
    }
}

#[cfg(test)]
mod roundtrip_props {
    use super::*;
    use crate::asm::Assembler;
    use crate::encode::encode_program;
    use crate::isa::{AluOp, Cond, Mem, Reg, SegReg, Src};
    use seedrng::SeedRng;
    use std::collections::BTreeMap;

    fn arb_reg(r: &mut SeedRng) -> Reg {
        Reg::from_u8(r.gen_range(0, 8) as u8).unwrap()
    }

    fn arb_segreg(r: &mut SeedRng) -> SegReg {
        SegReg::from_u8(r.gen_range(0, 4) as u8).unwrap()
    }

    fn arb_mem(r: &mut SeedRng) -> Mem {
        Mem {
            seg: if r.gen_bool(0.5) {
                Some(arb_segreg(r))
            } else {
                None
            },
            base: if r.gen_bool(0.5) {
                Some(arb_reg(r))
            } else {
                None
            },
            disp: r.gen_range(0, 0x2000) as i32 - 0x1000,
        }
    }

    fn arb_src(r: &mut SeedRng) -> Src {
        if r.gen_bool(0.5) {
            Src::Reg(arb_reg(r))
        } else {
            Src::Imm(r.gen_range(0, 0x20000) as i32 - 0x10000)
        }
    }

    /// Instructions whose printed form the assembler accepts verbatim
    /// (branches print raw displacements, which the text syntax expresses
    /// through labels instead, so they are excluded).
    fn arb_printable(r: &mut SeedRng) -> Insn {
        match r.gen_range(0, 19) {
            0 => Insn::Nop,
            1 => Insn::Hlt,
            2 => Insn::Ret,
            3 => Insn::Rdtsc,
            4 => Insn::Mov(arb_reg(r), arb_src(r)),
            5 => Insn::Load(arb_reg(r), arb_mem(r)),
            6 => Insn::Store(arb_mem(r), arb_src(r)),
            7 => Insn::LoadB(arb_reg(r), arb_mem(r)),
            8 => Insn::StoreB(arb_mem(r), arb_reg(r)),
            9 => {
                let mut s = arb_segreg(r);
                if s == SegReg::Cs {
                    s = SegReg::Ds; // cs is unloadable
                }
                Insn::MovToSeg(s, arb_reg(r))
            }
            10 => Insn::MovFromSeg(arb_reg(r), arb_segreg(r)),
            11 => Insn::Alu(
                AluOp::from_u8(r.gen_range(0, 9) as u8).unwrap(),
                arb_reg(r),
                arb_src(r),
            ),
            12 => Insn::Pop(arb_reg(r)),
            13 => Insn::Push(Src::Reg(arb_reg(r))),
            14 => Insn::PushSeg(arb_segreg(r)),
            15 => Insn::PushM(arb_mem(r)),
            16 => Insn::PopM(arb_mem(r)),
            17 => Insn::RetN(r.gen_range(0, 0x100) as u16),
            _ => Insn::Int(r.next_u32() as u8),
        }
    }

    /// Disassembling then re-assembling reproduces the exact encoding
    /// for every printable instruction.
    #[test]
    fn seeded_disasm_asm_roundtrip() {
        let mut r = SeedRng::new(0xD15A);
        for _ in 0..150 {
            let n = 1 + r.gen_range(0, 15) as usize;
            let prog: Vec<Insn> = (0..n).map(|_| arb_printable(&mut r)).collect();
            let bytes = encode_program(&prog);
            let text: String = prog
                .iter()
                .map(|i| format!("{}\n", format_insn(i)))
                .collect();
            let obj = Assembler::assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            let relinked = obj.link(0, &BTreeMap::new()).unwrap();
            assert_eq!(relinked, bytes, "{text}");
        }
    }

    /// The cond-suffix table stays in sync between formatter and parser.
    #[test]
    fn all_branch_mnemonics_parse() {
        for c in Cond::ALL {
            let src = format!("top:\nj{} top\n", c.name());
            Assembler::assemble(&src).unwrap();
        }
    }
}
