//! Disassembler: renders encoded instructions back to assembler-like text.
//!
//! Primarily a debugging aid; the integration tests also use it to produce
//! readable failure messages when a simulated extension faults.

use std::collections::{BTreeMap, BTreeSet};

use crate::encode::{decode, DecodeError};
use crate::isa::Insn;

/// Renders one instruction as text.
pub fn format_insn(insn: &Insn) -> String {
    match *insn {
        Insn::Nop => "nop".into(),
        Insn::Hlt => "hlt".into(),
        Insn::Mov(r, s) => format!("mov {r}, {s}"),
        Insn::Load(r, m) => format!("mov {r}, {m}"),
        Insn::Store(m, s) => format!("mov {m}, {s}"),
        Insn::LoadB(r, m) => format!("mov {r}, byte {m}"),
        Insn::StoreB(m, r) => format!("mov byte {m}, {r}"),
        Insn::LoadW(r, m) => format!("mov {r}, word {m}"),
        Insn::StoreW(m, r) => format!("mov word {m}, {r}"),
        Insn::MovToSeg(sr, r) => format!("mov {sr}, {r}"),
        Insn::MovFromSeg(r, sr) => format!("mov {r}, {sr}"),
        Insn::Lea(r, m) => format!("lea {r}, {m}"),
        Insn::Push(s) => format!("push {s}"),
        Insn::PushM(m) => format!("push dword {m}"),
        Insn::PushSeg(sr) => format!("push {sr}"),
        Insn::Pop(r) => format!("pop {r}"),
        Insn::PopM(m) => format!("pop dword {m}"),
        Insn::PopSeg(sr) => format!("pop {sr}"),
        Insn::Alu(op, r, s) => format!("{} {r}, {s}", op.name()),
        Insn::AluM(op, r, m) => format!("{} {r}, {m}", op.name()),
        Insn::Neg(r) => format!("neg {r}"),
        Insn::Not(r) => format!("not {r}"),
        Insn::Inc(r) => format!("inc {r}"),
        Insn::Dec(r) => format!("dec {r}"),
        Insn::Cmp(r, s) => format!("cmp {r}, {s}"),
        Insn::CmpM(m, s) => format!("cmp {m}, {s}"),
        Insn::Test(r, s) => format!("test {r}, {s}"),
        Insn::Jmp(rel) => format!("jmp {rel:+}"),
        Insn::JmpReg(r) => format!("jmp {r}"),
        Insn::JmpM(m) => format!("jmp dword {m}"),
        Insn::Jcc(c, rel) => format!("j{} {rel:+}", c.name()),
        Insn::Call(rel) => format!("call {rel:+}"),
        Insn::CallReg(r) => format!("call {r}"),
        Insn::CallM(m) => format!("call dword {m}"),
        Insn::Ret => "ret".into(),
        Insn::RetN(n) => format!("ret {n}"),
        Insn::Lcall(sel, off) => format!("lcall {sel:#06x}, {off:#x}"),
        Insn::Lret => "lret".into(),
        Insn::LretN(n) => format!("lret {n}"),
        Insn::Int(v) => format!("int {v:#04x}"),
        Insn::Iret => "iret".into(),
        Insn::Rdtsc => "rdtsc".into(),
        Insn::Wrpkru(s) => format!("wrpkru {s}"),
        Insn::Rdpkru(r) => format!("rdpkru {r}"),
    }
}

/// One disassembled line: offset, instruction, and length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Line {
    /// Byte offset of the instruction.
    pub offset: u32,
    /// The decoded instruction.
    pub insn: Insn,
    /// Encoded length in bytes.
    pub len: usize,
}

/// Disassembles a buffer into lines.
pub fn disassemble(buf: &[u8]) -> Result<Vec<Line>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0usize;
    while pos < buf.len() {
        let (insn, len) = decode(&buf[pos..])?;
        out.push(Line {
            offset: pos as u32,
            insn,
            len,
        });
        pos += len;
    }
    Ok(out)
}

/// Disassembles a buffer to printable text, one instruction per line.
pub fn disassemble_text(buf: &[u8], base: u32) -> Result<String, DecodeError> {
    let mut s = String::new();
    for line in disassemble(buf)? {
        s.push_str(&format!(
            "{:08x}:  {}\n",
            base + line.offset,
            format_insn(&line.insn)
        ));
    }
    Ok(s)
}

/// Image-relative offset of a static `rel32` branch target, computed from
/// the end of the instruction. May be negative or past the image end when
/// the displacement was link-resolved to an external symbol.
pub fn branch_target(line: &Line) -> Option<i64> {
    let end = i64::from(line.offset) + line.len as i64;
    match line.insn {
        Insn::Jmp(rel) | Insn::Jcc(_, rel) | Insn::Call(rel) => Some(end + i64::from(rel)),
        _ => None,
    }
}

/// Errors produced while recovering a control-flow graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CfgError {
    /// A reachable offset did not decode.
    Decode {
        /// Offset of the undecodable bytes.
        offset: u32,
        /// The underlying decoder error.
        cause: DecodeError,
    },
    /// No entry points were supplied.
    NoEntry,
    /// An entry point fell outside the image.
    EntryOutOfRange(u32),
}

impl core::fmt::Display for CfgError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CfgError::Decode { offset, cause } => {
                write!(f, "undecodable instruction at {offset:#x}: {cause:?}")
            }
            CfgError::NoEntry => write!(f, "no entry points"),
            CfgError::EntryOutOfRange(o) => write!(f, "entry {o:#x} outside the image"),
        }
    }
}

impl std::error::Error for CfgError {}

/// A basic block: a maximal straight-line run of reachable instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Offset of the first instruction.
    pub start: u32,
    /// Offset one past the last instruction's final byte.
    pub end: u32,
    /// The instructions, in address order.
    pub insns: Vec<Line>,
    /// Leader offsets of statically known successor blocks.
    pub succs: Vec<u32>,
}

/// A control-flow graph recovered by reachability from a set of entry
/// points.
///
/// Only *reachable* bytes are decoded — extension images interleave code
/// with data (dispatch slots, shared areas, `.dd` constants), so a linear
/// sweep would misparse them. Static `rel32` edges are followed when they
/// land inside the image; targets outside it are recorded in
/// [`Cfg::external_sites`] for a policy layer (the `verifier` crate) to
/// judge, and indirect/far transfer sites are likewise surfaced rather
/// than resolved here.
#[derive(Debug, Clone, Default)]
pub struct Cfg {
    /// Every reachable instruction, keyed by offset.
    pub lines: BTreeMap<u32, Line>,
    /// Basic blocks keyed by leader offset.
    pub blocks: BTreeMap<u32, Block>,
    /// The entry offsets the traversal started from.
    pub entries: Vec<u32>,
    /// `(site, target)` for static branches/calls leaving the image;
    /// `target` is image-relative and may be negative.
    pub external_sites: Vec<(u32, i64)>,
    /// Offsets of register-/memory-indirect transfers
    /// (`jmp reg`/`call reg`/`jmp [m]`/`call [m]`).
    pub indirect_sites: Vec<u32>,
    /// Offsets of far calls (`lcall sel, off`).
    pub far_sites: Vec<u32>,
    /// Offsets of software interrupts (`int n`).
    pub int_sites: Vec<u32>,
}

impl Cfg {
    /// Recovers the CFG of `buf` reachable from `entries`.
    pub fn build(buf: &[u8], entries: &[u32]) -> Result<Cfg, CfgError> {
        if entries.is_empty() {
            return Err(CfgError::NoEntry);
        }
        for &e in entries {
            if e as usize >= buf.len() {
                return Err(CfgError::EntryOutOfRange(e));
            }
        }
        let mut cfg = Cfg {
            entries: entries.to_vec(),
            ..Cfg::default()
        };
        let mut leaders: BTreeSet<u32> = entries.iter().copied().collect();
        let mut work: Vec<u32> = entries.to_vec();
        while let Some(off) = work.pop() {
            if cfg.lines.contains_key(&off) {
                continue;
            }
            let (insn, len) = decode(&buf[off as usize..])
                .map_err(|cause| CfgError::Decode { offset: off, cause })?;
            let line = Line {
                offset: off,
                insn,
                len,
            };
            let end = off + len as u32;
            let mut follow = |cfg: &mut Cfg, work: &mut Vec<u32>, site: u32, target: i64| {
                if target >= 0 && (target as usize) < buf.len() {
                    leaders.insert(target as u32);
                    work.push(target as u32);
                } else {
                    cfg.external_sites.push((site, target));
                }
            };
            let falls_through = match insn {
                Insn::Jmp(_) => {
                    follow(&mut cfg, &mut work, off, branch_target(&line).unwrap());
                    false
                }
                Insn::Jcc(..) | Insn::Call(_) => {
                    follow(&mut cfg, &mut work, off, branch_target(&line).unwrap());
                    true
                }
                Insn::JmpReg(_) | Insn::JmpM(_) => {
                    cfg.indirect_sites.push(off);
                    false
                }
                Insn::CallReg(_) | Insn::CallM(_) => {
                    cfg.indirect_sites.push(off);
                    true
                }
                Insn::Lcall(..) => {
                    cfg.far_sites.push(off);
                    true
                }
                Insn::Int(_) => {
                    cfg.int_sites.push(off);
                    true
                }
                Insn::Ret
                | Insn::RetN(_)
                | Insn::Lret
                | Insn::LretN(_)
                | Insn::Iret
                | Insn::Hlt => false,
                _ => true,
            };
            if falls_through {
                if insn.is_control() {
                    // The instruction after a transfer starts a new block.
                    leaders.insert(end);
                }
                work.push(end);
            }
            cfg.lines.insert(off, line);
        }
        cfg.build_blocks(&leaders);
        Ok(cfg)
    }

    fn build_blocks(&mut self, leaders: &BTreeSet<u32>) {
        let mut cur: Vec<Line> = Vec::new();
        let flush = |cur: &mut Vec<Line>, blocks: &mut BTreeMap<u32, Block>| {
            if let (Some(first), Some(last)) = (cur.first(), cur.last()) {
                blocks.insert(
                    first.offset,
                    Block {
                        start: first.offset,
                        end: last.offset + last.len as u32,
                        insns: std::mem::take(cur),
                        succs: Vec::new(),
                    },
                );
            }
        };
        for line in self.lines.values() {
            let contiguous = cur
                .last()
                .is_some_and(|p| p.offset + p.len as u32 == line.offset);
            if !cur.is_empty() && (leaders.contains(&line.offset) || !contiguous) {
                flush(&mut cur, &mut self.blocks);
            }
            let ends_block = line.insn.is_control();
            cur.push(line.clone());
            if ends_block {
                flush(&mut cur, &mut self.blocks);
            }
        }
        flush(&mut cur, &mut self.blocks);

        // Static successor edges, judged from each block's final instruction.
        let mut edges: Vec<(u32, Vec<u32>)> = Vec::new();
        for block in self.blocks.values() {
            let last = block.insns.last().expect("blocks are non-empty");
            let mut succs = Vec::new();
            let fall = block.end;
            let target =
                branch_target(last).filter(|&t| t >= 0 && self.lines.contains_key(&(t as u32)));
            match last.insn {
                Insn::Jmp(_) => succs.extend(target.map(|t| t as u32)),
                Insn::Jcc(..) | Insn::Call(_) => {
                    succs.extend(target.map(|t| t as u32));
                    if self.lines.contains_key(&fall) {
                        succs.push(fall);
                    }
                }
                Insn::CallReg(_) | Insn::CallM(_) | Insn::Lcall(..) | Insn::Int(_) => {
                    if self.lines.contains_key(&fall) {
                        succs.push(fall);
                    }
                }
                Insn::JmpReg(_)
                | Insn::JmpM(_)
                | Insn::Ret
                | Insn::RetN(_)
                | Insn::Lret
                | Insn::LretN(_)
                | Insn::Iret
                | Insn::Hlt => {}
                // Block ended because the next instruction is a leader.
                _ => {
                    if self.lines.contains_key(&fall) {
                        succs.push(fall);
                    }
                }
            }
            succs.sort_unstable();
            succs.dedup();
            edges.push((block.start, succs));
        }
        for (start, succs) in edges {
            self.blocks.get_mut(&start).expect("block exists").succs = succs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::Assembler;
    use crate::encode::encode_program;
    use crate::isa::{Mem, Reg, SegReg, Src};
    use std::collections::BTreeMap;

    #[test]
    fn formats_are_reparsable_by_the_assembler() {
        // Everything the disassembler prints for non-branch instructions
        // should assemble back to the same encoding.
        let prog = vec![
            Insn::Mov(Reg::Eax, Src::Imm(5)),
            Insn::Load(Reg::Ebx, Mem::based(Reg::Ebp, 8)),
            Insn::Store(Mem::based(Reg::Esp, -4), Src::Reg(Reg::Ecx)),
            Insn::MovToSeg(SegReg::Ds, Reg::Eax),
            Insn::Push(Src::Reg(Reg::Esi)),
            Insn::Pop(Reg::Edi),
            Insn::Ret,
        ];
        let text: String = prog
            .iter()
            .map(|i| format!("{}\n", format_insn(i)))
            .collect();
        let obj = Assembler::assemble(&text).unwrap();
        assert_eq!(
            obj.link(0, &BTreeMap::new()).unwrap(),
            encode_program(&prog)
        );
    }

    #[test]
    fn disassemble_reports_offsets_and_lengths() {
        let prog = vec![Insn::Nop, Insn::Mov(Reg::Eax, Src::Imm(1)), Insn::Ret];
        let bytes = encode_program(&prog);
        let lines = disassemble(&bytes).unwrap();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0].offset, 0);
        assert_eq!(lines[1].offset, 1);
        assert_eq!(lines[2].offset, 1 + lines[1].len as u32);
        assert_eq!(lines.iter().map(|l| l.len).sum::<usize>(), bytes.len());
    }

    #[test]
    fn text_output_contains_base_addresses() {
        let bytes = encode_program(&[Insn::Nop]);
        let text = disassemble_text(&bytes, 0x400).unwrap();
        assert!(text.contains("00000400"));
        assert!(text.contains("nop"));
    }
}

#[cfg(test)]
mod roundtrip_props {
    use super::*;
    use crate::asm::Assembler;
    use crate::encode::encode_program;
    use crate::isa::{AluOp, Cond, Mem, Reg, SegReg, Src};
    use seedrng::SeedRng;
    use std::collections::BTreeMap;

    fn arb_reg(r: &mut SeedRng) -> Reg {
        Reg::from_u8(r.gen_range(0, 8) as u8).unwrap()
    }

    fn arb_segreg(r: &mut SeedRng) -> SegReg {
        SegReg::from_u8(r.gen_range(0, 4) as u8).unwrap()
    }

    fn arb_mem(r: &mut SeedRng) -> Mem {
        Mem {
            seg: if r.gen_bool(0.5) {
                Some(arb_segreg(r))
            } else {
                None
            },
            base: if r.gen_bool(0.5) {
                Some(arb_reg(r))
            } else {
                None
            },
            disp: r.gen_range(0, 0x2000) as i32 - 0x1000,
        }
    }

    fn arb_src(r: &mut SeedRng) -> Src {
        if r.gen_bool(0.5) {
            Src::Reg(arb_reg(r))
        } else {
            Src::Imm(r.gen_range(0, 0x20000) as i32 - 0x10000)
        }
    }

    /// Instructions whose printed form the assembler accepts verbatim
    /// (branches print raw displacements, which the text syntax expresses
    /// through labels instead, so they are excluded).
    fn arb_printable(r: &mut SeedRng) -> Insn {
        match r.gen_range(0, 19) {
            0 => Insn::Nop,
            1 => Insn::Hlt,
            2 => Insn::Ret,
            3 => Insn::Rdtsc,
            4 => Insn::Mov(arb_reg(r), arb_src(r)),
            5 => Insn::Load(arb_reg(r), arb_mem(r)),
            6 => Insn::Store(arb_mem(r), arb_src(r)),
            7 => Insn::LoadB(arb_reg(r), arb_mem(r)),
            8 => Insn::StoreB(arb_mem(r), arb_reg(r)),
            9 => {
                let mut s = arb_segreg(r);
                if s == SegReg::Cs {
                    s = SegReg::Ds; // cs is unloadable
                }
                Insn::MovToSeg(s, arb_reg(r))
            }
            10 => Insn::MovFromSeg(arb_reg(r), arb_segreg(r)),
            11 => Insn::Alu(
                AluOp::from_u8(r.gen_range(0, 9) as u8).unwrap(),
                arb_reg(r),
                arb_src(r),
            ),
            12 => Insn::Pop(arb_reg(r)),
            13 => Insn::Push(Src::Reg(arb_reg(r))),
            14 => Insn::PushSeg(arb_segreg(r)),
            15 => Insn::PushM(arb_mem(r)),
            16 => Insn::PopM(arb_mem(r)),
            17 => Insn::RetN(r.gen_range(0, 0x100) as u16),
            _ => Insn::Int(r.next_u32() as u8),
        }
    }

    /// Disassembling then re-assembling reproduces the exact encoding
    /// for every printable instruction.
    #[test]
    fn seeded_disasm_asm_roundtrip() {
        let mut r = SeedRng::new(0xD15A);
        for _ in 0..150 {
            let n = 1 + r.gen_range(0, 15) as usize;
            let prog: Vec<Insn> = (0..n).map(|_| arb_printable(&mut r)).collect();
            let bytes = encode_program(&prog);
            let text: String = prog
                .iter()
                .map(|i| format!("{}\n", format_insn(i)))
                .collect();
            let obj = Assembler::assemble(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
            let relinked = obj.link(0, &BTreeMap::new()).unwrap();
            assert_eq!(relinked, bytes, "{text}");
        }
    }

    /// The cond-suffix table stays in sync between formatter and parser.
    #[test]
    fn all_branch_mnemonics_parse() {
        for c in Cond::ALL {
            let src = format!("top:\nj{} top\n", c.name());
            Assembler::assemble(&src).unwrap();
        }
    }

    fn arb_cond(r: &mut SeedRng) -> Cond {
        Cond::from_u8(r.gen_range(0, Cond::ALL.len() as u32) as u8).unwrap()
    }

    /// Every instruction the ISA can express, including the branch,
    /// far-transfer and privileged forms the printable subset omits.
    fn arb_any(r: &mut SeedRng) -> Insn {
        match r.gen_range(0, 42) {
            0 => Insn::Nop,
            1 => Insn::Hlt,
            2 => Insn::Mov(arb_reg(r), arb_src(r)),
            3 => Insn::Load(arb_reg(r), arb_mem(r)),
            4 => Insn::Store(arb_mem(r), arb_src(r)),
            5 => Insn::LoadB(arb_reg(r), arb_mem(r)),
            6 => Insn::StoreB(arb_mem(r), arb_reg(r)),
            7 => Insn::LoadW(arb_reg(r), arb_mem(r)),
            8 => Insn::StoreW(arb_mem(r), arb_reg(r)),
            9 => Insn::MovToSeg(arb_segreg(r), arb_reg(r)),
            10 => Insn::MovFromSeg(arb_reg(r), arb_segreg(r)),
            11 => Insn::Lea(arb_reg(r), arb_mem(r)),
            12 => Insn::Push(arb_src(r)),
            13 => Insn::PushM(arb_mem(r)),
            14 => Insn::PushSeg(arb_segreg(r)),
            15 => Insn::Pop(arb_reg(r)),
            16 => Insn::PopM(arb_mem(r)),
            17 => Insn::PopSeg(arb_segreg(r)),
            18 => Insn::Alu(
                AluOp::from_u8(r.gen_range(0, 9) as u8).unwrap(),
                arb_reg(r),
                arb_src(r),
            ),
            19 => Insn::AluM(
                AluOp::from_u8(r.gen_range(0, 9) as u8).unwrap(),
                arb_reg(r),
                arb_mem(r),
            ),
            20 => Insn::Neg(arb_reg(r)),
            21 => Insn::Not(arb_reg(r)),
            22 => Insn::Inc(arb_reg(r)),
            23 => Insn::Dec(arb_reg(r)),
            24 => Insn::Cmp(arb_reg(r), arb_src(r)),
            25 => Insn::CmpM(arb_mem(r), arb_src(r)),
            26 => Insn::Test(arb_reg(r), arb_src(r)),
            27 => Insn::Jmp(r.next_u32() as i32),
            28 => Insn::JmpReg(arb_reg(r)),
            29 => Insn::JmpM(arb_mem(r)),
            30 => Insn::Jcc(arb_cond(r), r.next_u32() as i32),
            31 => Insn::Call(r.next_u32() as i32),
            32 => Insn::CallReg(arb_reg(r)),
            33 => Insn::CallM(arb_mem(r)),
            34 => Insn::Ret,
            35 => Insn::RetN(r.next_u32() as u16),
            36 => Insn::Lcall(r.next_u32() as u16, r.next_u32()),
            37 => Insn::Lret,
            38 => Insn::LretN(r.next_u32() as u16),
            39 => Insn::Int(r.next_u32() as u8),
            40 => Insn::Iret,
            _ => Insn::Rdtsc,
        }
    }

    /// encode→decode is the identity over the *whole* ISA: the
    /// disassembler view the verifier analyzes is byte-for-byte the
    /// instruction stream the simulator will execute.
    #[test]
    fn seeded_encode_decode_roundtrip_full_isa() {
        let mut r = SeedRng::new(0x5EED_CF61);
        for _ in 0..400 {
            let n = 1 + r.gen_range(0, 24) as usize;
            let prog: Vec<Insn> = (0..n).map(|_| arb_any(&mut r)).collect();
            let bytes = encode_program(&prog);
            let lines = disassemble(&bytes).unwrap_or_else(|e| panic!("{e:?}\n{prog:?}"));
            let decoded: Vec<Insn> = lines.iter().map(|l| l.insn).collect();
            assert_eq!(decoded, prog);
            // Offsets and lengths tile the buffer exactly.
            let mut pos = 0u32;
            for l in &lines {
                assert_eq!(l.offset, pos);
                pos += l.len as u32;
            }
            assert_eq!(pos as usize, bytes.len());
        }
    }
}

#[cfg(test)]
mod cfg_tests {
    use super::*;
    use crate::isa::{Cond, Mem, Reg, Src};
    use crate::obj::CodeBuilder;

    #[test]
    fn straight_line_is_one_block() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Mov(Reg::Eax, Src::Imm(1)));
        b.emit(Insn::Inc(Reg::Eax));
        b.emit(Insn::Ret);
        let buf = b.finish().unwrap().bytes;
        let cfg = Cfg::build(&buf, &[0]).unwrap();
        assert_eq!(cfg.lines.len(), 3);
        assert_eq!(cfg.blocks.len(), 1);
        let blk = &cfg.blocks[&0];
        assert_eq!(blk.end as usize, buf.len());
        assert!(blk.succs.is_empty());
    }

    #[test]
    fn branches_split_blocks_and_edges_connect_them() {
        let mut b = CodeBuilder::new();
        b.label("entry").unwrap();
        b.emit(Insn::Cmp(Reg::Eax, Src::Imm(0)));
        b.jcc_label(Cond::E, "zero");
        b.emit(Insn::Dec(Reg::Eax));
        b.label("zero").unwrap();
        b.emit(Insn::Ret);
        let obj = b.finish().unwrap();
        let zero = obj.symbol("zero").unwrap();
        let cfg = Cfg::build(&obj.bytes, &[0]).unwrap();
        assert_eq!(cfg.blocks.len(), 3);
        let first = &cfg.blocks[&0];
        assert_eq!(first.succs.len(), 2, "taken + fallthrough");
        assert!(first.succs.contains(&zero));
        assert!(cfg.blocks[&zero].succs.is_empty());
    }

    #[test]
    fn data_after_ret_is_not_decoded() {
        let mut b = CodeBuilder::new();
        b.emit(Insn::Ret);
        // Opcode 0xFF does not exist; a linear sweep would choke here.
        b.bytes(&[0xFF, 0xFF, 0xFF, 0xFF]);
        let buf = b.finish().unwrap().bytes;
        assert!(disassemble(&buf).is_err());
        let cfg = Cfg::build(&buf, &[0]).unwrap();
        assert_eq!(cfg.lines.len(), 1);
    }

    #[test]
    fn reachable_garbage_is_a_decode_error() {
        let mut b = CodeBuilder::new();
        b.jmp_label("lab");
        b.label("lab").unwrap();
        b.bytes(&[0xEE]);
        let buf = b.finish().unwrap().bytes;
        let err = Cfg::build(&buf, &[0]).unwrap_err();
        assert!(matches!(err, CfgError::Decode { offset: 5, .. }), "{err:?}");
    }

    #[test]
    fn external_branches_and_indirect_sites_are_recorded() {
        let buf = crate::encode::encode_program(&[Insn::Call(0x1000), Insn::JmpM(Mem::abs(0x40))]);
        let cfg = Cfg::build(&buf, &[0]).unwrap();
        assert_eq!(cfg.external_sites.len(), 1);
        assert_eq!(cfg.external_sites[0].0, 0);
        assert_eq!(cfg.indirect_sites, vec![5]);
    }

    #[test]
    fn entry_out_of_range_and_no_entry_error() {
        let buf = crate::encode::encode_program(&[Insn::Ret]);
        assert_eq!(Cfg::build(&buf, &[]).unwrap_err(), CfgError::NoEntry);
        assert_eq!(
            Cfg::build(&buf, &[9]).unwrap_err(),
            CfgError::EntryOutOfRange(9)
        );
    }
}
