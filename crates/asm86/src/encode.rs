//! Binary encoding and decoding of instructions.
//!
//! The encoding is a regular scheme — one opcode byte followed by
//! fixed-layout operands — rather than genuine x86 machine code. Each
//! instruction decodes to exactly the [`Insn`] that produced it, which the
//! property tests in this module verify by round-tripping random
//! instructions.

use crate::isa::{AluOp, Cond, Insn, Mem, Reg, SegReg, Src};

/// Errors produced while decoding an instruction stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The opcode byte does not name an instruction.
    BadOpcode(u8),
    /// An operand field held an out-of-range value.
    BadOperand,
    /// The instruction was truncated by the end of the buffer.
    Truncated,
}

impl core::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode {b:#04x}"),
            DecodeError::BadOperand => write!(f, "invalid operand encoding"),
            DecodeError::Truncated => write!(f, "truncated instruction"),
        }
    }
}

impl std::error::Error for DecodeError {}

mod op {
    pub const NOP: u8 = 0x00;
    pub const HLT: u8 = 0x01;
    pub const MOV: u8 = 0x02;
    pub const LOAD: u8 = 0x03;
    pub const STORE: u8 = 0x04;
    pub const LOADB: u8 = 0x05;
    pub const STOREB: u8 = 0x06;
    pub const LOADW: u8 = 0x07;
    pub const STOREW: u8 = 0x08;
    pub const MOV_TO_SEG: u8 = 0x09;
    pub const MOV_FROM_SEG: u8 = 0x0A;
    pub const LEA: u8 = 0x0B;
    pub const PUSH: u8 = 0x0C;
    pub const PUSHM: u8 = 0x0D;
    pub const PUSHSEG: u8 = 0x0E;
    pub const POP: u8 = 0x0F;
    pub const POPM: u8 = 0x10;
    pub const POPSEG: u8 = 0x11;
    pub const ALU: u8 = 0x12;
    pub const ALUM: u8 = 0x13;
    pub const NEG: u8 = 0x14;
    pub const NOT: u8 = 0x15;
    pub const INC: u8 = 0x16;
    pub const DEC: u8 = 0x17;
    pub const CMP: u8 = 0x18;
    pub const CMPM: u8 = 0x19;
    pub const TEST: u8 = 0x1A;
    pub const JMP: u8 = 0x1B;
    pub const JMPREG: u8 = 0x1C;
    pub const JCC: u8 = 0x1D;
    pub const CALL: u8 = 0x1E;
    pub const CALLREG: u8 = 0x1F;
    pub const RET: u8 = 0x20;
    pub const RETN: u8 = 0x21;
    pub const LCALL: u8 = 0x22;
    pub const LRET: u8 = 0x23;
    pub const LRETN: u8 = 0x24;
    pub const INT: u8 = 0x25;
    pub const IRET: u8 = 0x26;
    pub const RDTSC: u8 = 0x27;
    pub const JMPM: u8 = 0x28;
    pub const CALLM: u8 = 0x29;
    pub const WRPKRU: u8 = 0x2A;
    pub const RDPKRU: u8 = 0x2B;
}

const SRC_REG: u8 = 0;
const SRC_IMM: u8 = 1;

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_src(out: &mut Vec<u8>, s: Src) {
    match s {
        Src::Reg(r) => {
            out.push(SRC_REG);
            out.push(r as u8);
        }
        Src::Imm(v) => {
            out.push(SRC_IMM);
            put_u32(out, v as u32);
        }
    }
}

fn put_mem(out: &mut Vec<u8>, m: Mem) {
    let mut flags = 0u8;
    if let Some(b) = m.base {
        flags |= 0x08 | (b as u8);
    }
    if let Some(s) = m.seg {
        flags |= 0x40 | ((s as u8) << 4);
    }
    out.push(flags);
    put_u32(out, m.disp as u32);
}

/// Appends the encoding of `insn` to `out` and returns its length in bytes.
pub fn encode_into(insn: &Insn, out: &mut Vec<u8>) -> usize {
    let start = out.len();
    match *insn {
        Insn::Nop => out.push(op::NOP),
        Insn::Hlt => out.push(op::HLT),
        Insn::Mov(r, s) => {
            out.push(op::MOV);
            out.push(r as u8);
            put_src(out, s);
        }
        Insn::Load(r, m) => {
            out.push(op::LOAD);
            out.push(r as u8);
            put_mem(out, m);
        }
        Insn::Store(m, s) => {
            out.push(op::STORE);
            put_mem(out, m);
            put_src(out, s);
        }
        Insn::LoadB(r, m) => {
            out.push(op::LOADB);
            out.push(r as u8);
            put_mem(out, m);
        }
        Insn::StoreB(m, r) => {
            out.push(op::STOREB);
            put_mem(out, m);
            out.push(r as u8);
        }
        Insn::LoadW(r, m) => {
            out.push(op::LOADW);
            out.push(r as u8);
            put_mem(out, m);
        }
        Insn::StoreW(m, r) => {
            out.push(op::STOREW);
            put_mem(out, m);
            out.push(r as u8);
        }
        Insn::MovToSeg(sr, r) => {
            out.push(op::MOV_TO_SEG);
            out.push(sr as u8);
            out.push(r as u8);
        }
        Insn::MovFromSeg(r, sr) => {
            out.push(op::MOV_FROM_SEG);
            out.push(r as u8);
            out.push(sr as u8);
        }
        Insn::Lea(r, m) => {
            out.push(op::LEA);
            out.push(r as u8);
            put_mem(out, m);
        }
        Insn::Push(s) => {
            out.push(op::PUSH);
            put_src(out, s);
        }
        Insn::PushM(m) => {
            out.push(op::PUSHM);
            put_mem(out, m);
        }
        Insn::PushSeg(sr) => {
            out.push(op::PUSHSEG);
            out.push(sr as u8);
        }
        Insn::Pop(r) => {
            out.push(op::POP);
            out.push(r as u8);
        }
        Insn::PopM(m) => {
            out.push(op::POPM);
            put_mem(out, m);
        }
        Insn::PopSeg(sr) => {
            out.push(op::POPSEG);
            out.push(sr as u8);
        }
        Insn::Alu(o, r, s) => {
            out.push(op::ALU);
            out.push(o as u8);
            out.push(r as u8);
            put_src(out, s);
        }
        Insn::AluM(o, r, m) => {
            out.push(op::ALUM);
            out.push(o as u8);
            out.push(r as u8);
            put_mem(out, m);
        }
        Insn::Neg(r) => {
            out.push(op::NEG);
            out.push(r as u8);
        }
        Insn::Not(r) => {
            out.push(op::NOT);
            out.push(r as u8);
        }
        Insn::Inc(r) => {
            out.push(op::INC);
            out.push(r as u8);
        }
        Insn::Dec(r) => {
            out.push(op::DEC);
            out.push(r as u8);
        }
        Insn::Cmp(r, s) => {
            out.push(op::CMP);
            out.push(r as u8);
            put_src(out, s);
        }
        Insn::CmpM(m, s) => {
            out.push(op::CMPM);
            put_mem(out, m);
            put_src(out, s);
        }
        Insn::Test(r, s) => {
            out.push(op::TEST);
            out.push(r as u8);
            put_src(out, s);
        }
        Insn::Jmp(rel) => {
            out.push(op::JMP);
            put_u32(out, rel as u32);
        }
        Insn::JmpReg(r) => {
            out.push(op::JMPREG);
            out.push(r as u8);
        }
        Insn::Jcc(c, rel) => {
            out.push(op::JCC);
            out.push(c as u8);
            put_u32(out, rel as u32);
        }
        Insn::Call(rel) => {
            out.push(op::CALL);
            put_u32(out, rel as u32);
        }
        Insn::CallReg(r) => {
            out.push(op::CALLREG);
            out.push(r as u8);
        }
        Insn::Ret => out.push(op::RET),
        Insn::RetN(n) => {
            out.push(op::RETN);
            put_u16(out, n);
        }
        Insn::Lcall(sel, off) => {
            out.push(op::LCALL);
            put_u16(out, sel);
            put_u32(out, off);
        }
        Insn::Lret => out.push(op::LRET),
        Insn::LretN(n) => {
            out.push(op::LRETN);
            put_u16(out, n);
        }
        Insn::Int(v) => {
            out.push(op::INT);
            out.push(v);
        }
        Insn::Iret => out.push(op::IRET),
        Insn::Rdtsc => out.push(op::RDTSC),
        Insn::JmpM(m) => {
            out.push(op::JMPM);
            put_mem(out, m);
        }
        Insn::CallM(m) => {
            out.push(op::CALLM);
            put_mem(out, m);
        }
        Insn::Wrpkru(s) => {
            out.push(op::WRPKRU);
            put_src(out, s);
        }
        Insn::Rdpkru(r) => {
            out.push(op::RDPKRU);
            out.push(r as u8);
        }
    }
    out.len() - start
}

/// Encodes a single instruction into a fresh buffer.
pub fn encode(insn: &Insn) -> Vec<u8> {
    let mut out = Vec::with_capacity(12);
    encode_into(insn, &mut out);
    out
}

/// Encodes a program (a straight-line instruction sequence).
pub fn encode_program(insns: &[Insn]) -> Vec<u8> {
    let mut out = Vec::with_capacity(insns.len() * 6);
    for i in insns {
        encode_into(i, &mut out);
    }
    out
}

struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.buf.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u16(&mut self) -> Result<u16, DecodeError> {
        let lo = self.u8()?;
        let hi = self.u8()?;
        Ok(u16::from_le_bytes([lo, hi]))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        let b0 = self.u8()?;
        let b1 = self.u8()?;
        let b2 = self.u8()?;
        let b3 = self.u8()?;
        Ok(u32::from_le_bytes([b0, b1, b2, b3]))
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        Reg::from_u8(self.u8()?).ok_or(DecodeError::BadOperand)
    }

    fn segreg(&mut self) -> Result<SegReg, DecodeError> {
        SegReg::from_u8(self.u8()?).ok_or(DecodeError::BadOperand)
    }

    fn src(&mut self) -> Result<Src, DecodeError> {
        match self.u8()? {
            SRC_REG => Ok(Src::Reg(self.reg()?)),
            SRC_IMM => Ok(Src::Imm(self.u32()? as i32)),
            _ => Err(DecodeError::BadOperand),
        }
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let flags = self.u8()?;
        if flags & 0x80 != 0 {
            return Err(DecodeError::BadOperand);
        }
        let base = if flags & 0x08 != 0 {
            Some(Reg::from_u8(flags & 0x07).ok_or(DecodeError::BadOperand)?)
        } else if flags & 0x07 != 0 {
            return Err(DecodeError::BadOperand);
        } else {
            None
        };
        let seg = if flags & 0x40 != 0 {
            Some(SegReg::from_u8((flags >> 4) & 0x03).ok_or(DecodeError::BadOperand)?)
        } else if flags & 0x30 != 0 {
            return Err(DecodeError::BadOperand);
        } else {
            None
        };
        let disp = self.u32()? as i32;
        Ok(Mem { seg, base, disp })
    }
}

/// Decodes one instruction from the start of `buf`.
///
/// Returns the instruction and the number of bytes it occupied.
pub fn decode(buf: &[u8]) -> Result<(Insn, usize), DecodeError> {
    let mut c = Cursor { buf, pos: 0 };
    let opcode = c.u8()?;
    let insn = match opcode {
        op::NOP => Insn::Nop,
        op::HLT => Insn::Hlt,
        op::MOV => Insn::Mov(c.reg()?, c.src()?),
        op::LOAD => Insn::Load(c.reg()?, c.mem()?),
        op::STORE => Insn::Store(c.mem()?, c.src()?),
        op::LOADB => Insn::LoadB(c.reg()?, c.mem()?),
        op::STOREB => Insn::StoreB(c.mem()?, c.reg()?),
        op::LOADW => Insn::LoadW(c.reg()?, c.mem()?),
        op::STOREW => Insn::StoreW(c.mem()?, c.reg()?),
        op::MOV_TO_SEG => Insn::MovToSeg(c.segreg()?, c.reg()?),
        op::MOV_FROM_SEG => Insn::MovFromSeg(c.reg()?, c.segreg()?),
        op::LEA => Insn::Lea(c.reg()?, c.mem()?),
        op::PUSH => Insn::Push(c.src()?),
        op::PUSHM => Insn::PushM(c.mem()?),
        op::PUSHSEG => Insn::PushSeg(c.segreg()?),
        op::POP => Insn::Pop(c.reg()?),
        op::POPM => Insn::PopM(c.mem()?),
        op::POPSEG => Insn::PopSeg(c.segreg()?),
        op::ALU => {
            let o = AluOp::from_u8(c.u8()?).ok_or(DecodeError::BadOperand)?;
            Insn::Alu(o, c.reg()?, c.src()?)
        }
        op::ALUM => {
            let o = AluOp::from_u8(c.u8()?).ok_or(DecodeError::BadOperand)?;
            Insn::AluM(o, c.reg()?, c.mem()?)
        }
        op::NEG => Insn::Neg(c.reg()?),
        op::NOT => Insn::Not(c.reg()?),
        op::INC => Insn::Inc(c.reg()?),
        op::DEC => Insn::Dec(c.reg()?),
        op::CMP => Insn::Cmp(c.reg()?, c.src()?),
        op::CMPM => Insn::CmpM(c.mem()?, c.src()?),
        op::TEST => Insn::Test(c.reg()?, c.src()?),
        op::JMP => Insn::Jmp(c.u32()? as i32),
        op::JMPREG => Insn::JmpReg(c.reg()?),
        op::JCC => {
            let cond = Cond::from_u8(c.u8()?).ok_or(DecodeError::BadOperand)?;
            Insn::Jcc(cond, c.u32()? as i32)
        }
        op::CALL => Insn::Call(c.u32()? as i32),
        op::CALLREG => Insn::CallReg(c.reg()?),
        op::RET => Insn::Ret,
        op::RETN => Insn::RetN(c.u16()?),
        op::LCALL => Insn::Lcall(c.u16()?, c.u32()?),
        op::LRET => Insn::Lret,
        op::LRETN => Insn::LretN(c.u16()?),
        op::INT => Insn::Int(c.u8()?),
        op::IRET => Insn::Iret,
        op::RDTSC => Insn::Rdtsc,
        op::JMPM => Insn::JmpM(c.mem()?),
        op::CALLM => Insn::CallM(c.mem()?),
        op::WRPKRU => Insn::Wrpkru(c.src()?),
        op::RDPKRU => Insn::Rdpkru(c.reg()?),
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((insn, c.pos))
}

/// Decodes an entire buffer into an instruction sequence.
///
/// Fails if any instruction is malformed or if the buffer ends mid
/// instruction.
pub fn decode_program(buf: &[u8]) -> Result<Vec<Insn>, DecodeError> {
    let mut out = Vec::new();
    let mut pos = 0;
    while pos < buf.len() {
        let (insn, len) = decode(&buf[pos..])?;
        out.push(insn);
        pos += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seedrng::SeedRng;

    fn sample_insns() -> Vec<Insn> {
        use crate::isa::Reg::*;
        vec![
            Insn::Nop,
            Insn::Hlt,
            Insn::Mov(Eax, Src::Imm(-5)),
            Insn::Mov(Ebx, Src::Reg(Ecx)),
            Insn::Load(Edx, Mem::based(Esp, 4)),
            Insn::Store(Mem::abs(0x1000), Src::Reg(Eax)),
            Insn::Store(Mem::based(Ebp, -8), Src::Imm(7)),
            Insn::LoadB(Eax, Mem::based(Esi, 0)),
            Insn::StoreB(Mem::based(Edi, 1), Ecx),
            Insn::LoadW(Eax, Mem::based(Esi, 2)),
            Insn::StoreW(Mem::based(Edi, 2), Ecx),
            Insn::MovToSeg(SegReg::Ds, Eax),
            Insn::MovFromSeg(Ebx, SegReg::Cs),
            Insn::Lea(Eax, Mem::based(Ebx, 12).with_seg(SegReg::Es)),
            Insn::Push(Src::Imm(0x23)),
            Insn::PushM(Mem::based(Esp, 4)),
            Insn::PushSeg(SegReg::Ss),
            Insn::Pop(Eax),
            Insn::PopM(Mem::abs(0x2000)),
            Insn::PopSeg(SegReg::Es),
            Insn::Alu(AluOp::Add, Eax, Src::Imm(1)),
            Insn::Alu(AluOp::Imul, Ecx, Src::Reg(Edx)),
            Insn::AluM(AluOp::Xor, Eax, Mem::based(Ebx, 4)),
            Insn::Neg(Eax),
            Insn::Not(Ebx),
            Insn::Inc(Esi),
            Insn::Dec(Edi),
            Insn::Cmp(Eax, Src::Imm(0)),
            Insn::CmpM(Mem::based(Eax, 0), Src::Imm(42)),
            Insn::Test(Ebx, Src::Reg(Ebx)),
            Insn::Jmp(-10),
            Insn::JmpReg(Eax),
            Insn::Jcc(Cond::Ne, 24),
            Insn::Call(100),
            Insn::CallReg(Edx),
            Insn::Ret,
            Insn::RetN(8),
            Insn::Lcall(0x1B, 0xdead_beef),
            Insn::Lret,
            Insn::LretN(4),
            Insn::Int(0x80),
            Insn::Iret,
            Insn::Rdtsc,
            Insn::JmpM(Mem::abs(0x3000)),
            Insn::CallM(Mem::based(Ebx, 8)),
            Insn::Wrpkru(Src::Imm(0x0000_000C)),
            Insn::Wrpkru(Src::Reg(Ecx)),
            Insn::Rdpkru(Eax),
        ]
    }

    #[test]
    fn roundtrip_every_variant() {
        for insn in sample_insns() {
            let bytes = encode(&insn);
            let (back, len) = decode(&bytes).unwrap();
            assert_eq!(back, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn roundtrip_program() {
        let prog = sample_insns();
        let bytes = encode_program(&prog);
        let back = decode_program(&bytes).unwrap();
        assert_eq!(back, prog);
    }

    #[test]
    fn truncated_stream_is_an_error() {
        let bytes = encode(&Insn::Mov(Reg::Eax, Src::Imm(12345)));
        for cut in 1..bytes.len() {
            assert_eq!(decode(&bytes[..cut]).unwrap_err(), DecodeError::Truncated);
        }
    }

    #[test]
    fn bad_opcode_is_an_error() {
        assert_eq!(decode(&[0xFF]).unwrap_err(), DecodeError::BadOpcode(0xFF));
    }

    #[test]
    fn empty_buffer_is_truncated() {
        assert_eq!(decode(&[]).unwrap_err(), DecodeError::Truncated);
    }

    fn arb_reg(r: &mut SeedRng) -> Reg {
        Reg::from_u8(r.gen_range(0, 8) as u8).unwrap()
    }

    fn arb_segreg(r: &mut SeedRng) -> SegReg {
        SegReg::from_u8(r.gen_range(0, 4) as u8).unwrap()
    }

    fn arb_i32(r: &mut SeedRng) -> i32 {
        r.next_u32() as i32
    }

    fn arb_src(r: &mut SeedRng) -> Src {
        if r.gen_bool(0.5) {
            Src::Reg(arb_reg(r))
        } else {
            Src::Imm(arb_i32(r))
        }
    }

    fn arb_mem(r: &mut SeedRng) -> Mem {
        Mem {
            seg: if r.gen_bool(0.5) {
                Some(arb_segreg(r))
            } else {
                None
            },
            base: if r.gen_bool(0.5) {
                Some(arb_reg(r))
            } else {
                None
            },
            disp: arb_i32(r),
        }
    }

    fn arb_insn(r: &mut SeedRng) -> Insn {
        let alu = AluOp::from_u8(r.gen_range(0, 9) as u8).unwrap();
        let cond = Cond::from_u8(r.gen_range(0, 12) as u8).unwrap();
        match r.gen_range(0, 36) {
            0 => Insn::Nop,
            1 => Insn::Hlt,
            2 => Insn::Mov(arb_reg(r), arb_src(r)),
            3 => Insn::Load(arb_reg(r), arb_mem(r)),
            4 => Insn::Store(arb_mem(r), arb_src(r)),
            5 => Insn::LoadB(arb_reg(r), arb_mem(r)),
            6 => Insn::StoreB(arb_mem(r), arb_reg(r)),
            7 => Insn::MovToSeg(arb_segreg(r), arb_reg(r)),
            8 => Insn::MovFromSeg(arb_reg(r), arb_segreg(r)),
            9 => Insn::Lea(arb_reg(r), arb_mem(r)),
            10 => Insn::Push(arb_src(r)),
            11 => Insn::PushM(arb_mem(r)),
            12 => Insn::PushSeg(arb_segreg(r)),
            13 => Insn::Pop(arb_reg(r)),
            14 => Insn::PopM(arb_mem(r)),
            15 => Insn::PopSeg(arb_segreg(r)),
            16 => Insn::Alu(alu, arb_reg(r), arb_src(r)),
            17 => Insn::AluM(alu, arb_reg(r), arb_mem(r)),
            18 => Insn::Cmp(arb_reg(r), arb_src(r)),
            19 => Insn::CmpM(arb_mem(r), arb_src(r)),
            20 => Insn::Jmp(arb_i32(r)),
            21 => Insn::Jcc(cond, arb_i32(r)),
            22 => Insn::Call(arb_i32(r)),
            23 => Insn::Ret,
            24 => Insn::RetN(r.next_u32() as u16),
            25 => Insn::Lcall(r.next_u32() as u16, r.next_u32()),
            26 => Insn::Lret,
            27 => Insn::LretN(r.next_u32() as u16),
            28 => Insn::Int(r.next_u32() as u8),
            29 => Insn::Iret,
            30 => Insn::Rdtsc,
            31 => Insn::JmpM(arb_mem(r)),
            32 => Insn::CallM(arb_mem(r)),
            33 => Insn::Wrpkru(arb_src(r)),
            34 => Insn::Rdpkru(arb_reg(r)),
            _ => Insn::Test(arb_reg(r), arb_src(r)),
        }
    }

    /// Seeded exhaustive-ish roundtrip: every variant above survives
    /// encode → decode bit-exactly, single and in programs.
    #[test]
    fn seeded_roundtrip() {
        let mut r = SeedRng::new(0x86_86);
        for _ in 0..2000 {
            let insn = arb_insn(&mut r);
            let bytes = encode(&insn);
            let (back, len) = decode(&bytes).unwrap();
            assert_eq!(back, insn);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn seeded_program_roundtrip() {
        let mut r = SeedRng::new(0xCAFE);
        for _ in 0..200 {
            let n = r.gen_range(0, 64) as usize;
            let prog: Vec<Insn> = (0..n).map(|_| arb_insn(&mut r)).collect();
            let bytes = encode_program(&prog);
            let back = decode_program(&bytes).unwrap();
            assert_eq!(back, prog);
        }
    }
}

#[cfg(test)]
mod fuzz {
    use super::*;
    use seedrng::SeedRng;

    /// The decoder is total: arbitrary bytes either decode or return a
    /// structured error — never panic, never read out of bounds.
    #[test]
    fn seeded_decode_never_panics() {
        let mut r = SeedRng::new(0xF0_0D);
        for _ in 0..4000 {
            let n = r.gen_range(0, 64) as usize;
            let mut bytes = vec![0u8; n];
            r.fill_bytes(&mut bytes);
            let mut pos = 0;
            while pos < bytes.len() {
                match decode(&bytes[pos..]) {
                    Ok((_, len)) => {
                        assert!(len > 0 && pos + len <= bytes.len());
                        pos += len;
                    }
                    Err(_) => break,
                }
            }
        }
    }
}
