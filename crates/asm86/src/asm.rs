//! Two-pass text assembler.
//!
//! The accepted syntax is Intel-flavoured:
//!
//! ```text
//! ; string reverse: ptr in [esp+4] after the call
//! reverse:
//!     mov ecx, [esp+4]     ; s
//!     mov esi, ecx
//! scan:
//!     mov eax, byte [esi]  ; strlen loop
//!     cmp eax, 0
//!     je  found
//!     inc esi
//!     jmp scan
//! found:
//!     ret
//! data:
//!     .dd 0, pointer_to_label
//!     .asciz "hello"
//! ```
//!
//! Labels used as immediates or memory displacements produce absolute
//! relocations in the output [`Object`]; branch targets are resolved as
//! `rel32` displacements by the underlying [`CodeBuilder`].

use crate::isa::{AluOp, Cond, Insn, Mem, Reg, SegReg, Src};
use crate::obj::{CodeBuilder, ObjError, Object, Reloc, RelocKind};

/// An assembly error, with the 1-based source line that caused it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number.
    pub line: usize,
    /// Description of the problem.
    pub msg: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

impl From<ObjError> for AsmError {
    fn from(e: ObjError) -> AsmError {
        AsmError {
            line: 0,
            msg: e.to_string(),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Str(String),
    Colon,
    Comma,
    LBracket,
    RBracket,
    Plus,
    Minus,
}

fn tokenize(line: &str) -> Result<Vec<Tok>, String> {
    let mut toks = Vec::new();
    let mut chars = line.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            ';' => break,
            c if c.is_whitespace() => {
                chars.next();
            }
            ':' => {
                chars.next();
                toks.push(Tok::Colon);
            }
            ',' => {
                chars.next();
                toks.push(Tok::Comma);
            }
            '[' => {
                chars.next();
                toks.push(Tok::LBracket);
            }
            ']' => {
                chars.next();
                toks.push(Tok::RBracket);
            }
            '+' => {
                chars.next();
                toks.push(Tok::Plus);
            }
            '-' => {
                chars.next();
                toks.push(Tok::Minus);
            }
            '"' => {
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some('"') => break,
                        Some('\\') => match chars.next() {
                            Some('n') => s.push('\n'),
                            Some('t') => s.push('\t'),
                            Some('0') => s.push('\0'),
                            Some('\\') => s.push('\\'),
                            Some('"') => s.push('"'),
                            other => return Err(format!("bad escape {other:?}")),
                        },
                        Some(c) => s.push(c),
                        None => return Err("unterminated string".into()),
                    }
                }
                toks.push(Tok::Str(s));
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v = parse_number(&s).ok_or_else(|| format!("bad number `{s}`"))?;
                toks.push(Tok::Num(v));
            }
            c if c.is_ascii_alphabetic() || c == '_' || c == '.' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_alphanumeric() || c == '_' || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                toks.push(Tok::Ident(s));
            }
            other => return Err(format!("unexpected character `{other}`")),
        }
    }
    Ok(toks)
}

fn parse_number(s: &str) -> Option<i64> {
    if let Some(hex) = s.strip_prefix("0x").or_else(|| s.strip_prefix("0X")) {
        i64::from_str_radix(hex, 16).ok()
    } else {
        s.parse().ok()
    }
}

fn reg_of(name: &str) -> Option<Reg> {
    Reg::ALL.iter().copied().find(|r| r.name() == name)
}

fn segreg_of(name: &str) -> Option<SegReg> {
    SegReg::ALL.iter().copied().find(|s| s.name() == name)
}

fn aluop_of(name: &str) -> Option<AluOp> {
    AluOp::ALL.iter().copied().find(|o| o.name() == name)
}

fn cond_of(mnemonic: &str) -> Option<Cond> {
    let suffix = mnemonic.strip_prefix('j')?;
    Cond::ALL.iter().copied().find(|c| c.name() == suffix)
}

/// Access width of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Width {
    Byte,
    Word,
    Dword,
}

/// A parsed operand.
#[derive(Debug, Clone, PartialEq)]
enum Operand {
    Reg(Reg),
    SegReg(SegReg),
    Imm(i64),
    /// A label used as an absolute immediate.
    ImmSym(String, i32),
    Mem(Width, Mem),
    /// A memory operand whose displacement is `sym + addend`.
    MemSym(Width, Option<SegReg>, String, i32),
}

struct Parser<'a> {
    toks: &'a [Tok],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<&Tok> {
        let t = self.toks.get(self.pos);
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: &Tok) -> Result<(), String> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => Err(format!("expected {t:?}, got {got:?}")),
        }
    }

    fn signed_number(&mut self) -> Result<i64, String> {
        match self.next() {
            Some(Tok::Num(v)) => Ok(*v),
            Some(Tok::Minus) => match self.next() {
                Some(Tok::Num(v)) => Ok(-*v),
                got => Err(format!("expected number after `-`, got {got:?}")),
            },
            got => Err(format!("expected number, got {got:?}")),
        }
    }

    /// Parses one operand.
    fn operand(&mut self) -> Result<Operand, String> {
        match self.peek().cloned() {
            Some(Tok::Num(_)) | Some(Tok::Minus) => Ok(Operand::Imm(self.signed_number()?)),
            Some(Tok::LBracket) => self.mem_operand(Width::Dword, None),
            Some(Tok::Ident(id)) => {
                // Width keyword, register, segment register, seg override, or
                // a label immediate.
                let width = match id.as_str() {
                    "byte" => Some(Width::Byte),
                    "word" => Some(Width::Word),
                    "dword" => Some(Width::Dword),
                    _ => None,
                };
                if let Some(w) = width {
                    self.next();
                    // Optional segment override before the bracket.
                    let seg = self.try_seg_override()?;
                    return self.mem_operand(w, seg);
                }
                if let Some(r) = reg_of(&id) {
                    self.next();
                    return Ok(Operand::Reg(r));
                }
                if let Some(s) = segreg_of(&id) {
                    self.next();
                    if self.peek() == Some(&Tok::Colon) {
                        self.next();
                        self.expect(&Tok::LBracket)
                            .map_err(|_| "segment override must be followed by `[`".to_string())?;
                        self.pos -= 1;
                        return self.mem_operand(Width::Dword, Some(s));
                    }
                    return Ok(Operand::SegReg(s));
                }
                self.next();
                let mut addend = 0i32;
                if self.peek() == Some(&Tok::Plus) {
                    self.next();
                    addend = self.signed_number()? as i32;
                }
                Ok(Operand::ImmSym(id, addend))
            }
            got => Err(format!("expected operand, got {got:?}")),
        }
    }

    fn try_seg_override(&mut self) -> Result<Option<SegReg>, String> {
        if let Some(Tok::Ident(id)) = self.peek() {
            if let Some(s) = segreg_of(id) {
                if self.toks.get(self.pos + 1) == Some(&Tok::Colon) {
                    self.next();
                    self.next();
                    return Ok(Some(s));
                }
            }
        }
        Ok(None)
    }

    /// Parses `[...]` after any width keyword / segment override.
    fn mem_operand(&mut self, width: Width, seg: Option<SegReg>) -> Result<Operand, String> {
        self.expect(&Tok::LBracket)?;
        // Forms: [reg], [reg+n], [reg-n], [n], [sym], [sym+n].
        let op = match self.next().cloned() {
            Some(Tok::Ident(id)) => {
                if let Some(base) = reg_of(&id) {
                    let disp = match self.peek() {
                        Some(Tok::Plus) => {
                            self.next();
                            self.signed_number()?
                        }
                        Some(Tok::Minus) => {
                            self.next();
                            -self.signed_number()?
                        }
                        _ => 0,
                    };
                    Operand::Mem(
                        width,
                        Mem {
                            seg,
                            base: Some(base),
                            disp: disp as i32,
                        },
                    )
                } else {
                    let addend = if self.peek() == Some(&Tok::Plus) {
                        self.next();
                        self.signed_number()? as i32
                    } else {
                        0
                    };
                    Operand::MemSym(width, seg, id, addend)
                }
            }
            Some(Tok::Num(n)) => Operand::Mem(
                width,
                Mem {
                    seg,
                    base: None,
                    disp: n as i32,
                },
            ),
            got => return Err(format!("bad memory operand: {got:?}")),
        };
        self.expect(&Tok::RBracket)?;
        Ok(op)
    }

    fn done(&self) -> bool {
        self.pos == self.toks.len()
    }
}

/// The assembler.
#[derive(Debug, Default)]
pub struct Assembler {
    builder: CodeBuilder,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Assembles `source`, returning a relocatable [`Object`].
    pub fn assemble(source: &str) -> Result<Object, AsmError> {
        let mut asm = Assembler::new();
        for (i, line) in source.lines().enumerate() {
            asm.line(line)
                .map_err(|msg| AsmError { line: i + 1, msg })?;
        }
        asm.builder.finish().map_err(AsmError::from)
    }

    /// Emits one instruction with a memory operand whose displacement is a
    /// symbol, recording the relocation at the right field offset.
    fn emit_mem_sym(&mut self, insn: Insn, sym: &str, addend: i32) {
        let start = self.builder.here();
        self.builder.emit(insn);
        // `Store*`/`CmpM` put the displacement right after the opcode and
        // mem-flags bytes; in every other encoding it is trailing.
        let offset = match insn {
            Insn::Store(..) | Insn::StoreB(..) | Insn::StoreW(..) | Insn::CmpM(..) => start + 2,
            _ => self.builder.here() - 4,
        };
        self.push_reloc(offset, sym, addend);
    }

    fn push_reloc(&mut self, offset: u32, sym: &str, addend: i32) {
        // CodeBuilder has no public raw-reloc API on purpose; reuse its
        // trailing helper when possible, otherwise synthesize via store path.
        self.builder.raw_reloc(Reloc {
            offset,
            sym: sym.to_string(),
            addend,
            kind: RelocKind::Abs32,
        });
    }

    fn line(&mut self, line: &str) -> Result<(), String> {
        let toks = tokenize(line)?;
        if toks.is_empty() {
            return Ok(());
        }
        let mut p = Parser {
            toks: &toks,
            pos: 0,
        };

        // Label definition(s): `name:`.
        while let (Some(Tok::Ident(name)), Some(Tok::Colon)) =
            (p.toks.get(p.pos), p.toks.get(p.pos + 1))
        {
            // Not a label if this is a seg override like `ds:[`.
            if segreg_of(name).is_some() && p.toks.get(p.pos + 2) == Some(&Tok::LBracket) {
                break;
            }
            let name = name.clone();
            p.pos += 2;
            self.builder.label(&name).map_err(|e| e.to_string())?;
        }
        if p.done() {
            return Ok(());
        }

        let mnemonic = match p.next() {
            Some(Tok::Ident(m)) => m.clone(),
            got => return Err(format!("expected mnemonic, got {got:?}")),
        };

        if mnemonic.starts_with('.') {
            return self.directive(&mnemonic, &mut p);
        }
        self.instruction(&mnemonic, &mut p)?;
        if !p.done() {
            return Err(format!("trailing tokens after `{mnemonic}`"));
        }
        Ok(())
    }

    fn directive(&mut self, name: &str, p: &mut Parser<'_>) -> Result<(), String> {
        match name {
            ".db" | ".dw" | ".dd" => loop {
                match p.peek().cloned() {
                    Some(Tok::Ident(sym)) => {
                        p.next();
                        if name != ".dd" {
                            return Err("symbol data requires .dd".into());
                        }
                        self.builder.dword_label(&sym, 0);
                    }
                    _ => {
                        let v = p.signed_number()?;
                        match name {
                            ".db" => {
                                self.builder.bytes(&[(v & 0xFF) as u8]);
                            }
                            ".dw" => {
                                self.builder.bytes(&(v as u16).to_le_bytes());
                            }
                            _ => {
                                self.builder.dword(v as u32);
                            }
                        }
                    }
                }
                if p.peek() == Some(&Tok::Comma) {
                    p.next();
                } else if p.done() {
                    return Ok(());
                } else {
                    return Err("expected `,` in data list".into());
                }
            },
            ".space" => {
                let n = p.signed_number()?;
                if n < 0 {
                    return Err(".space takes a non-negative size".into());
                }
                self.builder.space(n as usize);
                Ok(())
            }
            ".align" => {
                let n = p.signed_number()?;
                if n <= 0 || (n as u64 & (n as u64 - 1)) != 0 {
                    return Err(".align takes a power of two".into());
                }
                self.builder.align(n as usize);
                Ok(())
            }
            ".equ" => match p.next() {
                Some(Tok::Ident(name)) => {
                    let name = name.clone();
                    p.expect(&Tok::Comma)?;
                    let v = p.signed_number()?;
                    self.builder
                        .equ(&name, v as u32)
                        .map_err(|e| e.to_string())?;
                    Ok(())
                }
                got => Err(format!(".equ expects a name, got {got:?}")),
            },
            ".asciz" => match p.next() {
                Some(Tok::Str(s)) => {
                    let mut data = s.clone().into_bytes();
                    data.push(0);
                    self.builder.bytes(&data);
                    Ok(())
                }
                got => Err(format!(".asciz expects a string, got {got:?}")),
            },
            other => Err(format!("unknown directive `{other}`")),
        }
    }

    fn src_of(&mut self, op: &Operand) -> Result<Src, String> {
        match op {
            Operand::Reg(r) => Ok(Src::Reg(*r)),
            Operand::Imm(v) => Ok(Src::Imm(*v as i32)),
            other => Err(format!("expected register or immediate, got {other:?}")),
        }
    }

    fn instruction(&mut self, m: &str, p: &mut Parser<'_>) -> Result<(), String> {
        match m {
            "nop" => {
                self.builder.emit(Insn::Nop);
            }
            "hlt" => {
                self.builder.emit(Insn::Hlt);
            }
            "iret" => {
                self.builder.emit(Insn::Iret);
            }
            "rdtsc" => {
                self.builder.emit(Insn::Rdtsc);
            }
            "wrpkru" => {
                let op = p.operand()?;
                let src = self.src_of(&op)?;
                self.builder.emit(Insn::Wrpkru(src));
            }
            "rdpkru" => match p.operand()? {
                Operand::Reg(r) => {
                    self.builder.emit(Insn::Rdpkru(r));
                }
                other => return Err(format!("bad rdpkru operand: {other:?}")),
            },
            "ret" => {
                if p.done() {
                    self.builder.emit(Insn::Ret);
                } else {
                    let n = p.signed_number()?;
                    self.builder.emit(Insn::RetN(n as u16));
                }
            }
            "lret" => {
                if p.done() {
                    self.builder.emit(Insn::Lret);
                } else {
                    let n = p.signed_number()?;
                    self.builder.emit(Insn::LretN(n as u16));
                }
            }
            "int" => {
                let n = p.signed_number()?;
                self.builder.emit(Insn::Int(n as u8));
            }
            "mov" => {
                let dst = p.operand()?;
                p.expect(&Tok::Comma)?;
                let src = p.operand()?;
                self.mov(dst, src)?;
            }
            "lea" => {
                let dst = p.operand()?;
                p.expect(&Tok::Comma)?;
                let src = p.operand()?;
                match (dst, src) {
                    (Operand::Reg(r), Operand::Mem(Width::Dword, mem)) => {
                        self.builder.emit(Insn::Lea(r, mem));
                    }
                    (Operand::Reg(r), Operand::MemSym(Width::Dword, seg, sym, add)) => {
                        self.emit_mem_sym(
                            Insn::Lea(
                                r,
                                Mem {
                                    seg,
                                    base: None,
                                    disp: 0,
                                },
                            ),
                            &sym,
                            add,
                        );
                    }
                    other => return Err(format!("bad lea operands: {other:?}")),
                }
            }
            "push" => {
                let op = p.operand()?;
                match op {
                    Operand::Reg(r) => {
                        self.builder.emit(Insn::Push(Src::Reg(r)));
                    }
                    Operand::Imm(v) => {
                        self.builder.emit(Insn::Push(Src::Imm(v as i32)));
                    }
                    Operand::ImmSym(sym, add) => {
                        self.builder.push_label(&sym);
                        if add != 0 {
                            return Err("push label+off unsupported".into());
                        }
                    }
                    Operand::SegReg(s) => {
                        self.builder.emit(Insn::PushSeg(s));
                    }
                    Operand::Mem(Width::Dword, mem) => {
                        self.builder.emit(Insn::PushM(mem));
                    }
                    Operand::MemSym(Width::Dword, seg, sym, add) => {
                        self.emit_mem_sym(
                            Insn::PushM(Mem {
                                seg,
                                base: None,
                                disp: 0,
                            }),
                            &sym,
                            add,
                        );
                    }
                    other => return Err(format!("bad push operand: {other:?}")),
                }
            }
            "pop" => {
                let op = p.operand()?;
                match op {
                    Operand::Reg(r) => {
                        self.builder.emit(Insn::Pop(r));
                    }
                    Operand::SegReg(s) => {
                        self.builder.emit(Insn::PopSeg(s));
                    }
                    Operand::Mem(Width::Dword, mem) => {
                        self.builder.emit(Insn::PopM(mem));
                    }
                    Operand::MemSym(Width::Dword, seg, sym, add) => {
                        self.emit_mem_sym(
                            Insn::PopM(Mem {
                                seg,
                                base: None,
                                disp: 0,
                            }),
                            &sym,
                            add,
                        );
                    }
                    other => return Err(format!("bad pop operand: {other:?}")),
                }
            }
            "neg" | "not" | "inc" | "dec" => {
                let op = p.operand()?;
                let r = match op {
                    Operand::Reg(r) => r,
                    other => return Err(format!("{m} expects a register, got {other:?}")),
                };
                self.builder.emit(match m {
                    "neg" => Insn::Neg(r),
                    "not" => Insn::Not(r),
                    "inc" => Insn::Inc(r),
                    _ => Insn::Dec(r),
                });
            }
            "cmp" => {
                let a = p.operand()?;
                p.expect(&Tok::Comma)?;
                let b = p.operand()?;
                match (a, b) {
                    (Operand::Reg(r), b) => {
                        match b {
                            Operand::ImmSym(sym, add) => {
                                // cmp reg, label — trailing imm field.
                                self.builder.emit(Insn::Cmp(r, Src::Imm(0)));
                                let off = self.builder.here() - 4;
                                self.push_reloc(off, &sym, add);
                            }
                            b => {
                                let s = self.src_of(&b)?;
                                self.builder.emit(Insn::Cmp(r, s));
                            }
                        }
                    }
                    (Operand::Mem(Width::Dword, mem), b) => {
                        let s = self.src_of(&b)?;
                        self.builder.emit(Insn::CmpM(mem, s));
                    }
                    (Operand::MemSym(Width::Dword, seg, sym, add), b) => {
                        let s = self.src_of(&b)?;
                        self.emit_mem_sym(
                            Insn::CmpM(
                                Mem {
                                    seg,
                                    base: None,
                                    disp: 0,
                                },
                                s,
                            ),
                            &sym,
                            add,
                        );
                    }
                    other => return Err(format!("bad cmp operands: {other:?}")),
                }
            }
            "test" => {
                let a = p.operand()?;
                p.expect(&Tok::Comma)?;
                let b = p.operand()?;
                match a {
                    Operand::Reg(r) => {
                        let s = self.src_of(&b)?;
                        self.builder.emit(Insn::Test(r, s));
                    }
                    other => return Err(format!("test expects a register, got {other:?}")),
                }
            }
            "jmp" => {
                let op = p.operand()?;
                match op {
                    Operand::ImmSym(sym, 0) => {
                        self.builder.jmp_label(&sym);
                    }
                    Operand::Reg(r) => {
                        self.builder.emit(Insn::JmpReg(r));
                    }
                    Operand::Mem(Width::Dword, mem) => {
                        self.builder.emit(Insn::JmpM(mem));
                    }
                    Operand::MemSym(Width::Dword, seg, sym, add) => {
                        self.emit_mem_sym(
                            Insn::JmpM(Mem {
                                seg,
                                base: None,
                                disp: 0,
                            }),
                            &sym,
                            add,
                        );
                    }
                    other => return Err(format!("bad jmp target: {other:?}")),
                }
            }
            "call" => {
                let op = p.operand()?;
                match op {
                    Operand::ImmSym(sym, 0) => {
                        self.builder.call_label(&sym);
                    }
                    Operand::Reg(r) => {
                        self.builder.emit(Insn::CallReg(r));
                    }
                    Operand::Mem(Width::Dword, mem) => {
                        self.builder.emit(Insn::CallM(mem));
                    }
                    Operand::MemSym(Width::Dword, seg, sym, add) => {
                        self.emit_mem_sym(
                            Insn::CallM(Mem {
                                seg,
                                base: None,
                                disp: 0,
                            }),
                            &sym,
                            add,
                        );
                    }
                    other => return Err(format!("bad call target: {other:?}")),
                }
            }
            "lcall" => {
                let sel = p.signed_number()? as u16;
                p.expect(&Tok::Comma)?;
                let op = p.operand()?;
                match op {
                    Operand::Imm(off) => {
                        self.builder.emit(Insn::Lcall(sel, off as u32));
                    }
                    Operand::ImmSym(sym, 0) => {
                        self.builder.lcall_label(sel, &sym);
                    }
                    other => return Err(format!("bad lcall target: {other:?}")),
                }
            }
            _ => {
                if let Some(cond) = cond_of(m) {
                    let op = p.operand()?;
                    match op {
                        Operand::ImmSym(sym, 0) => {
                            self.builder.jcc_label(cond, &sym);
                        }
                        other => return Err(format!("bad branch target: {other:?}")),
                    }
                } else if let Some(alu) = aluop_of(m) {
                    let dst = p.operand()?;
                    p.expect(&Tok::Comma)?;
                    let src = p.operand()?;
                    let r = match dst {
                        Operand::Reg(r) => r,
                        other => return Err(format!("{m} expects a register, got {other:?}")),
                    };
                    match src {
                        Operand::Mem(Width::Dword, mem) => {
                            self.builder.emit(Insn::AluM(alu, r, mem));
                        }
                        Operand::MemSym(Width::Dword, seg, sym, add) => {
                            self.emit_mem_sym(
                                Insn::AluM(
                                    alu,
                                    r,
                                    Mem {
                                        seg,
                                        base: None,
                                        disp: 0,
                                    },
                                ),
                                &sym,
                                add,
                            );
                        }
                        Operand::ImmSym(sym, add) => {
                            self.builder.emit(Insn::Alu(alu, r, Src::Imm(0)));
                            let off = self.builder.here() - 4;
                            self.push_reloc(off, &sym, add);
                        }
                        other => {
                            let s = self.src_of(&other)?;
                            self.builder.emit(Insn::Alu(alu, r, s));
                        }
                    }
                } else {
                    return Err(format!("unknown mnemonic `{m}`"));
                }
            }
        }
        Ok(())
    }

    /// Dispatches the many forms of `mov`.
    fn mov(&mut self, dst: Operand, src: Operand) -> Result<(), String> {
        match (dst, src) {
            (Operand::Reg(d), Operand::Reg(s)) => {
                self.builder.emit(Insn::Mov(d, Src::Reg(s)));
            }
            (Operand::Reg(d), Operand::Imm(v)) => {
                self.builder.emit(Insn::Mov(d, Src::Imm(v as i32)));
            }
            (Operand::Reg(d), Operand::ImmSym(sym, add)) => {
                self.builder.emit(Insn::Mov(d, Src::Imm(0)));
                let off = self.builder.here() - 4;
                self.push_reloc(off, &sym, add);
            }
            (Operand::Reg(d), Operand::SegReg(s)) => {
                self.builder.emit(Insn::MovFromSeg(d, s));
            }
            (Operand::SegReg(d), Operand::Reg(s)) => {
                self.builder.emit(Insn::MovToSeg(d, s));
            }
            (Operand::Reg(d), Operand::Mem(w, mem)) => {
                self.builder.emit(match w {
                    Width::Byte => Insn::LoadB(d, mem),
                    Width::Word => Insn::LoadW(d, mem),
                    Width::Dword => Insn::Load(d, mem),
                });
            }
            (Operand::Reg(d), Operand::MemSym(w, seg, sym, add)) => {
                let mem = Mem {
                    seg,
                    base: None,
                    disp: 0,
                };
                let insn = match w {
                    Width::Byte => Insn::LoadB(d, mem),
                    Width::Word => Insn::LoadW(d, mem),
                    Width::Dword => Insn::Load(d, mem),
                };
                self.emit_mem_sym(insn, &sym, add);
            }
            (Operand::Mem(w, mem), Operand::Reg(s)) => {
                self.builder.emit(match w {
                    Width::Byte => Insn::StoreB(mem, s),
                    Width::Word => Insn::StoreW(mem, s),
                    Width::Dword => Insn::Store(mem, Src::Reg(s)),
                });
            }
            (Operand::Mem(Width::Dword, mem), Operand::Imm(v)) => {
                self.builder.emit(Insn::Store(mem, Src::Imm(v as i32)));
            }
            (Operand::MemSym(w, seg, sym, add), Operand::Reg(s)) => {
                let mem = Mem {
                    seg,
                    base: None,
                    disp: 0,
                };
                let insn = match w {
                    Width::Byte => Insn::StoreB(mem, s),
                    Width::Word => Insn::StoreW(mem, s),
                    Width::Dword => Insn::Store(mem, Src::Reg(s)),
                };
                self.emit_mem_sym(insn, &sym, add);
            }
            (Operand::MemSym(Width::Dword, seg, sym, add), Operand::Imm(v)) => {
                self.emit_mem_sym(
                    Insn::Store(
                        Mem {
                            seg,
                            base: None,
                            disp: 0,
                        },
                        Src::Imm(v as i32),
                    ),
                    &sym,
                    add,
                );
            }
            other => return Err(format!("unsupported mov form: {other:?}")),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::decode_program;
    use crate::isa::Reg::*;
    use std::collections::BTreeMap;

    fn asm(src: &str) -> Object {
        Assembler::assemble(src).expect("assembly failed")
    }

    fn insns(src: &str) -> Vec<Insn> {
        decode_program(&asm(src).link(0, &BTreeMap::new()).unwrap()).unwrap()
    }

    #[test]
    fn basic_instructions() {
        let got = insns(
            "  mov eax, 5\n\
             \tmov ebx, eax ; copy\n\
             ; full-line comment\n\
             \tadd eax, 0x10\n\
             \tret\n",
        );
        assert_eq!(
            got,
            vec![
                Insn::Mov(Eax, Src::Imm(5)),
                Insn::Mov(Ebx, Src::Reg(Eax)),
                Insn::Alu(AluOp::Add, Eax, Src::Imm(0x10)),
                Insn::Ret,
            ]
        );
    }

    #[test]
    fn memory_forms() {
        let got = insns(
            "  mov eax, [ebp+8]\n\
             \tmov [ebp-4], eax\n\
             \tmov ecx, byte [esi]\n\
             \tmov byte [edi], ecx\n\
             \tmov edx, word [esi+2]\n\
             \tmov es:[ebx], eax\n\
             \tmov eax, [0x1000]\n\
             \tpush dword [esp+4]\n\
             \tpop dword [0x2000]\n",
        );
        assert_eq!(
            got,
            vec![
                Insn::Load(Eax, Mem::based(Ebp, 8)),
                Insn::Store(Mem::based(Ebp, -4), Src::Reg(Eax)),
                Insn::LoadB(Ecx, Mem::based(Esi, 0)),
                Insn::StoreB(Mem::based(Edi, 0), Ecx),
                Insn::LoadW(Edx, Mem::based(Esi, 2)),
                Insn::Store(Mem::based(Ebx, 0).with_seg(SegReg::Es), Src::Reg(Eax)),
                Insn::Load(Eax, Mem::abs(0x1000)),
                Insn::PushM(Mem::based(Esp, 4)),
                Insn::PopM(Mem::abs(0x2000)),
            ]
        );
    }

    #[test]
    fn segment_register_moves() {
        let got = insns("mov ds, eax\nmov ebx, cs\npush ss\npop es\n");
        assert_eq!(
            got,
            vec![
                Insn::MovToSeg(SegReg::Ds, Eax),
                Insn::MovFromSeg(Ebx, SegReg::Cs),
                Insn::PushSeg(SegReg::Ss),
                Insn::PopSeg(SegReg::Es),
            ]
        );
    }

    #[test]
    fn loop_with_labels() {
        let got = insns(
            "start:\n\
             \tmov ecx, 10\n\
             loop_top:\n\
             \tdec ecx\n\
             \tcmp ecx, 0\n\
             \tjne loop_top\n\
             \tret\n",
        );
        assert_eq!(got[0], Insn::Mov(Ecx, Src::Imm(10)));
        assert_eq!(got[1], Insn::Dec(Ecx));
        // jne back over dec(2) + cmp(7) + jcc(6) = -15.
        assert_eq!(got[3], Insn::Jcc(Cond::Ne, -15));
    }

    #[test]
    fn call_and_far_transfer() {
        let got = insns(
            "main:\n\
             \tcall f\n\
             \tlcall 0x1B, 0\n\
             \tlret 4\n\
             \tint 0x80\n\
             f:\n\
             \tret\n",
        );
        // `f` sits after lcall(7) + lret n(3) + int(2) = 12 bytes past the call.
        assert_eq!(got[0], Insn::Call(12));
        assert_eq!(got[1], Insn::Lcall(0x1B, 0));
        assert_eq!(got[2], Insn::LretN(4));
        assert_eq!(got[3], Insn::Int(0x80));
        assert_eq!(got[4], Insn::Ret);
    }

    #[test]
    fn symbolic_data_and_immediates() {
        let obj = asm("entry:\n\
             \tmov eax, msg\n\
             \tmov ebx, [counter]\n\
             \tmov [counter], ebx\n\
             \tret\n\
             counter:\n\
             \t.dd 7\n\
             msg:\n\
             \t.asciz \"hi\"\n");
        let base = 0x8000;
        let image = obj.link(base, &BTreeMap::new()).unwrap();
        let counter = obj.symbol("counter").unwrap();
        let msg = obj.symbol("msg").unwrap();
        let code = decode_program(&image[..counter as usize]).unwrap();
        assert_eq!(code[0], Insn::Mov(Eax, Src::Imm((base + msg) as i32)));
        assert_eq!(code[1], Insn::Load(Ebx, Mem::abs(base + counter)));
        assert_eq!(
            code[2],
            Insn::Store(Mem::abs(base + counter), Src::Reg(Ebx))
        );
        assert_eq!(&image[msg as usize..], b"hi\0");
        assert_eq!(
            &image[counter as usize..counter as usize + 4],
            &7u32.to_le_bytes()
        );
    }

    #[test]
    fn directives() {
        let obj = asm(".db 1, 2, 0xFF\n\
             .dw 0x1234\n\
             .align 8\n\
             tail:\n\
             .space 3\n\
             .dd 0xDEADBEEF\n");
        assert_eq!(obj.symbol("tail"), Some(8));
        assert_eq!(&obj.bytes[0..3], &[1, 2, 0xFF]);
        assert_eq!(&obj.bytes[3..5], &[0x34, 0x12]);
        assert_eq!(&obj.bytes[11..15], &0xDEADBEEFu32.to_le_bytes());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let err = Assembler::assemble("nop\nbogus eax\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.msg.contains("bogus"));
    }

    #[test]
    fn undefined_branch_target_becomes_import() {
        let obj = Assembler::assemble("call helper\nret\n").unwrap();
        assert_eq!(obj.undefined_symbols(), vec!["helper"]);
        assert!(obj.link(0, &BTreeMap::new()).is_err(), "needs externs");
    }

    #[test]
    fn alu_with_memory_source() {
        let got = insns("add eax, [ebx+4]\nxor ecx, edx\nimul eax, 3\n");
        assert_eq!(
            got,
            vec![
                Insn::AluM(AluOp::Add, Eax, Mem::based(Ebx, 4)),
                Insn::Alu(AluOp::Xor, Ecx, Src::Reg(Edx)),
                Insn::Alu(AluOp::Imul, Eax, Src::Imm(3)),
            ]
        );
    }
}

#[cfg(test)]
mod equ_tests {
    use super::*;
    use crate::encode::decode_program;
    use crate::isa::Reg::*;
    use std::collections::BTreeMap;

    #[test]
    fn equ_constants_resolve_without_base_shift() {
        let obj = Assembler::assemble(
            ".equ SYS_EXIT, 1\n\
             .equ CONSOLE, 0x2000\n\
             _start:\n\
             mov eax, SYS_EXIT\n\
             mov ebx, [CONSOLE]\n\
             int 0x80\n",
        )
        .unwrap();
        // The constant must not move with the load base.
        for base in [0u32, 0x8000] {
            let image = obj.link(base, &BTreeMap::new()).unwrap();
            let insns = decode_program(&image).unwrap();
            assert_eq!(insns[0], Insn::Mov(Eax, Src::Imm(1)));
            assert_eq!(insns[1], Insn::Load(Ebx, Mem::abs(0x2000)));
        }
        assert!(obj.undefined_symbols().is_empty());
    }

    #[test]
    fn equ_name_collisions_are_errors() {
        assert!(Assembler::assemble(".equ X, 1\n.equ X, 2\n").is_err());
        assert!(Assembler::assemble("X:\nnop\n.equ X, 2\n").is_err());
        assert!(Assembler::assemble(".equ X, 2\nX:\nnop\n").is_err());
    }
}
