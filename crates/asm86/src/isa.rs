//! Instruction set definition.
//!
//! The simulator executes a 32-bit, x86-flavoured instruction set. The
//! *semantics* of the control-transfer and privilege instructions
//! (`lcall`, `lret`, `int`, `iret`, segment-register loads) follow the
//! Intel architecture manual, because those are what the Palladium paper's
//! protection mechanism is built from. The *encoding* is a simplified
//! regular scheme (one opcode byte plus fixed-width operands, see
//! [`mod@crate::encode`]) rather than real x86 machine code; this substitution
//! is documented in `DESIGN.md`.

use core::fmt;

/// A general-purpose 32-bit register, in x86 numbering order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Reg {
    /// Accumulator; also carries the 4-byte extension-call result.
    Eax = 0,
    /// Counter register.
    Ecx = 1,
    /// Data register.
    Edx = 2,
    /// Base register.
    Ebx = 3,
    /// Stack pointer.
    Esp = 4,
    /// Frame (base) pointer.
    Ebp = 5,
    /// Source index.
    Esi = 6,
    /// Destination index.
    Edi = 7,
}

impl Reg {
    /// All registers, in encoding order.
    pub const ALL: [Reg; 8] = [
        Reg::Eax,
        Reg::Ecx,
        Reg::Edx,
        Reg::Ebx,
        Reg::Esp,
        Reg::Ebp,
        Reg::Esi,
        Reg::Edi,
    ];

    /// Decodes a register from its 3-bit encoding.
    pub fn from_u8(v: u8) -> Option<Reg> {
        Reg::ALL.get(v as usize).copied()
    }

    /// The register's canonical lower-case mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            Reg::Eax => "eax",
            Reg::Ecx => "ecx",
            Reg::Edx => "edx",
            Reg::Ebx => "ebx",
            Reg::Esp => "esp",
            Reg::Ebp => "ebp",
            Reg::Esi => "esi",
            Reg::Edi => "edi",
        }
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A segment register.
///
/// `FS`/`GS` are omitted: the paper's mechanism only needs `CS`, `SS`, `DS`
/// and one spare data segment (`ES`) for cross-segment kernel references.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SegReg {
    /// Extra data segment.
    Es = 0,
    /// Code segment; its RPL field is the current privilege level.
    Cs = 1,
    /// Stack segment.
    Ss = 2,
    /// Default data segment.
    Ds = 3,
}

impl SegReg {
    /// All segment registers, in encoding order.
    pub const ALL: [SegReg; 4] = [SegReg::Es, SegReg::Cs, SegReg::Ss, SegReg::Ds];

    /// Decodes a segment register from its 2-bit encoding.
    pub fn from_u8(v: u8) -> Option<SegReg> {
        SegReg::ALL.get(v as usize).copied()
    }

    /// The register's canonical lower-case mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            SegReg::Es => "es",
            SegReg::Cs => "cs",
            SegReg::Ss => "ss",
            SegReg::Ds => "ds",
        }
    }
}

impl fmt::Display for SegReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A memory operand: `seg:[base + disp]`.
///
/// Without an explicit segment override the effective segment follows the
/// x86 default rule: `SS` when the base register is `ESP` or `EBP`, `DS`
/// otherwise.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Mem {
    /// Optional segment override.
    pub seg: Option<SegReg>,
    /// Optional base register.
    pub base: Option<Reg>,
    /// Signed displacement added to the base.
    pub disp: i32,
}

impl Mem {
    /// An absolute address with the default segment.
    pub fn abs(disp: u32) -> Mem {
        Mem {
            seg: None,
            base: None,
            disp: disp as i32,
        }
    }

    /// `[base + disp]` with the default segment.
    pub fn based(base: Reg, disp: i32) -> Mem {
        Mem {
            seg: None,
            base: Some(base),
            disp,
        }
    }

    /// Returns the same operand with an explicit segment override.
    pub fn with_seg(mut self, seg: SegReg) -> Mem {
        self.seg = Some(seg);
        self
    }

    /// The segment this operand uses, applying the x86 default rule.
    pub fn effective_seg(&self) -> SegReg {
        if let Some(s) = self.seg {
            return s;
        }
        match self.base {
            Some(Reg::Esp) | Some(Reg::Ebp) => SegReg::Ss,
            _ => SegReg::Ds,
        }
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(s) = self.seg {
            write!(f, "{s}:")?;
        }
        f.write_str("[")?;
        match (self.base, self.disp) {
            (Some(b), 0) => write!(f, "{b}")?,
            (Some(b), d) if d > 0 => write!(f, "{b}+{d:#x}")?,
            (Some(b), d) => write!(f, "{b}-{:#x}", (d as i64).unsigned_abs())?,
            (None, d) => write!(f, "{:#x}", d as u32)?,
        }
        f.write_str("]")
    }
}

/// A register-or-immediate source operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Src {
    /// A register source.
    Reg(Reg),
    /// An immediate source.
    Imm(i32),
}

impl From<Reg> for Src {
    fn from(r: Reg) -> Src {
        Src::Reg(r)
    }
}

impl From<i32> for Src {
    fn from(v: i32) -> Src {
        Src::Imm(v)
    }
}

impl From<u32> for Src {
    fn from(v: u32) -> Src {
        Src::Imm(v as i32)
    }
}

impl fmt::Display for Src {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Src::Reg(r) => write!(f, "{r}"),
            Src::Imm(v) => write!(f, "{v:#x}"),
        }
    }
}

/// Binary ALU operations that write their destination register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    /// Addition.
    Add = 0,
    /// Subtraction.
    Sub = 1,
    /// Bitwise AND.
    And = 2,
    /// Bitwise OR.
    Or = 3,
    /// Bitwise XOR.
    Xor = 4,
    /// Logical shift left.
    Shl = 5,
    /// Logical shift right.
    Shr = 6,
    /// Arithmetic shift right.
    Sar = 7,
    /// Signed multiply (truncating).
    Imul = 8,
}

impl AluOp {
    /// All ALU operations, in encoding order.
    pub const ALL: [AluOp; 9] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Imul,
    ];

    /// Decodes an ALU operation from its 4-bit encoding.
    pub fn from_u8(v: u8) -> Option<AluOp> {
        AluOp::ALL.get(v as usize).copied()
    }

    /// The operation's canonical mnemonic.
    pub fn name(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Imul => "imul",
        }
    }
}

/// Branch condition codes, matching the x86 `Jcc` family.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`ZF`).
    E = 0,
    /// Not equal (`!ZF`).
    Ne = 1,
    /// Signed less (`SF != OF`).
    L = 2,
    /// Signed less-or-equal.
    Le = 3,
    /// Signed greater.
    G = 4,
    /// Signed greater-or-equal.
    Ge = 5,
    /// Unsigned below (`CF`).
    B = 6,
    /// Unsigned below-or-equal.
    Be = 7,
    /// Unsigned above.
    A = 8,
    /// Unsigned above-or-equal.
    Ae = 9,
    /// Sign set.
    S = 10,
    /// Sign clear.
    Ns = 11,
}

impl Cond {
    /// All condition codes, in encoding order.
    pub const ALL: [Cond; 12] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
    ];

    /// Decodes a condition from its 4-bit encoding.
    pub fn from_u8(v: u8) -> Option<Cond> {
        Cond::ALL.get(v as usize).copied()
    }

    /// The condition's mnemonic suffix (`e` in `je`).
    pub fn name(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }
}

/// One decoded instruction.
///
/// Branch and call targets are *relative* displacements from the end of the
/// instruction, exactly as in x86 `rel32` encodings; the assembler resolves
/// labels to such displacements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// No operation.
    Nop,
    /// Halt: stops the simulated CPU (privileged; requires CPL 0).
    Hlt,
    /// `mov reg, reg/imm`.
    Mov(Reg, Src),
    /// 32-bit load: `mov reg, [mem]`.
    Load(Reg, Mem),
    /// 32-bit store: `mov [mem], reg/imm`.
    Store(Mem, Src),
    /// 8-bit load, zero-extended: `movzx reg, byte [mem]`.
    LoadB(Reg, Mem),
    /// 8-bit store of a register's low byte: `mov byte [mem], reg`.
    StoreB(Mem, Reg),
    /// 16-bit load, zero-extended: `movzx reg, word [mem]`.
    LoadW(Reg, Mem),
    /// 16-bit store of a register's low word: `mov word [mem], reg`.
    StoreW(Mem, Reg),
    /// Load a segment register: `mov sreg, reg` (checked descriptor load).
    MovToSeg(SegReg, Reg),
    /// Read a segment selector: `mov reg, sreg`.
    MovFromSeg(Reg, SegReg),
    /// Compute an effective address without touching memory.
    Lea(Reg, Mem),
    /// Push a register or immediate.
    Push(Src),
    /// Push a 32-bit value loaded from memory.
    PushM(Mem),
    /// Push a segment register's selector (as 32 bits).
    PushSeg(SegReg),
    /// Pop into a register.
    Pop(Reg),
    /// Pop into memory.
    PopM(Mem),
    /// Pop into a segment register (checked descriptor load).
    PopSeg(SegReg),
    /// Binary ALU operation on a register.
    Alu(AluOp, Reg, Src),
    /// ALU operation whose source is a 32-bit memory load.
    AluM(AluOp, Reg, Mem),
    /// Two's-complement negate.
    Neg(Reg),
    /// Bitwise complement.
    Not(Reg),
    /// Increment.
    Inc(Reg),
    /// Decrement.
    Dec(Reg),
    /// Compare register with register/immediate (sets flags only).
    Cmp(Reg, Src),
    /// Compare a 32-bit memory word with register/immediate.
    CmpM(Mem, Src),
    /// Bitwise test (sets flags only).
    Test(Reg, Src),
    /// Unconditional relative jump.
    Jmp(i32),
    /// Indirect jump through a register.
    JmpReg(Reg),
    /// Indirect jump through memory (`jmp [mem]`, as a PLT entry does).
    JmpM(Mem),
    /// Conditional relative jump.
    Jcc(Cond, i32),
    /// Near relative call.
    Call(i32),
    /// Near indirect call through a register.
    CallReg(Reg),
    /// Near indirect call through memory (`call [mem]`).
    CallM(Mem),
    /// Near return.
    Ret,
    /// Near return, releasing `n` bytes of arguments.
    RetN(u16),
    /// Far call: through a call gate or to a far code segment.
    ///
    /// If the selector names a call gate the offset is ignored, exactly as
    /// on x86.
    Lcall(u16, u32),
    /// Far return.
    Lret,
    /// Far return, releasing `n` bytes of arguments.
    LretN(u16),
    /// Software interrupt through the IDT.
    Int(u8),
    /// Interrupt return.
    Iret,
    /// Read the CPU cycle counter into `EDX:EAX` (like `rdtsc`).
    Rdtsc,
    /// Write the per-thread protection-key rights register from a
    /// register or immediate (a WRPKRU-like instruction).
    ///
    /// Unlike real `wrpkru` this form does not clobber `EAX`/`ECX`/`EDX`;
    /// the gate trampolines carry live call state in those registers.
    /// At CPL 3 the write is legal only from a registered gate site
    /// (Garmr-style gate integrity); elsewhere it raises `#GP`.
    Wrpkru(Src),
    /// Read the protection-key rights register into a register.
    Rdpkru(Reg),
}

impl Insn {
    /// True if the instruction can change the control flow.
    pub fn is_control(&self) -> bool {
        matches!(
            self,
            Insn::Jmp(_)
                | Insn::JmpReg(_)
                | Insn::JmpM(_)
                | Insn::Jcc(..)
                | Insn::Call(_)
                | Insn::CallReg(_)
                | Insn::CallM(_)
                | Insn::Ret
                | Insn::RetN(_)
                | Insn::Lcall(..)
                | Insn::Lret
                | Insn::LretN(_)
                | Insn::Int(_)
                | Insn::Iret
                | Insn::Hlt
        )
    }

    /// True if the instruction reads or writes data memory.
    pub fn touches_memory(&self) -> bool {
        matches!(
            self,
            Insn::Load(..)
                | Insn::Store(..)
                | Insn::LoadB(..)
                | Insn::StoreB(..)
                | Insn::LoadW(..)
                | Insn::StoreW(..)
                | Insn::Push(_)
                | Insn::PushM(_)
                | Insn::PushSeg(_)
                | Insn::Pop(_)
                | Insn::PopM(_)
                | Insn::PopSeg(_)
                | Insn::AluM(..)
                | Insn::CmpM(..)
                | Insn::Call(_)
                | Insn::CallReg(_)
                | Insn::CallM(_)
                | Insn::JmpM(_)
                | Insn::Ret
                | Insn::RetN(_)
                | Insn::Lcall(..)
                | Insn::Lret
                | Insn::LretN(_)
                | Insn::Int(_)
                | Insn::Iret
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_u8(r as u8), Some(r));
        }
        assert_eq!(Reg::from_u8(8), None);
    }

    #[test]
    fn segreg_roundtrip() {
        for s in SegReg::ALL {
            assert_eq!(SegReg::from_u8(s as u8), Some(s));
        }
        assert_eq!(SegReg::from_u8(4), None);
    }

    #[test]
    fn aluop_roundtrip() {
        for op in AluOp::ALL {
            assert_eq!(AluOp::from_u8(op as u8), Some(op));
        }
        assert_eq!(AluOp::from_u8(9), None);
    }

    #[test]
    fn cond_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_u8(c as u8), Some(c));
        }
        assert_eq!(Cond::from_u8(12), None);
    }

    #[test]
    fn mem_default_segment_follows_x86_rule() {
        assert_eq!(Mem::based(Reg::Esp, 4).effective_seg(), SegReg::Ss);
        assert_eq!(Mem::based(Reg::Ebp, -8).effective_seg(), SegReg::Ss);
        assert_eq!(Mem::based(Reg::Eax, 0).effective_seg(), SegReg::Ds);
        assert_eq!(Mem::abs(0x1000).effective_seg(), SegReg::Ds);
        assert_eq!(
            Mem::based(Reg::Esp, 0).with_seg(SegReg::Ds).effective_seg(),
            SegReg::Ds
        );
    }

    #[test]
    fn control_and_memory_classification() {
        assert!(Insn::Jmp(0).is_control());
        assert!(Insn::Lcall(8, 0).is_control());
        assert!(!Insn::Mov(Reg::Eax, Src::Imm(1)).is_control());
        assert!(Insn::Push(Src::Reg(Reg::Eax)).touches_memory());
        assert!(!Insn::Mov(Reg::Eax, Src::Reg(Reg::Ebx)).touches_memory());
    }

    #[test]
    fn mem_display_formats() {
        assert_eq!(Mem::based(Reg::Eax, 8).to_string(), "[eax+0x8]");
        assert_eq!(Mem::based(Reg::Ebp, -4).to_string(), "[ebp-0x4]");
        assert_eq!(Mem::abs(0x1234).to_string(), "[0x1234]");
        assert_eq!(
            Mem::based(Reg::Ebx, 0).with_seg(SegReg::Es).to_string(),
            "es:[ebx]"
        );
    }
}
