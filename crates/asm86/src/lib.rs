//! `asm86` — the toolchain for the Palladium reproduction.
//!
//! This crate defines the 32-bit, x86-flavoured instruction set executed by
//! the `x86sim` simulator, together with:
//!
//! * a binary [encoder/decoder](mod@crate::encode) with a regular (non-x86)
//!   encoding,
//! * a relocatable [object format and code builder](crate::obj), used by the
//!   Palladium trampoline generator and the packet-filter compiler,
//! * a two-pass [text assembler](crate::asm), and
//! * a [disassembler](crate::disasm) for debugging.
//!
//! The control-transfer instructions (`lcall`, `lret`, `int`, `iret`) and
//! segment-register loads follow Intel protected-mode semantics — they are
//! the raw material of the paper's protection mechanism.
//!
//! # Examples
//!
//! ```
//! use asm86::asm::Assembler;
//! use asm86::encode::decode_program;
//!
//! let obj = Assembler::assemble(
//!     "entry:\n\
//!      \tmov eax, 41\n\
//!      \tinc eax\n\
//!      \tret\n",
//! )
//! .unwrap();
//! let image = obj.link(0x1000, &Default::default()).unwrap();
//! assert_eq!(decode_program(&image).unwrap().len(), 3);
//! ```

pub mod asm;
pub mod disasm;
pub mod encode;
pub mod isa;
pub mod obj;

pub use asm::{AsmError, Assembler};
pub use disasm::{branch_target, disassemble, Block, Cfg, CfgError, Line};
pub use encode::{decode, decode_program, encode, encode_program, DecodeError};
pub use isa::{AluOp, Cond, Insn, Mem, Reg, SegReg, Src};
pub use obj::{CodeBuilder, ObjError, Object, Reloc, RelocKind};
