//! The worker pool: fan a batch of shards across OS threads, merge the
//! results back in input order.

use std::panic::{self, AssertUnwindSafe};
use std::sync::Mutex;

use crate::queue::StealQueue;

/// A work-stealing worker pool.
///
/// The contract that makes sharded runs byte-identical to serial runs:
///
/// 1. every shard function must be a pure function of `(index, item)` —
///    no global mutable state, no host clocks, no draws from an RNG
///    shared across shards (use [`seedrng::SeedRng::stream`]-style
///    positional streams);
/// 2. the pool guarantees the output vector is in *input order*, no
///    matter which worker ran which shard or in what interleaving;
/// 3. `jobs == 1` executes the same shard functions inline on the
///    calling thread, in input order.
///
/// Under those rules `Pool::new(1)` and `Pool::new(8)` produce
/// identical output vectors, which is exactly what the determinism
/// suite asserts for the chaos campaigns, the web-server driver and the
/// throughput benchmarks.
///
/// [`seedrng::SeedRng::stream`]: https://docs.rs/seedrng
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// A pool of `jobs` workers (clamped to at least 1).
    pub fn new(jobs: usize) -> Pool {
        Pool { jobs: jobs.max(1) }
    }

    /// A pool sized to the host's available parallelism (1 if unknown).
    pub fn host_sized() -> Pool {
        Pool::new(host_parallelism())
    }

    /// Worker count.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Runs `f` over every `(index, item)` pair and returns the results
    /// in input order.
    ///
    /// Shards execute concurrently on up to [`jobs`](Self::jobs) OS
    /// threads via a work-stealing queue; a single-job pool runs them
    /// inline. If any shard panics, the panic is re-raised on the
    /// calling thread after all workers have drained (first shard in
    /// input order wins when several panic).
    pub fn run_ordered<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, T) -> R + Sync,
    {
        if self.jobs == 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, t)| f(i, t))
                .collect();
        }

        let n = items.len();
        let workers = self.jobs.min(n);
        let queue: StealQueue<(usize, T)> = StealQueue::new(workers);
        queue.seed(items.into_iter().enumerate());

        let slots: Vec<Mutex<Option<ShardSlot<R>>>> = (0..n).map(|_| Mutex::new(None)).collect();

        std::thread::scope(|s| {
            for w in 0..workers {
                let queue = &queue;
                let slots = &slots;
                let f = &f;
                s.spawn(move || {
                    while let Some((i, item)) = queue.take(w) {
                        // Catch the panic locally so the other workers
                        // keep draining their shards; re-raised below in
                        // input order.
                        let out = panic::catch_unwind(AssertUnwindSafe(|| f(i, item)));
                        let slot = match out {
                            Ok(r) => ShardSlot::Done(r),
                            Err(payload) => ShardSlot::Panicked(payload),
                        };
                        *slots[i].lock().expect("result slot poisoned") = Some(slot);
                    }
                });
            }
        });

        slots
            .into_iter()
            .enumerate()
            .map(|(i, slot)| {
                match slot
                    .into_inner()
                    .expect("result slot poisoned")
                    .unwrap_or_else(|| unreachable!("shard {i} never ran"))
                {
                    ShardSlot::Done(r) => r,
                    ShardSlot::Panicked(payload) => panic::resume_unwind(payload),
                }
            })
            .collect()
    }
}

impl Pool {
    /// Advances every item of `items` one step in place, in parallel,
    /// preserving slot order.
    ///
    /// This is [`run_ordered`](Self::run_ordered) for *stateful* shards
    /// that live across many rounds — fleet replicas, long-running
    /// worlds — where each round mutates the shard and the vector must
    /// come back in the same order for the next round's global
    /// decisions. The same determinism contract applies: `f` must be a
    /// pure function of `(index, &mut item)`, so a round is
    /// byte-identical for every worker count.
    pub fn update_ordered<T, F>(&self, items: &mut Vec<T>, f: F)
    where
        T: Send,
        F: Fn(usize, &mut T) + Sync,
    {
        let moved = std::mem::take(items);
        *items = self.run_ordered(moved, |i, mut t| {
            f(i, &mut t);
            t
        });
    }
}

enum ShardSlot<R> {
    Done(R),
    Panicked(Box<dyn std::any::Any + Send>),
}

/// The host's available parallelism (1 when the runtime cannot tell).
pub fn host_parallelism() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn ordered_merge_matches_input_order() {
        let pool = Pool::new(8);
        let items: Vec<u64> = (0..100).collect();
        let out = pool.run_ordered(items, |i, x| {
            // Skew the work so late shards finish first.
            let spin = (100 - i) * 50;
            let mut acc = x;
            for _ in 0..spin {
                acc = acc.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            (i as u64) << 32 | (acc & 0xFFFF_FFFF)
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(v >> 32, i as u64, "slot {i} holds another shard's result");
        }
    }

    #[test]
    fn jobs_1_and_jobs_8_agree() {
        let items: Vec<u32> = (0..64).collect();
        let f = |i: usize, x: u32| {
            let mut r = seed_mix(i as u64, x as u64);
            for _ in 0..100 {
                r = seed_mix(r, x as u64);
            }
            r
        };
        let serial = Pool::new(1).run_ordered(items.clone(), f);
        let sharded = Pool::new(8).run_ordered(items, f);
        assert_eq!(serial, sharded);
    }

    fn seed_mix(a: u64, b: u64) -> u64 {
        let mut z = a.wrapping_add(b).wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z ^ (z >> 31)
    }

    #[test]
    fn every_shard_runs_exactly_once() {
        let counter = AtomicUsize::new(0);
        let out = Pool::new(4).run_ordered((0..1000).collect::<Vec<u32>>(), |_, x| {
            counter.fetch_add(1, Ordering::SeqCst);
            x
        });
        assert_eq!(counter.load(Ordering::SeqCst), 1000);
        assert_eq!(out.len(), 1000);
    }

    #[test]
    fn shard_panic_propagates_after_drain() {
        let ran = AtomicUsize::new(0);
        let r = panic::catch_unwind(AssertUnwindSafe(|| {
            Pool::new(4).run_ordered((0..32).collect::<Vec<u32>>(), |i, x| {
                ran.fetch_add(1, Ordering::SeqCst);
                assert!(i != 7, "shard 7 exploded");
                x
            })
        }));
        assert!(r.is_err(), "panic must propagate to the caller");
        assert_eq!(ran.load(Ordering::SeqCst), 32, "other shards still drained");
    }

    #[test]
    fn empty_and_single_item_batches() {
        let pool = Pool::new(4);
        let empty: Vec<u32> = pool.run_ordered(Vec::new(), |_, x: u32| x);
        assert!(empty.is_empty());
        assert_eq!(pool.run_ordered(vec![41u32], |_, x| x + 1), vec![42]);
    }
}
