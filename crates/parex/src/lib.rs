//! `parex` — parallel sharded execution with a deterministic merge.
//!
//! The simulator is single-threaded by design: one [`x86sim`] machine,
//! one `Kernel`, stepped instruction by instruction so every cycle count
//! and fault is reproducible. That is the right shape for *guest*
//! fidelity and the wrong shape for *host* throughput — chaos campaigns,
//! throughput benches and web-server drivers were all serial loops over
//! independent pieces of work.
//!
//! This crate supplies the missing piece: a work-stealing worker pool
//! ([`Pool`]) that fans independent **shards** — chaos episodes, bench
//! batches, request groups, packet bursts — across OS threads, where
//! each shard owns a *private* simulator/kernel instance, plus a
//! deterministic **ordered merge** so the combined result is
//! byte-identical to a serial run of the same shards.
//!
//! Determinism is a contract, not an accident:
//!
//! * shard inputs carry positional RNG streams (`SeedRng::stream`), so
//!   shard `i` sees the same randomness no matter who runs it;
//! * shard functions are pure functions of `(index, input)` — the
//!   workspace keeps no global mutable state (no `Rc`, no thread-locals,
//!   no statics), which is what makes `Kernel`/`Machine` `Send` and the
//!   whole scheme sound;
//! * [`Pool::run_ordered`] returns results in input order regardless of
//!   execution interleaving, and `jobs == 1` degenerates to the serial
//!   loop.
//!
//! The integration determinism suite (`tests/tests/parex_scaling.rs`)
//! holds the workspace to this: `--jobs 8` campaign reports, bench
//! stats and oracle verdicts must equal `--jobs 1` byte-for-byte.
//!
//! [`x86sim`]: https://docs.rs/x86sim

mod pool;
mod queue;

pub use pool::{host_parallelism, Pool};
pub use queue::StealQueue;
