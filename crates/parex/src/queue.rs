//! The work-stealing task queue behind [`Pool`](crate::Pool).
//!
//! One logical deque per worker. A worker takes from the *front* of its
//! own deque (LIFO-ish locality does not matter here — shards are
//! coarse) and, when empty, steals from the *back* of a victim's deque,
//! scanning the other workers round-robin from its own index. Stealing
//! from the opposite end keeps thieves and owners off the same cache
//! line of work and, more importantly for this workspace, steals the
//! *largest-index* shards first, which are the ones the owner would
//! reach last.
//!
//! The implementation is deliberately a `Mutex<VecDeque>` per worker
//! rather than a lock-free Chase–Lev deque: shards here are whole chaos
//! episodes, request groups or bench batches — milliseconds to seconds
//! of work — so queue operations are nowhere near the contention regime
//! where lock-freedom pays. Correctness is load-bearing (the determinism
//! suite diffs sharded against serial runs byte-for-byte); cleverness is
//! not.
//!
//! Determinism note: *which* worker executes a task is scheduling-
//! dependent and irrelevant. The pool's ordered merge re-asserts input
//! order, and every task must be a pure function of its input — the
//! queue itself never influences results.

use std::collections::VecDeque;
use std::sync::Mutex;

/// A set of per-worker task deques supporting owner pop and cross-worker
/// steal.
#[derive(Debug)]
pub struct StealQueue<T> {
    lanes: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealQueue<T> {
    /// Creates a queue set for `workers` workers (at least one lane).
    pub fn new(workers: usize) -> StealQueue<T> {
        let workers = workers.max(1);
        StealQueue {
            lanes: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Number of worker lanes.
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Pushes a task onto `worker`'s own lane.
    pub fn push(&self, worker: usize, task: T) {
        self.lanes[worker % self.lanes.len()]
            .lock()
            .expect("queue lane poisoned")
            .push_back(task);
    }

    /// Distributes tasks round-robin across all lanes, preserving the
    /// relative order within each lane.
    pub fn seed<I: IntoIterator<Item = T>>(&self, tasks: I) {
        for (i, t) in tasks.into_iter().enumerate() {
            self.push(i % self.lanes.len(), t);
        }
    }

    /// Takes the next task for `worker`: its own lane first, then a
    /// steal sweep over the other lanes starting at `worker + 1`.
    /// Returns `None` only when every lane was observed empty in one
    /// sweep (callers treating the queue as a fixed batch may then
    /// terminate; see [`Pool::run_ordered`](crate::Pool::run_ordered)).
    pub fn take(&self, worker: usize) -> Option<T> {
        let n = self.lanes.len();
        let own = worker % n;
        if let Some(t) = self.lanes[own]
            .lock()
            .expect("queue lane poisoned")
            .pop_front()
        {
            return Some(t);
        }
        for k in 1..n {
            let victim = (own + k) % n;
            if let Some(t) = self.lanes[victim]
                .lock()
                .expect("queue lane poisoned")
                .pop_back()
            {
                return Some(t);
            }
        }
        None
    }

    /// Total queued tasks across all lanes (racy under concurrency;
    /// exact once the workers have stopped).
    pub fn len(&self) -> usize {
        self.lanes
            .iter()
            .map(|l| l.lock().expect("queue lane poisoned").len())
            .sum()
    }

    /// True when every lane is empty (same caveat as [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seed_round_robins_and_take_drains() {
        let q: StealQueue<u32> = StealQueue::new(3);
        q.seed(0..9);
        assert_eq!(q.len(), 9);
        // Worker 0's own lane got 0, 3, 6 in order.
        assert_eq!(q.take(0), Some(0));
        assert_eq!(q.take(0), Some(3));
        assert_eq!(q.take(0), Some(6));
        // Own lane empty: steal from the back of lane 1 (1, 4, 7).
        assert_eq!(q.take(0), Some(7));
        let mut rest = Vec::new();
        while let Some(t) = q.take(2) {
            rest.push(t);
        }
        rest.sort_unstable();
        assert_eq!(rest, vec![1, 2, 4, 5, 8]);
        assert!(q.is_empty());
    }

    #[test]
    fn zero_workers_clamps_to_one_lane() {
        let q: StealQueue<u8> = StealQueue::new(0);
        assert_eq!(q.lanes(), 1);
        q.push(5, 1); // any worker index maps onto the single lane
        assert_eq!(q.take(9), Some(1));
    }

    #[test]
    fn concurrent_hammering_loses_and_duplicates_nothing() {
        use std::sync::atomic::{AtomicBool, Ordering};

        const TASKS: usize = 10_000;
        const WORKERS: usize = 8;
        let q: StealQueue<usize> = StealQueue::new(WORKERS);
        q.seed(0..TASKS);
        let seen: Vec<AtomicBool> = (0..TASKS).map(|_| AtomicBool::new(false)).collect();

        std::thread::scope(|s| {
            for w in 0..WORKERS {
                let q = &q;
                let seen = &seen;
                s.spawn(move || {
                    while let Some(t) = q.take(w) {
                        let already = seen[t].swap(true, Ordering::SeqCst);
                        assert!(!already, "task {t} executed twice");
                    }
                });
            }
        });

        assert!(q.is_empty());
        assert!(
            seen.iter().all(|b| b.load(Ordering::SeqCst)),
            "some task was dropped"
        );
    }
}
