//! `netfilter` — the kernel-level extensible application of §5.2:
//! a compiled packet filter loaded into the kernel as a Palladium
//! extension, compared against the interpreted BPF baseline (Figure 7).
//!
//! * [`expr`] — filter expressions (conjunctions of header tests) with a
//!   host reference evaluator.
//! * [`packet`] — Ethernet/IPv4/UDP packet construction and traffic
//!   generation.
//! * [`compile`] — the filter compiler: expression → native module, with
//!   compile-time byte-swapped constants (one load + compare per term).
//! * [`tobpf`] — the tcpdump-style translation: expression → BPF
//!   bytecode.
//! * [`dnf`] — OR-of-conjunction filters, compiled and translated by both
//!   backends.
//! * [`router`] — the programmable router \[22] that motivated the kernel
//!   mechanism, with the §4.3 asynchronous deferred-filtering path.
//! * [`harness`] — the side-by-side measurement harness regenerating
//!   Figure 7.

pub mod compile;
pub mod dnf;
pub mod expr;
pub mod harness;
pub mod packet;
pub mod router;
pub mod tobpf;

pub use dnf::DnfFilter;
pub use expr::{extended_conjunction, paper_conjunction, Filter, Term, Test, Width};
pub use harness::{FilterBench, FilterRun, HarnessError};
pub use packet::{reference_packet, traffic, PacketSpec};
pub use router::{Router, RouterStats, Verdict};
