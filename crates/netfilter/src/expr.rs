//! Packet-filter expressions: conjunctions of header tests.
//!
//! The paper's Figure 7 experiment runs "a filter rule consisting of a
//! conjunction of multiple terms ... when all terms are true", with the
//! number of terms on the x-axis. A [`Filter`] is exactly that: an AND of
//! [`Term`]s, each testing one packet header field.

/// Field width in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Width {
    /// One byte.
    B1,
    /// Two bytes (network order).
    B2,
    /// Four bytes (network order).
    B4,
}

impl Width {
    /// Width in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
        }
    }
}

/// The predicate applied to a field value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Test {
    /// Field equals the value.
    Eq(u32),
    /// `(field & mask) == value`.
    Masked(u32, u32),
    /// Field is (unsigned) greater than the value.
    Gt(u32),
}

/// One conjunction term: a test on the field at `offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Term {
    /// Byte offset within the packet.
    pub offset: u32,
    /// Field width.
    pub width: Width,
    /// The predicate.
    pub test: Test,
}

impl Term {
    /// Reads the (network-order) field value from a packet.
    pub fn field_value(&self, pkt: &[u8]) -> Option<u32> {
        let off = self.offset as usize;
        let n = self.width.bytes() as usize;
        if off + n > pkt.len() {
            return None;
        }
        let mut v = 0u32;
        for b in &pkt[off..off + n] {
            v = (v << 8) | *b as u32;
        }
        Some(v)
    }

    /// Evaluates the term (out-of-bounds fields fail, as in BPF).
    pub fn eval(&self, pkt: &[u8]) -> bool {
        let Some(v) = self.field_value(pkt) else {
            return false;
        };
        match self.test {
            Test::Eq(k) => v == k,
            Test::Masked(m, k) => v & m == k,
            Test::Gt(k) => v > k,
        }
    }
}

/// A conjunction of terms (empty = accept everything).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Filter {
    /// The terms, all of which must hold.
    pub terms: Vec<Term>,
}

impl Filter {
    /// The accept-all filter (zero terms).
    pub fn accept_all() -> Filter {
        Filter::default()
    }

    /// Host-side reference evaluation.
    pub fn eval(&self, pkt: &[u8]) -> bool {
        self.terms.iter().all(|t| t.eval(pkt))
    }

    /// Number of terms.
    pub fn len(&self) -> usize {
        self.terms.len()
    }

    /// True for the accept-all filter.
    pub fn is_empty(&self) -> bool {
        self.terms.is_empty()
    }
}

/// Builders for common header tests (offsets from [`crate::packet`]).
pub mod terms {
    use super::{Term, Test, Width};
    use crate::packet::offsets;

    /// EtherType equals `v` (e.g. 0x0800 for IPv4).
    pub fn ether_type(v: u16) -> Term {
        Term {
            offset: offsets::ETHER_TYPE,
            width: Width::B2,
            test: Test::Eq(v as u32),
        }
    }

    /// IP protocol equals `v` (6 = TCP, 17 = UDP).
    pub fn ip_proto(v: u8) -> Term {
        Term {
            offset: offsets::IP_PROTO,
            width: Width::B1,
            test: Test::Eq(v as u32),
        }
    }

    /// IP source address equals `v`.
    pub fn ip_src(v: u32) -> Term {
        Term {
            offset: offsets::IP_SRC,
            width: Width::B4,
            test: Test::Eq(v),
        }
    }

    /// IP destination address equals `v`.
    pub fn ip_dst(v: u32) -> Term {
        Term {
            offset: offsets::IP_DST,
            width: Width::B4,
            test: Test::Eq(v),
        }
    }

    /// IP source on subnet `v/mask`.
    pub fn ip_src_net(v: u32, mask: u32) -> Term {
        Term {
            offset: offsets::IP_SRC,
            width: Width::B4,
            test: Test::Masked(mask, v & mask),
        }
    }

    /// Destination port equals `v`.
    pub fn dst_port(v: u16) -> Term {
        Term {
            offset: offsets::DST_PORT,
            width: Width::B2,
            test: Test::Eq(v as u32),
        }
    }

    /// Source port greater than `v` (an ephemeral-port style test).
    pub fn src_port_gt(v: u16) -> Term {
        Term {
            offset: offsets::SRC_PORT,
            width: Width::B2,
            test: Test::Gt(v as u32),
        }
    }
}

/// The paper's n-term conjunction (0 ≤ n ≤ 4), built so that every term is
/// true for [`crate::packet::reference_packet`]: EtherType == IPv4, then
/// proto == UDP, then dst ip, then dst port.
pub fn paper_conjunction(n: usize) -> Filter {
    use terms::*;
    let all = [
        ether_type(0x0800),
        ip_proto(17),
        ip_dst(0x0A00_0002),
        dst_port(5001),
    ];
    Filter {
        terms: all[..n.min(4)].to_vec(),
    }
}

/// An n-term conjunction for arbitrary n: the paper's four header terms
/// followed by payload-byte tests (all true for
/// [`crate::packet::reference_packet`]), for sweeps beyond Figure 7's
/// x-axis.
pub fn extended_conjunction(n: usize) -> Filter {
    let mut f = paper_conjunction(n.min(4));
    for i in 4..n {
        let payload_index = (i - 4) as u32;
        f.terms.push(Term {
            offset: crate::packet::offsets::PAYLOAD + payload_index,
            width: Width::B1,
            test: Test::Eq(payload_index & 0xFF),
        });
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::reference_packet;

    #[test]
    fn empty_filter_accepts_everything() {
        assert!(Filter::accept_all().eval(&[]));
        assert!(Filter::accept_all().eval(&[1, 2, 3]));
    }

    #[test]
    fn paper_conjunctions_hold_on_the_reference_packet() {
        let pkt = reference_packet(64);
        for n in 0..=4 {
            let f = paper_conjunction(n);
            assert_eq!(f.len(), n);
            assert!(f.eval(&pkt), "{n}-term filter matches");
        }
    }

    #[test]
    fn each_term_discriminates() {
        let pkt = reference_packet(64);
        // Perturb each tested field and check the 4-term filter rejects.
        for &(off, len) in &[(12usize, 2usize), (23, 1), (30, 4), (36, 2)] {
            let mut bad = pkt.clone();
            bad[off + len - 1] ^= 0xFF;
            assert!(!paper_conjunction(4).eval(&bad), "field at {off} tested");
        }
    }

    #[test]
    fn masked_and_gt_tests() {
        let pkt = reference_packet(64);
        // 10.0.0.0/8 subnet match on the destination.
        let t = terms::ip_src_net(0x0A00_0000, 0xFF00_0000);
        // reference src is 10.0.0.1.
        assert!(t.eval(&pkt));
        let t = terms::src_port_gt(1024);
        // reference src port is 40000.
        assert!(t.eval(&pkt));
        let t = terms::src_port_gt(50000);
        assert!(!t.eval(&pkt));
    }

    #[test]
    fn extended_conjunctions_hold_on_the_reference_packet() {
        let pkt = reference_packet(128);
        for n in [5usize, 8, 12] {
            let f = extended_conjunction(n);
            assert_eq!(f.len(), n);
            assert!(f.eval(&pkt), "{n}-term filter matches");
            // And each added term still discriminates.
            let mut bad = pkt.clone();
            bad[crate::packet::offsets::PAYLOAD as usize] ^= 0xFF;
            assert!(!extended_conjunction(5).eval(&bad));
        }
    }

    #[test]
    fn out_of_bounds_field_fails_closed() {
        let t = terms::dst_port(80);
        assert!(!t.eval(&[0u8; 10]));
    }
}
