//! Packet construction: Ethernet + IPv4 + UDP/TCP headers in network
//! byte order, plus workload generators.

use seedrng::SeedRng;

/// Header field offsets (Ethernet II framing).
pub mod offsets {
    /// EtherType (2 bytes).
    pub const ETHER_TYPE: u32 = 12;
    /// Start of the IPv4 header.
    pub const IP: u32 = 14;
    /// IPv4 protocol (1 byte).
    pub const IP_PROTO: u32 = IP + 9;
    /// IPv4 source address (4 bytes).
    pub const IP_SRC: u32 = IP + 12;
    /// IPv4 destination address (4 bytes).
    pub const IP_DST: u32 = IP + 16;
    /// Transport source port (2 bytes).
    pub const SRC_PORT: u32 = IP + 20;
    /// Transport destination port (2 bytes).
    pub const DST_PORT: u32 = IP + 22;
    /// Start of the transport payload (UDP).
    pub const PAYLOAD: u32 = IP + 28;
}

/// Everything needed to build one packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketSpec {
    /// EtherType (0x0800 = IPv4).
    pub ether_type: u16,
    /// IP protocol (6 = TCP, 17 = UDP).
    pub ip_proto: u8,
    /// Source IPv4 address.
    pub src_ip: u32,
    /// Destination IPv4 address.
    pub dst_ip: u32,
    /// Transport source port.
    pub src_port: u16,
    /// Transport destination port.
    pub dst_port: u16,
    /// Payload bytes after the headers.
    pub payload_len: usize,
}

impl Default for PacketSpec {
    fn default() -> PacketSpec {
        PacketSpec {
            ether_type: 0x0800,
            ip_proto: 17,
            src_ip: 0x0A00_0001, // 10.0.0.1
            dst_ip: 0x0A00_0002, // 10.0.0.2
            src_port: 40_000,
            dst_port: 5_001,
            payload_len: 22,
        }
    }
}

impl PacketSpec {
    /// Builds the packet bytes (headers big-endian, payload zeroed then
    /// stamped with a simple counting pattern).
    pub fn build(&self) -> Vec<u8> {
        let total = offsets::PAYLOAD as usize + self.payload_len;
        let mut p = vec![0u8; total];
        // Ethernet MACs: fixed locally-administered addresses.
        p[0..6].copy_from_slice(&[0x02, 0, 0, 0, 0, 0x02]);
        p[6..12].copy_from_slice(&[0x02, 0, 0, 0, 0, 0x01]);
        p[12..14].copy_from_slice(&self.ether_type.to_be_bytes());
        // Minimal IPv4 header.
        p[14] = 0x45; // version + IHL
        let ip_len = (total - 14) as u16;
        p[16..18].copy_from_slice(&ip_len.to_be_bytes());
        p[22] = 64; // TTL
        p[23] = self.ip_proto;
        p[26..30].copy_from_slice(&self.src_ip.to_be_bytes());
        p[30..34].copy_from_slice(&self.dst_ip.to_be_bytes());
        // Transport ports.
        p[34..36].copy_from_slice(&self.src_port.to_be_bytes());
        p[36..38].copy_from_slice(&self.dst_port.to_be_bytes());
        for (i, b) in p[offsets::PAYLOAD as usize..].iter_mut().enumerate() {
            *b = i as u8;
        }
        p
    }
}

/// The packet every term of [`crate::expr::paper_conjunction`] matches:
/// IPv4/UDP from 10.0.0.1:40000 to 10.0.0.2:5001.
pub fn reference_packet(total_len: usize) -> Vec<u8> {
    let spec = PacketSpec {
        payload_len: total_len.saturating_sub(offsets::PAYLOAD as usize),
        ..PacketSpec::default()
    };
    spec.build()
}

/// A deterministic stream of mixed traffic: roughly `match_ratio` of the
/// packets satisfy the 4-term reference conjunction, the rest vary in
/// protocol, address or port.
pub fn traffic(seed: u64, count: usize, match_ratio: f64) -> Vec<Vec<u8>> {
    let mut rng = SeedRng::new(seed);
    (0..count)
        .map(|_| {
            let mut spec = PacketSpec {
                payload_len: rng.gen_range(0, 400) as usize,
                ..PacketSpec::default()
            };
            if rng.gen_bool(1.0 - match_ratio) {
                // Break one of the matched fields at random.
                match rng.gen_range(0, 4) {
                    0 => spec.ether_type = 0x0806, // ARP
                    1 => spec.ip_proto = 6,        // TCP
                    2 => spec.dst_ip = rng.next_u32(),
                    _ => spec.dst_port = rng.gen_range(1, 5000) as u16,
                }
            }
            spec.build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_fields_land_at_documented_offsets() {
        let p = PacketSpec::default().build();
        assert_eq!(&p[12..14], &[0x08, 0x00]);
        assert_eq!(p[23], 17);
        assert_eq!(&p[26..30], &[10, 0, 0, 1]);
        assert_eq!(&p[30..34], &[10, 0, 0, 2]);
        assert_eq!(u16::from_be_bytes([p[34], p[35]]), 40_000);
        assert_eq!(u16::from_be_bytes([p[36], p[37]]), 5_001);
    }

    #[test]
    fn reference_packet_sizing() {
        assert_eq!(reference_packet(64).len(), 64);
        // Requests smaller than the headers are clamped to header size.
        assert_eq!(reference_packet(10).len(), offsets::PAYLOAD as usize);
    }

    #[test]
    fn traffic_respects_match_ratio_roughly() {
        let pkts = traffic(42, 400, 0.5);
        let f = crate::expr::paper_conjunction(4);
        let matched = pkts.iter().filter(|p| f.eval(p)).count();
        assert!((120..=280).contains(&matched), "got {matched}");
    }

    #[test]
    fn traffic_is_deterministic_per_seed() {
        assert_eq!(traffic(7, 10, 0.5), traffic(7, 10, 0.5));
        assert_ne!(traffic(7, 10, 0.5), traffic(8, 10, 0.5));
    }
}
